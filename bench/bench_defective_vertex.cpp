// EXP-K — Lemma 6.2: (εΔ + ⌊Δ/2⌋)-defective 4-coloring given an
// O(Δ²)-coloring.
//
// Shape to hold: max defect ≤ εΔ + ⌊Δ/2⌋ on every family/ε point; rounds
// are dominated by the O(classes/ε²)-round Refine (classes independent of Δ
// once the precolor defect budget scales with Δ).
#include <algorithm>
#include <cstdio>

#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

using namespace dec;

int main() {
  std::printf("EXP-K: defective 4-coloring (Lemma 6.2)\n\n");

  Table t("defect vs bound",
          {"family", "Delta", "eps", "bound", "max_defect", "sweeps",
           "rounds"});
  const auto run_case = [&](const char* fam, const Graph& g, double eps) {
    const LinialResult lin = linial_color(g);
    const DefectiveResult r =
        defective_4_coloring(g, lin.colors, lin.palette, eps);
    const int bound = static_cast<int>(eps * g.max_degree()) + g.max_degree() / 2;
    t.add_row({fam, fmt_int(g.max_degree()), fmt_double(eps, 2),
               fmt_int(bound), fmt_int(r.max_defect), fmt_int(r.sweeps),
               fmt_int(r.rounds)});
  };

  for (const int d : {16, 32, 64}) {
    Rng rng(static_cast<std::uint64_t>(d) * 7);
    const Graph g = gen::random_regular(8 * d, d, rng);
    for (const double eps : {0.125, 0.25, 0.5}) run_case("regular", g, eps);
  }
  {
    Rng rng(71);
    run_case("gnp", gen::gnp(400, 0.08, rng), 0.25);
    run_case("power-law", gen::power_law(400, 2.5, 10.0, rng), 0.25);
  }
  t.print();

  Table t2("defect/palette trade-off of the one-round precolor ([11])",
           {"Delta", "defect_target", "palette", "achieved_defect"});
  {
    Rng rng(72);
    const Graph g = gen::random_regular(512, 32, rng);
    const LinialResult lin = linial_color(g);
    for (const int p : {1, 2, 4, 8, 16, 32}) {
      const DefectiveResult r =
          defective_precolor(g, lin.colors, lin.palette, p);
      t2.add_row({fmt_int(32), fmt_int(p), fmt_int(r.palette),
                  fmt_int(r.max_defect)});
    }
  }
  t2.print();
  return 0;
}
