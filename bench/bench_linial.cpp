// EXP-G — substrate [41]: Linial's O(Δ²)-coloring in O(log* n) rounds.
//
// Shape to hold: at fixed Δ, rounds stay flat (~log* n) while n grows three
// orders of magnitude; the final palette is O(Δ²) and independent of n.
#include <cstdio>

#include "coloring/linial.hpp"
#include "graph/generators.hpp"
#include "util/logstar.hpp"
#include "util/table.hpp"

using namespace dec;

int main() {
  std::printf("EXP-G: Linial O(Delta^2) coloring in O(log* n) rounds\n\n");

  Table t("random 6-regular graphs",
          {"n", "log*(n)", "rounds", "iterations", "palette", "palette/D^2",
           "max_msg_bits"});
  for (const int n : {256, 1024, 4096, 16384, 65536}) {
    Rng rng(static_cast<std::uint64_t>(n));
    const Graph g = gen::random_regular(n, 6, rng);
    const LinialResult r = linial_color(g);
    t.add_row({fmt_int(n), fmt_int(log_star(static_cast<double>(n))),
               fmt_int(r.rounds), fmt_int(r.iterations), fmt_int(r.palette),
               fmt_ratio(r.palette, 36, 1), fmt_int(r.max_message_bits)});
  }
  t.print();

  Table t2("palette vs Delta at n = 8192",
           {"Delta", "palette", "palette/D^2", "rounds"});
  for (const int d : {2, 4, 8, 16, 32}) {
    Rng rng(static_cast<std::uint64_t>(d) * 31);
    const Graph g = gen::random_regular(8192, d, rng);
    const LinialResult r = linial_color(g);
    t2.add_row({fmt_int(d), fmt_int(r.palette),
                fmt_ratio(r.palette, static_cast<double>(d) * d, 1),
                fmt_int(r.rounds)});
  }
  t2.print();
  return 0;
}
