// EXP-I — §5 ablation: ν drives the phase count O(log Δ̄ / ν) and the
// quality ε = 8ν of the balanced orientation.
//
// Fixed graph, sweep ν: phases rise as ~1/ν; the measured worst imbalance
// (max excess beyond η_e, normalized by Δ̄) falls with ν until the per-phase
// drift floor takes over (the regime EXP-B quantifies).
#include <cstdio>

#include "core/balanced_orientation.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

using namespace dec;

int main() {
  std::printf("EXP-I: nu trade-off in the balanced orientation (paper §5)\n\n");

  const auto bg = gen::regular_bipartite(512, 128);
  const std::vector<double> eta(
      static_cast<std::size_t>(bg.graph.num_edges()), 0.0);
  const int dbar = bg.graph.max_edge_degree();

  Table t("128-regular bipartite, eta = 0",
          {"nu", "eps=8nu", "phases", "rounds", "flips", "leftover",
           "max_excess", "excess/dbar"});
  for (const double nu : {0.125, 0.0625, 0.03125, 0.015625}) {
    OrientationParams p;
    p.nu = nu;
    const auto r = balanced_orientation(bg.graph, bg.parts, eta, p);
    t.add_row({fmt_double(nu, 4), fmt_double(eps_from_nu(nu), 2),
               fmt_int(r.phases), fmt_int(r.rounds), fmt_int(r.flips),
               fmt_int(r.leftover_edges), fmt_double(r.max_excess, 1),
               fmt_ratio(r.max_excess, dbar, 3)});
  }
  t.print();
  std::printf(
      "reading: phases ~ ln(dbar)/nu; excess normalized by dbar shrinks\n"
      "with nu until the per-phase drift floor (EXP-B) dominates.\n");
  return 0;
}
