// Micro-benchmarks of the substrate (google-benchmark): graph construction,
// simulator round overhead, generators, and the hot validation predicates.
#include <benchmark/benchmark.h>

#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "core/token_dropping.hpp"
#include "graph/generators.hpp"
#include "graph/line_graph.hpp"
#include "graph/properties.hpp"
#include "sim/network.hpp"

namespace {

using namespace dec;

void BM_GraphConstruction(benchmark::State& state) {
  Rng rng(1);
  const Graph src = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  auto edges = src.edge_list();
  for (auto _ : state) {
    Graph g(src.num_nodes(), edges);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * src.num_edges());
}
BENCHMARK(BM_GraphConstruction)->Arg(1000)->Arg(10000);

void BM_LineGraph(benchmark::State& state) {
  Rng rng(2);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  for (auto _ : state) {
    const Graph lg = line_graph(g);
    benchmark::DoNotOptimize(lg.num_edges());
  }
}
BENCHMARK(BM_LineGraph)->Arg(1000)->Arg(4000);

// Legacy path: node program behind std::function type erasure.
void BM_NetworkRound(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g);
  const SyncNetwork::StepFn fn = [](NodeId v, const Inbox&, Outbox& out) {
    for (auto& m : out) m = Message{v};
  };
  for (auto _ : state) {
    net.round(fn);
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkRound)->Arg(1000)->Arg(10000);

// Serial fast path: round_fast<F> keeps the node program a direct call.
void BM_NetworkRoundFast(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g);
  for (auto _ : state) {
    net.round_fast([](NodeId v, const Inbox&, Outbox& out) {
      for (auto& m : out) m = Message{v};
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkRoundFast)->Arg(1000)->Arg(10000);

// Parallel round engine; Args are {n, threads}.
void BM_NetworkRoundParallel(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g, nullptr, "network", static_cast<int>(state.range(1)));
  for (auto _ : state) {
    net.round_fast([](NodeId v, const Inbox&, Outbox& out) {
      for (auto& m : out) m = Message{v};
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkRoundParallel)
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8});

// Wide payloads: exercises the slab-arena spill path (> kInlineFields).
void BM_NetworkRoundSpill(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g);
  for (auto _ : state) {
    net.round_fast([](NodeId v, const Inbox&, Outbox& out) {
      for (auto& m : out) {
        for (std::int64_t k = 0;
             k < static_cast<std::int64_t>(2 * Message::kInlineFields); ++k) {
          m.push(v + k);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkRoundSpill)->Arg(1000)->Arg(10000);

// Defective refine, legacy centralized vs. message-passing substrate
// (Args are {n, engine} with 0 = legacy, 1 = substrate). Both engines walk
// the identical class-step trajectory, so items/s compares the engines on
// equal work: items = audited rounds x slot-plane size.
void BM_DefectiveRefine(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 12, rng);
  const LinialResult lin = linial_color(g);
  const SolverEngine engine = state.range(1) == 0
                                  ? SolverEngine::kLegacy
                                  : SolverEngine::kMessagePassing;
  const int threshold = g.max_degree() / 4 + 2;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const DefectiveResult r = defective_refine(
        g, lin.colors, lin.palette, 4, threshold, 256, nullptr, engine);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.max_defect);
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2 * g.num_edges());
}
BENCHMARK(BM_DefectiveRefine)->Args({1000, 0})->Args({1000, 1});

// Token dropping, legacy vs. the directed adapter over the substrate
// (Args are {width, engine}); items = audited rounds x arcs.
void BM_TokenDropping(benchmark::State& state) {
  Rng rng(8);
  const int width = static_cast<int>(state.range(0));
  const Digraph g = layered_game(10, width, 6, rng);
  const SolverEngine engine = state.range(1) == 0
                                  ? SolverEngine::kLegacy
                                  : SolverEngine::kMessagePassing;
  TokenDroppingParams p;
  p.k = 64;
  p.delta = 2;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 4);
  std::vector<int> init(static_cast<std::size_t>(g.num_nodes()));
  for (auto& t : init) {
    t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p.k) + 1));
  }
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const TokenDroppingResult r =
        run_token_dropping(g, init, p, nullptr, engine);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.tokens_moved);
  }
  state.SetItemsProcessed(state.iterations() * rounds * g.num_arcs());
}
BENCHMARK(BM_TokenDropping)->Args({100, 0})->Args({100, 1});

void BM_ProperEdgeColoringCheck(benchmark::State& state) {
  Rng rng(4);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  const LinialResult lin = linial_edge_color(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_proper_edge_coloring(g, lin.colors));
  }
}
BENCHMARK(BM_ProperEdgeColoringCheck)->Arg(1000)->Arg(10000);

void BM_LinialEndToEnd(benchmark::State& state) {
  Rng rng(5);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  for (auto _ : state) {
    const LinialResult r = linial_color(g);
    benchmark::DoNotOptimize(r.palette);
  }
}
BENCHMARK(BM_LinialEndToEnd)->Arg(1000)->Arg(10000);

void BM_RandomRegularGenerator(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    const Graph g = gen::random_regular(
        static_cast<NodeId>(state.range(0)), 16, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_RandomRegularGenerator)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
