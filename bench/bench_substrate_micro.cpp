// Micro-benchmarks of the substrate (google-benchmark): graph construction,
// simulator round overhead, generators, and the hot validation predicates.
#include <benchmark/benchmark.h>

#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "core/defective2ec.hpp"
#include "core/solver_registry.hpp"
#include "core/token_dropping.hpp"
#include "service/solver_service.hpp"
#include "sim/cancel.hpp"
#include "graph/generators.hpp"
#include "graph/line_graph.hpp"
#include "graph/properties.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "sim/shared_pool.hpp"
#include "sim/topology.hpp"

#include <thread>
#include <vector>

namespace {

using namespace dec;

void BM_GraphConstruction(benchmark::State& state) {
  Rng rng(1);
  const Graph src = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  auto edges = src.edge_list();
  for (auto _ : state) {
    Graph g(src.num_nodes(), edges);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * src.num_edges());
}
BENCHMARK(BM_GraphConstruction)->Arg(1000)->Arg(10000);

void BM_LineGraph(benchmark::State& state) {
  Rng rng(2);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  for (auto _ : state) {
    const Graph lg = line_graph(g);
    benchmark::DoNotOptimize(lg.num_edges());
  }
}
BENCHMARK(BM_LineGraph)->Arg(1000)->Arg(4000);

// Topology planning alone: what a NetworkPool cache hit saves per network.
void BM_TopologyPlan(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  for (auto _ : state) {
    auto topo = NetworkTopology::plan(g);
    benchmark::DoNotOptimize(topo->num_slots());
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_TopologyPlan)->Arg(1000)->Arg(10000);

// Directed plan (support graph + lanes) on a token-game digraph.
void BM_DiTopologyPlan(benchmark::State& state) {
  Rng rng(8);
  const Digraph g = layered_game(10, static_cast<int>(state.range(0)), 6, rng);
  for (auto _ : state) {
    auto topo = DiTopology::plan(g);
    benchmark::DoNotOptimize(topo->num_arcs());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_DiTopologyPlan)->Arg(100);

// O(shards) epoch-based reset of an existing run state...
void BM_NetworkReset(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g);
  for (auto _ : state) {
    net.round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
    net.reset();
    benchmark::DoNotOptimize(net.rounds_executed());
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkReset)->Arg(1000)->Arg(10000);

// ...vs reconstructing plan + run state from scratch each time (the cost
// reset()/the pool avoid). Same one-round workload for a like-for-like item
// rate.
void BM_NetworkReconstruct(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  for (auto _ : state) {
    SyncNetwork net(g);
    net.round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
    benchmark::DoNotOptimize(net.rounds_executed());
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkReconstruct)->Arg(1000)->Arg(10000);

// Legacy path: node program behind std::function type erasure.
void BM_NetworkRound(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g);
  const SyncNetwork::StepFn fn = [](NodeId v, const Inbox&, Outbox& out) {
    for (auto& m : out) m = Message{v};
  };
  for (auto _ : state) {
    net.round(fn);
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkRound)->Arg(1000)->Arg(10000);

// Serial fast path: round_fast<F> keeps the node program a direct call.
void BM_NetworkRoundFast(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g);
  for (auto _ : state) {
    net.round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkRoundFast)->Arg(1000)->Arg(10000);

// BM_NetworkRoundFast on the 16 B narrow slot plane (declared width 1):
// same single-field echo workload, so the delta to BM_NetworkRoundFast is
// the round-path bandwidth win of the 4x smaller slots.
void BM_NetworkRoundNarrow(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g, nullptr, "network", 1,
                  SlotPlan{SlotFormat::kNarrow, 1});
  for (auto _ : state) {
    net.round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
  state.counters["bytes_per_node"] = static_cast<double>(net.memory_bytes()) /
                                     static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_NetworkRoundNarrow)->Arg(1000)->Arg(10000);

// BM_NetworkRoundFast on a single message plane (PlaneMode::kSingle): same
// echo workload delivered via parity-alternating slot ownership instead of
// the plane swap. The delta to BM_NetworkRoundFast is the round-path cost
// (target: none) of the mode that halves plane memory for drain-free
// protocols; bytes_per_node shows the halved run state.
void BM_NetworkRoundSinglePlane(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g, nullptr, "network", 1,
                  SlotPlan{SlotFormat::kWide, 0, PlaneMode::kSingle});
  for (auto _ : state) {
    net.round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
  state.counters["bytes_per_node"] = static_cast<double>(net.memory_bytes()) /
                                     static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_NetworkRoundSinglePlane)->Arg(1000)->Arg(10000);

// Narrow format x single plane: the fully-composed minimum-memory delivery
// path (16 B slots, one plane). Compare bytes_per_node against
// BM_NetworkRoundNarrow for the plane-mode win on top of the format win.
void BM_NetworkRoundSinglePlaneNarrow(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g, nullptr, "network", 1,
                  SlotPlan{SlotFormat::kNarrow, 1, PlaneMode::kSingle});
  for (auto _ : state) {
    net.round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
  state.counters["bytes_per_node"] = static_cast<double>(net.memory_bytes()) /
                                     static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_NetworkRoundSinglePlaneNarrow)->Arg(1000)->Arg(10000);

// BM_NetworkRoundFast with an installed (never-tripping) CancelToken: the
// cost of the relaxed aborted() load the barrier pays per round when a
// token is present. Compare against BM_NetworkRoundFast for the delta.
void BM_NetworkRoundCancelToken(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g);
  CancelToken token;
  net.set_cancel(&token);
  for (auto _ : state) {
    net.round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
  }
  net.set_cancel(nullptr);
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkRoundCancelToken)->Arg(1000)->Arg(10000);

// Parallel round engine; Args are {n, threads}.
void BM_NetworkRoundParallel(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g, nullptr, "network", static_cast<int>(state.range(1)));
  for (auto _ : state) {
    net.round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkRoundParallel)
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8});

// Wide payloads: exercises the slab-arena spill path (> kInlineFields).
void BM_NetworkRoundSpill(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  SyncNetwork net(g);
  for (auto _ : state) {
    net.round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) {
        for (std::int64_t k = 0;
             k < static_cast<std::int64_t>(2 * Message::kInlineFields); ++k) {
          m.push(v + k);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NetworkRoundSpill)->Arg(1000)->Arg(10000);

// Defective refine on the message-passing substrate (Args are
// {n, threads}); with the dirty-flag announce, off-variant comparisons live
// in BM_DefectiveRefineFullBroadcast. items = audited rounds x slot-plane
// size.
void BM_DefectiveRefine(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 12, rng);
  const LinialResult lin = linial_color(g);
  const int threads = static_cast<int>(state.range(1));
  const int threshold = g.max_degree() / 4 + 2;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const DefectiveResult r = defective_refine(
        g, lin.colors, lin.palette, 4, threshold, 256, nullptr, threads);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.max_defect);
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2 * g.num_edges());
}
BENCHMARK(BM_DefectiveRefine)->Args({1000, 1})->Args({1000, 2});

// Same instance with the dirty-flag announce disabled (every node
// re-broadcasts its color in every announce round): isolates the win of
// announcing changed colors only. Rounds and colors are bit-identical.
void BM_DefectiveRefineFullBroadcast(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 12, rng);
  const LinialResult lin = linial_color(g);
  const int threshold = g.max_degree() / 4 + 2;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const DefectiveResult r =
        defective_refine(g, lin.colors, lin.palette, 4, threshold, 256,
                         nullptr, 1, /*dirty_announce=*/false);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.max_defect);
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2 * g.num_edges());
}
BENCHMARK(BM_DefectiveRefineFullBroadcast)->Arg(1000);

// Token dropping on the directed adapter over the substrate (Args are
// {width, threads}); items = audited rounds x arcs.
void BM_TokenDropping(benchmark::State& state) {
  Rng rng(8);
  const int width = static_cast<int>(state.range(0));
  const Digraph g = layered_game(10, width, 6, rng);
  const int threads = static_cast<int>(state.range(1));
  TokenDroppingParams p;
  p.k = 64;
  p.delta = 2;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 4);
  std::vector<int> init(static_cast<std::size_t>(g.num_nodes()));
  for (auto& t : init) {
    t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p.k) + 1));
  }
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const TokenDroppingResult r =
        run_token_dropping(g, init, p, nullptr, threads);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.tokens_moved);
  }
  state.SetItemsProcessed(state.iterations() * rounds * g.num_arcs());
}
BENCHMARK(BM_TokenDropping)->Args({100, 1})->Args({100, 2});

// Balanced orientation (§5) as node programs: two substrate rounds per
// phase plus the embedded token dropping games on their own DiNetworks
// (Args are {n_per_side, threads}); items = rounds x slot-plane size.
void BM_BalancedOrientation(benchmark::State& state) {
  const auto bg = gen::regular_bipartite(
      static_cast<NodeId>(state.range(0)), 32);
  const std::vector<double> eta(
      static_cast<std::size_t>(bg.graph.num_edges()), 0.0);
  OrientationParams p;
  p.nu = 0.125;
  const int threads = static_cast<int>(state.range(1));
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const BalancedOrientationResult r =
        balanced_orientation(bg.graph, bg.parts, eta, p, nullptr, threads);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.max_excess);
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2 *
                          bg.graph.num_edges());
}
BENCHMARK(BM_BalancedOrientation)->Args({256, 1})->Args({256, 2});

// Same instance with the network arena disabled: every phase rebuilds its
// game DiNetwork (and the solver its SyncNetwork) from scratch. Results are
// bit-identical; the delta to BM_BalancedOrientation is the pooled-arena
// construction saving.
void BM_BalancedOrientationUnpooled(benchmark::State& state) {
  const auto bg = gen::regular_bipartite(
      static_cast<NodeId>(state.range(0)), 32);
  const std::vector<double> eta(
      static_cast<std::size_t>(bg.graph.num_edges()), 0.0);
  OrientationParams p;
  p.nu = 0.125;
  p.pooled = false;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const BalancedOrientationResult r =
        balanced_orientation(bg.graph, bg.parts, eta, p, nullptr, 1);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.max_excess);
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2 *
                          bg.graph.num_edges());
}
BENCHMARK(BM_BalancedOrientationUnpooled)->Arg(256);

// Generalized defective 2-edge coloring (Lemma 5.3 reduction onto the
// balanced orientation; Args are {n_per_side, threads}).
void BM_Defective2EC(benchmark::State& state) {
  const auto bg = gen::regular_bipartite(
      static_cast<NodeId>(state.range(0)), 16);
  const std::vector<double> lambda(
      static_cast<std::size_t>(bg.graph.num_edges()), 0.5);
  const int threads = static_cast<int>(state.range(1));
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const Defective2ECResult r = defective_2_edge_coloring(
        bg.graph, bg.parts, lambda, 1.0, ParamMode::kPractical, nullptr,
        threads);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.beta_emp);
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2 *
                          bg.graph.num_edges());
}
BENCHMARK(BM_Defective2EC)->Args({128, 1})->Args({128, 2});

void BM_ProperEdgeColoringCheck(benchmark::State& state) {
  Rng rng(4);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  const LinialResult lin = linial_edge_color(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_proper_edge_coloring(g, lin.colors));
  }
}
BENCHMARK(BM_ProperEdgeColoringCheck)->Arg(1000)->Arg(10000);

void BM_LinialEndToEnd(benchmark::State& state) {
  Rng rng(5);
  const Graph g = gen::random_regular(
      static_cast<NodeId>(state.range(0)), 8, rng);
  for (auto _ : state) {
    const LinialResult r = linial_color(g);
    benchmark::DoNotOptimize(r.palette);
  }
}
BENCHMARK(BM_LinialEndToEnd)->Arg(1000)->Arg(10000);

void BM_RandomRegularGenerator(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    const Graph g = gen::random_regular(
        static_cast<NodeId>(state.range(0)), 16, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_RandomRegularGenerator)->Arg(1000)->Arg(10000);

// Shared-arena contention: N tenant threads, each with its own NetworkPool
// view over one SharedNetworkPool, lease-run-release in a tight loop.
// range(0) = tenant threads; range(1) = 1 for all tenants on one shape
// (every lookup after warmup rides the lock-free snapshot fast path and
// run states ping-pong through one cache shard) vs 0 for per-tenant shapes
// (lookups spread across shards, no run-state contention). Items = leases.
void BM_SharedPoolContention(benchmark::State& state) {
  const int tenants = static_cast<int>(state.range(0));
  const bool same_shape = state.range(1) == 1;
  std::vector<Graph> graphs;
  graphs.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    Rng grng(same_shape ? 7u : 7u + static_cast<std::uint64_t>(t));
    graphs.push_back(gen::random_regular(256, 8, grng));
  }
  constexpr int kLeasesPerTenant = 32;
  SharedNetworkPool shared(1);
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
      threads.emplace_back([&shared, &graphs, t] {
        NetworkPool view(shared);
        for (int i = 0; i < kLeasesPerTenant; ++i) {
          auto lease =
              view.network(graphs[static_cast<std::size_t>(t)]);
          lease->round_fast([](NodeId v, const auto&, auto&& out) {
            for (auto&& m : out) m.assign({v});
          });
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  state.SetItemsProcessed(state.iterations() * tenants * kLeasesPerTenant);
  const double lookups = static_cast<double>(shared.topology_hits() +
                                             shared.topology_misses());
  state.counters["plan_hit_rate"] =
      lookups > 0 ? static_cast<double>(shared.topology_hits()) / lookups
                  : 0.0;
}
BENCHMARK(BM_SharedPoolContention)
    ->Args({2, 1})
    ->Args({2, 0})
    ->Args({4, 1})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Cancellation round-trip through the service: submit a long solve, cancel
// immediately, block on the future. Measures how fast an abort propagates
// from cancel() through the next round barrier to a satisfied future.
// cancelled_frac counts how often the cancel beat the solver (the rest
// complete kOk — both are valid resolutions of the race).
void BM_ServiceCancellation(benchmark::State& state) {
  Rng rng(9);
  auto g = std::make_shared<const Graph>(gen::gnp(220, 0.12, rng));
  SolverService service({.workers = 1, .queue_capacity = 4});
  std::int64_t cancelled = 0;
  for (auto _ : state) {
    JobTicket t = service.submit(make_congest_request(g, {0.25}));
    service.cancel(t.id);
    const SolverResult r = t.result.get();
    if (r.status == SolverStatus::kCancelled) ++cancelled;
    benchmark::DoNotOptimize(r.status);
  }
  state.counters["cancelled_frac"] =
      state.iterations() > 0
          ? static_cast<double>(cancelled) /
                static_cast<double>(state.iterations())
          : 0.0;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceCancellation)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
