// EXP-E — Theorem D.4 / Theorem 1.1: (degree+1)-list edge coloring in LOCAL.
//
// Shape to hold: every instance (full palette = (2Δ−1)-edge coloring, random
// degree+1 lists, adversarially skewed lists) is colored properly from the
// lists; outer iterations stay O(log Δ).
#include <cstdio>

#include "core/local_coloring.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

using namespace dec;

int main() {
  std::printf(
      "EXP-E: (degree+1)-list edge coloring in LOCAL (Theorem D.4)\n\n");

  Table t("instances across graph families and list styles",
          {"family", "lists", "n", "Delta", "C", "valid", "palette_used",
           "iters", "tail_deg", "rounds"});

  const auto run_case = [&](const char* fam, const char* lists_name,
                            const Graph& g, const ListEdgeInstance& inst) {
    const auto r = solve_list_edge_coloring(g, inst);
    t.add_row({fam, lists_name, fmt_int(g.num_nodes()), fmt_int(g.max_degree()),
               fmt_int(inst.color_space),
               fmt_bool(check_list_coloring(inst, r.colors)),
               fmt_int(count_colors(r.colors)), fmt_int(r.iterations),
               fmt_int(r.tail_degree), fmt_int(r.rounds)});
  };

  for (const int d : {8, 16, 32}) {
    Rng rng(static_cast<std::uint64_t>(d) + 1);
    const Graph g = gen::random_regular(10 * d, d, rng);
    run_case("regular", "full(2D-1)", g, make_full_palette_instance(g));
    run_case("regular", "random d+1", g,
             make_random_list_instance(g, 3 * g.max_edge_degree(), rng));
    run_case("regular", "skewed d+1", g,
             make_skewed_list_instance(g, 4 * g.max_edge_degree(), 0.85, rng));
  }
  {
    Rng rng(55);
    const Graph g = gen::gnp(400, 0.04, rng);
    run_case("gnp", "full(2D-1)", g, make_full_palette_instance(g));
    run_case("gnp", "random d+1", g,
             make_random_list_instance(g, 3 * g.max_edge_degree(), rng));
  }
  {
    Rng rng(56);
    const Graph g = gen::power_law(400, 2.6, 8.0, rng);
    run_case("power-law", "full(2D-1)", g, make_full_palette_instance(g));
  }
  t.print();
  return 0;
}
