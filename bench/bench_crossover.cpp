// EXP-F — the introduction's comparison: polylog-in-Δ (this paper) vs.
// O(Δ + log* n) [10, 44] vs. O(Δ̄² + log* n) greedy.
//
// Shape to hold: the quadratic baseline's rounds grow ~Δ², the linear
// baseline's ~Δ; the paper's machinery grows sub-linearly once past the
// clamp regime (see EXP-B). At laptop-scale Δ the asymptotic crossover
// against the *linear* baseline lies beyond the sweep (the paper's constants
// are enormous — see EXPERIMENTS.md); the reproducible signal is the growth
// exponent of each curve, which the last column estimates per doubling.
#include <cmath>
#include <cstdio>

#include "coloring/baselines.hpp"
#include "core/congest_coloring.hpp"
#include "core/local_coloring.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

using namespace dec;

int main() {
  std::printf("EXP-F: rounds vs Delta — ours vs baselines\n\n");

  Table t("random regular graphs, n = 10*Delta",
          {"Delta", "ours(congest)", "ours(local 2D-1)", "linear[44]",
           "quadratic", "luby(rand)"});
  std::int64_t prev_ours = 0, prev_lin = 0, prev_quad = 0;
  std::vector<std::array<double, 3>> growth;
  for (const int d : {8, 16, 32, 64}) {
    Rng rng(static_cast<std::uint64_t>(d) * 17);
    const Graph g = gen::random_regular(10 * d, d, rng);
    const auto ours_c = congest_edge_coloring(g, 1.0);
    const auto ours_l = solve_2delta_minus_1(g);
    const auto lin = edge_color_fast_2delta(g);
    const auto quad = edge_color_greedy_quadratic(g);
    Rng lrng(1);
    const auto luby = edge_color_luby(g, lrng);
    t.add_row({fmt_int(d), fmt_int(ours_c.rounds), fmt_int(ours_l.rounds),
               fmt_int(lin.rounds), fmt_int(quad.rounds),
               fmt_int(luby.rounds)});
    if (prev_ours > 0) {
      growth.push_back({std::log2(static_cast<double>(ours_c.rounds) /
                                  static_cast<double>(prev_ours)),
                        std::log2(static_cast<double>(lin.rounds) /
                                  static_cast<double>(prev_lin)),
                        std::log2(static_cast<double>(quad.rounds) /
                                  static_cast<double>(prev_quad))});
    }
    prev_ours = ours_c.rounds;
    prev_lin = lin.rounds;
    prev_quad = quad.rounds;
  }
  t.print();

  Table t2("growth exponent per Delta-doubling (rounds ~ Delta^x)",
           {"step", "ours(congest)", "linear[44]", "quadratic"});
  int step = 1;
  for (const auto& [a, b, c] : growth) {
    t2.add_row({fmt_int(step++), fmt_double(a, 2), fmt_double(b, 2),
                fmt_double(c, 2)});
  }
  t2.print();

  std::printf(
      "reading: quadratic ≈ 2.0, linear ≈ 1.0; ours should sit below the\n"
      "linear baseline's exponent as Delta grows (polylog-in-Delta claim).\n");
  return 0;
}
