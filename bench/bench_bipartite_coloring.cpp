// EXP-C — Lemma 6.1: (2+ε)Δ-edge coloring of 2-colored bipartite graphs.
//
// Reports palette/Δ (the lemma bounds it by 2+ε), recursion levels, the
// analytic leaf bound D_k, and the round breakdown between splitting and the
// leaf coloring. The level count grows once Δ̄ clears the drift-safety line
// (χ²Δ̄ ≈ 12), reproducing Appendix C's recursion structure.
#include <cstdio>

#include "core/bipartite_coloring.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

using namespace dec;

int main() {
  std::printf("EXP-C: bipartite (2+eps)Delta edge coloring (Lemma 6.1)\n\n");

  Table t("regular bipartite, n_per_side = 2*Delta",
          {"Delta", "dbar", "eps", "palette", "palette/Delta", "levels",
           "D_k", "chi", "rounds"});
  for (const int d : {16, 32, 64, 128}) {
    const auto bg = gen::regular_bipartite(2 * d, d);
    for (const double eps : {0.5, 1.0}) {
      const auto r = bipartite_edge_coloring(bg.graph, bg.parts, eps);
      t.add_row({fmt_int(d), fmt_int(bg.graph.max_edge_degree()),
                 fmt_double(eps, 1), fmt_int(r.palette),
                 fmt_ratio(r.palette, d, 2), fmt_int(r.levels),
                 fmt_int(r.leaf_degree_bound), fmt_double(r.chi, 3),
                 fmt_int(r.rounds)});
    }
  }
  t.print();

  Table t2("irregular bipartite (random, expected degree ~ Delta/2)",
           {"nu+nv", "dbar", "palette", "palette/dbar", "levels", "rounds"});
  for (const int n : {64, 128, 256}) {
    Rng rng(static_cast<std::uint64_t>(n));
    const auto bg =
        gen::random_bipartite(n, n, 24.0 / static_cast<double>(n), rng);
    if (bg.graph.num_edges() == 0) continue;
    const auto r = bipartite_edge_coloring(bg.graph, bg.parts, 1.0);
    t2.add_row({fmt_int(2 * n), fmt_int(bg.graph.max_edge_degree()),
                fmt_int(r.palette),
                fmt_ratio(r.palette, bg.graph.max_edge_degree(), 2),
                fmt_int(r.levels), fmt_int(r.rounds)});
  }
  t2.print();
  return 0;
}
