// EXP-A — Theorem 4.3: the generalized token dropping game.
//
// Reproduces the theorem's two quantitative claims:
//  * round complexity O(k/δ): phases are exactly ⌊k/δ⌋−1;
//  * final slack on every active edge bounded by
//    2(α_u+α_v) + (deg·deg/(α_uα_v) + deg/α_u + deg/α_v)·δ.
// Columns report the worst measured slack against the worst-case bound —
// "viol ≤ 0" certifies the theorem on the run.
#include <algorithm>
#include <cstdio>

#include "core/token_dropping.hpp"
#include "util/table.hpp"

using namespace dec;

namespace {

double max_active_diff(const Digraph& g, const TokenDroppingResult& r) {
  double worst = 0.0;
  for (EdgeId a = 0; a < g.num_arcs(); ++a) {
    if (r.edge_passive[static_cast<std::size_t>(a)]) continue;
    const auto [u, v] = g.arc(a);
    worst = std::max(worst,
                     static_cast<double>(r.tokens[static_cast<std::size_t>(u)] -
                                         r.tokens[static_cast<std::size_t>(v)]));
  }
  return worst;
}

double min_bound(const Digraph& g, const TokenDroppingParams& p) {
  double best = 1e300;
  for (EdgeId a = 0; a < g.num_arcs(); ++a) {
    best = std::min(best, theorem_4_3_bound(g, p, a));
  }
  return g.num_arcs() == 0 ? 0.0 : best;
}

}  // namespace

int main() {
  std::printf("EXP-A: generalized token dropping (paper §4, Theorem 4.3)\n\n");

  {
    Table t("Theorem 4.3 on layered games (layers=6, width=64, out_deg=6)",
            {"k", "delta", "alpha", "phases", "rounds", "moved",
             "max_diff(active)", "min_bound", "viol(<=0 ok)"});
    Rng rng(1);
    const Digraph g = layered_game(6, 64, 6, rng);
    for (const int k : {16, 64, 256, 1024}) {
      for (const int delta : {1, 4, 16}) {
        if (delta > k / 4) continue;
        TokenDroppingParams p;
        p.k = k;
        p.delta = delta;
        p.alpha.assign(static_cast<std::size_t>(g.num_nodes()),
                       std::max(delta, 2 * delta));
        std::vector<int> init(static_cast<std::size_t>(g.num_nodes()));
        Rng trng(7);
        for (auto& x : init) {
          x = static_cast<int>(trng.next_below(static_cast<std::uint64_t>(k) + 1));
        }
        const auto r = run_token_dropping(g, init, p);
        t.add_row({fmt_int(k), fmt_int(delta), fmt_int(p.alpha[0]),
                   fmt_int(r.phases), fmt_int(r.rounds), fmt_int(r.tokens_moved),
                   fmt_double(max_active_diff(g, r), 1),
                   fmt_double(min_bound(g, p), 1),
                   fmt_double(max_bound_violation(g, p, r), 1)});
      }
    }
    t.print();
  }

  {
    Table t("Theorem 4.3 on general (cyclic) digraphs — the paper's new regime",
            {"n", "p_arc", "k", "delta", "phases", "moved", "viol(<=0 ok)"});
    for (const int n : {64, 128, 256}) {
      for (const double pa : {0.02, 0.08}) {
        Rng rng(static_cast<std::uint64_t>(n) * 131 + 7);
        const Digraph g = random_game(n, pa, rng);
        TokenDroppingParams p;
        p.k = 128;
        p.delta = 4;
        p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 8);
        std::vector<int> init(static_cast<std::size_t>(g.num_nodes()));
        for (auto& x : init) {
          x = static_cast<int>(rng.next_below(129));
        }
        const auto r = run_token_dropping(g, init, p);
        t.add_row({fmt_int(n), fmt_double(pa, 2), fmt_int(p.k),
                   fmt_int(p.delta), fmt_int(r.phases), fmt_int(r.tokens_moved),
                   fmt_double(max_bound_violation(g, p, r), 1)});
      }
    }
    t.print();
  }
  return 0;
}
