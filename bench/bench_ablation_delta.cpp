// EXP-H — §4.1 ablation: "δ can be used to control the trade-off between the
// round complexity and the slack of the algorithm."
//
// Fixed game, sweep δ: rounds must fall as ~k/δ while the measured final
// slack (max τ(u)−τ(v) over active edges) rises with δ.
#include <algorithm>
#include <cstdio>

#include "core/token_dropping.hpp"
#include "util/table.hpp"

using namespace dec;

int main() {
  std::printf("EXP-H: delta trade-off in token dropping (paper §4.1)\n\n");

  Rng rng(9);
  const Digraph g = layered_game(8, 96, 8, rng);
  const int k = 512;
  std::vector<int> init(static_cast<std::size_t>(g.num_nodes()));
  Rng trng(13);
  for (auto& x : init) {
    x = static_cast<int>(trng.next_below(static_cast<std::uint64_t>(k) + 1));
  }

  Table t("k = 512, alpha_v = 2*delta, layered game",
          {"delta", "phases", "rounds", "max_active_slack", "thm4.3_bound",
           "tokens_moved"});
  for (const int delta : {1, 2, 4, 8, 16, 32, 64}) {
    TokenDroppingParams p;
    p.k = k;
    p.delta = delta;
    p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 2 * delta);
    const auto r = run_token_dropping(g, init, p);
    double slack = 0.0, bound = 0.0;
    for (EdgeId a = 0; a < g.num_arcs(); ++a) {
      if (r.edge_passive[static_cast<std::size_t>(a)]) continue;
      const auto [u, v] = g.arc(a);
      slack = std::max(
          slack, static_cast<double>(r.tokens[static_cast<std::size_t>(u)] -
                                     r.tokens[static_cast<std::size_t>(v)]));
      bound = std::max(bound, theorem_4_3_bound(g, p, a));
    }
    t.add_row({fmt_int(delta), fmt_int(r.phases), fmt_int(r.rounds),
               fmt_double(slack, 1), fmt_double(bound, 1),
               fmt_int(r.tokens_moved)});
  }
  t.print();
  std::printf("reading: rounds ~ 3*(k/delta - 1); slack grows with delta.\n");
  return 0;
}
