// EXP-D — Theorem 6.3 / Theorem 1.2: (8+ε)Δ-edge coloring of general graphs
// in the CONGEST model, against the O(Δ+log* n) and randomized baselines.
//
// Shape to hold: palette ≤ (8+O(ε))Δ (typically far below — the paper's 8 is
// a worst-case recursion constant), properness on every family, and a round
// breakdown dominated by the polylog components.
#include <cstdio>

#include "coloring/baselines.hpp"
#include "core/congest_coloring.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

using namespace dec;

int main() {
  std::printf("EXP-D: (8+eps)Delta CONGEST edge coloring (Theorem 6.3)\n\n");

  Table t("palette & rounds vs baselines",
          {"family", "n", "Delta", "ours_palette", "ours/Delta", "ours_rounds",
           "PR_palette", "PR_rounds", "luby_rounds", "levels", "tail_deg"});
  const auto run_family = [&](const char* name, const Graph& g) {
    const auto ours = congest_edge_coloring(g, 1.0);
    const auto pr = edge_color_fast_2delta(g);
    Rng lrng(3);
    const auto luby = edge_color_luby(g, lrng);
    t.add_row({name, fmt_int(g.num_nodes()), fmt_int(g.max_degree()),
               fmt_int(ours.palette), fmt_ratio(ours.palette, g.max_degree(), 2),
               fmt_int(ours.rounds), fmt_int(pr.palette), fmt_int(pr.rounds),
               fmt_int(luby.rounds), fmt_int(ours.levels),
               fmt_int(ours.tail_degree)});
  };

  for (const int d : {16, 32, 64}) {
    Rng rng(static_cast<std::uint64_t>(d));
    run_family("regular", gen::random_regular(10 * d, d, rng));
  }
  {
    Rng rng(100);
    run_family("gnp", gen::gnp(500, 0.05, rng));
  }
  {
    Rng rng(101);
    run_family("power-law", gen::power_law(500, 2.5, 10.0, rng));
  }
  {
    Rng rng(102);
    run_family("tree", gen::random_tree(400, rng));
  }
  run_family("torus", gen::torus(16, 16));
  t.print();

  Table t2("round-ledger breakdown (regular, Delta = 32)",
           {"component", "rounds"});
  {
    Rng rng(32);
    const Graph g = gen::random_regular(320, 32, rng);
    RoundLedger ledger;
    congest_edge_coloring(g, 1.0, ParamMode::kPractical, &ledger);
    for (const auto& [name, rounds] : ledger.breakdown()) {
      t2.add_row({name, fmt_int(rounds)});
    }
  }
  t2.print();
  return 0;
}
