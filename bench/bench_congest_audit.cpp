// EXP-J — Theorem 1.2's CONGEST claim: O(log n)-bit messages.
//
// The SyncNetwork-based subroutines (Linial vertex/edge coloring) measure
// their message widths directly; the table compares the max observed width
// against c·log₂ n. Orchestrated phases exchange the same O(log n)-bit
// quantities (colors, token counts, proposals) — the audited primitives are
// where width could plausibly blow up, because they ship whole colors from a
// shrinking-but-large palette.
#include <cstdio>

#include "coloring/linial.hpp"
#include "graph/generators.hpp"
#include "util/logstar.hpp"
#include "util/table.hpp"

using namespace dec;

int main() {
  std::printf("EXP-J: CONGEST message-width audit\n\n");

  // The parallel round engine must reproduce the serial run bit-for-bit:
  // same colors and the same audited max message width (per-shard audits
  // merge with order-independent max/sum at the round barrier).
  Table t("Linial vertex coloring (messages carry current colors)",
          {"n", "Delta", "log2(n)", "max_msg_bits", "bits/log2(n)",
           "congest_ok(<=4x)", "par4_identical"});
  for (const int n : {1024, 4096, 16384, 65536}) {
    for (const int d : {4, 16}) {
      Rng rng(static_cast<std::uint64_t>(n) + d);
      const Graph g = gen::random_regular(n, d, rng);
      const LinialResult r = linial_color(g);
      const LinialResult rp = linial_color(g, nullptr, {}, 0, 4);
      const bool par_identical = r.colors == rp.colors &&
                                 r.max_message_bits == rp.max_message_bits &&
                                 r.rounds == rp.rounds;
      const int lg = ceil_log2(static_cast<std::uint64_t>(n));
      t.add_row({fmt_int(n), fmt_int(d), fmt_int(lg),
                 fmt_int(r.max_message_bits),
                 fmt_ratio(r.max_message_bits, lg, 2),
                 fmt_bool(r.max_message_bits <= 4 * lg),
                 fmt_bool(par_identical)});
    }
  }
  t.print();

  Table t2("Linial on the line graph (edge ids ~ n^2 -> 2x the bits)",
           {"n", "m", "max_msg_bits", "bits/log2(m)"});
  for (const int n : {512, 2048}) {
    Rng rng(static_cast<std::uint64_t>(n) * 3);
    const Graph g = gen::random_regular(n, 6, rng);
    const LinialResult r = linial_edge_color(g);
    const int lg = ceil_log2(static_cast<std::uint64_t>(g.num_edges()));
    t2.add_row({fmt_int(n), fmt_int(g.num_edges()), fmt_int(r.max_message_bits),
                fmt_ratio(r.max_message_bits, lg, 2)});
  }
  t2.print();
  return 0;
}
