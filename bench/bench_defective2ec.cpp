// EXP-B — Theorem 5.6 / Corollary 5.7: balanced orientation and generalized
// defective 2-edge coloring.
//
// Series 1: quality. For λ = 1/2 on d-regular bipartite graphs, every edge
// must satisfy Definition 5.1; we report the empirical additive error β_emp
// next to the paper's theory-mode β = 28·ln³Δ̄/ε⁵ (astronomically loose) and
// the practical-mode β the run used.
//
// Series 2: rounds vs Δ̄. The paper claims O(log⁴Δ/ε⁶); at laptop scale the
// token-dropping δ_φ clamps to 1 below Δ̄ ≈ 8/ν², making the cost ≈ 3Δ̄,
// and bends toward polylog above it — the bend is the reproducible shape.
#include <cmath>
#include <cstdio>

#include "core/defective2ec.hpp"
#include "core/params.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

using namespace dec;

int main() {
  std::printf(
      "EXP-B: generalized defective 2-edge coloring (Cor. 5.7)\n\n");

  {
    Table t("Definition 5.1 quality, lambda = 1/2, regular bipartite",
            {"Delta", "dbar", "eps", "rounds", "beta_emp", "beta_practical",
             "beta_theory", "satisfies(2*beta_prac)"});
    for (const int d : {16, 32, 64, 128, 256}) {
      const auto bg = gen::regular_bipartite(2 * d, d);
      const std::vector<double> lambda(
          static_cast<std::size_t>(bg.graph.num_edges()), 0.5);
      for (const double eps : {0.5, 1.0}) {
        const auto r =
            defective_2_edge_coloring(bg.graph, bg.parts, lambda, eps);
        const double bt =
            beta_of(eps, bg.graph.max_edge_degree(), ParamMode::kTheory);
        t.add_row(
            {fmt_int(d), fmt_int(bg.graph.max_edge_degree()),
             fmt_double(eps, 2), fmt_int(r.rounds), fmt_double(r.beta_emp, 2),
             fmt_double(r.beta_used, 1), fmt_double(bt, 0),
             fmt_bool(defective2ec_satisfies(bg.graph, lambda, r.is_red, eps,
                                             2.0 * r.beta_used + 1e-9))});
      }
    }
    t.print();
  }

  {
    Table t("Rounds vs Delta-bar at eps = 1 (nu = 1/8): linear->polylog bend "
            "expected near dbar = 8/nu^2 = 512",
            {"dbar", "rounds", "rounds/dbar", "phases"});
    for (const int d : {16, 32, 64, 128, 256, 512, 1024}) {
      const auto bg = gen::regular_bipartite(2 * d, d);
      const std::vector<double> lambda(
          static_cast<std::size_t>(bg.graph.num_edges()), 0.5);
      const auto r = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0);
      t.add_row({fmt_int(bg.graph.max_edge_degree()), fmt_int(r.rounds),
                 fmt_ratio(static_cast<double>(r.rounds),
                           bg.graph.max_edge_degree(), 2),
                 fmt_int(r.phases)});
    }
    t.print();
  }

  {
    Table t("Skewed lambda: per-edge list fractions (list-coloring regime)",
            {"lambda", "red_fraction", "beta_emp", "rounds"});
    const auto bg = gen::regular_bipartite(256, 64);
    for (const double l : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      const std::vector<double> lambda(
          static_cast<std::size_t>(bg.graph.num_edges()), l);
      const auto r = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0);
      std::int64_t red = 0;
      for (const auto b : r.is_red) red += b != 0 ? 1 : 0;
      t.add_row({fmt_double(l, 2),
                 fmt_ratio(static_cast<double>(red),
                           static_cast<double>(bg.graph.num_edges()), 3),
                 fmt_double(r.beta_emp, 2), fmt_int(r.rounds)});
    }
    t.print();
  }
  return 0;
}
