// Million-node graph axis benches (google-benchmark): streaming generation,
// binary CSR write / mmap load, and pooled substrate rounds at n = 10^6,
// with the per-node memory budget (graph + plan + run state bytes/node)
// reported as counters.
//
// Setup at this scale is seconds, so graphs and CSR files are built once per
// (family, n) and cached across benchmark registrations. Excluded from the
// default run_benches.sh set; opt in with BENCH_LARGE=1 (the CI large-graph
// job does), and keep BENCH_MIN_TIME modest — one pooled round at n = 10^6
// deg 8 already moves ~16M slot items.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>

#include "graph/csr_io.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "sim/topology.hpp"

namespace {

using namespace dec;

enum class Family { kPowerLaw, kGrid };

Graph make_graph(Family family, NodeId n) {
  if (family == Family::kPowerLaw) {
    Rng rng(42);
    return gen::power_law(n, 2.5, 8.0, rng);
  }
  // Square grid: n must be a perfect square for the args used below.
  NodeId side = 1;
  while (static_cast<long long>(side) * side < n) ++side;
  return gen::grid(side, side);
}

// One graph per (family, n), built on first use and kept for the process
// lifetime — google-benchmark re-enters each function per repetition and
// per-arg, and regeneration would dominate wall time at 10^6.
const Graph& cached_graph(Family family, NodeId n) {
  static std::map<std::pair<int, NodeId>, Graph> cache;
  auto key = std::make_pair(static_cast<int>(family), n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, make_graph(family, n)).first;
  }
  return it->second;
}

std::string csr_path(Family family, NodeId n) {
  return (std::filesystem::temp_directory_path() /
          ("bench_large_" + std::to_string(static_cast<int>(family)) + "_" +
           std::to_string(n) + ".csr"))
      .string();
}

// CSR file for (family, n), written on first use.
const std::string& cached_csr(Family family, NodeId n) {
  static std::map<std::pair<int, NodeId>, std::string> cache;
  auto key = std::make_pair(static_cast<int>(family), n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const std::string path = csr_path(family, n);
    write_csr(path, cached_graph(family, n));
    it = cache.emplace(key, path).first;
  }
  return it->second;
}

void set_graph_counters(benchmark::State& state, const Graph& g) {
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["graph_bytes_per_node"] =
      static_cast<double>(g.memory_bytes()) /
      static_cast<double>(g.num_nodes());
}

// --- Generation -----------------------------------------------------------

void BM_LargePowerLawGenerate(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  EdgeId m = 0;
  for (auto _ : state) {
    Rng rng(42);
    const Graph g = gen::power_law(n, 2.5, 8.0, rng);
    m = g.num_edges();
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * m);
  state.counters["edges"] = static_cast<double>(m);
}
BENCHMARK(BM_LargePowerLawGenerate)
    ->Arg(1 << 17)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_LargeGridGenerate(benchmark::State& state) {
  const NodeId side = static_cast<NodeId>(state.range(0));
  EdgeId m = 0;
  for (auto _ : state) {
    const Graph g = gen::grid(side, side);
    m = g.num_edges();
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_LargeGridGenerate)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_LargeZipfianGenerate(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  EdgeId m = 0;
  for (auto _ : state) {
    Rng rng(42);
    const Graph g = gen::zipfian(n, 1.2, 1000, rng);
    m = g.num_edges();
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_LargeZipfianGenerate)->Arg(1000000)->Unit(benchmark::kMillisecond);

// --- CSR I/O --------------------------------------------------------------

void BM_LargeCsrWrite(benchmark::State& state) {
  const Graph& g = cached_graph(Family::kPowerLaw,
                                static_cast<NodeId>(state.range(0)));
  const std::string path = csr_path(Family::kPowerLaw, 0);  // scratch file
  for (auto _ : state) {
    write_csr(path, g);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(40 + (g.num_nodes() + 1) * 8 +
                                static_cast<std::int64_t>(g.num_edges()) * 8));
}
BENCHMARK(BM_LargeCsrWrite)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_LargeCsrLoadTrusted(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const std::string& path = cached_csr(Family::kPowerLaw, n);
  EdgeId m = 0;
  for (auto _ : state) {
    const Graph g = read_csr(path, CsrTrust::kTrusted);
    m = g.num_edges();
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_LargeCsrLoadTrusted)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_LargeCsrLoadVerified(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const std::string& path = cached_csr(Family::kPowerLaw, n);
  EdgeId m = 0;
  for (auto _ : state) {
    const Graph g = read_csr(path, CsrTrust::kVerify);
    m = g.num_edges();
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_LargeCsrLoadVerified)->Arg(1000000)->Unit(benchmark::kMillisecond);

// --- Pooled rounds + memory budget ---------------------------------------
// The headline number: BM_NetworkRound at n = 10^6, through the same CSR
// load path a large experiment would use, with the full per-node budget
// (graph + topology plan + run state) reported alongside items/s. Args are
// {n, threads}.

template <Family family>
void BM_LargeNetworkRound(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Graph g = read_csr(cached_csr(family, n), CsrTrust::kTrusted);
  NetworkPool pool(threads);
  auto lease = pool.network(g);
  for (auto _ : state) {
    lease->round_fast([](NodeId v, const Inbox&, Outbox& out) {
      for (auto& m : out) m = Message{v};
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
  set_graph_counters(state, g);
  const auto topo = pool.topology(g);
  const double nodes = static_cast<double>(g.num_nodes());
  state.counters["plan_bytes_per_node"] =
      static_cast<double>(topo->memory_bytes()) / nodes;
  state.counters["run_state_bytes_per_node"] =
      static_cast<double>(lease->memory_bytes()) / nodes;
  state.counters["total_bytes_per_node"] =
      static_cast<double>(g.memory_bytes() + topo->memory_bytes() +
                          lease->memory_bytes()) /
      nodes;
}
BENCHMARK_TEMPLATE(BM_LargeNetworkRound, Family::kPowerLaw)
    ->Args({1000000, 1})
    ->Args({1000000, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_LargeNetworkRound, Family::kGrid)
    ->Args({1000000, 1})
    ->Args({1000000, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Same shape and workload on the 16 B narrow slot plane (declared width 1).
// Compare run_state_bytes_per_node against BM_LargeNetworkRound for the
// memory win and items/s for the bandwidth win; the large-graph CI smoke
// asserts narrow <= wide/2 on run-state bytes.
template <Family family>
void BM_LargeNetworkRoundNarrow(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Graph g = read_csr(cached_csr(family, n), CsrTrust::kTrusted);
  NetworkPool pool(threads);
  auto lease = pool.network(g, nullptr, "network",
                            SlotPlan{SlotFormat::kNarrow, 1});
  for (auto _ : state) {
    lease->round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
  set_graph_counters(state, g);
  const auto topo = pool.topology(g);
  const double nodes = static_cast<double>(g.num_nodes());
  state.counters["plan_bytes_per_node"] =
      static_cast<double>(topo->memory_bytes()) / nodes;
  state.counters["run_state_bytes_per_node"] =
      static_cast<double>(lease->memory_bytes()) / nodes;
  state.counters["total_bytes_per_node"] =
      static_cast<double>(g.memory_bytes() + topo->memory_bytes() +
                          lease->memory_bytes()) /
      nodes;
}
BENCHMARK_TEMPLATE(BM_LargeNetworkRoundNarrow, Family::kPowerLaw)
    ->Args({1000000, 1})
    ->Args({1000000, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_LargeNetworkRoundNarrow, Family::kGrid)
    ->Args({1000000, 1})
    ->Args({1000000, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Narrow slots x single message plane: the minimum-memory delivery path for
// drain-free protocols. Compare run_state_bytes_per_node against
// BM_LargeNetworkRoundNarrow for the plane-mode win on top of the format
// win; the large-graph CI smoke asserts single <= 0.75x the two-plane
// narrow run state (the model says ~0.55x) with items/s no worse.
template <Family family>
void BM_LargeNetworkRoundNarrowSingle(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Graph g = read_csr(cached_csr(family, n), CsrTrust::kTrusted);
  NetworkPool pool(threads);
  auto lease = pool.network(
      g, nullptr, "network",
      SlotPlan{SlotFormat::kNarrow, 1, PlaneMode::kSingle});
  for (auto _ : state) {
    lease->round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
  set_graph_counters(state, g);
  const auto topo = pool.topology(g);
  const double nodes = static_cast<double>(g.num_nodes());
  state.counters["plan_bytes_per_node"] =
      static_cast<double>(topo->memory_bytes()) / nodes;
  state.counters["run_state_bytes_per_node"] =
      static_cast<double>(lease->memory_bytes()) / nodes;
  state.counters["total_bytes_per_node"] =
      static_cast<double>(g.memory_bytes() + topo->memory_bytes() +
                          lease->memory_bytes()) /
      nodes;
}
BENCHMARK_TEMPLATE(BM_LargeNetworkRoundNarrowSingle, Family::kPowerLaw)
    ->Args({1000000, 1})
    ->Args({1000000, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_LargeNetworkRoundNarrowSingle, Family::kGrid)
    ->Args({1000000, 1})
    ->Args({1000000, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
