#!/usr/bin/env bash
# Run the google-benchmark micro benches with JSON output so future PRs have
# a BENCH_*.json perf trajectory to diff against (items_per_second of
# BM_NetworkRound* is the substrate headline number).
#
# After each run, the result is diffed against the most recent previous
# BENCH_<name>_*.json in the output directory (bench/compare_benches.py):
# per-benchmark % change, real-time regressions beyond
# $BENCH_REGRESSION_PCT (default 10%) flagged. The delta report is advisory
# by default; set BENCH_FAIL_ON_REGRESSION=1 to exit non-zero on flags.
#
# The shared 1-core box drifts ±10% run to run; set BENCH_REPETITIONS=3 (or
# more) to record every benchmark N times — the delta report aggregates
# repetitions by median, which is what keeps one slow window from reading as
# a regression. Set BENCH_REPROBE=1 to auto re-run any flagged benchmark at
# 5 repetitions and print the probe median (advisory — it labels flags as
# CONFIRMED or probable noise, never changes the verdict).
#
# Every BENCH_*.json is stamped with a run_metadata block (git sha, nproc,
# 1/5/15-min loadavg, hostname) so a recorded number can always be traced to
# the commit and box conditions that produced it.
#
# Usage: bench/run_benches.sh [build_dir] [out_dir]
#   build_dir: CMake build tree containing the bench binaries (default: build)
#   out_dir:   where BENCH_<name>_<stamp>.json files land (default: bench/results)
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench/results}
STAMP=$(date +%Y%m%d_%H%M%S)
MIN_TIME=${BENCH_MIN_TIME:-2}
REPETITIONS=${BENCH_REPETITIONS:-1}
REGRESSION_PCT=${BENCH_REGRESSION_PCT:-10}
FAIL_ON_REGRESSION=${BENCH_FAIL_ON_REGRESSION:-0}
REPROBE=${BENCH_REPROBE:-0}
SCRIPT_DIR=$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)

mkdir -p "$OUT_DIR"

# Stamp provenance into a recorded JSON: which commit produced the number,
# and what the box looked like while it ran. compare_benches.py ignores
# extra top-level keys, so stamped files diff exactly like unstamped ones.
stamp_metadata() {
  python3 - "$1" <<'PY'
import json, os, socket, subprocess, sys

path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
try:
    sha = subprocess.run(["git", "rev-parse", "HEAD"], capture_output=True,
                         text=True, check=True).stdout.strip()
except Exception:
    sha = "unknown"
load1, load5, load15 = os.getloadavg()
data["run_metadata"] = {
    "git_sha": sha,
    "nproc": os.cpu_count(),
    "loadavg_1m": load1,
    "loadavg_5m": load5,
    "loadavg_15m": load15,
    "hostname": socket.gethostname(),
}
with open(path, "w") as f:
    json.dump(data, f, indent=1)
PY
}

# Google-benchmark binaries are the ones that understand --benchmark_format.
GBENCH_BINARIES=(bench_substrate_micro)

# The n = 10^6 axis (bench_large_graph) takes minutes of setup per family
# and is meant for the gated CI large-graph job or explicit local runs, not
# the default trajectory set. Opt in with BENCH_LARGE=1.
if [[ "${BENCH_LARGE:-0}" == "1" ]]; then
  GBENCH_BINARIES+=(bench_large_graph)
fi

ran=0

# Service load driver (BENCH_SERVICE=1): not a google-benchmark binary — it
# emits its own "kind": "service_load" JSON (latency/queue-wait percentiles
# under a zipfian multi-tenant stream), which compare_benches.py understands
# alongside the google-benchmark files. Job count and shape are fixed here
# so the trajectory stays comparable run to run; BENCH_SERVICE_ARGS appends
# (e.g. BENCH_SERVICE_ARGS="--jobs 2000" for the CI smoke).
if [[ "${BENCH_SERVICE:-0}" == "1" ]]; then
  bin="$BUILD_DIR/bench_service_load"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    exit 1
  fi
  out="$OUT_DIR/BENCH_service_load_${STAMP}.json"
  prev=$(ls -1 "$OUT_DIR"/BENCH_service_load_*.json 2>/dev/null | sort | tail -1 || true)
  echo "== bench_service_load -> $out"
  # shellcheck disable=SC2086  # BENCH_SERVICE_ARGS is intentionally split
  "$bin" --jobs 8000 --tenants 12 --workers 4 --mode closed \
         --out "$out" ${BENCH_SERVICE_ARGS:-}
  stamp_metadata "$out"
  ran=$((ran + 1))
  if [[ -n "$prev" ]]; then
    echo "== delta vs $(basename "$prev") (regression threshold ${REGRESSION_PCT}%)"
    rc=0
    python3 "$SCRIPT_DIR/compare_benches.py" "$prev" "$out" \
      --threshold "$REGRESSION_PCT" || rc=$?
    if [[ "$rc" -eq 1 && "$FAIL_ON_REGRESSION" == "1" ]]; then
      echo "error: service-load regressions above ${REGRESSION_PCT}%" >&2
      exit 2
    elif [[ "$rc" -gt 1 ]]; then
      echo "warning: delta tooling failed (exit $rc); no perf verdict" >&2
      if [[ "$FAIL_ON_REGRESSION" == "1" ]]; then
        exit 3
      fi
    fi
  else
    echo "== no previous BENCH_service_load_*.json; skipping delta report"
  fi
fi
for name in "${GBENCH_BINARIES[@]}"; do
  bin="$BUILD_DIR/$name"
  if [[ ! -x "$bin" ]]; then
    echo "skip: $bin not built (configure with google-benchmark installed)" >&2
    continue
  fi
  out="$OUT_DIR/BENCH_${name}_${STAMP}.json"
  # Baseline = most recent previous result for this binary (before we write
  # the new one).
  prev=$(ls -1 "$OUT_DIR"/BENCH_"${name}"_*.json 2>/dev/null | sort | tail -1 || true)
  echo "== $name -> $out"
  "$bin" --benchmark_min_time="$MIN_TIME" \
         --benchmark_repetitions="$REPETITIONS" \
         --benchmark_format=console \
         --benchmark_out_format=json \
         --benchmark_out="$out"
  stamp_metadata "$out"
  ran=$((ran + 1))
  if [[ -n "$prev" ]]; then
    echo "== delta vs $(basename "$prev") (regression threshold ${REGRESSION_PCT}%)"
    # BENCH_REPROBE=1: flagged rows get an automatic 5-repetition re-run
    # straight from the binary (google-benchmark binaries only — the
    # service driver has no per-benchmark filter).
    reprobe_args=()
    if [[ "$REPROBE" == "1" ]]; then
      reprobe_args=(--reprobe-flagged "$bin")
    fi
    rc=0
    python3 "$SCRIPT_DIR/compare_benches.py" "$prev" "$out" \
      --threshold "$REGRESSION_PCT" "${reprobe_args[@]}" || rc=$?
    if [[ "$rc" -eq 1 ]]; then
      # Genuine regression verdict (count printed by the tool).
      if [[ "$FAIL_ON_REGRESSION" == "1" ]]; then
        echo "error: benchmark regressions above ${REGRESSION_PCT}%" >&2
        exit 2
      fi
    elif [[ "$rc" -ne 0 ]]; then
      # Tooling failure (e.g. malformed baseline JSON) — surface it loudly,
      # but never dress it up as a perf regression.
      echo "warning: delta tooling failed (exit $rc); no perf verdict" >&2
      if [[ "$FAIL_ON_REGRESSION" == "1" ]]; then
        exit 3
      fi
    fi
  else
    echo "== no previous BENCH_${name}_*.json; skipping delta report"
  fi
done

if [[ "$ran" -eq 0 ]]; then
  echo "error: no benchmark binaries found under $BUILD_DIR" >&2
  exit 1
fi
echo "wrote $ran JSON file(s) under $OUT_DIR"
