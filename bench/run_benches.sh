#!/usr/bin/env bash
# Run the google-benchmark micro benches with JSON output so future PRs have
# a BENCH_*.json perf trajectory to diff against (items_per_second of
# BM_NetworkRound* is the substrate headline number).
#
# Usage: bench/run_benches.sh [build_dir] [out_dir]
#   build_dir: CMake build tree containing the bench binaries (default: build)
#   out_dir:   where BENCH_<name>_<stamp>.json files land (default: bench/results)
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench/results}
STAMP=$(date +%Y%m%d_%H%M%S)
MIN_TIME=${BENCH_MIN_TIME:-2}

mkdir -p "$OUT_DIR"

# Google-benchmark binaries are the ones that understand --benchmark_format.
GBENCH_BINARIES=(bench_substrate_micro)

ran=0
for name in "${GBENCH_BINARIES[@]}"; do
  bin="$BUILD_DIR/$name"
  if [[ ! -x "$bin" ]]; then
    echo "skip: $bin not built (configure with google-benchmark installed)" >&2
    continue
  fi
  out="$OUT_DIR/BENCH_${name}_${STAMP}.json"
  echo "== $name -> $out"
  "$bin" --benchmark_min_time="$MIN_TIME" \
         --benchmark_format=console \
         --benchmark_out_format=json \
         --benchmark_out="$out"
  ran=$((ran + 1))
done

if [[ "$ran" -eq 0 ]]; then
  echo "error: no benchmark binaries found under $BUILD_DIR" >&2
  exit 1
fi
echo "wrote $ran JSON file(s) under $OUT_DIR"
