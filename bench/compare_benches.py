#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and report per-benchmark deltas.

Usage: compare_benches.py OLD.json NEW.json [--threshold PCT]
       compare_benches.py --self-test

For every benchmark present in both files, prints the real_time delta (and
items_per_second when available) as a percentage of the old value. Rows whose
real_time regressed by more than --threshold percent (default 10) are flagged
with `!! REGRESSION`. Benchmarks present in the baseline but missing from the
new run are listed and counted as regressions too — a bench that silently
stopped running is exactly the rot this report exists to catch.

Repetitions of the same benchmark name are aggregated by MEDIAN, not mean:
the shared 1-core CI box drifts ±10% run to run, and a single slow window in
one repetition would otherwise masquerade as a regression (or mask one).
Run benches with --benchmark_repetitions=N and the median does the rest.
Google-benchmark's own aggregate rows (_mean/_median/_stddev/_cv) are
skipped; only per-repetition rows feed the median.

Exit codes: 0 = no flags, 1 = regressions/missing benchmarks found (count is
printed), 125 = the tool itself failed (unreadable/malformed JSON, ...).
run_benches.sh distinguishes the two non-zero cases so a tooling crash is
never reported as a perf regression.

--reprobe-flagged BIN re-runs exactly the flagged benchmarks from BIN (a
google-benchmark binary) at 5 repetitions and prints the probe median next
to the recorded values — a one-repetition flag on the shared box is as
likely a slow scheduling window as a regression, and the probe says which.
The probe is ADVISORY: the exit code still reflects the recorded files, so
a lucky probe can never mask a recorded regression.

--self-test runs the built-in checks of the aggregation and flagging logic
(median beats a planted outlier, aggregate-row skipping, missing-benchmark
accounting, reprobe verdicts via an injected runner) and exits 0 on
success; CI invokes it so the delta tooling cannot rot silently either.
"""
import argparse
import io
import json
import re
import statistics
import subprocess
import sys


NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def parse_service_load(data):
    """service_load JSON (bench_service_load) -> pseudo-benchmark rows.

    The latency and queue-wait percentiles become time rows (ms -> ns), so
    the regression threshold applies to tail latency exactly as it does to
    a microbench's real_time. Throughput becomes a per-job time row
    (1e9 / jobs_per_sec) with the rate riding along as items_per_second.
    """
    rows = {}
    for key in ("latency_ms", "queue_wait_ms"):
        summary = data.get(key, {})
        for pct in ("p50", "p95", "p99"):
            if pct in summary:
                rows[f"service_load/{key}/{pct}"] = {
                    "real_time": float(summary[pct]) * 1e6,
                    "items_per_second": 0.0,
                }
    jps = float(data.get("throughput_jobs_per_sec", 0.0))
    if jps > 0:
        rows["service_load/time_per_job"] = {
            "real_time": 1e9 / jps,
            "items_per_second": jps,
        }
    return rows


def parse(data):
    """Benchmark JSON dict -> {name: {real_time, items_per_second}}.

    Accepts either google-benchmark output or bench_service_load's
    "kind": "service_load" document (dispatched here so the two file
    flavors diff through one report path). google-benchmark real_time is
    normalized to ns (deltas stay correct even if a benchmark's reported
    time_unit differs between the two files); repetitions of one name are
    aggregated by median, field-wise.
    """
    if data.get("kind") == "service_load":
        return parse_service_load(data)
    samples = {}
    order = []
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or name.rsplit("_", 1)[-1] in (
            "mean",
            "median",
            "stddev",
            "cv",
        ):
            continue
        entry = {
            "real_time": float(b.get("real_time", 0.0))
            * NS_PER_UNIT.get(b.get("time_unit", "ns"), 1.0),
            "items_per_second": float(b.get("items_per_second", 0.0)),
        }
        if name not in samples:
            samples[name] = []
            order.append(name)
        samples[name].append(entry)
    return {
        name: {
            k: statistics.median(s[k] for s in samples[name])
            for k in ("real_time", "items_per_second")
        }
        for name in order
    }


def load(path):
    with open(path) as f:
        return parse(json.load(f))


def fmt_time(ns):
    for div, suffix in ((1e9, "s"), (1e6, "ms"), (1e3, "us")):
        if ns >= div:
            return f"{ns / div:.2f} {suffix}"
    return f"{ns:.0f} ns"


def report(old, new, threshold, out=sys.stdout, err=sys.stderr):
    """Print the delta table.

    Returns (regression_count, flagged_names): the count drives the exit
    code and includes missing-from-new benchmarks; flagged_names lists only
    the common rows that regressed — the ones a --reprobe-flagged run can
    actually re-execute.
    """
    common = [n for n in new if n in old]
    regressions = 0
    flagged = []
    if common:
        width = max(len(n) for n in common)
        print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  "
              f"{'time Δ':>8}  {'items/s Δ':>9}", file=out)
    else:
        # Still fall through: the missing-from-new accounting below must run
        # even (especially) when nothing survived into the new file.
        print("no common benchmarks between the two files", file=err)
    for name in common:
        o, n = old[name], new[name]
        if o["real_time"] <= 0:
            continue
        dt = 100.0 * (n["real_time"] - o["real_time"]) / o["real_time"]
        if o["items_per_second"] > 0 and n["items_per_second"] > 0:
            dips = 100.0 * (n["items_per_second"] - o["items_per_second"]) \
                / o["items_per_second"]
            ips = f"{dips:+8.1f}%"
        else:
            ips = "        -"
        flag = ""
        if dt > threshold:
            flag = "  !! REGRESSION"
            regressions += 1
            flagged.append(name)
        print(f"{name:<{width}}  {fmt_time(o['real_time']):>10}  "
              f"{fmt_time(n['real_time']):>10}  {dt:+7.1f}%  "
              f"{ips}{flag}", file=out)
    new_only = [n for n in new if n not in old]
    if new_only:
        print(f"(new benchmarks, no baseline: {', '.join(new_only)})",
              file=out)
    old_only = [n for n in old if n not in new]
    if old_only:
        print(f"!! MISSING from new run (present in baseline): "
              f"{', '.join(old_only)}", file=err)
        regressions += len(old_only)
    if regressions:
        print(f"{regressions} benchmark(s) regressed more than "
              f"{threshold:.0f}% in real time or went missing", file=err)
    return regressions, flagged


def reprobe_flagged(binary, flagged, old, threshold, out=sys.stdout,
                    err=sys.stderr, run_fn=None):
    """Advisory re-run of the flagged benchmarks at 5 repetitions.

    Runs `binary --benchmark_filter=^(n1|n2)$ --benchmark_repetitions=5`
    and prints each flagged row's probe median against the recorded
    baseline: CONFIRMED when the probe regresses past the threshold too,
    "probably noise" when it lands back inside. `run_fn` (filter_regex ->
    benchmark JSON dict) is injectable for the self-test; the default
    shells out to the binary. Never changes the exit code.
    """
    if run_fn is None:
        def run_fn(filter_regex):
            res = subprocess.run(
                [binary, f"--benchmark_filter={filter_regex}",
                 "--benchmark_repetitions=5", "--benchmark_format=json"],
                capture_output=True, text=True, check=True)
            return json.loads(res.stdout)
    pattern = "^(" + "|".join(re.escape(n) for n in flagged) + ")$"
    print(f"reprobing {len(flagged)} flagged benchmark(s) at 5 repetitions",
          file=out)
    probe = parse(run_fn(pattern))
    confirmed = 0
    for name in flagged:
        if name not in probe:
            print(f"  {name}: did not run under the reprobe filter",
                  file=err)
            continue
        o, p = old[name], probe[name]
        dt = 100.0 * (p["real_time"] - o["real_time"]) / o["real_time"]
        verdict = "CONFIRMED" if dt > threshold else "probably noise"
        if dt > threshold:
            confirmed += 1
        print(f"  {name}: baseline {fmt_time(o['real_time'])}, "
              f"probe median {fmt_time(p['real_time'])} ({dt:+.1f}%) "
              f"-> {verdict}", file=out)
    print(f"reprobe verdict: {confirmed}/{len(flagged)} confirmed "
          f"(advisory; exit code reflects the recorded files)", file=out)
    return confirmed


def _bench(name, real_time, items=0.0, unit="ns", run_type="iteration"):
    return {"name": name, "real_time": real_time, "time_unit": unit,
            "items_per_second": items, "run_type": run_type}


def self_test():
    """Built-in checks of the aggregation and flagging logic."""
    sink = io.StringIO()

    # 1. Repetitions aggregate by median: one planted 5x-slow repetition
    # must not move the verdict (the mean would report +134%).
    base = parse({"benchmarks": [_bench("BM_X/10", 100.0)]})
    noisy = parse({"benchmarks": [
        _bench("BM_X/10", 100.0), _bench("BM_X/10", 102.0),
        _bench("BM_X/10", 500.0),
    ]})
    assert noisy["BM_X/10"]["real_time"] == 102.0, noisy
    assert report(base, noisy, 10.0, out=sink, err=sink) == (0, [])

    # ... and a genuine regression present in every repetition still flags
    # (and lands in the reprobe-able flagged list).
    slow = parse({"benchmarks": [
        _bench("BM_X/10", 130.0), _bench("BM_X/10", 131.0),
        _bench("BM_X/10", 132.0),
    ]})
    assert report(base, slow, 10.0, out=sink, err=sink) == (1, ["BM_X/10"])

    # 2. google-benchmark aggregate rows are skipped, whatever they claim.
    agg = parse({"benchmarks": [
        _bench("BM_X/10", 100.0),
        _bench("BM_X/10_mean", 9999.0, run_type="aggregate"),
        _bench("BM_X/10_median", 9999.0, run_type="aggregate"),
    ]})
    assert agg["BM_X/10"]["real_time"] == 100.0, agg

    # 3. Time units normalize: 0.1 us == 100 ns, no flag.
    us = parse({"benchmarks": [_bench("BM_X/10", 0.1, unit="us")]})
    assert us["BM_X/10"]["real_time"] == 100.0, us
    assert report(base, us, 10.0, out=sink, err=sink) == (0, [])

    # 4. A benchmark missing from the new run counts as a regression, but is
    # not reprobe-able (there is nothing to re-run).
    assert report(base, parse({"benchmarks": []}), 10.0,
                  out=sink, err=sink) == (1, [])

    # 5. Rows new in the new run (e.g. a narrow-plane bench added alongside
    # its wide sibling) are reported as baseline-less, never flagged: adding
    # a benchmark must not trip BENCH_FAIL_ON_REGRESSION.
    widened = parse({"benchmarks": [
        _bench("BM_X/10", 100.0),
        _bench("BM_NetworkRoundNarrow/10000", 50.0, items=2.0),
    ]})
    new_sink = io.StringIO()
    assert report(base, widened, 10.0, out=new_sink, err=new_sink) == (0, [])
    assert "BM_NetworkRoundNarrow/10000" in new_sink.getvalue(), \
        new_sink.getvalue()
    assert "no baseline" in new_sink.getvalue(), new_sink.getvalue()

    # 6. items_per_second medians ride along.
    ips = parse({"benchmarks": [
        _bench("BM_X/10", 100.0, items=1.0),
        _bench("BM_X/10", 100.0, items=3.0),
        _bench("BM_X/10", 100.0, items=90.0),
    ]})
    assert ips["BM_X/10"]["items_per_second"] == 3.0, ips

    # 7. service_load JSON parses into percentile/time rows (ms -> ns) and
    # regresses through the same flagging path as microbench rows.
    svc = {
        "kind": "service_load",
        "latency_ms": {"p50": 0.2, "p95": 1.0, "p99": 2.0},
        "queue_wait_ms": {"p50": 0.01, "p95": 0.5, "p99": 1.0},
        "throughput_jobs_per_sec": 10000.0,
    }
    rows = parse(svc)
    assert rows["service_load/latency_ms/p99"]["real_time"] == 2e6, rows
    assert rows["service_load/time_per_job"]["real_time"] == 1e5, rows
    assert rows["service_load/time_per_job"]["items_per_second"] == 1e4, rows
    assert len(rows) == 7, rows
    slow_svc = dict(svc, latency_ms={"p50": 0.2, "p95": 1.0, "p99": 3.0})
    assert report(parse(svc), parse(slow_svc), 10.0,
                  out=sink, err=sink)[0] == 1

    # 8. Reprobe verdicts through an injected runner: a probe median that
    # regresses too says CONFIRMED; one back inside the threshold says
    # noise. The runner must receive an exact-name anchored filter.
    seen_filters = []

    def fake_run(filter_regex, result=[]):
        seen_filters.append(filter_regex)
        return {"benchmarks": [
            _bench("BM_X/10", 131.0), _bench("BM_X/10", 130.0),
            _bench("BM_X/10", 500.0), _bench("BM_X/10", 129.0),
            _bench("BM_X/10", 132.0),
        ]}

    probe_sink = io.StringIO()
    assert reprobe_flagged("unused", ["BM_X/10"], base, 10.0,
                           out=probe_sink, err=probe_sink,
                           run_fn=fake_run) == 1
    assert seen_filters == ["^(BM_X/10)$"], seen_filters
    assert "CONFIRMED" in probe_sink.getvalue(), probe_sink.getvalue()

    def fake_run_ok(filter_regex):
        return {"benchmarks": [_bench("BM_X/10", 101.0)] * 5}

    probe_sink = io.StringIO()
    assert reprobe_flagged("unused", ["BM_X/10"], base, 10.0,
                           out=probe_sink, err=probe_sink,
                           run_fn=fake_run_ok) == 0
    assert "probably noise" in probe_sink.getvalue(), probe_sink.getvalue()

    print("compare_benches.py self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("old", nargs="?")
    ap.add_argument("new", nargs="?")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="flag real_time regressions above this percent")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in aggregation/flagging checks")
    ap.add_argument("--reprobe-flagged", metavar="BIN",
                    help="re-run flagged benchmarks from this binary at 5 "
                         "repetitions and report the probe median "
                         "(advisory; exit code unchanged)")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.old is None or args.new is None:
        ap.error("OLD.json and NEW.json are required unless --self-test")

    old = load(args.old)
    regressions, flagged = report(old, load(args.new), args.threshold)
    if flagged and args.reprobe_flagged:
        reprobe_flagged(args.reprobe_flagged, flagged, old, args.threshold)
    return 1 if regressions else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SystemExit:
        raise
    except Exception as e:  # tool failure, not a perf verdict
        print(f"compare_benches.py failed: {e}", file=sys.stderr)
        sys.exit(125)
