#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and report per-benchmark deltas.

Usage: compare_benches.py OLD.json NEW.json [--threshold PCT]

For every benchmark present in both files, prints the real_time delta (and
items_per_second when available) as a percentage of the old value. Rows whose
real_time regressed by more than --threshold percent (default 10) are flagged
with `!! REGRESSION`. Benchmarks present in the baseline but missing from the
new run are listed and counted as regressions too — a bench that silently
stopped running is exactly the rot this report exists to catch.

Exit codes: 0 = no flags, 1 = regressions/missing benchmarks found (count is
printed), 125 = the tool itself failed (unreadable/malformed JSON, ...).
run_benches.sh distinguishes the two non-zero cases so a tooling crash is
never reported as a perf regression.

Aggregate rows (_mean/_median/_stddev/_cv) are skipped; when a file contains
repetitions, only the per-repetition rows of the same name are averaged.
"""
import argparse
import json
import sys


NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    counts = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or name.rsplit("_", 1)[-1] in (
            "mean",
            "median",
            "stddev",
            "cv",
        ):
            continue
        # Average repetitions of the same benchmark name. real_time is
        # normalized to ns here so deltas stay correct even if a benchmark's
        # reported time_unit differs between the two files.
        prev = out.get(name)
        entry = {
            "real_time": float(b.get("real_time", 0.0))
            * NS_PER_UNIT.get(b.get("time_unit", "ns"), 1.0),
            "items_per_second": float(b.get("items_per_second", 0.0)),
        }
        if prev is None:
            out[name] = entry
            counts[name] = 1
        else:
            n = counts[name] = counts[name] + 1
            for k in ("real_time", "items_per_second"):
                prev[k] += (entry[k] - prev[k]) / n
    return out


def fmt_time(ns):
    for div, suffix in ((1e9, "s"), (1e6, "ms"), (1e3, "us")):
        if ns >= div:
            return f"{ns / div:.2f} {suffix}"
    return f"{ns:.0f} ns"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="flag real_time regressions above this percent")
    args = ap.parse_args()

    old = load(args.old)
    new = load(args.new)
    common = [n for n in new if n in old]
    regressions = 0
    if common:
        width = max(len(n) for n in common)
        print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  "
              f"{'time Δ':>8}  {'items/s Δ':>9}")
    else:
        # Still fall through: the missing-from-new accounting below must run
        # even (especially) when nothing survived into the new file.
        print("no common benchmarks between the two files", file=sys.stderr)
    for name in common:
        o, n = old[name], new[name]
        if o["real_time"] <= 0:
            continue
        dt = 100.0 * (n["real_time"] - o["real_time"]) / o["real_time"]
        if o["items_per_second"] > 0 and n["items_per_second"] > 0:
            dips = 100.0 * (n["items_per_second"] - o["items_per_second"]) \
                / o["items_per_second"]
            ips = f"{dips:+8.1f}%"
        else:
            ips = "        -"
        flag = ""
        if dt > args.threshold:
            flag = "  !! REGRESSION"
            regressions += 1
        print(f"{name:<{width}}  {fmt_time(o['real_time']):>10}  "
              f"{fmt_time(n['real_time']):>10}  {dt:+7.1f}%  "
              f"{ips}{flag}")
    new_only = [n for n in new if n not in old]
    if new_only:
        print(f"(new benchmarks, no baseline: {', '.join(new_only)})")
    old_only = [n for n in old if n not in new]
    if old_only:
        print(f"!! MISSING from new run (present in baseline): "
              f"{', '.join(old_only)}", file=sys.stderr)
        regressions += len(old_only)
    if regressions:
        print(f"{regressions} benchmark(s) regressed more than "
              f"{args.threshold:.0f}% in real time or went missing",
              file=sys.stderr)
    return 1 if regressions else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SystemExit:
        raise
    except Exception as e:  # tool failure, not a perf verdict
        print(f"compare_benches.py failed: {e}", file=sys.stderr)
        sys.exit(125)
