// Service load driver: the SolverService under a zipfian multi-tenant job
// stream, reporting the latency distribution the scheduler actually
// delivers (not a microbench of one solver).
//
// Shape skew is the point: each of --tenants tenants owns three request
// templates (congest / bipartite / token dropping on its own graphs), and
// jobs pick their tenant from a zipf(s) distribution — a few hot tenants
// dominate, so the shared topology cache should serve most plans
// (cache-share counters land in the JSON next to the percentiles). Job
// priorities and deadlines are mixed in deterministically per job index, so
// the run exercises the PR 8 scheduler: strict classes, EDF, and the
// deadline-bounded blocking submit.
//
// Two loop shapes:
//   --mode closed (default): --concurrency driver threads, each submitting
//     its next job only after its previous one resolved (think: N synchronous
//     tenants). Latency here is queue wait + service time under steady load.
//   --mode open: one thread paces arrivals at --rate jobs/sec regardless of
//     completions (think: external traffic). Overload shows up as growing
//     queue waits and (with deadlines) submit timeouts instead of driver
//     backoff.
//
// Every job is generated from (seed, job index) alone, so the stream is
// identical across runs, modes, and thread interleavings; with --verify 1
// (default) each kOk result is checked bit-identical to a direct
// execute_request() reference for its template — the sanitizer CI smoke
// runs rely on that check.
//
// Output: a "kind": "service_load" JSON (latency/queue-wait summaries in
// ms, throughput, status and cache counters) to --out, console table to
// stdout. bench/run_benches.sh BENCH_SERVICE=1 runs this and diffs the
// percentiles against the previous run via compare_benches.py.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/solver_registry.hpp"
#include "graph/generators.hpp"
#include "service/solver_service.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dec {
namespace {

struct Config {
  int jobs = 8000;
  int tenants = 12;
  int workers = 4;
  std::size_t queue_capacity = 64;
  std::string mode = "closed";
  int concurrency = 16;     // closed loop: in-flight driver threads
  double rate = 4000.0;     // open loop: arrivals per second
  double zipf_s = 1.1;      // tenant skew exponent
  std::uint64_t seed = 42;
  int deadline_ms = 50;     // deadline attached to every 4th job; 0 = never
  int verify = 1;
  std::string out;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--jobs N] [--tenants N] [--workers N] [--queue N]\n"
      "          [--mode closed|open] [--concurrency N] [--rate JOBS_PER_S]\n"
      "          [--zipf-s S] [--seed N] [--deadline-ms N] [--verify 0|1]\n"
      "          [--out FILE.json]\n",
      argv0);
  std::exit(2);
}

Config parse_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--jobs") cfg.jobs = std::atoi(next());
    else if (a == "--tenants") cfg.tenants = std::atoi(next());
    else if (a == "--workers") cfg.workers = std::atoi(next());
    else if (a == "--queue")
      cfg.queue_capacity = static_cast<std::size_t>(std::atoll(next()));
    else if (a == "--mode") cfg.mode = next();
    else if (a == "--concurrency") cfg.concurrency = std::atoi(next());
    else if (a == "--rate") cfg.rate = std::atof(next());
    else if (a == "--zipf-s") cfg.zipf_s = std::atof(next());
    else if (a == "--seed")
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (a == "--deadline-ms") cfg.deadline_ms = std::atoi(next());
    else if (a == "--verify") cfg.verify = std::atoi(next());
    else if (a == "--out") cfg.out = next();
    else usage(argv[0]);
  }
  if (cfg.jobs <= 0 || cfg.tenants <= 0 || cfg.concurrency <= 0 ||
      (cfg.mode != "closed" && cfg.mode != "open") || cfg.rate <= 0.0) {
    usage(argv[0]);
  }
  return cfg;
}

// ------------------------------------------------------ deterministic stream

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_double(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Zipf over [0, n): P(t) proportional to 1/(t+1)^s, sampled by inverse CDF.
/// n is a tenant count (tens), so the precomputed table is the whole cost.
class ZipfTable {
 public:
  ZipfTable(int n, double s) : cdf_(static_cast<std::size_t>(n)) {
    double total = 0.0;
    for (int t = 0; t < n; ++t) {
      total += 1.0 / std::pow(static_cast<double>(t + 1), s);
      cdf_[static_cast<std::size_t>(t)] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  int sample(double u) const {
    for (std::size_t t = 0; t < cdf_.size(); ++t) {
      if (u <= cdf_[t]) return static_cast<int>(t);
    }
    return static_cast<int>(cdf_.size()) - 1;
  }

 private:
  std::vector<double> cdf_;
};

constexpr int kKinds = 3;  // congest, bipartite, token dropping per tenant

/// Tenant templates, built once: jobs reference these shared requests (the
/// graphs are shared_ptrs, so no per-job graph build cost in the loop).
std::vector<SolverRequest> build_templates(const Config& cfg) {
  std::vector<SolverRequest> templates;
  templates.reserve(static_cast<std::size_t>(cfg.tenants * kKinds));
  for (int t = 0; t < cfg.tenants; ++t) {
    Rng rng(cfg.seed * 1000003ull + static_cast<std::uint64_t>(t));
    // Hot tenants (low t) get slightly larger instances: skew in work, not
    // just in arrival counts.
    const int n = 40 + 4 * (t % 5);
    auto g = std::make_shared<const Graph>(gen::gnp(n, 0.12, rng));
    templates.push_back(make_congest_request(std::move(g), {1.0}));

    auto bg = std::make_shared<const BipartiteGraph>(
        gen::random_bipartite(16 + t % 6, 14 + t % 4, 0.18, rng));
    std::shared_ptr<const Graph> bgraph(bg, &bg->graph);
    BipartiteColoringJob bj;
    bj.parts = bg->parts;
    templates.push_back(make_bipartite_request(bgraph, std::move(bj)));

    auto game = std::make_shared<const Digraph>(
        layered_game(3 + t % 2, 8, 3, rng));
    TokenDroppingJob tj;
    tj.params.k = 10 + t % 4;
    tj.params.delta = 1;
    tj.params.alpha.assign(static_cast<std::size_t>(game->num_nodes()), 2);
    tj.initial_tokens.assign(static_cast<std::size_t>(game->num_nodes()), 5);
    templates.push_back(
        make_token_dropping_request(std::move(game), std::move(tj)));
  }
  return templates;
}

struct JobPlan {
  int template_index;
  SubmitOptions opts;
};

/// Everything about job i follows from (seed, i): tenant via zipf, kind,
/// priority (20/60/20), deadline on every 4th job.
JobPlan plan_job(const Config& cfg, const ZipfTable& zipf, int i) {
  const std::uint64_t h =
      splitmix64(cfg.seed ^ (0xabcdull + static_cast<std::uint64_t>(i)));
  const int tenant = zipf.sample(unit_double(h));
  const int kind = static_cast<int>(splitmix64(h) % kKinds);
  JobPlan plan;
  plan.template_index = tenant * kKinds + kind;
  const std::uint64_t p = splitmix64(h ^ 0x5bd1e995ull) % 10;
  plan.opts.priority = p < 2   ? Priority::kHigh
                       : p < 8 ? Priority::kNormal
                               : Priority::kLow;
  if (cfg.deadline_ms > 0 && i % 4 == 3) {
    plan.opts.deadline = std::chrono::milliseconds(cfg.deadline_ms);
  }
  return plan;
}

// ------------------------------------------------------------ verification

auto congest_key(const CongestColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels, r.tail_degree);
}

auto bipartite_key(const BipartiteColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels,
                    r.leaf_degree_bound, r.chi);
}

auto token_key(const TokenDroppingResult& r) {
  return std::tuple(r.tokens, r.edge_passive, r.phases, r.rounds,
                    r.tokens_moved, r.max_message_bits);
}

bool identical(const SolverResult& ref, const SolverResult& got) {
  if (ref.output.index() != got.output.index()) return false;
  if (const auto* r = std::get_if<CongestColoringResult>(&ref.output)) {
    if (congest_key(*r) !=
        congest_key(std::get<CongestColoringResult>(got.output)))
      return false;
  } else if (const auto* r =
                 std::get_if<BipartiteColoringResult>(&ref.output)) {
    if (bipartite_key(*r) !=
        bipartite_key(std::get<BipartiteColoringResult>(got.output)))
      return false;
  } else if (const auto* r = std::get_if<TokenDroppingResult>(&ref.output)) {
    if (token_key(*r) != token_key(std::get<TokenDroppingResult>(got.output)))
      return false;
  }
  return ref.ledger.breakdown() == got.ledger.breakdown();
}

// --------------------------------------------------------------- the drive

struct DriveResult {
  std::vector<double> latency_ms;
  std::vector<double> queue_wait_ms;
  std::int64_t ok = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t rejected = 0;
  std::int64_t other = 0;        // cancelled/failed: should stay 0
  std::int64_t verified = 0;
  std::int64_t mismatches = 0;
  double wall_seconds = 0.0;
};

void record(const SolverResult& got, const SolverResult* ref,
            DriveResult& out) {
  out.latency_ms.push_back(static_cast<double>(got.e2e_latency_ns) / 1e6);
  switch (got.status) {
    case SolverStatus::kOk:
      ++out.ok;
      out.queue_wait_ms.push_back(static_cast<double>(got.queue_wait_ns) /
                                  1e6);
      if (ref != nullptr) {
        ++out.verified;
        if (!identical(*ref, got)) ++out.mismatches;
      }
      break;
    case SolverStatus::kDeadlineExceeded:
      ++out.deadline_exceeded;
      break;
    case SolverStatus::kRejected:
      ++out.rejected;
      break;
    default:
      ++out.other;
      break;
  }
}

DriveResult drive(const Config& cfg, SolverService& service,
                  const std::vector<SolverRequest>& templates,
                  const std::vector<SolverResult>& refs) {
  const ZipfTable zipf(cfg.tenants, cfg.zipf_s);
  const auto ref_for = [&](const JobPlan& plan) -> const SolverResult* {
    return refs.empty()
               ? nullptr
               : &refs[static_cast<std::size_t>(plan.template_index)];
  };
  DriveResult total;
  const auto start = std::chrono::steady_clock::now();

  if (cfg.mode == "closed") {
    // N driver threads, each synchronous: submit, wait, repeat. The shared
    // counter hands out job indices; the stream content is index-derived,
    // so the interleaving only affects timing, never the job set.
    std::atomic<int> next{0};
    std::vector<DriveResult> per_thread(
        static_cast<std::size_t>(cfg.concurrency));
    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<std::size_t>(cfg.concurrency));
    for (int d = 0; d < cfg.concurrency; ++d) {
      drivers.emplace_back([&, d] {
        DriveResult& mine = per_thread[static_cast<std::size_t>(d)];
        for (;;) {
          const int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= cfg.jobs) break;
          const JobPlan plan = plan_job(cfg, zipf, i);
          JobTicket t = service.submit(
              templates[static_cast<std::size_t>(plan.template_index)],
              plan.opts);
          record(t.result.get(), ref_for(plan), mine);
        }
      });
    }
    for (std::thread& d : drivers) d.join();
    for (DriveResult& mine : per_thread) {
      total.latency_ms.insert(total.latency_ms.end(),
                              mine.latency_ms.begin(), mine.latency_ms.end());
      total.queue_wait_ms.insert(total.queue_wait_ms.end(),
                                 mine.queue_wait_ms.begin(),
                                 mine.queue_wait_ms.end());
      total.ok += mine.ok;
      total.deadline_exceeded += mine.deadline_exceeded;
      total.rejected += mine.rejected;
      total.other += mine.other;
      total.verified += mine.verified;
      total.mismatches += mine.mismatches;
    }
  } else {
    // Open loop: pace arrivals at cfg.rate regardless of completions.
    // submit() backpressure (deadline-bounded for deadlined jobs) is part
    // of the measured behavior; futures are collected afterwards.
    const auto interarrival = std::chrono::nanoseconds(
        static_cast<std::int64_t>(1e9 / cfg.rate));
    std::vector<std::pair<JobTicket, const SolverResult*>> pending;
    pending.reserve(static_cast<std::size_t>(cfg.jobs));
    auto next_arrival = std::chrono::steady_clock::now();
    for (int i = 0; i < cfg.jobs; ++i) {
      std::this_thread::sleep_until(next_arrival);
      next_arrival += interarrival;
      const JobPlan plan = plan_job(cfg, zipf, i);
      JobTicket t = service.submit(
          templates[static_cast<std::size_t>(plan.template_index)],
          plan.opts);
      pending.emplace_back(std::move(t), ref_for(plan));
    }
    for (auto& [ticket, ref] : pending) {
      record(ticket.result.get(), ref, total);
    }
  }

  total.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return total;
}

// ------------------------------------------------------------------ output

void write_summary(std::FILE* f, const char* key, const Summary& s,
                   const char* trail) {
  std::fprintf(f,
               "  \"%s\": {\"count\": %zu, \"min\": %.6f, \"max\": %.6f, "
               "\"mean\": %.6f, \"p50\": %.6f, \"p95\": %.6f, "
               "\"p99\": %.6f}%s\n",
               key, s.count, s.min, s.max, s.mean, s.p50, s.p95, s.p99,
               trail);
}

int write_json(const Config& cfg, const DriveResult& r,
               const Summary& latency, const Summary& queue_wait,
               const ServiceStats& stats, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"kind\": \"service_load\",\n");
  std::fprintf(
      f,
      "  \"config\": {\"jobs\": %d, \"tenants\": %d, \"workers\": %d, "
      "\"queue_capacity\": %zu, \"mode\": \"%s\", \"concurrency\": %d, "
      "\"rate\": %.1f, \"zipf_s\": %.3f, \"seed\": %llu, "
      "\"deadline_ms\": %d},\n",
      cfg.jobs, cfg.tenants, cfg.workers, cfg.queue_capacity,
      cfg.mode.c_str(), cfg.concurrency, cfg.rate, cfg.zipf_s,
      static_cast<unsigned long long>(cfg.seed), cfg.deadline_ms);
  write_summary(f, "latency_ms", latency, ",");
  write_summary(f, "queue_wait_ms", queue_wait, ",");
  std::fprintf(f, "  \"throughput_jobs_per_sec\": %.2f,\n",
               r.wall_seconds > 0
                   ? static_cast<double>(r.ok) / r.wall_seconds
                   : 0.0);
  std::fprintf(f,
               "  \"statuses\": {\"ok\": %lld, \"deadline_exceeded\": %lld, "
               "\"rejected\": %lld, \"other\": %lld, "
               "\"submit_timeouts\": %lld},\n",
               static_cast<long long>(r.ok),
               static_cast<long long>(r.deadline_exceeded),
               static_cast<long long>(r.rejected),
               static_cast<long long>(r.other),
               static_cast<long long>(stats.submit_timeouts));
  std::fprintf(f,
               "  \"cache\": {\"plans_built\": %lld, \"plans_shared\": %lld, "
               "\"hit_rate\": %.6f, \"parked_run_states\": %zu},\n",
               static_cast<long long>(stats.plans_built),
               static_cast<long long>(stats.plans_shared),
               stats.cache_hit_rate, stats.parked_run_states);
  std::fprintf(f, "  \"verified_jobs\": %lld,\n",
               static_cast<long long>(r.verified));
  std::fprintf(f, "  \"mismatches\": %lld\n",
               static_cast<long long>(r.mismatches));
  std::fprintf(f, "}\n");
  std::fclose(f);
  return 0;
}

int run(const Config& cfg) {
  const std::vector<SolverRequest> templates = build_templates(cfg);

  // Direct-call references, one per template (bit-identity oracle).
  std::vector<SolverResult> refs;
  if (cfg.verify != 0) {
    refs.reserve(templates.size());
    for (const SolverRequest& req : templates) {
      refs.push_back(execute_request(req, 1, nullptr));
    }
  }

  ServiceConfig scfg;
  scfg.workers = cfg.workers;
  scfg.queue_capacity = cfg.queue_capacity;
  SolverService service(scfg);
  const DriveResult r = drive(cfg, service, templates, refs);
  const ServiceStats stats = service.stats();

  const Summary latency = summarize(r.latency_ms);
  const Summary queue_wait = summarize(r.queue_wait_ms);
  const double throughput =
      r.wall_seconds > 0 ? static_cast<double>(r.ok) / r.wall_seconds : 0.0;

  std::printf("service_load: mode=%s jobs=%d tenants=%d zipf_s=%.2f "
              "workers=%d queue=%zu\n",
              cfg.mode.c_str(), cfg.jobs, cfg.tenants, cfg.zipf_s,
              cfg.workers, cfg.queue_capacity);
  std::printf("  ok=%lld deadline_exceeded=%lld rejected=%lld other=%lld "
              "submit_timeouts=%lld\n",
              static_cast<long long>(r.ok),
              static_cast<long long>(r.deadline_exceeded),
              static_cast<long long>(r.rejected),
              static_cast<long long>(r.other),
              static_cast<long long>(stats.submit_timeouts));
  std::printf("  throughput=%.1f jobs/s over %.2f s\n", throughput,
              r.wall_seconds);
  std::printf("  latency_ms    p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
              latency.p50, latency.p95, latency.p99, latency.max);
  std::printf("  queue_wait_ms p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
              queue_wait.p50, queue_wait.p95, queue_wait.p99, queue_wait.max);
  std::printf("  cache: built=%lld shared=%lld hit_rate=%.3f parked=%zu\n",
              static_cast<long long>(stats.plans_built),
              static_cast<long long>(stats.plans_shared),
              stats.cache_hit_rate, stats.parked_run_states);
  if (cfg.verify != 0) {
    std::printf("  verify: %lld kOk results checked, %lld mismatches\n",
                static_cast<long long>(r.verified),
                static_cast<long long>(r.mismatches));
  }

  if (r.other != 0) {
    std::fprintf(stderr,
                 "error: %lld jobs resolved cancelled/failed — the driver "
                 "submits none of those\n",
                 static_cast<long long>(r.other));
    return 1;
  }
  if (r.mismatches != 0) {
    std::fprintf(stderr,
                 "error: %lld scheduled results differ from direct calls\n",
                 static_cast<long long>(r.mismatches));
    return 1;
  }
  if (!cfg.out.empty()) {
    return write_json(cfg, r, latency, queue_wait, stats, cfg.out);
  }
  return 0;
}

}  // namespace
}  // namespace dec

int main(int argc, char** argv) {
  return dec::run(dec::parse_args(argc, argv));
}
