// Quickstart: color the edges of a random graph three ways and verify.
//
//   build/examples/quickstart [n] [degree]
//
// Demonstrates the three public entry points:
//  * solve_2delta_minus_1    — LOCAL (2Δ−1)-edge coloring (Theorem 1.1),
//  * congest_edge_coloring   — CONGEST (8+ε)Δ-edge coloring (Theorem 1.2),
//  * edge_color_fast_2delta  — the O(Δ + log* n) baseline for comparison.
#include <cstdio>
#include <cstdlib>

#include "coloring/baselines.hpp"
#include "core/congest_coloring.hpp"
#include "core/local_coloring.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace dec;
  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 300;
  const int d = argc > 2 ? std::atoi(argv[2]) : 12;

  Rng rng(2022);  // PODC 2022
  const Graph g = gen::random_regular(n, d, rng);
  std::printf("graph: n=%d, m=%d, Delta=%d, Delta-bar=%d\n\n", g.num_nodes(),
              g.num_edges(), g.max_degree(), g.max_edge_degree());

  {
    RoundLedger ledger;
    const auto r = solve_2delta_minus_1(g, ParamMode::kPractical, &ledger);
    std::printf("LOCAL (2Delta-1)-edge coloring   [Theorem 1.1]\n");
    std::printf("  colors used : %d (budget %d)\n", count_colors(r.colors),
                2 * g.max_degree() - 1);
    std::printf("  proper      : %s\n",
                is_complete_proper_edge_coloring(g, r.colors) ? "yes" : "NO");
    std::printf("  rounds      : %lld (outer iterations: %d)\n\n",
                static_cast<long long>(r.rounds), r.iterations);
  }
  {
    const auto r = congest_edge_coloring(g, /*eps=*/1.0);
    std::printf("CONGEST (8+eps)Delta coloring    [Theorem 1.2]\n");
    std::printf("  palette     : %d  (= %.2f x Delta; bound 9 x Delta)\n",
                r.palette, static_cast<double>(r.palette) / g.max_degree());
    std::printf("  proper      : %s\n",
                is_complete_proper_edge_coloring(g, r.colors) ? "yes" : "NO");
    std::printf("  rounds      : %lld\n\n", static_cast<long long>(r.rounds));
  }
  {
    const auto r = edge_color_fast_2delta(g);
    std::printf("baseline O(Delta + log* n)       [Panconesi-Rizzi style]\n");
    std::printf("  palette     : %d\n", r.palette);
    std::printf("  rounds      : %lld\n", static_cast<long long>(r.rounds));
  }
  return 0;
}
