// TDMA link scheduling with per-link forbidden slots — the (degree+1)-list
// edge coloring API on a realistic constraint pattern.
//
// Radios on a grid network must assign each link a time slot such that no
// two links sharing a radio use the same slot (primary interference). Some
// slots are locally unavailable per link (regulatory blackouts, coexistence
// with other networks), which is exactly a *list* constraint: each link gets
// an admissible-slot list of size degree+1, and Theorem 1.1's algorithm
// finds a valid assignment with purely local coordination.
#include <cstdio>

#include "core/local_coloring.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace dec;
  Rng rng(42);

  // 12x12 grid of radios; links = grid edges.
  const Graph g = gen::grid(12, 12);
  std::printf("network: %d radios, %d links, max radio degree %d\n",
              g.num_nodes(), g.num_edges(), g.max_degree());

  // Slot universe: 4x the minimum; each link draws a random admissible list
  // of size degree+1 (its local blackout pattern).
  const int slots = 4 * g.max_edge_degree();
  const ListEdgeInstance inst = make_random_list_instance(g, slots, rng);
  std::printf("slot universe: %d, per-link admissible slots: degree+1\n\n",
              slots);

  RoundLedger ledger;
  const auto r =
      solve_list_edge_coloring(g, inst, ParamMode::kPractical, &ledger);

  std::printf("schedule found: %s\n",
              check_list_coloring(inst, r.colors) ? "yes" : "NO");
  std::printf("distinct slots used: %d\n", count_colors(r.colors));
  std::printf("rounds: %lld\n", static_cast<long long>(r.rounds));
  std::printf("\nround breakdown:\n%s", ledger.report().c_str());

  // Per-radio view for one radio in the middle of the grid.
  const NodeId radio = 6 * 12 + 6;
  std::printf("slots at radio %d:", radio);
  for (const Incidence& inc : g.neighbors(radio)) {
    std::printf(" link->%d: slot %d;", inc.neighbor,
                r.colors[static_cast<std::size_t>(inc.edge)]);
  }
  std::printf("\n");
  return check_list_coloring(inst, r.colors) ? 0 : 1;
}
