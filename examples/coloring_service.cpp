// Multi-tenant solver service demo: many concurrent jobs, one shared arena.
//
//   build/example_coloring_service [tenants] [jobs_per_tenant]
//
// Simulates `tenants` clients each submitting a batch of mixed jobs —
// bipartite edge colorings, balanced orientations, defective 2-edge
// colorings, and token dropping games — to one SolverService. Tenants
// reuse a handful of graph shapes (as production traffic does), so the
// shared topology cache plans each shape once and every later job hits it;
// the printed service stats show the plans built vs shared, the cache hit
// rate, and the queue wait the bounded queue imposed.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <memory>
#include <vector>

#include "core/solver_registry.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "service/solver_service.hpp"

int main(int argc, char** argv) {
  using namespace dec;
  const int tenants = argc > 1 ? std::atoi(argv[1]) : 4;
  const int jobs_per_tenant = argc > 2 ? std::atoi(argv[2]) : 6;

  // A small catalogue of shapes the tenants draw from — the service sees
  // each distinct shape many times across tenants.
  std::vector<std::shared_ptr<const BipartiteGraph>> shapes;
  for (int s = 0; s < 3; ++s) {
    Rng rng(100 + static_cast<std::uint64_t>(s));
    shapes.push_back(std::make_shared<const BipartiteGraph>(
        gen::random_bipartite(40 + 10 * s, 40, 0.12, rng)));
  }

  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 16;
  SolverService service(cfg);

  std::vector<JobTicket> tickets;
  // Graph each ticket's job ran on (null for digraph jobs), for validation.
  std::vector<std::shared_ptr<const Graph>> job_graph;
  for (int t = 0; t < tenants; ++t) {
    for (int j = 0; j < jobs_per_tenant; ++j) {
      const auto& bg = shapes[static_cast<std::size_t>((t + j) % 3)];
      std::shared_ptr<const Graph> g(bg, &bg->graph);
      job_graph.push_back(j % 4 == 3 ? nullptr : g);
      Rng rng(1000 + 17 * static_cast<std::uint64_t>(t) +
              static_cast<std::uint64_t>(j));
      switch (j % 4) {
        case 0: {
          BipartiteColoringJob job;
          job.parts = bg->parts;
          job.eps = 1.0;
          tickets.push_back(
              service.submit(make_bipartite_request(g, std::move(job))));
          break;
        }
        case 1: {
          BalancedOrientationJob job;
          job.parts = bg->parts;
          job.eta.assign(static_cast<std::size_t>(g->num_edges()), 0.0);
          for (auto& v : job.eta) v = 2.0 * rng.next_double() - 1.0;
          tickets.push_back(
              service.submit(make_orientation_request(g, std::move(job))));
          break;
        }
        case 2: {
          Defective2ECJob job;
          job.parts = bg->parts;
          job.lambda.assign(static_cast<std::size_t>(g->num_edges()), 0.5);
          job.eps = 1.0;
          tickets.push_back(
              service.submit(make_defective2ec_request(g, std::move(job))));
          break;
        }
        default: {
          auto game = std::make_shared<const Digraph>(
              layered_game(3, 8, 3, rng));
          TokenDroppingJob job;
          job.params.k = 10;
          job.params.delta = 1;
          job.params.alpha.assign(
              static_cast<std::size_t>(game->num_nodes()), 2);
          job.initial_tokens.assign(
              static_cast<std::size_t>(game->num_nodes()), 5);
          tickets.push_back(service.submit(
              make_token_dropping_request(std::move(game), std::move(job))));
          break;
        }
      }
    }
  }

  // A latecomer with an impossible deadline shows the failure taxonomy:
  // its future still resolves — with kDeadlineExceeded, not an exception.
  {
    const auto& bg = shapes[0];
    std::shared_ptr<const Graph> g(bg, &bg->graph);
    BalancedOrientationJob job;
    job.parts = bg->parts;
    job.eta.assign(static_cast<std::size_t>(g->num_edges()), 0.0);
    SubmitOptions opts;
    opts.round_budget = 2;  // a couple of round barriers, then abort
    JobTicket doomed =
        service.submit(make_orientation_request(g, std::move(job)), opts);
    const SolverResult r = doomed.result.get();
    std::printf("budgeted job resolved: %s\n", to_string(r.status));
  }

  std::int64_t total_rounds = 0;
  int colorings = 0, proper = 0, job_errors = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    // Every ticket's future is satisfied with a value; failures are data.
    const SolverResult r = tickets[i].result.get();
    if (r.status != SolverStatus::kOk) {
      ++job_errors;
      std::printf("job %zu %s: %s\n", i, to_string(r.status),
                  r.error.c_str());
      continue;
    }
    total_rounds += r.ledger.total();
    if (const auto* c = std::get_if<BipartiteColoringResult>(&r.output)) {
      ++colorings;
      if (is_complete_proper_edge_coloring(*job_graph[i], c->colors)) {
        ++proper;
      }
    }
  }

  const ServiceStats stats = service.stats();
  std::printf("service: %d tenants x %d jobs = %d total\n", tenants,
              jobs_per_tenant, tenants * jobs_per_tenant);
  std::printf("  completed        : %lld (failed %lld, deadline %lld)\n",
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.failed),
              static_cast<long long>(stats.deadline_exceeded));
  std::printf("  plans built      : %lld\n",
              static_cast<long long>(stats.plans_built));
  std::printf("  plans shared     : %lld (hit rate %.0f%%)\n",
              static_cast<long long>(stats.plans_shared),
              100.0 * stats.cache_hit_rate);
  std::printf("  parked run states: %zu\n", stats.parked_run_states);
  std::printf("  queue wait       : avg %.2f ms, max %.2f ms\n",
              stats.avg_queue_wait_ms, stats.max_queue_wait_ms);
  std::printf("  simulated rounds : %lld across all jobs\n",
              static_cast<long long>(total_rounds));
  std::printf("  colorings proper : %d / %d\n", proper, colorings);

  if (stats.failed != 0 || job_errors != 0 || proper != colorings) return 1;
  if (stats.deadline_exceeded != 1) {
    std::printf("unexpected: budgeted job did not report its deadline\n");
    return 1;
  }
  if (stats.plans_shared == 0) {
    std::printf("unexpected: no plan sharing across tenants\n");
    return 1;
  }
  return 0;
}
