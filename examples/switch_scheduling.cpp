// Crossbar switch scheduling — the classic edge coloring application.
//
// An input-queued switch with N input ports and N output ports holds a
// demand matrix: cell (i, j) > 0 means "input i has traffic for output j".
// In one time slot each input can talk to at most one output and vice versa,
// so a conflict-free slot is a matching — and a full schedule is an edge
// coloring of the bipartite demand graph, one color class per slot.
//
// König's theorem says Δ slots suffice offline; the distributed algorithms
// here trade a few extra slots for *local* computation: each port decides
// its own schedule from nearby information only, which is how one would
// schedule a geographically distributed interconnect.
#include <cstdio>
#include <vector>

#include "coloring/baselines.hpp"
#include "core/bipartite_coloring.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace dec;
  const NodeId ports = 64;
  Rng rng(7);

  // Random demand: each input wants ~16 distinct outputs.
  const auto bg = gen::random_bipartite(ports, ports, 16.0 / ports, rng);
  const Graph& g = bg.graph;
  std::printf("switch: %d x %d ports, %d demand cells, max port fan = %d\n\n",
              ports, ports, g.num_edges(), g.max_degree());

  // Distributed schedule via the paper's bipartite algorithm (Lemma 6.1).
  const auto ours = bipartite_edge_coloring(g, bg.parts, /*eps=*/1.0);
  // Greedy baseline.
  const auto base = edge_color_fast_2delta(g);

  // Slots actually used = distinct colors.
  std::printf("offline optimum (Koenig)      : %d slots\n", g.max_degree());
  std::printf("paper (Lemma 6.1)             : %d slots, %lld rounds\n",
              count_colors(ours.colors), static_cast<long long>(ours.rounds));
  std::printf("baseline O(Delta + log* n)    : %d slots, %lld rounds\n\n",
              count_colors(base.colors), static_cast<long long>(base.rounds));

  // Render the first few slots of the schedule.
  std::printf("first 3 slots of the distributed schedule (input->output):\n");
  for (Color slot = 0; slot < 3; ++slot) {
    std::printf("  slot %d:", slot);
    int shown = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (ours.colors[static_cast<std::size_t>(e)] != slot) continue;
      const auto [u, v] = g.endpoints(e);
      std::printf(" %d->%d", u, v - ports);
      if (++shown == 10) {
        std::printf(" ...");
        break;
      }
    }
    std::printf("\n");
  }

  const bool ok = is_complete_proper_edge_coloring(g, ours.colors);
  std::printf("\nschedule conflict-free: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
