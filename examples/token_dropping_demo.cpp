// The generalized token dropping game as a load balancer (the framing of
// [14], which §4 generalizes).
//
// Jobs (tokens) arrive concentrated on a few front-end servers (top layer of
// a layered service graph). Each server can hold at most k jobs, and a job
// may migrate across a link at most once. The game's guarantee (Theorem 4.3)
// bounds how uneven two linked servers can end up; δ trades migration rounds
// against that residual imbalance.
#include <algorithm>
#include <cstdio>

#include "core/token_dropping.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dec;
  Rng rng(11);
  const int layers = 5, width = 32, k = 256;
  const Digraph g = layered_game(layers, width, 5, rng);

  // All jobs start on the top layer, saturated.
  std::vector<int> jobs(static_cast<std::size_t>(g.num_nodes()), 0);
  for (int i = 0; i < width; ++i) {
    jobs[static_cast<std::size_t>((layers - 1) * width + i)] = k;
  }
  std::printf("cluster: %d servers in %d tiers, capacity %d jobs each\n",
              g.num_nodes(), layers, k);
  std::printf("initial: top tier saturated (%d jobs total)\n\n", width * k);

  std::printf("%8s %8s %10s %12s %12s\n", "delta", "rounds", "migrated",
              "max_load", "load_p95");
  for (const int delta : {1, 4, 16, 64}) {
    TokenDroppingParams p;
    p.k = k;
    p.delta = delta;
    p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 2 * delta);
    const auto r = run_token_dropping(g, jobs, p);
    std::vector<double> loads(r.tokens.begin(), r.tokens.end());
    const Summary s = summarize(loads);
    std::printf("%8d %8lld %10lld %12.0f %12.1f\n", delta,
                static_cast<long long>(r.rounds),
                static_cast<long long>(r.tokens_moved), s.max, s.p95);
  }
  std::printf(
      "\nreading: small delta spends more rounds and spreads load further;\n"
      "large delta converges fast but tolerates more imbalance — exactly\n"
      "the trade-off the paper's Theorem 4.3 quantifies.\n");
  return 0;
}
