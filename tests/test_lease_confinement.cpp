// The pool lifetime rules are debug-asserted (DEC_DASSERT aborts, because
// the violations fire in destructors where throwing would lose the
// context): a lease must be released on the thread that acquired it, a
// lease must not outlive its pool, and a NetworkPool view must be used only
// from its constructing thread. Death tests pin each assertion's message.
// This file is deliberately NOT in the CI TSan filter: death tests fork,
// and forking a TSan-instrumented multithreaded process is unsupported.
#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <utility>

#include "graph/generators.hpp"
#include "sim/pool.hpp"
#include "util/rng.hpp"

namespace dec {
namespace {

Graph small_graph() {
  Rng rng(1);
  return gen::gnp(20, 0.2, rng);
}

#ifndef DEC_DISABLE_DASSERT

TEST(LeaseConfinementDeathTest, ReleaseOnForeignThreadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Graph g = small_graph();
  EXPECT_DEATH(
      {
        NetworkPool pool(1);
        auto lease = pool.network(g);
        // Moving the lease to another thread and releasing it there breaks
        // the thread-confinement rule.
        std::thread([moved = std::move(lease)]() mutable {
          auto dies_here = std::move(moved);
        }).join();
      },
      "released on the thread that acquired it");
}

TEST(LeaseConfinementDeathTest, LeaseOutlivingItsPoolAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Graph g = small_graph();
  EXPECT_DEATH(
      {
        std::optional<NetworkPool> pool(std::in_place, 1);
        auto lease = pool->network(g);
        pool.reset();  // the pool dies while the lease is outstanding
      },
      "lease outlived its pool");
}

TEST(LeaseConfinementDeathTest, ViewUsedFromForeignThreadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Graph g = small_graph();
  EXPECT_DEATH(
      {
        NetworkPool pool(1);
        std::thread([&] { auto lease = pool.network(g); }).join();
      },
      "confined to its constructing thread");
}

#endif  // DEC_DISABLE_DASSERT

// The happy path stays silent: acquire and release on one thread, pool
// outliving its leases, views per thread.
TEST(LeaseConfinement, ConfinedUseIsClean) {
  const Graph g = small_graph();
  SharedNetworkPool shared(1);
  auto tenant = [&] {
    NetworkPool view(shared);
    auto l1 = view.network(g);
    auto l2 = view.network(g);
    auto l3 = std::move(l1);  // moves within the thread are fine
  };
  std::thread a(tenant), b(tenant);
  a.join();
  b.join();
  NetworkPool local(1);
  const Digraph dg(3, {{0, 1}, {1, 2}});
  { auto lease = local.network(g); }
  { auto lease = local.dinetwork(dg); }
}

}  // namespace
}  // namespace dec
