// Generator property tests: regularity, bipartiteness, sizes, determinism.
#include <gtest/gtest.h>

#include "graph/bipartite.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

TEST(Generators, RegularBipartiteIsExactlyRegular) {
  for (const int d : {0, 1, 3, 8, 16}) {
    const auto bg = gen::regular_bipartite(16, d);
    EXPECT_EQ(bg.graph.num_nodes(), 32);
    EXPECT_EQ(bg.graph.num_edges(), 16 * d);
    for (NodeId v = 0; v < bg.graph.num_nodes(); ++v) {
      EXPECT_EQ(bg.graph.degree(v), d);
    }
    validate_bipartition(bg.graph, bg.parts);
  }
}

TEST(Generators, RegularBipartiteRejectsTooLargeDegree) {
  EXPECT_THROW(gen::regular_bipartite(4, 5), CheckError);
}

TEST(Generators, RandomBipartiteIsBipartite) {
  Rng rng(1);
  const auto bg = gen::random_bipartite(20, 30, 0.2, rng);
  EXPECT_EQ(bg.graph.num_nodes(), 50);
  validate_bipartition(bg.graph, bg.parts);
}

TEST(Generators, GnpDensityRoughlyRight) {
  Rng rng(2);
  const Graph g = gen::gnp(100, 0.1, rng);
  const double expected = 0.1 * 100 * 99 / 2;
  EXPECT_GT(g.num_edges(), expected * 0.6);
  EXPECT_LT(g.num_edges(), expected * 1.4);
}

TEST(Generators, GnpExtremes) {
  Rng rng(2);
  EXPECT_EQ(gen::gnp(10, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(gen::gnp(10, 1.0, rng).num_edges(), 45);
}

TEST(Generators, RandomRegularIsRegularAndSimple) {
  Rng rng(3);
  for (const int d : {2, 4, 9, 16}) {
    const NodeId n = (d % 2 == 0) ? 51 : 50;  // keep n*d even
    const Graph g = gen::random_regular(n, d, rng);
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), d) << "d=" << d;
  }
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  Rng rng(3);
  EXPECT_THROW(gen::random_regular(5, 3, rng), CheckError);
}

TEST(Generators, RandomRegularDenseStillWorks) {
  Rng rng(3);
  const Graph g = gen::random_regular(20, 15, rng);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 15);
}

TEST(Generators, PowerLawHasSkewedDegrees) {
  Rng rng(4);
  const Graph g = gen::power_law(300, 2.5, 6.0, rng);
  EXPECT_GT(g.max_degree(), 12);  // head well above the mean
  EXPECT_GT(g.num_edges(), 300);
}

TEST(Generators, GridTorusHypercube) {
  const Graph grid = gen::grid(3, 4);
  EXPECT_EQ(grid.num_nodes(), 12);
  EXPECT_EQ(grid.num_edges(), 3 * 3 + 2 * 4);
  const Graph torus = gen::torus(3, 3);
  for (NodeId v = 0; v < torus.num_nodes(); ++v) EXPECT_EQ(torus.degree(v), 4);
  const Graph cube = gen::hypercube(4);
  EXPECT_EQ(cube.num_nodes(), 16);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(cube.degree(v), 4);
}

TEST(Generators, CompleteFamilies) {
  EXPECT_EQ(gen::complete(6).num_edges(), 15);
  const auto kb = gen::complete_bipartite(3, 4);
  EXPECT_EQ(kb.graph.num_edges(), 12);
  validate_bipartition(kb.graph, kb.parts);
}

TEST(Generators, PathsCyclesStars) {
  EXPECT_EQ(gen::path(1).num_edges(), 0);
  EXPECT_EQ(gen::path(5).num_edges(), 4);
  EXPECT_EQ(gen::cycle(5).num_edges(), 5);
  EXPECT_THROW(gen::cycle(2), CheckError);
  EXPECT_EQ(gen::star(7).max_degree(), 7);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(5);
  for (const NodeId n : {1, 2, 3, 10, 60}) {
    const Graph t = gen::random_tree(n, rng);
    EXPECT_EQ(t.num_nodes(), n);
    EXPECT_EQ(t.num_edges(), n - 1);
    // Trees are bipartite and connected (bipartition check covers odd cycles;
    // edge count + acyclicity implies connectivity).
    EXPECT_TRUE(try_bipartition(t).has_value());
  }
}

TEST(Generators, BaryTreeShape) {
  const Graph t = gen::bary_tree(3, 2);
  EXPECT_EQ(t.num_nodes(), 1 + 3 + 9);
  EXPECT_EQ(t.num_edges(), 12);
  EXPECT_EQ(t.degree(0), 3);
}

TEST(Generators, DisjointUnion) {
  const Graph u = gen::disjoint_union(gen::path(3), gen::cycle(4));
  EXPECT_EQ(u.num_nodes(), 7);
  EXPECT_EQ(u.num_edges(), 2 + 4);
  EXPECT_EQ(u.find_edge(2, 3), kInvalidEdge);
}

TEST(Generators, DeterministicUnderSeed) {
  Rng a(99), b(99);
  const Graph g1 = gen::gnp(50, 0.2, a);
  const Graph g2 = gen::gnp(50, 0.2, b);
  EXPECT_EQ(g1.edge_list(), g2.edge_list());
}

// The streaming power_law samples the same Chung–Lu model as the O(n^2)
// pairwise reference — every pair {u, v} independently with probability
// min(1, w_u w_v / W) — just through a different RNG stream. Averaged over
// seeds, edge counts and the heavy-degree tail must agree.
TEST(Generators, PowerLawMatchesPairwiseStatistically) {
  const NodeId n = 1500;
  const double gamma = 2.5, avg = 6.0;
  const int seeds = 5, tail_at = 20;
  double stream_edges = 0, pair_edges = 0;
  long long stream_tail = 0, pair_tail = 0;
  for (int s = 0; s < seeds; ++s) {
    Rng ra(100 + s), rb(100 + s);
    const Graph gs = gen::power_law(n, gamma, avg, ra);
    const Graph gp = gen::power_law_pairwise(n, gamma, avg, rb);
    stream_edges += gs.num_edges();
    pair_edges += gp.num_edges();
    for (NodeId v = 0; v < n; ++v) {
      stream_tail += gs.degree(v) >= tail_at;
      pair_tail += gp.degree(v) >= tail_at;
    }
  }
  stream_edges /= seeds;
  pair_edges /= seeds;
  // Means over 5 seeds concentrate to ~1-2%; 10% bounds leave generous
  // slack without admitting a wrong model.
  EXPECT_GT(stream_edges, pair_edges * 0.90);
  EXPECT_LT(stream_edges, pair_edges * 1.10);
  // Tail mass (nodes of degree >= 20 ~ 3x the mean) within a factor 1.5.
  EXPECT_GT(pair_tail, 0);
  EXPECT_GT(stream_tail * 2, pair_tail);
  EXPECT_LT(stream_tail, pair_tail * 2);
}

TEST(Generators, PowerLawStreamingEmitsSortedCanonicalEdges) {
  Rng rng(7);
  const Graph g = gen::power_law(500, 2.5, 5.0, rng);
  const auto& edges = g.edge_list();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_LT(edges[i].first, edges[i].second);
    if (i > 0) EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(Generators, ZipfianSkewAndGuards) {
  Rng rng(11);
  const Graph g = gen::zipfian(600, 1.1, 40, rng);
  EXPECT_EQ(g.num_nodes(), 600);
  EXPECT_GT(g.num_edges(), 0);
  // Rank-ordered expected degrees: the head outweighs the median node.
  EXPECT_GT(g.degree(0), g.degree(300));
  Rng r2(11);
  const Graph h = gen::zipfian(600, 1.1, 40, r2);
  EXPECT_EQ(g.edge_list(), h.edge_list());  // deterministic under seed
  EXPECT_THROW(gen::zipfian(10, 0.0, 5, rng), CheckError);
  EXPECT_THROW(gen::zipfian(10, 1.0, 10, rng), CheckError);  // d_max >= n
  EXPECT_THROW(gen::zipfian(10, 1.0, 0, rng), CheckError);
}

// Pin for the heap-based Prüfer decoder: the min-heap must pick exactly the
// node the old O(n^2) whole-range scan picked, so trees are bit-identical
// across the change. The reference below is that scan, verbatim.
Graph random_tree_scan_reference(NodeId n, Rng& rng) {
  std::vector<NodeId> prufer(static_cast<std::size_t>(n) - 2);
  for (auto& x : prufer) {
    x = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
  }
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (NodeId x : prufer) ++deg[static_cast<std::size_t>(x)];
  GraphBuilder b(n);
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (NodeId x : prufer) {
    NodeId leaf = kInvalidNode;
    for (NodeId v = 0; v < n && leaf == kInvalidNode; ++v) {
      if (!used[static_cast<std::size_t>(v)] &&
          deg[static_cast<std::size_t>(v)] == 1) {
        leaf = v;
      }
    }
    b.add_edge(leaf, x);
    used[static_cast<std::size_t>(leaf)] = true;
    --deg[static_cast<std::size_t>(x)];
  }
  NodeId a = kInvalidNode, c = kInvalidNode;
  for (NodeId v = 0; v < n; ++v) {
    if (used[static_cast<std::size_t>(v)] ||
        deg[static_cast<std::size_t>(v)] != 1) {
      continue;
    }
    if (a == kInvalidNode) {
      a = v;
    } else {
      c = v;
    }
  }
  b.add_edge(a, c);
  return std::move(b).build();
}

TEST(Generators, RandomTreeMatchesScanReference) {
  for (const NodeId n : {3, 10, 50, 200}) {
    for (int seed = 1; seed <= 5; ++seed) {
      Rng heap_rng(seed), scan_rng(seed);
      const Graph heap_tree = gen::random_tree(n, heap_rng);
      const Graph scan_tree = random_tree_scan_reference(n, scan_rng);
      EXPECT_EQ(heap_tree.edge_list(), scan_tree.edge_list())
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Generators, GridTorusOverflowGuardThrowsCleanly) {
  // 65536 * 65536 = 2^32 used to wrap NodeId to 0 and build garbage; now it
  // must throw a CheckError naming the generator before any allocation.
  EXPECT_THROW(gen::grid(65536, 65536), CheckError);
  EXPECT_THROW(gen::grid(46341, 46341), CheckError);  // first overflowing sq
  EXPECT_THROW(gen::torus(65536, 65536), CheckError);
  try {
    gen::grid(1 << 20, 1 << 20);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("grid"), std::string::npos)
        << e.what();
  }
}

TEST(Generators, CheckedNodeCountBounds) {
  EXPECT_EQ(gen::checked_node_count(0, "t"), 0);
  EXPECT_EQ(gen::checked_node_count(kMaxNodeId, "t"), kMaxNodeId);
  // Top id is reserved (call sites form id + 1), so INT32_MAX itself is out,
  // as is anything negative — the disjoint_union sum guard rides on this.
  EXPECT_THROW(gen::checked_node_count(
                   static_cast<long long>(kMaxNodeId) + 1, "t"),
               CheckError);
  EXPECT_THROW(gen::checked_node_count(1LL << 32, "t"), CheckError);
  EXPECT_THROW(gen::checked_node_count(-1, "t"), CheckError);
}

}  // namespace
}  // namespace dec
