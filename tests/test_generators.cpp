// Generator property tests: regularity, bipartiteness, sizes, determinism.
#include <gtest/gtest.h>

#include "graph/bipartite.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

TEST(Generators, RegularBipartiteIsExactlyRegular) {
  for (const int d : {0, 1, 3, 8, 16}) {
    const auto bg = gen::regular_bipartite(16, d);
    EXPECT_EQ(bg.graph.num_nodes(), 32);
    EXPECT_EQ(bg.graph.num_edges(), 16 * d);
    for (NodeId v = 0; v < bg.graph.num_nodes(); ++v) {
      EXPECT_EQ(bg.graph.degree(v), d);
    }
    validate_bipartition(bg.graph, bg.parts);
  }
}

TEST(Generators, RegularBipartiteRejectsTooLargeDegree) {
  EXPECT_THROW(gen::regular_bipartite(4, 5), CheckError);
}

TEST(Generators, RandomBipartiteIsBipartite) {
  Rng rng(1);
  const auto bg = gen::random_bipartite(20, 30, 0.2, rng);
  EXPECT_EQ(bg.graph.num_nodes(), 50);
  validate_bipartition(bg.graph, bg.parts);
}

TEST(Generators, GnpDensityRoughlyRight) {
  Rng rng(2);
  const Graph g = gen::gnp(100, 0.1, rng);
  const double expected = 0.1 * 100 * 99 / 2;
  EXPECT_GT(g.num_edges(), expected * 0.6);
  EXPECT_LT(g.num_edges(), expected * 1.4);
}

TEST(Generators, GnpExtremes) {
  Rng rng(2);
  EXPECT_EQ(gen::gnp(10, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(gen::gnp(10, 1.0, rng).num_edges(), 45);
}

TEST(Generators, RandomRegularIsRegularAndSimple) {
  Rng rng(3);
  for (const int d : {2, 4, 9, 16}) {
    const NodeId n = (d % 2 == 0) ? 51 : 50;  // keep n*d even
    const Graph g = gen::random_regular(n, d, rng);
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), d) << "d=" << d;
  }
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  Rng rng(3);
  EXPECT_THROW(gen::random_regular(5, 3, rng), CheckError);
}

TEST(Generators, RandomRegularDenseStillWorks) {
  Rng rng(3);
  const Graph g = gen::random_regular(20, 15, rng);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 15);
}

TEST(Generators, PowerLawHasSkewedDegrees) {
  Rng rng(4);
  const Graph g = gen::power_law(300, 2.5, 6.0, rng);
  EXPECT_GT(g.max_degree(), 12);  // head well above the mean
  EXPECT_GT(g.num_edges(), 300);
}

TEST(Generators, GridTorusHypercube) {
  const Graph grid = gen::grid(3, 4);
  EXPECT_EQ(grid.num_nodes(), 12);
  EXPECT_EQ(grid.num_edges(), 3 * 3 + 2 * 4);
  const Graph torus = gen::torus(3, 3);
  for (NodeId v = 0; v < torus.num_nodes(); ++v) EXPECT_EQ(torus.degree(v), 4);
  const Graph cube = gen::hypercube(4);
  EXPECT_EQ(cube.num_nodes(), 16);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(cube.degree(v), 4);
}

TEST(Generators, CompleteFamilies) {
  EXPECT_EQ(gen::complete(6).num_edges(), 15);
  const auto kb = gen::complete_bipartite(3, 4);
  EXPECT_EQ(kb.graph.num_edges(), 12);
  validate_bipartition(kb.graph, kb.parts);
}

TEST(Generators, PathsCyclesStars) {
  EXPECT_EQ(gen::path(1).num_edges(), 0);
  EXPECT_EQ(gen::path(5).num_edges(), 4);
  EXPECT_EQ(gen::cycle(5).num_edges(), 5);
  EXPECT_THROW(gen::cycle(2), CheckError);
  EXPECT_EQ(gen::star(7).max_degree(), 7);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(5);
  for (const NodeId n : {1, 2, 3, 10, 60}) {
    const Graph t = gen::random_tree(n, rng);
    EXPECT_EQ(t.num_nodes(), n);
    EXPECT_EQ(t.num_edges(), n - 1);
    // Trees are bipartite and connected (bipartition check covers odd cycles;
    // edge count + acyclicity implies connectivity).
    EXPECT_TRUE(try_bipartition(t).has_value());
  }
}

TEST(Generators, BaryTreeShape) {
  const Graph t = gen::bary_tree(3, 2);
  EXPECT_EQ(t.num_nodes(), 1 + 3 + 9);
  EXPECT_EQ(t.num_edges(), 12);
  EXPECT_EQ(t.degree(0), 3);
}

TEST(Generators, DisjointUnion) {
  const Graph u = gen::disjoint_union(gen::path(3), gen::cycle(4));
  EXPECT_EQ(u.num_nodes(), 7);
  EXPECT_EQ(u.num_edges(), 2 + 4);
  EXPECT_EQ(u.find_edge(2, 3), kInvalidEdge);
}

TEST(Generators, DeterministicUnderSeed) {
  Rng a(99), b(99);
  const Graph g1 = gen::gnp(50, 0.2, a);
  const Graph g2 = gen::gnp(50, 0.2, b);
  EXPECT_EQ(g1.edge_list(), g2.edge_list());
}

}  // namespace
}  // namespace dec
