// Tests for schedule-driven greedy list edge coloring.
#include <gtest/gtest.h>

#include "coloring/greedy_edge.hpp"
#include "coloring/linial.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

TEST(GreedyEdge, ColorsFullGraph) {
  Rng rng(50);
  const Graph g = gen::random_regular(80, 6, rng);
  const ListEdgeInstance inst = make_full_palette_instance(g);
  const LinialResult schedule = linial_edge_color(g);
  std::vector<Color> colors(static_cast<std::size_t>(g.num_edges()), kUncolored);
  const std::int64_t rounds = greedy_list_edge_color(
      inst, schedule.colors, schedule.palette, colors);
  EXPECT_TRUE(check_list_coloring(inst, colors));
  EXPECT_GT(rounds, 0);
  EXPECT_LE(rounds, schedule.palette);
}

TEST(GreedyEdge, RespectsLists) {
  Rng rng(51);
  const Graph g = gen::random_regular(60, 4, rng);
  const ListEdgeInstance inst =
      make_random_list_instance(g, 3 * g.max_edge_degree(), rng);
  const LinialResult schedule = linial_edge_color(g);
  std::vector<Color> colors(static_cast<std::size_t>(g.num_edges()), kUncolored);
  greedy_list_edge_color(inst, schedule.colors, schedule.palette, colors);
  EXPECT_TRUE(check_list_coloring(inst, colors));
}

TEST(GreedyEdge, RespectsPrecoloredEdges) {
  const Graph g = gen::star(3);
  const ListEdgeInstance inst = make_full_palette_instance(g, 4);
  std::vector<Color> colors{2, kUncolored, kUncolored};
  // Identity schedule: every edge its own class (trivially proper).
  std::vector<Color> schedule{0, 1, 2};
  greedy_list_edge_color(inst, schedule, 3, colors);
  EXPECT_EQ(colors[0], 2);  // untouched
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, colors));
}

TEST(GreedyEdge, ActiveMaskLimitsScope) {
  const Graph g = gen::path(4);  // edges 0,1,2
  const ListEdgeInstance inst = make_full_palette_instance(g, 3);
  std::vector<Color> colors(3, kUncolored);
  std::vector<Color> schedule{0, 1, 0};
  std::vector<bool> active{true, false, true};
  greedy_list_edge_color(inst, schedule, 2, colors, &active);
  EXPECT_NE(colors[0], kUncolored);
  EXPECT_EQ(colors[1], kUncolored);
  EXPECT_NE(colors[2], kUncolored);
}

TEST(GreedyEdge, ThrowsWhenListsTooSmall) {
  const Graph g = gen::star(3);  // three mutually adjacent edges
  ListEdgeInstance inst;
  inst.g = &g;
  inst.color_space = 2;
  inst.lists = {{0, 1}, {0, 1}, {0, 1}};  // 3 mutually adjacent, 2 colors
  std::vector<Color> colors(3, kUncolored);
  std::vector<Color> schedule{0, 1, 2};
  EXPECT_THROW(greedy_list_edge_color(inst, schedule, 3, colors), CheckError);
}

TEST(GreedyEdge, RejectsImproperSchedule) {
  const Graph g = gen::star(3);
  const ListEdgeInstance inst = make_full_palette_instance(g);
  std::vector<Color> colors(3, kUncolored);
  std::vector<Color> schedule{0, 0, 1};  // two adjacent edges share a class
  EXPECT_THROW(greedy_list_edge_color(inst, schedule, 2, colors), CheckError);
}

TEST(GreedyEdge, RoundsCountNonEmptyClassesOnly) {
  const Graph g = gen::path(3);
  const ListEdgeInstance inst = make_full_palette_instance(g);
  std::vector<Color> colors(2, kUncolored);
  std::vector<Color> schedule{5, 9};  // classes 0-4 and 6-8 empty
  const std::int64_t rounds = greedy_list_edge_color(inst, schedule, 10, colors);
  EXPECT_EQ(rounds, 2);
}

}  // namespace
}  // namespace dec
