// Scheduler contract for SolverService (PR 8): deterministic pop order
// (priority class, then EDF within a class, then arrival order), the
// deadline-bounded blocking submit (a full queue never hangs a deadlined
// tenant), the shutdown sweep's deadline/reject distinction, per-request
// engine_threads overrides staying bit-identical to direct serial calls
// for all five solvers, and the coherent cache-counter snapshot. Order
// tests run with workers = 0, so the queue is a pure data structure and
// queued_order() is exact. CI runs this file under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/solver_registry.hpp"
#include "graph/generators.hpp"
#include "service/solver_service.hpp"
#include "util/rng.hpp"

namespace dec {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

SolverRequest small_congest(std::uint64_t seed, int n = 16) {
  Rng rng(seed);
  auto g = std::make_shared<const Graph>(gen::gnp(n, 0.2, rng));
  return make_congest_request(std::move(g), {1.0});
}

// ------------------------------------------------------- scheduling order

TEST(ServiceScheduler, PriorityClassesAreStrict) {
  // workers = 0: jobs are admitted but never popped, so queued_order() is
  // the scheduler's exact pop order.
  SolverService service({.workers = 0, .queue_capacity = 16});
  JobTicket low = service.submit(small_congest(1), {.priority = Priority::kLow});
  JobTicket normal =
      service.submit(small_congest(2), {.priority = Priority::kNormal});
  JobTicket high =
      service.submit(small_congest(3), {.priority = Priority::kHigh});
  const std::vector<JobId> order = service.queued_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], high.id);
  EXPECT_EQ(order[1], normal.id);
  EXPECT_EQ(order[2], low.id);
}

TEST(ServiceScheduler, EdfWithinClassDeadlinelessBehind) {
  SolverService service({.workers = 0, .queue_capacity = 16});
  // All normal priority. Deadlines far enough out that nothing expires
  // while the test runs; submitted deliberately out of deadline order.
  JobTicket no_dl_a = service.submit(small_congest(1));
  JobTicket late = service.submit(small_congest(2),
                                  {.deadline = std::chrono::seconds(600)});
  JobTicket no_dl_b = service.submit(small_congest(3));
  JobTicket soon = service.submit(small_congest(4),
                                  {.deadline = std::chrono::seconds(60)});
  JobTicket mid = service.submit(small_congest(5),
                                 {.deadline = std::chrono::seconds(300)});
  const std::vector<JobId> order = service.queued_order();
  ASSERT_EQ(order.size(), 5u);
  // EDF across the deadlined jobs, then the deadline-less two by arrival.
  EXPECT_EQ(order[0], soon.id);
  EXPECT_EQ(order[1], mid.id);
  EXPECT_EQ(order[2], late.id);
  EXPECT_EQ(order[3], no_dl_a.id);
  EXPECT_EQ(order[4], no_dl_b.id);
}

TEST(ServiceScheduler, ArrivalOrderBreaksTies) {
  SolverService service({.workers = 0, .queue_capacity = 16});
  // Same class, no deadlines: pure FIFO.
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(service.submit(small_congest(10 + i)));
  }
  const std::vector<JobId> order = service.queued_order();
  ASSERT_EQ(order.size(), tickets.size());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(order[i], tickets[i].id) << "slot " << i;
  }
}

TEST(ServiceScheduler, FullOrderingPriorityThenEdfThenFifo) {
  SolverService service({.workers = 0, .queue_capacity = 16});
  JobTicket l1 = service.submit(small_congest(1), {.priority = Priority::kLow});
  JobTicket h_late =
      service.submit(small_congest(2), {.deadline = std::chrono::seconds(600),
                                        .priority = Priority::kHigh});
  JobTicket n1 = service.submit(small_congest(3));
  JobTicket h_soon =
      service.submit(small_congest(4), {.deadline = std::chrono::seconds(60),
                                        .priority = Priority::kHigh});
  JobTicket h_none =
      service.submit(small_congest(5), {.priority = Priority::kHigh});
  JobTicket n2 = service.submit(small_congest(6));
  const std::vector<JobId> order = service.queued_order();
  const std::vector<JobId> expect = {h_soon.id, h_late.id, h_none.id,
                                     n1.id,     n2.id,     l1.id};
  EXPECT_EQ(order, expect);
}

TEST(ServiceScheduler, WorkersDrainInScheduledOrder) {
  // One worker, jobs enqueued while the queue is plugged by a head job:
  // completion timestamps must respect the scheduled order for the jobs
  // that were all queued together.
  Rng rng(77);
  auto big = std::make_shared<const Graph>(gen::gnp(150, 0.12, rng));
  SolverService service({.workers = 1, .queue_capacity = 16});
  JobTicket plug = service.submit(make_congest_request(big, {0.5}));
  JobTicket low = service.submit(small_congest(1), {.priority = Priority::kLow});
  JobTicket high =
      service.submit(small_congest(2), {.priority = Priority::kHigh});
  JobTicket normal = service.submit(small_congest(3));

  // The three queued jobs resolve in scheduled order; order is observable
  // through each result's queue_wait_ns (pickup is serialized on the one
  // worker, and wait is measured from submit entry at pickup).
  const SolverResult r_high = high.result.get();
  const SolverResult r_normal = normal.result.get();
  const SolverResult r_low = low.result.get();
  EXPECT_EQ(plug.result.get().status, SolverStatus::kOk);
  ASSERT_EQ(r_high.status, SolverStatus::kOk);
  ASSERT_EQ(r_normal.status, SolverStatus::kOk);
  ASSERT_EQ(r_low.status, SolverStatus::kOk);
  // high submitted after low, but picked up earlier: its wait is shorter
  // even though it arrived later.
  EXPECT_LT(r_high.queue_wait_ns, r_low.queue_wait_ns);
  EXPECT_LT(r_normal.queue_wait_ns, r_low.queue_wait_ns);
  service.drain();
}

// --------------------------------------------- deadline-bounded admission

TEST(ServiceScheduler, BlockedSubmitTimesOutAtItsDeadline) {
  // Satellite bugfix pin: a blocking submit against a full queue must not
  // wait past the job's own deadline — it resolves kDeadlineExceeded
  // instead of hanging (the old cv wait had no time bound).
  SolverService service({.workers = 0, .queue_capacity = 1});
  JobTicket head = service.submit(small_congest(1));
  ASSERT_TRUE(head.accepted);

  const auto start = steady_clock::now();
  JobTicket doomed =
      service.submit(small_congest(2), {.deadline = milliseconds(50)});
  const auto blocked_for = steady_clock::now() - start;
  EXPECT_FALSE(doomed.accepted);
  EXPECT_EQ(doomed.id, 0u);
  EXPECT_EQ(doomed.reject, RejectReason::kNone);  // expired, not rejected
  const SolverResult r = doomed.result.get();
  EXPECT_EQ(r.status, SolverStatus::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 0);
  EXPECT_GT(r.e2e_latency_ns, 0);
  // It waited for its deadline, not forever (generous upper bound: the
  // acceptance criterion is "within one watchdog period" of the 50 ms).
  EXPECT_GE(blocked_for, milliseconds(45));
  EXPECT_LT(blocked_for, std::chrono::seconds(5));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submit_timeouts, 1);
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.submitted, 1);  // only the head job was admitted
  EXPECT_EQ(stats.queued, 1u);    // nothing was enqueued by the timeout
}

TEST(ServiceScheduler, AlreadyExpiredDeadlineSubmitResolvesImmediately) {
  SolverService service({.workers = 0, .queue_capacity = 1});
  JobTicket head = service.submit(small_congest(1));
  ASSERT_TRUE(head.accepted);
  JobTicket doomed = service.submit(
      small_congest(2), {.deadline = std::chrono::microseconds(1)});
  EXPECT_FALSE(doomed.accepted);
  EXPECT_EQ(doomed.result.get().status, SolverStatus::kDeadlineExceeded);
}

TEST(ServiceScheduler, ShutdownSweepReportsExpiredJobsAsDeadlineExceeded) {
  // Satellite bugfix pin: a queued job already past its wall-clock
  // deadline when shutdown drains leftovers resolves kDeadlineExceeded,
  // not Rejected{kShuttingDown}. The watchdog period is cranked way up so
  // only the shutdown sweep itself can latch the deadline.
  SolverService service({.workers = 0,
                         .queue_capacity = 8,
                         .watchdog_period = std::chrono::seconds(3600)});
  JobTicket fresh = service.submit(small_congest(1));
  JobTicket expired =
      service.submit(small_congest(2), {.deadline = milliseconds(1)});
  ASSERT_TRUE(expired.accepted);
  std::this_thread::sleep_for(milliseconds(10));
  service.shutdown();
  EXPECT_EQ(expired.result.get().status, SolverStatus::kDeadlineExceeded);
  EXPECT_EQ(fresh.result.get().reject, RejectReason::kShuttingDown);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.rejected, 1);
}

// ------------------------------------------- engine_threads bit-identity

auto congest_key(const CongestColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels, r.tail_degree);
}

auto bipartite_key(const BipartiteColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels,
                    r.leaf_degree_bound, r.chi);
}

std::vector<NodeId> heads_of(const Orientation& o) {
  std::vector<NodeId> heads(static_cast<std::size_t>(o.graph().num_edges()));
  for (EdgeId e = 0; e < o.graph().num_edges(); ++e) {
    heads[static_cast<std::size_t>(e)] = o.head(e);
  }
  return heads;
}

auto orientation_key(const BalancedOrientationResult& r) {
  return std::tuple(heads_of(r.orientation), r.phases, r.rounds, r.flips,
                    r.leftover_edges, r.leftover_edge, r.max_excess,
                    r.max_message_bits);
}

auto d2ec_key(const Defective2ECResult& r) {
  return std::tuple(r.is_red, r.phases, r.rounds, r.beta_used, r.beta_emp,
                    r.max_message_bits);
}

auto token_key(const TokenDroppingResult& r) {
  return std::tuple(r.tokens, r.edge_passive, r.phases, r.rounds,
                    r.tokens_moved, r.max_message_bits);
}

void expect_same_result(const SolverResult& ref, const SolverResult& got,
                        int job_index) {
  ASSERT_EQ(ref.solver, got.solver) << "job " << job_index;
  ASSERT_EQ(ref.output.index(), got.output.index()) << "job " << job_index;
  if (const auto* r = std::get_if<CongestColoringResult>(&ref.output)) {
    EXPECT_EQ(congest_key(*r),
              congest_key(std::get<CongestColoringResult>(got.output)))
        << "job " << job_index;
  } else if (const auto* r =
                 std::get_if<BipartiteColoringResult>(&ref.output)) {
    EXPECT_EQ(bipartite_key(*r),
              bipartite_key(std::get<BipartiteColoringResult>(got.output)))
        << "job " << job_index;
  } else if (const auto* r =
                 std::get_if<BalancedOrientationResult>(&ref.output)) {
    EXPECT_EQ(orientation_key(*r),
              orientation_key(std::get<BalancedOrientationResult>(got.output)))
        << "job " << job_index;
  } else if (const auto* r = std::get_if<Defective2ECResult>(&ref.output)) {
    EXPECT_EQ(d2ec_key(*r),
              d2ec_key(std::get<Defective2ECResult>(got.output)))
        << "job " << job_index;
  } else if (const auto* r = std::get_if<TokenDroppingResult>(&ref.output)) {
    EXPECT_EQ(token_key(*r),
              token_key(std::get<TokenDroppingResult>(got.output)))
        << "job " << job_index;
  } else {
    FAIL() << "unhandled output variant, job " << job_index;
  }
  EXPECT_EQ(ref.ledger.breakdown(), got.ledger.breakdown())
      << "job " << job_index;
}

/// One small instance per solver (the five registered ids).
std::vector<SolverRequest> one_of_each_solver() {
  std::vector<SolverRequest> reqs;
  Rng rng(8800);
  reqs.push_back(small_congest(8801, 36));

  auto bg = std::make_shared<const BipartiteGraph>(
      gen::random_bipartite(16, 14, 0.18, rng));
  std::shared_ptr<const Graph> g(bg, &bg->graph);
  BipartiteColoringJob bj;
  bj.parts = bg->parts;
  reqs.push_back(make_bipartite_request(g, bj));

  Rng wrng(8802);
  std::vector<double> eta(static_cast<std::size_t>(g->num_edges()));
  for (auto& v : eta) v = 3.0 * (2.0 * wrng.next_double() - 1.0);
  BalancedOrientationJob oj;
  oj.parts = bg->parts;
  oj.eta = std::move(eta);
  oj.params.nu = 0.125;
  reqs.push_back(make_orientation_request(g, std::move(oj)));

  std::vector<double> lambda(static_cast<std::size_t>(g->num_edges()));
  for (auto& v : lambda) v = wrng.next_double();
  Defective2ECJob dj;
  dj.parts = bg->parts;
  dj.lambda = std::move(lambda);
  reqs.push_back(make_defective2ec_request(g, std::move(dj)));

  auto game = std::make_shared<const Digraph>(layered_game(3, 8, 3, rng));
  TokenDroppingJob tj;
  tj.params.k = 12;
  tj.params.delta = 1;
  tj.params.alpha.assign(static_cast<std::size_t>(game->num_nodes()), 2);
  tj.initial_tokens.assign(static_cast<std::size_t>(game->num_nodes()), 5);
  reqs.push_back(make_token_dropping_request(std::move(game), std::move(tj)));
  return reqs;
}

TEST(ServiceScheduler, EngineThreadsOverrideBitIdenticalAcrossSolvers) {
  // Per-request engine_threads: the same job run serial (service default),
  // 2-sharded, and 4-sharded must be bit-identical to the direct serial
  // call, for every registered solver. Overrides lease from their own
  // per-shard-count arena.
  const std::vector<SolverRequest> reqs = one_of_each_solver();
  std::vector<SolverResult> refs;
  refs.reserve(reqs.size());
  for (const SolverRequest& req : reqs) {
    refs.push_back(execute_request(req, 1, nullptr));
  }

  SolverService service({.workers = 2, .queue_capacity = 16});
  for (const int threads : {1, 2, 4}) {
    std::vector<JobTicket> tickets;
    for (const SolverRequest& req : reqs) {
      tickets.push_back(service.submit(req, {.engine_threads = threads}));
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const SolverResult got = tickets[i].result.get();
      ASSERT_EQ(got.status, SolverStatus::kOk)
          << "threads " << threads << " job " << i;
      expect_same_result(refs[i], got, static_cast<int>(i));
    }
  }
  // Re-running the 2-shard batch hits the override arena's warm plans.
  std::vector<JobTicket> warm;
  for (const SolverRequest& req : reqs) {
    warm.push_back(service.submit(req, {.engine_threads = 2}));
  }
  for (std::size_t i = 0; i < warm.size(); ++i) {
    expect_same_result(refs[i], warm[i].result.get(), static_cast<int>(i));
  }
}

// ------------------------------------------------- coherent cache counters

TEST(ServiceScheduler, StatsCacheSnapshotIsCoherentUnderLoad) {
  // Satellite bugfix pin: cache_hit_rate must agree exactly with the
  // plans_built / plans_shared reported in the same snapshot, even while
  // lookups race with the reader (the counters are packed into one atomic
  // word). A poller hammers stats() while two workers churn jobs.
  SolverService service({.workers = 2, .queue_capacity = 32});
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const ServiceStats s = service.stats();
      const std::int64_t lookups = s.plans_built + s.plans_shared;
      const double expect =
          lookups > 0 ? static_cast<double>(s.plans_shared) /
                            static_cast<double>(lookups)
                      : 0.0;
      ASSERT_EQ(s.cache_hit_rate, expect);
      ASSERT_GE(s.plans_shared, 0);
      ASSERT_GE(s.plans_built, 0);
    }
  });
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 48; ++i) {
    tickets.push_back(service.submit(small_congest(9000 + i % 6, 20)));
  }
  for (JobTicket& t : tickets) {
    EXPECT_EQ(t.result.get().status, SolverStatus::kOk);
  }
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  const ServiceStats s = service.stats();
  EXPECT_GT(s.plans_shared, 0);  // six shapes over 48 jobs: sharing happened
}

}  // namespace
}  // namespace dec
