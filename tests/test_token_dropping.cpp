// Tests for the generalized token dropping game (paper §4, Theorem 4.3).
#include <gtest/gtest.h>

#include <numeric>

#include "core/token_dropping.hpp"

namespace dec {
namespace {

std::vector<int> random_tokens(const Digraph& g, int k, Rng& rng) {
  std::vector<int> t(static_cast<std::size_t>(g.num_nodes()));
  for (auto& x : t) {
    x = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(k) + 1));
  }
  return t;
}

TEST(TokenDropping, PhaseCountMatchesTheorem) {
  Rng rng(60);
  const Digraph g = layered_game(4, 20, 3, rng);
  TokenDroppingParams p;
  p.k = 32;
  p.delta = 4;
  const auto r = run_token_dropping(g, random_tokens(g, p.k, rng), p);
  EXPECT_EQ(r.phases, 32 / 4 - 1);
  EXPECT_EQ(r.rounds, 3 * r.phases);
}

TEST(TokenDropping, ConservesTokensAndRespectsCapacity) {
  Rng rng(61);
  const Digraph g = random_game(60, 0.1, rng);
  TokenDroppingParams p;
  p.k = 16;
  p.delta = 2;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 3);
  const auto init = random_tokens(g, p.k, rng);
  const std::int64_t before =
      std::accumulate(init.begin(), init.end(), std::int64_t{0});
  const auto r = run_token_dropping(g, init, p);
  const std::int64_t after =
      std::accumulate(r.tokens.begin(), r.tokens.end(), std::int64_t{0});
  EXPECT_EQ(before, after);
  for (const int t : r.tokens) {
    EXPECT_GE(t, 0);
    EXPECT_LE(t, p.k);
  }
}

TEST(TokenDropping, Theorem43BoundOnActiveEdges) {
  Rng rng(62);
  for (const int seed : {1, 2, 3, 4, 5}) {
    Rng local(static_cast<std::uint64_t>(seed));
    const Digraph g = seed % 2 == 0 ? layered_game(5, 30, 4, local)
                                    : random_game(80, 0.08, local);
    TokenDroppingParams p;
    p.k = 64;
    p.delta = 4;
    p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 6);
    const auto r = run_token_dropping(g, random_tokens(g, p.k, local), p);
    EXPECT_LE(max_bound_violation(g, p, r), 0.0) << "seed=" << seed;
  }
}

TEST(TokenDropping, AtMostOneTokenPerEdge) {
  Rng rng(63);
  const Digraph g = layered_game(6, 25, 5, rng);
  TokenDroppingParams p;
  p.k = 48;
  p.delta = 3;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 4);
  const auto r = run_token_dropping(g, random_tokens(g, p.k, rng), p);
  // edge_passive[a] true exactly once per crossing; crossing count equals
  // tokens_moved.
  std::int64_t passive = 0;
  for (const bool b : r.edge_passive) passive += b ? 1 : 0;
  EXPECT_EQ(passive, r.tokens_moved);
}

TEST(TokenDropping, NoMovementWhenSinglePhaseBudget) {
  Rng rng(64);
  const Digraph g = layered_game(3, 10, 2, rng);
  TokenDroppingParams p;
  p.k = 4;
  p.delta = 4;  // ⌊k/δ⌋-1 = 0 phases
  const auto init = random_tokens(g, p.k, rng);
  const auto r = run_token_dropping(g, init, p);
  EXPECT_EQ(r.phases, 0);
  EXPECT_EQ(r.tokens_moved, 0);
  EXPECT_EQ(r.tokens, init);
}

TEST(TokenDropping, DeltaControlsRounds) {
  // §4.1: smaller δ ⇒ more phases (and smaller final slack).
  Rng rng(65);
  const Digraph g = layered_game(5, 40, 4, rng);
  const auto init = random_tokens(g, 64, rng);
  std::int64_t prev_rounds = -1;
  for (const int delta : {16, 8, 4, 2, 1}) {
    TokenDroppingParams p;
    p.k = 64;
    p.delta = delta;
    p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 16);
    const auto r = run_token_dropping(g, init, p);
    if (prev_rounds >= 0) {
      EXPECT_GT(r.rounds, prev_rounds);
    }
    prev_rounds = r.rounds;
  }
}

TEST(TokenDropping, RejectsInvalidParameters) {
  Rng rng(66);
  const Digraph g = layered_game(2, 5, 1, rng);
  std::vector<int> init(static_cast<std::size_t>(g.num_nodes()), 0);
  TokenDroppingParams p;
  p.k = 0;
  EXPECT_THROW(run_token_dropping(g, init, p), CheckError);
  p.k = 4;
  p.delta = 2;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 1);  // alpha < delta
  EXPECT_THROW(run_token_dropping(g, init, p), CheckError);
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 2);
  init[0] = 5;  // > k
  EXPECT_THROW(run_token_dropping(g, init, p), CheckError);
}

TEST(TokenDropping, WorksOnGraphWithCycles) {
  // §4's contribution over [14]: general digraphs, not just DAGs.
  Rng rng(67);
  const Digraph g = random_game(50, 0.15, rng);
  TokenDroppingParams p;
  p.k = 32;
  p.delta = 2;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 4);
  const auto r = run_token_dropping(g, random_tokens(g, p.k, rng), p);
  EXPECT_LE(max_bound_violation(g, p, r), 0.0);
}

TEST(TokenDropping, LoadBalancesLayeredBurst) {
  // All tokens start on the top layer; after the game the bound limits how
  // uneven active-edge endpoints can be.
  Rng rng(68);
  const int layers = 5, width = 30;
  const Digraph g = layered_game(layers, width, 6, rng);
  TokenDroppingParams p;
  p.k = 16;
  p.delta = 1;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 1);
  std::vector<int> init(static_cast<std::size_t>(g.num_nodes()), 0);
  for (int i = 0; i < width; ++i) {
    init[static_cast<std::size_t>((layers - 1) * width + i)] = p.k;
  }
  const auto r = run_token_dropping(g, init, p);
  EXPECT_GT(r.tokens_moved, 0);
  EXPECT_LE(max_bound_violation(g, p, r), 0.0);
}

TEST(TokenDropping, PropertyInvariantSweep) {
  // Property harness over ~50 seeded digraphs of varying shape, size, and
  // parameters: after every run on the message-passing engine,
  //   * the token count is conserved and every node holds <= k,
  //   * at most one token crossed each arc (crossings == tokens_moved),
  //   * the Theorem 4.3 slack bound holds on every still-active edge.
  for (int seed = 0; seed < 50; ++seed) {
    Rng rng(900 + static_cast<std::uint64_t>(seed));
    const Digraph g =
        seed % 3 == 0
            ? layered_game(3 + seed % 4, 8 + seed % 13, 2 + seed % 3, rng)
            : random_game(30 + 2 * (seed % 17),
                          0.04 + 0.004 * (seed % 9), rng);
    TokenDroppingParams p;
    p.k = 8 << (seed % 3);
    p.delta = 1 + seed % 3;
    p.alpha.assign(static_cast<std::size_t>(g.num_nodes()),
                   p.delta + seed % 4);
    const auto init = random_tokens(g, p.k, rng);
    const std::int64_t before =
        std::accumulate(init.begin(), init.end(), std::int64_t{0});
    const auto r = run_token_dropping(g, init, p);

    const std::int64_t after =
        std::accumulate(r.tokens.begin(), r.tokens.end(), std::int64_t{0});
    EXPECT_EQ(before, after) << "seed=" << seed;
    for (const int t : r.tokens) {
      EXPECT_GE(t, 0) << "seed=" << seed;
      EXPECT_LE(t, p.k) << "seed=" << seed;
    }
    std::int64_t crossings = 0;
    for (const bool b : r.edge_passive) crossings += b ? 1 : 0;
    EXPECT_EQ(crossings, r.tokens_moved) << "seed=" << seed;
    EXPECT_EQ(r.rounds, 3 * r.phases) << "seed=" << seed;
    EXPECT_LE(max_bound_violation(g, p, r), 0.0) << "seed=" << seed;
  }
}

TEST(TokenDropping, GameGenerators) {
  Rng rng(69);
  const Digraph lg = layered_game(3, 7, 2, rng);
  EXPECT_EQ(lg.num_nodes(), 21);
  EXPECT_EQ(lg.num_arcs(), 2 * 7 * 2);
  for (EdgeId a = 0; a < lg.num_arcs(); ++a) {
    const auto [u, v] = lg.arc(a);
    EXPECT_EQ(u / 7, v / 7 + 1);  // arcs drop exactly one layer
  }
  const Digraph rg = random_game(10, 1.0, rng);
  EXPECT_EQ(rg.num_arcs(), 90);
}

}  // namespace
}  // namespace dec
