// Tests for the generalized balanced edge orientation (paper §5).
#include <gtest/gtest.h>

#include "core/balanced_orientation.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

std::vector<double> zero_eta(const Graph& g) {
  return std::vector<double>(static_cast<std::size_t>(g.num_edges()), 0.0);
}

TEST(BalancedOrientation, OrientsEveryEdge) {
  const auto bg = gen::regular_bipartite(64, 8);
  OrientationParams p;
  p.nu = 0.125;
  const auto r = balanced_orientation(bg.graph, bg.parts, zero_eta(bg.graph), p);
  EXPECT_EQ(r.orientation.num_oriented(), bg.graph.num_edges());
  r.orientation.validate();
}

TEST(BalancedOrientation, RegularGraphIsNearlyBalanced) {
  // With η = 0 on a d-regular bipartite graph, a perfect orientation gives
  // every node indegree d/2; the guarantee allows (ε/2)·deg(e) + β slack.
  const int d = 16;
  const auto bg = gen::regular_bipartite(128, d);
  OrientationParams p;
  p.nu = 0.125;  // ε = 1
  const auto r = balanced_orientation(bg.graph, bg.parts, zero_eta(bg.graph), p);
  const double eps = eps_from_nu(p.nu);
  const double dbar = 2.0 * d - 2.0;
  for (NodeId v = 0; v < bg.graph.num_nodes(); ++v) {
    const double dev =
        std::abs(r.orientation.indegree(v) - d / 2.0);
    EXPECT_LE(dev, (eps / 2.0) * dbar + 24.0) << "node " << v;
  }
}

TEST(BalancedOrientation, MaxExcessMatchesAudit) {
  const auto bg = gen::regular_bipartite(64, 12);
  OrientationParams p;
  p.nu = 0.0625;
  const auto r = balanced_orientation(bg.graph, bg.parts, zero_eta(bg.graph), p);
  const double recomputed = orientation_max_excess(
      bg.graph, bg.parts, zero_eta(bg.graph), r.orientation,
      eps_from_nu(p.nu));
  EXPECT_DOUBLE_EQ(r.max_excess, recomputed);
}

TEST(BalancedOrientation, EtaShiftsTheBalancePoint) {
  // Large positive η on every edge (u→v tolerated even when x_v ≫ x_u)
  // lets everything orient towards V; large negative η pushes towards U.
  const auto bg = gen::regular_bipartite(32, 6);
  OrientationParams p;
  p.nu = 0.125;
  std::vector<double> eta_pos(static_cast<std::size_t>(bg.graph.num_edges()),
                              1e6);
  const auto r_pos =
      balanced_orientation(bg.graph, bg.parts, eta_pos, p);
  std::int64_t to_v = 0;
  for (EdgeId e = 0; e < bg.graph.num_edges(); ++e) {
    if (bg.parts.in_v(r_pos.orientation.head(e))) ++to_v;
  }
  // All proposals go to V; per-phase acceptance caps k_φ and the leftover
  // pass keep a small fraction on the other side.
  EXPECT_GT(to_v, bg.graph.num_edges() * 8 / 10);

  std::vector<double> eta_neg(static_cast<std::size_t>(bg.graph.num_edges()),
                              -1e6);
  const auto r_neg = balanced_orientation(bg.graph, bg.parts, eta_neg, p);
  std::int64_t to_u = 0;
  for (EdgeId e = 0; e < bg.graph.num_edges(); ++e) {
    if (bg.parts.in_u(r_neg.orientation.head(e))) ++to_u;
  }
  EXPECT_GT(to_u, bg.graph.num_edges() * 8 / 10);
}

TEST(BalancedOrientation, IrregularGraphStillBounded) {
  Rng rng(70);
  const auto bg = gen::random_bipartite(80, 80, 0.15, rng);
  if (bg.graph.num_edges() == 0) GTEST_SKIP();
  OrientationParams p;
  p.nu = 0.125;
  const auto r = balanced_orientation(bg.graph, bg.parts, zero_eta(bg.graph), p);
  EXPECT_EQ(r.orientation.num_oriented(), bg.graph.num_edges());
  // Practical-mode additive error stays small relative to Δ̄ (EXP-B).
  EXPECT_LE(r.max_excess, 2.0 * bg.graph.max_edge_degree() + 30.0);
}

TEST(BalancedOrientation, TheoryModeRuns) {
  const auto bg = gen::regular_bipartite(48, 8);
  OrientationParams p;
  p.nu = 0.125;
  p.mode = ParamMode::kTheory;
  const auto r = balanced_orientation(bg.graph, bg.parts, zero_eta(bg.graph), p);
  EXPECT_EQ(r.orientation.num_oriented(), bg.graph.num_edges());
}

TEST(BalancedOrientation, RejectsBadInputs) {
  const auto bg = gen::regular_bipartite(8, 2);
  OrientationParams p;
  p.nu = 0.2;  // > 1/8 violates Eq. (4)
  EXPECT_THROW(
      balanced_orientation(bg.graph, bg.parts, zero_eta(bg.graph), p),
      CheckError);
  p.nu = 0.125;
  std::vector<double> short_eta(3, 0.0);
  EXPECT_THROW(balanced_orientation(bg.graph, bg.parts, short_eta, p),
               CheckError);
}

TEST(BalancedOrientation, EmptyAndMatchingGraphs) {
  const auto empty = gen::regular_bipartite(4, 0);
  OrientationParams p;
  p.nu = 0.125;
  const auto r0 =
      balanced_orientation(empty.graph, empty.parts, zero_eta(empty.graph), p);
  EXPECT_EQ(r0.orientation.num_oriented(), 0);

  const auto matching = gen::regular_bipartite(6, 1);
  const auto r1 = balanced_orientation(matching.graph, matching.parts,
                                       zero_eta(matching.graph), p);
  EXPECT_EQ(r1.orientation.num_oriented(), matching.graph.num_edges());
}

TEST(BalancedOrientation, NuControlsPhases) {
  const auto bg = gen::regular_bipartite(96, 12);
  std::int64_t prev_phases = -1;
  for (const double nu : {0.125, 0.0625, 0.03125}) {
    OrientationParams p;
    p.nu = nu;
    const auto r =
        balanced_orientation(bg.graph, bg.parts, zero_eta(bg.graph), p);
    if (prev_phases >= 0) {
      EXPECT_GE(r.phases, prev_phases);
    }
    prev_phases = r.phases;
  }
}

}  // namespace
}  // namespace dec
