// Tests for the baseline edge coloring algorithms.
#include <gtest/gtest.h>

#include "coloring/baselines.hpp"
#include "graph/generators.hpp"
#include "util/logstar.hpp"

namespace dec {
namespace {

TEST(Baselines, Fast2DeltaProperAndTight) {
  Rng rng(130);
  for (const int d : {4, 8, 16}) {
    const Graph g = gen::random_regular(30 * d, d, rng);
    const auto r = edge_color_fast_2delta(g);
    EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
    EXPECT_EQ(r.palette, 2 * d - 1);
  }
}

TEST(Baselines, Fast2DeltaRoundsLinearInDelta) {
  Rng rng(131);
  for (const int d : {8, 16, 32}) {
    const Graph g = gen::random_regular(10 * d, d, rng);
    const auto r = edge_color_fast_2delta(g);
    // O(Δ̄ + log* m): ap phase <= q ~ 4Δ + greedy reduce ~ 2Δ.
    EXPECT_LE(r.rounds, 16 * d + 60) << "d=" << d;
  }
}

TEST(Baselines, QuadraticGreedyProper) {
  Rng rng(132);
  const Graph g = gen::random_regular(120, 6, rng);
  const auto r = edge_color_greedy_quadratic(g);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
  EXPECT_EQ(r.palette, 2 * 6 - 1);
}

TEST(Baselines, LubyProperAndFast) {
  Rng rng(133);
  const Graph g = gen::random_regular(400, 10, rng);
  Rng colors_rng(5);
  const auto r = edge_color_luby(g, colors_rng);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
  EXPECT_EQ(r.palette, 2 * 10 - 1);
  // O(log m) w.h.p.; generous cap.
  EXPECT_LE(r.rounds, 8 * ceil_log2(static_cast<std::uint64_t>(g.num_edges())));
}

TEST(Baselines, EdgeCases) {
  const auto r0 = edge_color_fast_2delta(gen::empty(3));
  EXPECT_TRUE(r0.colors.empty());
  const Graph matching(4, {{0, 1}, {2, 3}});
  const auto r1 = edge_color_fast_2delta(matching);
  EXPECT_TRUE(is_complete_proper_edge_coloring(matching, r1.colors));
  EXPECT_EQ(r1.palette, 1);
  Rng rng(134);
  const auto r2 = edge_color_luby(gen::star(5), rng);
  EXPECT_TRUE(is_complete_proper_edge_coloring(gen::star(5), r2.colors));
}

TEST(Baselines, LedgerAccounting) {
  Rng rng(135);
  const Graph g = gen::random_regular(80, 6, rng);
  RoundLedger ledger;
  const auto r = edge_color_fast_2delta(g, &ledger);
  EXPECT_EQ(ledger.total(), r.rounds);
  EXPECT_GT(ledger.component("ap_reduce"), 0);
  EXPECT_GT(ledger.component("linial"), 0);
}

}  // namespace
}  // namespace dec
