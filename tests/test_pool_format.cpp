// Pool format safety: the slot-plane format is STRUCTURAL — part of a run
// state's identity. A narrow run state parked in the arena must never be
// adopted for a wide lease (or vice versa); the pool reconstructs instead.
// Pinned directly on SharedNetworkPool's park/adopt, through the NetworkPool
// view (idle-slot filtering), and under a multi-threaded lease/park/adopt
// stress that TSan checks for races on the format-filtered scan.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "sim/dinetwork.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "sim/shared_pool.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace dec {
namespace {

// One narrow round on a leased network, verifying the lease carries the
// requested format and delivers correctly on it.
void echo_round(SyncNetwork& net, SlotFormat format) {
  ASSERT_EQ(net.slot_format(), format);
  const Graph& g = net.graph();
  net.round_fast([&](NodeId v, const auto&, auto&& out) {
    for (auto&& m : out) m.assign({v});
  });
  net.drain_fast([&](NodeId v, const auto& in) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < in.size(); ++i) {
      ASSERT_FALSE(in[i].empty());
      ASSERT_EQ(in[i].at(0), static_cast<std::int64_t>(nb[i].neighbor));
    }
  });
}

TEST(PoolFormat, SharedParkAdoptFiltersByFormat) {
  SharedNetworkPool shared(1);
  const Graph g = gen::cycle(8);
  const auto topo = shared.topology(g);

  auto narrow_net = std::make_unique<SyncNetwork>(
      g, topo, nullptr, "narrow", SlotPlan{SlotFormat::kNarrow, 1});
  SyncNetwork* narrow_raw = narrow_net.get();
  shared.park(std::move(narrow_net));
  EXPECT_EQ(shared.parked_run_states(), 1u);

  // A wide lease must NOT adopt the narrow state.
  EXPECT_EQ(shared.adopt_network(topo.get(), SlotFormat::kWide,
                                 PlaneMode::kDouble),
            nullptr);
  EXPECT_EQ(shared.parked_run_states(), 1u);

  // A narrow lease gets exactly that state back.
  auto adopted = shared.adopt_network(topo.get(), SlotFormat::kNarrow,
                                      PlaneMode::kDouble);
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(adopted.get(), narrow_raw);
  EXPECT_EQ(adopted->slot_format(), SlotFormat::kNarrow);

  // And the mirror direction: a parked wide state never serves narrow.
  auto wide_net = std::make_unique<SyncNetwork>(g, topo, nullptr, "wide",
                                                SlotPlan{});
  shared.park(std::move(wide_net));
  EXPECT_EQ(shared.adopt_network(topo.get(), SlotFormat::kNarrow,
                                 PlaneMode::kDouble),
            nullptr);
  EXPECT_NE(shared.adopt_network(topo.get(), SlotFormat::kWide,
                                 PlaneMode::kDouble),
            nullptr);
}

TEST(PoolFormat, SharedParkAdoptFiltersByFormatDiNetwork) {
  SharedNetworkPool shared(1);
  const Digraph dg(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto topo = shared.topology(dg);

  auto narrow_net = std::make_unique<DiNetwork>(
      dg, topo, nullptr, "narrow", SlotPlan{SlotFormat::kNarrow, 2});
  shared.park(std::move(narrow_net));
  EXPECT_EQ(shared.adopt_dinetwork(topo.get(), SlotFormat::kWide,
                                   PlaneMode::kDouble),
            nullptr);
  auto adopted = shared.adopt_dinetwork(topo.get(), SlotFormat::kNarrow,
                                        PlaneMode::kDouble);
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(adopted->slot_format(), SlotFormat::kNarrow);
}

TEST(PoolFormat, ViewReconstructsOnFormatMiss) {
  // One view, one graph: a narrow lease released back to the view must not
  // be handed out again for a wide lease (and vice versa); the view grows a
  // second run state instead, and both keep working.
  NetworkPool pool(1);
  const Graph g = gen::grid(4, 5);
  {
    auto lease = pool.network(g, nullptr, "a",
                              SlotPlan{SlotFormat::kNarrow, 1});
    echo_round(*lease, SlotFormat::kNarrow);
  }
  EXPECT_EQ(pool.run_states(), 1u);
  {
    auto lease = pool.network(g, nullptr, "b", SlotPlan{});
    echo_round(*lease, SlotFormat::kWide);
  }
  // Format miss -> fresh construction, not reuse of the narrow state.
  EXPECT_EQ(pool.run_states(), 2u);
  {
    // Both formats now warm: leases land on the matching state, no growth.
    auto narrow = pool.network(g, nullptr, "c",
                               SlotPlan{SlotFormat::kNarrow, 1});
    auto wide = pool.network(g, nullptr, "d", SlotPlan{});
    echo_round(*narrow, SlotFormat::kNarrow);
    echo_round(*wide, SlotFormat::kWide);
  }
  EXPECT_EQ(pool.run_states(), 2u);
}

TEST(PoolFormat, CrossViewLeaseNeverAdoptsOtherFormat) {
  // View 1 parks a narrow state on destruction; view 2 asks wide. It must
  // reconstruct (fresh wide state), then a narrow view 3 may adopt the
  // parked narrow one.
  SharedNetworkPool shared(1);
  const Graph g = gen::star(12);
  {
    NetworkPool view(shared);
    auto lease = view.network(g, nullptr, "n",
                              SlotPlan{SlotFormat::kNarrow, 1});
    echo_round(*lease, SlotFormat::kNarrow);
  }
  EXPECT_EQ(shared.parked_run_states(), 1u);
  {
    NetworkPool view(shared);
    auto lease = view.network(g, nullptr, "w", SlotPlan{});
    echo_round(*lease, SlotFormat::kWide);
  }
  // The narrow state was not consumed by the wide lease; both are parked.
  EXPECT_EQ(shared.parked_run_states(), 2u);
  {
    NetworkPool view(shared);
    auto lease = view.network(g, nullptr, "n2",
                              SlotPlan{SlotFormat::kNarrow, 1});
    echo_round(*lease, SlotFormat::kNarrow);
    EXPECT_EQ(view.run_states(), 1u);  // adopted, not constructed
  }
}

TEST(PoolFormat, ConcurrentMixedFormatLeaseStress) {
  // Tenants on their own threads lease alternating formats over one shared
  // arena, so format-filtered adopt scans race with parks. TSan watches the
  // arena; the asserts watch that no lease ever carries the wrong format.
  SharedNetworkPool shared(1);
  constexpr int kThreads = 4;
  constexpr int kIters = 40;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared, t] {
      Rng rng(900 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        NetworkPool view(shared);
        const Graph g = i % 2 == 0 ? gen::cycle(16 + t)
                                   : gen::grid(3 + t, 4 + i % 3);
        const SlotFormat fmt = (i + t) % 2 == 0 ? SlotFormat::kNarrow
                                                : SlotFormat::kWide;
        const int width = fmt == SlotFormat::kNarrow ? 1 : 0;
        auto lease = view.network(g, nullptr, "stress", SlotPlan{fmt, width});
        echo_round(*lease, fmt);
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace
}  // namespace dec
