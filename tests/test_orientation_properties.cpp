// Property sweeps for the substrate ports of balanced orientation (§5,
// Definition 5.2) and generalized defective 2-edge coloring (Definition 5.1,
// Lemma 5.3): many seeded instances, each audited against the paper's
// guarantees recomputed from scratch in the test (never trusting the
// solver's own bookkeeping).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/defective2ec.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

// Definition 5.2 with the run's empirical additive error β = max_excess,
// checked against indegrees recomputed from the orientation: for every edge
// e = {u, v} (u ∈ U, v ∈ V),
//   oriented u→v:  x_v − x_u ≤ η_e + (1+ε)/2·deg(e) + β,
//   oriented v→u:  x_u − x_v ≤ −η_e + (1+ε)/2·deg(e) + β.
void expect_definition_5_2(const Graph& g, const Bipartition& parts,
                           const std::vector<double>& eta,
                           const Orientation& orient, double eps,
                           double beta) {
  std::vector<int> x(static_cast<std::size_t>(g.num_nodes()), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ++x[static_cast<std::size_t>(orient.head(e))];
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId u = u_endpoint(g, parts, e);
    const NodeId v = v_endpoint(g, parts, e);
    const double slack =
        (1.0 + eps) / 2.0 * g.edge_degree(e) + beta + 1e-9;
    const double diff_vu = x[static_cast<std::size_t>(v)] -
                           x[static_cast<std::size_t>(u)];
    if (orient.head(e) == v) {
      EXPECT_LE(diff_vu, eta[static_cast<std::size_t>(e)] + slack)
          << "edge " << e;
    } else {
      EXPECT_LE(-diff_vu, -eta[static_cast<std::size_t>(e)] + slack)
          << "edge " << e;
    }
  }
}

// Lemma 5.4's shape: the leftover pass orients O(1) edges per node. The
// sweep's empirical worst case is 2; assert a fixed constant independent of
// n so growth would trip the test.
void expect_leftover_constant_per_node(const Graph& g,
                                       const BalancedOrientationResult& r) {
  std::int64_t marked = 0;
  std::vector<int> per_node(static_cast<std::size_t>(g.num_nodes()), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (r.leftover_edge[static_cast<std::size_t>(e)] == 0) continue;
    ++marked;
    const auto [a, b] = g.endpoints(e);
    ++per_node[static_cast<std::size_t>(a)];
    ++per_node[static_cast<std::size_t>(b)];
  }
  EXPECT_EQ(marked, r.leftover_edges);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(per_node[static_cast<std::size_t>(v)], 4) << "node " << v;
  }
}

TEST(OrientationProperties, SeededSweepRandomBipartite) {
  for (int seed = 0; seed < 50; ++seed) {
    Rng rng(1000 + static_cast<std::uint64_t>(seed));
    const auto bg = gen::random_bipartite(40 + seed % 20, 35 + seed % 15,
                                          0.08 + 0.004 * (seed % 10), rng);
    if (bg.graph.num_edges() == 0) continue;
    std::vector<double> eta(static_cast<std::size_t>(bg.graph.num_edges()));
    for (auto& v : eta) v = 6.0 * rng.next_double() - 3.0;
    OrientationParams p;
    p.nu = (seed % 3 == 0) ? 0.0625 : 0.125;
    RoundLedger ledger;
    const auto r = balanced_orientation(bg.graph, bg.parts, eta, p, &ledger);

    // Every edge oriented, and the incremental bookkeeping is consistent.
    EXPECT_EQ(r.orientation.num_oriented(), bg.graph.num_edges());
    r.orientation.validate();

    // Per-edge Definition 5.2 inequality with the run's empirical β.
    expect_definition_5_2(bg.graph, bg.parts, eta, r.orientation,
                          eps_from_nu(p.nu), std::max(0.0, r.max_excess));

    // The leftover remainder is O(1) per node (Lemma 5.4).
    expect_leftover_constant_per_node(bg.graph, r);

    // Substrate accounting: every charged round is a measured round, and
    // the announce payloads stay CONGEST-narrow.
    EXPECT_EQ(ledger.total(), r.rounds);
    EXPECT_GT(r.rounds, 0);
    EXPECT_GT(r.max_message_bits, 0);
    EXPECT_LE(r.max_message_bits, 64);
  }
}

TEST(OrientationProperties, RegularInstancesStayBalanced) {
  for (const int d : {8, 16, 24}) {
    const auto bg = gen::regular_bipartite(4 * d, d);
    const std::vector<double> eta(
        static_cast<std::size_t>(bg.graph.num_edges()), 0.0);
    OrientationParams p;
    p.nu = 0.125;
    const auto r = balanced_orientation(bg.graph, bg.parts, eta, p);
    EXPECT_EQ(r.orientation.num_oriented(), bg.graph.num_edges());
    expect_definition_5_2(bg.graph, bg.parts, eta, r.orientation,
                          eps_from_nu(p.nu), std::max(0.0, r.max_excess));
    expect_leftover_constant_per_node(bg.graph, r);
    // The additive error stays small relative to Δ̄ in practical mode.
    EXPECT_LE(r.max_excess, bg.graph.max_edge_degree() / 2.0 + 16.0);
  }
}

// Definition 5.1 defect bounds from the Lemma 5.3 reduction, for fixed and
// random λ. For λ = 1/4 and λ = 1/2 the sweep's empirical β' is 0, so the
// Lemma 5.3 tolerance 2β is comfortably strict; uniform-random λ (bounded
// away from {0,1}, where β_emp's per-edge normalization by λside diverges)
// is held to the Δ̄-relative cap the quality experiments use.
TEST(Defective2ECProperties, FixedLambdaQuarter) {
  for (int seed = 0; seed < 17; ++seed) {
    Rng rng(3000 + static_cast<std::uint64_t>(seed));
    const auto bg =
        gen::random_bipartite(36 + seed, 30 + seed % 12, 0.15, rng);
    if (bg.graph.num_edges() == 0) continue;
    const std::vector<double> lambda(
        static_cast<std::size_t>(bg.graph.num_edges()), 0.25);
    const auto r = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0);
    EXPECT_TRUE(defective2ec_satisfies(bg.graph, lambda, r.is_red, 1.0,
                                       2.0 * r.beta_used))
        << "seed " << seed << " beta_emp=" << r.beta_emp;
  }
}

TEST(Defective2ECProperties, FixedLambdaHalf) {
  for (int seed = 0; seed < 17; ++seed) {
    Rng rng(3100 + static_cast<std::uint64_t>(seed));
    const auto bg =
        gen::random_bipartite(36 + seed, 30 + seed % 12, 0.15, rng);
    if (bg.graph.num_edges() == 0) continue;
    const std::vector<double> lambda(
        static_cast<std::size_t>(bg.graph.num_edges()), 0.5);
    const auto r = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0);
    EXPECT_TRUE(defective2ec_satisfies(bg.graph, lambda, r.is_red, 1.0,
                                       2.0 * r.beta_used))
        << "seed " << seed << " beta_emp=" << r.beta_emp;
  }
}

TEST(Defective2ECProperties, UniformRandomLambda) {
  for (int seed = 0; seed < 17; ++seed) {
    Rng rng(3200 + static_cast<std::uint64_t>(seed));
    const auto bg =
        gen::random_bipartite(36 + seed, 30 + seed % 12, 0.15, rng);
    if (bg.graph.num_edges() == 0) continue;
    std::vector<double> lambda(
        static_cast<std::size_t>(bg.graph.num_edges()));
    for (auto& l : lambda) l = 0.2 + 0.6 * rng.next_double();
    const auto r = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0);
    EXPECT_LE(r.beta_emp, bg.graph.max_edge_degree() / 2.0 + 16.0)
        << "seed " << seed;
    // β_emp is by construction the smallest certifying β'; re-checking
    // closes the loop between the two audit entry points.
    EXPECT_TRUE(defective2ec_satisfies(bg.graph, lambda, r.is_red, 1.0,
                                       r.beta_emp + 1e-6));
  }
}

}  // namespace
}  // namespace dec
