// Tests for list edge coloring instance machinery.
#include <gtest/gtest.h>

#include "coloring/list_instance.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

TEST(ListInstance, FullPaletteDefaults) {
  Rng rng(40);
  const Graph g = gen::random_regular(50, 4, rng);
  const ListEdgeInstance inst = make_full_palette_instance(g);
  EXPECT_EQ(inst.color_space, g.max_edge_degree() + 1);  // = 2Δ-1
  validate_degree_plus_one(inst);
  EXPECT_GE(min_slack(inst), 1.0);
}

TEST(ListInstance, FullPaletteCustomK) {
  const Graph g = gen::path(4);
  const ListEdgeInstance inst = make_full_palette_instance(g, 9);
  EXPECT_EQ(inst.color_space, 9);
  EXPECT_EQ(inst.list(0).size(), 9u);
}

TEST(ListInstance, RandomListsAreDegreePlusOne) {
  Rng rng(41);
  const Graph g = gen::random_regular(60, 6, rng);
  const ListEdgeInstance inst =
      make_random_list_instance(g, 3 * g.max_edge_degree(), rng);
  validate_degree_plus_one(inst);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(static_cast<int>(inst.list(e).size()), g.edge_degree(e) + 1);
  }
}

TEST(ListInstance, RandomListsRejectSmallSpace) {
  Rng rng(42);
  const Graph g = gen::complete(6);
  EXPECT_THROW(make_random_list_instance(g, g.max_edge_degree(), rng),
               CheckError);
}

TEST(ListInstance, SkewedListsAreValidAndSkewed) {
  Rng rng(43);
  const Graph g = gen::random_regular(60, 6, rng);
  const int space = 4 * g.max_edge_degree();
  const ListEdgeInstance inst = make_skewed_list_instance(g, space, 0.9, rng);
  validate_degree_plus_one(inst);
  // With bias 0.9, most list mass sits in the lower half.
  std::int64_t low = 0, total = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const Color c : inst.list(e)) {
      ++total;
      if (c < space / 2) ++low;
    }
  }
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.7);
}

TEST(ListInstance, ValidateCatchesProblems) {
  const Graph g = gen::path(3);
  ListEdgeInstance inst;
  inst.g = &g;
  inst.color_space = 4;
  inst.lists = {{0, 1}, {1, 0}};  // second list unsorted
  EXPECT_THROW(validate_lists(inst), CheckError);
  inst.lists = {{0, 1}, {1, 1}};  // duplicate
  EXPECT_THROW(validate_lists(inst), CheckError);
  inst.lists = {{0, 1}, {1, 7}};  // out of space
  EXPECT_THROW(validate_lists(inst), CheckError);
  inst.lists = {{0, 1}, {1}};  // too small for degree+1 (deg=1 ⇒ need 2)
  EXPECT_THROW(validate_degree_plus_one(inst), CheckError);
}

TEST(ListInstance, CheckListColoring) {
  const Graph g = gen::path(3);  // edges {0-1, 1-2}, adjacent
  ListEdgeInstance inst;
  inst.g = &g;
  inst.color_space = 3;
  inst.lists = {{0, 1}, {1, 2}};
  EXPECT_TRUE(check_list_coloring(inst, {0, 1}));
  EXPECT_FALSE(check_list_coloring(inst, {1, 1}));        // conflict
  EXPECT_FALSE(check_list_coloring(inst, {2, 1}));        // 2 not in list 0
  EXPECT_FALSE(check_list_coloring(inst, {0, kUncolored}));  // incomplete
}

TEST(ListInstance, MinSlackComputation) {
  const Graph g = gen::star(2);  // two edges, each deg 1
  ListEdgeInstance inst;
  inst.g = &g;
  inst.color_space = 6;
  inst.lists = {{0, 1, 2}, {0, 1}};
  EXPECT_DOUBLE_EQ(min_slack(inst), 2.0);
}

}  // namespace
}  // namespace dec
