// Cancellation contract, substrate to solvers.
//
// CancelToken semantics (sticky reason, deterministic round budget, wall
// deadline); the round-barrier guarantee — an abort observed at
// SyncNetwork::begin_round() leaves the network at the exact post-last-round
// state, so resuming or resetting is always legal; aborted DiNetwork leases
// (lane plans, spilled slabs) park clean for the next tenant; and the
// lease-abandonment contract: all five orchestrated solvers aborted mid-phase
// while holding pooled leases leave the arena such that the next pooled run
// is bit-identical to a fresh-network run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/balanced_orientation.hpp"
#include "core/bipartite_coloring.hpp"
#include "core/congest_coloring.hpp"
#include "core/defective2ec.hpp"
#include "core/token_dropping.hpp"
#include "graph/generators.hpp"
#include "sim/cancel.hpp"
#include "sim/dinetwork.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"

namespace dec {
namespace {

// ------------------------------------------------------------------- token

TEST(CancelToken, DefaultTokenNeverTrips) {
  CancelToken token;
  EXPECT_FALSE(token.aborted());
  for (int i = 0; i < 1000; ++i) EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, RequestCancelIsStickyFirstReasonWins) {
  CancelToken token;
  token.request_cancel(AbortReason::kCancelled);
  EXPECT_TRUE(token.aborted());
  EXPECT_EQ(token.reason(), AbortReason::kCancelled);
  token.request_cancel(AbortReason::kDeadlineExceeded);  // loses the race
  EXPECT_EQ(token.reason(), AbortReason::kCancelled);
  try {
    token.check();
    FAIL() << "check() must throw on a tripped token";
  } catch (const SolverAborted& a) {
    EXPECT_EQ(a.reason(), AbortReason::kCancelled);
  }
}

TEST(CancelToken, RoundBudgetTripsOnTheBudgetPlusFirstCheck) {
  CancelToken token;
  token.set_round_budget(3);
  for (int i = 0; i < 3; ++i) EXPECT_NO_THROW(token.check()) << i;
  try {
    token.check();
    FAIL() << "the (budget+1)-th check must throw";
  } catch (const SolverAborted& a) {
    EXPECT_EQ(a.reason(), AbortReason::kDeadlineExceeded);
  }
  // And it stays tripped.
  EXPECT_THROW(token.check(), SolverAborted);
}

TEST(CancelToken, ExpiredDeadlineTripsAsDeadlineExceeded) {
  CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  try {
    token.check();
    FAIL() << "an expired deadline must throw";
  } catch (const SolverAborted& a) {
    EXPECT_EQ(a.reason(), AbortReason::kDeadlineExceeded);
  }
  CancelToken future_token;
  future_token.set_deadline(std::chrono::steady_clock::now() +
                            std::chrono::hours(24));
  EXPECT_NO_THROW(future_token.check());
}

// --------------------------------------------------------------- substrate

std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  return h ^ (x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

// Deterministic per-node fold over everything delivered; one round of the
// same traffic pattern as test_network_pool's protocol (spills included).
void protocol_round(SyncNetwork& net, std::vector<std::uint64_t>& acc, int r) {
  net.round_fast([&](NodeId v, const Inbox& in, Outbox& out) {
    auto& a = acc[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < in.size(); ++i) {
      for (const std::int64_t f : in[i].fields()) {
        a = mix(a, static_cast<std::uint64_t>(f));
      }
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::int64_t sig = static_cast<std::int64_t>(v) * 1315423911 +
                               static_cast<std::int64_t>(i) * 97 + r;
      if (sig % 3 == 0) continue;
      Message& m = out[i];
      m = Message{sig};
      if (sig % 5 == 0) {
        for (int k = 1; k <= 2 * static_cast<int>(Message::kInlineFields);
             ++k) {
          m.push(sig + k);
        }
      }
    }
  });
}

std::vector<std::uint64_t> run_rounds(SyncNetwork& net, int from, int to) {
  std::vector<std::uint64_t> acc(
      static_cast<std::size_t>(net.graph().num_nodes()), 0);
  for (int r = from; r < to; ++r) protocol_round(net, acc, r);
  return acc;
}

void check_abort_leaves_post_round_state(int num_threads) {
  Rng rng(10);
  const Graph g = gen::gnp(60, 0.12, rng);
  constexpr int kRounds = 6;
  constexpr int kBudget = 3;

  SyncNetwork ref_net(g, nullptr, "net", num_threads);
  std::vector<std::uint64_t> ref(
      static_cast<std::size_t>(g.num_nodes()), 0);
  for (int r = 0; r < kRounds; ++r) protocol_round(ref_net, ref, r);

  // Budgeted run: the abort must surface at the barrier of round kBudget+1,
  // with the network at the exact post-round-kBudget state — detaching the
  // token and continuing must land on the reference, bit for bit.
  SyncNetwork net(g, nullptr, "net", num_threads);
  CancelToken token;
  token.set_round_budget(kBudget);
  net.set_cancel(&token);
  std::vector<std::uint64_t> acc(
      static_cast<std::size_t>(g.num_nodes()), 0);
  int aborted_at = -1;
  try {
    for (int r = 0; r < kRounds; ++r) protocol_round(net, acc, r);
    FAIL() << "budget " << kBudget << " must abort a " << kRounds
           << "-round protocol";
  } catch (const SolverAborted& a) {
    EXPECT_EQ(a.reason(), AbortReason::kDeadlineExceeded);
    aborted_at = static_cast<int>(net.rounds_executed());
  }
  EXPECT_EQ(aborted_at, kBudget);  // exactly kBudget rounds completed

  net.set_cancel(nullptr);
  for (int r = kBudget; r < kRounds; ++r) protocol_round(net, acc, r);
  EXPECT_EQ(net.rounds_executed(), kRounds);
  EXPECT_EQ(acc, ref);

  // And reset() after an abort behaves like reset() after anything else.
  net.reset();
  CancelToken fresh_token;  // untripped: must cost nothing and allow all
  net.set_cancel(&fresh_token);
  EXPECT_EQ(run_rounds(net, 0, kRounds), ref);
}

TEST(Cancellation, AbortLeavesPostRoundStateSerial) {
  check_abort_leaves_post_round_state(1);
}
TEST(Cancellation, AbortLeavesPostRoundState2Shards) {
  check_abort_leaves_post_round_state(2);
}
TEST(Cancellation, AbortLeavesPostRoundState4Shards) {
  check_abort_leaves_post_round_state(4);
}

TEST(Cancellation, RequestFromAnotherThreadStopsTheRoundLoop) {
  Rng rng(11);
  const Graph g = gen::gnp(40, 0.15, rng);
  SyncNetwork net(g, nullptr, "net", 1);
  CancelToken token;
  net.set_cancel(&token);
  token.request_cancel();  // "another thread" won before the next barrier
  std::vector<std::uint64_t> acc(
      static_cast<std::size_t>(g.num_nodes()), 0);
  EXPECT_THROW(protocol_round(net, acc, 0), SolverAborted);
  EXPECT_EQ(net.rounds_executed(), 0);  // nothing ran, nothing half-ran
}

// -------------------------------------------- aborted DiNetwork pool leases

auto token_key(const TokenDroppingResult& r) {
  return std::tuple(r.tokens, r.edge_passive, r.phases, r.rounds,
                    r.tokens_moved, r.max_message_bits);
}

// Satellite: a DiNetwork lease aborted mid-game — lane plan active
// (anti-parallel arcs => two lanes per support edge) and multi-lane packing
// spilling into the slab — must park such that the next lease is
// indistinguishable from fresh.
void check_dinetwork_reset_after_abort(int num_threads) {
  std::vector<std::pair<NodeId, NodeId>> arcs;
  const NodeId leaves = 14;
  for (NodeId i = 1; i <= leaves; ++i) {
    arcs.emplace_back(0, i);
    arcs.emplace_back(i, 0);  // anti-parallel: two lanes per support edge
  }
  const Digraph dg(leaves + 1, std::move(arcs));

  TokenDroppingParams params;
  params.k = 12;
  params.delta = 2;
  params.alpha.assign(static_cast<std::size_t>(dg.num_nodes()), 3);
  std::vector<int> init(static_cast<std::size_t>(dg.num_nodes()));
  Rng trng(12);
  for (auto& t : init) {
    t = static_cast<int>(
        trng.next_below(static_cast<std::uint64_t>(params.k) + 1));
  }
  const TokenDroppingResult ref =
      run_token_dropping(dg, init, params, nullptr, num_threads);
  ASSERT_GT(ref.rounds, 2);

  NetworkPool pool(num_threads);
  {
    // Aborted run on a pooled lease: the game stops mid-phase with packed
    // multi-lane traffic (and spills) in flight.
    CancelToken token;
    token.set_round_budget(2);
    EXPECT_THROW(run_token_dropping(dg, init, params, nullptr, num_threads,
                                    &pool, &token),
                 SolverAborted);
  }
  // The dirtied run state must serve the next tenant bit-identically.
  const TokenDroppingResult pooled =
      run_token_dropping(dg, init, params, nullptr, num_threads, &pool);
  EXPECT_EQ(token_key(ref), token_key(pooled));
  EXPECT_LE(pool.run_states(), 1u);

  // Raw-lease variant: abort at the barrier, release dirty, release clean.
  {
    auto lease = pool.dinetwork(dg);
    CancelToken token;
    token.set_round_budget(1);
    lease->set_cancel(&token);
    const auto spam = [&] {
      for (int r = 0; r < 3; ++r) {
        lease->round_fast([&](NodeId v, const DiInbox&, DiOutbox& out) {
          const auto deg = dg.out(v).size();
          for (std::size_t j = 0; j < deg; ++j) {
            out.along(j, {static_cast<std::int64_t>(v), 1, 2, 3});
          }
        });
      }
    };
    EXPECT_THROW(spam(), SolverAborted);
    EXPECT_EQ(lease->rounds_executed(), 1);
  }  // released dirty, token destroyed (release must have detached it)
  {
    auto lease = pool.dinetwork(dg);
    EXPECT_EQ(lease->rounds_executed(), 0);
    EXPECT_EQ(lease->audit().messages_sent(), 0);
    EXPECT_EQ(lease->cancel(), nullptr);  // stale token never survives
  }
}

TEST(Cancellation, DiNetworkLeaseCleanAfterAbortSerial) {
  check_dinetwork_reset_after_abort(1);
}
TEST(Cancellation, DiNetworkLeaseCleanAfterAbort2Shards) {
  check_dinetwork_reset_after_abort(2);
}
TEST(Cancellation, DiNetworkLeaseCleanAfterAbort4Shards) {
  check_dinetwork_reset_after_abort(4);
}

// ------------------------------------------------- solver lease abandonment

auto congest_key(const CongestColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels, r.tail_degree);
}

auto bipartite_key(const BipartiteColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels,
                    r.leaf_degree_bound, r.chi);
}

std::vector<NodeId> heads_of(const Orientation& o) {
  std::vector<NodeId> heads(static_cast<std::size_t>(o.graph().num_edges()));
  for (EdgeId e = 0; e < o.graph().num_edges(); ++e) {
    heads[static_cast<std::size_t>(e)] = o.head(e);
  }
  return heads;
}

auto orientation_key(const BalancedOrientationResult& r) {
  return std::tuple(heads_of(r.orientation), r.phases, r.rounds, r.flips,
                    r.leftover_edges, r.leftover_edge, r.max_excess,
                    r.max_message_bits);
}

auto d2ec_key(const Defective2ECResult& r) {
  return std::tuple(r.is_red, r.phases, r.rounds, r.beta_used, r.beta_emp,
                    r.max_message_bits);
}

BipartiteGraph test_bipartite(std::uint64_t seed) {
  Rng rng(seed);
  return gen::random_bipartite(20, 18, 0.18, rng);
}

/// Abort `run(pool, token)` mid-phase with a round budget, then verify that
/// `run(pool, nullptr)` on the dirtied pool matches `expected` — the
/// lease-abandonment contract for one solver.
template <class Key, class Run>
void expect_clean_after_abandon(const char* solver, const Key& expected,
                                Run run, std::int64_t budget) {
  NetworkPool pool(1);
  {
    CancelToken token;
    token.set_round_budget(budget);
    EXPECT_THROW(run(&pool, &token), SolverAborted) << solver;
  }
  EXPECT_EQ(expected, run(&pool, nullptr)) << solver;
  // Second pooled run on the now twice-recycled arena, for good measure.
  EXPECT_EQ(expected, run(&pool, nullptr)) << solver;
}

TEST(LeaseAbandonment, AllFiveSolversParkCleanStateOnAbort) {
  Rng rng(13);
  const Graph g = gen::gnp(44, 0.14, rng);
  const auto bg = test_bipartite(14);
  std::vector<double> eta(static_cast<std::size_t>(bg.graph.num_edges()));
  Rng wrng(15);
  for (auto& v : eta) v = 3.0 * (2.0 * wrng.next_double() - 1.0);
  std::vector<double> lambda(static_cast<std::size_t>(bg.graph.num_edges()));
  for (auto& v : lambda) v = wrng.next_double();
  Rng grng(16);
  const Digraph game = layered_game(4, 8, 3, grng);
  TokenDroppingParams tp;
  tp.k = 12;
  tp.delta = 1;
  tp.alpha.assign(static_cast<std::size_t>(game.num_nodes()), 2);
  std::vector<int> init(static_cast<std::size_t>(game.num_nodes()), 6);

  expect_clean_after_abandon(
      "congest_edge_coloring",
      congest_key(congest_edge_coloring(g, 1.0)),
      [&](NetworkPool* pool, CancelToken* cancel) {
        return congest_key(congest_edge_coloring(
            g, 1.0, ParamMode::kPractical, nullptr, 1, pool, cancel));
      },
      2);

  // The bipartite solver executes exactly one network barrier on this
  // instance (its color reductions are ledger-charged, not simulated), so
  // only a zero budget can interrupt it — which aborts at that first
  // barrier, mid-leaf-coloring, with the linial lease held.
  expect_clean_after_abandon(
      "bipartite_edge_coloring",
      bipartite_key(bipartite_edge_coloring(bg.graph, bg.parts, 1.0)),
      [&](NetworkPool* pool, CancelToken* cancel) {
        return bipartite_key(bipartite_edge_coloring(
            bg.graph, bg.parts, 1.0, ParamMode::kPractical, nullptr, 1, pool,
            cancel));
      },
      0);

  OrientationParams op;
  op.nu = 0.125;
  expect_clean_after_abandon(
      "balanced_orientation",
      orientation_key(balanced_orientation(bg.graph, bg.parts, eta, op)),
      [&](NetworkPool* pool, CancelToken* cancel) {
        OrientationParams p = op;
        p.pooled = pool != nullptr;
        return orientation_key(balanced_orientation(bg.graph, bg.parts, eta,
                                                    p, nullptr, 1, pool,
                                                    cancel));
      },
      3);

  expect_clean_after_abandon(
      "defective_2_edge_coloring",
      d2ec_key(defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0)),
      [&](NetworkPool* pool, CancelToken* cancel) {
        return d2ec_key(defective_2_edge_coloring(
            bg.graph, bg.parts, lambda, 1.0, ParamMode::kPractical, nullptr,
            1, pool, cancel));
      },
      3);

  expect_clean_after_abandon(
      "token_dropping",
      token_key(run_token_dropping(game, init, tp)),
      [&](NetworkPool* pool, CancelToken* cancel) {
        return token_key(run_token_dropping(game, init, tp, nullptr, 1, pool,
                                            cancel));
      },
      2);
}

TEST(LeaseAbandonment, BudgetLargerThanTheRunChangesNothing) {
  // A token that never trips must be invisible: same results, pooled or not.
  Rng rng(17);
  const Graph g = gen::gnp(40, 0.15, rng);
  const auto ref = congest_key(congest_edge_coloring(g, 1.0));
  NetworkPool pool(1);
  CancelToken token;
  token.set_round_budget(1 << 20);
  const auto got = congest_key(congest_edge_coloring(
      g, 1.0, ParamMode::kPractical, nullptr, 1, &pool, &token));
  EXPECT_EQ(ref, got);
  EXPECT_FALSE(token.aborted());
}

}  // namespace
}  // namespace dec
