// Tests for the generalized defective 2-edge coloring (Def. 5.1, Lemma 5.3,
// Corollary 5.7).
#include <gtest/gtest.h>

#include "core/defective2ec.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

TEST(Defective2EC, HalvesRegularBipartiteDegrees) {
  const auto bg = gen::regular_bipartite(128, 16);
  const std::vector<double> lambda(
      static_cast<std::size_t>(bg.graph.num_edges()), 0.5);
  for (const double eps : {0.5, 1.0}) {
    const auto r =
        defective_2_edge_coloring(bg.graph, bg.parts, lambda, eps);
    // Definition 5.1 with the run's β (Lemma 5.3 tolerates 2β).
    EXPECT_TRUE(defective2ec_satisfies(bg.graph, lambda, r.is_red, eps,
                                       2.0 * r.beta_used))
        << "eps=" << eps << " beta_emp=" << r.beta_emp;
  }
}

TEST(Defective2EC, EmpiricalBetaSmallOnRegularInstances) {
  const auto bg = gen::regular_bipartite(256, 32);
  const std::vector<double> lambda(
      static_cast<std::size_t>(bg.graph.num_edges()), 0.5);
  const auto r = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0);
  EXPECT_LE(r.beta_emp, 8.0);  // EXP-B: measured ≈ 0 at ε = 1
}

TEST(Defective2EC, SkewedLambdaSkewsTheSplit) {
  const auto bg = gen::regular_bipartite(96, 12);
  // λ = 0.9: red side must tolerate most of the degree, blue side little.
  const std::vector<double> lambda(
      static_cast<std::size_t>(bg.graph.num_edges()), 0.9);
  const auto r = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0);
  std::int64_t red = 0;
  for (const auto b : r.is_red) red += b != 0 ? 1 : 0;
  // Blue edges may keep only (1+ε)·0.1·deg ≈ 0.2·deg blue neighbors, so the
  // split must be heavily red.
  EXPECT_GT(red, bg.graph.num_edges() * 6 / 10);
  EXPECT_TRUE(defective2ec_satisfies(bg.graph, lambda, r.is_red, 1.0,
                                     2.0 * r.beta_used + 4.0));
}

TEST(Defective2EC, ExtremeLambdasForceColors) {
  const auto bg = gen::regular_bipartite(32, 4);
  std::vector<double> lambda(static_cast<std::size_t>(bg.graph.num_edges()),
                             0.0);
  const auto r0 = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0);
  // λ = 0: a red edge would need zero red neighbors (mod β tolerance);
  // essentially everything must be blue.
  std::int64_t red = 0;
  for (const auto b : r0.is_red) red += b != 0 ? 1 : 0;
  EXPECT_LT(red, bg.graph.num_edges() / 8);
}

TEST(Defective2EC, MixedLambdaStaysWithinBound) {
  Rng rng(71);
  const auto bg = gen::regular_bipartite(128, 16);
  // λ bounded away from {0, 1}: β_emp divides the overshoot by the side's
  // λ, so near-extreme λ values inflate the metric arbitrarily (an edge with
  // λ → 0 tolerates *no* same-color neighbors under Definition 5.1) — that
  // regime is exercised separately in ExtremeLambdasForceColors.
  std::vector<double> lambda(static_cast<std::size_t>(bg.graph.num_edges()));
  for (auto& l : lambda) l = 0.25 + 0.5 * rng.next_double();
  const auto r = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0);
  // The empirical additive error must stay well below Δ̄ for the split to be
  // useful; allow a generous cap.
  EXPECT_LE(r.beta_emp, bg.graph.max_edge_degree() / 2.0 + 16.0);
}

TEST(Defective2EC, EtaFormulaMatchesEquation3) {
  const auto bg = gen::regular_bipartite(8, 3);
  // Hand-check Eq. (3) on a regular instance: deg(u)=deg(v)=3, deg(e)=4.
  const double eta = eta_of_lambda(bg.graph, bg.parts, 0, 0.5, 0.25, 2.0);
  // 1 - 1 - 0.5*3 + 0.5*3 + 0.25*0*4 + 0*2 = 0.
  EXPECT_DOUBLE_EQ(eta, 0.0);
  const double eta1 = eta_of_lambda(bg.graph, bg.parts, 0, 1.0, 0.0, 0.0);
  // 1 - 2 - 0 + 3 + 0 + 0 = 2.
  EXPECT_DOUBLE_EQ(eta1, 2.0);
}

TEST(Defective2EC, RejectsBadArguments) {
  const auto bg = gen::regular_bipartite(8, 2);
  std::vector<double> lambda(static_cast<std::size_t>(bg.graph.num_edges()),
                             0.5);
  EXPECT_THROW(
      defective_2_edge_coloring(bg.graph, bg.parts, lambda, 0.0), CheckError);
  lambda[0] = 1.5;
  EXPECT_THROW(
      defective_2_edge_coloring(bg.graph, bg.parts, lambda, 0.5), CheckError);
}

TEST(Defective2EC, IrregularBipartiteGraphs) {
  Rng rng(72);
  const auto bg = gen::random_bipartite(100, 60, 0.12, rng);
  if (bg.graph.num_edges() == 0) GTEST_SKIP();
  const std::vector<double> lambda(
      static_cast<std::size_t>(bg.graph.num_edges()), 0.5);
  const auto r = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0);
  EXPECT_TRUE(defective2ec_satisfies(bg.graph, lambda, r.is_red, 1.0,
                                     2.0 * r.beta_used + r.beta_emp + 1.0));
}

// Corollary 5.7 shape: rounds grow mildly with Δ̄ at fixed ε.
class D2ECRounds : public ::testing::TestWithParam<int> {};

TEST_P(D2ECRounds, RoundsRecorded) {
  const int d = GetParam();
  const auto bg = gen::regular_bipartite(4 * d, d);
  const std::vector<double> lambda(
      static_cast<std::size_t>(bg.graph.num_edges()), 0.5);
  RoundLedger ledger;
  const auto r = defective_2_edge_coloring(bg.graph, bg.parts, lambda, 1.0,
                                           ParamMode::kPractical, &ledger);
  EXPECT_GT(r.rounds, 0);
  EXPECT_EQ(ledger.total(), r.rounds);
}

INSTANTIATE_TEST_SUITE_P(Degrees, D2ECRounds, ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace dec
