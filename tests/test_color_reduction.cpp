// Tests for the arithmetic-progression and greedy color reductions.
#include <gtest/gtest.h>

#include "coloring/color_reduction.hpp"
#include "coloring/linial.hpp"
#include "graph/generators.hpp"
#include "util/prime.hpp"

namespace dec {
namespace {

std::vector<Color> spread_coloring(const Graph& g, std::int64_t q) {
  // A proper coloring inside [0, q²) obtained from Linial (palette <= q² for
  // q >= 2Δ+2 as the pipeline guarantees).
  const LinialResult lin = linial_color(g);
  EXPECT_LE(lin.palette, q * q);
  return lin.colors;
}

TEST(ApReduce, ReducesToQColors) {
  Rng rng(20);
  const Graph g = gen::random_regular(300, 6, rng);
  const std::int64_t q =
      static_cast<std::int64_t>(next_prime(static_cast<std::uint64_t>(2 * 6 + 2)));
  const ReductionResult r = ap_reduce(g, spread_coloring(g, q), q);
  EXPECT_TRUE(is_complete_proper_vertex_coloring(g, r.colors));
  for (const Color c : r.colors) EXPECT_LT(c, q);
  EXPECT_LE(r.rounds, q);
}

TEST(ApReduce, RejectsBadParameters) {
  const Graph g = gen::cycle(10);
  EXPECT_THROW(ap_reduce(g, std::vector<Color>(10, 0), 7), CheckError);  // improper
  std::vector<Color> proper(10);
  for (int i = 0; i < 10; ++i) proper[static_cast<std::size_t>(i)] = i % 2;
  EXPECT_THROW(ap_reduce(g, proper, 8), CheckError);   // not prime
  EXPECT_THROW(ap_reduce(g, proper, 5), CheckError);   // q < 2Δ+2
  std::vector<Color> big = proper;
  big[0] = 48;  // within q²=49 is fine; 50 is not
  big[0] = 50;
  EXPECT_THROW(ap_reduce(g, big, 7), CheckError);
}

TEST(ApReduce, WorksOnDenseGraph) {
  const Graph g = gen::complete(12);
  const std::int64_t q = static_cast<std::int64_t>(
      next_prime(static_cast<std::uint64_t>(2 * g.max_degree() + 2)));
  std::vector<Color> init(12);
  for (int i = 0; i < 12; ++i) init[static_cast<std::size_t>(i)] = i;
  const ReductionResult r = ap_reduce(g, init, q);
  EXPECT_TRUE(is_complete_proper_vertex_coloring(g, r.colors));
  for (const Color c : r.colors) EXPECT_LT(c, q);
}

TEST(GreedyReduce, HitsDeltaPlusOne) {
  Rng rng(21);
  const Graph g = gen::gnp(120, 0.08, rng);
  const LinialResult lin = linial_color(g);
  const int target = g.max_degree() + 1;
  const ReductionResult r = greedy_reduce(g, lin.colors, lin.palette, target);
  EXPECT_TRUE(is_complete_proper_vertex_coloring(g, r.colors));
  for (const Color c : r.colors) EXPECT_LT(c, target);
  EXPECT_EQ(r.rounds, lin.palette - target);
}

TEST(GreedyReduce, RejectsTargetBelowDeltaPlusOne) {
  const Graph g = gen::star(4);
  std::vector<Color> init{0, 1, 2, 3, 4};
  EXPECT_THROW(greedy_reduce(g, init, 5, 4), CheckError);
}

TEST(GreedyReduce, NoopWhenAlreadySmall) {
  const Graph g = gen::path(4);
  std::vector<Color> init{0, 1, 0, 1};
  const ReductionResult r = greedy_reduce(g, init, 2, 3);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_EQ(r.colors, init);
}

TEST(DeltaPlusOnePipeline, VariousGraphs) {
  Rng rng(22);
  const Graph graphs[] = {gen::cycle(30), gen::random_regular(100, 8, rng),
                          gen::gnp(80, 0.15, rng), gen::hypercube(5),
                          gen::complete(9)};
  for (const Graph& g : graphs) {
    const ReductionResult r = vertex_color_delta_plus_one(g);
    EXPECT_TRUE(is_complete_proper_vertex_coloring(g, r.colors));
    EXPECT_LE(r.palette, g.max_degree() + 1);
  }
}

TEST(DeltaPlusOnePipeline, RoundsLinearInDelta) {
  Rng rng(23);
  for (const int d : {4, 8, 16, 32}) {
    const Graph g = gen::random_regular(400, d, rng);
    RoundLedger ledger;
    const ReductionResult r = vertex_color_delta_plus_one(g, &ledger);
    EXPECT_TRUE(is_complete_proper_vertex_coloring(g, r.colors));
    // O(Δ): ap (<= q ~ 2Δ+3) + greedy (q - Δ - 1) + log* term.
    EXPECT_LE(r.rounds, 8 * d + 40) << "d=" << d;
  }
}

TEST(DeltaPlusOnePipeline, EdgelessGraph) {
  const ReductionResult r = vertex_color_delta_plus_one(gen::empty(7));
  EXPECT_EQ(r.palette, 1);
}

}  // namespace
}  // namespace dec
