// Narrow-vs-wide bit-identity at the solver level: every solver that opted
// into the 16 B narrow slot plane (Linial, defective precolor + refine,
// token dropping, balanced orientation with its embedded games) must produce
// the same outputs, audited rounds, message widths/counts, and full ledger
// breakdowns under SlotFormat::kNarrow as under kWide — fresh and pooled,
// serial and 2/4-shard, across random/grid/star families with >= 20 seeds
// each. The narrow format is a pure storage optimization; any divergence
// here is a substrate bug, not a tolerance.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "core/balanced_orientation.hpp"
#include "core/token_dropping.hpp"
#include "graph/bipartite.hpp"
#include "graph/generators.hpp"
#include "sim/ledger.hpp"
#include "sim/pool.hpp"
#include "util/rng.hpp"

namespace dec {
namespace {

Graph family_graph(int family, int seed, Rng& rng) {
  switch (family) {
    case 0: return gen::gnp(40 + seed, 0.12, rng);
    case 1: return gen::grid(4 + seed % 4, 5 + seed % 5);
    default: return gen::star(20 + 2 * seed);
  }
}

auto linial_key(const LinialResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.iterations,
                    r.max_message_bits);
}

auto defective_key(const DefectiveResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.max_defect, r.sweeps,
                    r.converged, r.max_message_bits, r.messages);
}

auto token_key(const TokenDroppingResult& r) {
  return std::tuple(r.tokens, r.edge_passive, r.phases, r.rounds,
                    r.tokens_moved, r.max_message_bits);
}

std::vector<NodeId> heads_of(const Orientation& o) {
  std::vector<NodeId> heads(static_cast<std::size_t>(o.graph().num_edges()));
  for (EdgeId e = 0; e < o.graph().num_edges(); ++e) {
    heads[static_cast<std::size_t>(e)] = o.head(e);
  }
  return heads;
}

auto orientation_key(const BalancedOrientationResult& r) {
  return std::tuple(heads_of(r.orientation), r.phases, r.rounds, r.flips,
                    r.leftover_edges, r.leftover_edge, r.max_excess,
                    r.max_message_bits);
}

TEST(NarrowEquivalence, Linial) {
  NetworkPool pools[] = {NetworkPool(1), NetworkPool(2), NetworkPool(4)};
  const int threads[] = {1, 2, 4};
  for (int family = 0; family < 3; ++family) {
    for (int seed = 0; seed < 20; ++seed) {
      Rng rng(4000 + 100 * family + static_cast<std::uint64_t>(seed));
      const Graph g = family_graph(family, seed, rng);
      RoundLedger wide_ledger;
      const LinialResult wide =
          linial_color(g, &wide_ledger, {}, 0, 1, nullptr, nullptr,
                       SlotFormat::kWide);
      for (int ti = 0; ti < 3; ++ti) {
        RoundLedger ledger;
        const LinialResult narrow =
            linial_color(g, &ledger, {}, 0, threads[ti], &pools[ti], nullptr,
                         SlotFormat::kNarrow);
        EXPECT_EQ(linial_key(wide), linial_key(narrow))
            << "family " << family << " seed " << seed << " threads "
            << threads[ti];
        EXPECT_EQ(wide_ledger.breakdown(), ledger.breakdown());
      }
      // Fresh (unpooled) narrow run too.
      RoundLedger fresh_ledger;
      const LinialResult fresh = linial_color(g, &fresh_ledger, {}, 0, 1,
                                              nullptr, nullptr,
                                              SlotFormat::kNarrow);
      EXPECT_EQ(linial_key(wide), linial_key(fresh));
      EXPECT_EQ(wide_ledger.breakdown(), fresh_ledger.breakdown());
    }
  }
}

TEST(NarrowEquivalence, DefectivePrecolorAndRefine) {
  NetworkPool pools[] = {NetworkPool(1), NetworkPool(2), NetworkPool(4)};
  const int threads[] = {1, 2, 4};
  for (int family = 0; family < 3; ++family) {
    for (int seed = 0; seed < 20; ++seed) {
      Rng rng(5000 + 100 * family + static_cast<std::uint64_t>(seed));
      const Graph g = family_graph(family, seed, rng);
      if (g.max_degree() < 2) continue;
      const LinialResult lin = linial_color(g);
      RoundLedger wide_ledger;
      const DefectiveResult wide =
          defective_4_coloring(g, lin.colors, lin.palette, 0.5, &wide_ledger,
                               1, nullptr, nullptr, SlotFormat::kWide);
      for (int ti = 0; ti < 3; ++ti) {
        RoundLedger ledger;
        const DefectiveResult narrow = defective_4_coloring(
            g, lin.colors, lin.palette, 0.5, &ledger, threads[ti], &pools[ti],
            nullptr, SlotFormat::kNarrow);
        EXPECT_EQ(defective_key(wide), defective_key(narrow))
            << "family " << family << " seed " << seed << " threads "
            << threads[ti];
        EXPECT_EQ(wide_ledger.breakdown(), ledger.breakdown());
      }
    }
  }
}

TEST(NarrowEquivalence, TokenDropping) {
  NetworkPool pools[] = {NetworkPool(1), NetworkPool(2), NetworkPool(4)};
  const int threads[] = {1, 2, 4};
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(6000 + static_cast<std::uint64_t>(seed));
    const Digraph game = seed % 2 == 0
                             ? layered_game(3, 8 + seed, 3, rng)
                             : random_game(24 + seed, 0.1, rng);
    TokenDroppingParams p;
    p.k = 6;
    p.delta = 2;
    std::vector<int> init(static_cast<std::size_t>(game.num_nodes()));
    for (auto& t : init) t = static_cast<int>(rng.next_u64() % (p.k + 1));

    TokenDroppingParams wide_p = p;
    wide_p.slot_format = SlotFormat::kWide;
    RoundLedger wide_ledger;
    const TokenDroppingResult wide =
        run_token_dropping(game, init, wide_p, &wide_ledger, 1);
    for (int ti = 0; ti < 3; ++ti) {
      TokenDroppingParams narrow_p = p;
      narrow_p.slot_format = SlotFormat::kNarrow;
      RoundLedger ledger;
      const TokenDroppingResult narrow = run_token_dropping(
          game, init, narrow_p, &ledger, threads[ti], &pools[ti]);
      EXPECT_EQ(token_key(wide), token_key(narrow))
          << "seed " << seed << " threads " << threads[ti];
      EXPECT_EQ(wide_ledger.breakdown(), ledger.breakdown());
    }
  }
}

TEST(NarrowEquivalence, BalancedOrientation) {
  NetworkPool pools[] = {NetworkPool(1), NetworkPool(2), NetworkPool(4)};
  const int threads[] = {1, 2, 4};
  for (int family = 0; family < 3; ++family) {
    for (int seed = 0; seed < 20; ++seed) {
      Rng rng(7000 + 100 * family + static_cast<std::uint64_t>(seed));
      Graph g = family == 0 ? gen::random_bipartite(
                                  18 + seed, 16 + (seed * 3) % 9, 0.15, rng)
                                  .graph
                            : family_graph(family, seed, rng);
      const auto parts = try_bipartition(g);
      if (!parts.has_value()) continue;
      std::vector<double> eta(static_cast<std::size_t>(g.num_edges()));
      for (auto& v : eta) v = 3.0 * (2.0 * rng.next_double() - 1.0);

      OrientationParams p;
      p.nu = seed % 2 == 0 ? 0.125 : 0.0625;
      p.slot_format = SlotFormat::kWide;
      RoundLedger wide_ledger;
      const BalancedOrientationResult wide =
          balanced_orientation(g, *parts, eta, p, &wide_ledger, 1);
      for (int ti = 0; ti < 3; ++ti) {
        OrientationParams np = p;
        np.slot_format = SlotFormat::kNarrow;
        RoundLedger ledger;
        const BalancedOrientationResult narrow = balanced_orientation(
            g, *parts, eta, np, &ledger, threads[ti], &pools[ti]);
        EXPECT_EQ(orientation_key(wide), orientation_key(narrow))
            << "family " << family << " seed " << seed << " threads "
            << threads[ti];
        EXPECT_EQ(wide_ledger.breakdown(), ledger.breakdown());
      }
    }
  }
}

}  // namespace
}  // namespace dec
