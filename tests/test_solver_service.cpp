// Service-layer contract: a job executed through the SolverService — queued,
// picked up by a worker thread, run against the shared multi-tenant arena —
// is bit-identical (outputs, audited rounds, per-component ledger
// breakdowns) to the same solver called directly with a fresh pool. The
// stress test submits a mixed batch (all five solvers, random/grid/star
// inputs, duplicate shapes across tenants) against direct-call references
// and asserts the shared topology cache actually shared (> 0 hits). The
// SharedNetworkPool section pins the concurrent cache contract: one plan
// per shape no matter how many tenants race for it. CI runs this file under
// TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/solver_registry.hpp"
#include "graph/generators.hpp"
#include "service/solver_service.hpp"
#include "sim/pool.hpp"
#include "sim/shared_pool.hpp"
#include "util/rng.hpp"

namespace dec {
namespace {

// ------------------------------------------------------------ result keys

auto congest_key(const CongestColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels, r.tail_degree);
}

auto bipartite_key(const BipartiteColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels,
                    r.leaf_degree_bound, r.chi);
}

std::vector<NodeId> heads_of(const Orientation& o) {
  std::vector<NodeId> heads(static_cast<std::size_t>(o.graph().num_edges()));
  for (EdgeId e = 0; e < o.graph().num_edges(); ++e) {
    heads[static_cast<std::size_t>(e)] = o.head(e);
  }
  return heads;
}

auto orientation_key(const BalancedOrientationResult& r) {
  return std::tuple(heads_of(r.orientation), r.phases, r.rounds, r.flips,
                    r.leftover_edges, r.leftover_edge, r.max_excess,
                    r.max_message_bits);
}

auto d2ec_key(const Defective2ECResult& r) {
  return std::tuple(r.is_red, r.phases, r.rounds, r.beta_used, r.beta_emp,
                    r.max_message_bits);
}

auto token_key(const TokenDroppingResult& r) {
  return std::tuple(r.tokens, r.edge_passive, r.phases, r.rounds,
                    r.tokens_moved, r.max_message_bits);
}

void expect_same_result(const SolverResult& ref, const SolverResult& got,
                        int job_index) {
  ASSERT_EQ(ref.solver, got.solver) << "job " << job_index;
  ASSERT_EQ(ref.output.index(), got.output.index()) << "job " << job_index;
  if (const auto* r = std::get_if<CongestColoringResult>(&ref.output)) {
    EXPECT_EQ(congest_key(*r),
              congest_key(std::get<CongestColoringResult>(got.output)))
        << "job " << job_index;
  } else if (const auto* r =
                 std::get_if<BipartiteColoringResult>(&ref.output)) {
    EXPECT_EQ(bipartite_key(*r),
              bipartite_key(std::get<BipartiteColoringResult>(got.output)))
        << "job " << job_index;
  } else if (const auto* r =
                 std::get_if<BalancedOrientationResult>(&ref.output)) {
    EXPECT_EQ(orientation_key(*r),
              orientation_key(std::get<BalancedOrientationResult>(got.output)))
        << "job " << job_index;
  } else if (const auto* r = std::get_if<Defective2ECResult>(&ref.output)) {
    EXPECT_EQ(d2ec_key(*r),
              d2ec_key(std::get<Defective2ECResult>(got.output)))
        << "job " << job_index;
  } else if (const auto* r = std::get_if<TokenDroppingResult>(&ref.output)) {
    EXPECT_EQ(token_key(*r),
              token_key(std::get<TokenDroppingResult>(got.output)))
        << "job " << job_index;
  } else {
    FAIL() << "unhandled output variant, job " << job_index;
  }
  EXPECT_EQ(ref.ledger.breakdown(), got.ledger.breakdown())
      << "job " << job_index;
}

// ------------------------------------------------------------ job builders

std::shared_ptr<const BipartiteGraph> family_bipartite(int family, int seed) {
  Rng rng(4000 + 100 * family + static_cast<std::uint64_t>(seed));
  switch (family) {
    case 0:
      return std::make_shared<const BipartiteGraph>(
          gen::random_bipartite(16 + seed, 14 + (seed * 3) % 7, 0.18, rng));
    case 1: {
      Graph g = gen::grid(3 + seed % 3, 4 + seed % 4);
      auto parts = try_bipartition(g);
      EXPECT_TRUE(parts.has_value());
      return std::make_shared<const BipartiteGraph>(
          BipartiteGraph{std::move(g), *parts});
    }
    default: {
      Graph g = gen::star(14 + 2 * seed);
      auto parts = try_bipartition(g);
      EXPECT_TRUE(parts.has_value());
      return std::make_shared<const BipartiteGraph>(
          BipartiteGraph{std::move(g), *parts});
    }
  }
}

/// The mixed multi-tenant batch: every solver, every family, duplicate
/// shapes across "tenants" (distinct Graph objects with identical edge
/// lists, so sharing must come from the shape cache, not pointer equality).
std::vector<SolverRequest> build_job_mix() {
  std::vector<SolverRequest> reqs;
  // Keep the bipartite inputs alive through shared_ptr aliasing: the
  // requests own the BipartiteGraph via the graph aliasing constructor.
  for (int family = 0; family < 3; ++family) {
    for (int seed = 0; seed < 2; ++seed) {
      // Two tenants with identical shapes: build the instance twice.
      for (int tenant = 0; tenant < 2; ++tenant) {
        auto bg = family_bipartite(family, seed);
        std::shared_ptr<const Graph> g(bg, &bg->graph);
        Rng wrng(5000 + 10 * family + static_cast<std::uint64_t>(seed));
        std::vector<double> eta(static_cast<std::size_t>(g->num_edges()));
        for (auto& v : eta) v = 3.0 * (2.0 * wrng.next_double() - 1.0);
        std::vector<double> lambda(static_cast<std::size_t>(g->num_edges()));
        for (auto& v : lambda) v = wrng.next_double();

        BalancedOrientationJob oj;
        oj.parts = bg->parts;
        oj.eta = std::move(eta);
        oj.params.nu = seed % 2 == 0 ? 0.125 : 0.0625;
        reqs.push_back(make_orientation_request(g, std::move(oj)));

        Defective2ECJob dj;
        dj.parts = bg->parts;
        dj.lambda = std::move(lambda);
        dj.eps = 1.0;
        reqs.push_back(make_defective2ec_request(g, std::move(dj)));

        BipartiteColoringJob bj;
        bj.parts = bg->parts;
        bj.eps = 1.0;
        reqs.push_back(make_bipartite_request(g, std::move(bj)));
      }
    }
  }
  // Congest jobs on general graphs, again with a duplicate-shape tenant.
  for (int seed = 0; seed < 2; ++seed) {
    for (int tenant = 0; tenant < 2; ++tenant) {
      Rng rng(6000 + static_cast<std::uint64_t>(seed));
      auto g = std::make_shared<const Graph>(gen::gnp(36 + seed, 0.15, rng));
      reqs.push_back(make_congest_request(std::move(g), {1.0}));
    }
  }
  // Token dropping games (directed inputs).
  for (int seed = 0; seed < 4; ++seed) {
    Rng rng(7000 + static_cast<std::uint64_t>(seed));
    auto game = std::make_shared<const Digraph>(
        seed % 2 == 0 ? random_game(24 + seed, 0.15, rng)
                      : layered_game(3 + seed % 2, 8, 3, rng));
    TokenDroppingJob tj;
    tj.params.k = 12 + 2 * seed;
    tj.params.delta = 1 + seed % 2;
    tj.params.alpha.assign(static_cast<std::size_t>(game->num_nodes()),
                           tj.params.delta + 1);
    tj.initial_tokens.resize(static_cast<std::size_t>(game->num_nodes()));
    for (auto& t : tj.initial_tokens) {
      t = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(tj.params.k) + 1));
    }
    reqs.push_back(make_token_dropping_request(std::move(game),
                                               std::move(tj)));
  }
  return reqs;
}

// --------------------------------------------------------------- registry

TEST(SolverRegistry, RegistersAllFiveSolvers) {
  EXPECT_EQ(solver_registry().size(), 5u);
  for (const char* id :
       {"congest_edge_coloring", "bipartite_edge_coloring",
        "balanced_orientation", "defective_2_edge_coloring",
        "token_dropping"}) {
    EXPECT_TRUE(solver_registered(id)) << id;
  }
  EXPECT_FALSE(solver_registered("nonexistent_solver"));
}

TEST(SolverRegistry, ExecuteMatchesDirectCall) {
  // The registry is a pure forwarding layer: spot-check it against literal
  // direct calls for a graph solver and the digraph solver.
  Rng rng(42);
  auto bg = family_bipartite(0, 1);
  std::shared_ptr<const Graph> g(bg, &bg->graph);
  BipartiteColoringJob bj;
  bj.parts = bg->parts;
  bj.eps = 1.0;
  RoundLedger direct_ledger;
  const BipartiteColoringResult direct = bipartite_edge_coloring(
      *g, bg->parts, 1.0, ParamMode::kPractical, &direct_ledger, 1);
  const SolverResult via_registry =
      execute_request(make_bipartite_request(g, bj));
  EXPECT_EQ(bipartite_key(direct),
            bipartite_key(std::get<BipartiteColoringResult>(
                via_registry.output)));
  EXPECT_EQ(direct_ledger.breakdown(), via_registry.ledger.breakdown());

  auto game = std::make_shared<const Digraph>(layered_game(3, 6, 2, rng));
  TokenDroppingJob tj;
  tj.params.k = 8;
  tj.params.delta = 1;
  tj.params.alpha.assign(static_cast<std::size_t>(game->num_nodes()), 2);
  tj.initial_tokens.assign(static_cast<std::size_t>(game->num_nodes()), 4);
  RoundLedger td_ledger;
  const TokenDroppingResult td_direct = run_token_dropping(
      *game, tj.initial_tokens, tj.params, &td_ledger, 1);
  const SolverResult td_via =
      execute_request(make_token_dropping_request(game, tj));
  EXPECT_EQ(token_key(td_direct),
            token_key(std::get<TokenDroppingResult>(td_via.output)));
  EXPECT_EQ(td_ledger.breakdown(), td_via.ledger.breakdown());
}

TEST(SolverRegistry, RejectsMismatchedRequests) {
  Rng rng(43);
  auto g = std::make_shared<const Graph>(gen::gnp(20, 0.2, rng));
  SolverRequest req;
  req.solver = "token_dropping";  // digraph solver, graph input
  req.graph = g;
  req.params = CongestColoringJob{};  // wrong variant too
  EXPECT_THROW(execute_request(req), CheckError);

  req.solver = "no_such_solver";
  EXPECT_THROW(execute_request(req), CheckError);

  // Right id, wrong variant.
  SolverRequest mixed = make_congest_request(g, {1.0});
  mixed.params = TokenDroppingJob{};
  EXPECT_THROW(execute_request(mixed), CheckError);
}

// ---------------------------------------------------------------- service

TEST(SolverService, StressMixedJobsBitIdenticalToDirectCalls) {
  const std::vector<SolverRequest> reqs = build_job_mix();
  ASSERT_GE(reqs.size(), 32u);

  // Direct-call references: fresh pools, serial, on this thread.
  std::vector<SolverResult> refs;
  refs.reserve(reqs.size());
  for (const SolverRequest& req : reqs) {
    refs.push_back(execute_request(req, 1, nullptr));
  }

  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 8;  // smaller than the batch: exercises backpressure
  SolverService service(cfg);
  // Poll stats() concurrently with the churn: the cache counters are one
  // coherent snapshot, so the reported rate must agree *exactly* with the
  // hit/miss pair it came with (the old two-atomic read could disagree).
  std::atomic<bool> stop_poller{false};
  std::thread poller([&] {
    while (!stop_poller.load(std::memory_order_relaxed)) {
      const ServiceStats s = service.stats();
      const std::int64_t lookups = s.plans_built + s.plans_shared;
      const double expect =
          lookups > 0 ? static_cast<double>(s.plans_shared) /
                            static_cast<double>(lookups)
                      : 0.0;
      ASSERT_EQ(s.cache_hit_rate, expect);
    }
  });
  std::vector<JobTicket> tickets;
  tickets.reserve(reqs.size());
  for (const SolverRequest& req : reqs) {
    tickets.push_back(service.submit(req));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].accepted) << "job " << i;
    const SolverResult got = tickets[i].result.get();
    ASSERT_EQ(got.status, SolverStatus::kOk) << "job " << i;
    EXPECT_EQ(got.attempts, 1) << "job " << i;
    expect_same_result(refs[i], got, static_cast<int>(i));
  }
  stop_poller.store(true, std::memory_order_relaxed);
  poller.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::int64_t>(reqs.size()));
  EXPECT_EQ(stats.completed, static_cast<std::int64_t>(reqs.size()));
  EXPECT_EQ(stats.failed, 0);
  // Duplicate shapes across tenants (and across a tenant's own stages) must
  // actually share plans through the concurrent topology cache.
  EXPECT_GT(stats.plans_shared, 0);
  EXPECT_GT(stats.plans_built, 0);
  EXPECT_GT(stats.cache_hit_rate, 0.0);
  EXPECT_GE(stats.avg_queue_wait_ms, 0.0);
  EXPECT_GE(stats.max_queue_wait_ms, stats.avg_queue_wait_ms);
}

TEST(SolverService, FailedJobsCarryStatusAndErrorNotExceptions) {
  SolverService service({.workers = 1, .queue_capacity = 4});
  Rng rng(44);
  auto g = std::make_shared<const Graph>(gen::gnp(16, 0.2, rng));
  // eps = 0 violates congest_edge_coloring's precondition. The future is
  // satisfied with a value — the failure is data, not an exception.
  JobTicket bad = service.submit(make_congest_request(g, {0.0}));
  ASSERT_TRUE(bad.accepted);
  const SolverResult bad_result = bad.result.get();
  EXPECT_EQ(bad_result.status, SolverStatus::kFailed);
  EXPECT_FALSE(bad_result.error.empty());
  EXPECT_EQ(bad_result.attempts, 1);  // CheckError is permanent, no retries
  JobTicket good = service.submit(make_congest_request(g, {1.0}));
  EXPECT_EQ(good.result.get().status, SolverStatus::kOk);
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.retried, 0);
}

TEST(SolverService, ShutdownDrainsAndRejectsLateSubmits) {
  Rng rng(45);
  auto g = std::make_shared<const Graph>(gen::gnp(20, 0.2, rng));
  SolverService service({.workers = 2, .queue_capacity = 16});
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(service.submit(make_congest_request(g, {1.0})));
  }
  service.shutdown();  // must satisfy every already-queued future
  for (JobTicket& t : tickets) {
    EXPECT_EQ(t.result.get().status, SolverStatus::kOk);
  }
  // Late submissions come back as structured rejections, not exceptions.
  JobTicket late = service.submit(make_congest_request(g, {1.0}));
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.reject, RejectReason::kShuttingDown);
  const SolverResult late_result = late.result.get();
  EXPECT_EQ(late_result.status, SolverStatus::kRejected);
  EXPECT_EQ(late_result.reject, RejectReason::kShuttingDown);
  JobTicket late_try = service.try_submit(make_congest_request(g, {1.0}));
  EXPECT_FALSE(late_try.accepted);
  EXPECT_EQ(late_try.reject, RejectReason::kShuttingDown);
  EXPECT_EQ(late_try.result.get().status, SolverStatus::kRejected);
}

TEST(SolverService, DrainWaitsForInFlightJobs) {
  Rng rng(46);
  auto g = std::make_shared<const Graph>(gen::gnp(30, 0.2, rng));
  SolverService service({.workers = 2, .queue_capacity = 32});
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(service.submit(make_congest_request(g, {1.0})));
  }
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed + stats.failed, 8);
  for (JobTicket& t : tickets) {
    EXPECT_EQ(t.result.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

// ------------------------------------------------------------ failure model

TEST(SolverService, TrySubmitRejectsWhenQueueFull) {
  // Zero workers: admitted jobs sit in the queue forever, so the queue
  // fills deterministically.
  Rng rng(50);
  auto g = std::make_shared<const Graph>(gen::gnp(12, 0.2, rng));
  SolverService service({.workers = 0, .queue_capacity = 2});
  JobTicket a = service.try_submit(make_congest_request(g, {1.0}));
  JobTicket b = service.try_submit(make_congest_request(g, {1.0}));
  EXPECT_TRUE(a.accepted);
  EXPECT_TRUE(b.accepted);
  EXPECT_NE(a.id, b.id);
  JobTicket full = service.try_submit(make_congest_request(g, {1.0}));
  EXPECT_FALSE(full.accepted);
  EXPECT_EQ(full.reject, RejectReason::kQueueFull);
  const SolverResult full_result = full.result.get();
  EXPECT_EQ(full_result.status, SolverStatus::kRejected);
  EXPECT_EQ(full_result.reject, RejectReason::kQueueFull);
  EXPECT_EQ(service.stats().rejected, 1);
  service.shutdown();
  // The two queued jobs resolve as Rejected{kShuttingDown}: admitted but
  // never run.
  EXPECT_EQ(a.result.get().reject, RejectReason::kShuttingDown);
  EXPECT_EQ(b.result.get().reject, RejectReason::kShuttingDown);
}

TEST(SolverService, BlockedSubmitWakesRejectedOnShutdown) {
  // Satellite: a submit() blocked on a full queue must wake and return a
  // rejected ticket when shutdown() arrives — never deadlock, never enqueue
  // past shutdown. Zero workers keeps the queue deterministically full.
  Rng rng(51);
  auto g = std::make_shared<const Graph>(gen::gnp(12, 0.2, rng));
  SolverService service({.workers = 0, .queue_capacity = 1});
  JobTicket first = service.submit(make_congest_request(g, {1.0}));
  ASSERT_TRUE(first.accepted);

  std::promise<void> blocked_entered;
  JobTicket blocked;
  std::thread submitter([&] {
    blocked_entered.set_value();
    blocked = service.submit(make_congest_request(g, {1.0}));  // queue full
  });
  blocked_entered.get_future().wait();
  // Give the submitter time to actually block on the not-full cv.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.shutdown();
  submitter.join();

  EXPECT_FALSE(blocked.accepted);
  EXPECT_EQ(blocked.reject, RejectReason::kShuttingDown);
  EXPECT_EQ(blocked.result.get().status, SolverStatus::kRejected);
  EXPECT_EQ(first.result.get().reject, RejectReason::kShuttingDown);
  // Nothing was enqueued past shutdown.
  EXPECT_EQ(service.stats().queued, 0u);
  EXPECT_EQ(service.stats().submitted, 1);
}

TEST(SolverService, CancelQueuedJobResolvesCancelled) {
  Rng rng(52);
  auto g = std::make_shared<const Graph>(gen::gnp(12, 0.2, rng));
  SolverService service({.workers = 0, .queue_capacity = 4});
  JobTicket t = service.submit(make_congest_request(g, {1.0}));
  ASSERT_TRUE(t.accepted);
  EXPECT_TRUE(service.cancel(t.id));
  EXPECT_FALSE(service.cancel(t.id + 999));  // unknown id
  service.shutdown();
  // Cancelled-while-queued beats the shutdown sweep's kRejected.
  const SolverResult r = t.result.get();
  EXPECT_EQ(r.status, SolverStatus::kCancelled);
  EXPECT_EQ(r.attempts, 0);  // never ran
  EXPECT_EQ(service.stats().cancelled, 1);
}

TEST(SolverService, CancelRunningJobStopsAtRoundBarrier) {
  // A solver big enough to still be running when cancel() lands; if the
  // race is lost and it finished, kOk is also a legal outcome — assert on
  // whichever terminal state won, never a hang.
  Rng rng(53);
  auto g = std::make_shared<const Graph>(gen::gnp(220, 0.12, rng));
  SolverService service({.workers = 1, .queue_capacity = 4});
  JobTicket t = service.submit(make_congest_request(g, {0.25}));
  ASSERT_TRUE(t.accepted);
  service.cancel(t.id);
  const SolverResult r = t.result.get();
  EXPECT_TRUE(r.status == SolverStatus::kCancelled ||
              r.status == SolverStatus::kOk)
      << to_string(r.status);
  service.drain();
  EXPECT_EQ(service.stats().cancelled + service.stats().completed, 1);
}

TEST(SolverService, ExpiredDeadlineBeforePickupNeverRuns) {
  // Deadline already expired when the worker picks the job up: the
  // pre-flight check resolves it without running a solver. A queued job
  // behind a long-running one guarantees the wait.
  Rng rng(54);
  auto big = std::make_shared<const Graph>(gen::gnp(200, 0.12, rng));
  auto small = std::make_shared<const Graph>(gen::gnp(16, 0.2, rng));
  SolverService service({.workers = 1, .queue_capacity = 8});
  JobTicket head = service.submit(make_congest_request(big, {1.0}));
  SubmitOptions opts;
  opts.deadline = std::chrono::microseconds(1);  // expires immediately
  JobTicket doomed = service.submit(make_congest_request(small, {1.0}), opts);
  const SolverResult r = doomed.result.get();
  EXPECT_EQ(r.status, SolverStatus::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 0);  // resolved before any attempt
  EXPECT_EQ(head.result.get().status, SolverStatus::kOk);
  service.drain();
  EXPECT_EQ(service.stats().deadline_exceeded, 1);
}

TEST(SolverService, RoundBudgetIsADeterministicDeadline) {
  Rng rng(55);
  auto g = std::make_shared<const Graph>(gen::gnp(60, 0.15, rng));
  // Reference: how many rounds does this job take un-budgeted?
  const SolverResult free_run =
      execute_request(make_congest_request(g, {1.0}));
  ASSERT_EQ(free_run.status, SolverStatus::kOk);

  SolverService service({.workers = 1, .queue_capacity = 4});
  SubmitOptions opts;
  opts.round_budget = 3;  // far fewer barriers than the solver needs
  JobTicket t = service.submit(make_congest_request(g, {1.0}), opts);
  const SolverResult r = t.result.get();
  EXPECT_EQ(r.status, SolverStatus::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 1);
  // A budget generous beyond the job's needs changes nothing.
  SubmitOptions ample;
  ample.round_budget = 1 << 20;
  JobTicket ok = service.submit(make_congest_request(g, {1.0}), ample);
  const SolverResult ok_result = ok.result.get();
  ASSERT_EQ(ok_result.status, SolverStatus::kOk);
  expect_same_result(free_run, ok_result, 0);
  service.drain();
  EXPECT_EQ(service.stats().deadline_exceeded, 1);
  EXPECT_EQ(service.stats().completed, 1);
}

TEST(SolverService, AbortedJobsLeaveTheArenaCleanForLaterTenants) {
  // Jobs aborted mid-run park their leases; the next job adopting those run
  // states must produce bit-identical results to a fresh-pool direct call.
  Rng rng(56);
  auto g = std::make_shared<const Graph>(gen::gnp(60, 0.15, rng));
  const SolverResult ref = execute_request(make_congest_request(g, {1.0}));

  SolverService service({.workers = 1, .queue_capacity = 8});
  SubmitOptions tiny;
  tiny.round_budget = 2;
  for (int i = 0; i < 3; ++i) {
    JobTicket t = service.submit(make_congest_request(g, {1.0}), tiny);
    EXPECT_EQ(t.result.get().status, SolverStatus::kDeadlineExceeded);
  }
  JobTicket clean = service.submit(make_congest_request(g, {1.0}));
  const SolverResult got = clean.result.get();
  ASSERT_EQ(got.status, SolverStatus::kOk);
  expect_same_result(ref, got, 0);
}

// ------------------------------------------------------- shared pool (raw)

TEST(SharedNetworkPool, ConcurrentTenantsPlanEachShapeOnce) {
  Rng rng(47);
  const Graph g = gen::gnp(60, 0.1, rng);
  SharedNetworkPool pool(1);
  constexpr int kTenants = 8;
  std::vector<std::shared_ptr<const NetworkTopology>> got(kTenants);
  {
    std::vector<std::thread> tenants;
    tenants.reserve(kTenants);
    for (int t = 0; t < kTenants; ++t) {
      tenants.emplace_back([&, t] { got[static_cast<std::size_t>(t)] =
                                        pool.topology(g); });
    }
    for (auto& th : tenants) th.join();
  }
  for (int t = 1; t < kTenants; ++t) {
    EXPECT_EQ(got[0].get(), got[static_cast<std::size_t>(t)].get());
  }
  EXPECT_EQ(pool.topology_misses(), 1);
  EXPECT_EQ(pool.topology_hits(), kTenants - 1);
  EXPECT_EQ(pool.cached_topologies(), 1u);
}

TEST(SharedNetworkPool, ViewsParkAndAdoptRunStates) {
  Rng rng(48);
  const Graph g = gen::gnp(40, 0.15, rng);
  SharedNetworkPool shared(1);
  {
    NetworkPool view(shared);
    auto lease = view.network(g);
    lease->round_fast([](NodeId v, const Inbox&, Outbox& out) {
      for (auto& m : out) m = Message{v};
    });
  }  // view destroyed: its run state parks in the shared arena
  EXPECT_EQ(shared.parked_run_states(), 1u);
  {
    NetworkPool view(shared);
    auto lease = view.network(g);  // adopts the parked state
    EXPECT_EQ(shared.parked_run_states(), 0u);
    EXPECT_EQ(lease->rounds_executed(), 0);  // handed out reset
    EXPECT_EQ(view.run_states(), 1u);
  }
  EXPECT_EQ(shared.parked_run_states(), 1u);
}

TEST(SharedNetworkPool, TenantsOnDistinctThreadsShareWarmStates) {
  // Serial tenants on different threads: the second tenant's view adopts
  // the state the first tenant's view parked (thread migration through the
  // free list is legal; only *leases* are thread-confined).
  Rng rng(49);
  const Graph g = gen::grid(5, 6);
  SharedNetworkPool shared(1);
  auto run_tenant = [&] {
    NetworkPool view(shared);
    auto lease = view.network(g);
    lease->round_fast([](NodeId v, const Inbox&, Outbox& out) {
      for (auto& m : out) m = Message{v};
    });
  };
  std::thread(run_tenant).join();
  EXPECT_EQ(shared.parked_run_states(), 1u);
  std::thread(run_tenant).join();
  EXPECT_EQ(shared.parked_run_states(), 1u);  // adopted, reused, re-parked
  EXPECT_EQ(shared.topology_misses(), 1);
  EXPECT_EQ(shared.topology_hits(), 1);
}

}  // namespace
}  // namespace dec
