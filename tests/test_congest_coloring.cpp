// Tests for the (8+ε)Δ CONGEST edge coloring (Theorem 6.3 / 1.2).
#include <gtest/gtest.h>

#include "core/congest_coloring.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

TEST(CongestColoring, ProperOnRandomRegular) {
  Rng rng(90);
  for (const int d : {6, 12, 24}) {
    const Graph g = gen::random_regular(20 * d, d, rng);
    const auto r = congest_edge_coloring(g, 1.0);
    EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
    EXPECT_LE(r.palette, 9 * d) << "d=" << d;  // (8+ε)Δ with ε = 1
  }
}

TEST(CongestColoring, ProperOnGnp) {
  Rng rng(91);
  const Graph g = gen::gnp(300, 0.06, rng);
  const auto r = congest_edge_coloring(g, 1.0);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
  EXPECT_LE(r.palette, 9 * g.max_degree());
}

TEST(CongestColoring, ProperOnPowerLaw) {
  Rng rng(92);
  const Graph g = gen::power_law(400, 2.5, 6.0, rng);
  const auto r = congest_edge_coloring(g, 1.0);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
  EXPECT_LE(r.palette, 9 * g.max_degree());
}

TEST(CongestColoring, LowDegreeGoesStraightToTail) {
  const Graph g = gen::cycle(20);
  const auto r = congest_edge_coloring(g, 1.0);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
  EXPECT_EQ(r.levels, 0);
  EXPECT_LE(r.palette, 2 * g.max_degree() + 1);
}

TEST(CongestColoring, TreesAndGrids) {
  Rng rng(93);
  const Graph tree = gen::random_tree(200, rng);
  const auto rt = congest_edge_coloring(tree, 1.0);
  EXPECT_TRUE(is_complete_proper_edge_coloring(tree, rt.colors));

  const Graph torus = gen::torus(10, 10);
  const auto rg = congest_edge_coloring(torus, 1.0);
  EXPECT_TRUE(is_complete_proper_edge_coloring(torus, rg.colors));
}

TEST(CongestColoring, EmptyAndSingleEdge) {
  const auto r0 = congest_edge_coloring(gen::empty(4), 1.0);
  EXPECT_EQ(r0.palette, 0);
  const Graph one(2, {{0, 1}});
  const auto r1 = congest_edge_coloring(one, 1.0);
  EXPECT_EQ(r1.colors[0], 0);
}

TEST(CongestColoring, LevelsReduceDegreeGeometrically) {
  Rng rng(94);
  const Graph g = gen::random_regular(600, 32, rng);
  const auto r = congest_edge_coloring(g, 0.5);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
  EXPECT_GE(r.levels, 2);
  // The tail degree must be far below Δ (each level roughly halves it).
  EXPECT_LE(r.tail_degree, 32 / 2);
}

TEST(CongestColoring, DeterministicAcrossRuns) {
  Rng rng(95);
  const Graph g = gen::random_regular(200, 8, rng);
  const auto a = congest_edge_coloring(g, 1.0);
  const auto b = congest_edge_coloring(g, 1.0);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace dec
