// Unit tests for the graph substrate: Graph/Builder/Digraph/Orientation/
// line graph/properties/io.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/bipartite.hpp"
#include "graph/builder.hpp"
#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/line_graph.hpp"
#include "graph/orientation.hpp"
#include "graph/properties.hpp"

namespace dec {
namespace {

Graph triangle() { return Graph(3, {{0, 1}, {1, 2}, {0, 2}}); }

TEST(Graph, BasicAccessors) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_EQ(g.edge_degree(0), 2);  // every edge neighbors the other two... deg(u)+deg(v)-2
  EXPECT_EQ(g.max_edge_degree(), 2);
}

TEST(Graph, EndpointsAndOther) {
  const Graph g = triangle();
  const auto [u, v] = g.endpoints(1);
  EXPECT_EQ(u, 1);
  EXPECT_EQ(v, 2);
  EXPECT_EQ(g.other_endpoint(1, 1), 2);
  EXPECT_EQ(g.other_endpoint(1, 2), 1);
  EXPECT_THROW(g.other_endpoint(1, 0), CheckError);
}

TEST(Graph, RejectsSelfLoopsAndParallelEdges) {
  EXPECT_THROW(Graph(2, {{0, 0}}), CheckError);
  EXPECT_THROW(Graph(2, {{0, 1}, {1, 0}}), CheckError);
  EXPECT_THROW(Graph(2, {{0, 1}, {0, 1}}), CheckError);
  EXPECT_THROW(Graph(2, {{0, 2}}), CheckError);
}

TEST(Graph, FindEdge) {
  const Graph g = triangle();
  EXPECT_EQ(g.find_edge(0, 1), 0);
  EXPECT_EQ(g.find_edge(2, 1), 1);
  const Graph p = gen::path(4);
  EXPECT_EQ(p.find_edge(0, 3), kInvalidEdge);
}

TEST(Graph, NeighborsSortedWithEdgeIds) {
  const Graph g = Graph(4, {{2, 3}, {0, 3}, {0, 1}});
  const auto nb = g.neighbors(3);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0].neighbor, 0);
  EXPECT_EQ(nb[1].neighbor, 2);
  EXPECT_EQ(nb[0].edge, g.find_edge(0, 3));
}

TEST(Graph, EmptyGraph) {
  const Graph g = gen::empty(5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_EQ(g.max_edge_degree(), 0);
}

TEST(Graph, EdgeDegreeCacheMatchesFormula) {
  // edge_degree is served from the per-edge cache; it must agree with the
  // defining formula deg(u) + deg(v) - 2 on every edge, and bounds-check.
  Rng rng(7);
  const Graph g = gen::gnp(60, 0.15, rng);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    EXPECT_EQ(g.edge_degree(e), g.degree(u) + g.degree(v) - 2) << "edge " << e;
  }
  EXPECT_THROW(g.edge_degree(-1), CheckError);
  EXPECT_THROW(g.edge_degree(g.num_edges()), CheckError);
}

TEST(Graph, EdgeDegreeFormulaMatchesLineGraph) {
  Rng rng(3);
  const Graph g = gen::gnp(40, 0.2, rng);
  const Graph lg = line_graph(g);
  ASSERT_EQ(lg.num_nodes(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edge_degree(e), lg.degree(e)) << "edge " << e;
  }
  EXPECT_EQ(g.max_edge_degree(), lg.max_degree());
}

TEST(Builder, DeduplicatesAndGrows) {
  GraphBuilder b;
  b.add_edge(0, 5);
  b.add_edge(5, 0);
  b.add_edge(1, 2);
  EXPECT_TRUE(b.has_edge(0, 5));
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Builder, RejectsSelfLoop) {
  GraphBuilder b;
  EXPECT_THROW(b.add_edge(3, 3), CheckError);
}

TEST(Builder, TracksSortedAppendsAndAnswersHasEdgeEitherWay) {
  GraphBuilder sorted;
  sorted.reserve_edges(4);
  sorted.add_edge(0, 1);
  sorted.add_edge(0, 2);
  sorted.add_edge(1, 3);
  EXPECT_TRUE(sorted.edges_sorted());  // binary-search fast path
  EXPECT_TRUE(sorted.has_edge(0, 2));
  EXPECT_TRUE(sorted.has_edge(3, 1));  // orientation-insensitive
  EXPECT_FALSE(sorted.has_edge(0, 3));

  GraphBuilder unsorted;
  unsorted.add_edge(1, 3);
  unsorted.add_edge(0, 1);
  EXPECT_FALSE(unsorted.edges_sorted());  // falls back to a linear find
  EXPECT_TRUE(unsorted.has_edge(0, 1));
  EXPECT_FALSE(unsorted.has_edge(0, 3));

  // Both routes end at the same graph.
  const Graph g = std::move(unsorted).build();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_NE(g.find_edge(1, 3), kInvalidEdge);
}

TEST(Builder, DuplicateAppendClearsSortedFlag) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 1);  // equal, not strictly increasing
  EXPECT_FALSE(b.edges_sorted());
  EXPECT_EQ(std::move(b).build().num_edges(), 1);
}

TEST(Builder, RejectsIdsBeyondNodeIdRange) {
  GraphBuilder b;
  EXPECT_THROW(b.add_edge(0, kMaxNodeId + 1), CheckError);
  EXPECT_THROW(b.add_edge(-2, 1), CheckError);
  b.add_edge(0, 1);  // builder still usable after a rejected append
  EXPECT_EQ(std::move(b).build().num_edges(), 1);
}

TEST(Digraph, InOutAdjacency) {
  const Digraph d(3, {{0, 1}, {1, 2}, {2, 0}, {0, 2}});
  EXPECT_EQ(d.num_arcs(), 4);
  EXPECT_EQ(d.out_degree(0), 2);
  EXPECT_EQ(d.in_degree(0), 1);
  EXPECT_EQ(d.degree(0), 3);
  EXPECT_EQ(d.max_degree(), 3);
  const auto [t, h] = d.arc(1);
  EXPECT_EQ(t, 1);
  EXPECT_EQ(h, 2);
}

TEST(Digraph, AllowsParallelArcsRejectsLoops) {
  EXPECT_NO_THROW(Digraph(2, {{0, 1}, {0, 1}}));
  EXPECT_THROW(Digraph(2, {{0, 0}}), CheckError);
}

TEST(Digraph, ArcDegree) {
  const Digraph d(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(d.arc_degree(0), 1);  // deg(0)+deg(1)-2 = 1+2-2
}

TEST(Orientation, OrientFlipIndegree) {
  const Graph g = triangle();
  Orientation o(g);
  EXPECT_FALSE(o.oriented(0));
  o.orient_towards(0, 1);
  EXPECT_TRUE(o.oriented(0));
  EXPECT_EQ(o.head(0), 1);
  EXPECT_EQ(o.tail(0), 0);
  EXPECT_EQ(o.indegree(1), 1);
  o.flip(0);
  EXPECT_EQ(o.head(0), 0);
  EXPECT_EQ(o.indegree(1), 0);
  EXPECT_EQ(o.indegree(0), 1);
  EXPECT_EQ(o.num_oriented(), 1);
  o.validate();
}

TEST(Orientation, Preconditions) {
  const Graph g = triangle();
  Orientation o(g);
  EXPECT_THROW(o.head(0), CheckError);
  EXPECT_THROW(o.flip(0), CheckError);
  o.orient_towards(0, 0);
  EXPECT_THROW(o.orient_towards(0, 1), CheckError);
  EXPECT_THROW(o.orient_towards(1, 0), CheckError);  // 0 not an endpoint of e1
}

TEST(Bipartite, DetectsBipartiteAndOddCycle) {
  const auto even = try_bipartition(gen::cycle(6));
  ASSERT_TRUE(even.has_value());
  validate_bipartition(gen::cycle(6), *even);
  EXPECT_FALSE(try_bipartition(gen::cycle(5)).has_value());
  EXPECT_FALSE(try_bipartition(triangle()).has_value());
}

TEST(Bipartite, EndpointHelpers) {
  const auto bg = gen::regular_bipartite(4, 2);
  for (EdgeId e = 0; e < bg.graph.num_edges(); ++e) {
    const NodeId u = u_endpoint(bg.graph, bg.parts, e);
    const NodeId v = v_endpoint(bg.graph, bg.parts, e);
    EXPECT_TRUE(bg.parts.in_u(u));
    EXPECT_TRUE(bg.parts.in_v(v));
    EXPECT_NE(u, v);
  }
}

TEST(Bipartite, ValidateRejectsBadSides) {
  const auto bg = gen::regular_bipartite(4, 2);
  Bipartition bad = bg.parts;
  bad.side[static_cast<std::size_t>(bg.graph.num_nodes() - 1)] = 0;
  // Last node has neighbors on side 0, so this must fail.
  EXPECT_THROW(validate_bipartition(bg.graph, bad), CheckError);
}

TEST(Properties, ProperVertexColoring) {
  const Graph g = triangle();
  EXPECT_TRUE(is_proper_vertex_coloring(g, {0, 1, 2}));
  EXPECT_FALSE(is_proper_vertex_coloring(g, {0, 0, 2}));
  // 0 and 2 are adjacent in a triangle, so equal colors are improper even
  // with an uncolored node in between; on a path they are fine.
  EXPECT_FALSE(is_proper_vertex_coloring(g, {0, kUncolored, 0}));
  EXPECT_TRUE(is_proper_vertex_coloring(gen::path(3), {0, kUncolored, 0}));
  EXPECT_FALSE(is_complete_proper_vertex_coloring(g, {0, kUncolored, 1}));
}

TEST(Properties, ProperEdgeColoring) {
  const Graph g = gen::path(4);  // edges 0-1, 1-2, 2-3
  EXPECT_TRUE(is_proper_edge_coloring(g, {0, 1, 0}));
  EXPECT_FALSE(is_proper_edge_coloring(g, {0, 0, 1}));
  EXPECT_TRUE(is_proper_edge_coloring(g, {0, kUncolored, 0}));
  EXPECT_FALSE(is_complete_proper_edge_coloring(g, {0, kUncolored, 0}));
}

TEST(Properties, Defects) {
  const Graph g = gen::star(3);
  const auto vd = vertex_defects(g, {0, 0, 0, 1});
  EXPECT_EQ(vd[0], 2);  // center collides with two of three leaves
  const auto ed = edge_defects(g, {5, 5, 5});
  EXPECT_EQ(ed[0], 2);  // all three star edges share a color
}

TEST(Properties, PaletteAndCounts) {
  const std::vector<Color> c{2, kUncolored, 7, 2};
  EXPECT_EQ(count_colors(c), 2);
  EXPECT_EQ(palette_size(c), 8);
  EXPECT_EQ(count_uncolored(c), 1);
}

TEST(Properties, UncoloredDegrees) {
  const Graph g = gen::star(3);
  const std::vector<Color> c{kUncolored, 0, kUncolored};
  const auto ud = uncolored_degrees(g, c);
  EXPECT_EQ(ud[0], 2);
  EXPECT_EQ(max_uncolored_edge_degree(g, c), 1);
}

TEST(Io, EdgeListRoundTrip) {
  Rng rng(4);
  const Graph g = gen::gnp(20, 0.3, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.edge_list(), g.edge_list());
}

TEST(Io, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(read_edge_list(empty), CheckError);
  std::stringstream truncated("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(truncated), CheckError);
}

TEST(Io, HostileHeaderDoesNotDriveAllocation) {
  // A header claiming 2^31 - 1 edges over a three-token body must fail at
  // the first missing edge, not attempt a multi-GB reserve first.
  std::stringstream hostile("3 2147483647\n0 1\n");
  try {
    read_edge_list(hostile);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated edge section"),
              std::string::npos)
        << e.what();
  }
  // Counts beyond the id domains are rejected from the header alone.
  std::stringstream big_n("2147483647 0\n");
  EXPECT_THROW(read_edge_list(big_n), CheckError);
  std::stringstream big_m("3 2147483648\n");
  EXPECT_THROW(read_edge_list(big_m), CheckError);
  std::stringstream negative("-1 0\n");
  EXPECT_THROW(read_edge_list(negative), CheckError);
}

TEST(Io, ReportsOffendingLineForBadEndpoint) {
  std::stringstream bad("3 2\n0 1\n1 7\n");
  try {
    read_edge_list(bad);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("\"1 7\""), std::string::npos) << msg;
  }
}

TEST(Io, DotExportMentionsColors) {
  const Graph g = gen::path(3);
  const std::vector<Color> colors{4, 9};
  const std::string dot = to_dot(g, &colors);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"9\""), std::string::npos);
}

TEST(LineGraph, StarBecomesComplete) {
  const Graph star = gen::star(4);
  const Graph lg = line_graph(star);
  EXPECT_EQ(lg.num_nodes(), 4);
  EXPECT_EQ(lg.num_edges(), 6);  // K4
}

TEST(LineGraph, EmptyAndSingleEdge) {
  EXPECT_EQ(line_graph(gen::empty(3)).num_nodes(), 0);
  const Graph one(2, {{0, 1}});
  const Graph lg = line_graph(one);
  EXPECT_EQ(lg.num_nodes(), 1);
  EXPECT_EQ(lg.num_edges(), 0);
}

}  // namespace
}  // namespace dec
