// Tests for the LOCAL (degree+1)-list edge coloring (Theorem D.4 / 1.1).
#include <gtest/gtest.h>

#include "core/local_coloring.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

TEST(LocalColoring, TwoDeltaMinusOneSpecialCase) {
  Rng rng(120);
  for (const int d : {4, 8, 12}) {
    const Graph g = gen::random_regular(20 * d, d, rng);
    const auto r = solve_2delta_minus_1(g);
    EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
    EXPECT_LT(palette_size(r.colors), 2 * d);  // colors in [0, 2Δ-1)
  }
}

TEST(LocalColoring, RandomDegreePlusOneLists) {
  Rng rng(121);
  const Graph g = gen::random_regular(160, 8, rng);
  const ListEdgeInstance inst =
      make_random_list_instance(g, 3 * g.max_edge_degree(), rng);
  const auto r = solve_list_edge_coloring(g, inst);
  EXPECT_TRUE(check_list_coloring(inst, r.colors));
}

TEST(LocalColoring, SkewedAdversarialLists) {
  Rng rng(122);
  const Graph g = gen::random_regular(120, 8, rng);
  const ListEdgeInstance inst =
      make_skewed_list_instance(g, 4 * g.max_edge_degree(), 0.85, rng);
  const auto r = solve_list_edge_coloring(g, inst);
  EXPECT_TRUE(check_list_coloring(inst, r.colors));
}

TEST(LocalColoring, NonRegularFamilies) {
  Rng rng(123);
  const Graph graphs[] = {gen::gnp(200, 0.05, rng), gen::power_law(200, 2.6, 5.0, rng),
                          gen::random_tree(150, rng), gen::torus(8, 8)};
  for (const Graph& g : graphs) {
    if (g.num_edges() == 0) continue;
    const auto r = solve_2delta_minus_1(g);
    EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
    EXPECT_LE(palette_size(r.colors),
              std::max(1, 2 * g.max_degree() - 1));
  }
}

TEST(LocalColoring, TinyGraphs) {
  const Graph one(2, {{0, 1}});
  const auto r1 = solve_2delta_minus_1(one);
  EXPECT_EQ(r1.colors[0], 0);

  const auto r2 = solve_2delta_minus_1(gen::star(3));
  EXPECT_TRUE(is_complete_proper_edge_coloring(gen::star(3), r2.colors));

  const auto r3 = solve_2delta_minus_1(gen::empty(3));
  EXPECT_TRUE(r3.colors.empty());
}

TEST(LocalColoring, IterationsLogarithmicInDelta) {
  Rng rng(124);
  const Graph g = gen::random_regular(300, 16, rng);
  const auto r = solve_2delta_minus_1(g);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
  // O(log Δ) outer iterations (generous constant).
  EXPECT_LE(r.iterations, 4 * 5 + 8);
}

TEST(LocalColoring, RejectsTooSmallLists) {
  const Graph g = gen::star(3);
  ListEdgeInstance inst;
  inst.g = &g;
  inst.color_space = 3;
  inst.lists = {{0, 1}, {0, 1}, {0, 1, 2}};  // first two: size 2 < deg+1 = 3
  EXPECT_THROW(solve_list_edge_coloring(g, inst), CheckError);
}

TEST(LocalColoring, DeterministicAcrossRuns) {
  Rng rng(125);
  const Graph g = gen::random_regular(100, 6, rng);
  const auto a = solve_2delta_minus_1(g);
  const auto b = solve_2delta_minus_1(g);
  EXPECT_EQ(a.colors, b.colors);
}

// Property sweep: every family × list style must produce a valid list
// coloring.
struct LocalCase {
  int family;
  int lists;  // 0 = full palette, 1 = random, 2 = skewed
};
class LocalSweep : public ::testing::TestWithParam<LocalCase> {};

TEST_P(LocalSweep, ValidListColoring) {
  const auto [family, lists] = GetParam();
  Rng rng(static_cast<std::uint64_t>(1000 + family * 10 + lists));
  Graph g = family == 0   ? gen::random_regular(120, 6, rng)
            : family == 1 ? gen::gnp(150, 0.05, rng)
                          : gen::power_law(150, 2.7, 4.0, rng);
  if (g.num_edges() == 0) GTEST_SKIP();
  ListEdgeInstance inst =
      lists == 0   ? make_full_palette_instance(g)
      : lists == 1 ? make_random_list_instance(g, 3 * g.max_edge_degree(), rng)
                   : make_skewed_list_instance(g, 4 * g.max_edge_degree(), 0.8,
                                               rng);
  const auto r = solve_list_edge_coloring(g, inst);
  EXPECT_TRUE(check_list_coloring(inst, r.colors));
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesLists, LocalSweep,
    ::testing::Values(LocalCase{0, 0}, LocalCase{0, 1}, LocalCase{0, 2},
                      LocalCase{1, 0}, LocalCase{1, 1}, LocalCase{1, 2},
                      LocalCase{2, 0}, LocalCase{2, 1}, LocalCase{2, 2}));

}  // namespace
}  // namespace dec
