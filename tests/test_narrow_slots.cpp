// Narrow-slot plane tests: 16 B slot layout, delivery semantics (inline and
// slab-spilled payloads, epoch gating, drain), declared-width enforcement
// (throws with an actionable message, never truncates, network stays usable
// after the rollback), format dispatch guards, per-lease width re-declaration,
// and the memory win the format exists for (>= 2x plane bytes vs wide on the
// same shape).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "sim/dinetwork.hpp"
#include "sim/ledger.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace dec {
namespace {

static_assert(sizeof(NarrowSlot) == 16,
              "the narrow plane's whole point is the 16 B slot");

SlotPlan narrow(int max_fields) {
  return SlotPlan{SlotFormat::kNarrow, max_fields};
}

// ------------------------------------------------------------ delivery

TEST(NarrowSlots, SingleFieldRoundTrip) {
  for (const int threads : {1, 2, 4}) {
    const Graph g = gen::cycle(7);
    SyncNetwork net(g, nullptr, "narrow_echo", threads, narrow(1));
    EXPECT_EQ(net.slot_format(), SlotFormat::kNarrow);
    EXPECT_EQ(net.declared_fields(), 1);

    // Round 0: inbox must read all-empty (epoch gating), then everyone
    // announces its id.
    net.round_fast([&](NodeId v, const auto& in, auto&& out) {
      for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_TRUE(in[i].empty());
      }
      for (auto&& m : out) m.assign({v});
    });
    // Drain: entry i is what g.neighbors(v)[i] sent.
    net.drain_fast([&](NodeId v, const auto& in) {
      const auto nb = g.neighbors(v);
      ASSERT_EQ(in.size(), nb.size());
      for (std::size_t i = 0; i < nb.size(); ++i) {
        ASSERT_FALSE(in[i].empty());
        EXPECT_EQ(in[i].size(), 1u);
        EXPECT_EQ(in[i].at(0), static_cast<std::int64_t>(nb[i].neighbor));
      }
    });
    EXPECT_EQ(net.rounds_executed(), 1);
    EXPECT_EQ(net.audit().messages_sent(),
              static_cast<std::int64_t>(2 * g.num_edges()));
  }
}

TEST(NarrowSlots, SpilledPayloadRoundTrip) {
  // declared width 3: count 1 stays in the slot, counts 2..3 spill to the
  // shard slab. Multiple rounds exercise the per-round slab rewind and the
  // read-plane spill resolution both mid-round and during the final drain.
  for (const int threads : {1, 2, 4}) {
    Rng rng(7);
    const Graph g = gen::gnp(40, 0.2, rng);
    SyncNetwork net(g, nullptr, "narrow_spill", threads, narrow(3));
    for (int r = 0; r < 3; ++r) {
      net.round_fast([&](NodeId v, const auto& in, auto&& out) {
        if (r > 0) {
          const auto nb = g.neighbors(v);
          for (std::size_t i = 0; i < in.size(); ++i) {
            const auto& m = in[i];
            const auto w = static_cast<std::int64_t>(nb[i].neighbor);
            ASSERT_EQ(m.size(), 3u);
            EXPECT_EQ(m.at(0), w);
            EXPECT_EQ(m.at(1), w + r - 1);
            EXPECT_EQ(m.at(2), -w);
          }
        }
        for (auto&& m : out) m.assign({v, v + r, -static_cast<std::int64_t>(v)});
      });
    }
    net.drain_fast([&](NodeId v, const auto& in) {
      const auto nb = g.neighbors(v);
      for (std::size_t i = 0; i < in.size(); ++i) {
        const auto w = static_cast<std::int64_t>(nb[i].neighbor);
        // Range-for over the view's fields via the iterator form too.
        std::vector<std::int64_t> got;
        for (const std::int64_t f : in[i].fields()) got.push_back(f);
        ASSERT_EQ(got.size(), 3u);
        EXPECT_EQ(got[0], w);
        EXPECT_EQ(got[1], w + 2);
        EXPECT_EQ(got[2], -w);
      }
    });
  }
}

TEST(NarrowSlots, InboxIterationMatchesIndexing) {
  const Graph g = gen::star(5);
  SyncNetwork net(g, nullptr, "narrow_iter", 1, narrow(2));
  net.round_fast([&](NodeId v, const auto&, auto&& out) {
    std::size_t i = 0;
    for (auto&& m : out) {
      m.assign({v, static_cast<std::int64_t>(i)});
      ++i;
    }
  });
  net.drain_fast([&](NodeId v, const auto& in) {
    std::size_t i = 0;
    for (const auto& m : in) {  // by-value views; const auto& binds fine
      ASSERT_FALSE(m.empty());
      EXPECT_EQ(m.at(0), in[i].at(0));
      EXPECT_EQ(m.at(1), in[i].at(1));
      ++i;
    }
    EXPECT_EQ(i, in.size());
  });
}

TEST(NarrowSlots, ResetInvalidatesDeliveredPlane) {
  const Graph g = gen::cycle(4);
  SyncNetwork net(g, nullptr, "narrow_reset", 1, narrow(1));
  net.round_fast([&](NodeId v, const auto&, auto&& out) {
    for (auto&& m : out) m.assign({v});
  });
  net.reset();
  EXPECT_EQ(net.rounds_executed(), 0);
  net.drain_fast([&](NodeId, const auto& in) {
    for (std::size_t i = 0; i < in.size(); ++i) EXPECT_TRUE(in[i].empty());
  });
}

// ------------------------------------------------- declared-width violations

TEST(NarrowSlots, WidthViolationThrowsActionably) {
  const Graph g = gen::cycle(6);
  SyncNetwork net(g, nullptr, "narrow_overflow", 1, narrow(2));
  try {
    net.round_fast([&](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v, v, v});  // 3 > declared 2
    });
    FAIL() << "over-wide message must throw, never truncate";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("message wider than the protocol's declared slot "
                        "plan"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("component 'narrow_overflow'"), std::string::npos);
    EXPECT_NE(what.find("round 0"), std::string::npos);
    EXPECT_NE(what.find("node 0"), std::string::npos);
    EXPECT_NE(what.find("reached 3 fields"), std::string::npos);
    EXPECT_NE(what.find("declared max_fields=2"), std::string::npos);
    EXPECT_NE(what.find("never truncates"), std::string::npos);
  }
  // The aborted round rolled back: no round charged, and the network is
  // fully usable afterwards.
  EXPECT_EQ(net.rounds_executed(), 0);
  net.round_fast([&](NodeId v, const auto&, auto&& out) {
    for (auto&& m : out) m.assign({v, v + 1});
  });
  net.drain_fast([&](NodeId v, const auto& in) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < in.size(); ++i) {
      ASSERT_EQ(in[i].size(), 2u);
      EXPECT_EQ(in[i].at(0), static_cast<std::int64_t>(nb[i].neighbor));
    }
  });
  EXPECT_EQ(net.rounds_executed(), 1);
}

TEST(NarrowSlots, WidthViolationThrowsSharded) {
  // The violating node program runs on a pool worker; the throw must cross
  // the round barrier and the round must roll back.
  const Graph g = gen::grid(8, 8);
  SyncNetwork net(g, nullptr, "narrow_overflow_par", 4, narrow(1));
  EXPECT_THROW(net.round_fast([&](NodeId v, const auto&, auto&& out) {
                 if (v == 37) {
                   for (auto&& m : out) m.assign({1, 2});
                 } else {
                   for (auto&& m : out) m.assign({v});
                 }
               }),
               CheckError);
  EXPECT_EQ(net.rounds_executed(), 0);
  net.round_fast([&](NodeId v, const auto&, auto&& out) {
    for (auto&& m : out) m.assign({v});
  });
  EXPECT_EQ(net.rounds_executed(), 1);
}

TEST(NarrowSlots, WidePlaneEnforcesDeclaredWidthToo) {
  // A positive declared width is enforced on the wide plane as well (audited
  // at the end of the node step rather than per push).
  const Graph g = gen::cycle(4);
  SyncNetwork net(g, nullptr, "wide_declared", 1,
                  SlotPlan{SlotFormat::kWide, 2});
  try {
    net.round_fast([&](NodeId, const Inbox&, Outbox& out) {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = Message{1, 2, 3};
    });
    FAIL() << "wide plane with declared width must also throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("declared max_fields=2"), std::string::npos) << what;
    EXPECT_NE(what.find("never truncates"), std::string::npos);
  }
  EXPECT_EQ(net.rounds_executed(), 0);
}

TEST(NarrowSlots, ArcWidthViolationThrowsActionably) {
  const Digraph dg(3, {{0, 1}, {1, 2}, {2, 0}});
  DiNetwork net(dg, nullptr, "di_overflow", 1, narrow(1));
  try {
    net.round_fast([&](NodeId, const auto&, DiOutbox& out) {
      out.along(0, {1, 2});  // 2 > declared arc width 1
    });
    FAIL() << "over-wide arc payload must throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("arc payload wider than the protocol's declared arc "
                        "plan"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("component 'di_overflow'"), std::string::npos);
    EXPECT_NE(what.find("max_fields=1"), std::string::npos);
    EXPECT_NE(what.find("never truncates"), std::string::npos);
  }
}

// ---------------------------------------------------- plan validation/guards

TEST(NarrowSlots, PlanValidation) {
  const Graph g = gen::cycle(3);
  EXPECT_THROW(SyncNetwork(g, nullptr, "bad", 1, narrow(0)), CheckError);
  EXPECT_THROW(SyncNetwork(g, nullptr, "bad", 1, narrow(256)), CheckError);
  EXPECT_THROW(SyncNetwork(g, nullptr, "bad", 1,
                           SlotPlan{SlotFormat::kWide, -1}),
               CheckError);
  EXPECT_NO_THROW(SyncNetwork(g, nullptr, "ok", 1, narrow(255)));
}

TEST(NarrowSlots, WideOnlyProgramRejectedOnNarrowPlane) {
  const Graph g = gen::cycle(4);
  SyncNetwork net(g, nullptr, "guard", 1, narrow(1));
  EXPECT_THROW(
      net.round_fast([](NodeId, const Inbox&, Outbox&) {}),
      CheckError);
  EXPECT_THROW(net.drain_fast([](NodeId, const Inbox&) {}), CheckError);
}

TEST(NarrowSlots, RebindRedeclaresWidthButNotFormat) {
  const Graph g = gen::cycle(5);
  auto topo = NetworkTopology::plan(g, 1);
  SyncNetwork net(g, topo, nullptr, "rebind", narrow(1));
  // Same format, wider declaration: the spill path must now work.
  net.rebind(g, topo, nullptr, "rebind", narrow(3));
  EXPECT_EQ(net.declared_fields(), 3);
  net.round_fast([&](NodeId v, const auto&, auto&& out) {
    for (auto&& m : out) m.assign({v, v, v});
  });
  net.drain_fast([&](NodeId, const auto& in) {
    for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(in[i].size(), 3u);
  });
  // Format is structural: a rebind cannot flip it.
  EXPECT_THROW(net.rebind(g, topo, nullptr, "rebind",
                          SlotPlan{SlotFormat::kWide, 0}),
               CheckError);
}

// ------------------------------------------------------------- memory win

TEST(NarrowSlots, MemoryBytesAtLeastHalved) {
  // Same shape, same protocol; the narrow run state must carry <= half the
  // heap bytes of the wide one (16 B vs 64 B slots; slabs empty for width-1
  // leases). This is the tentpole's headline number.
  Rng rng(11);
  const Graph g = gen::random_regular(512, 8, rng);
  auto run = [&](SlotPlan plan) {
    SyncNetwork net(g, nullptr, "mem", 1, plan);
    net.round_fast([&](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({v});
    });
    return net.memory_bytes();
  };
  const std::size_t wide = run(SlotPlan{SlotFormat::kWide, 1});
  const std::size_t nrw = run(narrow(1));
  EXPECT_GE(wide, 2 * nrw) << "wide=" << wide << " narrow=" << nrw;
}

TEST(NarrowSlots, AuditMatchesWidePlane) {
  // Bits are a function of field values alone, so a protocol audited on the
  // narrow plane reports exactly the wide plane's numbers.
  Rng rng(3);
  const Graph g = gen::gnp(60, 0.1, rng);
  auto run = [&](SlotPlan plan) {
    SyncNetwork net(g, nullptr, "audit", 1, plan);
    for (int r = 0; r < 2; ++r) {
      net.round_fast([&](NodeId v, const auto&, auto&& out) {
        std::size_t i = 0;
        for (auto&& m : out) {
          if ((v + i) % 3 == 0) {
            m.assign({v * 1000 + static_cast<std::int64_t>(i)});
          }
          ++i;
        }
      });
    }
    return std::pair<int, std::int64_t>(net.audit().max_bits(),
                                        net.audit().messages_sent());
  };
  EXPECT_EQ(run(SlotPlan{SlotFormat::kWide, 1}), run(narrow(1)));
}

}  // namespace
}  // namespace dec
