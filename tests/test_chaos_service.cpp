// Chaos suite: the solver service under deterministic fault injection.
// Compiled only when -DDEC_FAULT_INJECTION=ON (CMake skips this file
// otherwise), because the fault points themselves compile to nothing in
// normal builds.
//
// Scenarios: transient throws at a chosen round barrier (retried to
// bit-identical success), slab allocation failure mid-round (abort +
// retry on a recycled lease), injected cancellation mid-phase, injected
// worker latency against a wall-clock deadline, and randomized fault
// schedules over a mixed 40-job batch where the only acceptable outcomes
// are clean statuses — every future satisfied, every kOk bit-identical to a
// fault-free direct call, the arena clean afterwards. DEC_CHAOS_ITERS
// (env) raises the randomized iterations for soak runs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "core/solver_registry.hpp"
#include "graph/generators.hpp"
#include "service/solver_service.hpp"
#include "sim/network.hpp"
#include "testing/fault_injection.hpp"
#include "util/rng.hpp"

namespace dec {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

auto congest_key(const CongestColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels, r.tail_degree);
}

auto bipartite_key(const BipartiteColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels,
                    r.leaf_degree_bound, r.chi);
}

auto token_key(const TokenDroppingResult& r) {
  return std::tuple(r.tokens, r.edge_passive, r.phases, r.rounds,
                    r.tokens_moved, r.max_message_bits);
}

/// Compare two kOk results for bit-identity (outputs + ledger breakdown).
void expect_identical(const SolverResult& ref, const SolverResult& got,
                      int job_index) {
  ASSERT_EQ(got.status, SolverStatus::kOk) << "job " << job_index;
  ASSERT_EQ(ref.output.index(), got.output.index()) << "job " << job_index;
  if (const auto* r = std::get_if<CongestColoringResult>(&ref.output)) {
    EXPECT_EQ(congest_key(*r),
              congest_key(std::get<CongestColoringResult>(got.output)))
        << "job " << job_index;
  } else if (const auto* r =
                 std::get_if<BipartiteColoringResult>(&ref.output)) {
    EXPECT_EQ(bipartite_key(*r),
              bipartite_key(std::get<BipartiteColoringResult>(got.output)))
        << "job " << job_index;
  } else if (const auto* r = std::get_if<TokenDroppingResult>(&ref.output)) {
    EXPECT_EQ(token_key(*r),
              token_key(std::get<TokenDroppingResult>(got.output)))
        << "job " << job_index;
  }
  EXPECT_EQ(ref.ledger.breakdown(), got.ledger.breakdown())
      << "job " << job_index;
}

SolverRequest small_congest(std::uint64_t seed) {
  Rng rng(seed);
  auto g = std::make_shared<const Graph>(gen::gnp(40, 0.15, rng));
  return make_congest_request(std::move(g), {1.0});
}

TEST_F(ChaosTest, UnarmedPointsCostNothingAndCountNothing) {
  EXPECT_FALSE(fault::enabled());
  const SolverResult r = execute_request(small_congest(9100));
  EXPECT_EQ(r.status, SolverStatus::kOk);
  EXPECT_EQ(fault::hits("network.round"), 0);
  EXPECT_EQ(fault::fired("network.round"), 0);
}

TEST_F(ChaosTest, TransientRoundFaultRetriesToBitIdenticalSuccess) {
  const SolverRequest req = small_congest(9100);
  const SolverResult ref = execute_request(req);  // faults disarmed

  // Single-shot transient throw at the 6th round barrier: attempt one dies
  // mid-solve, attempt two runs fault-free on a recycled lease.
  fault::FaultPlan plan;
  plan.action = fault::Action::kThrowTransient;
  plan.fire_at = 5;
  fault::arm("network.round", plan);

  SolverService service({.workers = 1, .queue_capacity = 4});
  SubmitOptions opts;
  opts.max_retries = 2;
  opts.retry_backoff = std::chrono::microseconds(100);
  JobTicket t = service.submit(req, opts);
  const SolverResult got = t.result.get();
  EXPECT_EQ(fault::fired("network.round"), 1);
  EXPECT_EQ(got.attempts, 2);
  expect_identical(ref, got, 0);
  EXPECT_EQ(service.stats().retried, 1);
  EXPECT_EQ(service.stats().completed, 1);
}

TEST_F(ChaosTest, ExhaustedRetriesSurfaceTheTransientAsFailed) {
  const SolverRequest req = small_congest(9103);
  fault::FaultPlan plan;
  plan.action = fault::Action::kThrowTransient;
  plan.fire_at = 2;
  plan.period = 1;  // every barrier from the 3rd on: no attempt survives
  fault::arm("network.round", plan);

  SolverService service({.workers = 1, .queue_capacity = 4});
  SubmitOptions opts;
  opts.max_retries = 2;
  opts.retry_backoff = std::chrono::microseconds(100);
  JobTicket t = service.submit(req, opts);
  const SolverResult got = t.result.get();
  EXPECT_EQ(got.status, SolverStatus::kFailed);
  EXPECT_EQ(got.attempts, 3);  // initial + 2 retries
  EXPECT_NE(got.error.find("injected transient fault"), std::string::npos)
      << got.error;
  EXPECT_EQ(service.stats().failed, 1);
  EXPECT_EQ(service.stats().retried, 2);
}

TEST_F(ChaosTest, SlabAllocFailureAbortsMidRoundAndResetsClean) {
  // The orchestrated solvers keep payloads inside Message's inline capacity,
  // so "slab.alloc" is exercised at the substrate level: a spill-heavy
  // protocol whose 3rd slab allocation throws std::bad_alloc from inside a
  // running round. reset() must then hand back a state bit-identical to
  // fresh.
  Rng rng(21);
  const Graph g = gen::gnp(40, 0.2, rng);
  auto spam = [&](SyncNetwork& net, int rounds) {
    for (int r = 0; r < rounds; ++r) {
      net.round_fast([&](NodeId v, const Inbox& in, Outbox& out) {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < in.size(); ++i) {
          for (const std::int64_t f : in[i].fields()) {
            acc = acc * 1315423911u + static_cast<std::uint64_t>(f);
          }
        }
        for (std::size_t i = 0; i < out.size(); ++i) {
          Message& m = out[i];
          m = Message{static_cast<std::int64_t>(v)};
          for (int k = 0; k < 2 * static_cast<int>(Message::kInlineFields);
               ++k) {
            m.push(k + static_cast<std::int64_t>(acc % 7));
          }
        }
      });
    }
    std::uint64_t fold = 0;
    net.drain_fast([&](NodeId v, const Inbox& in) {
      for (std::size_t i = 0; i < in.size(); ++i) {
        for (const std::int64_t f : in[i].fields()) {
          fold = fold * 31 + static_cast<std::uint64_t>(f) +
                 static_cast<std::uint64_t>(v);
        }
      }
    });
    return std::tuple(fold, net.rounds_executed(),
                      net.audit().messages_sent());
  };

  SyncNetwork ref_net(g, nullptr, "net", 1);
  const auto ref = spam(ref_net, 4);

  fault::FaultPlan plan;
  plan.action = fault::Action::kAllocFail;
  plan.fire_at = 2;
  fault::arm("slab.alloc", plan);
  SyncNetwork net(g, nullptr, "net", 1);
  EXPECT_THROW(spam(net, 4), std::bad_alloc);
  EXPECT_GE(fault::hits("slab.alloc"), 3);
  EXPECT_EQ(fault::fired("slab.alloc"), 1);

  net.reset();  // post-abort reset must leak nothing
  EXPECT_EQ(spam(net, 4), ref);
}

TEST_F(ChaosTest, WorkerAllocFailureIsTransientAndRetries) {
  // std::bad_alloc out of the worker path (here: the pre-execution fault
  // point) classifies as transient, exactly like TransientError.
  const SolverRequest req = small_congest(9106);
  const SolverResult ref = execute_request(req);

  fault::FaultPlan plan;
  plan.action = fault::Action::kAllocFail;
  plan.fire_at = 0;  // first pickup dies before the solver starts
  fault::arm("service.worker", plan);

  SolverService service({.workers = 1, .queue_capacity = 4});
  SubmitOptions opts;
  opts.max_retries = 1;
  opts.retry_backoff = std::chrono::microseconds(100);
  JobTicket t = service.submit(req, opts);
  const SolverResult got = t.result.get();
  EXPECT_EQ(fault::fired("service.worker"), 1);
  EXPECT_EQ(got.attempts, 2);
  expect_identical(ref, got, 0);
  EXPECT_EQ(service.stats().retried, 1);
}

TEST_F(ChaosTest, InjectedCancelMidPhaseResolvesCancelled) {
  fault::FaultPlan plan;
  plan.action = fault::Action::kCancel;
  plan.fire_at = 4;  // trip the job's own token at the 5th barrier
  fault::arm("network.round", plan);

  SolverService service({.workers = 1, .queue_capacity = 4});
  JobTicket t = service.submit(small_congest(9106));
  const SolverResult got = t.result.get();
  EXPECT_EQ(got.status, SolverStatus::kCancelled);
  EXPECT_EQ(fault::fired("network.round"), 1);
  EXPECT_EQ(service.stats().cancelled, 1);

  // The abandoned lease parks clean: a fault-free job right after matches a
  // disarmed direct call.
  fault::disarm_all();
  const SolverResult ref = execute_request(small_congest(9106));
  JobTicket clean = service.submit(small_congest(9106));
  expect_identical(ref, clean.result.get(), 1);
}

TEST_F(ChaosTest, InjectedLatencyLosesToTheDeadline) {
  // 50 ms of injected worker latency against a 5 ms deadline: whether the
  // watchdog or the first round barrier notices, the job must resolve as
  // kDeadlineExceeded — and promptly, not after the full solve.
  fault::FaultPlan plan;
  plan.action = fault::Action::kDelay;
  plan.delay = std::chrono::milliseconds(50);
  fault::arm("service.worker", plan);

  SolverService service({.workers = 1, .queue_capacity = 4});
  SubmitOptions opts;
  opts.deadline = std::chrono::milliseconds(5);
  JobTicket t = service.submit(small_congest(9109), opts);
  const SolverResult got = t.result.get();
  EXPECT_EQ(got.status, SolverStatus::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_exceeded, 1);
}

// ------------------------------------------------------- randomized batches

int chaos_iters() {
  if (const char* env = std::getenv("DEC_CHAOS_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 2;
}

std::vector<SolverRequest> mixed_batch() {
  std::vector<SolverRequest> reqs;
  for (int i = 0; i < 40; ++i) {
    Rng rng(9000 + static_cast<std::uint64_t>(i));
    switch (i % 3) {
      case 0:
        reqs.push_back(small_congest(9100 + static_cast<std::uint64_t>(i)));
        break;
      case 1: {
        auto bg = std::make_shared<const BipartiteGraph>(
            gen::random_bipartite(16 + i % 5, 14, 0.18, rng));
        std::shared_ptr<const Graph> g(bg, &bg->graph);
        BipartiteColoringJob job;
        job.parts = bg->parts;
        reqs.push_back(make_bipartite_request(g, std::move(job)));
        break;
      }
      default: {
        auto game = std::make_shared<const Digraph>(
            layered_game(3 + i % 2, 8, 3, rng));
        TokenDroppingJob job;
        job.params.k = 10 + i % 4;
        job.params.delta = 1;
        job.params.alpha.assign(
            static_cast<std::size_t>(game->num_nodes()), 2);
        job.initial_tokens.assign(
            static_cast<std::size_t>(game->num_nodes()), 5);
        reqs.push_back(
            make_token_dropping_request(std::move(game), std::move(job)));
        break;
      }
    }
  }
  return reqs;
}

TEST_F(ChaosTest, RandomizedFaultScheduleOverMixedBatch) {
  const std::vector<SolverRequest> reqs = mixed_batch();
  // Fault-free references, computed while disarmed.
  std::vector<SolverResult> refs;
  refs.reserve(reqs.size());
  for (const SolverRequest& req : reqs) refs.push_back(execute_request(req));

  const int iters = chaos_iters();
  for (int iter = 0; iter < iters; ++iter) {
    Rng rng(31337 + static_cast<std::uint64_t>(iter));
    // A periodic transient at the shared round barrier plus a sparse cancel
    // wave: the schedule is random per iteration but exact per run.
    fault::FaultPlan round_plan;
    round_plan.action = fault::Action::kThrowTransient;
    round_plan.fire_at = static_cast<std::int64_t>(rng.next_below(200));
    round_plan.period =
        800 + static_cast<std::int64_t>(rng.next_below(800));
    fault::arm("network.round", round_plan);
    // Sprinkle worker latency on every few pickups (no failure, just jitter
    // in scheduling relative to the fault stream).
    fault::FaultPlan delay_plan;
    delay_plan.action = fault::Action::kDelay;
    delay_plan.fire_at = 1 + static_cast<std::int64_t>(rng.next_below(3));
    delay_plan.period = 3;
    delay_plan.delay = std::chrono::microseconds(500);
    fault::arm("service.worker", delay_plan);

    SolverService service({.workers = 2, .queue_capacity = 8});
    std::vector<JobTicket> tickets;
    tickets.reserve(reqs.size());
    SubmitOptions opts;
    opts.max_retries = 4;
    opts.retry_backoff = std::chrono::microseconds(50);
    for (const SolverRequest& req : reqs) {
      tickets.push_back(service.submit(req, opts));
    }

    int ok = 0, failed = 0;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      ASSERT_TRUE(tickets[i].accepted) << "iter " << iter << " job " << i;
      // Every future must be satisfied — with kOk bit-identical to the
      // fault-free reference, or a structured transient failure.
      const SolverResult got = tickets[i].result.get();
      if (got.status == SolverStatus::kOk) {
        ++ok;
        expect_identical(refs[i], got, static_cast<int>(i));
      } else {
        ASSERT_EQ(got.status, SolverStatus::kFailed)
            << "iter " << iter << " job " << i << ": "
            << to_string(got.status);
        EXPECT_FALSE(got.error.empty());
        ++failed;
      }
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, static_cast<std::int64_t>(reqs.size()));
    EXPECT_EQ(stats.completed, ok);
    EXPECT_EQ(stats.failed, failed);
    EXPECT_EQ(ok + failed, static_cast<int>(reqs.size()));
    service.shutdown();
    fault::disarm_all();

    // The arena survived the chaos: a fault-free pass over the same batch
    // through a fresh service on the same process is bit-identical.
    if (iter == iters - 1) {
      SolverService clean({.workers = 2, .queue_capacity = 8});
      std::vector<JobTicket> clean_tickets;
      for (const SolverRequest& req : reqs) {
        clean_tickets.push_back(clean.submit(req));
      }
      for (std::size_t i = 0; i < clean_tickets.size(); ++i) {
        expect_identical(refs[i], clean_tickets[i].result.get(),
                         static_cast<int>(i));
      }
    }
  }
}

TEST_F(ChaosTest, CancelWaveOverRunningBatch) {
  // Inject periodic cancels into a batch and require only clean terminal
  // statuses; cancelled jobs must not poison later jobs' run states.
  const std::vector<SolverRequest> reqs = mixed_batch();
  std::vector<SolverResult> refs;
  refs.reserve(reqs.size());
  for (const SolverRequest& req : reqs) refs.push_back(execute_request(req));

  fault::FaultPlan plan;
  plan.action = fault::Action::kCancel;
  plan.fire_at = 10;
  plan.period = 25;
  fault::arm("network.round", plan);

  SolverService service({.workers = 2, .queue_capacity = 8});
  std::vector<JobTicket> tickets;
  for (const SolverRequest& req : reqs) tickets.push_back(service.submit(req));
  int ok = 0, cancelled = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const SolverResult got = tickets[i].result.get();
    if (got.status == SolverStatus::kOk) {
      ++ok;
      expect_identical(refs[i], got, static_cast<int>(i));
    } else {
      ASSERT_EQ(got.status, SolverStatus::kCancelled)
          << "job " << i << ": " << to_string(got.status);
      ++cancelled;
    }
  }
  EXPECT_GT(cancelled, 0);  // the wave actually hit something
  EXPECT_EQ(ok + cancelled, static_cast<int>(reqs.size()));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.completed, ok);
}

TEST_F(ChaosTest, PriorityClassesSurviveFaultsWithoutStarvation) {
  // PR 8 scheduler under chaos: the mixed batch carries all three priority
  // classes (round-robin) while transient faults and worker latency churn
  // the pickup order. Strict priority must not become starvation — every
  // class finishes jobs (the queue drains, so kLow runs once its betters
  // are done), every future resolves with a clean status, and kOk results
  // stay bit-identical to fault-free direct calls.
  const std::vector<SolverRequest> reqs = mixed_batch();
  std::vector<SolverResult> refs;
  refs.reserve(reqs.size());
  for (const SolverRequest& req : reqs) refs.push_back(execute_request(req));

  fault::FaultPlan round_plan;
  round_plan.action = fault::Action::kThrowTransient;
  round_plan.fire_at = 100;
  round_plan.period = 900;
  fault::arm("network.round", round_plan);
  fault::FaultPlan delay_plan;
  delay_plan.action = fault::Action::kDelay;
  delay_plan.fire_at = 2;
  delay_plan.period = 4;
  delay_plan.delay = std::chrono::microseconds(500);
  fault::arm("service.worker", delay_plan);

  constexpr Priority kClasses[] = {Priority::kHigh, Priority::kNormal,
                                   Priority::kLow};
  SolverService service({.workers = 2, .queue_capacity = 8});
  std::vector<JobTicket> tickets;
  tickets.reserve(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    SubmitOptions opts;
    opts.priority = kClasses[i % 3];
    opts.max_retries = 4;
    opts.retry_backoff = std::chrono::microseconds(50);
    tickets.push_back(service.submit(reqs[i], opts));
  }

  int ok_per_class[3] = {0, 0, 0};
  int failed = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].accepted) << "job " << i;
    const SolverResult got = tickets[i].result.get();
    if (got.status == SolverStatus::kOk) {
      ++ok_per_class[i % 3];
      expect_identical(refs[i], got, static_cast<int>(i));
    } else {
      ASSERT_EQ(got.status, SolverStatus::kFailed)
          << "job " << i << ": " << to_string(got.status);
      ++failed;
    }
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_GT(ok_per_class[c], 0)
        << "class " << to_string(kClasses[c]) << " starved";
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed + stats.failed,
            static_cast<std::int64_t>(reqs.size()));
  EXPECT_EQ(stats.failed, failed);
}

}  // namespace
}  // namespace dec
