// Binary CSR I/O: round trips are bit-identical through the mmap fast
// path, every corruption class is rejected with a CheckError (never a
// crash or an oversized allocation), and the Graph::from_sorted_unique /
// from_csr fast paths match the general constructor exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/csr_io.hpp"
#include "graph/generators.hpp"
#include "sim/pool.hpp"

namespace dec {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "csr_io_" + name + ".bin";
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Full structural equality: the loaded graph must be indistinguishable
// from the source — edge list (ids and order), adjacency order, and the
// cached degree data the coloring algorithms read.
void expect_bit_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edge_list(), b.edge_list());
  EXPECT_EQ(a.max_degree(), b.max_degree());
  EXPECT_EQ(a.max_edge_degree(), b.max_edge_degree());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_degree(e), b.edge_degree(e)) << "edge " << e;
  }
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "node " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].neighbor, nb[i].neighbor) << "node " << v;
      EXPECT_EQ(na[i].edge, nb[i].edge) << "node " << v;
    }
  }
}

TEST(CsrIo, RoundTripBitIdenticalAcrossFamilies) {
  Rng rng(11);
  const Graph graphs[] = {
      gen::gnp(500, 0.05, rng),
      gen::grid(20, 30),
      gen::power_law(400, 2.5, 5.0, rng),
      gen::star(64),
  };
  int i = 0;
  for (const Graph& g : graphs) {
    const std::string path = temp_path("roundtrip_" + std::to_string(i++));
    write_csr(path, g);
    const Graph verified = read_csr(path, CsrTrust::kVerify);
    expect_bit_identical(g, verified);
    const Graph trusted = read_csr(path, CsrTrust::kTrusted);
    expect_bit_identical(g, trusted);
    std::remove(path.c_str());
  }
}

TEST(CsrIo, RoundTripEmptyAndEdgeless) {
  for (const NodeId n : {0, 1, 17}) {
    const std::string path = temp_path("empty_" + std::to_string(n));
    write_csr(path, gen::empty(n));
    const Graph h = read_csr(path);
    EXPECT_EQ(h.num_nodes(), n);
    EXPECT_EQ(h.num_edges(), 0);
    std::remove(path.c_str());
  }
}

TEST(CsrIo, MappingExposesSections) {
  Rng rng(3);
  const Graph g = gen::gnp(60, 0.2, rng);
  const std::string path = temp_path("sections");
  write_csr(path, g);
  CsrMapping map(path);
  EXPECT_EQ(map.num_nodes(), g.num_nodes());
  EXPECT_EQ(map.num_edges(), g.num_edges());
  ASSERT_EQ(map.offsets().size(), static_cast<std::size_t>(g.num_nodes()) + 1);
  EXPECT_EQ(map.offsets().back(),
            2 * static_cast<std::uint64_t>(g.num_edges()));
  std::uint64_t off = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(map.offsets()[static_cast<std::size_t>(v)], off);
    off += static_cast<std::uint64_t>(g.degree(v));
  }
  ASSERT_EQ(map.endpoints().size(), 2 * static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    EXPECT_EQ(map.endpoints()[2 * static_cast<std::size_t>(e)],
              static_cast<std::uint32_t>(u));
    EXPECT_EQ(map.endpoints()[2 * static_cast<std::size_t>(e) + 1],
              static_cast<std::uint32_t>(v));
  }
  EXPECT_NO_THROW(map.verify_checksum());
  std::remove(path.c_str());
}

TEST(CsrIo, RejectsBadMagicAndVersion) {
  Rng rng(4);
  const std::string path = temp_path("magic");
  write_csr(path, gen::gnp(30, 0.2, rng));
  auto bytes = slurp(path);
  auto patched = bytes;
  patched[0] = 'X';
  spit(path, patched);
  EXPECT_THROW(read_csr(path), CheckError);
  patched = bytes;
  patched[8] = 9;  // version
  spit(path, patched);
  EXPECT_THROW(read_csr(path), CheckError);
  patched = bytes;
  patched[12] = 1;  // reserved flags
  spit(path, patched);
  EXPECT_THROW(read_csr(path), CheckError);
  std::remove(path.c_str());
}

TEST(CsrIo, RejectsTruncationAnywhere) {
  Rng rng(5);
  const std::string path = temp_path("trunc");
  write_csr(path, gen::gnp(30, 0.2, rng));
  const auto bytes = slurp(path);
  // Sever the file inside the header, the offsets section, and the
  // endpoint section: every cut must be caught by the size-vs-header
  // check, regardless of trust level.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{17}, std::size_t{39}, std::size_t{64},
        bytes.size() - 1}) {
    spit(path, {bytes.begin(), bytes.begin() + static_cast<long>(keep)});
    EXPECT_THROW(read_csr(path, CsrTrust::kVerify), CheckError) << keep;
    EXPECT_THROW(read_csr(path, CsrTrust::kTrusted), CheckError) << keep;
  }
  std::remove(path.c_str());
}

TEST(CsrIo, RejectsHostileHeaderCountsBeforeAllocating) {
  Rng rng(6);
  const std::string path = temp_path("hostile");
  write_csr(path, gen::gnp(10, 0.3, rng));
  auto bytes = slurp(path);
  // Claim m = 2^31 - 1 edges on the same tiny file: the declared section
  // size no longer matches the real file size, so the loader must reject
  // from the header alone — before any O(m) allocation.
  const std::uint64_t huge_m = 0x7fffffffULL;
  std::memcpy(bytes.data() + 24, &huge_m, sizeof(huge_m));
  spit(path, bytes);
  EXPECT_THROW(read_csr(path, CsrTrust::kTrusted), CheckError);
  // n beyond the NodeId domain is rejected even if the size would match.
  bytes = slurp(path);
  const std::uint64_t huge_n = 0x100000000ULL;
  std::memcpy(bytes.data() + 16, &huge_n, sizeof(huge_n));
  spit(path, bytes);
  EXPECT_THROW(read_csr(path, CsrTrust::kTrusted), CheckError);
  std::remove(path.c_str());
}

TEST(CsrIo, RejectsOutOfRangeEndpointAndBadOffsets) {
  Rng rng(7);
  const Graph g = gen::gnp(30, 0.2, rng);
  const std::string path = temp_path("endpoint");
  write_csr(path, g);
  const auto bytes = slurp(path);
  const std::size_t endpoints_at =
      40 + (static_cast<std::size_t>(g.num_nodes()) + 1) * 8;

  // Endpoint beyond n: checksum catches it under kVerify; the structural
  // pass in Graph::from_csr catches it even when trusted.
  auto patched = bytes;
  const std::uint32_t bad = static_cast<std::uint32_t>(g.num_nodes()) + 5;
  std::memcpy(patched.data() + endpoints_at + 4, &bad, sizeof(bad));
  spit(path, patched);
  EXPECT_THROW(read_csr(path, CsrTrust::kVerify), CheckError);
  EXPECT_THROW(read_csr(path, CsrTrust::kTrusted), CheckError);

  // Offsets disagreeing with the endpoint section are caught structurally.
  patched = bytes;
  std::uint64_t off1 = 0;
  std::memcpy(&off1, patched.data() + 40 + 8, sizeof(off1));
  off1 += 1;
  std::memcpy(patched.data() + 40 + 8, &off1, sizeof(off1));
  spit(path, patched);
  EXPECT_THROW(read_csr(path, CsrTrust::kTrusted), CheckError);
  std::remove(path.c_str());
}

TEST(CsrIo, ChecksumCatchesSingleBitFlip) {
  Rng rng(8);
  const std::string path = temp_path("checksum");
  write_csr(path, gen::gnp(40, 0.2, rng));
  auto bytes = slurp(path);
  // Swap two adjacent edges' endpoint words: still canonical-order-breaking
  // is not guaranteed, so pick a pure payload bit flip that keeps all
  // structural invariants intact (flip a high bit of an offsets entry would
  // break monotonicity; instead flip a bit in the checksum itself to prove
  // verify reads it, then flip payload bits).
  bytes[32] = static_cast<char>(bytes[32] ^ 0x01);  // stored checksum
  spit(path, bytes);
  EXPECT_THROW(read_csr(path, CsrTrust::kVerify), CheckError);
  std::remove(path.c_str());
}

TEST(Graph, FromSortedUniqueMatchesGeneralConstructor) {
  Rng rng(9);
  const Graph g = gen::gnp(200, 0.05, rng);  // builder output: canonical
  const Graph h = Graph::from_sorted_unique(g.num_nodes(), g.edge_list());
  expect_bit_identical(g, h);
  const Graph i(g.num_nodes(), g.edge_list());
  expect_bit_identical(g, i);
}

TEST(Graph, FromSortedUniqueRejectsNonCanonicalInput) {
  EXPECT_THROW(Graph::from_sorted_unique(4, {{1, 0}}), CheckError);  // u > v
  EXPECT_THROW(Graph::from_sorted_unique(4, {{0, 1}, {0, 1}}),
               CheckError);  // duplicate
  EXPECT_THROW(Graph::from_sorted_unique(4, {{0, 2}, {0, 1}}),
               CheckError);  // unsorted
  EXPECT_THROW(Graph::from_sorted_unique(4, {{0, 4}}),
               CheckError);  // out of range
  EXPECT_THROW(Graph::from_sorted_unique(4, {{2, 2}}), CheckError);  // loop
}

TEST(Graph, FromCsrValidatesSections) {
  // offsets too short
  const std::vector<std::uint64_t> short_offsets{0, 2};
  const std::vector<std::uint32_t> endpoints{0, 1};
  EXPECT_THROW(Graph::from_csr(3, short_offsets, endpoints), CheckError);
  // offsets not spanning the endpoints
  const std::vector<std::uint64_t> bad_total{0, 1, 1, 4};
  EXPECT_THROW(Graph::from_csr(3, bad_total, endpoints), CheckError);
  // a consistent tiny graph loads
  const std::vector<std::uint64_t> offsets{0, 1, 2, 2};
  const Graph g = Graph::from_csr(3, offsets, endpoints);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.find_edge(0, 1), 0);
}

// End-to-end at the scale the format exists for: generate power-law and
// grid graphs at n = 10^6, write, mmap-load both trusted and verified,
// demand bit-identity, and run pooled substrate rounds on the result.
// Minutes of work, so gated: CI's large-graph job sets DEC_LARGE_SMOKE=1.
TEST(CsrIo, LargeGraphSmoke) {
  if (std::getenv("DEC_LARGE_SMOKE") == nullptr) {
    GTEST_SKIP() << "set DEC_LARGE_SMOKE=1 to run the n=10^6 smoke";
  }
  Rng rng(42);
  const NodeId n = 1000000;
  const Graph pl = gen::power_law(n, 2.5, 8.0, rng);
  const Graph gr = gen::grid(1000, 1000);
  int i = 0;
  for (const Graph* g : {&pl, &gr}) {
    const std::string path = temp_path("large_" + std::to_string(i++));
    write_csr(path, *g);
    const Graph loaded = read_csr(path, CsrTrust::kTrusted);
    ASSERT_EQ(loaded.edge_list(), g->edge_list());
    ASSERT_EQ(loaded.num_nodes(), g->num_nodes());
    const Graph verified = read_csr(path, CsrTrust::kVerify);
    ASSERT_EQ(verified.edge_list(), g->edge_list());
    NetworkPool pool(1);
    auto lease = pool.network(loaded);
    for (int r = 0; r < 3; ++r) {
      lease->round_fast([](NodeId v, const Inbox&, Outbox& out) {
        for (auto& msg : out) msg = Message{v};
      });
    }
    EXPECT_EQ(lease->rounds_executed(), 3);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace dec
