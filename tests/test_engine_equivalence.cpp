// Cross-engine equivalence harness: every orchestrated solver must produce
// bit-identical outputs AND identical audited round counts on
//   * the legacy centralized engine (rounds asserted via counters),
//   * the message-passing engine (rounds measured on the substrate), and
//   * the parallel message-passing engine (2 and 4 shards).
// This is the evidence that lets the legacy implementations be deleted: the
// paper's round-complexity claims are charged identically no matter which
// engine executes them.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "core/token_dropping.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

// Everything that must match across engines (max_message_bits is
// intentionally absent: the legacy engine sends no real messages).
auto defective_key(const DefectiveResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.max_defect, r.sweeps,
                    r.converged);
}

auto token_key(const TokenDroppingResult& r) {
  return std::tuple(r.tokens, r.edge_passive, r.phases, r.rounds,
                    r.tokens_moved);
}

void check_precolor_equivalence(const Graph& g, int target_defect) {
  const LinialResult lin = linial_color(g);
  RoundLedger ledgers[4];
  const DefectiveResult legacy =
      defective_precolor(g, lin.colors, lin.palette, target_defect,
                         &ledgers[0], SolverEngine::kLegacy);
  const DefectiveResult runs[3] = {
      defective_precolor(g, lin.colors, lin.palette, target_defect,
                         &ledgers[1], SolverEngine::kMessagePassing, 1),
      defective_precolor(g, lin.colors, lin.palette, target_defect,
                         &ledgers[2], SolverEngine::kMessagePassing, 2),
      defective_precolor(g, lin.colors, lin.palette, target_defect,
                         &ledgers[3], SolverEngine::kMessagePassing, 4),
  };
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(defective_key(legacy), defective_key(runs[i])) << "engine " << i;
    EXPECT_EQ(ledgers[0].component("defective_precolor"),
              ledgers[i + 1].component("defective_precolor"));
    EXPECT_GT(runs[i].max_message_bits, 0);  // real messages were audited
  }
}

void check_refine_equivalence(const Graph& g, int num_colors, int threshold) {
  const LinialResult lin = linial_color(g);
  RoundLedger ledgers[4];
  const DefectiveResult legacy =
      defective_refine(g, lin.colors, lin.palette, num_colors, threshold, 256,
                       &ledgers[0], SolverEngine::kLegacy);
  const DefectiveResult runs[3] = {
      defective_refine(g, lin.colors, lin.palette, num_colors, threshold, 256,
                       &ledgers[1], SolverEngine::kMessagePassing, 1),
      defective_refine(g, lin.colors, lin.palette, num_colors, threshold, 256,
                       &ledgers[2], SolverEngine::kMessagePassing, 2),
      defective_refine(g, lin.colors, lin.palette, num_colors, threshold, 256,
                       &ledgers[3], SolverEngine::kMessagePassing, 4),
  };
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(defective_key(legacy), defective_key(runs[i])) << "engine " << i;
    EXPECT_EQ(ledgers[0].component("defective_refine"),
              ledgers[i + 1].component("defective_refine"));
  }
}

void check_token_dropping_equivalence(const Digraph& g,
                                      const TokenDroppingParams& p,
                                      const std::vector<int>& init) {
  RoundLedger ledgers[4];
  const TokenDroppingResult legacy =
      run_token_dropping(g, init, p, &ledgers[0], SolverEngine::kLegacy);
  const TokenDroppingResult runs[3] = {
      run_token_dropping(g, init, p, &ledgers[1],
                         SolverEngine::kMessagePassing, 1),
      run_token_dropping(g, init, p, &ledgers[2],
                         SolverEngine::kMessagePassing, 2),
      run_token_dropping(g, init, p, &ledgers[3],
                         SolverEngine::kMessagePassing, 4),
  };
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(token_key(legacy), token_key(runs[i])) << "engine " << i;
    EXPECT_EQ(ledgers[0].component("token_dropping"),
              ledgers[i + 1].component("token_dropping"));
  }
  if (legacy.tokens_moved > 0) {
    for (int i = 0; i < 3; ++i) EXPECT_GT(runs[i].max_message_bits, 0);
  }
}

std::vector<int> seeded_tokens(const Digraph& g, int k, Rng& rng) {
  std::vector<int> t(static_cast<std::size_t>(g.num_nodes()));
  for (auto& v : t) {
    v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(k) + 1));
  }
  return t;
}

TEST(EngineEquivalence, PrecolorRandom) {
  Rng rng(101);
  const Graph g = gen::gnp(150, 0.07, rng);
  for (const int p : {1, 2, 5}) check_precolor_equivalence(g, p);
}

TEST(EngineEquivalence, PrecolorGrid) {
  check_precolor_equivalence(gen::grid(11, 13), 1);
  check_precolor_equivalence(gen::grid(11, 13), 3);
}

TEST(EngineEquivalence, PrecolorStar) {
  // Worst case for shard balancing: the hub owns half the slots.
  check_precolor_equivalence(gen::star(64), 2);
}

TEST(EngineEquivalence, RefineRandom) {
  Rng rng(102);
  const Graph g = gen::random_regular(120, 10, rng);
  check_refine_equivalence(g, 4, 10 / 4 + 1);
  check_refine_equivalence(g, 3, 10 / 3 + 2);
}

TEST(EngineEquivalence, RefineGrid) {
  check_refine_equivalence(gen::grid(9, 14), 4, 2);
}

TEST(EngineEquivalence, RefineStar) {
  check_refine_equivalence(gen::star(80), 4, 80 / 4 + 1);
}

TEST(EngineEquivalence, RefineHonorsSweepCapIdentically) {
  // A threshold at the pigeonhole floor on a dense graph stresses many
  // sweeps; whatever the trajectory, the engines must walk it in lockstep.
  Rng rng(103);
  const Graph g = gen::gnp(60, 0.3, rng);
  check_refine_equivalence(g, 4, g.max_degree() / 4 + 1);
}

TEST(EngineEquivalence, TokenDroppingRandomGame) {
  Rng rng(104);
  const Digraph g = random_game(70, 0.08, rng);
  TokenDroppingParams p;
  p.k = 32;
  p.delta = 2;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 4);
  check_token_dropping_equivalence(g, p, seeded_tokens(g, p.k, rng));
}

TEST(EngineEquivalence, TokenDroppingLayeredGame) {
  Rng rng(105);
  const Digraph g = layered_game(5, 24, 4, rng);
  TokenDroppingParams p;
  p.k = 48;
  p.delta = 3;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 5);
  check_token_dropping_equivalence(g, p, seeded_tokens(g, p.k, rng));
}

TEST(EngineEquivalence, TokenDroppingAntiparallelStar) {
  // Hub <-> leaf arcs in both directions: every support edge carries two
  // lanes, exercising the adapter's multiplexed framing, and the hub makes
  // shard balancing maximally uneven.
  const NodeId leaves = 40;
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (NodeId i = 1; i <= leaves; ++i) {
    arcs.emplace_back(0, i);
    arcs.emplace_back(i, 0);
  }
  const Digraph g(leaves + 1, std::move(arcs));
  TokenDroppingParams p;
  p.k = 24;
  p.delta = 2;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 3);
  std::vector<int> init(static_cast<std::size_t>(g.num_nodes()), 0);
  init[0] = p.k;  // the hub starts full and must shed load
  for (NodeId i = 1; i <= leaves; ++i) {
    init[static_cast<std::size_t>(i)] = (i % 2 == 0) ? p.k : 0;
  }
  check_token_dropping_equivalence(g, p, init);
}

TEST(EngineEquivalence, TokenDroppingSeededSweep) {
  // Many small seeded instances so a divergence in any deterministic
  // tie-break shows up somewhere.
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(200 + static_cast<std::uint64_t>(seed));
    const Digraph g = seed % 2 == 0
                          ? random_game(40 + seed, 0.1, rng)
                          : layered_game(3 + seed % 3, 12, 3, rng);
    TokenDroppingParams p;
    p.k = 16 + 8 * (seed % 3);
    p.delta = 1 + seed % 3;
    p.alpha.assign(static_cast<std::size_t>(g.num_nodes()),
                   p.delta + seed % 3);
    check_token_dropping_equivalence(g, p, seeded_tokens(g, p.k, rng));
  }
}

}  // namespace
}  // namespace dec
