// Cross-engine equivalence harness: every orchestrated solver runs as node
// programs on the simulation substrate, and the serial round engine must
// produce bit-identical outputs AND identical audited round counts to the
// parallel round engine at 2 and 4 shards. This is the evidence behind the
// parallel engine's "bit-identical to serial" contract (per-shard state
// confinement + order-independent audit merges) — the legacy centralized
// implementations were deleted once the PR-2 harness had proven them
// equivalent, so serial-substrate is now the reference.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "core/defective2ec.hpp"
#include "core/token_dropping.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

// Everything that must match across engines. max_message_bits and messages
// are included: the parallel engine merges per-shard audits with
// order-independent ops, so they must be deterministic too.
auto defective_key(const DefectiveResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.max_defect, r.sweeps,
                    r.converged, r.max_message_bits, r.messages);
}

auto token_key(const TokenDroppingResult& r) {
  return std::tuple(r.tokens, r.edge_passive, r.phases, r.rounds,
                    r.tokens_moved, r.max_message_bits);
}

std::vector<NodeId> heads_of(const Orientation& o) {
  std::vector<NodeId> heads(
      static_cast<std::size_t>(o.graph().num_edges()));
  for (EdgeId e = 0; e < o.graph().num_edges(); ++e) {
    heads[static_cast<std::size_t>(e)] = o.head(e);
  }
  return heads;
}

auto orientation_key(const BalancedOrientationResult& r) {
  return std::tuple(heads_of(r.orientation), r.phases, r.rounds, r.flips,
                    r.leftover_edges, r.leftover_edge, r.max_excess,
                    r.max_message_bits);
}

auto d2ec_key(const Defective2ECResult& r) {
  return std::tuple(r.is_red, r.phases, r.rounds, r.beta_used, r.beta_emp,
                    r.max_message_bits);
}

void check_precolor_equivalence(const Graph& g, int target_defect) {
  const LinialResult lin = linial_color(g);
  RoundLedger ledgers[3];
  const DefectiveResult serial = defective_precolor(
      g, lin.colors, lin.palette, target_defect, &ledgers[0], 1);
  EXPECT_GT(serial.max_message_bits, 0);  // real messages were audited
  for (int i = 0; i < 2; ++i) {
    const int threads = i == 0 ? 2 : 4;
    const DefectiveResult parallel = defective_precolor(
        g, lin.colors, lin.palette, target_defect, &ledgers[i + 1], threads);
    EXPECT_EQ(defective_key(serial), defective_key(parallel))
        << "threads " << threads;
    EXPECT_EQ(ledgers[0].component("defective_precolor"),
              ledgers[i + 1].component("defective_precolor"));
  }
}

void check_refine_equivalence(const Graph& g, int num_colors, int threshold) {
  const LinialResult lin = linial_color(g);
  RoundLedger ledgers[3];
  const DefectiveResult serial =
      defective_refine(g, lin.colors, lin.palette, num_colors, threshold, 256,
                       &ledgers[0], 1);
  for (int i = 0; i < 2; ++i) {
    const int threads = i == 0 ? 2 : 4;
    const DefectiveResult parallel =
        defective_refine(g, lin.colors, lin.palette, num_colors, threshold,
                         256, &ledgers[i + 1], threads);
    EXPECT_EQ(defective_key(serial), defective_key(parallel))
        << "threads " << threads;
    EXPECT_EQ(ledgers[0].component("defective_refine"),
              ledgers[i + 1].component("defective_refine"));
  }
}

void check_token_dropping_equivalence(const Digraph& g,
                                      const TokenDroppingParams& p,
                                      const std::vector<int>& init) {
  RoundLedger ledgers[3];
  const TokenDroppingResult serial =
      run_token_dropping(g, init, p, &ledgers[0], 1);
  for (int i = 0; i < 2; ++i) {
    const int threads = i == 0 ? 2 : 4;
    const TokenDroppingResult parallel =
        run_token_dropping(g, init, p, &ledgers[i + 1], threads);
    EXPECT_EQ(token_key(serial), token_key(parallel)) << "threads " << threads;
    EXPECT_EQ(ledgers[0].component("token_dropping"),
              ledgers[i + 1].component("token_dropping"));
  }
  if (serial.tokens_moved > 0) EXPECT_GT(serial.max_message_bits, 0);
}

void check_orientation_equivalence(const BipartiteGraph& bg,
                                   const std::vector<double>& eta, double nu) {
  OrientationParams p;
  p.nu = nu;
  RoundLedger ledgers[3];
  const BalancedOrientationResult serial =
      balanced_orientation(bg.graph, bg.parts, eta, p, &ledgers[0], 1);
  EXPECT_EQ(serial.orientation.num_oriented(), bg.graph.num_edges());
  if (bg.graph.num_edges() > 0) EXPECT_GT(serial.max_message_bits, 0);
  for (int i = 0; i < 2; ++i) {
    const int threads = i == 0 ? 2 : 4;
    const BalancedOrientationResult parallel =
        balanced_orientation(bg.graph, bg.parts, eta, p, &ledgers[i + 1],
                             threads);
    EXPECT_EQ(orientation_key(serial), orientation_key(parallel))
        << "threads " << threads;
    // The whole breakdown (phase rounds AND embedded game rounds) must
    // agree, component by component.
    EXPECT_EQ(ledgers[0].breakdown(), ledgers[i + 1].breakdown())
        << "threads " << threads;
  }
}

void check_d2ec_equivalence(const BipartiteGraph& bg,
                            const std::vector<double>& lambda, double eps) {
  RoundLedger ledgers[3];
  const Defective2ECResult serial = defective_2_edge_coloring(
      bg.graph, bg.parts, lambda, eps, ParamMode::kPractical, &ledgers[0], 1);
  for (int i = 0; i < 2; ++i) {
    const int threads = i == 0 ? 2 : 4;
    const Defective2ECResult parallel =
        defective_2_edge_coloring(bg.graph, bg.parts, lambda, eps,
                                  ParamMode::kPractical, &ledgers[i + 1],
                                  threads);
    EXPECT_EQ(d2ec_key(serial), d2ec_key(parallel)) << "threads " << threads;
    EXPECT_EQ(ledgers[0].breakdown(), ledgers[i + 1].breakdown())
        << "threads " << threads;
  }
}

std::vector<int> seeded_tokens(const Digraph& g, int k, Rng& rng) {
  std::vector<int> t(static_cast<std::size_t>(g.num_nodes()));
  for (auto& v : t) {
    v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(k) + 1));
  }
  return t;
}

std::vector<double> seeded_eta(const Graph& g, Rng& rng, double spread) {
  std::vector<double> eta(static_cast<std::size_t>(g.num_edges()));
  for (auto& v : eta) v = spread * (2.0 * rng.next_double() - 1.0);
  return eta;
}

std::vector<double> seeded_lambda(const Graph& g, Rng& rng) {
  std::vector<double> lambda(static_cast<std::size_t>(g.num_edges()));
  for (auto& v : lambda) v = rng.next_double();
  return lambda;
}

BipartiteGraph bipartite_of(Graph g) {
  const auto parts = try_bipartition(g);
  EXPECT_TRUE(parts.has_value());
  return BipartiteGraph{std::move(g), *parts};
}

TEST(EngineEquivalence, PrecolorRandom) {
  Rng rng(101);
  const Graph g = gen::gnp(150, 0.07, rng);
  for (const int p : {1, 2, 5}) check_precolor_equivalence(g, p);
}

TEST(EngineEquivalence, PrecolorGrid) {
  check_precolor_equivalence(gen::grid(11, 13), 1);
  check_precolor_equivalence(gen::grid(11, 13), 3);
}

TEST(EngineEquivalence, PrecolorStar) {
  // Worst case for shard balancing: the hub owns half the slots.
  check_precolor_equivalence(gen::star(64), 2);
}

TEST(EngineEquivalence, RefineRandom) {
  Rng rng(102);
  const Graph g = gen::random_regular(120, 10, rng);
  check_refine_equivalence(g, 4, 10 / 4 + 1);
  check_refine_equivalence(g, 3, 10 / 3 + 2);
}

TEST(EngineEquivalence, RefineGrid) {
  check_refine_equivalence(gen::grid(9, 14), 4, 2);
}

TEST(EngineEquivalence, RefineStar) {
  check_refine_equivalence(gen::star(80), 4, 80 / 4 + 1);
}

TEST(EngineEquivalence, RefineHonorsSweepCapIdentically) {
  // A threshold at the pigeonhole floor on a dense graph stresses many
  // sweeps; whatever the trajectory, the engines must walk it in lockstep.
  Rng rng(103);
  const Graph g = gen::gnp(60, 0.3, rng);
  check_refine_equivalence(g, 4, g.max_degree() / 4 + 1);
}

TEST(EngineEquivalence, TokenDroppingRandomGame) {
  Rng rng(104);
  const Digraph g = random_game(70, 0.08, rng);
  TokenDroppingParams p;
  p.k = 32;
  p.delta = 2;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 4);
  check_token_dropping_equivalence(g, p, seeded_tokens(g, p.k, rng));
}

TEST(EngineEquivalence, TokenDroppingLayeredGame) {
  Rng rng(105);
  const Digraph g = layered_game(5, 24, 4, rng);
  TokenDroppingParams p;
  p.k = 48;
  p.delta = 3;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 5);
  check_token_dropping_equivalence(g, p, seeded_tokens(g, p.k, rng));
}

TEST(EngineEquivalence, TokenDroppingAntiparallelStar) {
  // Hub <-> leaf arcs in both directions: every support edge carries two
  // lanes, exercising the adapter's multiplexed framing, and the hub makes
  // shard balancing maximally uneven.
  const NodeId leaves = 40;
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (NodeId i = 1; i <= leaves; ++i) {
    arcs.emplace_back(0, i);
    arcs.emplace_back(i, 0);
  }
  const Digraph g(leaves + 1, std::move(arcs));
  TokenDroppingParams p;
  p.k = 24;
  p.delta = 2;
  p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), 3);
  std::vector<int> init(static_cast<std::size_t>(g.num_nodes()), 0);
  init[0] = p.k;  // the hub starts full and must shed load
  for (NodeId i = 1; i <= leaves; ++i) {
    init[static_cast<std::size_t>(i)] = (i % 2 == 0) ? p.k : 0;
  }
  check_token_dropping_equivalence(g, p, init);
}

TEST(EngineEquivalence, TokenDroppingSeededSweep) {
  // Many small seeded instances so a divergence in any deterministic
  // tie-break shows up somewhere.
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(200 + static_cast<std::uint64_t>(seed));
    const Digraph g = seed % 2 == 0
                          ? random_game(40 + seed, 0.1, rng)
                          : layered_game(3 + seed % 3, 12, 3, rng);
    TokenDroppingParams p;
    p.k = 16 + 8 * (seed % 3);
    p.delta = 1 + seed % 3;
    p.alpha.assign(static_cast<std::size_t>(g.num_nodes()),
                   p.delta + seed % 3);
    check_token_dropping_equivalence(g, p, seeded_tokens(g, p.k, rng));
  }
}

// ---- balanced orientation & defective 2EC (the PR-3 ports) --------------
// Three bipartite graph families, >= 20 seeds each; the seed drives the
// graph (random family), the η / λ inputs, and the ν parameter, so the
// token-dropping games embedded in the phases differ run to run.

TEST(EngineEquivalence, OrientationRandomBipartite) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(300 + static_cast<std::uint64_t>(seed));
    const auto bg = gen::random_bipartite(
        24 + seed, 20 + (seed * 3) % 11, 0.12 + 0.01 * (seed % 5), rng);
    const double nu = seed % 2 == 0 ? 0.125 : 0.0625;
    check_orientation_equivalence(bg, seeded_eta(bg.graph, rng, 3.0), nu);
  }
}

TEST(EngineEquivalence, OrientationGrid) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(340 + static_cast<std::uint64_t>(seed));
    const auto bg =
        bipartite_of(gen::grid(5 + seed % 4, 6 + (seed * 7) % 5));
    check_orientation_equivalence(bg, seeded_eta(bg.graph, rng, 2.0), 0.125);
  }
}

TEST(EngineEquivalence, OrientationStar) {
  // The hub owns half the slots: worst case for shard balancing, and the
  // embedded games degenerate to hub-centered stars.
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(380 + static_cast<std::uint64_t>(seed));
    const auto bg = bipartite_of(gen::star(30 + 2 * seed));
    check_orientation_equivalence(bg, seeded_eta(bg.graph, rng, 4.0), 0.125);
  }
}

TEST(EngineEquivalence, OrientationRegularBipartite) {
  // Denser regular instances push many phases and non-trivial games.
  const auto bg = gen::regular_bipartite(48, 12);
  const std::vector<double> eta(
      static_cast<std::size_t>(bg.graph.num_edges()), 0.0);
  check_orientation_equivalence(bg, eta, 0.0625);
}

TEST(EngineEquivalence, Defective2ECRandomBipartite) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(400 + static_cast<std::uint64_t>(seed));
    const auto bg = gen::random_bipartite(
        22 + seed, 18 + (seed * 5) % 13, 0.15, rng);
    const double eps = seed % 2 == 0 ? 1.0 : 0.5;
    check_d2ec_equivalence(bg, seeded_lambda(bg.graph, rng), eps);
  }
}

TEST(EngineEquivalence, Defective2ECGrid) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(440 + static_cast<std::uint64_t>(seed));
    const auto bg =
        bipartite_of(gen::grid(4 + seed % 5, 5 + (seed * 3) % 6));
    check_d2ec_equivalence(bg, seeded_lambda(bg.graph, rng), 1.0);
  }
}

TEST(EngineEquivalence, Defective2ECStar) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(480 + static_cast<std::uint64_t>(seed));
    const auto bg = bipartite_of(gen::star(25 + 3 * seed));
    check_d2ec_equivalence(bg, seeded_lambda(bg.graph, rng),
                           seed % 2 == 0 ? 1.0 : 0.5);
  }
}

}  // namespace
}  // namespace dec
