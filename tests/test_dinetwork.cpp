// Directed-adapter tests: arc-indexed delivery in both directions, lane
// multiplexing for anti-parallel and parallel arcs, the free drain, audit
// accounting, and serial-vs-parallel equivalence of a directed node program.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/token_dropping.hpp"
#include "sim/dinetwork.hpp"
#include "util/rng.hpp"

namespace dec {
namespace {

TEST(DiNetwork, DeliversAlongArcs) {
  // Directed cycle 0 -> 1 -> 2 -> 0: along-messages reach heads, nothing
  // arrives against the direction unless sent.
  const Digraph g(3, {{0, 1}, {1, 2}, {2, 0}});
  DiNetwork net(g);
  net.round_fast([](NodeId v, const DiInbox&, DiOutbox& out) {
    out.along(0, {10 + v});
  });
  net.round_fast([&](NodeId v, const DiInbox& in, DiOutbox&) {
    ASSERT_EQ(g.in(v).size(), 1u);
    const ArcView got = in.along(0);
    ASSERT_FALSE(got.empty());
    EXPECT_EQ(got.at(0), 10 + g.in(v)[0].node);
    EXPECT_TRUE(in.against(0).empty());  // nothing flowed backwards
  });
  EXPECT_EQ(net.rounds_executed(), 2);
}

TEST(DiNetwork, DeliversAgainstArcs) {
  const Digraph g(3, {{0, 1}, {1, 2}, {2, 0}});
  DiNetwork net(g);
  net.round_fast([](NodeId v, const DiInbox&, DiOutbox& out) {
    out.against(0, {100 + v, 7});  // head replies toward its in-arc's tail
  });
  net.round_fast([&](NodeId v, const DiInbox& in, DiOutbox&) {
    const ArcView got = in.against(0);  // read on the out-arc at the tail
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got.at(0), 100 + g.out(v)[0].node);
    EXPECT_EQ(got.at(1), 7);
    EXPECT_TRUE(in.along(0).empty());
  });
}

TEST(DiNetwork, AntiparallelArcsAreIndependentLanes) {
  // 0 <-> 1: one support edge, two lanes; both forward channels used in the
  // same round must not interfere.
  const Digraph g(2, {{0, 1}, {1, 0}});
  DiNetwork net(g);
  EXPECT_EQ(net.support().num_edges(), 1);
  EXPECT_EQ(net.lane_count(0), 2u);
  EXPECT_EQ(net.lane_count(1), 2u);
  EXPECT_NE(net.lane(0), net.lane(1));

  net.round_fast([](NodeId v, const DiInbox&, DiOutbox& out) {
    out.along(0, {1000 + v});        // forward on my out-arc
    out.against(0, {2000 + v, 42});  // backward on my in-arc
  });
  net.round_fast([](NodeId v, const DiInbox& in, DiOutbox&) {
    const NodeId peer = 1 - v;
    const ArcView fwd = in.along(0);  // peer's forward send on my in-arc
    ASSERT_EQ(fwd.size(), 1u);
    EXPECT_EQ(fwd.at(0), 1000 + peer);
    const ArcView bwd = in.against(0);  // peer's backward send on my out-arc
    ASSERT_EQ(bwd.size(), 2u);
    EXPECT_EQ(bwd.at(0), 2000 + peer);
    EXPECT_EQ(bwd.at(1), 42);
  });
}

TEST(DiNetwork, ParallelArcsAreIndependentLanes) {
  // Two arcs 0 -> 1: one support edge, two lanes, distinct payloads per arc.
  const Digraph g(2, {{0, 1}, {0, 1}});
  DiNetwork net(g);
  EXPECT_EQ(net.support().num_edges(), 1);
  EXPECT_EQ(net.lane_count(0), 2u);
  net.round_fast([](NodeId v, const DiInbox&, DiOutbox& out) {
    if (v == 0) {
      out.along(0, {11});
      out.along(1, {22, 23});
    }
  });
  net.round_fast([](NodeId v, const DiInbox& in, DiOutbox&) {
    if (v == 1) {
      ASSERT_EQ(in.along(0).size(), 1u);
      EXPECT_EQ(in.along(0).at(0), 11);
      ASSERT_EQ(in.along(1).size(), 2u);
      EXPECT_EQ(in.along(1).at(0), 22);
      EXPECT_EQ(in.along(1).at(1), 23);
    }
  });
}

TEST(DiNetwork, PartialLaneWritesLeaveOtherLanesEmpty) {
  // Only one lane of a two-lane edge written: the other must read empty,
  // not garbage from the frame.
  const Digraph g(2, {{0, 1}, {1, 0}});
  DiNetwork net(g);
  net.round_fast([](NodeId v, const DiInbox&, DiOutbox& out) {
    if (v == 0) out.along(0, {5});
  });
  net.round_fast([](NodeId v, const DiInbox& in, DiOutbox&) {
    if (v == 1) {
      ASSERT_EQ(in.along(0).size(), 1u);
      EXPECT_EQ(in.along(0).at(0), 5);
      EXPECT_TRUE(in.against(0).empty());
    }
    if (v == 0) {
      EXPECT_TRUE(in.along(0).empty());
      EXPECT_TRUE(in.against(0).empty());
    }
  });
}

TEST(DiNetwork, SingleLanePayloadsAreUnframed) {
  // With one lane per support edge the wire format is the raw payload, so
  // the audit charges exactly the solver's bits (here one field of value 5).
  const Digraph g(2, {{0, 1}});
  DiNetwork net(g);
  net.round_fast([](NodeId v, const DiInbox&, DiOutbox& out) {
    if (v == 0) out.along(0, {5});
  });
  EXPECT_EQ(net.audit().messages_sent(), 1);
  EXPECT_EQ(net.audit().max_bits(), field_bits(5));
}

TEST(DiNetwork, DrainReadsLastRoundWithoutCharging) {
  const Digraph g(2, {{0, 1}});
  RoundLedger ledger;
  DiNetwork net(g, &ledger, "dtest");
  net.round_fast([](NodeId v, const DiInbox&, DiOutbox& out) {
    if (v == 0) out.along(0, {9});
  });
  bool saw = false;
  net.drain_fast([&](NodeId v, const DiInbox& in) {
    if (v == 1 && !in.along(0).empty() && in.along(0).at(0) == 9) saw = true;
  });
  EXPECT_TRUE(saw);
  EXPECT_EQ(net.rounds_executed(), 1);
  EXPECT_EQ(ledger.component("dtest"), 1);
}

TEST(DiNetwork, ChargesLedgerPerRound) {
  const Digraph g(3, {{0, 1}, {1, 2}});
  RoundLedger ledger;
  DiNetwork net(g, &ledger, "game");
  for (int r = 0; r < 5; ++r) {
    net.round_fast([](NodeId, const DiInbox&, DiOutbox&) {});
  }
  EXPECT_EQ(ledger.component("game"), 5);
  EXPECT_EQ(net.rounds_executed(), 5);
}

TEST(DiNetwork, RejectsOverwidePayload) {
  const Digraph g(2, {{0, 1}});
  DiNetwork net(g);
  EXPECT_THROW(
      net.round_fast([](NodeId v, const DiInbox&, DiOutbox& out) {
        if (v == 0) out.along(0, {1, 2, 3, 4, 5});  // > kMaxArcFields
      }),
      CheckError);
}

// The same deterministic directed program on 1 vs 4 shards must agree on
// states, audit, and round count (the undirected engine already proves this
// for SyncNetwork; this covers the adapter's scratch/packing layer).
void check_directed_engine_equivalence(const Digraph& g) {
  auto run = [&](int threads) {
    DiNetwork net(g, nullptr, "d", threads);
    std::vector<std::int64_t> state(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      state[static_cast<std::size_t>(v)] = v + 1;
    }
    for (int r = 0; r < 6; ++r) {
      std::vector<std::int64_t> next(state);
      net.round_fast([&](NodeId v, const DiInbox& in, DiOutbox& out) {
        std::int64_t acc = state[static_cast<std::size_t>(v)];
        for (std::size_t j = 0; j < g.in(v).size(); ++j) {
          const ArcView m = in.along(j);
          for (std::size_t i = 0; i < m.size(); ++i) acc += m.at(i) * 13;
        }
        for (std::size_t j = 0; j < g.out(v).size(); ++j) {
          const ArcView m = in.against(j);
          for (std::size_t i = 0; i < m.size(); ++i) acc -= m.at(i) * 7;
        }
        next[static_cast<std::size_t>(v)] = acc;
        // Odd rounds only send forward; even rounds also reply backward, so
        // stale lanes and absent messages are exercised.
        for (std::size_t j = 0; j < g.out(v).size(); ++j) {
          if ((v + r) % 3 != 0) out.along(j, {acc, v});
        }
        if (r % 2 == 0) {
          for (std::size_t j = 0; j < g.in(v).size(); ++j) {
            out.against(j, {acc ^ 17});
          }
        }
      });
      state = std::move(next);
    }
    return std::tuple(state, net.audit().max_bits(),
                      net.audit().messages_sent(), net.rounds_executed());
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(DiNetwork, ParallelMatchesSerialOnRandomGame) {
  Rng rng(77);
  check_directed_engine_equivalence(random_game(80, 0.06, rng));
}

TEST(DiNetwork, ParallelMatchesSerialOnLayeredGame) {
  Rng rng(78);
  check_directed_engine_equivalence(layered_game(4, 20, 3, rng));
}

TEST(DiNetwork, ParallelMatchesSerialWithAntiparallelPairs) {
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (NodeId i = 1; i <= 30; ++i) {
    arcs.emplace_back(0, i);
    arcs.emplace_back(i, 0);
  }
  check_directed_engine_equivalence(Digraph(31, std::move(arcs)));
}

}  // namespace
}  // namespace dec
