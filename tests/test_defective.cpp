// Tests for defective vertex coloring (Lemma 6.2 machinery).
#include <gtest/gtest.h>

#include <algorithm>

#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

int max_defect(const Graph& g, const std::vector<Color>& colors) {
  const auto d = vertex_defects(g, colors);
  return d.empty() ? 0 : *std::max_element(d.begin(), d.end());
}

TEST(DefectivePrecolor, MeetsDefectTarget) {
  Rng rng(30);
  const Graph g = gen::random_regular(300, 12, rng);
  const LinialResult lin = linial_color(g);
  for (const int p : {1, 2, 4, 12}) {
    const DefectiveResult r = defective_precolor(g, lin.colors, lin.palette, p);
    EXPECT_LE(r.max_defect, p) << "p=" << p;
    EXPECT_EQ(r.rounds, 1);
    for (const Color c : r.colors) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, r.palette);
    }
  }
}

TEST(DefectivePrecolor, PaletteShrinksWithDefectBudget) {
  Rng rng(31);
  const Graph g = gen::random_regular(400, 16, rng);
  const LinialResult lin = linial_color(g);
  const DefectiveResult tight =
      defective_precolor(g, lin.colors, lin.palette, 1);
  const DefectiveResult loose =
      defective_precolor(g, lin.colors, lin.palette, 8);
  EXPECT_LT(loose.palette, tight.palette);
}

TEST(DefectivePrecolor, RejectsBadInput) {
  const Graph g = gen::path(4);
  EXPECT_THROW(defective_precolor(g, {0, 0, 1, 2}, 3, 1), CheckError);
  EXPECT_THROW(defective_precolor(g, {0, 1, 0, 1}, 2, 0), CheckError);
}

TEST(DefectiveRefine, ConvergesAndMeetsThreshold) {
  Rng rng(32);
  const Graph g = gen::random_regular(200, 12, rng);
  const LinialResult lin = linial_color(g);
  const int threshold = 12 / 4 + 2;
  const DefectiveResult r = defective_refine(g, lin.colors, lin.palette, 4,
                                             threshold, 128);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.max_defect, threshold);
  EXPECT_EQ(r.palette, 4);
}

TEST(DefectiveRefine, RejectsImpossibleThreshold) {
  const Graph g = gen::complete(9);
  std::vector<Color> classes(9);
  for (int i = 0; i < 9; ++i) classes[static_cast<std::size_t>(i)] = i;
  // threshold below ⌊Δ/C⌋+1 can livelock; the API rejects it.
  EXPECT_THROW(defective_refine(g, classes, 9, 4, 2, 10), CheckError);
}

TEST(Defective4Coloring, Lemma62Contract) {
  Rng rng(33);
  for (const int d : {8, 16, 24}) {
    const Graph g = gen::random_regular(240, d, rng);
    const LinialResult lin = linial_color(g);
    for (const double eps : {0.25, 0.5}) {
      const DefectiveResult r =
          defective_4_coloring(g, lin.colors, lin.palette, eps);
      const int target = static_cast<int>(eps * d) + d / 2;
      EXPECT_LE(r.max_defect, target) << "d=" << d << " eps=" << eps;
      EXPECT_LE(r.palette, 4);
      EXPECT_EQ(max_defect(g, r.colors), r.max_defect);
    }
  }
}

TEST(Defective4Coloring, MatchingEdgeCase) {
  // Δ = 1: target defect 0 for tiny eps forces a proper coloring.
  const auto bg = gen::regular_bipartite(6, 1);
  const LinialResult lin = linial_color(bg.graph);
  const DefectiveResult r =
      defective_4_coloring(bg.graph, lin.colors, lin.palette, 0.1);
  EXPECT_EQ(r.max_defect, 0);
}

TEST(Defective4Coloring, EmptyGraph) {
  const Graph g = gen::empty(5);
  const DefectiveResult r = defective_4_coloring(g, {0, 0, 0, 0, 0}, 1, 0.5);
  EXPECT_EQ(r.max_defect, 0);
}

TEST(DefectiveSplit, TheoremD4Setting) {
  Rng rng(34);
  const Graph g = gen::random_regular(300, 16, rng);
  const LinialResult lin = linial_color(g);
  const int target = std::max(16 / 4 + 1, 16 / 2);
  const DefectiveResult r = defective_split_coloring(g, lin.colors,
                                                     lin.palette, 4, target);
  EXPECT_LE(r.max_defect, target);
  EXPECT_LE(r.palette, 4);
}

TEST(DefectiveSplit, RejectsPigeonholeViolation) {
  const Graph g = gen::complete(9);
  const LinialResult lin = linial_color(g);
  EXPECT_THROW(
      defective_split_coloring(g, lin.colors, lin.palette, 4, 8 / 4),
      CheckError);
}

TEST(DefectiveRefine, PropertyThresholdSweep) {
  // Property harness over ~50 seeded graphs: wherever the threshold local
  // search converges on the message-passing engine, every node's defect is
  // at most the move threshold, and the audited round count is exactly
  // 2 rounds x classes x sweeps.
  for (int seed = 0; seed < 50; ++seed) {
    Rng rng(700 + static_cast<std::uint64_t>(seed));
    const Graph g = seed % 2 == 0
                        ? gen::gnp(60 + seed, 0.05 + 0.002 * (seed % 10), rng)
                        : gen::random_regular(64 + 2 * (seed / 2),
                                              4 + 2 * (seed % 4), rng);
    if (g.max_degree() < 2) continue;
    const LinialResult lin = linial_color(g);
    const int threshold = g.max_degree() / 4 + 1 + seed % 3;
    RoundLedger ledger;
    const DefectiveResult r = defective_refine(g, lin.colors, lin.palette, 4,
                                               threshold, 256, &ledger);
    EXPECT_TRUE(r.converged) << "seed=" << seed;
    EXPECT_LE(r.max_defect, threshold) << "seed=" << seed;
    EXPECT_EQ(r.max_defect, max_defect(g, r.colors)) << "seed=" << seed;
    EXPECT_EQ(r.rounds,
              static_cast<std::int64_t>(2) * lin.palette * r.sweeps)
        << "seed=" << seed;
    EXPECT_EQ(ledger.component("defective_refine"), r.rounds)
        << "seed=" << seed;
    for (const Color c : r.colors) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 4);
    }
  }
}

// Property sweep: the Lemma 6.2 bound across graph families and ε.
struct DefCase {
  int family;
  double eps;
};
class DefectiveSweep : public ::testing::TestWithParam<DefCase> {};

TEST_P(DefectiveSweep, BoundHolds) {
  Rng rng(35);
  const auto [family, eps] = GetParam();
  Graph g = family == 0   ? gen::random_regular(200, 10, rng)
            : family == 1 ? gen::gnp(200, 0.08, rng)
                          : gen::power_law(200, 2.5, 8.0, rng);
  const LinialResult lin = linial_color(g);
  const DefectiveResult r = defective_4_coloring(g, lin.colors, lin.palette, eps);
  EXPECT_LE(r.max_defect,
            static_cast<int>(eps * g.max_degree()) + g.max_degree() / 2);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesEps, DefectiveSweep,
    ::testing::Values(DefCase{0, 0.25}, DefCase{0, 0.5}, DefCase{1, 0.25},
                      DefCase{1, 0.5}, DefCase{2, 0.25}, DefCase{2, 0.5}));

}  // namespace
}  // namespace dec
