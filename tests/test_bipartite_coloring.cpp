// Tests for the (2+ε)Δ bipartite edge coloring (Lemma 6.1).
#include <gtest/gtest.h>

#include "core/bipartite_coloring.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

TEST(BipartiteColoring, ProperOnRegularGraphs) {
  for (const int d : {4, 8, 16}) {
    const auto bg = gen::regular_bipartite(8 * d, d);
    const auto r = bipartite_edge_coloring(bg.graph, bg.parts, 1.0);
    EXPECT_TRUE(is_complete_proper_edge_coloring(bg.graph, r.colors));
    for (const Color c : r.colors) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, r.palette);
    }
  }
}

TEST(BipartiteColoring, PaletteWithinTwoPlusEpsDelta) {
  for (const int d : {8, 16, 32, 64}) {
    const auto bg = gen::regular_bipartite(4 * d, d);
    const auto r = bipartite_edge_coloring(bg.graph, bg.parts, 1.0);
    // (2+ε)Δ with ε = 1: palette <= 3Δ.
    EXPECT_LE(r.palette, 3 * d) << "d=" << d;
    EXPECT_TRUE(is_complete_proper_edge_coloring(bg.graph, r.colors));
  }
}

TEST(BipartiteColoring, ShardedRunsAreBitIdentical) {
  // The recursive halving feeds every split through the substrate's
  // defective 2EC; sharding that engine must not change a single color or
  // the parallel-part round accounting.
  const auto bg = gen::regular_bipartite(64, 16);
  RoundLedger serial_ledger;
  const auto serial = bipartite_edge_coloring(bg.graph, bg.parts, 1.0,
                                              ParamMode::kPractical,
                                              &serial_ledger, 1);
  for (const int threads : {2, 4}) {
    RoundLedger ledger;
    const auto parallel = bipartite_edge_coloring(
        bg.graph, bg.parts, 1.0, ParamMode::kPractical, &ledger, threads);
    EXPECT_EQ(serial.colors, parallel.colors) << "threads " << threads;
    EXPECT_EQ(serial.rounds, parallel.rounds) << "threads " << threads;
    EXPECT_EQ(serial.palette, parallel.palette) << "threads " << threads;
    EXPECT_EQ(serial_ledger.breakdown(), ledger.breakdown())
        << "threads " << threads;
  }
}

TEST(BipartiteColoring, DisjointRangesPerPart) {
  const auto bg = gen::regular_bipartite(256, 128);
  const auto r = bipartite_edge_coloring(bg.graph, bg.parts, 1.0);
  EXPECT_TRUE(is_complete_proper_edge_coloring(bg.graph, r.colors));
  if (r.levels > 0) {
    EXPECT_EQ(r.palette, (1 << r.levels) * (r.leaf_degree_bound + 1));
  }
}

TEST(BipartiteColoring, IrregularGraphs) {
  Rng rng(80);
  const auto bg = gen::random_bipartite(120, 120, 0.1, rng);
  const auto r = bipartite_edge_coloring(bg.graph, bg.parts, 0.5);
  EXPECT_TRUE(is_complete_proper_edge_coloring(bg.graph, r.colors));
  EXPECT_LE(r.palette, 2 * bg.graph.max_edge_degree() + 8);
}

TEST(BipartiteColoring, EmptyGraph) {
  const auto bg = gen::regular_bipartite(4, 0);
  const auto r = bipartite_edge_coloring(bg.graph, bg.parts, 1.0);
  EXPECT_EQ(r.palette, 0);
}

TEST(BipartiteColoring, SmallEpsilonSkipsSplitting) {
  // A tight palette budget forbids levels; the leaf pipeline handles all.
  const auto bg = gen::regular_bipartite(64, 8);
  const auto r = bipartite_edge_coloring(bg.graph, bg.parts, 0.05);
  EXPECT_EQ(r.levels, 0);
  EXPECT_LE(r.palette, bg.graph.max_edge_degree() + 1);
  EXPECT_TRUE(is_complete_proper_edge_coloring(bg.graph, r.colors));
}

TEST(BipartiteColoring, RejectsBadEps) {
  const auto bg = gen::regular_bipartite(4, 1);
  EXPECT_THROW(bipartite_edge_coloring(bg.graph, bg.parts, 0.0), CheckError);
  EXPECT_THROW(bipartite_edge_coloring(bg.graph, bg.parts, 1.5), CheckError);
}

TEST(BipartiteColoring, MatchingIsOneColor) {
  const auto bg = gen::regular_bipartite(10, 1);
  const auto r = bipartite_edge_coloring(bg.graph, bg.parts, 1.0);
  EXPECT_LE(r.palette, 1);
  EXPECT_TRUE(is_complete_proper_edge_coloring(bg.graph, r.colors));
}

}  // namespace
}  // namespace dec
