// Tests for Lemma D.3 slack boosting / partial coloring.
#include <gtest/gtest.h>

#include <cmath>

#include "coloring/linial.hpp"
#include "core/slack_boost.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

TEST(SlackBoost, MeetsDegreeContract) {
  Rng rng(110);
  const auto bg = gen::regular_bipartite(96, 12);
  const Graph& g = bg.graph;
  const ListEdgeInstance inst = make_full_palette_instance(g);
  const LinialResult schedule = linial_edge_color(g);
  std::vector<Color> colors(static_cast<std::size_t>(g.num_edges()),
                            kUncolored);
  for (const int k : {2, 4, 8}) {
    auto c = colors;
    const BoostStats stats =
        boost_partial_color(g, bg.parts, inst, std::exp(2.0), k,
                            schedule.colors, schedule.palette, c);
    EXPECT_LE(stats.final_uncolored_degree,
              (g.max_edge_degree() + k - 1) / k)
        << "k=" << k;
    EXPECT_TRUE(is_proper_edge_coloring(g, c));
    // Colored edges must use list colors.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (c[static_cast<std::size_t>(e)] != kUncolored) {
        EXPECT_LT(c[static_cast<std::size_t>(e)], inst.color_space);
      }
    }
  }
}

TEST(SlackBoost, LargeKColorsAlmostEverything) {
  Rng rng(111);
  const auto bg = gen::regular_bipartite(64, 10);
  const Graph& g = bg.graph;
  const ListEdgeInstance inst = make_full_palette_instance(g);
  const LinialResult schedule = linial_edge_color(g);
  std::vector<Color> colors(static_cast<std::size_t>(g.num_edges()),
                            kUncolored);
  const BoostStats stats =
      boost_partial_color(g, bg.parts, inst, std::exp(2.0), 64,
                          schedule.colors, schedule.palette, colors);
  EXPECT_LE(stats.final_uncolored_degree,
            (g.max_edge_degree() + 63) / 64);
  EXPECT_TRUE(is_proper_edge_coloring(g, colors));
}

TEST(SlackBoost, WorksWithRandomLists) {
  Rng rng(112);
  const auto bg = gen::regular_bipartite(64, 8);
  const Graph& g = bg.graph;
  const ListEdgeInstance inst =
      make_random_list_instance(g, 3 * g.max_edge_degree(), rng);
  const LinialResult schedule = linial_edge_color(g);
  std::vector<Color> colors(static_cast<std::size_t>(g.num_edges()),
                            kUncolored);
  boost_partial_color(g, bg.parts, inst, std::exp(2.0), 8, schedule.colors,
                      schedule.palette, colors);
  EXPECT_TRUE(is_proper_edge_coloring(g, colors));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Color c = colors[static_cast<std::size_t>(e)];
    if (c == kUncolored) continue;
    const auto& l = inst.list(e);
    EXPECT_TRUE(std::binary_search(l.begin(), l.end(), c));
  }
}

TEST(SlackBoost, TrivialTargetNoop) {
  Rng rng(113);
  const auto bg = gen::regular_bipartite(16, 3);
  const Graph& g = bg.graph;
  const ListEdgeInstance inst = make_full_palette_instance(g);
  const LinialResult schedule = linial_edge_color(g);
  std::vector<Color> colors(static_cast<std::size_t>(g.num_edges()),
                            kUncolored);
  // k = 1: target = Δ̄, already satisfied; nothing needs coloring.
  const BoostStats stats =
      boost_partial_color(g, bg.parts, inst, std::exp(2.0), 1,
                          schedule.colors, schedule.palette, colors);
  EXPECT_EQ(stats.colored, 0);
  EXPECT_EQ(stats.stages, 0);
}

TEST(SlackBoost, EmptyGraph) {
  const auto bg = gen::regular_bipartite(4, 0);
  const ListEdgeInstance inst = make_full_palette_instance(bg.graph, 2);
  std::vector<Color> colors;
  std::vector<Color> schedule;
  const BoostStats stats = boost_partial_color(
      bg.graph, bg.parts, inst, std::exp(2.0), 4, schedule, 1, colors);
  EXPECT_EQ(stats.colored, 0);
}

}  // namespace
}  // namespace dec
