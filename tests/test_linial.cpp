// Tests for Linial's O(Δ²)-coloring in O(log* n) rounds (EXP-G invariants).
#include <gtest/gtest.h>

#include "coloring/linial.hpp"
#include "graph/generators.hpp"
#include "util/logstar.hpp"
#include "util/prime.hpp"

namespace dec {
namespace {

TEST(LinialParams, StepRespectsConstraints) {
  for (const std::int64_t m : {10LL, 1000LL, 1000000LL, 1LL << 40}) {
    for (const int delta : {1, 2, 8, 100}) {
      const LinialStep s = linial_step_params(m, delta);
      EXPECT_TRUE(is_prime(static_cast<std::uint64_t>(s.q)));
      EXPECT_GT(s.q, static_cast<std::int64_t>(delta) * s.d)
          << "m=" << m << " delta=" << delta;
      // Coverage q^(d+1) >= m.
      double cover = 1.0;
      for (int i = 0; i <= s.d; ++i) cover *= static_cast<double>(s.q);
      EXPECT_GE(cover, static_cast<double>(m));
    }
  }
}

TEST(Linial, ProperOnVariousGraphs) {
  Rng rng(10);
  const Graph graphs[] = {gen::cycle(101), gen::gnp(200, 0.05, rng),
                          gen::random_regular(150, 6, rng),
                          gen::hypercube(7)};
  for (const Graph& g : graphs) {
    const LinialResult r = linial_color(g);
    EXPECT_TRUE(is_complete_proper_vertex_coloring(g, r.colors));
    for (const Color c : r.colors) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, r.palette);
    }
  }
}

TEST(Linial, PaletteIsQuadraticInDelta) {
  Rng rng(11);
  for (const int d : {2, 4, 8, 16}) {
    const Graph g = gen::random_regular(2000, d, rng);
    const LinialResult r = linial_color(g);
    // Final palette is q² for a prime q = O(Δ): generous constant check.
    const std::int64_t q_cap =
        static_cast<std::int64_t>(next_prime(static_cast<std::uint64_t>(4 * d + 2)));
    EXPECT_LE(r.palette, q_cap * q_cap) << "d=" << d;
  }
}

TEST(Linial, RoundsAreIteratedLogOfIdSpace) {
  Rng rng(12);
  for (const NodeId n : {64, 1024, 16384}) {
    const Graph g = gen::random_regular(n, 4, rng);
    const LinialResult r = linial_color(g);
    // rounds = iterations + 1 announcement; iterations tracks log* n.
    EXPECT_LE(r.iterations, log_star(static_cast<double>(n)) + 3) << n;
    EXPECT_EQ(r.rounds, r.iterations + 1);
  }
}

TEST(Linial, MessagesAreLogarithmic) {
  Rng rng(13);
  const Graph g = gen::random_regular(4096, 4, rng);
  const LinialResult r = linial_color(g);
  // CONGEST: colors fit in O(log n) bits.
  EXPECT_LE(r.max_message_bits, 2 * ceil_log2(4096) + 4);
}

TEST(Linial, AcceptsCustomInitialColoring) {
  const Graph g = gen::cycle(8);
  std::vector<Color> initial{10, 20, 30, 40, 50, 60, 70, 80};
  const LinialResult r = linial_color(g, nullptr, initial, 100);
  EXPECT_TRUE(is_complete_proper_vertex_coloring(g, r.colors));
  EXPECT_LT(r.palette, 100);
}

TEST(Linial, RejectsImproperInitialColoring) {
  const Graph g = gen::path(3);
  EXPECT_THROW(linial_color(g, nullptr, {1, 1, 2}, 10), CheckError);
  EXPECT_THROW(linial_color(g, nullptr, {0, 11, 2}, 10), CheckError);
}

TEST(Linial, EdgelessGraphOneColor) {
  const LinialResult r = linial_color(gen::empty(10));
  EXPECT_EQ(r.palette, 1);
  EXPECT_EQ(r.rounds, 0);
}

TEST(Linial, EdgeColoringOnLineGraph) {
  Rng rng(14);
  const Graph g = gen::random_regular(200, 5, rng);
  const LinialResult r = linial_edge_color(g);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
  const int dbar = g.max_edge_degree();
  const std::int64_t q_cap = static_cast<std::int64_t>(
      next_prime(static_cast<std::uint64_t>(4 * dbar + 2)));
  EXPECT_LE(r.palette, q_cap * q_cap);
}

TEST(Linial, DeterministicAcrossRuns) {
  Rng rng(15);
  const Graph g = gen::gnp(100, 0.1, rng);
  const LinialResult a = linial_color(g);
  const LinialResult b = linial_color(g);
  EXPECT_EQ(a.colors, b.colors);
}

// Parameterized sweep over n: rounds stay within log* + O(1), colors O(Δ²).
class LinialSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinialSweep, ScalesWithN) {
  Rng rng(16);
  const NodeId n = GetParam();
  const Graph g = gen::random_regular(n, 6, rng);
  const LinialResult r = linial_color(g);
  EXPECT_TRUE(is_complete_proper_vertex_coloring(g, r.colors));
  EXPECT_LE(r.rounds, log_star(static_cast<double>(n)) + 4);
  EXPECT_LE(r.palette, 29 * 29);  // q <= next_prime(4*6+2)=29 at the end
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinialSweep,
                         ::testing::Values(32, 128, 512, 2048, 8192));

}  // namespace
}  // namespace dec
