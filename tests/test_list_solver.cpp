// Tests for the Lemma D.1 / D.2 relaxed list solver.
#include <gtest/gtest.h>

#include <cmath>

#include "coloring/linial.hpp"
#include "core/list_solver.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

struct SolverFixture {
  BipartiteGraph bg;
  ListEdgeInstance inst;
  LinialResult schedule;
  std::vector<Color> colors;
};

SolverFixture make_setup(int n_per_side, int d, double slack_mult, Rng& rng) {
  SolverFixture s;
  s.bg = gen::regular_bipartite(n_per_side, d);
  const Graph& g = s.bg.graph;
  const int space =
      std::max(g.max_edge_degree() + 1,
               static_cast<int>(slack_mult * g.max_edge_degree()) + 2);
  s.inst.g = &g;
  s.inst.color_space = space;
  s.inst.lists.resize(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const int want = std::min(
        space, static_cast<int>(slack_mult * g.edge_degree(e)) + 1);
    // Uniform random subset of the requested size.
    std::vector<Color> all(static_cast<std::size_t>(space));
    for (int c = 0; c < space; ++c) all[static_cast<std::size_t>(c)] = c;
    rng.shuffle(all);
    all.resize(static_cast<std::size_t>(want));
    std::sort(all.begin(), all.end());
    s.inst.lists[static_cast<std::size_t>(e)] = std::move(all);
  }
  s.schedule = linial_edge_color(g);
  s.colors.assign(static_cast<std::size_t>(g.num_edges()), kUncolored);
  return s;
}

bool colors_from_lists(const SolverFixture& s) {
  for (EdgeId e = 0; e < s.bg.graph.num_edges(); ++e) {
    const auto& l = s.inst.list(e);
    if (!std::binary_search(l.begin(), l.end(),
                            s.colors[static_cast<std::size_t>(e)])) {
      return false;
    }
  }
  return true;
}

TEST(ListSolver, SolvesSlackEInstances) {
  Rng rng(100);
  SolverFixture s = make_setup(64, 8, std::exp(2.0) + 0.5, rng);
  const auto stats =
      solve_relaxed_list(s.bg.graph, s.bg.parts, s.inst, std::exp(2.0),
                         s.schedule.colors, s.schedule.palette, s.colors);
  EXPECT_TRUE(is_complete_proper_edge_coloring(s.bg.graph, s.colors));
  EXPECT_TRUE(colors_from_lists(s));
  EXPECT_EQ(stats.colored, s.bg.graph.num_edges());
}

TEST(ListSolver, HigherSlackAlsoWorks) {
  Rng rng(101);
  SolverFixture s = make_setup(48, 6, 12.0, rng);
  solve_relaxed_list(s.bg.graph, s.bg.parts, s.inst, std::exp(2.0),
                     s.schedule.colors, s.schedule.palette, s.colors);
  EXPECT_TRUE(is_complete_proper_edge_coloring(s.bg.graph, s.colors));
  EXPECT_TRUE(colors_from_lists(s));
}

TEST(ListSolver, RespectsPrecoloredBlockers) {
  Rng rng(102);
  SolverFixture s = make_setup(32, 4, 10.0, rng);
  // Pre-color a few edges manually (properly) and let the solver finish.
  s.colors[0] = s.inst.list(0).front();
  const auto stats =
      solve_relaxed_list(s.bg.graph, s.bg.parts, s.inst, std::exp(2.0),
                         s.schedule.colors, s.schedule.palette, s.colors);
  EXPECT_EQ(s.colors[0], s.inst.list(0).front());
  EXPECT_TRUE(is_complete_proper_edge_coloring(s.bg.graph, s.colors));
  EXPECT_EQ(stats.colored, s.bg.graph.num_edges() - 1);
}

TEST(ListSolver, PassiveDemotionsHappenAtLowDegree) {
  Rng rng(103);
  // Small degree: everything should demote immediately (degree < β/ε) and be
  // colored by the passive pass.
  SolverFixture s = make_setup(16, 2, 8.0, rng);
  const auto stats =
      solve_relaxed_list(s.bg.graph, s.bg.parts, s.inst, std::exp(2.0),
                         s.schedule.colors, s.schedule.palette, s.colors);
  EXPECT_TRUE(is_complete_proper_edge_coloring(s.bg.graph, s.colors));
  EXPECT_GT(stats.passive_natural, 0);
}

TEST(ListSolver, EmptyInstanceNoop) {
  const auto bg = gen::regular_bipartite(4, 0);
  ListEdgeInstance inst;
  inst.g = &bg.graph;
  inst.color_space = 4;
  std::vector<Color> colors;
  std::vector<Color> schedule;
  const auto stats = solve_relaxed_list(bg.graph, bg.parts, inst,
                                        std::exp(2.0), schedule, 1, colors);
  EXPECT_EQ(stats.colored, 0);
}

TEST(ListSolver, LedgerMatchesReportedRounds) {
  Rng rng(104);
  SolverFixture s = make_setup(48, 8, 9.0, rng);
  RoundLedger ledger;
  const auto stats = solve_relaxed_list(
      s.bg.graph, s.bg.parts, s.inst, std::exp(2.0), s.schedule.colors,
      s.schedule.palette, s.colors, ParamMode::kPractical, &ledger);
  EXPECT_GT(ledger.total(), 0);
  EXPECT_GE(stats.rounds, 0);
}

}  // namespace
}  // namespace dec
