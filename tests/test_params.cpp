// Tests for the paper's parameter formulas (Eqs. 4–7, params module) and the
// edge-subgraph utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "core/params.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"

namespace dec {
namespace {

TEST(Params, AlphaTheoryMatchesEquation5) {
  // α_v(φ) = max{1, (1/4)·(ν²/ln Δ̄)·(d⁻+1)}.
  const double nu = 0.125;
  const double dbar_log = std::log(1000.0);
  const double a = alpha_of(nu, dbar_log, 999, ParamMode::kTheory);
  EXPECT_NEAR(a, std::max(1.0, 0.25 * nu * nu / dbar_log * 1000.0), 1e-12);
  // Small d⁻ clamps to 1.
  EXPECT_DOUBLE_EQ(alpha_of(nu, dbar_log, 0, ParamMode::kTheory), 1.0);
}

TEST(Params, AlphaPracticalAtLeastTheoryScale) {
  const double nu = 0.125;
  const double dbar_log = std::log(1000.0);
  EXPECT_GE(alpha_of(nu, dbar_log, 999, ParamMode::kPractical),
            alpha_of(nu, dbar_log, 999, ParamMode::kTheory));
}

TEST(Params, AlphaRejectsBadNu) {
  EXPECT_THROW(alpha_of(0.2, 1.0, 10, ParamMode::kTheory), CheckError);
  EXPECT_THROW(alpha_of(0.0, 1.0, 10, ParamMode::kTheory), CheckError);
}

TEST(Params, DeltaPhiMatchesEquation6) {
  // δ_φ = max{1, ⌊(1/16)·(ν⁶/ln³Δ̄)·(1−ν)^(φ−1)·Δ̄⌋}; tiny at small Δ̄.
  EXPECT_EQ(delta_phi(0.125, 254.0, std::log(254.0), 1, ParamMode::kTheory), 1);
  // Large Δ̄ in practical mode clears the floor on early phases.
  const auto d1 = delta_phi(0.125, 4096.0, std::log(4096.0), 1,
                            ParamMode::kPractical);
  EXPECT_GT(d1, 1);
  // Geometric decay across phases.
  const auto d10 = delta_phi(0.125, 4096.0, std::log(4096.0), 10,
                             ParamMode::kPractical);
  EXPECT_LE(d10, d1);
}

TEST(Params, KPhiMatchesStep3) {
  // k_φ = ⌈ν(1−ν)^(φ−1)·Δ̄⌉.
  EXPECT_EQ(k_phi(0.125, 256.0, 1), 32);
  EXPECT_EQ(k_phi(0.125, 256.0, 2), 28);
  EXPECT_GE(k_phi(0.125, 1.0, 50), 1);  // clamped to 1
}

TEST(Params, AlphaDominatesDeltaPhi) {
  // Theorem 4.3's precondition α_v >= δ must hold under both modes when
  // d⁻+1 >= (1−ν)^(φ−1)·Δ̄ (the Lemma 5.5 argument).
  for (const ParamMode mode : {ParamMode::kTheory, ParamMode::kPractical}) {
    for (const double nu : {0.125, 0.0625, 0.03125}) {
      for (const double dbar : {30.0, 254.0, 2046.0}) {
        const double l = std::log(dbar);
        for (std::int64_t phi = 1; phi <= 20; ++phi) {
          const double floor_deg = std::pow(1.0 - nu, phi - 1.0) * dbar;
          const double a = alpha_of(nu, l, static_cast<std::int64_t>(floor_deg),
                                    mode);
          const auto d = delta_phi(nu, dbar, l, phi, mode);
          EXPECT_GE(std::ceil(a), static_cast<double>(d))
              << "mode=" << static_cast<int>(mode) << " nu=" << nu
              << " dbar=" << dbar << " phi=" << phi;
        }
      }
    }
  }
}

TEST(Params, BetaTheoryIsHuge) {
  // β = 28·ln³Δ̄/ε⁵ dwarfs Δ̄ at laptop scale — the vacuity DESIGN.md §4.1
  // documents.
  const double b = beta_of(1.0, 254.0, ParamMode::kTheory);
  EXPECT_GT(b, 254.0);
  const double b_small_eps = beta_of(0.25, 254.0, ParamMode::kTheory);
  EXPECT_NEAR(b_small_eps / b, std::pow(4.0, 5), 1e-6);
}

TEST(Params, BetaPracticalIsLogarithmic) {
  EXPECT_LE(beta_of(1.0, 254.0, ParamMode::kPractical), 8.0);
  EXPECT_GE(beta_of(1.0, 254.0, ParamMode::kPractical), 2.0);
}

TEST(Params, EpsNuConversions) {
  EXPECT_DOUBLE_EQ(eps_from_nu(0.125), 1.0);
  EXPECT_DOUBLE_EQ(nu_from_eps(1.0), 0.125);
  EXPECT_DOUBLE_EQ(nu_from_eps(eps_from_nu(0.0625)), 0.0625);
}

TEST(Subgraph, MaskAndListAgree) {
  Rng rng(7);
  const Graph g = gen::gnp(30, 0.2, rng);
  std::vector<bool> take(static_cast<std::size_t>(g.num_edges()), false);
  std::vector<EdgeId> list;
  for (EdgeId e = 0; e < g.num_edges(); e += 2) {
    take[static_cast<std::size_t>(e)] = true;
    list.push_back(e);
  }
  const EdgeSubgraph a = edge_subgraph(g, take);
  const EdgeSubgraph b = edge_subgraph(g, list);
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.graph.num_nodes(), g.num_nodes());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.graph.endpoints(static_cast<EdgeId>(i)),
              g.endpoints(a.members[i]));
  }
}

TEST(Subgraph, ScatterToParent) {
  const Graph g = gen::path(4);  // 3 edges
  const EdgeSubgraph s = edge_subgraph(g, std::vector<EdgeId>{2, 0});
  std::vector<int> parent(3, -1);
  scatter_to_parent(s, std::vector<int>{20, 10}, parent);
  EXPECT_EQ(parent, (std::vector<int>{10, -1, 20}));
}

TEST(Subgraph, RejectsBadInput) {
  const Graph g = gen::path(3);
  EXPECT_THROW(edge_subgraph(g, std::vector<bool>{true}), CheckError);
  EXPECT_THROW(edge_subgraph(g, std::vector<EdgeId>{5}), CheckError);
}

}  // namespace
}  // namespace dec
