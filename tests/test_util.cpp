// Unit tests for dec_util: checks, rng, primes, log*, stats, tables.
#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/logstar.hpp"
#include "util/prime.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dec {
namespace {

TEST(Check, ThrowsWithLocationAndMessage) {
  try {
    DEC_REQUIRE(1 == 2, "the message");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(7), 7u);
  }
  EXPECT_THROW(r.next_below(0), CheckError);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 500; ++i) {
    const auto x = r.next_in(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 500; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(5);
  EXPECT_FALSE(r.next_bool(0.0));
  EXPECT_TRUE(r.next_bool(1.0));
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(77);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Prime, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(1000001));  // 101 * 9901
  EXPECT_TRUE(is_prime(1000003));
}

TEST(Prime, LargeKnownPrimes) {
  EXPECT_TRUE(is_prime(2147483647ULL));           // 2^31 - 1
  EXPECT_TRUE(is_prime(6700417ULL));              // Fermat factor
  EXPECT_FALSE(is_prime(3215031751ULL));          // strong pseudoprime
  EXPECT_TRUE(is_prime(18446744073709551557ULL)); // largest 64-bit prime
}

TEST(Prime, NextPrime) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(90), 97u);
}

TEST(Prime, PowMod) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24u);
  EXPECT_EQ(pow_mod(3, 0, 7), 1u);
  EXPECT_EQ(pow_mod(10, 18, 1000000007ULL), pow_mod(10, 18, 1000000007ULL));
}

TEST(LogStar, KnownValues) {
  EXPECT_EQ(log_star(1.0), 0);
  EXPECT_EQ(log_star(2.0), 1);
  EXPECT_EQ(log_star(4.0), 2);
  EXPECT_EQ(log_star(16.0), 3);
  EXPECT_EQ(log_star(65536.0), 4);
  EXPECT_EQ(log_star(1e18), 5);
}

TEST(LogStar, CeilFloorLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({3.0, 1.0, 2.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
}

TEST(Stats, EmptySummary) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Stats, RunningStat) {
  RunningStat rs;
  rs.add(1.0);
  rs.add(5.0);
  rs.add(3.0);
  EXPECT_EQ(rs.count(), 3u);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
}

TEST(Table, RendersAlignedRows) {
  Table t("demo", {"a", "long_header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(1.0, 0.0), "n/a");
  EXPECT_EQ(fmt_ratio(3.0, 2.0, 1), "1.5");
  EXPECT_EQ(fmt_bool(true), "yes");
}

}  // namespace
}  // namespace dec
