// Single-vs-double plane bit-identity and safety: PlaneMode::kSingle is a
// pure storage optimization for drain-free protocols — one buffer plane,
// parity-alternating slot ownership instead of a swap. Every solver that
// opted in (Linial, defective precolor + refine) must produce the same
// outputs, audited rounds, message widths/counts, and full ledger breakdowns
// under kSingle as under kDouble — fresh and pooled, serial and 2/4-shard,
// across random/grid/star families with >= 20 seeds each, on both slot
// formats. The mode's safety rails are pinned too: drain on a single plane
// throws an actionable error, a write-before-read hazard throws instead of
// returning the node's own message, an aborted round poisons the state
// until reset(), pool adoption never crosses plane modes, and memory_bytes
// counts exactly the planes that exist.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "graph/generators.hpp"
#include "sim/dinetwork.hpp"
#include "sim/ledger.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "sim/shared_pool.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dec {
namespace {

Graph family_graph(int family, int seed, Rng& rng) {
  switch (family) {
    case 0: return gen::gnp(40 + seed, 0.12, rng);
    case 1: return gen::grid(4 + seed % 4, 5 + seed % 5);
    default: return gen::star(20 + 2 * seed);
  }
}

auto linial_key(const LinialResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.iterations,
                    r.max_message_bits);
}

auto defective_key(const DefectiveResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.max_defect, r.sweeps,
                    r.converged, r.max_message_bits, r.messages);
}

// Multi-round delivery log at the network level: round r sends a
// deterministic mix of silent, single-field, and spilled payloads per edge,
// and round r+1 records a hash of every inbox entry at its slot index. Any
// divergence between plane modes — ordering, spill resolution, epoch
// staleness — shows up as a differing log. Reads strictly precede writes in
// the program, so it is single-plane safe; an odd round count ends on the
// swapped parity.
std::vector<std::int64_t> echo_log(const Graph& g, SlotPlan plan, int rounds,
                                   int num_threads, NetworkPool* pool) {
  ScopedNetwork scope(pool, g, nullptr, "echo", num_threads, nullptr, plan);
  SyncNetwork& net = *scope;
  const std::size_t ns = net.num_slots();
  std::vector<std::int64_t> log(static_cast<std::size_t>(rounds) * ns, -1);
  for (int r = 0; r < rounds; ++r) {
    net.round_fast([&, r](NodeId v, const auto& in, auto&& out) {
      if (r > 0) {
        for (std::size_t i = 0; i < in.size(); ++i) {
          const auto& m = in[i];
          std::int64_t acc = 1234567;
          for (const std::int64_t f : m.fields()) acc = acc * 31 + f;
          log[static_cast<std::size_t>(r - 1) * ns + net.slot(v, i)] = acc;
        }
      }
      for (std::size_t i = 0; i < out.size(); ++i) {
        const auto kind = (static_cast<std::size_t>(v) + 3 * i +
                           static_cast<std::size_t>(r)) %
                          4;
        if (kind == 0) continue;  // silent edge: stale-epoch read next round
        auto&& m = out[i];
        const auto vv = static_cast<std::int64_t>(v);
        const auto ii = static_cast<std::int64_t>(i);
        if (kind == 1) {
          m.assign({vv * 1000 + r});
        } else if (kind == 2 || plan.format == SlotFormat::kNarrow) {
          m.assign({vv, r, ii});  // narrow spill (count >= 2 hits the slab)
        } else {
          m.assign({vv, r, 1, 2, 3, 4, 5, 6, ii});  // wide spill (> inline)
        }
      }
    });
  }
  return log;
}

void expect_echo_equivalence(SlotPlan double_plan, SlotPlan single_plan) {
  NetworkPool pools[] = {NetworkPool(1), NetworkPool(2), NetworkPool(4)};
  const int threads[] = {1, 2, 4};
  for (int family = 0; family < 3; ++family) {
    for (int seed = 0; seed < 4; ++seed) {
      Rng rng(9000 + 100 * family + static_cast<std::uint64_t>(seed));
      const Graph g = family_graph(family, seed, rng);
      const std::vector<std::int64_t> baseline =
          echo_log(g, double_plan, 7, 1, nullptr);
      EXPECT_EQ(baseline, echo_log(g, single_plan, 7, 1, nullptr))
          << "fresh serial, family " << family << " seed " << seed;
      for (int ti = 0; ti < 3; ++ti) {
        EXPECT_EQ(baseline, echo_log(g, single_plan, 7, threads[ti],
                                     &pools[ti]))
            << "pooled, family " << family << " seed " << seed << " threads "
            << threads[ti];
        // Pooled double too: both modes coexist in one arena without ever
        // adopting each other's run states.
        EXPECT_EQ(baseline, echo_log(g, double_plan, 7, threads[ti],
                                     &pools[ti]));
      }
    }
  }
}

TEST(SinglePlane, EchoEquivalenceWide) {
  expect_echo_equivalence(SlotPlan{SlotFormat::kWide, 0, PlaneMode::kDouble},
                          SlotPlan{SlotFormat::kWide, 0, PlaneMode::kSingle});
}

TEST(SinglePlane, EchoEquivalenceNarrow) {
  expect_echo_equivalence(
      SlotPlan{SlotFormat::kNarrow, 3, PlaneMode::kDouble},
      SlotPlan{SlotFormat::kNarrow, 3, PlaneMode::kSingle});
}

TEST(SinglePlane, LinialBitIdentity) {
  NetworkPool pools[] = {NetworkPool(1), NetworkPool(2), NetworkPool(4)};
  const int threads[] = {1, 2, 4};
  const SlotFormat formats[] = {SlotFormat::kWide, SlotFormat::kNarrow};
  for (int family = 0; family < 3; ++family) {
    for (int seed = 0; seed < 20; ++seed) {
      Rng rng(8000 + 100 * family + static_cast<std::uint64_t>(seed));
      const Graph g = family_graph(family, seed, rng);
      for (const SlotFormat fmt : formats) {
        RoundLedger double_ledger;
        const LinialResult dbl =
            linial_color(g, &double_ledger, {}, 0, 1, nullptr, nullptr, fmt,
                         PlaneMode::kDouble);
        RoundLedger fresh_ledger;
        const LinialResult fresh =
            linial_color(g, &fresh_ledger, {}, 0, 1, nullptr, nullptr, fmt,
                         PlaneMode::kSingle);
        EXPECT_EQ(linial_key(dbl), linial_key(fresh))
            << "family " << family << " seed " << seed << " fresh";
        EXPECT_EQ(double_ledger.breakdown(), fresh_ledger.breakdown());
        for (int ti = 0; ti < 3; ++ti) {
          RoundLedger ledger;
          const LinialResult single =
              linial_color(g, &ledger, {}, 0, threads[ti], &pools[ti],
                           nullptr, fmt, PlaneMode::kSingle);
          EXPECT_EQ(linial_key(dbl), linial_key(single))
              << "family " << family << " seed " << seed << " threads "
              << threads[ti];
          EXPECT_EQ(double_ledger.breakdown(), ledger.breakdown());
        }
      }
    }
  }
}

TEST(SinglePlane, DefectiveBitIdentity) {
  NetworkPool pools[] = {NetworkPool(1), NetworkPool(2), NetworkPool(4)};
  const int threads[] = {1, 2, 4};
  const SlotFormat formats[] = {SlotFormat::kWide, SlotFormat::kNarrow};
  for (int family = 0; family < 3; ++family) {
    for (int seed = 0; seed < 20; ++seed) {
      Rng rng(5000 + 100 * family + static_cast<std::uint64_t>(seed));
      const Graph g = family_graph(family, seed, rng);
      if (g.max_degree() < 2) continue;
      const LinialResult lin = linial_color(g);
      for (const SlotFormat fmt : formats) {
        RoundLedger double_ledger;
        const DefectiveResult dbl = defective_4_coloring(
            g, lin.colors, lin.palette, 0.5, &double_ledger, 1, nullptr,
            nullptr, fmt, PlaneMode::kDouble);
        for (int ti = 0; ti < 3; ++ti) {
          RoundLedger ledger;
          const DefectiveResult single = defective_4_coloring(
              g, lin.colors, lin.palette, 0.5, &ledger, threads[ti],
              &pools[ti], nullptr, fmt, PlaneMode::kSingle);
          EXPECT_EQ(defective_key(dbl), defective_key(single))
              << "family " << family << " seed " << seed << " threads "
              << threads[ti];
          EXPECT_EQ(double_ledger.breakdown(), ledger.breakdown());
        }
      }
    }
  }
}

TEST(SinglePlane, DrainThrowsActionable) {
  const Graph g = gen::cycle(8);
  for (const SlotPlan plan :
       {SlotPlan{SlotFormat::kWide, 0, PlaneMode::kSingle},
        SlotPlan{SlotFormat::kNarrow, 1, PlaneMode::kSingle}}) {
    SyncNetwork net(g, nullptr, "echo", 1, plan);
    net.round_fast([](NodeId v, const auto&, auto&& out) {
      for (auto&& m : out) m.assign({static_cast<std::int64_t>(v)});
    });
    try {
      net.drain_fast([](NodeId, const auto&) {});
      FAIL() << "drain on a single-plane lease must throw";
    } catch (const CheckError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("drain on a single-plane lease"), std::string::npos)
          << msg;
      EXPECT_NE(msg.find("component 'echo'"), std::string::npos) << msg;
      EXPECT_NE(msg.find("after round 1"), std::string::npos) << msg;
      EXPECT_NE(msg.find("PlaneMode::kDouble"), std::string::npos) << msg;
    }
  }
}

TEST(SinglePlane, DrainThrowsOnDiNetwork) {
  const Digraph dg(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  DiNetwork din(dg, nullptr, "game", 1,
                SlotPlan{SlotFormat::kWide, 0, PlaneMode::kSingle});
  EXPECT_EQ(din.plane_mode(), PlaneMode::kSingle);
  din.round_fast([](NodeId, const auto&, auto&& out) {
    out.along(0, {7});
  });
  try {
    din.drain_fast([](NodeId, const auto&) {});
    FAIL() << "arc drain on a single-plane lease must throw";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("drain on a single-plane lease"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("PlaneMode::kDouble"), std::string::npos) << msg;
  }
}

TEST(SinglePlane, WriteBeforeReadHazardThrows) {
  const Graph g = gen::cycle(8);
  for (const SlotPlan plan :
       {SlotPlan{SlotFormat::kWide, 0, PlaneMode::kSingle},
        SlotPlan{SlotFormat::kNarrow, 1, PlaneMode::kSingle}}) {
    SyncNetwork net(g, nullptr, "echo", 1, plan);
    try {
      net.round_fast([](NodeId, const auto& in, auto&& out) {
        out[0].assign({1});  // write the slot that backs inbox entry 0...
        (void)in[0].empty();  // ...then read it: the hazard
      });
      FAIL() << "single-plane write-before-read must throw";
    } catch (const CheckError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("read-after-write hazard"), std::string::npos)
          << msg;
      EXPECT_NE(msg.find("component 'echo'"), std::string::npos) << msg;
    }
  }
}

TEST(SinglePlane, AbortPoisonsUntilReset) {
  const Graph g = gen::cycle(8);
  SyncNetwork net(g, nullptr, "poisoned", 1,
                  SlotPlan{SlotFormat::kWide, 0, PlaneMode::kSingle});
  // A clean first round, so the abort below lands mid-protocol.
  net.round_fast([](NodeId v, const auto&, auto&& out) {
    for (auto&& m : out) m.assign({static_cast<std::int64_t>(v)});
  });
  struct Boom {};
  EXPECT_THROW(net.round_fast([](NodeId v, const auto& in, auto&& out) {
                 for (std::size_t i = 0; i < in.size(); ++i) {
                   (void)in[i].empty();
                 }
                 out[0].assign({1});  // touch a slot before failing
                 if (v == 2) throw Boom{};
               }),
               Boom);
  // The abort overwrote round 1's deliveries in place; the state must refuse
  // further rounds loudly instead of delivering corrupt messages.
  try {
    net.round_fast([](NodeId, const auto&, auto&&) {});
    FAIL() << "a poisoned single-plane network must refuse the next round";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("poisoned single-plane network"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("component 'poisoned'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("reset()"), std::string::npos) << msg;
  }
  // reset() is the documented recovery: one bump, fully reusable state.
  net.reset();
  EXPECT_EQ(net.rounds_executed(), 0);
  net.round_fast([](NodeId v, const auto&, auto&& out) {
    for (auto&& m : out) m.assign({static_cast<std::int64_t>(v)});
  });
  net.round_fast([&](NodeId v, const auto& in, auto&& out) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_FALSE(in[i].empty());
      EXPECT_EQ(in[i].at(0), static_cast<std::int64_t>(nb[i].neighbor));
    }
    (void)out;
  });
}

TEST(SinglePlane, SharedPoolNeverCrossesPlaneModes) {
  SharedNetworkPool shared(1);
  const Graph g = gen::cycle(8);
  const auto topo = shared.topology(g);

  auto single = std::make_unique<SyncNetwork>(
      g, topo, nullptr, "s", SlotPlan{SlotFormat::kWide, 0, PlaneMode::kSingle});
  SyncNetwork* single_raw = single.get();
  shared.park(std::move(single));
  // A double-plane lease must NOT adopt the single-plane state.
  EXPECT_EQ(shared.adopt_network(topo.get(), SlotFormat::kWide,
                                 PlaneMode::kDouble),
            nullptr);
  auto adopted = shared.adopt_network(topo.get(), SlotFormat::kWide,
                                      PlaneMode::kSingle);
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(adopted.get(), single_raw);
  EXPECT_EQ(adopted->plane_mode(), PlaneMode::kSingle);

  // Mirror direction: a parked double-plane state never serves single.
  shared.park(std::make_unique<SyncNetwork>(g, topo, nullptr, "d",
                                            SlotPlan{}));
  EXPECT_EQ(shared.adopt_network(topo.get(), SlotFormat::kWide,
                                 PlaneMode::kSingle),
            nullptr);
  EXPECT_NE(shared.adopt_network(topo.get(), SlotFormat::kWide,
                                 PlaneMode::kDouble),
            nullptr);

  // Same contract on the directed adapter.
  const Digraph dg(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto dtopo = shared.topology(dg);
  shared.park(std::make_unique<DiNetwork>(
      dg, dtopo, nullptr, "sd",
      SlotPlan{SlotFormat::kWide, 0, PlaneMode::kSingle}));
  EXPECT_EQ(shared.adopt_dinetwork(dtopo.get(), SlotFormat::kWide,
                                   PlaneMode::kDouble),
            nullptr);
  auto di = shared.adopt_dinetwork(dtopo.get(), SlotFormat::kWide,
                                   PlaneMode::kSingle);
  ASSERT_NE(di, nullptr);
  EXPECT_EQ(di->plane_mode(), PlaneMode::kSingle);
  shared.park(std::move(di));
  shared.park(std::make_unique<DiNetwork>(dg, dtopo, nullptr, "dd",
                                          SlotPlan{}));
  EXPECT_EQ(shared.adopt_dinetwork(dtopo.get(), SlotFormat::kNarrow,
                                   PlaneMode::kSingle),
            nullptr);
}

TEST(SinglePlane, ViewReconstructsOnPlaneModeMiss) {
  NetworkPool pool(1);
  const Graph g = gen::grid(4, 5);
  {
    auto lease = pool.network(g, nullptr, "a",
                              SlotPlan{SlotFormat::kWide, 0,
                                       PlaneMode::kSingle});
    EXPECT_EQ(lease->plane_mode(), PlaneMode::kSingle);
  }
  EXPECT_EQ(pool.run_states(), 1u);
  {
    // Mode miss -> fresh construction, not reuse of the single-plane state.
    auto lease = pool.network(g, nullptr, "b", SlotPlan{});
    EXPECT_EQ(lease->plane_mode(), PlaneMode::kDouble);
  }
  EXPECT_EQ(pool.run_states(), 2u);
  {
    // Both modes now warm: leases land on the matching state, no growth.
    auto single = pool.network(g, nullptr, "c",
                               SlotPlan{SlotFormat::kWide, 0,
                                        PlaneMode::kSingle});
    auto dbl = pool.network(g, nullptr, "d", SlotPlan{});
    EXPECT_EQ(single->plane_mode(), PlaneMode::kSingle);
    EXPECT_EQ(dbl->plane_mode(), PlaneMode::kDouble);
  }
  EXPECT_EQ(pool.run_states(), 2u);
}

TEST(SinglePlane, MemoryBytesCountsExactlyOnePlane) {
  Rng rng(42);
  const Graph g = gen::gnp(200, 0.05, rng);
  const SyncNetwork wide_double(g, nullptr, "wd", 1,
                                SlotPlan{SlotFormat::kWide, 0,
                                         PlaneMode::kDouble});
  const SyncNetwork wide_single(g, nullptr, "ws", 1,
                                SlotPlan{SlotFormat::kWide, 0,
                                         PlaneMode::kSingle});
  // The plane pair dominates a fresh run state, so dropping one plane must
  // show up as (well over) a 25% cut, not just "somewhat smaller".
  EXPECT_LE(wide_single.memory_bytes() * 4, wide_double.memory_bytes() * 3);
  const SyncNetwork narrow_double(g, nullptr, "nd", 1,
                                  SlotPlan{SlotFormat::kNarrow, 1,
                                           PlaneMode::kDouble});
  const SyncNetwork narrow_single(g, nullptr, "ns", 1,
                                  SlotPlan{SlotFormat::kNarrow, 1,
                                           PlaneMode::kSingle});
  EXPECT_LE(narrow_single.memory_bytes() * 4,
            narrow_double.memory_bytes() * 3);
  EXPECT_GT(narrow_single.memory_bytes(), 0u);
}

}  // namespace
}  // namespace dec
