// Cross-module integration tests: full pipelines against each other,
// round-ledger consistency, CONGEST audit, determinism under seeds, and
// adversarial tie-breaking robustness.
#include <gtest/gtest.h>

#include "coloring/baselines.hpp"
#include "core/congest_coloring.hpp"
#include "core/local_coloring.hpp"
#include "graph/generators.hpp"
#include "graph/line_graph.hpp"

namespace dec {
namespace {

TEST(Integration, AllAlgorithmsAgreeOnValidity) {
  Rng rng(140);
  const Graph g = gen::random_regular(150, 8, rng);
  const auto fast = edge_color_fast_2delta(g);
  const auto quad = edge_color_greedy_quadratic(g);
  Rng luby_rng(1);
  const auto luby = edge_color_luby(g, luby_rng);
  const auto congest = congest_edge_coloring(g, 1.0);
  const auto local = solve_2delta_minus_1(g);
  for (const auto* colors :
       {&fast.colors, &quad.colors, &luby.colors, &congest.colors,
        &local.colors}) {
    EXPECT_TRUE(is_complete_proper_edge_coloring(g, *colors));
  }
  // Palette ordering: 2Δ-1 exact solvers <= CONGEST O(Δ) <= trivial Δ̄².
  EXPECT_LE(palette_size(fast.colors), palette_size(congest.colors) + 1);
}

TEST(Integration, PaletteComparisonOnDenseGraph) {
  Rng rng(141);
  const Graph g = gen::gnp(120, 0.2, rng);
  const auto local = solve_2delta_minus_1(g);
  EXPECT_LE(palette_size(local.colors), 2 * g.max_degree() - 1);
  const auto congest = congest_edge_coloring(g, 0.5);
  EXPECT_LE(palette_size(congest.colors),
            static_cast<int>(8.5 * g.max_degree()) + 4);
}

TEST(Integration, RoundsOrderingMatchesComplexityClasses) {
  // For moderately large Δ: quadratic baseline >> linear baseline.
  Rng rng(142);
  const int d = 24;
  const Graph g = gen::random_regular(15 * d, d, rng);
  const auto fast = edge_color_fast_2delta(g);
  const auto quad = edge_color_greedy_quadratic(g);
  EXPECT_LT(fast.rounds, quad.rounds);
}

TEST(Integration, EdgeColoringViaLineGraphVertexColoring) {
  // Cross-check: a (Δ_L+1)-vertex coloring of L(G) is a valid edge coloring
  // of G with Δ̄+1 = 2Δ-1 colors.
  Rng rng(143);
  const Graph g = gen::random_regular(100, 5, rng);
  const Graph lg = line_graph(g);
  EXPECT_EQ(lg.max_degree(), g.max_edge_degree());
}

TEST(Integration, DisconnectedGraphsHandledEverywhere) {
  Rng rng(144);
  const Graph g =
      gen::disjoint_union(gen::random_regular(60, 6, rng), gen::cycle(9));
  const auto local = solve_2delta_minus_1(g);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, local.colors));
  const auto congest = congest_edge_coloring(g, 1.0);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, congest.colors));
}

TEST(Integration, LedgerBreakdownCoversAllPhases) {
  Rng rng(145);
  const Graph g = gen::random_regular(150, 12, rng);
  RoundLedger ledger;
  const auto r = congest_edge_coloring(g, 1.0, ParamMode::kPractical, &ledger);
  EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors));
  // Every major phase must have charged something.
  EXPECT_GT(ledger.component("linial"), 0);
  EXPECT_GT(ledger.component("defective4"), 0);
  EXPECT_GT(ledger.component("bipartite_level"), 0);
}

TEST(Integration, StressManySeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp(80, 0.08, rng);
    if (g.num_edges() == 0) continue;
    const auto r = solve_2delta_minus_1(g);
    EXPECT_TRUE(is_complete_proper_edge_coloring(g, r.colors)) << seed;
    const auto c = congest_edge_coloring(g, 1.0);
    EXPECT_TRUE(is_complete_proper_edge_coloring(g, c.colors)) << seed;
  }
}

}  // namespace
}  // namespace dec
