// Regression pin for defective_refine's dirty-flag announce optimization:
// re-broadcasting only changed colors must not change the algorithm — the
// audited round count and the final coloring are bit-identical to the full
// re-broadcast — while the substrate message count drops strictly on any
// instance where most colors stabilize early (which is the normal case: a
// class-step only moves an independent set of over-threshold nodes).
#include <gtest/gtest.h>

#include <tuple>

#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "graph/generators.hpp"

namespace dec {
namespace {

auto trajectory_key(const DefectiveResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.max_defect, r.sweeps,
                    r.converged, r.max_message_bits);
}

TEST(RefineDirtyAnnounce, BitIdenticalAndStrictlyFewerMessages) {
  Rng rng(55);
  const Graph g = gen::random_regular(200, 8, rng);
  const LinialResult lin = linial_color(g);
  const int threshold = g.max_degree() / 4 + 2;

  RoundLedger ledger_full, ledger_dirty;
  const DefectiveResult full =
      defective_refine(g, lin.colors, lin.palette, 4, threshold, 256,
                       &ledger_full, 1, /*dirty_announce=*/false);
  const DefectiveResult dirty =
      defective_refine(g, lin.colors, lin.palette, 4, threshold, 256,
                       &ledger_dirty, 1, /*dirty_announce=*/true);

  // Same trajectory: rounds, sweeps, and every color bit-identical (the
  // caches only ever serve values the neighbor would have re-sent).
  EXPECT_EQ(trajectory_key(full), trajectory_key(dirty));
  EXPECT_EQ(ledger_full.component("defective_refine"),
            ledger_dirty.component("defective_refine"));

  // Strictly fewer substrate messages: after the first announce round, only
  // movers re-broadcast. Most nodes never move, so the drop is large —
  // assert a conservative 2x, not just strictness.
  EXPECT_LT(dirty.messages, full.messages);
  EXPECT_LT(2 * dirty.messages, full.messages);
}

TEST(RefineDirtyAnnounce, BitIdenticalUnderParallelEngine) {
  Rng rng(56);
  const Graph g = gen::gnp(120, 0.08, rng);
  const LinialResult lin = linial_color(g);
  const int threshold = g.max_degree() / 4 + 1;

  const DefectiveResult full =
      defective_refine(g, lin.colors, lin.palette, 4, threshold, 256,
                       nullptr, 1, /*dirty_announce=*/false);
  for (const int threads : {1, 2, 4}) {
    const DefectiveResult dirty =
        defective_refine(g, lin.colors, lin.palette, 4, threshold, 256,
                         nullptr, threads, /*dirty_announce=*/true);
    EXPECT_EQ(trajectory_key(full), trajectory_key(dirty))
        << "threads " << threads;
    EXPECT_LT(dirty.messages, full.messages) << "threads " << threads;
  }
}

}  // namespace
}  // namespace dec
