// Pooled-reuse contract: a network leased from a NetworkPool, or reset() /
// rebind()-recycled in place, must be indistinguishable from a freshly
// constructed one — outputs, audited rounds, message counts, and ledger
// breakdowns bit-identical, serial and sharded. The suite pins this at the
// substrate level (deterministic protocol runs with spill-heavy payloads,
// including reset after an aborted round) and at the solver level
// (fresh vs pooled vs pooled-again for all five orchestrated solvers on
// random/grid/star families, >= 20 seeds each, at 1/2/4 shards).
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "core/bipartite_coloring.hpp"
#include "core/defective2ec.hpp"
#include "core/token_dropping.hpp"
#include "graph/generators.hpp"
#include "sim/dinetwork.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "sim/topology.hpp"

namespace dec {
namespace {

// ---------------------------------------------------------------- substrate

std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  return h ^ (x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

struct ProtocolTrace {
  std::vector<std::uint64_t> acc;  // per-node fold of everything received
  std::int64_t rounds = 0;
  int max_bits = 0;
  std::int64_t messages = 0;

  auto key() const { return std::tuple(acc, rounds, max_bits, messages); }
};

// Deterministic multi-round protocol with empty slots, inline payloads, and
// slab spills; each node folds its inbox into its own accumulator slot, so
// the trace is shard-confined and bit-identical across engines.
ProtocolTrace run_protocol(SyncNetwork& net, int rounds) {
  const Graph& g = net.graph();
  ProtocolTrace t;
  t.acc.assign(static_cast<std::size_t>(g.num_nodes()), 0);
  for (int r = 0; r < rounds; ++r) {
    net.round_fast([&](NodeId v, const Inbox& in, Outbox& out) {
      auto& a = t.acc[static_cast<std::size_t>(v)];
      for (std::size_t i = 0; i < in.size(); ++i) {
        for (const std::int64_t f : in[i].fields()) {
          a = mix(a, static_cast<std::uint64_t>(f));
        }
      }
      for (std::size_t i = 0; i < out.size(); ++i) {
        const std::int64_t sig =
            static_cast<std::int64_t>(v) * 1315423911 +
            static_cast<std::int64_t>(i) * 97 + r;
        if (sig % 3 == 0) continue;  // send nothing on this incidence
        Message& m = out[i];
        m = Message{sig};
        if (sig % 5 == 0) {  // force a slab spill
          for (int k = 1; k <= 2 * static_cast<int>(Message::kInlineFields);
               ++k) {
            m.push(sig + k);
          }
        }
      }
    });
  }
  // Fold the final round's deliveries (free receive).
  net.drain_fast([&](NodeId v, const Inbox& in) {
    auto& a = t.acc[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < in.size(); ++i) {
      for (const std::int64_t f : in[i].fields()) {
        a = mix(a, static_cast<std::uint64_t>(f));
      }
    }
  });
  t.rounds = net.rounds_executed();
  t.max_bits = net.audit().max_bits();
  t.messages = net.audit().messages_sent();
  return t;
}

TEST(NetworkPool, TopologyCacheSharesPlans) {
  Rng rng(1);
  const Graph g = gen::gnp(40, 0.2, rng);
  NetworkPool pool(1);
  const auto t1 = pool.topology(g);
  const auto t2 = pool.topology(g);
  EXPECT_EQ(t1.get(), t2.get());  // one plan, shared
  EXPECT_EQ(pool.topology_misses(), 1);
  EXPECT_EQ(pool.topology_hits(), 1);

  // A structurally different graph must get its own plan even with equal
  // node/edge counts.
  Graph h = gen::gnp(40, 0.2, rng);
  while (h.num_edges() != g.num_edges()) h = gen::gnp(40, 0.2, rng);
  const auto t3 = pool.topology(h);
  EXPECT_NE(t1.get(), t3.get());
}

TEST(NetworkPool, TopologyMatchesGraphShape) {
  Rng rng(2);
  const Graph g = gen::random_regular(60, 6, rng);
  const auto topo = NetworkTopology::plan(g, 3);
  EXPECT_TRUE(topo->matches(g));
  EXPECT_EQ(topo->num_slots(), static_cast<std::size_t>(2 * g.num_edges()));
  // Peer permutation is an involution pairing the two slots of each edge.
  for (std::size_t s = 0; s < topo->num_slots(); ++s) {
    EXPECT_EQ(topo->peer_slot()[topo->peer_slot()[s]], s);
  }
  const Graph other = gen::star(10);
  EXPECT_FALSE(topo->matches(other));
}

void check_reset_identity(int num_threads) {
  Rng rng(3);
  const Graph g = gen::gnp(70, 0.12, rng);
  SyncNetwork fresh(g, nullptr, "net", num_threads);
  const ProtocolTrace ref = run_protocol(fresh, 6);
  EXPECT_GT(ref.messages, 0);
  EXPECT_GT(ref.max_bits, 0);

  // Same run state, reset in place: O(shards), no replanning.
  fresh.reset();
  EXPECT_EQ(fresh.rounds_executed(), 0);
  EXPECT_EQ(fresh.audit().messages_sent(), 0);
  const ProtocolTrace again = run_protocol(fresh, 6);
  EXPECT_EQ(ref.key(), again.key());

  // And a pool lease over the same graph shape behaves like fresh too.
  NetworkPool pool(num_threads);
  for (int lease_round = 0; lease_round < 3; ++lease_round) {
    auto lease = pool.network(g, nullptr, "net");
    const ProtocolTrace pooled = run_protocol(*lease, 6);
    EXPECT_EQ(ref.key(), pooled.key()) << "lease " << lease_round;
  }
  EXPECT_EQ(pool.run_states(), 1u);  // one recycled run state served all
}

TEST(NetworkPool, ResetBitIdentitySerial) { check_reset_identity(1); }
TEST(NetworkPool, ResetBitIdentity2Shards) { check_reset_identity(2); }
TEST(NetworkPool, ResetBitIdentity4Shards) { check_reset_identity(4); }

// Dirty-state contract: reset after an aborted (mid-round-throw) run must
// not leak stale epochs, slab spills, or audit counts into the next run.
void check_reset_after_abort(int num_threads) {
  Rng rng(4);
  const Graph g = gen::gnp(50, 0.15, rng);
  SyncNetwork fresh(g, nullptr, "net", num_threads);
  const ProtocolTrace ref = run_protocol(fresh, 5);

  SyncNetwork dirty(g, nullptr, "net", num_threads);
  (void)run_protocol(dirty, 3);  // leave real traffic in both planes
  const auto aborted = [&] {
    dirty.round_fast([&](NodeId v, const Inbox&, Outbox& out) {
      // Write (and spill) into many slots before one node throws, so the
      // aborted round leaves maximal debris for reset() to not leak.
      for (std::size_t i = 0; i < out.size(); ++i) {
        Message& m = out[i];
        m = Message{v};
        for (int k = 0; k < 2 * static_cast<int>(Message::kInlineFields);
             ++k) {
          m.push(k);
        }
      }
      DEC_CHECK(v < g.num_nodes() / 2, "deliberate mid-round failure");
    });
  };
  EXPECT_THROW(aborted(), CheckError);

  dirty.reset();
  EXPECT_EQ(dirty.rounds_executed(), 0);
  EXPECT_EQ(dirty.audit().messages_sent(), 0);
  EXPECT_EQ(dirty.audit().max_bits(), 0);
  const ProtocolTrace after = run_protocol(dirty, 5);
  EXPECT_EQ(ref.key(), after.key());
}

TEST(NetworkPool, ResetAfterAbortSerial) { check_reset_after_abort(1); }
TEST(NetworkPool, ResetAfterAbort2Shards) { check_reset_after_abort(2); }
TEST(NetworkPool, ResetAfterAbort4Shards) { check_reset_after_abort(4); }

TEST(NetworkPool, AbortedLeaseIsCleanOnReuse) {
  Rng rng(5);
  const Graph g = gen::grid(6, 7);
  NetworkPool pool(2);
  {
    auto lease = pool.network(g, nullptr, "net");
    (void)run_protocol(*lease, 2);
    const auto aborted = [&] {
      lease->round_fast([&](NodeId v, const Inbox&, Outbox& out) {
        out[0] = Message{v};
        DEC_CHECK(v == 0, "deliberate failure");
      });
    };
    EXPECT_THROW(aborted(), CheckError);
  }  // released dirty
  SyncNetwork fresh(g, nullptr, "net", 2);
  const ProtocolTrace ref = run_protocol(fresh, 4);
  auto lease = pool.network(g, nullptr, "net");
  EXPECT_EQ(ref.key(), run_protocol(*lease, 4).key());
}

TEST(NetworkPool, RebindReusesRunStateAcrossShapes) {
  Rng rng(6);
  const Graph a = gen::gnp(80, 0.1, rng);
  const Graph b = gen::star(50);
  const Graph c = gen::grid(5, 8);
  ProtocolTrace ref_a, ref_b, ref_c;
  {
    SyncNetwork na(a), nb(b), nc(c);
    ref_a = run_protocol(na, 5);
    ref_b = run_protocol(nb, 5);
    ref_c = run_protocol(nc, 5);
  }
  NetworkPool pool(1);
  // One run state cycles a -> b -> c -> a -> b; every rebind must behave
  // like a fresh network, including returning to a cached plan.
  const Graph* order[] = {&a, &b, &c, &a, &b};
  const ProtocolTrace* expect[] = {&ref_a, &ref_b, &ref_c, &ref_a, &ref_b};
  for (int i = 0; i < 5; ++i) {
    auto lease = pool.network(*order[i], nullptr, "net");
    EXPECT_EQ(expect[i]->key(), run_protocol(*lease, 5).key()) << "step " << i;
  }
  EXPECT_EQ(pool.run_states(), 1u);
  EXPECT_EQ(pool.topology_misses(), 3);  // a, b, c planned once each
  EXPECT_EQ(pool.topology_hits(), 2);    // the two returns
}

TEST(NetworkPool, ConcurrentLeasesGetDistinctRunStates) {
  Rng rng(7);
  const Graph g = gen::gnp(30, 0.2, rng);
  NetworkPool pool(1);
  auto l1 = pool.network(g);
  auto l2 = pool.network(g);
  EXPECT_NE(&*l1, &*l2);
  EXPECT_EQ(l1->topology().get(), l2->topology().get());  // plan still shared
  EXPECT_EQ(pool.run_states(), 2u);
}

// ------------------------------------------------------------- directed pool

auto token_key(const TokenDroppingResult& r) {
  return std::tuple(r.tokens, r.edge_passive, r.phases, r.rounds,
                    r.tokens_moved, r.max_message_bits);
}

TEST(NetworkPool, PooledTokenGamesMatchFresh) {
  NetworkPool pool(1);
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(700 + static_cast<std::uint64_t>(seed));
    const Digraph g = seed % 2 == 0
                          ? random_game(30 + seed, 0.12, rng)
                          : layered_game(3 + seed % 3, 10, 3, rng);
    TokenDroppingParams p;
    p.k = 16 + 4 * (seed % 4);
    p.delta = 1 + seed % 2;
    p.alpha.assign(static_cast<std::size_t>(g.num_nodes()), p.delta + 1);
    std::vector<int> init(static_cast<std::size_t>(g.num_nodes()));
    for (auto& t : init) {
      t = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(p.k) + 1));
    }
    RoundLedger fresh_ledger, pooled_ledger;
    const TokenDroppingResult fresh =
        run_token_dropping(g, init, p, &fresh_ledger, 1);
    // The one pool serves every seed's game: each run rebinds the same
    // DiNetwork run state to a brand-new arc set.
    const TokenDroppingResult pooled =
        run_token_dropping(g, init, p, &pooled_ledger, 1, &pool);
    EXPECT_EQ(token_key(fresh), token_key(pooled)) << "seed " << seed;
    EXPECT_EQ(fresh_ledger.breakdown(), pooled_ledger.breakdown());
  }
  EXPECT_LE(pool.run_states(), 1u);
}

TEST(NetworkPool, DiNetworkRebindHandlesLaneShapes) {
  // Alternate between a plain game and an anti-parallel star (two lanes per
  // support edge) on the same run state.
  std::vector<std::pair<NodeId, NodeId>> arcs;
  const NodeId leaves = 12;
  for (NodeId i = 1; i <= leaves; ++i) {
    arcs.emplace_back(0, i);
    arcs.emplace_back(i, 0);
  }
  const Digraph antiparallel(leaves + 1, std::move(arcs));
  Rng rng(8);
  const Digraph plain = layered_game(4, 8, 3, rng);

  TokenDroppingParams p;
  p.k = 12;
  p.delta = 2;
  auto tokens_for = [&](const Digraph& g, std::uint64_t seed) {
    Rng r(seed);
    std::vector<int> init(static_cast<std::size_t>(g.num_nodes()));
    for (auto& t : init) {
      t = static_cast<int>(r.next_below(static_cast<std::uint64_t>(p.k) + 1));
    }
    return init;
  };
  const auto init_a = tokens_for(antiparallel, 1);
  const auto init_p = tokens_for(plain, 2);
  p.alpha.assign(static_cast<std::size_t>(antiparallel.num_nodes()), 3);
  const auto ref_a = run_token_dropping(antiparallel, init_a, p);
  TokenDroppingParams pp = p;
  pp.alpha.assign(static_cast<std::size_t>(plain.num_nodes()), 3);
  const auto ref_p = run_token_dropping(plain, init_p, pp);

  NetworkPool pool(1);
  for (int i = 0; i < 3; ++i) {
    const auto got_a =
        run_token_dropping(antiparallel, init_a, p, nullptr, 1, &pool);
    EXPECT_EQ(token_key(ref_a), token_key(got_a)) << "cycle " << i;
    const auto got_p =
        run_token_dropping(plain, init_p, pp, nullptr, 1, &pool);
    EXPECT_EQ(token_key(ref_p), token_key(got_p)) << "cycle " << i;
  }
}

// ------------------------------------------------------- solver bit-identity
// Fresh (no pool) vs pooled vs pooled-again, the pools persisting across all
// seeds and families so nearly every pooled run recycles a warm run state.
// Ledger breakdowns are compared in full.

auto defective_key(const DefectiveResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.max_defect, r.sweeps,
                    r.converged, r.max_message_bits, r.messages);
}

std::vector<NodeId> heads_of(const Orientation& o) {
  std::vector<NodeId> heads(static_cast<std::size_t>(o.graph().num_edges()));
  for (EdgeId e = 0; e < o.graph().num_edges(); ++e) {
    heads[static_cast<std::size_t>(e)] = o.head(e);
  }
  return heads;
}

auto orientation_key(const BalancedOrientationResult& r) {
  return std::tuple(heads_of(r.orientation), r.phases, r.rounds, r.flips,
                    r.leftover_edges, r.leftover_edge, r.max_excess,
                    r.max_message_bits);
}

auto d2ec_key(const Defective2ECResult& r) {
  return std::tuple(r.is_red, r.phases, r.rounds, r.beta_used, r.beta_emp,
                    r.max_message_bits);
}

auto bipartite_key(const BipartiteColoringResult& r) {
  return std::tuple(r.colors, r.palette, r.rounds, r.levels,
                    r.leaf_degree_bound, r.chi);
}

BipartiteGraph bipartite_of(Graph g) {
  const auto parts = try_bipartition(g);
  EXPECT_TRUE(parts.has_value());
  return BipartiteGraph{std::move(g), *parts};
}

Graph family_graph(int family, int seed, Rng& rng) {
  switch (family) {
    case 0: return gen::gnp(40 + seed, 0.12, rng);
    case 1: return gen::grid(4 + seed % 4, 5 + seed % 5);
    default: return gen::star(20 + 2 * seed);
  }
}

BipartiteGraph family_bipartite(int family, int seed, Rng& rng) {
  switch (family) {
    case 0:
      return gen::random_bipartite(18 + seed, 16 + (seed * 3) % 9, 0.15, rng);
    case 1: return bipartite_of(gen::grid(4 + seed % 4, 5 + seed % 3));
    default: return bipartite_of(gen::star(18 + 2 * seed));
  }
}

TEST(PooledSolvers, DefectiveColoring) {
  NetworkPool pools[] = {NetworkPool(1), NetworkPool(2), NetworkPool(4)};
  for (int family = 0; family < 3; ++family) {
    for (int seed = 0; seed < 20; ++seed) {
      Rng rng(1000 + 100 * family + static_cast<std::uint64_t>(seed));
      const Graph g = family_graph(family, seed, rng);
      if (g.max_degree() < 2) continue;
      const LinialResult lin = linial_color(g);
      RoundLedger ref_ledger;
      const DefectiveResult ref = defective_4_coloring(
          g, lin.colors, lin.palette, 0.5, &ref_ledger, 1);
      const int threads[] = {1, 2, 4};
      for (int ti = 0; ti < 3; ++ti) {
        RoundLedger ledger;
        const DefectiveResult pooled =
            defective_4_coloring(g, lin.colors, lin.palette, 0.5, &ledger,
                                 threads[ti], &pools[ti]);
        EXPECT_EQ(defective_key(ref), defective_key(pooled))
            << "family " << family << " seed " << seed << " threads "
            << threads[ti];
        EXPECT_EQ(ref_ledger.breakdown(), ledger.breakdown());
      }
      // Pooled-again on the warm serial pool (cache-hit reset path).
      RoundLedger again_ledger;
      const DefectiveResult again = defective_4_coloring(
          g, lin.colors, lin.palette, 0.5, &again_ledger, 1, &pools[0]);
      EXPECT_EQ(defective_key(ref), defective_key(again));
      EXPECT_EQ(ref_ledger.breakdown(), again_ledger.breakdown());
    }
  }
}

TEST(PooledSolvers, BalancedOrientationAndDefective2EC) {
  NetworkPool pools[] = {NetworkPool(1), NetworkPool(2), NetworkPool(4)};
  for (int family = 0; family < 3; ++family) {
    for (int seed = 0; seed < 20; ++seed) {
      Rng rng(2000 + 100 * family + static_cast<std::uint64_t>(seed));
      const auto bg = family_bipartite(family, seed, rng);
      std::vector<double> eta(static_cast<std::size_t>(bg.graph.num_edges()));
      for (auto& v : eta) v = 3.0 * (2.0 * rng.next_double() - 1.0);

      OrientationParams p;
      p.nu = seed % 2 == 0 ? 0.125 : 0.0625;
      p.pooled = false;  // reference: every network built from scratch
      RoundLedger ref_ledger;
      const BalancedOrientationResult ref = balanced_orientation(
          bg.graph, bg.parts, eta, p, &ref_ledger, 1);

      OrientationParams pp = p;
      pp.pooled = true;
      const int threads[] = {1, 2, 4};
      for (int ti = 0; ti < 3; ++ti) {
        RoundLedger ledger;
        const BalancedOrientationResult pooled = balanced_orientation(
            bg.graph, bg.parts, eta, pp, &ledger, threads[ti], &pools[ti]);
        EXPECT_EQ(orientation_key(ref), orientation_key(pooled))
            << "family " << family << " seed " << seed << " threads "
            << threads[ti];
        EXPECT_EQ(ref_ledger.breakdown(), ledger.breakdown());
      }

      if (seed % 4 == 0) {
        std::vector<double> lambda(
            static_cast<std::size_t>(bg.graph.num_edges()));
        for (auto& v : lambda) v = rng.next_double();
        RoundLedger fresh_l, pooled_l;
        const Defective2ECResult fresh = defective_2_edge_coloring(
            bg.graph, bg.parts, lambda, 1.0, ParamMode::kPractical, &fresh_l,
            1);
        const Defective2ECResult pooled = defective_2_edge_coloring(
            bg.graph, bg.parts, lambda, 1.0, ParamMode::kPractical, &pooled_l,
            1, &pools[0]);
        EXPECT_EQ(d2ec_key(fresh), d2ec_key(pooled))
            << "family " << family << " seed " << seed;
        EXPECT_EQ(fresh_l.breakdown(), pooled_l.breakdown());
      }
    }
  }
}

TEST(PooledSolvers, BipartiteEdgeColoring) {
  NetworkPool pools[] = {NetworkPool(1), NetworkPool(2), NetworkPool(4)};
  for (int family = 0; family < 3; ++family) {
    for (int seed = 0; seed < 20; ++seed) {
      Rng rng(3000 + 100 * family + static_cast<std::uint64_t>(seed));
      const auto bg = family_bipartite(family, seed % 8, rng);
      if (bg.graph.num_edges() == 0) continue;
      RoundLedger ref_ledger;
      const BipartiteColoringResult ref = bipartite_edge_coloring(
          bg.graph, bg.parts, 1.0, ParamMode::kPractical, &ref_ledger, 1);
      const int threads[] = {1, 2, 4};
      for (int ti = 0; ti < 3; ++ti) {
        RoundLedger ledger;
        const BipartiteColoringResult pooled = bipartite_edge_coloring(
            bg.graph, bg.parts, 1.0, ParamMode::kPractical, &ledger,
            threads[ti], &pools[ti]);
        EXPECT_EQ(bipartite_key(ref), bipartite_key(pooled))
            << "family " << family << " seed " << seed << " threads "
            << threads[ti];
        EXPECT_EQ(ref_ledger.breakdown(), ledger.breakdown());
      }
    }
  }
}

}  // namespace
}  // namespace dec
