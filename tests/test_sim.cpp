// Simulator tests: ledger accounting, message bit accounting, SyncNetwork
// delivery semantics (synchrony, per-edge channels, audit), the flat slot
// plane (slab spill, peer pairing), and serial-vs-parallel equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "coloring/linial.hpp"
#include "graph/generators.hpp"
#include "sim/ledger.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/slab.hpp"

namespace dec {
namespace {

TEST(Ledger, ChargesAndBreakdown) {
  RoundLedger l;
  l.charge("a", 3);
  l.charge("b", 2);
  l.charge("a", 1);
  EXPECT_EQ(l.total(), 6);
  EXPECT_EQ(l.component("a"), 4);
  EXPECT_EQ(l.component("missing"), 0);
  EXPECT_THROW(l.charge("neg", -1), CheckError);
}

TEST(Ledger, LogStarCharge) {
  RoundLedger l;
  l.charge_log_star(65536);
  EXPECT_EQ(l.component("log*"), 4);
}

TEST(Ledger, MergeAndReset) {
  RoundLedger a, b;
  a.charge("x", 1);
  b.charge("x", 2);
  b.charge("y", 5);
  a.merge(b);
  EXPECT_EQ(a.total(), 8);
  EXPECT_EQ(a.component("x"), 3);
  a.reset();
  EXPECT_EQ(a.total(), 0);
}

TEST(Ledger, CounterHandleChargesAndSurvivesReset) {
  RoundLedger l;
  RoundLedger::Counter c = l.counter("net");
  c.charge(2);
  c.charge(3);
  EXPECT_EQ(l.component("net"), 5);
  EXPECT_EQ(l.total(), 5);
  EXPECT_THROW(c.charge(-1), CheckError);
  l.reset();
  c.charge(1);  // handle revalidates against the cleared map
  EXPECT_EQ(l.component("net"), 1);
  EXPECT_EQ(l.total(), 1);
}

TEST(Ledger, ReportMentionsComponents) {
  RoundLedger l;
  l.charge("token_dropping", 7);
  const std::string rep = l.report();
  EXPECT_NE(rep.find("token_dropping = 7"), std::string::npos);
}

TEST(Message, FieldBits) {
  EXPECT_EQ(field_bits(0), 2);  // 1 magnitude bit + sign
  EXPECT_EQ(field_bits(1), 2);
  EXPECT_EQ(field_bits(2), 3);
  EXPECT_EQ(field_bits(-1), 2);
  EXPECT_EQ(field_bits(255), 9);
}

TEST(Message, FieldBitsNegativeAndExtremes) {
  // Two's complement is asymmetric: -(2^k) fits in k+1 bits, 2^k needs k+2.
  EXPECT_EQ(field_bits(-2), 2);  // "10" in two's complement
  EXPECT_EQ(field_bits(-128), 8);
  EXPECT_EQ(field_bits(128), 9);
  EXPECT_EQ(field_bits(-129), 9);
  EXPECT_EQ(field_bits(std::numeric_limits<std::int64_t>::min()), 64);
  EXPECT_EQ(field_bits(std::numeric_limits<std::int64_t>::max()), 64);
  EXPECT_EQ(field_bits(std::numeric_limits<std::int64_t>::min() + 1), 64);
  // Symmetric pairs around zero: |v| and -(|v|+1) have equal width.
  for (const std::int64_t v : {1, 2, 3, 7, 8, 1000, 123456789}) {
    EXPECT_EQ(field_bits(v), field_bits(-v - 1)) << v;
  }
}

TEST(Message, InlineStorageNoSpill) {
  Message m;
  for (std::size_t i = 0; i < Message::kInlineFields; ++i) {
    m.push(static_cast<std::int64_t>(i * 10));
  }
  EXPECT_FALSE(m.spilled());
  EXPECT_EQ(m.size(), Message::kInlineFields);
  for (std::size_t i = 0; i < Message::kInlineFields; ++i) {
    EXPECT_EQ(m.at(i), static_cast<std::int64_t>(i * 10));
  }
}

TEST(Message, SpillsBeyondInlineCapacity) {
  Message m;
  for (std::int64_t i = 0; i < 100; ++i) m.push(i * i);
  EXPECT_TRUE(m.spilled());
  EXPECT_EQ(m.size(), 100u);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(m.at(static_cast<std::size_t>(i)), i * i);
  }
  m.clear();
  EXPECT_TRUE(m.empty());
  m.push(7);  // reuses the spill buffer
  EXPECT_EQ(m.at(0), 7);
}

TEST(Message, CopySemantics) {
  Message wide;
  for (std::int64_t i = 0; i < 10; ++i) wide.push(i);
  Message copy(wide);
  wide.clear();
  ASSERT_EQ(copy.size(), 10u);
  EXPECT_EQ(copy.at(9), 9);
  Message assigned;
  assigned = copy;
  EXPECT_EQ(assigned.size(), 10u);
  assigned = Message{1, 2};
  EXPECT_EQ(assigned.size(), 2u);
  EXPECT_EQ(assigned.at(1), 2);
}

TEST(Message, SlabSpillUsesArenaNotHeap) {
  MessageSlab slab;
  Message m;
  m.bind_slab(&slab);
  for (std::int64_t i = 0; i < 20; ++i) m.push(i);
  EXPECT_TRUE(m.spilled());
  EXPECT_GT(slab.used(), 0u);
  EXPECT_EQ(m.at(19), 19);
  // After an arena reset the message must drop its (now invalid) block
  // before reuse; reset_storage is the substrate's lazy-clear primitive.
  slab.reset();
  m.reset_storage();
  EXPECT_FALSE(m.spilled());
  EXPECT_TRUE(m.empty());
  for (std::int64_t i = 0; i < 20; ++i) m.push(i + 1);
  EXPECT_EQ(m.at(19), 20);
}

TEST(Message, MessageBitsAndAudit) {
  Message m{3, 500};
  EXPECT_EQ(message_bits(m), field_bits(3) + field_bits(500));
  CongestAudit audit;
  audit.observe(m);
  audit.observe(Message{});  // empty = not sent
  EXPECT_EQ(audit.messages_sent(), 1);
  EXPECT_EQ(audit.max_bits(), message_bits(m));
  audit.reset();
  EXPECT_EQ(audit.max_bits(), 0);
}

TEST(Message, AuditMergeIsOrderIndependent) {
  CongestAudit a, b, merged_ab, merged_ba;
  a.observe(Message{1000});
  b.observe(Message{3});
  b.observe(Message{7});
  merged_ab.merge(a);
  merged_ab.merge(b);
  merged_ba.merge(b);
  merged_ba.merge(a);
  EXPECT_EQ(merged_ab.max_bits(), merged_ba.max_bits());
  EXPECT_EQ(merged_ab.messages_sent(), merged_ba.messages_sent());
  EXPECT_EQ(merged_ab.messages_sent(), 3);
  EXPECT_EQ(merged_ab.max_bits(), field_bits(1000));
}

TEST(Network, DeliversAlongEdges) {
  const Graph g = gen::path(3);  // 0-1, 1-2
  SyncNetwork net(g);
  // Round 1: everyone sends its id on every incident edge.
  net.round([](NodeId v, const Inbox& inbox, Outbox& outbox) {
    EXPECT_TRUE(std::all_of(inbox.begin(), inbox.end(),
                            [](const Message& m) { return m.empty(); }));
    for (auto& m : outbox) m = Message{v};
  });
  // Round 2: check each node received exactly its neighbors' ids.
  net.round([&](NodeId v, const Inbox& inbox, Outbox&) {
    const auto nb = g.neighbors(v);
    ASSERT_EQ(inbox.size(), nb.size());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      ASSERT_FALSE(inbox[i].empty());
      EXPECT_EQ(inbox[i].at(0), nb[i].neighbor);
    }
  });
  EXPECT_EQ(net.rounds_executed(), 2);
}

TEST(Network, SynchronousSemantics) {
  // A message sent in round t must not be visible in round t, only in t+1.
  const Graph g = gen::path(2);
  SyncNetwork net(g);
  bool saw_in_same_round = false;
  net.round([&](NodeId v, const Inbox& inbox, Outbox& outbox) {
    if (v == 0) outbox[0] = Message{42};
    if (v == 1 && !inbox[0].empty()) saw_in_same_round = true;
  });
  EXPECT_FALSE(saw_in_same_round);
  bool saw_next_round = false;
  net.round([&](NodeId v, const Inbox& inbox, Outbox&) {
    if (v == 1 && !inbox[0].empty() && inbox[0].at(0) == 42) {
      saw_next_round = true;
    }
  });
  EXPECT_TRUE(saw_next_round);
}

TEST(Network, MessagesDoNotPersist) {
  const Graph g = gen::path(2);
  SyncNetwork net(g);
  net.round([](NodeId v, const Inbox&, Outbox& out) {
    if (v == 0) out[0] = Message{1};
  });
  net.round([](NodeId, const Inbox&, Outbox&) {});
  // The round-1 message must be gone by round 3.
  net.round([&](NodeId v, const Inbox& inbox, Outbox&) {
    if (v == 1) {
      EXPECT_TRUE(inbox[0].empty());
    }
  });
}

TEST(Network, SpilledMessagesDeliverIntact) {
  // Payloads wider than the inline buffer take the slab-arena path; they
  // must round-trip bit-exact and must not leak into later rounds.
  const Graph g = gen::star(4);
  SyncNetwork net(g);
  const std::size_t wide = Message::kInlineFields * 3;
  net.round([&](NodeId v, const Inbox&, Outbox& out) {
    if (v == 0) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        Message& m = out[i];
        for (std::size_t k = 0; k < wide; ++k) {
          m.push(static_cast<std::int64_t>(100 * (i + 1) + k));
        }
      }
    }
  });
  net.round([&](NodeId v, const Inbox& inbox, Outbox&) {
    if (v != 0) {
      ASSERT_EQ(inbox.size(), 1u);
      const Message& m = inbox[0];
      ASSERT_EQ(m.size(), wide);
      for (std::size_t k = 0; k < wide; ++k) {
        EXPECT_EQ(m.at(k), static_cast<std::int64_t>(100 * v + k));
      }
    }
  });
  net.round([&](NodeId v, const Inbox& inbox, Outbox&) {
    if (v != 0) EXPECT_TRUE(inbox[0].empty());
  });
}

TEST(Network, ChargesLedger) {
  const Graph g = gen::cycle(4);
  RoundLedger l;
  SyncNetwork net(g, &l, "mycomp");
  net.round([](NodeId, const Inbox&, Outbox&) {});
  net.round([](NodeId, const Inbox&, Outbox&) {});
  EXPECT_EQ(l.component("mycomp"), 2);
}

TEST(Network, AuditTracksMaxBits) {
  const Graph g = gen::path(2);
  SyncNetwork net(g);
  net.round([](NodeId v, const Inbox&, Outbox& out) {
    if (v == 0) out[0] = Message{1023};
  });
  EXPECT_EQ(net.audit().max_bits(), field_bits(1023));
  EXPECT_EQ(net.audit().messages_sent(), 1);
}

TEST(Network, PerEdgeChannelsAreIndependent) {
  const Graph g = gen::star(3);  // center 0
  SyncNetwork net(g);
  net.round([&](NodeId v, const Inbox&, Outbox& out) {
    if (v == 0) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = Message{static_cast<std::int64_t>(100 + i)};
      }
    }
  });
  net.round([&](NodeId v, const Inbox& inbox, Outbox&) {
    if (v != 0) {
      ASSERT_EQ(inbox.size(), 1u);
      ASSERT_FALSE(inbox[0].empty());
      // Leaf v is the (v-1)-th neighbor of the center (sorted by id).
      EXPECT_EQ(inbox[0].at(0), 100 + (v - 1));
    }
  });
}

// Every slot's peer maps back to it, a slot is never its own peer, and the
// two slots of a pair carry the same edge id with opposite owners.
void check_peer_pairing(const Graph& g) {
  SyncNetwork net(g);
  ASSERT_EQ(net.num_slots(), static_cast<std::size_t>(2 * g.num_edges()));
  std::vector<EdgeId> slot_edge(net.num_slots());
  std::vector<NodeId> slot_owner(net.num_slots());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      slot_edge[net.slot(v, i)] = nb[i].edge;
      slot_owner[net.slot(v, i)] = v;
    }
  }
  for (std::size_t s = 0; s < net.num_slots(); ++s) {
    const std::size_t p = net.peer_slot(s);
    ASSERT_LT(p, net.num_slots());
    EXPECT_NE(p, s);
    EXPECT_EQ(net.peer_slot(p), s);                // involution
    EXPECT_EQ(slot_edge[p], slot_edge[s]);         // one edge, two slots
    EXPECT_EQ(slot_owner[p],                       // peer owned by the
              g.other_endpoint(slot_edge[s],       // opposite endpoint
                               slot_owner[s]));
  }
}

TEST(Network, PeerSlotPairingRandom) {
  Rng rng(11);
  check_peer_pairing(gen::random_regular(64, 6, rng));
  check_peer_pairing(gen::gnp(50, 0.2, rng));
}

TEST(Network, PeerSlotPairingGrid) { check_peer_pairing(gen::grid(7, 9)); }

TEST(Network, PeerSlotPairingStar) { check_peer_pairing(gen::star(17)); }

// Run the same deterministic node program on the serial and parallel
// engines; states, audits, and round counts must match bit-for-bit.
void check_engine_equivalence(const Graph& g) {
  auto run = [&](int threads) {
    SyncNetwork net(g, nullptr, "net", threads);
    std::vector<std::int64_t> state(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      state[static_cast<std::size_t>(v)] = v;
    }
    for (int r = 0; r < 5; ++r) {
      std::vector<std::int64_t> next(state);
      net.round_fast([&](NodeId v, const Inbox& inbox, Outbox& out) {
        std::int64_t acc = state[static_cast<std::size_t>(v)];
        for (const Message& m : inbox) {
          if (!m.empty()) acc += m.at(0) * 31 + m.size();
        }
        next[static_cast<std::size_t>(v)] = acc;
        // Odd nodes stay silent every other round to exercise stale slots.
        if (v % 2 == 0 || r % 2 == 0) {
          for (auto& m : out) m = Message{acc, v};
        }
      });
      state = std::move(next);
    }
    return std::tuple(state, net.audit().max_bits(),
                      net.audit().messages_sent(), net.rounds_executed());
  };
  const auto serial = run(1);
  const auto par4 = run(4);
  EXPECT_EQ(serial, par4);
  const auto par3 = run(3);
  EXPECT_EQ(serial, par3);
}

TEST(ParallelNetwork, MatchesSerialOnRandomRegular) {
  Rng rng(21);
  check_engine_equivalence(gen::random_regular(200, 8, rng));
}

TEST(ParallelNetwork, MatchesSerialOnGrid) {
  check_engine_equivalence(gen::grid(12, 17));
}

TEST(ParallelNetwork, MatchesSerialOnStar) {
  // Star is the worst case for slot balancing: one node owns half the slots.
  check_engine_equivalence(gen::star(101));
}

TEST(ParallelNetwork, LinialColoringIsBitIdentical) {
  Rng rng(31);
  const Graph g = gen::random_regular(300, 10, rng);
  const LinialResult serial = linial_color(g);
  const LinialResult parallel = linial_color(g, nullptr, {}, 0, 4);
  EXPECT_EQ(serial.colors, parallel.colors);
  EXPECT_EQ(serial.palette, parallel.palette);
  EXPECT_EQ(serial.rounds, parallel.rounds);
  EXPECT_EQ(serial.max_message_bits, parallel.max_message_bits);
}

TEST(ParallelNetwork, PropagatesNodeProgramExceptions) {
  const Graph g = gen::cycle(8);
  SyncNetwork net(g, nullptr, "net", 4);
  EXPECT_THROW(net.round_fast([](NodeId v, const Inbox&, Outbox&) {
                 DEC_CHECK(v != 5, "boom from a pool worker");
               }),
               CheckError);
}

// A throwing round must roll back completely: no phantom audit entries, no
// stale slot payloads, and delivery still works on the same network.
void check_abort_recovery(int threads) {
  const Graph g = gen::cycle(8);
  SyncNetwork net(g, nullptr, "net", threads);
  net.round([](NodeId v, const Inbox&, Outbox& out) {
    for (auto& m : out) m = Message{v + 100};
  });
  EXPECT_THROW(net.round_fast([](NodeId v, const Inbox&, Outbox& out) {
                 for (auto& m : out) m = Message{v + 200};
                 DEC_CHECK(v < 4, "boom mid-round");
               }),
               CheckError);
  EXPECT_EQ(net.rounds_executed(), 1);
  EXPECT_EQ(net.audit().messages_sent(), 16);  // only the successful round
  // The aborted round's writes are gone; the round-1 delivery is intact.
  net.round([&](NodeId v, const Inbox& inbox, Outbox&) {
    for (std::size_t i = 0; i < inbox.size(); ++i) {
      ASSERT_FALSE(inbox[i].empty());
      EXPECT_EQ(inbox[i].at(0), g.neighbors(v)[i].neighbor + 100);
    }
  });
  net.round([](NodeId, const Inbox& inbox, Outbox&) {
    for (const Message& m : inbox) EXPECT_TRUE(m.empty());
  });
  EXPECT_EQ(net.audit().messages_sent(), 16);
}

TEST(Network, AbortedRoundRollsBackSerial) { check_abort_recovery(1); }

TEST(ParallelNetwork, AbortedRoundRollsBackParallel) {
  check_abort_recovery(4);
}

// Stronger than per-engine recovery: after an identical scripted history —
// including a round that throws mid-flight with wide (slab-spilled) partial
// writes — the serial and parallel engines must be in bit-identical states:
// same delivered payloads afterwards, same audit, same round count.
void run_abort_script(SyncNetwork& net, const Graph& g,
                      std::vector<std::int64_t>* delivered,
                      std::int64_t* audit_msgs, int* audit_bits) {
  const std::size_t wide = Message::kInlineFields * 2;
  net.round_fast([&](NodeId v, const Inbox&, Outbox& out) {
    for (auto& m : out) m = Message{v * 3 + 1};
  });
  EXPECT_THROW(net.round_fast([&](NodeId v, const Inbox&, Outbox& out) {
                 for (auto& m : out) {
                   for (std::size_t i = 0; i < wide; ++i) m.push(v + 1000);
                 }
                 DEC_CHECK(v < g.num_nodes() / 2, "boom mid-round");
               }),
               CheckError);
  net.round_fast([&](NodeId v, const Inbox& in, Outbox& out) {
    std::int64_t acc = 0;
    for (const Message& m : in) {
      acc = acc * 31 + (m.empty() ? -1 : m.at(0));
    }
    if (v % 2 == 0) {
      for (auto& m : out) m = Message{acc, v};
    }
  });
  // Collect into per-node slots (the network's own slot plane gives the
  // indexing): drain programs run sharded, so each node may only write its
  // own slice of the output.
  delivered->assign(net.num_slots(), 0);
  net.drain_fast([&](NodeId v, const Inbox& in) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      (*delivered)[net.slot(v, i)] = in[i].empty() ? -7 : in[i].at(0);
    }
  });
  *audit_msgs = net.audit().messages_sent();
  *audit_bits = net.audit().max_bits();
}

TEST(ParallelNetwork, AbortRollbackMatchesSerialEngine) {
  Rng rng(41);
  const Graph g = gen::random_regular(120, 6, rng);
  std::vector<std::int64_t> serial_d, parallel_d;
  std::int64_t serial_msgs = 0, parallel_msgs = 0;
  int serial_bits = 0, parallel_bits = 0;
  SyncNetwork serial(g);
  run_abort_script(serial, g, &serial_d, &serial_msgs, &serial_bits);
  ParallelSyncNetwork parallel(g, nullptr, "network", 4);
  run_abort_script(parallel, g, &parallel_d, &parallel_msgs, &parallel_bits);
  EXPECT_EQ(serial_d, parallel_d);
  EXPECT_EQ(serial_msgs, parallel_msgs);
  EXPECT_EQ(serial_bits, parallel_bits);
  EXPECT_EQ(serial.rounds_executed(), parallel.rounds_executed());
  EXPECT_EQ(serial.rounds_executed(), 2);  // the aborted round never counted
}

TEST(Network, DrainReadsLastDeliveryWithoutCharging) {
  const Graph g = gen::path(3);
  RoundLedger ledger;
  SyncNetwork net(g, &ledger, "comp");
  net.round([](NodeId v, const Inbox&, Outbox& out) {
    for (auto& m : out) m = Message{v + 50};
  });
  // The drain sees exactly what a following round's inbox would, repeatably,
  // and costs nothing.
  for (int pass = 0; pass < 2; ++pass) {
    int seen = 0;
    net.drain_fast([&](NodeId v, const Inbox& in) {
      const auto nb = g.neighbors(v);
      for (std::size_t i = 0; i < in.size(); ++i) {
        ASSERT_FALSE(in[i].empty());
        EXPECT_EQ(in[i].at(0), nb[i].neighbor + 50);
        ++seen;
      }
    });
    EXPECT_EQ(seen, 4);  // 2 edges, both directions
  }
  EXPECT_EQ(net.rounds_executed(), 1);
  EXPECT_EQ(ledger.component("comp"), 1);
}

TEST(Network, DrainBeforeAnyRoundSeesOnlyEmpty) {
  const Graph g = gen::cycle(5);
  SyncNetwork net(g);
  net.drain_fast([](NodeId, const Inbox& in) {
    for (const Message& m : in) EXPECT_TRUE(m.empty());
  });
  EXPECT_EQ(net.rounds_executed(), 0);
}

}  // namespace
}  // namespace dec
