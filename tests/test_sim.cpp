// Simulator tests: ledger accounting, message bit accounting, SyncNetwork
// delivery semantics (synchrony, per-edge channels, audit).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/ledger.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"

namespace dec {
namespace {

TEST(Ledger, ChargesAndBreakdown) {
  RoundLedger l;
  l.charge("a", 3);
  l.charge("b", 2);
  l.charge("a", 1);
  EXPECT_EQ(l.total(), 6);
  EXPECT_EQ(l.component("a"), 4);
  EXPECT_EQ(l.component("missing"), 0);
  EXPECT_THROW(l.charge("neg", -1), CheckError);
}

TEST(Ledger, LogStarCharge) {
  RoundLedger l;
  l.charge_log_star(65536);
  EXPECT_EQ(l.component("log*"), 4);
}

TEST(Ledger, MergeAndReset) {
  RoundLedger a, b;
  a.charge("x", 1);
  b.charge("x", 2);
  b.charge("y", 5);
  a.merge(b);
  EXPECT_EQ(a.total(), 8);
  EXPECT_EQ(a.component("x"), 3);
  a.reset();
  EXPECT_EQ(a.total(), 0);
}

TEST(Ledger, ReportMentionsComponents) {
  RoundLedger l;
  l.charge("token_dropping", 7);
  const std::string rep = l.report();
  EXPECT_NE(rep.find("token_dropping = 7"), std::string::npos);
}

TEST(Message, FieldBits) {
  EXPECT_EQ(field_bits(0), 2);   // 1 magnitude bit + sign
  EXPECT_EQ(field_bits(1), 2);
  EXPECT_EQ(field_bits(2), 3);
  EXPECT_EQ(field_bits(-1), 2);
  EXPECT_EQ(field_bits(255), 9);
}

TEST(Message, MessageBitsAndAudit) {
  Message m{3, 500};
  EXPECT_EQ(message_bits(m), field_bits(3) + field_bits(500));
  CongestAudit audit;
  audit.observe(m);
  audit.observe(Message{});  // empty = not sent
  EXPECT_EQ(audit.messages_sent(), 1);
  EXPECT_EQ(audit.max_bits(), message_bits(m));
  audit.reset();
  EXPECT_EQ(audit.max_bits(), 0);
}

TEST(Network, DeliversAlongEdges) {
  const Graph g = gen::path(3);  // 0-1, 1-2
  SyncNetwork net(g);
  // Round 1: everyone sends its id on every incident edge.
  net.round([](NodeId v, std::span<const Message> inbox,
               std::span<Message> outbox) {
    EXPECT_TRUE(std::all_of(inbox.begin(), inbox.end(),
                            [](const Message& m) { return m.empty(); }));
    for (auto& m : outbox) m = Message{v};
  });
  // Round 2: check each node received exactly its neighbors' ids.
  net.round([&](NodeId v, std::span<const Message> inbox,
                std::span<Message>) {
    const auto nb = g.neighbors(v);
    ASSERT_EQ(inbox.size(), nb.size());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      ASSERT_FALSE(inbox[i].empty());
      EXPECT_EQ(inbox[i].at(0), nb[i].neighbor);
    }
  });
  EXPECT_EQ(net.rounds_executed(), 2);
}

TEST(Network, SynchronousSemantics) {
  // A message sent in round t must not be visible in round t, only in t+1.
  const Graph g = gen::path(2);
  SyncNetwork net(g);
  bool saw_in_same_round = false;
  net.round([&](NodeId v, std::span<const Message> inbox,
                std::span<Message> outbox) {
    if (v == 0) outbox[0] = Message{42};
    if (v == 1 && !inbox[0].empty()) saw_in_same_round = true;
  });
  EXPECT_FALSE(saw_in_same_round);
  bool saw_next_round = false;
  net.round([&](NodeId v, std::span<const Message> inbox, std::span<Message>) {
    if (v == 1 && !inbox[0].empty() && inbox[0].at(0) == 42) {
      saw_next_round = true;
    }
  });
  EXPECT_TRUE(saw_next_round);
}

TEST(Network, MessagesDoNotPersist) {
  const Graph g = gen::path(2);
  SyncNetwork net(g);
  net.round([](NodeId v, std::span<const Message>, std::span<Message> out) {
    if (v == 0) out[0] = Message{1};
  });
  net.round([](NodeId, std::span<const Message>, std::span<Message>) {});
  // The round-1 message must be gone by round 3.
  net.round([&](NodeId v, std::span<const Message> inbox, std::span<Message>) {
    if (v == 1) {
      EXPECT_TRUE(inbox[0].empty());
    }
  });
}

TEST(Network, ChargesLedger) {
  const Graph g = gen::cycle(4);
  RoundLedger l;
  SyncNetwork net(g, &l, "mycomp");
  net.round([](NodeId, std::span<const Message>, std::span<Message>) {});
  net.round([](NodeId, std::span<const Message>, std::span<Message>) {});
  EXPECT_EQ(l.component("mycomp"), 2);
}

TEST(Network, AuditTracksMaxBits) {
  const Graph g = gen::path(2);
  SyncNetwork net(g);
  net.round([](NodeId v, std::span<const Message>, std::span<Message> out) {
    if (v == 0) out[0] = Message{1023};
  });
  EXPECT_EQ(net.audit().max_bits(), field_bits(1023));
  EXPECT_EQ(net.audit().messages_sent(), 1);
}

TEST(Network, PerEdgeChannelsAreIndependent) {
  const Graph g = gen::star(3);  // center 0
  SyncNetwork net(g);
  net.round([&](NodeId v, std::span<const Message>, std::span<Message> out) {
    if (v == 0) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = Message{static_cast<std::int64_t>(100 + i)};
      }
    }
  });
  net.round([&](NodeId v, std::span<const Message> inbox, std::span<Message>) {
    if (v != 0) {
      ASSERT_EQ(inbox.size(), 1u);
      ASSERT_FALSE(inbox[0].empty());
      // Leaf v is the (v-1)-th neighbor of the center (sorted by id).
      EXPECT_EQ(inbox[0].at(0), 100 + (v - 1));
    }
  });
}

}  // namespace
}  // namespace dec
