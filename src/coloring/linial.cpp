#include "coloring/linial.hpp"

#include <algorithm>
#include <limits>

#include "graph/line_graph.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "util/prime.hpp"

namespace dec {

LinialStep linial_step_params(std::int64_t m, int max_degree) {
  DEC_REQUIRE(m >= 1, "palette must be positive");
  const std::int64_t delta = std::max(1, max_degree);
  for (int d = 1;; ++d) {
    const std::int64_t q = static_cast<std::int64_t>(
        next_prime(static_cast<std::uint64_t>(delta) * d + 1));
    // Coverage: q^(d+1) >= m so that distinct colors map to distinct
    // polynomials. Saturating product to avoid overflow.
    std::int64_t cover = 1;
    for (int i = 0; i <= d && cover < m; ++i) {
      if (cover > m / q) {
        cover = m;  // saturate: cover * q would already exceed m
      } else {
        cover *= q;
      }
    }
    if (cover >= m) return LinialStep{q, d};
    DEC_CHECK(d < 64, "Linial step parameter search diverged");
  }
}

namespace {

/// Evaluate the base-q-digit polynomial of `color` at point r over GF(q).
std::int64_t eval_digit_poly(std::int64_t color, std::int64_t q, int d,
                             std::int64_t r) {
  // Horner on digits c_d .. c_0 where color = sum c_i q^i.
  std::int64_t digits[65];
  std::int64_t c = color;
  for (int i = 0; i <= d; ++i) {
    digits[i] = c % q;
    c /= q;
  }
  std::int64_t acc = 0;
  for (int i = d; i >= 0; --i) {
    acc = (acc * r + digits[i]) % q;
  }
  return acc;
}

}  // namespace

LinialResult linial_color(const Graph& g, RoundLedger* ledger,
                          std::vector<Color> initial, std::int64_t id_space,
                          int num_threads, NetworkPool* pool,
                          CancelToken* cancel, SlotFormat slot_format,
                          PlaneMode plane_mode) {
  const NodeId n = g.num_nodes();
  if (initial.empty()) {
    initial.resize(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) initial[static_cast<std::size_t>(v)] = v;
    if (id_space == 0) id_space = std::max<std::int64_t>(1, n);
  }
  DEC_REQUIRE(initial.size() == static_cast<std::size_t>(n),
              "initial coloring has wrong length");
  DEC_REQUIRE(id_space >= 1, "id space must be positive");
  for (const Color c : initial) {
    DEC_REQUIRE(c >= 0 && c < id_space, "initial color out of id space");
  }
  DEC_REQUIRE(is_proper_vertex_coloring(g, initial),
              "initial coloring must be proper");

  LinialResult res;
  res.colors = std::move(initial);
  res.palette = static_cast<int>(std::min<std::int64_t>(
      id_space, std::numeric_limits<Color>::max()));

  if (g.max_degree() == 0) {
    // No edges: everyone can take color 0 with zero communication.
    std::fill(res.colors.begin(), res.colors.end(), 0);
    res.palette = n > 0 ? 1 : 0;
    return res;
  }

  // ScopedNetwork resolves the 0-means-hardware convention itself. Every
  // Linial message is exactly one color, so the declared slot width is 1;
  // the solver is drain-free (reads its whole inbox before writing, never
  // drains), so it runs single-plane by default.
  ScopedNetwork net_scope(pool, g, ledger, "linial", num_threads, cancel,
                          SlotPlan{slot_format, 1, plane_mode});
  SyncNetwork& net = *net_scope;
  std::int64_t m = id_space;

  // Precompute the (q, d) schedule; all nodes know n and Δ, so the schedule
  // is common knowledge and costs no communication.
  std::vector<LinialStep> schedule;
  {
    std::int64_t mm = m;
    for (;;) {
      const LinialStep s = linial_step_params(mm, g.max_degree());
      if (s.q * s.q >= mm) break;  // no further progress possible
      schedule.push_back(s);
      mm = s.q * s.q;
    }
  }

  std::vector<std::int64_t> work(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    work[static_cast<std::size_t>(v)] = res.colors[static_cast<std::size_t>(v)];
  }

  // Round 0: everyone announces its current color. Rounds 1..T: consume the
  // previous generation of colors, adopt the reduced color, announce it.
  // Node programs write only work/next[v] and their own outbox, so they are
  // safe on the parallel engine and deterministic either way.
  net.round_fast([&](NodeId v, const auto&, auto&& outbox) {
    for (auto&& msg : outbox) msg.assign({work[static_cast<std::size_t>(v)]});
  });

  for (const LinialStep step : schedule) {
    std::vector<std::int64_t> next(work);
    net.round_fast([&](NodeId v, const auto& inbox, auto&& outbox) {
      const std::int64_t mine = work[static_cast<std::size_t>(v)];
      // Find r with no collision against any neighbor polynomial.
      std::int64_t chosen_r = -1;
      for (std::int64_t r = 0; r < step.q && chosen_r < 0; ++r) {
        const std::int64_t my_val = eval_digit_poly(mine, step.q, step.d, r);
        bool clash = false;
        for (const auto& msg : inbox) {
          DEC_CHECK(!msg.empty(), "Linial expects a color from every neighbor");
          if (eval_digit_poly(msg.at(0), step.q, step.d, r) == my_val) {
            clash = true;
            break;
          }
        }
        if (!clash) chosen_r = r;
      }
      DEC_CHECK(chosen_r >= 0,
                "Linial: no collision-free evaluation point (q > Δ·d violated?)");
      const std::int64_t val = eval_digit_poly(mine, step.q, step.d, chosen_r);
      next[static_cast<std::size_t>(v)] = chosen_r * step.q + val;
      for (auto&& msg : outbox) {
        msg.assign({next[static_cast<std::size_t>(v)]});
      }
    });
    work = std::move(next);
    m = step.q * step.q;
    ++res.iterations;
  }

  for (NodeId v = 0; v < n; ++v) {
    res.colors[static_cast<std::size_t>(v)] =
        static_cast<Color>(work[static_cast<std::size_t>(v)]);
  }
  res.palette = static_cast<int>(m);
  res.rounds = net.rounds_executed();
  res.max_message_bits = net.audit().max_bits();
  DEC_CHECK(is_proper_vertex_coloring(g, res.colors),
            "Linial produced an improper coloring");
  return res;
}

LinialResult linial_edge_color(const Graph& g, RoundLedger* ledger,
                               int num_threads, NetworkPool* pool,
                               CancelToken* cancel, SlotFormat slot_format,
                               PlaneMode plane_mode) {
  const Graph lg = line_graph(g);
  LinialResult res = linial_color(lg, ledger, {}, 0, num_threads, pool, cancel,
                                  slot_format, plane_mode);
  DEC_CHECK(is_proper_edge_coloring(g, res.colors),
            "line-graph coloring is not a proper edge coloring");
  return res;
}

}  // namespace dec
