// Color-reduction subroutines used after Linial.
//
// 1. `ap_reduce` — the arithmetic-progression ("locally-iterative", in the
//    spirit of Barenboim–Elkin–Goldenberg [10]) reduction from q² colors to
//    q colors in at most q rounds for a prime q >= 2Δ+2. A color c = a·q+b is
//    a line t ↦ b + a·t over GF(q); nodes with a = 0 are settled with final
//    color b; an unsettled node tries candidate b + a·t in round t and
//    settles unless the candidate is blocked. Distinct lines intersect at
//    most once and a settled color blocks each line at most once, so at most
//    2Δ of the q rounds are blocked — every node settles.
//
// 2. `greedy_reduce` — the classic one-color-class-per-round reduction: all
//    nodes of the currently largest color simultaneously re-pick the smallest
//    color < target unused in their neighborhood (they form an independent
//    set, so this is safe). Requires target >= Δ+1. palette − target rounds.
//
// Both are expressed as explicit synchronous sweeps where each step uses only
// previous-round neighbor information, and charge one round per sweep.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "sim/ledger.hpp"

namespace dec {

struct ReductionResult {
  std::vector<Color> colors;
  int palette = 0;
  std::int64_t rounds = 0;
};

/// q² → q colors in ≤ q rounds. Requires: q prime, q >= 2Δ+2, input proper
/// with palette <= q².
ReductionResult ap_reduce(const Graph& g, const std::vector<Color>& input,
                          std::int64_t q, RoundLedger* ledger = nullptr);

/// palette → target colors in palette − target rounds. Requires input proper
/// and target >= Δ+1.
ReductionResult greedy_reduce(const Graph& g, const std::vector<Color>& input,
                              int input_palette, int target,
                              RoundLedger* ledger = nullptr);

/// Full pipeline: Linial + ap_reduce + greedy_reduce to a (Δ+1)-vertex
/// coloring in O(Δ + log* n) rounds.
ReductionResult vertex_color_delta_plus_one(const Graph& g,
                                            RoundLedger* ledger = nullptr);

}  // namespace dec
