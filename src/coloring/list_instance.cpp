#include "coloring/list_instance.hpp"

#include <algorithm>

namespace dec {

void validate_lists(const ListEdgeInstance& inst) {
  DEC_REQUIRE(inst.g != nullptr, "instance has no graph");
  const Graph& g = *inst.g;
  DEC_REQUIRE(inst.lists.size() == static_cast<std::size_t>(g.num_edges()),
              "list vector has wrong length");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& l = inst.list(e);
    DEC_REQUIRE(std::is_sorted(l.begin(), l.end()), "list must be sorted");
    DEC_REQUIRE(std::adjacent_find(l.begin(), l.end()) == l.end(),
                "list must be duplicate-free");
    for (const Color c : l) {
      DEC_REQUIRE(c >= 0 && c < inst.color_space, "list color out of space");
    }
  }
}

void validate_degree_plus_one(const ListEdgeInstance& inst) {
  validate_lists(inst);
  const Graph& g = *inst.g;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    DEC_REQUIRE(static_cast<int>(inst.list(e).size()) >= g.edge_degree(e) + 1,
                "degree+1 list requirement violated");
  }
}

double min_slack(const ListEdgeInstance& inst) {
  const Graph& g = *inst.g;
  double best = 1e300;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double deg = std::max(1, g.edge_degree(e));
    best = std::min(best, static_cast<double>(inst.list(e).size()) / deg);
  }
  return g.num_edges() == 0 ? 0.0 : best;
}

ListEdgeInstance make_full_palette_instance(const Graph& g, int k) {
  if (k == 0) k = std::max(1, g.max_edge_degree() + 1);
  ListEdgeInstance inst;
  inst.g = &g;
  inst.color_space = k;
  std::vector<Color> full(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) full[static_cast<std::size_t>(c)] = c;
  inst.lists.assign(static_cast<std::size_t>(g.num_edges()), full);
  return inst;
}

namespace {

std::vector<Color> sample_subset(int space, int size, Rng& rng) {
  DEC_REQUIRE(size <= space, "cannot sample more colors than the space has");
  // Floyd's algorithm would also work; for the sizes involved a shuffle of
  // the space prefix is simpler and still O(space).
  std::vector<Color> all(static_cast<std::size_t>(space));
  for (int c = 0; c < space; ++c) all[static_cast<std::size_t>(c)] = c;
  rng.shuffle(all);
  all.resize(static_cast<std::size_t>(size));
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace

ListEdgeInstance make_random_list_instance(const Graph& g, int color_space,
                                           Rng& rng) {
  DEC_REQUIRE(color_space > g.max_edge_degree(),
              "color space must exceed Δ̄ for degree+1 lists");
  ListEdgeInstance inst;
  inst.g = &g;
  inst.color_space = color_space;
  inst.lists.resize(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    inst.lists[static_cast<std::size_t>(e)] =
        sample_subset(color_space, g.edge_degree(e) + 1, rng);
  }
  return inst;
}

ListEdgeInstance make_skewed_list_instance(const Graph& g, int color_space,
                                           double bias, Rng& rng) {
  DEC_REQUIRE(color_space > g.max_edge_degree(),
              "color space must exceed Δ̄ for degree+1 lists");
  DEC_REQUIRE(bias >= 0.0 && bias <= 1.0, "bias must be in [0, 1]");
  ListEdgeInstance inst;
  inst.g = &g;
  inst.color_space = color_space;
  inst.lists.resize(static_cast<std::size_t>(g.num_edges()));
  const int half = color_space / 2;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const int need = g.edge_degree(e) + 1;
    std::vector<Color> list;
    std::vector<bool> taken(static_cast<std::size_t>(color_space), false);
    while (static_cast<int>(list.size()) < need) {
      const bool low = rng.next_bool(bias) && half > 0;
      const int base = low ? 0 : half;
      const int span = low ? half : color_space - half;
      const Color c =
          base + static_cast<Color>(rng.next_below(static_cast<std::uint64_t>(span)));
      if (!taken[static_cast<std::size_t>(c)]) {
        taken[static_cast<std::size_t>(c)] = true;
        list.push_back(c);
      }
    }
    std::sort(list.begin(), list.end());
    inst.lists[static_cast<std::size_t>(e)] = std::move(list);
  }
  return inst;
}

bool check_list_coloring(const ListEdgeInstance& inst,
                         const std::vector<Color>& colors) {
  const Graph& g = *inst.g;
  if (!is_complete_proper_edge_coloring(g, colors)) return false;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& l = inst.list(e);
    if (!std::binary_search(l.begin(), l.end(),
                            colors[static_cast<std::size_t>(e)])) {
      return false;
    }
  }
  return true;
}

}  // namespace dec
