// Baseline distributed edge coloring algorithms the paper compares against.
//
// * `edge_color_fast_2delta` — the O(Δ + log* n)-round (2Δ−1)-edge coloring
//   in the spirit of Panconesi–Rizzi [44] / Barenboim–Elkin–Goldenberg [10]:
//   Linial on the line graph (O(Δ̄²) colors, O(log* m) rounds), the
//   arithmetic-progression reduction to O(Δ̄) colors in O(Δ̄) rounds, then
//   greedy reduction to Δ̄+1 = 2Δ−1 colors. This is the "linear in Δ"
//   baseline of EXP-F.
//
// * `edge_color_greedy_quadratic` — Linial on the line graph followed by the
//   one-class-per-round greedy: O(Δ̄² + log* n) rounds, the "quadratic in Δ"
//   straw man from the introduction's O(Δ²)-classes greedy.
//
// * `edge_color_luby` — the classic randomized O(log n)-round algorithm
//   (each uncolored edge proposes a uniformly random free color; proposals
//   without conflict are committed).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "sim/ledger.hpp"
#include "util/rng.hpp"

namespace dec {

struct EdgeColoringResult {
  std::vector<Color> colors;
  int palette = 0;
  std::int64_t rounds = 0;
};

/// (2Δ−1)-edge coloring in O(Δ + log* n) rounds.
EdgeColoringResult edge_color_fast_2delta(const Graph& g,
                                          RoundLedger* ledger = nullptr);

/// (2Δ−1)-edge coloring in O(Δ̄² + log* n) rounds.
EdgeColoringResult edge_color_greedy_quadratic(const Graph& g,
                                               RoundLedger* ledger = nullptr);

/// Randomized (2Δ−1)-edge coloring, O(log m) rounds w.h.p.
EdgeColoringResult edge_color_luby(const Graph& g, Rng& rng,
                                   RoundLedger* ledger = nullptr);

}  // namespace dec
