// Linial's O(Δ²)-coloring in O(log* n) rounds [41].
//
// The iterated color reduction is based on polynomials over a prime field:
// a color c < q^(d+1) is read as a degree-≤d polynomial p_c over GF(q) (its
// base-q digits). A node picks an evaluation point r such that its polynomial
// disagrees with every neighbor's polynomial at r (possible when q > Δ·d,
// since two distinct degree-≤d polynomials agree on at most d points), and
// adopts the new color (r, p_c(r)) ∈ [q²]. Each iteration shrinks the
// palette roughly logarithmically, so O(log* n) iterations reach O(Δ²).
//
// This is a genuine message-passing implementation on SyncNetwork: one
// communication round per iteration (plus one initial round to exchange
// starting colors), with colors as O(log n)-bit messages — CONGEST-legal.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "sim/ledger.hpp"
#include "sim/message.hpp"

namespace dec {

class CancelToken;
class NetworkPool;

struct LinialResult {
  std::vector<Color> colors;   // proper coloring
  int palette = 0;             // colors are in [0, palette)
  std::int64_t rounds = 0;     // communication rounds used
  int iterations = 0;          // reduction steps applied
  int max_message_bits = 0;    // CONGEST audit of the run
};

/// Parameters of one Linial reduction step for current palette m and max
/// degree Δ: a prime q > Δ·d with q^(d+1) >= m. Exposed for tests.
struct LinialStep {
  std::int64_t q = 0;
  int d = 0;
};
LinialStep linial_step_params(std::int64_t m, int max_degree);

/// Color g properly with O(Δ²) colors in O(log* id_space) rounds.
/// `initial` is a proper coloring with values in [0, id_space); when empty,
/// node ids are used (id_space defaults to n). `num_threads` > 1 runs the
/// simulation on the parallel round engine (0 = hardware concurrency); the
/// result is bit-identical to the serial engine. `pool` (optional) leases
/// the network from an arena — callers that run several substrate stages on
/// the same graph (congest coloring's Linial + defective stages) share one
/// topology plan and buffer arena this way.
/// `slot_format` picks the network's slot-plane format. Linial announces
/// exactly one color per edge per round, so it defaults to the 16 B narrow
/// plane (declared width 1) — bit-identical to kWide, ~4x less plane memory.
/// `plane_mode` picks the plane count: every Linial round reads its whole
/// inbox before writing and the solver never drains, so it is drain-free and
/// defaults to the single plane (PlaneMode::kSingle) — bit-identical to
/// kDouble with half the plane memory.
LinialResult linial_color(const Graph& g, RoundLedger* ledger = nullptr,
                          std::vector<Color> initial = {},
                          std::int64_t id_space = 0, int num_threads = 1,
                          NetworkPool* pool = nullptr,
                          CancelToken* cancel = nullptr,
                          SlotFormat slot_format = SlotFormat::kNarrow,
                          PlaneMode plane_mode = PlaneMode::kSingle);

/// Run Linial on the line graph of g, producing a proper *edge* coloring of g
/// with O(Δ̄²) colors in O(log* m) rounds. (In LOCAL/CONGEST a node simulates
/// its incident edges at constant overhead, so charging the line-graph rounds
/// directly is faithful.)
LinialResult linial_edge_color(const Graph& g, RoundLedger* ledger = nullptr,
                               int num_threads = 1,
                               NetworkPool* pool = nullptr,
                               CancelToken* cancel = nullptr,
                               SlotFormat slot_format = SlotFormat::kNarrow,
                               PlaneMode plane_mode = PlaneMode::kSingle);

}  // namespace dec
