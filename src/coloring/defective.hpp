// Defective vertex coloring (paper Lemma 6.2, machinery from [11]).
//
// Two building blocks:
//
// 1. `defective_precolor` — one-round defect/palette trade-off: from a proper
//    m-coloring, nodes map their color to a degree-≤d polynomial over GF(q)
//    (base-q digits) and adopt (r, p(r)) for the evaluation point r with the
//    fewest neighbor collisions. Averaging gives min_r collisions ≤ Δ·d/q, so
//    choosing q ≥ Δ·d / p yields a p-defective q²-coloring — the
//    "p-defective O((Δ/p)²)-coloring in O(1) rounds" of [11].
//
// 2. `defective_refine` — the Refine procedure reproduced as threshold local
//    search: sweeping over the classes of a precoloring, every node whose
//    current defect exceeds `move_threshold` switches to its minimum-conflict
//    color among `num_colors`. Within a class-step the moving set is made
//    independent (smallest-id-moving-neighbor priority, one extra round), so
//    each move strictly decreases the monochromatic-edge potential and the
//    search terminates. On stabilization every node has defect ≤
//    move_threshold.
//
// `defective_4_coloring` composes the two per Lemma 6.2: an (εΔ + ⌊Δ/2⌋)-
// defective 4-coloring, given an O(Δ²)-coloring, with rounds O(classes/ε²)
// charged honestly (DESIGN.md §4.3 documents the substitution).
// Both building blocks run as genuine node programs on SyncNetwork:
// precolor is one real color-exchange round, refine is two real rounds per
// class-step (announce, then intent/move-arbitration), each with per-round
// CongestAudit charges. `num_threads` > 1 shards the node programs over the
// parallel round engine with bit-identical results (enforced by the
// cross-engine equivalence suite). Refine's announce round is dirty-flagged:
// a node re-broadcasts its color only when it changed since its last
// announcement, and receivers fill the gaps from their per-incidence caches
// — same rounds, same colors, strictly fewer messages on stabilizing runs
// (`dirty_announce = false` keeps the full re-broadcast for regression
// comparison).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "sim/ledger.hpp"
#include "sim/message.hpp"

namespace dec {

class CancelToken;
class NetworkPool;

struct DefectiveResult {
  std::vector<Color> colors;
  int palette = 0;
  std::int64_t rounds = 0;
  int max_defect = 0;
  int sweeps = 0;       // refine only
  bool converged = true;
  int max_message_bits = 0;       // CongestAudit: widest message of the run
  std::int64_t messages = 0;      // CongestAudit: total messages sent
};

/// One-round defect/palette trade-off. Input: proper coloring with values in
/// [0, input_palette). Output: target_defect-defective coloring with palette
/// q² where q = next_prime(max(2, ceil(Δ·d / target_defect))).
/// All defective stages announce exactly one field per edge per round
/// (a color or an intent bit), so they default to the 16 B narrow slot
/// plane (declared width 1) — bit-identical to SlotFormat::kWide. Both
/// stages are drain-free (every round reads its whole inbox before writing;
/// the final consume steps run on local state, not on a drain), so they
/// default to the single message plane (PlaneMode::kSingle) — bit-identical
/// to kDouble with half the plane memory.
DefectiveResult defective_precolor(const Graph& g,
                                   const std::vector<Color>& input,
                                   int input_palette, int target_defect,
                                   RoundLedger* ledger = nullptr,
                                   int num_threads = 1,
                                   NetworkPool* pool = nullptr,
                                   CancelToken* cancel = nullptr,
                                   SlotFormat slot_format = SlotFormat::kNarrow,
                                   PlaneMode plane_mode = PlaneMode::kSingle);

/// Threshold local search over the classes of `classes` (any coloring with
/// values in [0, num_classes); independence not required). Produces a
/// num_colors-coloring with max defect ≤ move_threshold on convergence.
/// Throws if not converged within max_sweeps AND the threshold is violated.
/// `dirty_announce = false` disables the changed-colors-only announce
/// optimization (identical rounds and colors either way; kept so the
/// regression tests can pin the equivalence and the message saving).
DefectiveResult defective_refine(const Graph& g,
                                 const std::vector<Color>& classes,
                                 int num_classes, int num_colors,
                                 int move_threshold, int max_sweeps,
                                 RoundLedger* ledger = nullptr,
                                 int num_threads = 1,
                                 bool dirty_announce = true,
                                 NetworkPool* pool = nullptr,
                                 CancelToken* cancel = nullptr,
                                 SlotFormat slot_format = SlotFormat::kNarrow,
                                 PlaneMode plane_mode = PlaneMode::kSingle);

/// Lemma 6.2: (εΔ + ⌊Δ/2⌋)-defective 4-coloring from a proper O(Δ²)-coloring.
DefectiveResult defective_4_coloring(const Graph& g,
                                     const std::vector<Color>& input,
                                     int input_palette, double eps,
                                     RoundLedger* ledger = nullptr,
                                     int num_threads = 1,
                                     NetworkPool* pool = nullptr,
                                     CancelToken* cancel = nullptr,
                                     SlotFormat slot_format = SlotFormat::kNarrow,
                                     PlaneMode plane_mode = PlaneMode::kSingle);

/// General split: num_colors-coloring with defect ≤ target_defect, where
/// target_defect must be ≥ ceil(Δ/num_colors) + 1. Used by Theorem D.4's
/// "defect ≤ Δ/c with O(1) colors" step.
DefectiveResult defective_split_coloring(const Graph& g,
                                         const std::vector<Color>& input,
                                         int input_palette, int num_colors,
                                         int target_defect,
                                         RoundLedger* ledger = nullptr,
                                         int num_threads = 1,
                                         NetworkPool* pool = nullptr,
                                         CancelToken* cancel = nullptr,
                                         SlotFormat slot_format = SlotFormat::kNarrow,
                                         PlaneMode plane_mode = PlaneMode::kSingle);

}  // namespace dec
