#include "coloring/defective.hpp"

#include <algorithm>
#include <limits>

#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "util/prime.hpp"

namespace dec {

namespace {

std::int64_t eval_digit_poly(std::int64_t color, std::int64_t q, int d,
                             std::int64_t r) {
  std::int64_t digits[65];
  std::int64_t c = color;
  for (int i = 0; i <= d; ++i) {
    digits[i] = c % q;
    c /= q;
  }
  std::int64_t acc = 0;
  for (int i = d; i >= 0; --i) acc = (acc * r + digits[i]) % q;
  return acc;
}

int max_of(const std::vector<int>& v) {
  int best = 0;
  for (int x : v) best = std::max(best, x);
  return best;
}

struct PrecolorParams {
  std::int64_t q = 0;
  int d = 0;
};

/// Smallest d such that q = next_prime(max(2, ceil(Δd / p))) covers m. The
/// search uses only the globally known m, Δ, p, so both engines derive it
/// without communication.
PrecolorParams precolor_params(std::int64_t m, std::int64_t delta,
                               int target_defect) {
  PrecolorParams out;
  for (out.d = 1;; ++out.d) {
    out.q = static_cast<std::int64_t>(next_prime(static_cast<std::uint64_t>(
        std::max<std::int64_t>(2, (delta * out.d + target_defect - 1) /
                                      target_defect))));
    std::int64_t cover = 1;
    for (int i = 0; i <= out.d && cover < m; ++i) {
      if (cover > m / out.q) {
        cover = m;
      } else {
        cover *= out.q;
      }
    }
    if (cover >= m) return out;
    DEC_CHECK(out.d < 64, "defective_precolor parameter search diverged");
  }
}

/// Pick the evaluation point with the fewest collisions against the
/// neighbor colors produced by `nbr(i)`.
template <class NbrFn>
Color precolor_choose(std::int64_t mine, std::int64_t q, int d,
                      std::size_t degree, NbrFn&& nbr) {
  std::int64_t best_r = 0;
  std::int64_t best_collisions = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t r = 0; r < q; ++r) {
    const std::int64_t my_val = eval_digit_poly(mine, q, d, r);
    std::int64_t coll = 0;
    for (std::size_t i = 0; i < degree; ++i) {
      if (eval_digit_poly(nbr(i), q, d, r) == my_val) ++coll;
    }
    if (coll < best_collisions) {
      best_collisions = coll;
      best_r = r;
    }
    if (coll == 0) break;
  }
  return static_cast<Color>(best_r * q + eval_digit_poly(mine, q, d, best_r));
}

DefectiveResult precolor_message_passing(const Graph& g,
                                         const std::vector<Color>& input,
                                         const PrecolorParams& p,
                                         RoundLedger* ledger,
                                         int num_threads, NetworkPool* pool,
                                         CancelToken* cancel,
                                         SlotFormat slot_format,
                                         PlaneMode plane_mode) {
  const NodeId n = g.num_nodes();
  DefectiveResult res;
  res.palette = static_cast<int>(p.q * p.q);
  res.colors.resize(static_cast<std::size_t>(n));
  ScopedNetwork net_scope(pool, g, ledger, "defective_precolor", num_threads,
                          cancel, SlotPlan{slot_format, 1, plane_mode});
  SyncNetwork& net = *net_scope;
  // The one round: every node announces its input color on every edge.
  net.round_fast([&](NodeId v, const auto&, auto&& out) {
    for (auto&& m : out) {
      m.assign({input[static_cast<std::size_t>(v)]});
    }
  });
  // Receiving and the polynomial evaluation are local, hence free. What the
  // announce round delivered on edge (u, v) is input[u] verbatim, so the
  // consume step reads the input vector directly instead of draining the
  // delivered plane — value-identical, and drain-free makes the solver
  // eligible for the single message plane.
  for (NodeId v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    res.colors[static_cast<std::size_t>(v)] = precolor_choose(
        input[static_cast<std::size_t>(v)], p.q, p.d, nb.size(),
        [&](std::size_t i) {
          return input[static_cast<std::size_t>(nb[i].neighbor)];
        });
  }
  res.rounds = net.rounds_executed();
  res.max_message_bits = net.audit().max_bits();
  res.messages = net.audit().messages_sent();
  return res;
}

// Refine as a node program. The class-step (intent round + move round)
// pipelines onto the substrate one round late: round A of a class-step
// applies the moves arbitrated in the previous step's round B and announces
// colors; round B refreshes each node's neighbor-color cache and lets this
// class's over-threshold members broadcast an intent. The final step's
// in-flight move decisions are consumed by a free drain. Movers within a
// class-step are pairwise non-adjacent (smallest-id priority), so the
// one-round lag changes no color any decision reads.
//
// The announce round is dirty-flagged (when `dirty_announce`): a node
// re-broadcasts its color only if it changed since its last announcement;
// receivers read unchanged colors from their per-incidence caches. Every
// color change is announced in the same round it is applied, so the caches
// never go stale — rounds and colors are bit-identical to the full
// re-broadcast, only the message count (simulation wall-clock) drops.
DefectiveResult refine_message_passing(const Graph& g,
                                       const std::vector<Color>& classes,
                                       int num_classes, int num_colors,
                                       int move_threshold, int max_sweeps,
                                       RoundLedger* ledger, int num_threads,
                                       bool dirty_announce, NetworkPool* pool,
                                       CancelToken* cancel,
                                       SlotFormat slot_format,
                                       PlaneMode plane_mode) {
  const NodeId n = g.num_nodes();
  DefectiveResult res;
  res.palette = num_colors;
  res.colors.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    res.colors[static_cast<std::size_t>(v)] =
        classes[static_cast<std::size_t>(v)] % num_colors;
  }

  ScopedNetwork net_scope(pool, g, ledger, "defective_refine", num_threads,
                          cancel, SlotPlan{slot_format, 1, plane_mode});
  SyncNetwork& net = *net_scope;

  // Per-node neighbor-color cache, laid out on the network's own slot plane
  // (slot (v, i) caches neighbor i's color), plus the node's own
  // pending-intent and announce-dirty flags. Node programs write only their
  // own slice, so the state is shard-confined on the parallel engine.
  std::vector<Color> nbr_color(net.num_slots(), 0);
  std::vector<char> intent(static_cast<std::size_t>(n), 0);
  // 1 = my color changed since my last announcement (everyone must announce
  // once at the start, so the caches begin fully populated).
  std::vector<char> dirty(static_cast<std::size_t>(n), 1);

  // Move v to its min-conflict color against the neighbor-color cache.
  auto move_to_least_conflict = [&](NodeId v) {
    const auto nb = g.neighbors(v);
    std::vector<int> count(static_cast<std::size_t>(num_colors), 0);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      ++count[static_cast<std::size_t>(nbr_color[net.slot(v, i)])];
    }
    Color best = 0;
    for (Color c = 1; c < num_colors; ++c) {
      if (count[static_cast<std::size_t>(c)] <
          count[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    if (res.colors[static_cast<std::size_t>(v)] != best) {
      res.colors[static_cast<std::size_t>(v)] = best;
      dirty[static_cast<std::size_t>(v)] = 1;
    }
  };

  // Consume the intent broadcasts of the previous round: an intender moves
  // to its min-conflict color unless a smaller-id neighbor also intended
  // (only same-class nodes intend in any given round, so message presence
  // is the whole arbitration input).
  auto apply_pending = [&](NodeId v, const auto& in) {
    if (intent[static_cast<std::size_t>(v)] == 0) return;
    intent[static_cast<std::size_t>(v)] = 0;
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (nb[i].neighbor < v && !in[i].empty()) return;  // lost priority
    }
    move_to_least_conflict(v);
  };

  res.converged = false;
  for (int sweep = 0; sweep < max_sweeps && !res.converged; ++sweep) {
    bool any_intent = false;
    for (Color cls = 0; cls < num_classes; ++cls) {
      // Round A: settle the previous step's arbitration, announce colors —
      // all of them, or (dirty-flagged) only the ones that changed.
      net.round_fast([&](NodeId v, const auto& in, auto&& out) {
        apply_pending(v, in);
        if (dirty_announce && dirty[static_cast<std::size_t>(v)] == 0) return;
        dirty[static_cast<std::size_t>(v)] = 0;
        for (auto&& m : out) {
          m.assign({res.colors[static_cast<std::size_t>(v)]});
        }
      });
      // Round B: fold announced changes into the caches; this class's
      // over-threshold members broadcast an intent to move.
      net.round_fast([&](NodeId v, const auto& in, auto&& out) {
        int defect = 0;
        const Color mine = res.colors[static_cast<std::size_t>(v)];
        for (std::size_t i = 0; i < in.size(); ++i) {
          if (!in[i].empty()) {
            nbr_color[net.slot(v, i)] = static_cast<Color>(in[i].at(0));
          }
          if (nbr_color[net.slot(v, i)] == mine) ++defect;
        }
        if (classes[static_cast<std::size_t>(v)] != cls) return;
        if (defect > move_threshold) {
          intent[static_cast<std::size_t>(v)] = 1;
          for (auto&& m : out) m.assign({1});
        }
      });
      if (!any_intent) {
        any_intent = std::any_of(intent.begin(), intent.end(),
                                 [](char c) { return c != 0; });
      }
    }
    ++res.sweeps;
    if (!any_intent) res.converged = true;
  }
  // The last class-step's arbitration is still in flight; consuming it is
  // receive-side computation and costs no round. Message presence on edge
  // (u, v) in the final intent round is exactly intent[u] — only the final
  // class-step's over-threshold members sent, and each set its own flag —
  // so the arbitration reads the intact intent flags directly instead of
  // draining the delivered plane: value-identical to the drained form, and
  // drain-free makes the solver eligible for the single message plane. The
  // flags are cleared only after every node has arbitrated, because each
  // decision reads the neighbors' flags.
  for (NodeId v = 0; v < n; ++v) {
    if (intent[static_cast<std::size_t>(v)] == 0) continue;
    const auto nb = g.neighbors(v);
    bool lost = false;
    for (std::size_t i = 0; i < nb.size() && !lost; ++i) {
      lost = nb[i].neighbor < v &&
             intent[static_cast<std::size_t>(nb[i].neighbor)] != 0;
    }
    if (!lost) move_to_least_conflict(v);
  }
  std::fill(intent.begin(), intent.end(), 0);

  res.rounds = net.rounds_executed();
  res.max_message_bits = net.audit().max_bits();
  res.messages = net.audit().messages_sent();
  return res;
}

}  // namespace

DefectiveResult defective_precolor(const Graph& g,
                                   const std::vector<Color>& input,
                                   int input_palette, int target_defect,
                                   RoundLedger* ledger, int num_threads,
                                   NetworkPool* pool, CancelToken* cancel,
                                   SlotFormat slot_format,
                                   PlaneMode plane_mode) {
  DEC_REQUIRE(target_defect >= 1, "target defect must be >= 1");
  DEC_REQUIRE(is_proper_vertex_coloring(g, input), "input must be proper");
  for (const Color c : input) {
    DEC_REQUIRE(c >= 0 && c < input_palette, "input palette bound violated");
  }
  const std::int64_t m = std::max(1, input_palette);
  const std::int64_t delta = std::max(1, g.max_degree());
  const PrecolorParams p = precolor_params(m, delta, target_defect);

  DefectiveResult res =
      precolor_message_passing(g, input, p, ledger, num_threads, pool, cancel,
                               slot_format, plane_mode);
  res.max_defect = max_of(vertex_defects(g, res.colors));
  DEC_CHECK(res.max_defect <= target_defect,
            "defective precolor exceeded its defect target");
  return res;
}

DefectiveResult defective_refine(const Graph& g,
                                 const std::vector<Color>& classes,
                                 int num_classes, int num_colors,
                                 int move_threshold, int max_sweeps,
                                 RoundLedger* ledger, int num_threads,
                                 bool dirty_announce, NetworkPool* pool,
                                 CancelToken* cancel, SlotFormat slot_format,
                                 PlaneMode plane_mode) {
  DEC_REQUIRE(num_colors >= 2, "refine needs at least two colors");
  DEC_REQUIRE(move_threshold >= (g.max_degree() / num_colors) + 1,
              "threshold too tight: moving nodes could never settle");
  DEC_REQUIRE(classes.size() == static_cast<std::size_t>(g.num_nodes()),
              "class vector has wrong length");
  for (const Color c : classes) {
    DEC_REQUIRE(c >= 0 && c < num_classes, "class out of range");
  }

  DefectiveResult res =
      refine_message_passing(g, classes, num_classes, num_colors,
                             move_threshold, max_sweeps, ledger, num_threads,
                             dirty_announce, pool, cancel, slot_format,
                             plane_mode);
  res.max_defect = max_of(vertex_defects(g, res.colors));
  if (!res.converged) {
    // The cap was generous; reaching it without meeting the contract means a
    // genuine failure worth surfacing, not papering over.
    DEC_CHECK(res.max_defect <= move_threshold,
              "defective refine failed to stabilize within the sweep cap");
  }
  return res;
}

DefectiveResult defective_4_coloring(const Graph& g,
                                     const std::vector<Color>& input,
                                     int input_palette, double eps,
                                     RoundLedger* ledger, int num_threads,
                                     NetworkPool* pool, CancelToken* cancel,
                                     SlotFormat slot_format,
                                     PlaneMode plane_mode) {
  DEC_REQUIRE(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  const int delta = g.max_degree();
  const int target = static_cast<int>(eps * delta) + delta / 2;

  if (delta <= 1) {
    // A matching: a proper 2-coloring by edge endpoint order would still not
    // beat defect 0 under simultaneous moves; the refine machinery handles it
    // with threshold >= 1, and defect <= ⌊Δ/2⌋ + εΔ is then 0 only for Δ=0.
    // For Δ <= 1 every 4-coloring has defect <= 1 <= target+? — handle by
    // direct refine with threshold 1 when target >= 1, else trivial proper.
    DefectiveResult res;
    res.palette = 4;
    res.colors.assign(static_cast<std::size_t>(g.num_nodes()), 0);
    if (delta == 1 && target < 1) {
      // Must be fully proper: color each matched pair 0/1 by id order — one
      // round (endpoints compare ids).
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const auto [u, v] = g.endpoints(e);
        res.colors[static_cast<std::size_t>(std::max(u, v))] = 1;
      }
      res.rounds = 1;
      if (ledger != nullptr) ledger->charge("defective_4_coloring", 1);
    }
    res.max_defect = max_of(vertex_defects(g, res.colors));
    return res;
  }

  // Half the ε budget to the precoloring defect, half to the refine margin.
  const int pre_defect = std::max(1, static_cast<int>(eps * delta / 2.0));
  DefectiveResult pre = defective_precolor(g, input, input_palette, pre_defect,
                                           ledger, num_threads, pool, cancel,
                                           slot_format, plane_mode);

  const int margin = std::max(1, static_cast<int>(eps * delta / 4.0));
  // At small Δ the flat +margin +pre_defect headroom can exceed the Lemma
  // 6.2 target εΔ+⌊Δ/2⌋ itself; clamp to the target (never below the
  // pigeonhole floor Δ/4+1, so refine still terminates via the potential).
  const int threshold = std::max(delta / 4 + 1,
                                 std::min(delta / 4 + margin + pre_defect,
                                          target));
  const int max_sweeps =
      64 + static_cast<int>(16.0 / (eps * eps) / std::max(1, delta));
  DefectiveResult ref =
      defective_refine(g, pre.colors, pre.palette, 4, threshold, max_sweeps,
                       ledger, num_threads, /*dirty_announce=*/true, pool,
                       cancel, slot_format, plane_mode);
  ref.rounds += pre.rounds;
  ref.max_message_bits = std::max(ref.max_message_bits, pre.max_message_bits);
  ref.messages += pre.messages;
  DEC_CHECK(ref.max_defect <= target,
            "Lemma 6.2 contract violated: defect exceeds εΔ + ⌊Δ/2⌋");
  return ref;
}

DefectiveResult defective_split_coloring(const Graph& g,
                                         const std::vector<Color>& input,
                                         int input_palette, int num_colors,
                                         int target_defect,
                                         RoundLedger* ledger,
                                         int num_threads, NetworkPool* pool,
                                         CancelToken* cancel,
                                         SlotFormat slot_format,
                                         PlaneMode plane_mode) {
  const int delta = g.max_degree();
  DEC_REQUIRE(target_defect >= delta / num_colors + 1,
              "target defect below the pigeonhole floor");
  if (delta == 0) {
    DefectiveResult res;
    res.palette = num_colors;
    res.colors.assign(static_cast<std::size_t>(g.num_nodes()), 0);
    return res;
  }
  // Precolor to O((Δ/p)²) classes with p = half the defect budget (when
  // possible), then refine.
  const int pre_defect = std::max(1, target_defect / 2);
  DefectiveResult pre = defective_precolor(g, input, input_palette, pre_defect,
                                           ledger, num_threads, pool, cancel,
                                           slot_format, plane_mode);
  const int threshold = std::max(delta / num_colors + 1,
                                 target_defect - pre_defect);
  DefectiveResult ref =
      defective_refine(g, pre.colors, pre.palette, num_colors, threshold, 256,
                       ledger, num_threads, /*dirty_announce=*/true, pool,
                       cancel, slot_format, plane_mode);
  ref.rounds += pre.rounds;
  ref.max_message_bits = std::max(ref.max_message_bits, pre.max_message_bits);
  ref.messages += pre.messages;
  DEC_CHECK(ref.max_defect <= target_defect,
            "defective split contract violated");
  return ref;
}

}  // namespace dec
