// Greedy list edge coloring driven by a schedule coloring.
//
// The classic "iterate through the color classes of a precomputed coloring"
// greedy: the schedule is a proper edge coloring of G (so each class is a
// matching in the line graph); classes are processed one per round, and every
// scheduled uncolored edge picks the smallest color of its list not used by
// an adjacent colored edge. With (uncolored degree + 1)-size remaining lists
// a free color always exists, so a single pass colors everything.
//
// This is the workhorse finishing step the paper invokes for low-degree
// leftover graphs (Lemma 6.1's final phase, Lemma D.2's items 3/4, Theorem
// D.4's tail).
#pragma once

#include <vector>

#include "coloring/list_instance.hpp"
#include "graph/graph.hpp"
#include "sim/ledger.hpp"

namespace dec {

/// Color every uncolored edge (colors[e] == kUncolored) of `inst` using the
/// schedule classes 0..schedule_palette-1 in order, one round per non-empty
/// class. Already-colored edges are respected (their colors block neighbors
/// but are never changed). Only edges with active[e] == true participate
/// (pass nullptr for "all").
///
/// Requires: for every participating edge, |remaining list| >= (number of
/// participating adjacent uncolored edges) + 1 at its turn; with degree+1
/// lists this always holds. Throws if an edge finds no free color.
///
/// Returns rounds charged (number of schedule classes visited).
std::int64_t greedy_list_edge_color(const ListEdgeInstance& inst,
                                    const std::vector<Color>& schedule,
                                    int schedule_palette,
                                    std::vector<Color>& colors,
                                    const std::vector<bool>* active = nullptr,
                                    RoundLedger* ledger = nullptr);

}  // namespace dec
