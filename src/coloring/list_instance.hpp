// List edge coloring instances (paper §2, "List Edge Coloring").
//
// An instance carries, for every edge, a sorted list of admissible colors
// from a global color space {0, ..., color_space-1}. The (degree+1)-list
// problem requires |L_e| >= deg(e)+1; the plain K-edge-coloring problem is
// the special case L_e = {0..K-1}. Slack (|L_e| / deg(e), paper §2 "Relaxed
// List Edge Coloring") is the quantity the recursive solver of Appendix D
// tracks, so helpers to measure it live here too.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace dec {

struct ListEdgeInstance {
  const Graph* g = nullptr;
  int color_space = 0;                    // colors are in [0, color_space)
  std::vector<std::vector<Color>> lists;  // per edge id, sorted ascending

  const std::vector<Color>& list(EdgeId e) const {
    return lists[static_cast<std::size_t>(e)];
  }
};

/// Throws unless lists are sorted, duplicate-free, in range, and every edge
/// has |L_e| >= deg(e) + 1.
void validate_degree_plus_one(const ListEdgeInstance& inst);

/// Throws unless lists are sorted, duplicate-free and in range (no size
/// requirement). Shared precondition of the solvers.
void validate_lists(const ListEdgeInstance& inst);

/// Minimum slack min_e |L_e| / max(1, deg(e)). Edges of degree 0 contribute
/// |L_e| directly.
double min_slack(const ListEdgeInstance& inst);

/// L_e = {0..K-1} for all edges. K defaults to 2Δ-1 (i.e. Δ̄+1) when 0.
ListEdgeInstance make_full_palette_instance(const Graph& g, int k = 0);

/// Random (degree+1)-list instance: each edge gets a uniform random subset of
/// size exactly deg(e)+1 from [0, color_space). Requires color_space > Δ̄.
ListEdgeInstance make_random_list_instance(const Graph& g, int color_space,
                                           Rng& rng);

/// Adversarially skewed (degree+1)-list instance: each edge's list is drawn
/// with probability `bias` from the lower half of the color space, making the
/// λ_e fractions of the recursive splits extreme.
ListEdgeInstance make_skewed_list_instance(const Graph& g, int color_space,
                                           double bias, Rng& rng);

/// True iff `colors` is a complete proper edge coloring and every edge's
/// color belongs to its list.
bool check_list_coloring(const ListEdgeInstance& inst,
                         const std::vector<Color>& colors);

}  // namespace dec
