#include "coloring/greedy_edge.hpp"

#include <algorithm>

namespace dec {

std::int64_t greedy_list_edge_color(const ListEdgeInstance& inst,
                                    const std::vector<Color>& schedule,
                                    int schedule_palette,
                                    std::vector<Color>& colors,
                                    const std::vector<bool>* active,
                                    RoundLedger* ledger) {
  const Graph& g = *inst.g;
  DEC_REQUIRE(schedule.size() == static_cast<std::size_t>(g.num_edges()),
              "schedule has wrong length");
  DEC_REQUIRE(colors.size() == static_cast<std::size_t>(g.num_edges()),
              "color vector has wrong length");
  DEC_REQUIRE(is_proper_edge_coloring(g, schedule),
              "schedule must be a proper edge coloring");

  // Bucket participating uncolored edges by schedule class.
  std::vector<std::vector<EdgeId>> buckets(
      static_cast<std::size_t>(schedule_palette));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (colors[static_cast<std::size_t>(e)] != kUncolored) continue;
    if (active != nullptr && !(*active)[static_cast<std::size_t>(e)]) continue;
    const Color s = schedule[static_cast<std::size_t>(e)];
    DEC_REQUIRE(s >= 0 && s < schedule_palette, "schedule color out of range");
    buckets[static_cast<std::size_t>(s)].push_back(e);
  }

  std::int64_t rounds = 0;
  std::vector<Color> blocked;  // scratch
  for (int cls = 0; cls < schedule_palette; ++cls) {
    const auto& bucket = buckets[static_cast<std::size_t>(cls)];
    if (bucket.empty()) continue;
    // Edges of one class are pairwise non-adjacent, so coloring them in any
    // order within the round is race-free.
    for (const EdgeId e : bucket) {
      blocked.clear();
      const auto [u, v] = g.endpoints(e);
      for (const NodeId w : {u, v}) {
        for (const Incidence& inc : g.neighbors(w)) {
          const Color c = colors[static_cast<std::size_t>(inc.edge)];
          if (c != kUncolored) blocked.push_back(c);
        }
      }
      std::sort(blocked.begin(), blocked.end());
      Color pick = kUncolored;
      for (const Color cand : inst.list(e)) {
        if (!std::binary_search(blocked.begin(), blocked.end(), cand)) {
          pick = cand;
          break;
        }
      }
      DEC_CHECK(pick != kUncolored,
                "greedy list coloring ran out of colors "
                "(list smaller than uncolored degree + 1?)");
      colors[static_cast<std::size_t>(e)] = pick;
    }
    ++rounds;
    if (ledger != nullptr) ledger->charge("greedy_list_edge", 1);
  }
  return rounds;
}

}  // namespace dec
