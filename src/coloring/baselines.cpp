#include "coloring/baselines.hpp"

#include <algorithm>

#include "coloring/color_reduction.hpp"
#include "coloring/greedy_edge.hpp"
#include "coloring/linial.hpp"
#include "coloring/list_instance.hpp"
#include "graph/line_graph.hpp"
#include "util/logstar.hpp"
#include "util/prime.hpp"

namespace dec {

EdgeColoringResult edge_color_fast_2delta(const Graph& g, RoundLedger* ledger) {
  EdgeColoringResult res;
  if (g.num_edges() == 0) {
    res.palette = 0;
    return res;
  }
  const int target = g.max_edge_degree() + 1;  // = 2Δ-1 on Δ-regular graphs
  const Graph lg = line_graph(g);
  const LinialResult lin = linial_color(lg, ledger);
  res.rounds += lin.rounds;

  if (lg.max_degree() == 0) {
    // All edges isolated in the line graph (a perfect matching): color 0.
    res.colors.assign(static_cast<std::size_t>(g.num_edges()), 0);
    res.palette = 1;
    return res;
  }

  const std::int64_t q = static_cast<std::int64_t>(
      next_prime(static_cast<std::uint64_t>(2 * lg.max_degree() + 2)));
  DEC_CHECK(lin.palette <= q * q, "Linial palette exceeds ap_reduce domain");
  const ReductionResult ap = ap_reduce(lg, lin.colors, q, ledger);
  res.rounds += ap.rounds;
  const ReductionResult fin =
      greedy_reduce(lg, ap.colors, ap.palette, target, ledger);
  res.rounds += fin.rounds;

  res.colors = fin.colors;
  res.palette = fin.palette;
  DEC_CHECK(is_complete_proper_edge_coloring(g, res.colors),
            "fast 2Δ-1 baseline produced an improper edge coloring");
  return res;
}

EdgeColoringResult edge_color_greedy_quadratic(const Graph& g,
                                               RoundLedger* ledger) {
  EdgeColoringResult res;
  if (g.num_edges() == 0) return res;
  const LinialResult schedule = linial_edge_color(g, ledger);
  res.rounds += schedule.rounds;

  const ListEdgeInstance inst = make_full_palette_instance(g);
  res.colors.assign(static_cast<std::size_t>(g.num_edges()), kUncolored);
  res.rounds += greedy_list_edge_color(inst, schedule.colors, schedule.palette,
                                       res.colors, nullptr, ledger);
  res.palette = inst.color_space;
  DEC_CHECK(is_complete_proper_edge_coloring(g, res.colors),
            "quadratic greedy baseline produced an improper edge coloring");
  return res;
}

EdgeColoringResult edge_color_luby(const Graph& g, Rng& rng,
                                   RoundLedger* ledger) {
  EdgeColoringResult res;
  if (g.num_edges() == 0) return res;
  const int k = std::max(1, g.max_edge_degree() + 1);
  res.palette = k;
  res.colors.assign(static_cast<std::size_t>(g.num_edges()), kUncolored);

  const std::int64_t cap =
      64 + 64 * ceil_log2(static_cast<std::uint64_t>(g.num_edges()) + 2);
  std::vector<Color> proposal(static_cast<std::size_t>(g.num_edges()),
                              kUncolored);
  std::vector<bool> free_scratch;
  std::int64_t uncolored = g.num_edges();
  while (uncolored > 0) {
    DEC_CHECK(res.rounds < cap, "Luby edge coloring exceeded its round cap");
    // Propose: uniform among free colors (always >= 1 by degree+1 palette).
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      proposal[static_cast<std::size_t>(e)] = kUncolored;
      if (res.colors[static_cast<std::size_t>(e)] != kUncolored) continue;
      free_scratch.assign(static_cast<std::size_t>(k), true);
      const auto [u, v] = g.endpoints(e);
      for (const NodeId w : {u, v}) {
        for (const Incidence& inc : g.neighbors(w)) {
          const Color c = res.colors[static_cast<std::size_t>(inc.edge)];
          if (c != kUncolored) free_scratch[static_cast<std::size_t>(c)] = false;
        }
      }
      int free_count = 0;
      for (int c = 0; c < k; ++c) {
        if (free_scratch[static_cast<std::size_t>(c)]) ++free_count;
      }
      DEC_CHECK(free_count > 0, "no free color despite degree+1 palette");
      std::int64_t pick =
          static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(free_count)));
      for (int c = 0; c < k; ++c) {
        if (!free_scratch[static_cast<std::size_t>(c)]) continue;
        if (pick-- == 0) {
          proposal[static_cast<std::size_t>(e)] = c;
          break;
        }
      }
    }
    // Commit proposals without an adjacent identical proposal.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Color p = proposal[static_cast<std::size_t>(e)];
      if (p == kUncolored) continue;
      bool conflict = false;
      const auto [u, v] = g.endpoints(e);
      for (const NodeId w : {u, v}) {
        for (const Incidence& inc : g.neighbors(w)) {
          if (inc.edge != e &&
              proposal[static_cast<std::size_t>(inc.edge)] == p) {
            conflict = true;
            break;
          }
        }
        if (conflict) break;
      }
      if (!conflict) {
        res.colors[static_cast<std::size_t>(e)] = p;
        --uncolored;
      }
    }
    ++res.rounds;
    if (ledger != nullptr) ledger->charge("luby_edge", 1);
  }
  DEC_CHECK(is_complete_proper_edge_coloring(g, res.colors),
            "Luby baseline produced an improper edge coloring");
  return res;
}

}  // namespace dec
