#include "coloring/color_reduction.hpp"

#include <algorithm>

#include "coloring/linial.hpp"
#include "util/prime.hpp"

namespace dec {

ReductionResult ap_reduce(const Graph& g, const std::vector<Color>& input,
                          std::int64_t q, RoundLedger* ledger) {
  DEC_REQUIRE(is_prime(static_cast<std::uint64_t>(q)), "q must be prime");
  DEC_REQUIRE(q >= 2 * g.max_degree() + 2, "ap_reduce needs q >= 2Δ+2");
  DEC_REQUIRE(is_proper_vertex_coloring(g, input), "input must be proper");
  const NodeId n = g.num_nodes();
  DEC_REQUIRE(input.size() == static_cast<std::size_t>(n),
              "input coloring has wrong length");
  for (const Color c : input) {
    DEC_REQUIRE(c >= 0 && static_cast<std::int64_t>(c) < q * q,
                "input palette exceeds q^2");
  }

  ReductionResult res;
  res.palette = static_cast<int>(q);

  std::vector<std::int64_t> line_a(static_cast<std::size_t>(n));
  std::vector<std::int64_t> line_b(static_cast<std::size_t>(n));
  std::vector<Color> final_color(static_cast<std::size_t>(n), kUncolored);
  for (NodeId v = 0; v < n; ++v) {
    line_a[static_cast<std::size_t>(v)] = input[static_cast<std::size_t>(v)] / q;
    line_b[static_cast<std::size_t>(v)] = input[static_cast<std::size_t>(v)] % q;
    if (line_a[static_cast<std::size_t>(v)] == 0) {
      // Constant lines are settled from the start; adjacent constant lines
      // have distinct b because the input is proper.
      final_color[static_cast<std::size_t>(v)] =
          static_cast<Color>(line_b[static_cast<std::size_t>(v)]);
    }
  }

  for (std::int64_t t = 0; t < q; ++t) {
    // Snapshot of the settled state at the start of the round (what
    // neighbors announced last round).
    const std::vector<Color> settled_snapshot = final_color;
    std::vector<Color> settling(static_cast<std::size_t>(n), kUncolored);
    for (NodeId v = 0; v < n; ++v) {
      if (settled_snapshot[static_cast<std::size_t>(v)] != kUncolored) continue;
      const std::int64_t cand = (line_b[static_cast<std::size_t>(v)] +
                                 line_a[static_cast<std::size_t>(v)] * t) % q;
      bool blocked = false;
      for (const Incidence& inc : g.neighbors(v)) {
        const std::size_t u = static_cast<std::size_t>(inc.neighbor);
        if (settled_snapshot[u] != kUncolored) {
          if (settled_snapshot[u] == static_cast<Color>(cand)) {
            blocked = true;
            break;
          }
        } else {
          const std::int64_t u_cand = (line_b[u] + line_a[u] * t) % q;
          if (u_cand == cand) {  // symmetric deferral
            blocked = true;
            break;
          }
        }
      }
      if (!blocked) settling[static_cast<std::size_t>(v)] = static_cast<Color>(cand);
    }
    for (NodeId v = 0; v < n; ++v) {
      if (settling[static_cast<std::size_t>(v)] != kUncolored) {
        final_color[static_cast<std::size_t>(v)] =
            settling[static_cast<std::size_t>(v)];
      }
    }
    ++res.rounds;
    if (ledger != nullptr) ledger->charge("ap_reduce", 1);
    if (std::none_of(final_color.begin(), final_color.end(),
                     [](Color c) { return c == kUncolored; })) {
      break;
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    DEC_CHECK(final_color[static_cast<std::size_t>(v)] != kUncolored,
              "ap_reduce failed to settle within q rounds");
  }
  res.colors = std::move(final_color);
  DEC_CHECK(is_proper_vertex_coloring(g, res.colors),
            "ap_reduce produced an improper coloring");
  return res;
}

ReductionResult greedy_reduce(const Graph& g, const std::vector<Color>& input,
                              int input_palette, int target,
                              RoundLedger* ledger) {
  DEC_REQUIRE(target >= g.max_degree() + 1,
              "greedy reduction needs target >= Δ+1");
  DEC_REQUIRE(is_proper_vertex_coloring(g, input), "input must be proper");
  for (const Color c : input) {
    DEC_REQUIRE(c >= 0 && c < input_palette, "input palette bound violated");
  }
  ReductionResult res;
  res.colors = input;
  res.palette = std::min(input_palette, target);

  std::vector<bool> used(static_cast<std::size_t>(target), false);
  for (int c = input_palette - 1; c >= target; --c) {
    // All nodes of color c re-pick simultaneously; they are pairwise
    // non-adjacent because the coloring stays proper throughout.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (res.colors[static_cast<std::size_t>(v)] != c) continue;
      std::fill(used.begin(), used.end(), false);
      for (const Incidence& inc : g.neighbors(v)) {
        const Color nc = res.colors[static_cast<std::size_t>(inc.neighbor)];
        if (nc >= 0 && nc < target) used[static_cast<std::size_t>(nc)] = true;
      }
      Color pick = kUncolored;
      for (int cand = 0; cand < target; ++cand) {
        if (!used[static_cast<std::size_t>(cand)]) {
          pick = cand;
          break;
        }
      }
      DEC_CHECK(pick != kUncolored,
                "greedy reduction found no free color (target < Δ+1?)");
      res.colors[static_cast<std::size_t>(v)] = pick;
    }
    ++res.rounds;
    if (ledger != nullptr) ledger->charge("greedy_reduce", 1);
  }
  DEC_CHECK(is_proper_vertex_coloring(g, res.colors),
            "greedy reduction produced an improper coloring");
  return res;
}

ReductionResult vertex_color_delta_plus_one(const Graph& g,
                                            RoundLedger* ledger) {
  const LinialResult lin = linial_color(g, ledger);
  if (g.max_degree() == 0) {
    return ReductionResult{lin.colors, lin.palette, lin.rounds};
  }
  const std::int64_t q = static_cast<std::int64_t>(
      next_prime(static_cast<std::uint64_t>(2 * g.max_degree() + 2)));
  // Linial's palette is q_lin² with q_lin = smallest prime > Δ, so it fits
  // under q² for our larger q.
  DEC_CHECK(lin.palette <= q * q, "Linial palette does not fit ap_reduce");
  ReductionResult ap = ap_reduce(g, lin.colors, q, ledger);
  ReductionResult out =
      greedy_reduce(g, ap.colors, ap.palette, g.max_degree() + 1, ledger);
  out.rounds += lin.rounds + ap.rounds;
  return out;
}

}  // namespace dec
