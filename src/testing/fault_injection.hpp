// Deterministic fault injection for the chaos suite.
//
// A fault point is a named site in library code (DEC_FAULT_POINT) that
// normally compiles to nothing. In builds configured with
// -DDEC_FAULT_INJECTION=ON the sites call into a process-global registry of
// armed FaultPlans: a plan names a point, the hit index at which it fires,
// and the action — throw TransientError, throw std::bad_alloc, sleep, or
// trip the current run's CancelToken. Hit counting is exact and
// single-threaded-deterministic (a global mutex serializes the slow path),
// so a test that arms "fire on the 3rd slab allocation" aborts the same
// round every run; under the parallel engine the *firing* hit is still
// exact, though which shard observes it depends on scheduling.
//
// Discipline for tests: arm plans, run the scenario, then disarm_all() —
// the registry is process-global, so leaked plans would leak into later
// tests. fault::enabled() is a relaxed atomic armed-plan count; unarmed
// builds (and armed builds with no plans) pay one relaxed load per site.
//
// Current fault points:
//   "network.round" — top of SyncNetwork::begin_round (round barrier, after
//                     the cancel check; DiNetwork/parallel engine share it)
//   "slab.alloc"    — MessageSlab::allocate (spilled-message arena; firing
//                     mid-round exercises abort_round on the worker that
//                     spilled)
//   "service.worker" — SolverService worker, between job pickup and
//                     execution (artificial latency / transient pre-flight
//                     failures without touching round state)
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace dec {
class CancelToken;
}  // namespace dec

namespace dec::fault {

enum class Action : int {
  kThrowTransient,  // throw dec::TransientError (retryable)
  kAllocFail,       // throw std::bad_alloc (retryable)
  kDelay,           // sleep for `delay` (latency injection)
  kCancel,          // request_cancel() on the site's CancelToken, if any
};

struct FaultPlan {
  Action action = Action::kThrowTransient;
  /// Fire when the point's 0-based hit index reaches this value...
  std::int64_t fire_at = 0;
  /// ...and, when period > 0, again every `period` hits afterwards
  /// (period == 0 means single-shot: fire once, then stay dormant).
  std::int64_t period = 0;
  /// Sleep length for kDelay.
  std::chrono::nanoseconds delay{0};
};

/// Arm (or replace) the plan for a fault point. Hit/fired counters for the
/// point restart at zero.
void arm(const std::string& point, FaultPlan plan);

/// Drop every armed plan (counters included). Call from test teardown.
void disarm_all();

/// Times an armed point was reached / actually fired (0 for unarmed
/// points — counting starts at arm()).
std::int64_t hits(const std::string& point);
std::int64_t fired(const std::string& point);

/// True while any plan is armed (relaxed; the fast path of every site).
bool enabled();

/// Site entry, called by DEC_FAULT_POINT. May throw TransientError or
/// std::bad_alloc, sleep, or cancel `token` (null is fine — a kCancel plan
/// on a token-less site fires as a no-op but still counts).
void hit(const char* point, CancelToken* token = nullptr);

}  // namespace dec::fault

/// A named fault site. Compiles to nothing unless the build defines
/// DEC_FAULT_INJECTION (CMake option of the same name).
#ifdef DEC_FAULT_INJECTION
#define DEC_FAULT_POINT(name) ::dec::fault::hit((name))
#define DEC_FAULT_POINT_CTX(name, token) ::dec::fault::hit((name), (token))
#else
#define DEC_FAULT_POINT(name) \
  do {                        \
  } while (0)
#define DEC_FAULT_POINT_CTX(name, token) \
  do {                                   \
  } while (0)
#endif
