#include "testing/fault_injection.hpp"

#include <atomic>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

#include "sim/cancel.hpp"
#include "util/check.hpp"

namespace dec::fault {

namespace {

struct PointState {
  FaultPlan plan;
  std::int64_t hits = 0;
  std::int64_t fired = 0;
};

// One global registry. The armed-plan count is kept in a separate relaxed
// atomic so that unarmed runs never touch the mutex (hit() fast path).
std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::string, PointState>& registry() {
  static std::unordered_map<std::string, PointState> points;
  return points;
}

std::atomic<int>& armed_count() {
  static std::atomic<int> count{0};
  return count;
}

bool should_fire(const PointState& st, std::int64_t hit_index) {
  if (hit_index < st.plan.fire_at) return false;
  if (hit_index == st.plan.fire_at) return true;
  if (st.plan.period <= 0) return false;
  return (hit_index - st.plan.fire_at) % st.plan.period == 0;
}

}  // namespace

void arm(const std::string& point, FaultPlan plan) {
  std::lock_guard<std::mutex> lock(registry_mu());
  auto& points = registry();
  if (points.find(point) == points.end()) {
    armed_count().fetch_add(1, std::memory_order_relaxed);
  }
  points[point] = PointState{plan, 0, 0};
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(registry_mu());
  registry().clear();
  armed_count().store(0, std::memory_order_relaxed);
}

std::int64_t hits(const std::string& point) {
  std::lock_guard<std::mutex> lock(registry_mu());
  const auto& points = registry();
  const auto it = points.find(point);
  return it == points.end() ? 0 : it->second.hits;
}

std::int64_t fired(const std::string& point) {
  std::lock_guard<std::mutex> lock(registry_mu());
  const auto& points = registry();
  const auto it = points.find(point);
  return it == points.end() ? 0 : it->second.fired;
}

bool enabled() {
  return armed_count().load(std::memory_order_relaxed) != 0;
}

void hit(const char* point, CancelToken* token) {
  if (!enabled()) return;
  FaultPlan plan;
  {
    std::lock_guard<std::mutex> lock(registry_mu());
    auto& points = registry();
    const auto it = points.find(point);
    if (it == points.end()) return;
    PointState& st = it->second;
    const std::int64_t index = st.hits++;
    if (!should_fire(st, index)) return;
    ++st.fired;
    plan = st.plan;
  }
  // Act outside the lock: sleeping or unwinding with the registry locked
  // would serialize unrelated sites (and throwing out of a locked scope is
  // just asking for surprises in future edits).
  switch (plan.action) {
    case Action::kThrowTransient:
      throw TransientError(std::string("injected transient fault at ") +
                           point);
    case Action::kAllocFail:
      throw std::bad_alloc();
    case Action::kDelay:
      std::this_thread::sleep_for(plan.delay);
      return;
    case Action::kCancel:
      if (token != nullptr) token->request_cancel();
      return;
  }
}

}  // namespace dec::fault
