#include "core/token_dropping.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "sim/dinetwork.hpp"
#include "sim/pool.hpp"

namespace dec {

namespace {

// Priority key for step 4: receivers prefer senders w with small
// deg(w)/α_w; ties broken by node id, then arc id, for determinism on
// parallel arcs. Compare via cross multiplication to stay in integers.
bool sender_less(std::int64_t deg_a, std::int64_t alpha_a, NodeId node_a,
                 EdgeId arc_a, std::int64_t deg_b, std::int64_t alpha_b,
                 NodeId node_b, EdgeId arc_b) {
  const std::int64_t lhs = deg_a * alpha_b;
  const std::int64_t rhs = deg_b * alpha_a;
  if (lhs != rhs) return lhs < rhs;
  if (node_a != node_b) return node_a < node_b;
  return arc_a < arc_b;
}

// The game as a node program on the directed adapter. Each phase is
// three genuine rounds:
//   R1 (announce): consume the previous phase's accepts (token arrivals are
//       receive-side and free), re-evaluate activity, retire δ, and announce
//       {deg, α} along every still-active out-arc;
//   R2 (request):  receivers with spare capacity rank the announcing senders
//       by the announced deg/α key and request along the chosen in-arcs;
//   R3 (accept):   senders grant the first x'_u requests in (receiver id,
//       arc id) order, send the token along the arc, and retire the arc.
// The final phase's accepts are consumed by a free drain. Activity,
// passivity, and token counts live in shared arrays but every slot is
// written only by its owning node (receiver in R1, sender in R3 — never the
// same round), so the program is race-free on the parallel engine and
// serial and parallel runs are bit-identical.
TokenDroppingResult token_dropping_message_passing(
    const Digraph& game, std::vector<int> x0, int k, int delta,
    const std::vector<int>& alpha, RoundLedger* ledger, int num_threads,
    NetworkPool* pool, CancelToken* cancel, SlotFormat slot_format) {
  const NodeId n = game.num_nodes();
  TokenDroppingResult res;

  std::vector<int> x = std::move(x0);                      // active tokens
  std::vector<int> y(static_cast<std::size_t>(n), 0);      // passive tokens
  // vector<char>, not vector<bool>: adjacent arcs' flags must be writable
  // from different shards without sharing a packed byte.
  std::vector<char> passive(static_cast<std::size_t>(game.num_arcs()), 0);
  std::vector<std::int64_t> moved(static_cast<std::size_t>(n), 0);

  // Widest per-arc payload is R1's {deg, α} announcement.
  ScopedDiNetwork net_scope(pool, game, ledger, "token_dropping", num_threads,
                            cancel, SlotPlan{slot_format, 2});
  DiNetwork& net = *net_scope;

  // Receive-side half of a transfer: the accept that was in flight arrives
  // and the token materializes. The arc's passivity was already recorded by
  // its sender in R3 (the only writer of that flag), so receivers touch only
  // their own token count — R1 reads `passive` concurrently for the
  // announcements and must see no same-round writes.
  auto consume_accepts = [&](NodeId v, const auto& in) {
    const std::size_t in_deg = game.in(v).size();
    for (std::size_t j = 0; j < in_deg; ++j) {
      if (!in.along(j).empty()) ++x[static_cast<std::size_t>(v)];
    }
    DEC_CHECK(x[static_cast<std::size_t>(v)] >= 0, "negative active tokens");
    DEC_CHECK(x[static_cast<std::size_t>(v)] +
                      y[static_cast<std::size_t>(v)] <=
                  k,
              "Lemma 4.1 violated: more than k tokens at a node");
  };

  const std::int64_t num_phases = k / delta - 1;
  for (std::int64_t t = 1; t <= num_phases; ++t) {
    // R1: arrivals, activity, retirement, announcements.
    net.round_fast([&](NodeId v, const auto& in, DiOutbox& out) {
      consume_accepts(v, in);
      // Activity needs no shared flag: it is conveyed to the only parties
      // who care (the heads of still-active out-arcs) by the announcement.
      if (x[static_cast<std::size_t>(v)] <
          alpha[static_cast<std::size_t>(v)] + delta) {
        return;
      }
      x[static_cast<std::size_t>(v)] -= delta;
      y[static_cast<std::size_t>(v)] += delta;
      const auto out_arcs = game.out(v);
      for (std::size_t j = 0; j < out_arcs.size(); ++j) {
        if (passive[static_cast<std::size_t>(out_arcs[j].edge)] != 0) continue;
        out.along(j, {static_cast<std::int64_t>(game.degree(v)),
                      static_cast<std::int64_t>(
                          alpha[static_cast<std::size_t>(v)])});
      }
    });
    // R2: receivers rank announcing senders and request tokens.
    net.round_fast([&](NodeId v, const auto& in, DiOutbox& out) {
      const std::int64_t capacity = static_cast<std::int64_t>(k) - t * delta -
                                    alpha[static_cast<std::size_t>(v)];
      if (x[static_cast<std::size_t>(v)] > capacity) return;
      const std::int64_t want = static_cast<std::int64_t>(k) - t * delta -
                                x[static_cast<std::size_t>(v)];
      if (want <= 0) return;
      const auto in_arcs = game.in(v);
      struct Cand {
        std::int64_t deg, alpha;
        NodeId node;
        EdgeId arc;
        std::size_t j;
      };
      // Per-worker scratch, rebuilt from scratch for every node: reusing the
      // capacity avoids a heap allocation per node step (tens of thousands
      // per run) without affecting results.
      thread_local std::vector<Cand> senders;
      senders.clear();
      for (std::size_t j = 0; j < in_arcs.size(); ++j) {
        if (passive[static_cast<std::size_t>(in_arcs[j].edge)] != 0) continue;
        const ArcView ann = in.along(j);
        if (ann.empty()) continue;
        senders.push_back(
            {ann.at(0), ann.at(1), in_arcs[j].node, in_arcs[j].edge, j});
      }
      if (senders.empty()) return;
      std::sort(senders.begin(), senders.end(),
                [](const Cand& a, const Cand& b) {
                  return sender_less(a.deg, a.alpha, a.node, a.arc, b.deg,
                                     b.alpha, b.node, b.arc);
                });
      const std::size_t count = std::min<std::size_t>(
          senders.size(), static_cast<std::size_t>(want));
      for (std::size_t i = 0; i < count; ++i) {
        out.against(senders[i].j, {1});
      }
    });
    // R3: senders grant requests in (receiver, arc) order and ship tokens.
    net.round_fast([&](NodeId v, const auto& in, DiOutbox& out) {
      const auto out_arcs = game.out(v);
      struct Prop {
        NodeId node;
        EdgeId arc;
        std::size_t j;
      };
      thread_local std::vector<Prop> props;  // see the R2 scratch note
      props.clear();
      for (std::size_t j = 0; j < out_arcs.size(); ++j) {
        if (in.against(j).empty()) continue;
        props.push_back({out_arcs[j].node, out_arcs[j].edge, j});
      }
      if (props.empty()) return;
      std::sort(props.begin(), props.end(), [](const Prop& a, const Prop& b) {
        if (a.node != b.node) return a.node < b.node;
        return a.arc < b.arc;
      });
      const int q = std::min(static_cast<int>(props.size()),
                             x[static_cast<std::size_t>(v)]);
      for (int i = 0; i < q; ++i) {
        const Prop& p = props[static_cast<std::size_t>(i)];
        DEC_CHECK(passive[static_cast<std::size_t>(p.arc)] == 0,
                  "token moved over an already-passive edge");
        passive[static_cast<std::size_t>(p.arc)] = 1;
        out.along(p.j, {1});
      }
      x[static_cast<std::size_t>(v)] -= q;
      moved[static_cast<std::size_t>(v)] += q;
    });
    ++res.phases;
  }
  // The final phase's accepts are still in flight; receiving them is free.
  net.drain_fast(consume_accepts);

  res.rounds = net.rounds_executed();
  res.max_message_bits = net.audit().max_bits();
  res.edge_passive.assign(static_cast<std::size_t>(game.num_arcs()), false);
  for (EdgeId a = 0; a < game.num_arcs(); ++a) {
    res.edge_passive[static_cast<std::size_t>(a)] =
        passive[static_cast<std::size_t>(a)] != 0;
  }
  res.tokens_moved =
      std::accumulate(moved.begin(), moved.end(), std::int64_t{0});
  res.tokens.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    res.tokens[static_cast<std::size_t>(v)] =
        x[static_cast<std::size_t>(v)] + y[static_cast<std::size_t>(v)];
  }
  return res;
}

}  // namespace

TokenDroppingResult run_token_dropping(const Digraph& game,
                                       std::vector<int> initial_tokens,
                                       const TokenDroppingParams& params,
                                       RoundLedger* ledger, int num_threads,
                                       NetworkPool* pool,
                                       CancelToken* cancel) {
  const NodeId n = game.num_nodes();
  const int k = params.k;
  const int delta = params.delta;
  DEC_REQUIRE(k >= 1, "k must be >= 1");
  DEC_REQUIRE(delta >= 1, "delta must be >= 1");
  DEC_REQUIRE(initial_tokens.size() == static_cast<std::size_t>(n),
              "initial token vector has wrong length");

  std::vector<int> alpha = params.alpha;
  if (alpha.empty()) alpha.assign(static_cast<std::size_t>(n), delta);
  DEC_REQUIRE(alpha.size() == static_cast<std::size_t>(n),
              "alpha vector has wrong length");
  for (NodeId v = 0; v < n; ++v) {
    DEC_REQUIRE(alpha[static_cast<std::size_t>(v)] >= delta,
                "Theorem 4.3 requires alpha_v >= delta");
    DEC_REQUIRE(initial_tokens[static_cast<std::size_t>(v)] >= 0 &&
                    initial_tokens[static_cast<std::size_t>(v)] <= k,
                "initial tokens must be in [0, k]");
  }

  const std::int64_t total_before =
      std::accumulate(initial_tokens.begin(), initial_tokens.end(),
                      std::int64_t{0});

  TokenDroppingResult res = token_dropping_message_passing(
      game, std::move(initial_tokens), k, delta, alpha, ledger, num_threads,
      pool, cancel, params.slot_format);

  const std::int64_t total_after =
      std::accumulate(res.tokens.begin(), res.tokens.end(), std::int64_t{0});
  DEC_CHECK(total_after == total_before, "token count not conserved");
  return res;
}

double theorem_4_3_bound(const Digraph& game, const TokenDroppingParams& params,
                         EdgeId arc) {
  const auto [u, v] = game.arc(arc);
  const double au = params.alpha.empty()
                        ? params.delta
                        : params.alpha[static_cast<std::size_t>(u)];
  const double av = params.alpha.empty()
                        ? params.delta
                        : params.alpha[static_cast<std::size_t>(v)];
  const double du = game.degree(u);
  const double dv = game.degree(v);
  return 2.0 * (au + av) +
         (du * dv / (au * av) + du / au + dv / av) * params.delta;
}

double max_bound_violation(const Digraph& game,
                           const TokenDroppingParams& params,
                           const TokenDroppingResult& result) {
  double worst = -1e300;
  for (EdgeId a = 0; a < game.num_arcs(); ++a) {
    if (result.edge_passive[static_cast<std::size_t>(a)]) continue;
    const auto [u, v] = game.arc(a);
    const double diff =
        static_cast<double>(result.tokens[static_cast<std::size_t>(u)]) -
        static_cast<double>(result.tokens[static_cast<std::size_t>(v)]);
    worst = std::max(worst, diff - theorem_4_3_bound(game, params, a));
  }
  return worst == -1e300 ? 0.0 : worst;
}

Digraph layered_game(int layers, int width, int out_deg, Rng& rng) {
  DEC_REQUIRE(layers >= 1 && width >= 1 && out_deg >= 0, "bad game shape");
  std::vector<std::pair<NodeId, NodeId>> arcs;
  auto id = [width](int layer, int i) {
    return static_cast<NodeId>(layer * width + i);
  };
  for (int layer = 1; layer < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      std::vector<int> targets(static_cast<std::size_t>(width));
      std::iota(targets.begin(), targets.end(), 0);
      rng.shuffle(targets);
      const int deg = std::min(out_deg, width);
      for (int j = 0; j < deg; ++j) {
        arcs.emplace_back(id(layer, i), id(layer - 1, targets[static_cast<std::size_t>(j)]));
      }
    }
  }
  return Digraph(static_cast<NodeId>(layers) * width, std::move(arcs));
}

Digraph random_game(NodeId n, double p, Rng& rng) {
  DEC_REQUIRE(n >= 1, "need at least one node");
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v && rng.next_bool(p)) arcs.emplace_back(u, v);
    }
  }
  return Digraph(n, std::move(arcs));
}

}  // namespace dec
