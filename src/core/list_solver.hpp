// Relaxed list edge coloring solver P(Δ̄, S, C) on 2-colored bipartite
// graphs (paper Lemma D.1 + Lemma D.2).
//
// Recursive color-space splitting: k = ⌊log C⌋ levels; at each level every
// group of edges sharing a color-space interval splits that interval in two,
// each edge committing (red/blue via the generalized defective 2-edge
// coloring, λ_e = its red-list fraction) to the half where its list keeps
// the most value relative to its new degree — Lemma D.1 shows the slack
// degrades by at most (1+ε)² per level, so slack S ≥ e² survives all
// k levels with ε = 1/log C.
//
// Edges whose in-group degree drops below β/ε go *passive* and are colored
// after the recursion unwinds (deepest level first); passives hold slack ≥ 1
// at demotion, and every later-colored neighbor removes at most one list
// color while removing one unit of degree, so a free color always survives.
#pragma once

#include <vector>

#include "coloring/list_instance.hpp"
#include "core/params.hpp"
#include "graph/bipartite.hpp"
#include "sim/ledger.hpp"

namespace dec {

struct ListSolveStats {
  std::int64_t rounds = 0;
  int levels = 0;
  std::int64_t colored = 0;
  std::int64_t passive_natural = 0;   // demoted by the β/ε degree rule
  std::int64_t passive_safety = 0;    // demoted by the slack safety net
  std::int64_t active_at_end = 0;     // colored in item 3
};

/// Solve the list instance restricted to the currently uncolored edges of
/// `colors` (entries == kUncolored). Pre-colored entries are respected as
/// blockers and never changed. `schedule` is a proper edge coloring of g
/// used to sequence greedy steps. Requires: for every uncolored edge,
/// |list minus already-used neighbor colors| >= S * (uncolored degree), with
/// S >= e^2 for full theory coverage (smaller S is accepted but the safety
/// demotion will fire more often).
///
/// Throws if the slack invariant (remaining list > in-group degree) ever
/// breaks — that would make a greedy completion impossible.
ListSolveStats solve_relaxed_list(const Graph& g, const Bipartition& parts,
                                  const ListEdgeInstance& inst, double S,
                                  const std::vector<Color>& schedule,
                                  int schedule_palette,
                                  std::vector<Color>& colors,
                                  ParamMode mode = ParamMode::kPractical,
                                  RoundLedger* ledger = nullptr);

}  // namespace dec
