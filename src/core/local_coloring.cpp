#include "core/local_coloring.hpp"

#include <algorithm>
#include <cmath>

#include "coloring/defective.hpp"
#include "coloring/greedy_edge.hpp"
#include "coloring/linial.hpp"
#include "core/slack_boost.hpp"
#include "util/logstar.hpp"

namespace dec {

LocalColoringResult solve_list_edge_coloring(const Graph& g,
                                             const ListEdgeInstance& inst,
                                             ParamMode mode,
                                             RoundLedger* ledger) {
  validate_degree_plus_one(inst);
  DEC_REQUIRE(inst.g == &g, "instance must be over the given graph");

  LocalColoringResult res;
  res.colors.assign(static_cast<std::size_t>(g.num_edges()), kUncolored);
  if (g.num_edges() == 0) return res;

  // Precomputed symmetry breaking: an O(Δ̄²)-edge-coloring schedule (the "X
  // coloring" of Lemma D.3) and an O(Δ²)-vertex coloring, both O(log* n).
  const LinialResult schedule = linial_edge_color(g, ledger);
  const LinialResult vertex = linial_color(g, ledger);
  res.rounds += schedule.rounds + vertex.rounds;

  constexpr int kColors = 4;                    // c of Theorem D.4
  constexpr int kBoostTarget = 16 * kColors;    // k = 16c
  const double S = std::exp(2.0);               // S = e² (Lemma D.2)

  const int max_iters =
      8 + 2 * ceil_log2(static_cast<std::uint64_t>(g.max_degree()) + 2);

  for (int iter = 0; iter < max_iters; ++iter) {
    // Current uncolored subgraph.
    std::vector<EdgeId> unc;
    std::vector<std::pair<NodeId, NodeId>> sub_edges;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (res.colors[static_cast<std::size_t>(e)] == kUncolored) {
        unc.push_back(e);
        sub_edges.push_back(g.endpoints(e));
      }
    }
    if (unc.empty()) break;
    const Graph sub(g.num_nodes(), std::move(sub_edges));
    const int dcur = sub.max_degree();
    if (dcur <= 6) {
      res.tail_degree = dcur;
      break;
    }
    ++res.iterations;

    // Step 1: defective 4-coloring of the uncolored subgraph, defect ≤ Δ/2.
    const int defect_target = std::max(dcur / 4 + 1, dcur / 2);
    RoundLedger dledger;
    const DefectiveResult def = defective_split_coloring(
        sub, vertex.colors, vertex.palette, kColors, defect_target, &dledger);
    res.rounds += def.rounds;
    if (ledger != nullptr) ledger->charge("local_defective", def.rounds);

    // Step 2: all color pairs (a, b), sequentially (the paper iterates
    // through the ≤ c² pairs one after the other).
    for (int a = 0; a < kColors; ++a) {
      for (int b = a + 1; b < kColors; ++b) {
        std::vector<EdgeId> members;
        std::vector<std::pair<NodeId, NodeId>> pair_edges;
        for (const EdgeId e : unc) {
          if (res.colors[static_cast<std::size_t>(e)] != kUncolored) continue;
          const auto [u, v] = g.endpoints(e);
          const Color cu = def.colors[static_cast<std::size_t>(u)];
          const Color cv = def.colors[static_cast<std::size_t>(v)];
          if ((cu == a && cv == b) || (cu == b && cv == a)) {
            members.push_back(e);
            pair_edges.push_back(g.endpoints(e));
          }
        }
        if (members.empty()) continue;
        const Graph pair_sub(g.num_nodes(), std::move(pair_edges));
        Bipartition parts;
        parts.side.assign(static_cast<std::size_t>(g.num_nodes()), 0);
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          parts.side[static_cast<std::size_t>(v)] =
              def.colors[static_cast<std::size_t>(v)] == b ? 1 : 0;
        }

        // Remaining lists: instance lists minus used neighbor colors (in g).
        ListEdgeInstance pair_inst;
        pair_inst.g = &pair_sub;
        pair_inst.color_space = inst.color_space;
        pair_inst.lists.resize(members.size());
        std::vector<Color> pair_schedule(members.size());
        for (std::size_t i = 0; i < members.size(); ++i) {
          const EdgeId e = members[i];
          std::vector<Color> used;
          const auto [u, v] = g.endpoints(e);
          for (const NodeId w : {u, v}) {
            for (const Incidence& inc : g.neighbors(w)) {
              const Color c = res.colors[static_cast<std::size_t>(inc.edge)];
              if (c != kUncolored) used.push_back(c);
            }
          }
          std::sort(used.begin(), used.end());
          std::vector<Color> rem = inst.list(e);
          std::erase_if(rem, [&](Color c) {
            return std::binary_search(used.begin(), used.end(), c);
          });
          pair_inst.lists[i] = std::move(rem);
          pair_schedule[i] = schedule.colors[static_cast<std::size_t>(e)];
        }

        std::vector<Color> pair_colors(members.size(), kUncolored);
        RoundLedger bledger;
        const BoostStats boost = boost_partial_color(
            pair_sub, parts, pair_inst, S, kBoostTarget, pair_schedule,
            schedule.palette, pair_colors, mode, &bledger);
        res.rounds += boost.rounds;
        if (ledger != nullptr) ledger->charge("local_boost", boost.rounds);
        for (std::size_t i = 0; i < members.size(); ++i) {
          if (pair_colors[i] != kUncolored) {
            res.colors[static_cast<std::size_t>(members[i])] = pair_colors[i];
          }
        }
      }
    }
  }

  // Greedy tail along the schedule with the remaining lists; the degree+1
  // invariant guarantees completion.
  {
    ListEdgeInstance tail_inst;
    tail_inst.g = &g;
    tail_inst.color_space = inst.color_space;
    tail_inst.lists = inst.lists;
    res.rounds += greedy_list_edge_color(tail_inst, schedule.colors,
                                         schedule.palette, res.colors, nullptr,
                                         ledger);
  }

  DEC_CHECK(check_list_coloring(inst, res.colors),
            "LOCAL list coloring violated properness or list membership");
  return res;
}

LocalColoringResult solve_2delta_minus_1(const Graph& g, ParamMode mode,
                                         RoundLedger* ledger) {
  const ListEdgeInstance inst = make_full_palette_instance(g);
  return solve_list_edge_coloring(g, inst, mode, ledger);
}

}  // namespace dec
