#include "core/solver_registry.hpp"

#include "sim/pool.hpp"
#include "util/check.hpp"

namespace dec {

namespace {

/// Pull the typed job out of the params variant, failing loudly when the
/// variant does not match the solver id the request names.
template <class Job>
const Job& job_of(const SolverRequest& req) {
  const Job* job = std::get_if<Job>(&req.params);
  DEC_REQUIRE(job != nullptr,
              "solver request params variant does not match its solver id");
  return *job;
}

const Graph& graph_of(const SolverRequest& req) {
  DEC_REQUIRE(req.graph != nullptr, "solver request carries no graph");
  return *req.graph;
}

const Digraph& digraph_of(const SolverRequest& req) {
  DEC_REQUIRE(req.digraph != nullptr, "solver request carries no digraph");
  return *req.digraph;
}

SolverResult run_congest(const SolverRequest& req, int num_threads,
                         NetworkPool* pool, CancelToken* cancel) {
  const auto& job = job_of<CongestColoringJob>(req);
  SolverResult out;
  out.solver = req.solver;
  out.output = congest_edge_coloring(graph_of(req), job.eps, job.mode,
                                     &out.ledger, num_threads, pool, cancel);
  return out;
}

SolverResult run_bipartite(const SolverRequest& req, int num_threads,
                           NetworkPool* pool, CancelToken* cancel) {
  const auto& job = job_of<BipartiteColoringJob>(req);
  SolverResult out;
  out.solver = req.solver;
  out.output =
      bipartite_edge_coloring(graph_of(req), job.parts, job.eps, job.mode,
                              &out.ledger, num_threads, pool, cancel);
  return out;
}

SolverResult run_orientation(const SolverRequest& req, int num_threads,
                             NetworkPool* pool, CancelToken* cancel) {
  const auto& job = job_of<BalancedOrientationJob>(req);
  SolverResult out;
  out.solver = req.solver;
  out.output =
      balanced_orientation(graph_of(req), job.parts, job.eta, job.params,
                           &out.ledger, num_threads, pool, cancel);
  return out;
}

SolverResult run_defective2ec(const SolverRequest& req, int num_threads,
                              NetworkPool* pool, CancelToken* cancel) {
  const auto& job = job_of<Defective2ECJob>(req);
  SolverResult out;
  out.solver = req.solver;
  out.output = defective_2_edge_coloring(graph_of(req), job.parts, job.lambda,
                                         job.eps, job.mode, &out.ledger,
                                         num_threads, pool, cancel);
  return out;
}

SolverResult run_token_dropping_job(const SolverRequest& req, int num_threads,
                                    NetworkPool* pool, CancelToken* cancel) {
  const auto& job = job_of<TokenDroppingJob>(req);
  SolverResult out;
  out.solver = req.solver;
  out.output = run_token_dropping(digraph_of(req), job.initial_tokens,
                                  job.params, &out.ledger, num_threads, pool,
                                  cancel);
  return out;
}

}  // namespace

const std::vector<SolverEntry>& solver_registry() {
  static const std::vector<SolverEntry> kRegistry = {
      {"congest_edge_coloring", &run_congest},
      {"bipartite_edge_coloring", &run_bipartite},
      {"balanced_orientation", &run_orientation},
      {"defective_2_edge_coloring", &run_defective2ec},
      {"token_dropping", &run_token_dropping_job},
  };
  return kRegistry;
}

const char* to_string(SolverStatus status) {
  switch (status) {
    case SolverStatus::kOk: return "ok";
    case SolverStatus::kCancelled: return "cancelled";
    case SolverStatus::kDeadlineExceeded: return "deadline_exceeded";
    case SolverStatus::kRejected: return "rejected";
    case SolverStatus::kFailed: return "failed";
  }
  return "unknown";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

bool solver_registered(const std::string& id) {
  for (const SolverEntry& e : solver_registry()) {
    if (id == e.id) return true;
  }
  return false;
}

SolverResult execute_request(const SolverRequest& req, int num_threads,
                             NetworkPool* pool, CancelToken* cancel) {
  for (const SolverEntry& e : solver_registry()) {
    if (req.solver == e.id) return e.execute(req, num_threads, pool, cancel);
  }
  DEC_REQUIRE(false, "unknown solver id: " + req.solver);
  // Unreachable; DEC_REQUIRE(false, ...) always throws.
  throw CheckError("unreachable");
}

SolverRequest make_congest_request(std::shared_ptr<const Graph> g,
                                   CongestColoringJob job) {
  return {"congest_edge_coloring", std::move(g), nullptr, std::move(job)};
}

SolverRequest make_bipartite_request(std::shared_ptr<const Graph> g,
                                     BipartiteColoringJob job) {
  return {"bipartite_edge_coloring", std::move(g), nullptr, std::move(job)};
}

SolverRequest make_orientation_request(std::shared_ptr<const Graph> g,
                                       BalancedOrientationJob job) {
  return {"balanced_orientation", std::move(g), nullptr, std::move(job)};
}

SolverRequest make_defective2ec_request(std::shared_ptr<const Graph> g,
                                        Defective2ECJob job) {
  return {"defective_2_edge_coloring", std::move(g), nullptr, std::move(job)};
}

SolverRequest make_token_dropping_request(std::shared_ptr<const Digraph> dg,
                                          TokenDroppingJob job) {
  return {"token_dropping", nullptr, std::move(dg), std::move(job)};
}

}  // namespace dec
