// (2+ε)Δ-edge coloring of 2-colored bipartite graphs (paper Lemma 6.1).
//
// Recursive halving: k levels of generalized defective 2-edge coloring with
// λ_e = 1/2 split the edge set into 2^k parts with geometrically shrinking
// edge degree (D_{l+1} ≈ (1+χ)/2 · D_l + β); each part then receives a
// (D_k+1)-edge coloring in its own color range [p·(D_k+1), (p+1)·(D_k+1)).
// Parts at the same level are edge-disjoint and run in parallel, so each
// level costs the *maximum* of its parts' round counts.
//
// The level count adapts to the additive β of the mode in use: we split only
// while another level strictly shrinks the total palette bound 2^l·(D_l+1)
// (theory mode reproduces Appendix C's χ/k formulas as closely as the
// formulas allow at finite Δ; see DESIGN.md §4.1).
#pragma once

#include <vector>

#include "core/params.hpp"
#include "graph/bipartite.hpp"
#include "graph/properties.hpp"
#include "sim/ledger.hpp"

namespace dec {

class CancelToken;
class NetworkPool;

struct BipartiteColoringResult {
  std::vector<Color> colors;
  int palette = 0;           // colors fit in [0, palette)
  std::int64_t rounds = 0;   // parallel-part accounting (max per level)
  int levels = 0;            // k, number of halving levels applied
  int leaf_degree_bound = 0; // D_k, analytic per-part edge-degree bound
  double chi = 0.0;          // per-level defective-2-coloring ε actually used
};

/// Color the edges of a 2-colored bipartite graph with ~(2+ε)Δ colors in
/// polylog(Δ) rounds. ε ∈ (0, 1]. `num_threads` > 1 shards the defective
/// 2-edge-coloring splits over the parallel round engine. All levels, parts,
/// and leaf Linial stages share one network arena (`pool`, or an internal
/// one when null); results are bit-identical with or without pooling.
BipartiteColoringResult bipartite_edge_coloring(
    const Graph& g, const Bipartition& parts, double eps,
    ParamMode mode = ParamMode::kPractical, RoundLedger* ledger = nullptr,
    int num_threads = 1, NetworkPool* pool = nullptr,
    CancelToken* cancel = nullptr);

}  // namespace dec
