// Generalized (ε, β)-balanced edge orientation (paper §5, Definition 5.2,
// Lemma 5.5, Theorem 5.6).
//
// Given a 2-colored bipartite graph and per-edge thresholds η_e, orient every
// edge so that (with x_w = number of edges oriented towards w) every edge
// e = {u, v} (u ∈ U, v ∈ V) satisfies
//   oriented u→v:  x_v − x_u ≤ η_e + (1+ε)/2·deg(e) + β,
//   oriented v→u:  x_u − x_v ≤ −η_e + (1+ε)/2·deg(e) + β.
//
// Algorithm (one phase φ = 1, 2, ... O(log Δ̄ / ν)):
//  1. still-unoriented edges with enough unoriented neighbors (d(e) >
//     (1−ν)^φ Δ̄) propose an orientation toward the endpoint that currently
//     "wants" them per η_e;
//  2. every node accepts at most k_φ proposals — accepted edges get oriented;
//  3. previously oriented edges that now violate their η_e inequality form
//     the token dropping game graph (arcs reversed against the orientation);
//     the accepted-proposal counts are the initial tokens; the α_v(φ), δ_φ of
//     Eqs. (5)/(6) control the game; every token that crosses an edge flips
//     that edge's orientation.
// After the phase budget, leftover unoriented edges (each node has O(1) of
// them) are oriented toward their smaller-id endpoint.
#pragma once

#include <vector>

#include "core/params.hpp"
#include "graph/bipartite.hpp"
#include "graph/orientation.hpp"
#include "sim/ledger.hpp"

namespace dec {

struct BalancedOrientationResult {
  Orientation orientation;      // every edge oriented
  std::int64_t phases = 0;
  std::int64_t rounds = 0;      // includes embedded token dropping rounds
  std::int64_t flips = 0;       // orientation flips performed by token games
  std::int64_t leftover_edges = 0;  // oriented arbitrarily at the end
  double max_excess = 0.0;      // max over edges of (imbalance − η side) −
                                // (ε/2)·deg(e); the empirical β of this run
};

/// Compute a balanced orientation w.r.t. `eta` (size m). ε = 8ν.
BalancedOrientationResult balanced_orientation(const Graph& g,
                                               const Bipartition& parts,
                                               const std::vector<double>& eta,
                                               const OrientationParams& params,
                                               RoundLedger* ledger = nullptr);

/// Recompute the per-edge balance excess of an orientation:
/// excess(e) = (x_head-side difference beyond η_e) − (ε/2)·deg(e).
/// max over edges = the empirical additive error β_emp.
double orientation_max_excess(const Graph& g, const Bipartition& parts,
                              const std::vector<double>& eta,
                              const Orientation& orientation, double eps);

}  // namespace dec
