// Generalized (ε, β)-balanced edge orientation (paper §5, Definition 5.2,
// Lemma 5.5, Theorem 5.6).
//
// Given a 2-colored bipartite graph and per-edge thresholds η_e, orient every
// edge so that (with x_w = number of edges oriented towards w) every edge
// e = {u, v} (u ∈ U, v ∈ V) satisfies
//   oriented u→v:  x_v − x_u ≤ η_e + (1+ε)/2·deg(e) + β,
//   oriented v→u:  x_u − x_v ≤ −η_e + (1+ε)/2·deg(e) + β.
//
// Algorithm (one phase φ = 1, 2, ... O(log Δ̄ / ν)):
//  1. still-unoriented edges with enough unoriented neighbors (d(e) >
//     (1−ν)^φ Δ̄) propose an orientation toward the endpoint that currently
//     "wants" them per η_e;
//  2. every node accepts at most k_φ proposals — accepted edges get oriented;
//  3. previously oriented edges that now violate their η_e inequality form
//     the token dropping game graph (arcs reversed against the orientation);
//     the accepted-proposal counts are the initial tokens; the α_v(φ), δ_φ of
//     Eqs. (5)/(6) control the game; every token that crosses an edge flips
//     that edge's orientation.
// After the phase budget, leftover unoriented edges (each node has O(1) of
// them) are oriented toward their smaller-id endpoint.
//
// Execution model: the solver runs as genuine node programs on the
// simulation substrate. Each phase is two real rounds on a SyncNetwork over
// the input graph — an announce round (every node broadcasts its x_{φ−1} and
// unoriented degree; the previous phase's accept notifications are consumed
// on the way in) and an accept round (each node locally derives which
// unoriented incident edges propose to it, accepts the k_φ lowest edge ids,
// and notifies the tails) — and the embedded token dropping game of step 3
// runs on its own DiNetwork via `run_token_dropping`, so every round and
// message width of Lemma 5.5's chain is measured by the substrate's
// CongestAudit instead of asserted. Orientation flips are driven by the
// tokens the game delivered (an edge flips exactly when its game arc went
// passive, which both endpoints observe locally: the sender when granting,
// the receiver when the token arrives). `num_threads` > 1 shards the node
// programs over the parallel round engine with bit-identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "graph/bipartite.hpp"
#include "graph/orientation.hpp"
#include "sim/ledger.hpp"

namespace dec {

class CancelToken;
class NetworkPool;

struct BalancedOrientationResult {
  Orientation orientation;      // every edge oriented
  std::int64_t phases = 0;
  std::int64_t rounds = 0;      // includes embedded token dropping rounds
  std::int64_t flips = 0;       // orientation flips performed by token games
  std::int64_t leftover_edges = 0;  // oriented arbitrarily at the end
  std::vector<std::uint8_t> leftover_edge;  // per edge: 1 = leftover pass
  double max_excess = 0.0;      // max over edges of (imbalance − η side) −
                                // (ε/2)·deg(e); the empirical β of this run
  int max_message_bits = 0;     // CongestAudit across phases and games
};

/// Compute a balanced orientation w.r.t. `eta` (size m). ε = 8ν.
/// `num_threads` > 1 runs the node programs on the parallel round engine.
/// `pool` (optional) is the network arena the solver's own network and every
/// per-phase game lease from; when null (and params.pooled), the solver
/// creates one internally so all its phases still share a single arena.
BalancedOrientationResult balanced_orientation(const Graph& g,
                                               const Bipartition& parts,
                                               const std::vector<double>& eta,
                                               const OrientationParams& params,
                                               RoundLedger* ledger = nullptr,
                                               int num_threads = 1,
                                               NetworkPool* pool = nullptr,
                                               CancelToken* cancel = nullptr);

/// Recompute the per-edge balance excess of an orientation:
/// excess(e) = (x_head-side difference beyond η_e) − (ε/2)·deg(e).
/// max over edges = the empirical additive error β_emp.
double orientation_max_excess(const Graph& g, const Bipartition& parts,
                              const std::vector<double>& eta,
                              const Orientation& orientation, double eps);

}  // namespace dec
