#include "core/congest_coloring.hpp"

#include <algorithm>
#include <cmath>

#include "coloring/baselines.hpp"
#include "coloring/defective.hpp"
#include "coloring/linial.hpp"
#include "core/bipartite_coloring.hpp"
#include "graph/subgraph.hpp"
#include "sim/pool.hpp"
#include "util/logstar.hpp"

namespace dec {

CongestColoringResult congest_edge_coloring(const Graph& g, double eps,
                                            ParamMode mode,
                                            RoundLedger* ledger,
                                            int num_threads,
                                            NetworkPool* pool,
                                            CancelToken* cancel) {
  DEC_REQUIRE(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  CongestColoringResult res;
  res.colors.assign(static_cast<std::size_t>(g.num_edges()), kUncolored);
  if (g.num_edges() == 0) return res;

  // 0 = hardware concurrency (see header); resolve once so every stage —
  // and the arena they share — agrees on the shard count.
  num_threads = resolve_num_threads(num_threads);

  // One arena for the whole pipeline: the level-0 Linial, precolor, and
  // refine stages all run on g's shape (one topology plan, one buffer
  // arena), and deeper levels / bipartite stages reuse the run states in
  // place.
  std::optional<NetworkPool> own_pool;
  if (pool == nullptr) {
    own_pool.emplace(num_threads);
    pool = &*own_pool;
  }

  // Initial O(Δ²)-vertex coloring (O(log* n) rounds; CONGEST-legal).
  const LinialResult lin =
      linial_color(g, ledger, {}, 0, num_threads, pool, cancel);
  res.rounds += lin.rounds;

  const int delta0 = g.max_degree();
  const int k_levels = std::max(1, floor_log2(static_cast<std::uint64_t>(
                                    std::max(2, delta0))) -
                                       1);
  const double eps1 =
      std::min(0.25, 1.0 / (2.0 * static_cast<double>(k_levels)));

  int next_color = 0;  // palette watermark
  std::vector<bool> uncolored(static_cast<std::size_t>(g.num_edges()), true);

  for (int level = 0; level <= k_levels; ++level) {
    EdgeSubgraph cur = edge_subgraph(g, uncolored);
    if (cur.graph.num_edges() == 0) break;
    const int dcur = cur.graph.max_degree();
    // Constant-degree tail: below this the Lemma 6.2 additive terms do not
    // fit under its target and the O(Δ_tail) baseline is cheaper anyway.
    if (dcur <= 8) break;
    ++res.levels;

    // Lemma 6.2: defective 4-coloring of the current subgraph's nodes; the
    // level-0 Linial coloring stays proper on every subgraph. Runs as node
    // programs on the substrate, sharded when num_threads > 1.
    RoundLedger local;
    const DefectiveResult def4 =
        defective_4_coloring(cur.graph, lin.colors, lin.palette, eps1, &local,
                             num_threads, pool, cancel);
    res.rounds += def4.rounds;
    if (ledger != nullptr) ledger->charge("defective4", def4.rounds);

    auto node_class = [&](NodeId v) {
      return def4.colors[static_cast<std::size_t>(v)];
    };

    // Two bipartite splits, each colored with a fresh range (sequentially,
    // as in the paper's proof).
    for (int split = 0; split < 2; ++split) {
      std::vector<bool> take(static_cast<std::size_t>(g.num_edges()), false);
      Bipartition parts;
      parts.side.assign(static_cast<std::size_t>(g.num_nodes()), 0);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const Color c = node_class(v);
        // split 0: {0,1} vs {2,3};   split 1: {0,2} vs {1,3}.
        const bool side1 = split == 0 ? (c >= 2) : (c % 2 == 1);
        parts.side[static_cast<std::size_t>(v)] = side1 ? 1 : 0;
      }
      bool any = false;
      for (const EdgeId e : cur.members) {
        if (!uncolored[static_cast<std::size_t>(e)]) continue;
        const auto [a, b] = g.endpoints(e);
        if (parts.side[static_cast<std::size_t>(a)] !=
            parts.side[static_cast<std::size_t>(b)]) {
          take[static_cast<std::size_t>(e)] = true;
          any = true;
        }
      }
      if (!any) continue;
      EdgeSubgraph bip = edge_subgraph(g, take);
      RoundLedger bip_ledger;
      const BipartiteColoringResult bc = bipartite_edge_coloring(
          bip.graph, parts, eps, mode, &bip_ledger, num_threads, pool, cancel);
      res.rounds += bc.rounds;
      if (ledger != nullptr) ledger->charge("bipartite_level", bc.rounds);
      for (std::size_t i = 0; i < bip.members.size(); ++i) {
        res.colors[static_cast<std::size_t>(bip.members[i])] =
            next_color + bc.colors[i];
        uncolored[static_cast<std::size_t>(bip.members[i])] = false;
      }
      next_color += bc.palette;
    }
  }

  // Tail: the leftover graph has small degree; finish with the
  // O(Δ_tail + log* n) baseline on a fresh range.
  EdgeSubgraph tail = edge_subgraph(g, uncolored);
  res.tail_degree = tail.graph.max_degree();
  if (tail.graph.num_edges() > 0) {
    RoundLedger tail_ledger;
    const EdgeColoringResult t =
        edge_color_fast_2delta(tail.graph, &tail_ledger);
    res.rounds += t.rounds;
    if (ledger != nullptr) ledger->charge("tail", t.rounds);
    for (std::size_t i = 0; i < tail.members.size(); ++i) {
      res.colors[static_cast<std::size_t>(tail.members[i])] =
          next_color + t.colors[i];
    }
    next_color += t.palette;
  }

  res.palette = next_color;
  DEC_CHECK(is_complete_proper_edge_coloring(g, res.colors),
            "CONGEST coloring is improper");
  return res;
}

}  // namespace dec
