// Solver registry: the five orchestrated solvers behind one data-driven
// request/result interface.
//
// The solver entry points are free functions with heterogeneous signatures —
// fine for direct callers, useless for a job queue. This file turns an
// invocation into *data*: a SolverRequest names a solver by its string id,
// carries the input graph (or digraph) by shared_ptr, and holds the solver's
// parameters in a variant; execute_request() dispatches through the
// registry and returns a SolverResult with the solver's full output struct
// plus the per-job RoundLedger. The SolverService (service/solver_service.hpp)
// queues exactly these requests.
//
// execute_request() is a pure forwarding layer: a request executed here —
// with any NetworkPool, or none — is bit-identical (outputs, audited rounds,
// ledger breakdowns) to calling the solver function directly, which is what
// lets the service share one arena across tenants without changing any
// result (pinned by tests/test_solver_service.cpp).
//
// Registered ids (see solver_registry()):
//   congest_edge_coloring · bipartite_edge_coloring · balanced_orientation ·
//   defective_2_edge_coloring · token_dropping
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/balanced_orientation.hpp"
#include "core/bipartite_coloring.hpp"
#include "core/congest_coloring.hpp"
#include "core/defective2ec.hpp"
#include "core/params.hpp"
#include "core/token_dropping.hpp"
#include "graph/bipartite.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "sim/ledger.hpp"

namespace dec {

class NetworkPool;

// Per-solver parameter payloads. Each holds everything the solver needs
// beyond the input graph/digraph (side assignments, per-edge weights,
// initial tokens, mode knobs).

struct CongestColoringJob {
  double eps = 1.0;
  ParamMode mode = ParamMode::kPractical;
};

struct BipartiteColoringJob {
  Bipartition parts;
  double eps = 1.0;
  ParamMode mode = ParamMode::kPractical;
};

struct BalancedOrientationJob {
  Bipartition parts;
  std::vector<double> eta;  // per edge
  OrientationParams params;
};

struct Defective2ECJob {
  Bipartition parts;
  std::vector<double> lambda;  // per edge
  double eps = 1.0;
  ParamMode mode = ParamMode::kPractical;
};

struct TokenDroppingJob {
  std::vector<int> initial_tokens;  // per node
  TokenDroppingParams params;
};

using SolverParams =
    std::variant<CongestColoringJob, BipartiteColoringJob,
                 BalancedOrientationJob, Defective2ECJob, TokenDroppingJob>;

/// One job as data. `graph` feeds the four graph solvers, `digraph` the
/// token dropping game; the other pointer stays null. Inputs are carried by
/// shared_ptr because a queued job outlives the submitting scope (and
/// tenants submitting the same graph object share it instead of copying).
struct SolverRequest {
  std::string solver;  // registry id, e.g. "balanced_orientation"
  std::shared_ptr<const Graph> graph;
  std::shared_ptr<const Digraph> digraph;
  SolverParams params;
};

using SolverOutput =
    std::variant<CongestColoringResult, BipartiteColoringResult,
                 BalancedOrientationResult, Defective2ECResult,
                 TokenDroppingResult>;

/// How a job ended. Carried in SolverResult so service tenants never need
/// exception-sniffing on a future: every submitted job's future is
/// satisfied with a value, and this field says what happened.
enum class SolverStatus : int {
  kOk = 0,                // output and ledger are the solver's result
  kCancelled,             // cancel() / CancelToken::request_cancel
  kDeadlineExceeded,      // wall-clock deadline or round budget expired
  kRejected,              // never admitted or never run (see reject)
  kFailed,                // solver threw; `error` holds what()
};

/// Why a job was rejected (meaningful only when status == kRejected).
enum class RejectReason : int {
  kNone = 0,
  kQueueFull,      // try_submit on a full queue
  kShuttingDown,   // submitted to (or still queued in) a stopping service
};

const char* to_string(SolverStatus status);
const char* to_string(RejectReason reason);

/// Full per-job result: the solver's own result struct plus the job's round
/// ledger (per-component breakdown — part of the bit-identity contract).
/// `output`/`ledger` are meaningful only when status == kOk; direct
/// execute_request() calls either return kOk or throw (the structured
/// statuses are produced by the SolverService's failure handling).
struct SolverResult {
  std::string solver;
  SolverOutput output;
  RoundLedger ledger;
  SolverStatus status = SolverStatus::kOk;
  RejectReason reject = RejectReason::kNone;
  std::string error;  // what() of the failing exception (kFailed only)
  int attempts = 1;   // execution attempts (> 1 after service retries)
  // Service-side timing (zero for direct execute_request calls, which have
  // no queue). Not part of the bit-identity contract — the identity keys
  // compare outputs and ledgers, not scheduling accidents.
  std::int64_t queue_wait_ns = 0;   // submit entry -> worker pickup
  std::int64_t e2e_latency_ns = 0;  // submit entry -> future resolution
};

/// One registry row: the id and the type-erased executor.
struct SolverEntry {
  const char* id;
  SolverResult (*execute)(const SolverRequest&, int num_threads,
                          NetworkPool* pool, CancelToken* cancel);
};

/// All registered solvers, in registration order.
const std::vector<SolverEntry>& solver_registry();

/// True iff `id` names a registered solver.
bool solver_registered(const std::string& id);

/// Execute a request: look up `req.solver`, validate that the params
/// variant and input pointer match it (DEC_REQUIRE), run the solver with
/// `num_threads` round-engine shards leasing from `pool` (null = fresh
/// networks). Bit-identical to the direct solver call. `cancel` (optional)
/// is the cooperative cancellation token handed to the solver's round
/// barriers; a tripped token propagates as SolverAborted.
SolverResult execute_request(const SolverRequest& req, int num_threads = 1,
                             NetworkPool* pool = nullptr,
                             CancelToken* cancel = nullptr);

// Convenience builders (tenants usually have the typed inputs in hand).
SolverRequest make_congest_request(std::shared_ptr<const Graph> g,
                                   CongestColoringJob job);
SolverRequest make_bipartite_request(std::shared_ptr<const Graph> g,
                                     BipartiteColoringJob job);
SolverRequest make_orientation_request(std::shared_ptr<const Graph> g,
                                       BalancedOrientationJob job);
SolverRequest make_defective2ec_request(std::shared_ptr<const Graph> g,
                                        Defective2ECJob job);
SolverRequest make_token_dropping_request(std::shared_ptr<const Digraph> dg,
                                          TokenDroppingJob job);

}  // namespace dec
