// Generalized (1+ε, β)-relaxed defective 2-edge coloring
// (paper Definition 5.1, Lemma 5.3, Corollary 5.7).
//
// Each edge carries λ_e ∈ [0,1] (the fraction of its "interest" in the red
// side; for plain halving λ_e = 1/2, for list coloring it is the red-color
// fraction of its list). The goal: color every edge red or blue so that
//   red e:  #red neighbors  ≤ (1+ε)·λ_e·deg(e) + λ_e·β,
//   blue e: #blue neighbors ≤ (1+ε)·(1−λ_e)·deg(e) + (1−λ_e)·β.
//
// Reduction (Lemma 5.3): compute the η_e thresholds of Eq. (3) — a local
// per-edge formula over the endpoints' degrees — run the balanced
// orientation of §5 (node programs on the simulation substrate, rounds and
// message widths measured by the CongestAudit), and read the color off the
// orientation: U→V edges red, V→U edges blue. Both endpoints know the
// orientation of their edge, so the read-off costs no communication.
#pragma once

#include <cstdint>
#include <vector>

#include "core/balanced_orientation.hpp"
#include "core/params.hpp"
#include "graph/bipartite.hpp"
#include "sim/ledger.hpp"

namespace dec {

struct Defective2ECResult {
  std::vector<std::uint8_t> is_red;  // per edge: 1 = red (U→V), 0 = blue
  std::int64_t phases = 0;
  std::int64_t rounds = 0;
  double eps = 0.0;        // the ε the run targeted
  double beta_used = 0.0;  // β plugged into Eq. (3) and tolerated by Def. 5.1
  double beta_emp = 0.0;   // max measured additive overshoot (see audit)
  int max_message_bits = 0;  // CongestAudit of the underlying orientation
};

/// η_e of Eq. (3) for edge e with red fraction λ_e.
double eta_of_lambda(const Graph& g, const Bipartition& parts, EdgeId e,
                     double lambda, double eps, double beta);

/// Solve the generalized defective 2-edge coloring on a 2-colored bipartite
/// graph. `lambda` has one entry per edge. ε ∈ (0, 1]; ν = ε/8 internally.
/// `num_threads` > 1 shards the node programs over the parallel engine.
/// `pool` (optional) is the network arena the underlying orientation and its
/// per-phase games lease from; results are bit-identical with or without it.
Defective2ECResult defective_2_edge_coloring(const Graph& g,
                                             const Bipartition& parts,
                                             const std::vector<double>& lambda,
                                             double eps,
                                             ParamMode mode = ParamMode::kPractical,
                                             RoundLedger* ledger = nullptr,
                                             int num_threads = 1,
                                             NetworkPool* pool = nullptr,
                                             CancelToken* cancel = nullptr);

/// Audit: per-edge same-color neighbor counts against Definition 5.1.
/// Returns the maximum additive overshoot
///   max_e (defect(e) − (1+ε)·λside_e·deg(e)) / max(λside_e, 1/deg-floor)
/// where λside is λ_e for red edges and 1−λ_e for blue ones — i.e. the
/// smallest β' for which the run satisfies Definition 5.1 with 2β' ← β'.
double defective2ec_beta_emp(const Graph& g, const std::vector<double>& lambda,
                             const std::vector<std::uint8_t>& is_red,
                             double eps);

/// True iff every edge satisfies Definition 5.1 with the given ε and β.
bool defective2ec_satisfies(const Graph& g, const std::vector<double>& lambda,
                            const std::vector<std::uint8_t>& is_red, double eps,
                            double beta);

}  // namespace dec
