// (degree+1)-list edge coloring in the LOCAL model
// (paper §7 and Appendix D, Theorem D.4 / Theorem 1.1).
//
// Outer loop (O(log Δ) iterations, each cutting the uncolored degree to
// ≤ 3/4 of the previous):
//   1. defective c-coloring of the uncolored subgraph's nodes (c = 4,
//      defect ≤ Δ_cur/2), from the initial O(Δ²) Linial coloring;
//   2. for every color pair (a, b): the bipartite graph G_{a,b} of uncolored
//      edges with one endpoint colored a and the other b is partially
//      colored by the slack-boosting Lemma D.3 (S = e², k = 16c) followed by
//      the Lemma D.2 solver inside it, leaving G_{a,b}-degree ≤ Δ̄_{a,b}/k;
//   3. only monochromatic edges (degree ≤ defect ≤ Δ_cur/2) and the small
//      bipartite leftovers (≤ Δ_cur/4 in total per node) stay uncolored.
// The constant-degree tail is colored greedily along the precomputed
// O(Δ̄²)-edge-coloring schedule.
//
// The special case L_e = {0..2Δ-2} is the classic (2Δ−1)-edge coloring.
#pragma once

#include <vector>

#include "coloring/list_instance.hpp"
#include "core/params.hpp"
#include "sim/ledger.hpp"

namespace dec {

struct LocalColoringResult {
  std::vector<Color> colors;
  std::int64_t rounds = 0;
  int iterations = 0;     // outer degree-reduction iterations
  int tail_degree = 0;    // uncolored degree when the greedy tail started
};

/// Solve a (degree+1)-list edge coloring instance on a general graph.
LocalColoringResult solve_list_edge_coloring(
    const Graph& g, const ListEdgeInstance& inst,
    ParamMode mode = ParamMode::kPractical, RoundLedger* ledger = nullptr);

/// Convenience wrapper: the (2Δ−1)-edge coloring problem (full lists).
LocalColoringResult solve_2delta_minus_1(const Graph& g,
                                         ParamMode mode = ParamMode::kPractical,
                                         RoundLedger* ledger = nullptr);

}  // namespace dec
