#include "core/list_solver.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "coloring/greedy_edge.hpp"
#include "core/defective2ec.hpp"
#include "util/logstar.hpp"

namespace dec {

namespace {

struct EdgeState {
  std::vector<Color> rem;  // remaining list, always within [lo, hi)
  int lo = 0, hi = 0;      // current color-space interval
  int passive_level = -1;  // -1 = active
};

/// Filter `rem` to [lo, hi).
void clamp_to_interval(std::vector<Color>& rem, int lo, int hi) {
  std::erase_if(rem, [lo, hi](Color c) { return c < lo || c >= hi; });
}

}  // namespace

ListSolveStats solve_relaxed_list(const Graph& g, const Bipartition& parts,
                                  const ListEdgeInstance& inst, double S,
                                  const std::vector<Color>& schedule,
                                  int schedule_palette,
                                  std::vector<Color>& colors, ParamMode mode,
                                  RoundLedger* ledger) {
  validate_lists(inst);
  validate_bipartition(g, parts);
  DEC_REQUIRE(S >= 1.0, "slack parameter must be >= 1");
  DEC_REQUIRE(colors.size() == static_cast<std::size_t>(g.num_edges()),
              "color vector has wrong length");

  ListSolveStats stats;
  const int c_space = inst.color_space;
  if (c_space == 0 || g.num_edges() == 0) return stats;

  // Edges this call is responsible for.
  std::vector<EdgeId> solve_set;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (colors[static_cast<std::size_t>(e)] == kUncolored) solve_set.push_back(e);
  }
  if (solve_set.empty()) return stats;

  // Per-edge state; remaining lists start as the instance lists minus the
  // colors already used by colored neighbors.
  std::vector<EdgeState> state(static_cast<std::size_t>(g.num_edges()));
  for (const EdgeId e : solve_set) {
    EdgeState& st = state[static_cast<std::size_t>(e)];
    st.lo = 0;
    st.hi = c_space;
    st.rem = inst.list(e);
    std::vector<Color> used;
    const auto [u, v] = g.endpoints(e);
    for (const NodeId w : {u, v}) {
      for (const Incidence& inc : g.neighbors(w)) {
        const Color c = colors[static_cast<std::size_t>(inc.edge)];
        if (c != kUncolored) used.push_back(c);
      }
    }
    std::sort(used.begin(), used.end());
    std::erase_if(st.rem, [&](Color c) {
      return std::binary_search(used.begin(), used.end(), c);
    });
  }

  const double dbar = std::max(1, g.max_edge_degree());
  const int k_levels = std::max(1, floor_log2(static_cast<std::uint64_t>(
                                    std::max(2, c_space))));
  const double eps = std::clamp(
      1.0 / std::log2(static_cast<double>(c_space) + 2.0), 0.05, 0.5);
  const double beta = beta_of(eps, dbar, mode);
  const double passive_threshold = beta / eps;

  std::vector<bool> is_mine(static_cast<std::size_t>(g.num_edges()), false);
  for (const EdgeId e : solve_set) is_mine[static_cast<std::size_t>(e)] = true;

  for (int level = 1; level <= k_levels; ++level) {
    // Group active edges by interval.
    std::map<std::pair<int, int>, std::vector<EdgeId>> groups;
    for (const EdgeId e : solve_set) {
      const EdgeState& st = state[static_cast<std::size_t>(e)];
      if (st.passive_level >= 0) continue;
      groups[{st.lo, st.hi}].push_back(e);
    }
    if (groups.empty()) break;
    ++stats.levels;

    std::int64_t level_rounds = 0;
    for (auto& [interval, members] : groups) {
      const auto [lo, hi] = interval;
      // In-group degree per edge via per-node in-group incidence counts.
      std::vector<int> node_count(static_cast<std::size_t>(g.num_nodes()), 0);
      for (const EdgeId e : members) {
        const auto [u, v] = g.endpoints(e);
        ++node_count[static_cast<std::size_t>(u)];
        ++node_count[static_cast<std::size_t>(v)];
      }
      auto in_group_degree = [&](EdgeId e) {
        const auto [u, v] = g.endpoints(e);
        return node_count[static_cast<std::size_t>(u)] +
               node_count[static_cast<std::size_t>(v)] - 2;
      };

      // Passivation: the paper's low-degree rule, intervals too small to
      // split, and the slack safety net.
      std::vector<EdgeId> stay;
      for (const EdgeId e : members) {
        EdgeState& st = state[static_cast<std::size_t>(e)];
        const int d = in_group_degree(e);
        const auto rem_size = static_cast<double>(st.rem.size());
        DEC_CHECK(rem_size >= static_cast<double>(d) + 1.0,
                  "list solver slack invariant broken: remaining list no "
                  "longer exceeds the in-group degree");
        if (static_cast<double>(d) < passive_threshold || hi - lo <= 1) {
          st.passive_level = level;
          ++stats.passive_natural;
        } else if (rem_size < 1.25 * (static_cast<double>(d) + 1.0)) {
          st.passive_level = level;
          ++stats.passive_safety;
        } else {
          stay.push_back(e);
        }
      }
      if (stay.empty()) continue;

      // Split the interval; lower half gets the ceiling.
      const int mid = lo + (hi - lo + 1) / 2;
      std::vector<std::pair<NodeId, NodeId>> sub_edges;
      sub_edges.reserve(stay.size());
      for (const EdgeId e : stay) sub_edges.push_back(g.endpoints(e));
      const Graph sub(g.num_nodes(), std::move(sub_edges));
      std::vector<double> lambda(stay.size());
      for (std::size_t i = 0; i < stay.size(); ++i) {
        const EdgeState& st = state[static_cast<std::size_t>(stay[i])];
        const auto lower = static_cast<double>(
            std::count_if(st.rem.begin(), st.rem.end(),
                          [mid](Color c) { return c < mid; }));
        lambda[i] = lower / static_cast<double>(st.rem.size());
      }
      RoundLedger local;
      const Defective2ECResult split =
          defective_2_edge_coloring(sub, parts, lambda, eps, mode, &local);
      level_rounds = std::max(level_rounds, local.total());
      for (std::size_t i = 0; i < stay.size(); ++i) {
        EdgeState& st = state[static_cast<std::size_t>(stay[i])];
        if (split.is_red[i] != 0) {
          st.hi = mid;
        } else {
          st.lo = mid;
        }
        clamp_to_interval(st.rem, st.lo, st.hi);
      }
    }
    stats.rounds += level_rounds;
    if (ledger != nullptr) ledger->charge("list_split", level_rounds);
  }

  // Item 3: color the edges still active (per group, all in parallel — the
  // shared schedule sequences conflicting edges; disjoint intervals cannot
  // conflict, same-interval edges are handled by the greedy's blocked set).
  auto greedy_pass = [&](const std::vector<EdgeId>& edges) {
    if (edges.empty()) return;
    ListEdgeInstance pass_inst;
    pass_inst.g = &g;
    pass_inst.color_space = c_space;
    pass_inst.lists.assign(static_cast<std::size_t>(g.num_edges()), {});
    std::vector<bool> active(static_cast<std::size_t>(g.num_edges()), false);
    for (const EdgeId e : edges) {
      pass_inst.lists[static_cast<std::size_t>(e)] =
          state[static_cast<std::size_t>(e)].rem;
      active[static_cast<std::size_t>(e)] = true;
    }
    stats.rounds += greedy_list_edge_color(pass_inst, schedule,
                                           schedule_palette, colors, &active,
                                           ledger);
  };

  std::vector<EdgeId> still_active;
  for (const EdgeId e : solve_set) {
    if (state[static_cast<std::size_t>(e)].passive_level < 0) {
      still_active.push_back(e);
    }
  }
  stats.active_at_end = static_cast<std::int64_t>(still_active.size());
  greedy_pass(still_active);

  // Item 4: unwind passive edges, deepest level first.
  for (int level = k_levels; level >= 1; --level) {
    std::vector<EdgeId> passives;
    for (const EdgeId e : solve_set) {
      if (state[static_cast<std::size_t>(e)].passive_level == level) {
        passives.push_back(e);
      }
    }
    greedy_pass(passives);
  }

  for (const EdgeId e : solve_set) {
    DEC_CHECK(colors[static_cast<std::size_t>(e)] != kUncolored,
              "list solver left an edge uncolored");
    ++stats.colored;
  }
  return stats;
}

}  // namespace dec
