#include "core/bipartite_coloring.hpp"

#include <algorithm>
#include <cmath>

#include "coloring/color_reduction.hpp"
#include "coloring/linial.hpp"
#include "core/defective2ec.hpp"
#include "graph/line_graph.hpp"
#include "sim/pool.hpp"
#include "util/prime.hpp"

namespace dec {

namespace {

/// (d+1)-edge coloring of a (sub)graph via Linial-on-line-graph + the
/// arithmetic-progression reduction + greedy reduction. Returns rounds.
std::int64_t color_leaf_part(const Graph& sub, std::vector<Color>& out,
                             RoundLedger* ledger, int num_threads,
                             NetworkPool* pool, CancelToken* cancel) {
  std::int64_t rounds = 0;
  if (sub.num_edges() == 0) return rounds;
  const Graph lg = line_graph(sub);
  const LinialResult lin =
      linial_color(lg, ledger, {}, 0, num_threads, pool, cancel);
  rounds += lin.rounds;
  if (lg.max_degree() == 0) {
    out.assign(static_cast<std::size_t>(sub.num_edges()), 0);
    return rounds;
  }
  const std::int64_t q = static_cast<std::int64_t>(
      next_prime(static_cast<std::uint64_t>(2 * lg.max_degree() + 2)));
  DEC_CHECK(lin.palette <= q * q, "Linial palette exceeds ap_reduce domain");
  const ReductionResult ap = ap_reduce(lg, lin.colors, q, ledger);
  rounds += ap.rounds;
  const ReductionResult fin =
      greedy_reduce(lg, ap.colors, ap.palette, lg.max_degree() + 1, ledger);
  rounds += fin.rounds;
  out = fin.colors;
  return rounds;
}

}  // namespace

BipartiteColoringResult bipartite_edge_coloring(const Graph& g,
                                                const Bipartition& parts,
                                                double eps, ParamMode mode,
                                                RoundLedger* ledger,
                                                int num_threads,
                                                NetworkPool* pool,
                                                CancelToken* cancel) {
  DEC_REQUIRE(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  validate_bipartition(g, parts);

  // One arena across every level, part, and leaf stage: the per-part
  // subgraphs change shape, but their run states (buffers, slabs, thread
  // pools) are reused in place instead of rebuilt per part.
  std::optional<NetworkPool> own_pool;
  if (pool == nullptr) {
    own_pool.emplace(num_threads);
    pool = &*own_pool;
  }

  BipartiteColoringResult res;
  res.colors.assign(static_cast<std::size_t>(g.num_edges()), kUncolored);
  if (g.num_edges() == 0) return res;

  const int dbar = std::max(1, g.max_edge_degree());

  // χ: per-level split quality. Appendix C wants χ ≈ ε / log Δ; at finite Δ
  // the orientation's per-phase drift dominates once χ²·Δ̄ drops below ≈ 12
  // (EXP-B measurement), so we take χ as small as that safety line allows —
  // smaller χ ⇒ more levels fit the palette budget ⇒ smaller leaf degree.
  const double chi =
      std::clamp(std::sqrt(12.0 / static_cast<double>(dbar)), 0.05,
                 std::max(0.1, std::min(0.5, eps / 2.0)));
  res.chi = chi;
  const double beta = 2.0 * beta_of(chi, dbar, mode);  // Lemma 5.3 doubles β
  // Drift margin for the analytic degree recurrence (measured headroom).
  const double drift = 0.2 * chi;

  // Adaptive level count (Appendix C's role for k): splitting shrinks the
  // per-part degree — and with it the O(D_k)-round leaf step — at the cost
  // of palette growth ≈ (1+χ) per level. Take as many levels as the palette
  // budget (1+ε/2)·(Δ̄+1) ≈ (2+ε)Δ allows.
  int k = 0;
  std::int64_t bound_d = g.max_edge_degree();  // exact, not clamped: a
                                               // matching needs range 1
  {
    const double budget =
        (1.0 + eps / 2.0) * (static_cast<double>(dbar) + 1.0);
    std::int64_t parts_count = 1;
    for (;;) {
      const std::int64_t next_d = static_cast<std::int64_t>(
          std::floor(((1.0 + chi) / 2.0 + drift) *
                         static_cast<double>(bound_d) +
                     beta)) +
          1;
      if (next_d >= bound_d) break;  // additive β dominates; stop splitting
      if (static_cast<double>(2 * parts_count) *
              static_cast<double>(next_d + 1) >
          budget) {
        break;
      }
      bound_d = next_d;
      parts_count *= 2;
      ++k;
      if (k >= 30) break;
    }
  }
  res.levels = k;
  res.leaf_degree_bound = static_cast<int>(bound_d);

  // part[e]: index of the subgraph edge e currently belongs to.
  std::vector<int> part(static_cast<std::size_t>(g.num_edges()), 0);

  for (int level = 0; level < k; ++level) {
    const int num_parts = 1 << level;
    std::int64_t level_rounds = 0;
    for (int p = 0; p < num_parts; ++p) {
      // Collect this part's edges and build the edge-induced subgraph on the
      // original node ids (so the Bipartition carries over).
      std::vector<EdgeId> members;
      std::vector<std::pair<NodeId, NodeId>> sub_edges;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (part[static_cast<std::size_t>(e)] == p) {
          members.push_back(e);
          sub_edges.push_back(g.endpoints(e));
        }
      }
      if (members.empty()) continue;
      const Graph sub(g.num_nodes(), std::move(sub_edges));
      const std::vector<double> lambda(
          static_cast<std::size_t>(sub.num_edges()), 0.5);
      RoundLedger local;
      const Defective2ECResult split = defective_2_edge_coloring(
          sub, parts, lambda, chi, mode, &local, num_threads, pool, cancel);
      level_rounds = std::max(level_rounds, local.total());
      for (std::size_t i = 0; i < members.size(); ++i) {
        // Red stays at index 2p, blue moves to 2p+1.
        part[static_cast<std::size_t>(members[i])] =
            2 * p + (split.is_red[i] != 0 ? 0 : 1);
      }
    }
    res.rounds += level_rounds;
    if (ledger != nullptr) ledger->charge("bipartite_split", level_rounds);
  }

  // Leaf coloring: each part gets a (d+1)-edge coloring inside its own
  // range of size D_k + 1.
  const int num_parts = 1 << k;
  const int range = static_cast<int>(bound_d) + 1;
  std::int64_t leaf_rounds = 0;
  for (int p = 0; p < num_parts; ++p) {
    std::vector<EdgeId> members;
    std::vector<std::pair<NodeId, NodeId>> sub_edges;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (part[static_cast<std::size_t>(e)] == p) {
        members.push_back(e);
        sub_edges.push_back(g.endpoints(e));
      }
    }
    if (members.empty()) continue;
    const Graph sub(g.num_nodes(), std::move(sub_edges));
    DEC_CHECK(sub.max_edge_degree() <= res.leaf_degree_bound,
              "leaf part exceeded the analytic degree bound D_k; "
              "the mode's β underestimated the split error");
    RoundLedger local;
    std::vector<Color> sub_colors;
    leaf_rounds = std::max(
        leaf_rounds,
        color_leaf_part(sub, sub_colors, &local, num_threads, pool, cancel));
    leaf_rounds = std::max(leaf_rounds, local.total());
    for (std::size_t i = 0; i < members.size(); ++i) {
      res.colors[static_cast<std::size_t>(members[i])] =
          p * range + sub_colors[i];
    }
  }
  res.rounds += leaf_rounds;
  if (ledger != nullptr) ledger->charge("bipartite_leaf", leaf_rounds);

  res.palette = num_parts * range;
  DEC_CHECK(is_complete_proper_edge_coloring(g, res.colors),
            "bipartite coloring is improper");
  return res;
}

}  // namespace dec
