#include "core/slack_boost.hpp"

#include <algorithm>
#include <cmath>

#include "coloring/defective.hpp"
#include "core/list_solver.hpp"
#include "graph/line_graph.hpp"

namespace dec {

BoostStats boost_partial_color(const Graph& g, const Bipartition& parts,
                               const ListEdgeInstance& inst, double S,
                               int k_target,
                               const std::vector<Color>& schedule,
                               int schedule_palette, std::vector<Color>& colors,
                               ParamMode mode, RoundLedger* ledger) {
  validate_lists(inst);
  DEC_REQUIRE(S >= 1.0, "slack parameter must be >= 1");
  DEC_REQUIRE(k_target >= 1, "k_target must be >= 1");

  BoostStats stats;
  if (g.num_edges() == 0) return stats;

  const int dbar0 = std::max(1, g.max_edge_degree());
  const int target = std::max(
      1, static_cast<int>((dbar0 + k_target - 1) / k_target));

  auto uncolored_edge_degree = [&](EdgeId e, const std::vector<int>& ud) {
    const auto [u, v] = g.endpoints(e);
    return ud[static_cast<std::size_t>(u)] + ud[static_cast<std::size_t>(v)] -
           2;
  };

  const int max_stages =
      4 + 2 * static_cast<int>(std::ceil(std::log2(
                  static_cast<double>(k_target) * 2.0 * S + 2.0)));
  for (int stage = 0; stage < max_stages; ++stage) {
    // Current uncolored degrees.
    std::vector<int> ud = uncolored_degrees(g, colors);
    int dmax = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (colors[static_cast<std::size_t>(e)] == kUncolored) {
        dmax = std::max(dmax, uncolored_edge_degree(e, ud));
      }
    }
    stats.final_uncolored_degree = dmax;
    if (dmax <= target) break;
    ++stats.stages;

    if (static_cast<double>(dmax) < 4.0 * S) {
      // Constant-degree regime: the 2S·d' threshold would exceed dmax and
      // stall. Finish by scheduling classes greedily: an edge is colored when
      // its class comes up and its uncolored degree still exceeds the target,
      // so whatever stays uncolored is below target for good. Existence is
      // guaranteed by the instance's degree+1 lists.
      std::vector<Color> blocked;
      for (int cls = 0; cls < schedule_palette; ++cls) {
        ud = uncolored_degrees(g, colors);
        bool visited = false;
        for (EdgeId e = 0; e < g.num_edges(); ++e) {
          if (colors[static_cast<std::size_t>(e)] != kUncolored) continue;
          if (schedule[static_cast<std::size_t>(e)] != cls) continue;
          if (uncolored_edge_degree(e, ud) <= target) continue;
          visited = true;
          blocked.clear();
          const auto [u, v] = g.endpoints(e);
          for (const NodeId w : {u, v}) {
            for (const Incidence& inc : g.neighbors(w)) {
              const Color c = colors[static_cast<std::size_t>(inc.edge)];
              if (c != kUncolored) blocked.push_back(c);
            }
          }
          std::sort(blocked.begin(), blocked.end());
          Color pick = kUncolored;
          for (const Color cand : inst.list(e)) {
            if (!std::binary_search(blocked.begin(), blocked.end(), cand)) {
              pick = cand;
              break;
            }
          }
          DEC_CHECK(pick != kUncolored,
                    "boost greedy finish found no free color");
          colors[static_cast<std::size_t>(e)] = pick;
          ++stats.colored;
        }
        if (visited) {
          ++stats.rounds;
          if (ledger != nullptr) ledger->charge("boost_greedy_finish", 1);
        }
      }
      break;
    }

    const int d_prime =
        std::max(1, static_cast<int>(std::ceil(static_cast<double>(dmax) /
                                               (4.0 * S))));
    const int threshold = static_cast<int>(std::ceil(2.0 * S * d_prime));

    // Defective precoloring of the uncolored subgraph's line graph: classes
    // with at most d' same-class neighbors. The schedule (a proper edge
    // coloring of g) restricted to the subgraph is the proper input coloring.
    std::vector<EdgeId> unc;
    std::vector<std::pair<NodeId, NodeId>> sub_edges;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (colors[static_cast<std::size_t>(e)] != kUncolored) continue;
      unc.push_back(e);
      sub_edges.push_back(g.endpoints(e));
    }
    const Graph sub(g.num_nodes(), std::move(sub_edges));
    const Graph sub_line = line_graph(sub);
    std::vector<Color> sub_schedule(unc.size());
    for (std::size_t i = 0; i < unc.size(); ++i) {
      sub_schedule[i] = schedule[static_cast<std::size_t>(unc[i])];
    }
    const DefectiveResult classes = defective_precolor(
        sub_line, sub_schedule, schedule_palette, d_prime, ledger);
    stats.rounds += classes.rounds;

    // Process classes sequentially; high-degree members of the class form a
    // slack-S instance and are colored by the Lemma D.2 solver.
    for (int cls = 0; cls < classes.palette; ++cls) {
      ud = uncolored_degrees(g, colors);
      std::vector<EdgeId> members;
      for (std::size_t i = 0; i < unc.size(); ++i) {
        const EdgeId e = unc[i];
        if (colors[static_cast<std::size_t>(e)] != kUncolored) continue;
        if (classes.colors[i] != cls) continue;
        if (uncolored_edge_degree(e, ud) >= threshold) members.push_back(e);
      }
      if (members.empty()) continue;

      // Subgraph induced by the class members, lists = remaining lists.
      std::vector<std::pair<NodeId, NodeId>> cls_edges;
      cls_edges.reserve(members.size());
      for (const EdgeId e : members) cls_edges.push_back(g.endpoints(e));
      const Graph cls_sub(g.num_nodes(), std::move(cls_edges));

      ListEdgeInstance cls_inst;
      cls_inst.g = &cls_sub;
      cls_inst.color_space = inst.color_space;
      cls_inst.lists.resize(members.size());
      std::vector<Color> cls_colors(members.size(), kUncolored);
      std::vector<Color> cls_schedule(members.size());
      for (std::size_t i = 0; i < members.size(); ++i) {
        const EdgeId e = members[i];
        // Remaining list: instance list minus already-used neighbor colors.
        std::vector<Color> used;
        const auto [u, v] = g.endpoints(e);
        for (const NodeId w : {u, v}) {
          for (const Incidence& inc : g.neighbors(w)) {
            const Color c = colors[static_cast<std::size_t>(inc.edge)];
            if (c != kUncolored) used.push_back(c);
          }
        }
        std::sort(used.begin(), used.end());
        std::vector<Color> rem = inst.list(e);
        std::erase_if(rem, [&](Color c) {
          return std::binary_search(used.begin(), used.end(), c);
        });
        cls_inst.lists[i] = std::move(rem);
        cls_schedule[i] = schedule[static_cast<std::size_t>(e)];
      }

      RoundLedger local;
      const ListSolveStats solve = solve_relaxed_list(
          cls_sub, parts, cls_inst, S, cls_schedule, schedule_palette,
          cls_colors, mode, &local);
      stats.rounds += local.total();
      if (ledger != nullptr) ledger->charge("boost_solve", local.total());
      (void)solve;
      for (std::size_t i = 0; i < members.size(); ++i) {
        DEC_CHECK(cls_colors[i] != kUncolored,
                  "boost class solve left an edge uncolored");
        colors[static_cast<std::size_t>(members[i])] = cls_colors[i];
        ++stats.colored;
      }
    }
  }

  // Verify the contract.
  const std::vector<int> ud = uncolored_degrees(g, colors);
  int dmax = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (colors[static_cast<std::size_t>(e)] == kUncolored) {
      dmax = std::max(dmax, uncolored_edge_degree(e, ud));
    }
  }
  stats.final_uncolored_degree = dmax;
  DEC_CHECK(dmax <= target,
            "Lemma D.3 contract violated: uncolored degree above Δ̄/k");
  return stats;
}

}  // namespace dec
