// The paper's parameter formulas (Eqs. (4)–(7), Theorem 5.6, Appendix C/D).
//
// Two modes (DESIGN.md §4.1):
//  * theory   — the literal constants from the paper. These make the additive
//               guarantees vacuous at laptop-scale Δ (β = C·ln³Δ̄/ε⁵ exceeds
//               Δ̄ itself), but tests use them to verify we compute exactly
//               what the paper prescribes.
//  * practical — identical algorithms with gentler additive constants, sized
//               so that the multiplicative behaviour (the part the
//               experiments measure) is visible at Δ ∈ [16, 512].
#pragma once

#include <cstdint>

#include "sim/message.hpp"

namespace dec {

enum class ParamMode { kTheory, kPractical };

struct OrientationParams {
  double nu = 0.125;          // ν ∈ (0, 1/8] (Eq. 4)
  ParamMode mode = ParamMode::kPractical;
  std::int64_t max_phases = 0;  // 0 = derive from ν and Δ̄
  // Reuse one NetworkPool arena for the per-phase token dropping games (and
  // lease the solver's own network from it). Results are bit-identical
  // either way; false rebuilds every network from scratch, kept so the
  // regression benches/tests can pin the equivalence and the reuse win.
  bool pooled = true;
  // Slot-plane format for the solver's own network AND the embedded token
  // dropping games. The widest messages are the two-field (x, ud) announce
  // and the games' {deg, α}, so both lease with declared width 2 and default
  // to the 16 B narrow plane — bit-identical to kWide.
  SlotFormat slot_format = SlotFormat::kNarrow;
};

/// α_v(φ) of Eq. (5): max{1, (1/4)·(ν²/ln Δ̄)·(d⁻ + 1)} in theory mode.
/// Practical mode uses max{1, ν·(d⁻+1)/8}: a larger α (more tolerated slack)
/// that keeps the token dropping fast and the guarantee non-vacuous at
/// laptop-scale Δ.
double alpha_of(double nu, double dbar_log, std::int64_t d_minus,
                ParamMode mode);

/// δ_φ of Eq. (6): max{1, ⌊(1/16)·(ν⁶/ln³Δ̄)·(1−ν)^(φ−1)·Δ̄⌋} in theory
/// mode; practical replaces the ν⁶/(16·ln³Δ̄) damping by ν²/8 (same
/// geometric decay across phases, milder constant).
std::int64_t delta_phi(double nu, double dbar, double dbar_log,
                       std::int64_t phi, ParamMode mode);

/// k_φ = ⌈ν(1−ν)^(φ−1)·Δ̄⌉ (step 3 of the §5 algorithm; both modes).
std::int64_t k_phi(double nu, double dbar, std::int64_t phi);

/// β of Theorem 5.6 / Corollary 5.7: C·ln³Δ̄/ε⁵ with C = 28 from the Lemma
/// 5.5 chain (theory), or the practical estimate max{2, ln(Δ̄+2)} used for
/// η_e offsets, recursion budgets, and passive thresholds.
double beta_of(double eps, double dbar, ParamMode mode);

/// ε = 8ν (Theorem 5.6 proof).
inline double eps_from_nu(double nu) { return 8.0 * nu; }
inline double nu_from_eps(double eps) { return eps / 8.0; }

}  // namespace dec
