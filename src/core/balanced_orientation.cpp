#include "core/balanced_orientation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/token_dropping.hpp"

namespace dec {

namespace {

/// Unoriented-neighbor count of an unoriented edge e = {u, v}:
/// (unoriented degree of u − 1) + (unoriented degree of v − 1).
int unoriented_edge_degree(const Graph& g, const std::vector<int>& ud,
                           EdgeId e) {
  const auto [u, v] = g.endpoints(e);
  return ud[static_cast<std::size_t>(u)] + ud[static_cast<std::size_t>(v)] - 2;
}

}  // namespace

BalancedOrientationResult balanced_orientation(const Graph& g,
                                               const Bipartition& parts,
                                               const std::vector<double>& eta,
                                               const OrientationParams& params,
                                               RoundLedger* ledger) {
  validate_bipartition(g, parts);
  DEC_REQUIRE(eta.size() == static_cast<std::size_t>(g.num_edges()),
              "eta has wrong length");
  const double nu = params.nu;
  DEC_REQUIRE(nu > 0.0 && nu <= 0.125, "Eq. (4) requires 0 < nu <= 1/8");

  const NodeId n = g.num_nodes();
  const double dbar = std::max(1, 2 * g.max_degree() - 2);
  const double dbar_log = std::log(std::max(2.0, dbar));

  BalancedOrientationResult res{Orientation(g)};
  Orientation& orient = res.orientation;

  // Unoriented degree per node (for d(e, φ)).
  std::vector<int> ud(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) ud[static_cast<std::size_t>(v)] = g.degree(v);

  // Phase in which each edge was oriented (-1 = unoriented): distinguishes
  // F_φ (this phase) from F_{<φ} (earlier phases) in steps 5–6.
  std::vector<std::int64_t> oriented_in_phase(
      static_cast<std::size_t>(g.num_edges()), -1);

  // d⁻_φ(v) of Eq. (5): min over edges of F_{<φ} incident to v of deg_G(e).
  std::vector<std::int64_t> d_minus(
      static_cast<std::size_t>(n), std::numeric_limits<std::int64_t>::max());

  const std::int64_t max_phases =
      params.max_phases > 0
          ? params.max_phases
          : static_cast<std::int64_t>(std::ceil(std::log(dbar + 1.0) / nu)) + 8;

  for (std::int64_t phi = 1; phi <= max_phases; ++phi) {
    if (orient.num_oriented() == g.num_edges()) break;
    const double threshold =
        std::pow(1.0 - nu, static_cast<double>(phi)) * dbar;
    if (threshold < 1.0) break;  // remaining edges go to the leftover pass

    // x(φ−1) snapshot: steps 2 and 5 both read end-of-previous-phase values.
    std::vector<int> x_prev(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      x_prev[static_cast<std::size_t>(v)] = orient.indegree(v);
    }

    // Steps 1–2: eligible unoriented edges (E_φ) propose to one endpoint.
    std::vector<std::vector<EdgeId>> proposals(static_cast<std::size_t>(n));
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (orient.oriented(e)) continue;
      if (unoriented_edge_degree(g, ud, e) <= threshold) continue;
      const NodeId u = u_endpoint(g, parts, e);
      const NodeId v = v_endpoint(g, parts, e);
      const double diff = x_prev[static_cast<std::size_t>(v)] -
                          x_prev[static_cast<std::size_t>(u)];
      const NodeId target =
          diff <= eta[static_cast<std::size_t>(e)] ? v : u;
      proposals[static_cast<std::size_t>(target)].push_back(e);
    }

    // Steps 3–4: each node accepts at most k_φ proposals (the paper allows
    // an arbitrary subset; we take lowest edge ids for determinism).
    const std::int64_t kphi = k_phi(nu, dbar, phi);
    std::vector<int> accepted_count(static_cast<std::size_t>(n), 0);
    for (NodeId w = 0; w < n; ++w) {
      auto& props = proposals[static_cast<std::size_t>(w)];
      if (props.empty()) continue;
      std::sort(props.begin(), props.end());
      const std::size_t take =
          std::min<std::size_t>(props.size(), static_cast<std::size_t>(kphi));
      for (std::size_t i = 0; i < take; ++i) {
        const EdgeId e = props[i];
        const auto [a, b] = g.endpoints(e);
        orient.orient_towards(e, w);
        oriented_in_phase[static_cast<std::size_t>(e)] = phi;
        --ud[static_cast<std::size_t>(a)];
        --ud[static_cast<std::size_t>(b)];
      }
      accepted_count[static_cast<std::size_t>(w)] = static_cast<int>(take);
    }
    res.rounds += 2;
    if (ledger != nullptr) ledger->charge("orientation_phases", 2);

    // Step 5: F'_{<φ} — previously oriented edges violating their η_e
    // inequality at the x(φ−1) snapshot. Arcs point *against* the current
    // orientation (step 6).
    std::vector<std::pair<NodeId, NodeId>> arcs;
    std::vector<EdgeId> arc_to_edge;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const std::int64_t ph = oriented_in_phase[static_cast<std::size_t>(e)];
      if (ph < 0 || ph >= phi) continue;  // unoriented or in F_φ
      const NodeId u = u_endpoint(g, parts, e);
      const NodeId v = v_endpoint(g, parts, e);
      const double diff_vu = x_prev[static_cast<std::size_t>(v)] -
                             x_prev[static_cast<std::size_t>(u)];
      bool violating = false;
      if (orient.head(e) == v) {
        violating = diff_vu > eta[static_cast<std::size_t>(e)];
      } else {
        violating = -diff_vu > -eta[static_cast<std::size_t>(e)];
      }
      if (!violating) continue;
      // Current orientation tail→head; game arc head→tail.
      arcs.emplace_back(orient.head(e), orient.tail(e));
      arc_to_edge.push_back(e);
    }

    // Step 6: run the generalized token dropping game on (V, F'_{<φ}).
    if (!arcs.empty()) {
      const Digraph game(n, std::move(arcs));
      TokenDroppingParams tp;
      tp.k = static_cast<int>(kphi);
      tp.delta =
          static_cast<int>(delta_phi(nu, dbar, dbar_log, phi, params.mode));
      tp.alpha.resize(static_cast<std::size_t>(n));
      for (NodeId v = 0; v < n; ++v) {
        // Nodes without F_{<φ} edges cannot appear in the game; give them a
        // harmless α = δ.
        const std::int64_t dm =
            d_minus[static_cast<std::size_t>(v)] ==
                    std::numeric_limits<std::int64_t>::max()
                ? 0
                : d_minus[static_cast<std::size_t>(v)];
        const double a = alpha_of(nu, dbar_log, dm, params.mode);
        tp.alpha[static_cast<std::size_t>(v)] = std::max(
            tp.delta, static_cast<int>(std::ceil(a)));
      }
      std::vector<int> tokens(static_cast<std::size_t>(n));
      for (NodeId v = 0; v < n; ++v) {
        tokens[static_cast<std::size_t>(v)] =
            std::min<int>(accepted_count[static_cast<std::size_t>(v)], tp.k);
      }
      TokenDroppingResult game_res =
          run_token_dropping(game, std::move(tokens), tp, ledger);
      res.rounds += game_res.rounds;
      // Step 7: flip every edge over which a token moved.
      for (EdgeId a = 0; a < game.num_arcs(); ++a) {
        if (!game_res.edge_passive[static_cast<std::size_t>(a)]) continue;
        orient.flip(arc_to_edge[static_cast<std::size_t>(a)]);
        ++res.flips;
      }
    }

    // End of phase: F_φ joins F_{<φ+1}; update d⁻ accordingly.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (oriented_in_phase[static_cast<std::size_t>(e)] != phi) continue;
      const auto [a, b] = g.endpoints(e);
      const std::int64_t dge = g.edge_degree(e);
      for (const NodeId w : {a, b}) {
        d_minus[static_cast<std::size_t>(w)] =
            std::min(d_minus[static_cast<std::size_t>(w)], dge);
      }
    }
    ++res.phases;
  }

  // Leftover pass: by Lemma 5.4 the unoriented remainder is (near) a
  // matching; orient each edge toward its smaller-id endpoint.
  res.leftover_edges = g.num_edges() - orient.num_oriented();
  if (res.leftover_edges > 0) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (orient.oriented(e)) continue;
      const auto [a, b] = g.endpoints(e);
      orient.orient_towards(e, std::min(a, b));
    }
    res.rounds += 1;
    if (ledger != nullptr) ledger->charge("orientation_leftover", 1);
  }

  orient.validate();
  res.max_excess = orientation_max_excess(g, parts, eta, orient,
                                          eps_from_nu(nu));
  return res;
}

double orientation_max_excess(const Graph& g, const Bipartition& parts,
                              const std::vector<double>& eta,
                              const Orientation& orientation, double eps) {
  double worst = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId u = u_endpoint(g, parts, e);
    const NodeId v = v_endpoint(g, parts, e);
    const double xu = orientation.indegree(u);
    const double xv = orientation.indegree(v);
    const double half_eps_term = (eps / 2.0) * g.edge_degree(e);
    double excess = 0.0;
    if (orientation.head(e) == v) {
      excess = (xv - xu) - eta[static_cast<std::size_t>(e)] - half_eps_term;
    } else {
      excess = (xu - xv) + eta[static_cast<std::size_t>(e)] - half_eps_term;
    }
    worst = std::max(worst, excess);
  }
  return worst;
}

}  // namespace dec
