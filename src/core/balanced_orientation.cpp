#include "core/balanced_orientation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/token_dropping.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"

namespace dec {

// The §5 algorithm as node programs. Each phase φ is two genuine rounds on a
// SyncNetwork over the input graph, pipelined the same way as the other
// substrate solvers (the accept notifications of round B are consumed at the
// start of the next round executed on the network):
//
//   A (announce): consume the previous accept round's notifications (tails
//      learn their edge was oriented, update their unoriented degree and
//      d⁻), then broadcast (x_{φ−1}, unoriented degree) on unoriented edges
//      and x_{φ−1} alone on oriented ones (step 5's violation test needs
//      both endpoints' x on every edge).
//   B (accept): with both endpoints' announcements in hand, membership of an
//      unoriented edge in E_φ and its proposal target are locally computable
//      at both endpoints, so no proposal message needs to cross the wire; the
//      target accepts the k_φ lowest edge ids among the edges proposing to it
//      and notifies each tail with a 1-field accept.
//
// Steps 5–7 then run between network rounds: the violating edges of F_{<φ}
// (decidable at both endpoints from the round-A x announcements) form the
// token dropping game digraph, the game executes on its own DiNetwork via
// run_token_dropping, and an edge flips exactly when its game arc went
// passive — a fact both endpoints observe through the game's own messages
// (the sender grants the token, the receiver consumes its arrival), so the
// flip is driven by delivered tokens rather than centrally recomputed state.
//
// Every mutable slot (x, ud, d⁻, per-incidence mirrors, per-edge head — the
// latter written only by the edge's unique accepting endpoint) has a single
// writing node per round, so the programs shard race-free over the parallel
// engine and serial and parallel runs are bit-identical.
BalancedOrientationResult balanced_orientation(const Graph& g,
                                               const Bipartition& parts,
                                               const std::vector<double>& eta,
                                               const OrientationParams& params,
                                               RoundLedger* ledger,
                                               int num_threads,
                                               NetworkPool* pool,
                                               CancelToken* cancel) {
  validate_bipartition(g, parts);
  DEC_REQUIRE(eta.size() == static_cast<std::size_t>(g.num_edges()),
              "eta has wrong length");
  const double nu = params.nu;
  DEC_REQUIRE(nu > 0.0 && nu <= 0.125, "Eq. (4) requires 0 < nu <= 1/8");

  const NodeId n = g.num_nodes();
  const EdgeId m = g.num_edges();
  const double dbar = std::max(1, 2 * g.max_degree() - 2);
  const double dbar_log = std::log(std::max(2.0, dbar));

  BalancedOrientationResult res{Orientation(g)};
  res.leftover_edge.assign(static_cast<std::size_t>(m), 0);

  // One arena for the whole run: the solver's own network plus every
  // per-phase token dropping game lease from it, so phase φ+1's game reuses
  // phase φ's buffers instead of rebuilding planes, slabs, and thread pools.
  std::optional<NetworkPool> own_pool;
  if (pool == nullptr && params.pooled) {
    own_pool.emplace(num_threads);
    pool = &*own_pool;
  }
  // Widest message is round A's (x, ud) announcement on unoriented edges.
  ScopedNetwork net_scope(pool, g, ledger, "balanced_orientation",
                          num_threads, cancel,
                          SlotPlan{params.slot_format, 2});
  SyncNetwork& net = *net_scope;

  // Node-owned state (each slot written only by its owning node's program,
  // or serially between rounds).
  std::vector<int> x(static_cast<std::size_t>(n), 0);  // x_v = indegree
  std::vector<int> ud(static_cast<std::size_t>(n));    // unoriented degree
  for (NodeId v = 0; v < n; ++v) ud[static_cast<std::size_t>(v)] = g.degree(v);

  // d⁻_φ(v) of Eq. (5): min over edges of F_{<φ} incident to v of deg_G(e).
  // A tail folds its contribution the moment it learns of the orientation
  // (round A of the next phase); an accepting head buffers its contribution
  // in `pend_dmin` during round B and it is folded at the end of the phase —
  // both orderings match the centralized schedule, which updated d⁻ for
  // phase-φ edges after phase φ's game.
  std::vector<std::int64_t> d_minus(
      static_cast<std::size_t>(n), std::numeric_limits<std::int64_t>::max());
  std::vector<std::int64_t> pend_dmin(
      static_cast<std::size_t>(n), std::numeric_limits<std::int64_t>::max());

  // Per-incidence mirror of "is my i-th edge still unoriented" (char, not
  // vector<bool>: adjacent slots must be writable from different shards).
  std::vector<char> inc_unoriented(net.num_slots(), 1);

  // Per-edge orientation record. head_of[e] is written by the edge's unique
  // accepting endpoint (round B) or its unique leftover head (final drain);
  // phase_of[e] by the same writer. Flips are applied serially between
  // rounds from the game's delivered tokens.
  std::vector<NodeId> head_of(static_cast<std::size_t>(m), kInvalidNode);
  std::vector<std::int64_t> phase_of(static_cast<std::size_t>(m), -1);

  std::vector<int> accepted_count(static_cast<std::size_t>(n), 0);

  // Consume in-flight accept notifications: a non-empty message on a
  // still-unoriented incidence means the neighbor oriented that edge toward
  // itself in the previous accept round.
  auto apply_accepts = [&](NodeId v, const auto& in) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (inc_unoriented[net.slot(v, i)] == 0) continue;
      if (in[i].empty()) continue;
      inc_unoriented[net.slot(v, i)] = 0;
      --ud[static_cast<std::size_t>(v)];
      d_minus[static_cast<std::size_t>(v)] =
          std::min(d_minus[static_cast<std::size_t>(v)],
                   static_cast<std::int64_t>(g.edge_degree(nb[i].edge)));
    }
  };

  std::vector<int> x_prev(static_cast<std::size_t>(n), 0);
  std::int64_t num_oriented = 0;
  std::int64_t game_rounds = 0;

  const std::int64_t max_phases =
      params.max_phases > 0
          ? params.max_phases
          : static_cast<std::int64_t>(std::ceil(std::log(dbar + 1.0) / nu)) + 8;

  for (std::int64_t phi = 1; phi <= max_phases; ++phi) {
    if (num_oriented == m) break;
    const double threshold =
        std::pow(1.0 - nu, static_cast<double>(phi)) * dbar;
    if (threshold < 1.0) break;  // remaining edges go to the leftover pass

    // x(φ−1) snapshot: steps 2 and 5 both read end-of-previous-phase values
    // (x only changes in accept rounds and in the serially applied flips,
    // so at this point x holds exactly x(φ−1)).
    std::copy(x.begin(), x.end(), x_prev.begin());

    // Round A: consume last phase's accepts, announce (x, ud).
    net.round_fast([&](NodeId v, const auto& in, auto&& out) {
      apply_accepts(v, in);
      const auto nb = g.neighbors(v);
      const auto xv = static_cast<std::int64_t>(x[static_cast<std::size_t>(v)]);
      const auto udv =
          static_cast<std::int64_t>(ud[static_cast<std::size_t>(v)]);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (inc_unoriented[net.slot(v, i)] != 0) {
          out[i].assign({xv, udv});
        } else {
          out[i].assign({xv});
        }
      }
    });

    // Round B: steps 1–4. Each node derives the proposals addressed to it
    // (both endpoints hold both announcements, so the proposal itself needs
    // no message), accepts the k_φ lowest edge ids, and notifies the tails.
    const std::int64_t kphi = k_phi(nu, dbar, phi);
    net.round_fast([&](NodeId w, const auto& in, auto&& out) {
      const auto nb = g.neighbors(w);
      const bool w_in_u = parts.in_u(w);
      struct Cand {
        EdgeId e;
        std::uint32_t i;
      };
      // Per-worker scratch reused across node steps (capacity only — the
      // contents are rebuilt per node), saving a heap allocation per node
      // per phase.
      thread_local std::vector<Cand> cands;
      cands.clear();
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (inc_unoriented[net.slot(w, i)] == 0) continue;
        const auto& msg = in[i];
        DEC_CHECK(msg.size() == 2, "unoriented-edge announcement malformed");
        const EdgeId e = nb[i].edge;
        const double de =
            static_cast<double>(ud[static_cast<std::size_t>(w)]) +
            static_cast<double>(msg.at(1)) - 2.0;  // d(e, φ)
        if (de <= threshold) continue;             // not in E_φ
        // Step 2: target = the endpoint that "wants" e per η_e, evaluated
        // on the x(φ−1) snapshot.
        const double xw = x[static_cast<std::size_t>(w)];
        const double xz = static_cast<double>(msg.at(0));
        const double xu = w_in_u ? xw : xz;
        const double xv = w_in_u ? xz : xw;
        const double diff = xv - xu;
        const bool to_v = diff <= eta[static_cast<std::size_t>(e)];
        const bool w_is_target = to_v != w_in_u;  // target side == my side
        if (w_is_target) cands.push_back({e, static_cast<std::uint32_t>(i)});
      }
      std::sort(cands.begin(), cands.end(),
                [](const Cand& a, const Cand& b) { return a.e < b.e; });
      const std::size_t take =
          std::min<std::size_t>(cands.size(), static_cast<std::size_t>(kphi));
      for (std::size_t c = 0; c < take; ++c) {
        const EdgeId e = cands[c].e;
        head_of[static_cast<std::size_t>(e)] = w;
        phase_of[static_cast<std::size_t>(e)] = phi;
        inc_unoriented[net.slot(w, cands[c].i)] = 0;
        --ud[static_cast<std::size_t>(w)];
        ++x[static_cast<std::size_t>(w)];
        pend_dmin[static_cast<std::size_t>(w)] =
            std::min(pend_dmin[static_cast<std::size_t>(w)],
                     static_cast<std::int64_t>(g.edge_degree(e)));
        out[cands[c].i].assign({1});  // accept: tail learns next round
      }
      accepted_count[static_cast<std::size_t>(w)] = static_cast<int>(take);
    });
    for (NodeId v = 0; v < n; ++v) {
      num_oriented += accepted_count[static_cast<std::size_t>(v)];
    }

    // Step 5: F'_{<φ} — previously oriented edges violating their η_e
    // inequality at the x(φ−1) snapshot. Both endpoints received each
    // other's x in round A, so membership is local knowledge; the harness
    // materializes the game digraph from it. Arcs point *against* the
    // current orientation (step 6).
    std::vector<std::pair<NodeId, NodeId>> arcs;
    std::vector<EdgeId> arc_to_edge;
    for (EdgeId e = 0; e < m; ++e) {
      const std::int64_t ph = phase_of[static_cast<std::size_t>(e)];
      if (ph < 0 || ph >= phi) continue;  // unoriented or in F_φ
      const NodeId u = u_endpoint(g, parts, e);
      const NodeId v = v_endpoint(g, parts, e);
      const double diff_vu = x_prev[static_cast<std::size_t>(v)] -
                             x_prev[static_cast<std::size_t>(u)];
      const NodeId head = head_of[static_cast<std::size_t>(e)];
      bool violating = false;
      if (head == v) {
        violating = diff_vu > eta[static_cast<std::size_t>(e)];
      } else {
        violating = -diff_vu > -eta[static_cast<std::size_t>(e)];
      }
      if (!violating) continue;
      // Current orientation tail→head; game arc head→tail.
      arcs.emplace_back(head, g.other_endpoint(e, head));
      arc_to_edge.push_back(e);
    }

    // Step 6: run the generalized token dropping game on (V, F'_{<φ}) — on
    // its own DiNetwork, rounds and widths substrate-measured.
    if (!arcs.empty()) {
      const Digraph game(n, std::move(arcs));
      TokenDroppingParams tp;
      tp.k = static_cast<int>(kphi);
      tp.delta =
          static_cast<int>(delta_phi(nu, dbar, dbar_log, phi, params.mode));
      tp.alpha.resize(static_cast<std::size_t>(n));
      for (NodeId v = 0; v < n; ++v) {
        // Nodes without F_{<φ} edges cannot appear in the game; give them a
        // harmless α = δ.
        const std::int64_t dm =
            d_minus[static_cast<std::size_t>(v)] ==
                    std::numeric_limits<std::int64_t>::max()
                ? 0
                : d_minus[static_cast<std::size_t>(v)];
        const double a = alpha_of(nu, dbar_log, dm, params.mode);
        tp.alpha[static_cast<std::size_t>(v)] = std::max(
            tp.delta, static_cast<int>(std::ceil(a)));
      }
      std::vector<int> tokens(static_cast<std::size_t>(n));
      for (NodeId v = 0; v < n; ++v) {
        tokens[static_cast<std::size_t>(v)] =
            std::min<int>(accepted_count[static_cast<std::size_t>(v)], tp.k);
      }
      tp.slot_format = params.slot_format;
      TokenDroppingResult game_res = run_token_dropping(
          game, std::move(tokens), tp, ledger, num_threads, pool, cancel);
      game_rounds += game_res.rounds;
      res.max_message_bits =
          std::max(res.max_message_bits, game_res.max_message_bits);
      // Step 7: flip every edge over which a token moved. An arc going
      // passive is observed by both endpoints through the game's own
      // messages (grant on the sending side, token arrival on the
      // receiving side), so the flip is local knowledge materialized here.
      for (EdgeId a = 0; a < game.num_arcs(); ++a) {
        if (!game_res.edge_passive[static_cast<std::size_t>(a)]) continue;
        const EdgeId e = arc_to_edge[static_cast<std::size_t>(a)];
        const NodeId old_head = head_of[static_cast<std::size_t>(e)];
        const NodeId new_head = g.other_endpoint(e, old_head);
        head_of[static_cast<std::size_t>(e)] = new_head;
        --x[static_cast<std::size_t>(old_head)];
        ++x[static_cast<std::size_t>(new_head)];
        ++res.flips;
      }
    }

    // End of phase: F_φ joins F_{<φ+1} — fold the accepting heads' buffered
    // d⁻ contributions (the tails fold theirs on receiving the accept).
    for (NodeId v = 0; v < n; ++v) {
      d_minus[static_cast<std::size_t>(v)] =
          std::min(d_minus[static_cast<std::size_t>(v)],
                   pend_dmin[static_cast<std::size_t>(v)]);
      pend_dmin[static_cast<std::size_t>(v)] =
          std::numeric_limits<std::int64_t>::max();
    }
    ++res.phases;
  }

  // Leftover pass: by Lemma 5.4 the unoriented remainder is (near) a
  // matching; orient each edge toward its smaller-id endpoint. One genuine
  // round (the larger endpoint cedes the head role), then a free drain in
  // which each head records its adoptions. The final accept round's
  // notifications may still be in flight, so they are consumed first.
  res.leftover_edges = m - num_oriented;
  if (res.leftover_edges > 0) {
    net.round_fast([&](NodeId v, const auto& in, auto&& out) {
      apply_accepts(v, in);
      const auto nb = g.neighbors(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (inc_unoriented[net.slot(v, i)] == 0) continue;
        if (nb[i].neighbor < v) out[i].assign({1});
      }
    });
    net.drain_fast([&](NodeId v, const auto& in) {
      const auto nb = g.neighbors(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (inc_unoriented[net.slot(v, i)] == 0) continue;
        if (in[i].empty()) continue;  // only larger neighbors ceded
        const EdgeId e = nb[i].edge;
        head_of[static_cast<std::size_t>(e)] = v;
        res.leftover_edge[static_cast<std::size_t>(e)] = 1;
        ++x[static_cast<std::size_t>(v)];
        inc_unoriented[net.slot(v, i)] = 0;
      }
    });
  }

  // Materialize the Orientation from the per-edge records and cross-check
  // the incrementally maintained x against it.
  Orientation& orient = res.orientation;
  for (EdgeId e = 0; e < m; ++e) {
    const NodeId head = head_of[static_cast<std::size_t>(e)];
    DEC_CHECK(head != kInvalidNode, "edge left unoriented");
    orient.orient_towards(e, head);
  }
  orient.validate();
  for (NodeId v = 0; v < n; ++v) {
    DEC_CHECK(orient.indegree(v) == x[static_cast<std::size_t>(v)],
              "message-maintained x_v drifted from the orientation");
  }

  res.rounds = net.rounds_executed() + game_rounds;
  res.max_message_bits =
      std::max(res.max_message_bits, net.audit().max_bits());
  res.max_excess = orientation_max_excess(g, parts, eta, orient,
                                          eps_from_nu(nu));
  return res;
}

double orientation_max_excess(const Graph& g, const Bipartition& parts,
                              const std::vector<double>& eta,
                              const Orientation& orientation, double eps) {
  double worst = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId u = u_endpoint(g, parts, e);
    const NodeId v = v_endpoint(g, parts, e);
    const double xu = orientation.indegree(u);
    const double xv = orientation.indegree(v);
    const double half_eps_term = (eps / 2.0) * g.edge_degree(e);
    double excess = 0.0;
    if (orientation.head(e) == v) {
      excess = (xv - xu) - eta[static_cast<std::size_t>(e)] - half_eps_term;
    } else {
      excess = (xu - xv) + eta[static_cast<std::size_t>(e)] - half_eps_term;
    }
    worst = std::max(worst, excess);
  }
  return worst;
}

}  // namespace dec
