#include "core/defective2ec.hpp"

#include <algorithm>
#include <cmath>

namespace dec {

double eta_of_lambda(const Graph& g, const Bipartition& parts, EdgeId e,
                     double lambda, double eps, double beta) {
  const NodeId u = u_endpoint(g, parts, e);
  const NodeId v = v_endpoint(g, parts, e);
  const double du = g.degree(u);
  const double dv = g.degree(v);
  const double de = g.edge_degree(e);
  // Eq. (3).
  return 1.0 - 2.0 * lambda - (1.0 - lambda) * du + lambda * dv +
         eps * (lambda - 0.5) * de + (2.0 * lambda - 1.0) * beta;
}

Defective2ECResult defective_2_edge_coloring(const Graph& g,
                                             const Bipartition& parts,
                                             const std::vector<double>& lambda,
                                             double eps, ParamMode mode,
                                             RoundLedger* ledger,
                                             int num_threads,
                                             NetworkPool* pool,
                                             CancelToken* cancel) {
  DEC_REQUIRE(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  DEC_REQUIRE(lambda.size() == static_cast<std::size_t>(g.num_edges()),
              "lambda has wrong length");
  for (const double l : lambda) {
    DEC_REQUIRE(l >= 0.0 && l <= 1.0, "lambda must be in [0, 1]");
  }

  const double dbar = std::max(1, 2 * g.max_degree() - 2);
  const double beta = beta_of(eps, dbar, mode);

  std::vector<double> eta(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    eta[static_cast<std::size_t>(e)] =
        eta_of_lambda(g, parts, e, lambda[static_cast<std::size_t>(e)], eps,
                      beta);
  }

  OrientationParams op;
  op.nu = std::min(0.125, nu_from_eps(eps));
  op.mode = mode;
  const BalancedOrientationResult bo =
      balanced_orientation(g, parts, eta, op, ledger, num_threads, pool,
                           cancel);

  Defective2ECResult res;
  res.phases = bo.phases;
  res.rounds = bo.rounds;
  res.eps = eps;
  res.beta_used = beta;
  res.max_message_bits = bo.max_message_bits;
  res.is_red.resize(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    // Red = oriented from U to V, i.e. head on the V side (Lemma 5.3).
    res.is_red[static_cast<std::size_t>(e)] =
        parts.in_v(bo.orientation.head(e)) ? 1 : 0;
  }
  res.beta_emp = defective2ec_beta_emp(g, lambda, res.is_red, eps);
  return res;
}

namespace {

/// Same-color neighbor count per edge.
std::vector<int> color_defects(const Graph& g,
                               const std::vector<std::uint8_t>& is_red) {
  std::vector<int> defect(static_cast<std::size_t>(g.num_edges()), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto inc = g.neighbors(v);
    int reds = 0;
    for (const Incidence& i : inc) {
      reds += is_red[static_cast<std::size_t>(i.edge)] != 0 ? 1 : 0;
    }
    const int blues = static_cast<int>(inc.size()) - reds;
    for (const Incidence& i : inc) {
      if (is_red[static_cast<std::size_t>(i.edge)] != 0) {
        defect[static_cast<std::size_t>(i.edge)] += reds - 1;
      } else {
        defect[static_cast<std::size_t>(i.edge)] += blues - 1;
      }
    }
  }
  return defect;
}

}  // namespace

double defective2ec_beta_emp(const Graph& g, const std::vector<double>& lambda,
                             const std::vector<std::uint8_t>& is_red,
                             double eps) {
  const std::vector<int> defect = color_defects(g, is_red);
  double worst = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double side = is_red[static_cast<std::size_t>(e)] != 0
                            ? lambda[static_cast<std::size_t>(e)]
                            : 1.0 - lambda[static_cast<std::size_t>(e)];
    const double mult = (1.0 + eps) * side * g.edge_degree(e);
    const double over = defect[static_cast<std::size_t>(e)] - mult;
    if (over <= 0.0) continue;
    // β' needed so that over <= side * β'; a zero side with positive
    // overshoot means no finite β' certifies Definition 5.1 — report a
    // sentinel large value proportional to the overshoot.
    worst = std::max(worst, side > 1e-12 ? over / side : over * 1e6);
  }
  return worst;
}

bool defective2ec_satisfies(const Graph& g, const std::vector<double>& lambda,
                            const std::vector<std::uint8_t>& is_red, double eps,
                            double beta) {
  const std::vector<int> defect = color_defects(g, is_red);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double side = is_red[static_cast<std::size_t>(e)] != 0
                            ? lambda[static_cast<std::size_t>(e)]
                            : 1.0 - lambda[static_cast<std::size_t>(e)];
    const double bound = (1.0 + eps) * side * g.edge_degree(e) + side * beta;
    if (static_cast<double>(defect[static_cast<std::size_t>(e)]) >
        bound + 1e-9) {
      return false;
    }
  }
  return true;
}

}  // namespace dec
