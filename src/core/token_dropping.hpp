// The generalized token dropping game and its distributed algorithm
// (paper §4 and §4.1, Theorem 4.3).
//
// Game: on a directed graph, every node starts with at most k tokens; one
// token may cross each directed edge at most once (the edge then becomes
// passive); at no time may a node hold more than k tokens. The algorithm
// must end in a state where every still-active edge (u,v) satisfies
// τ(u) − τ(v) ≤ σ(u,v), where the tolerated slack σ is controlled by the
// per-node parameters α_v and the batching parameter δ.
//
// The distributed algorithm runs ⌊k/δ⌋−1 phases. In each phase, nodes with
// at least α_v + δ active tokens retire δ of them (active → passive) and
// become "senders"; receivers with spare capacity request tokens from
// senders on incoming active edges, prioritizing senders with small
// deg(w)/α_w; senders accept up to their active-token count, moving one
// token per accepted request and retiring the edge. Theorem 4.3 bounds the
// final slack on every active edge by
//     2(α_u + α_v) + (deg(u)·deg(v)/(α_u·α_v) + deg(u)/α_u + deg(v)/α_v)·δ.
//
// The three rounds of each phase — sender announce, receiver request,
// sender accept/transfer — execute as genuine node programs on the directed
// adapter (DiNetwork over SyncNetwork), so round counts and message widths
// are measured by the substrate's CongestAudit instead of asserted.
// `num_threads` > 1 shards the node programs over the parallel round engine
// with bit-identical results (enforced by the cross-engine equivalence
// suite, which compares serial against 2- and 4-shard runs).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/ledger.hpp"
#include "sim/message.hpp"
#include "util/rng.hpp"

namespace dec {

class CancelToken;
class NetworkPool;

struct TokenDroppingParams {
  int k = 1;                  // maximum tokens per node
  int delta = 1;              // δ batch size (>= 1); must satisfy δ <= α_v
  std::vector<int> alpha;     // per-node α_v >= δ; empty = all ones * delta
  // Slot-plane format of the game's DiNetwork. The widest message of the
  // game is R1's {deg, α} announcement (2 fields per arc), so the lease
  // declares arc width 2 and defaults to the 16 B narrow plane —
  // bit-identical to kWide (pinned by the narrow equivalence suite).
  SlotFormat slot_format = SlotFormat::kNarrow;
};

struct TokenDroppingResult {
  std::vector<int> tokens;        // τ(v) = active + passive tokens at the end
  std::vector<bool> edge_passive; // per arc: true iff a token crossed it
  std::int64_t phases = 0;
  std::int64_t rounds = 0;        // communication rounds charged (3 / phase)
  std::int64_t tokens_moved = 0;
  int max_message_bits = 0;       // CongestAudit of the message-passing engine
};

/// Run the distributed generalized token dropping algorithm.
/// Preconditions: initial_tokens[v] in [0, k]; alpha[v] >= delta.
/// Postconditions (checked): τ(v) <= k for all v; at most one token crossed
/// each arc; token count conserved.
/// `pool` (optional) leases the game's DiNetwork from an arena instead of
/// building it — callers running many games (balanced orientation's phases)
/// pass one pool so buffers and thread pools are reused; results are
/// bit-identical with or without it.
TokenDroppingResult run_token_dropping(const Digraph& game,
                                       std::vector<int> initial_tokens,
                                       const TokenDroppingParams& params,
                                       RoundLedger* ledger = nullptr,
                                       int num_threads = 1,
                                       NetworkPool* pool = nullptr,
                                       CancelToken* cancel = nullptr);

/// Theorem 4.3's slack bound for arc (u, v) of `game` under `params`.
double theorem_4_3_bound(const Digraph& game, const TokenDroppingParams& params,
                         EdgeId arc);

/// Maximum over active arcs of (τ(u) − τ(v)) − theorem_4_3_bound(...); a
/// non-positive value certifies the theorem on this run.
double max_bound_violation(const Digraph& game,
                           const TokenDroppingParams& params,
                           const TokenDroppingResult& result);

/// Layered game digraph for tests/benches, mimicking the original token
/// dropping setting of [14]: `layers` layers of `width` nodes, each node has
/// up to `out_deg` arcs to uniformly chosen nodes one layer below.
Digraph layered_game(int layers, int width, int out_deg, Rng& rng);

/// General (possibly cyclic) random game digraph with n nodes and arc
/// probability p between ordered pairs.
Digraph random_game(NodeId n, double p, Rng& rng);

}  // namespace dec
