#include "core/params.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dec {

double alpha_of(double nu, double dbar_log, std::int64_t d_minus,
                ParamMode mode) {
  DEC_REQUIRE(nu > 0.0 && nu <= 0.125, "Eq. (4) requires 0 < nu <= 1/8");
  if (mode == ParamMode::kTheory) {
    return std::max(1.0, 0.25 * (nu * nu / std::max(1.0, dbar_log)) *
                             static_cast<double>(d_minus + 1));
  }
  return std::max(1.0, nu * static_cast<double>(d_minus + 1) / 8.0);
}

std::int64_t delta_phi(double nu, double dbar, double dbar_log,
                       std::int64_t phi, ParamMode mode) {
  DEC_REQUIRE(phi >= 1, "phases are 1-based");
  const double decay = std::pow(1.0 - nu, static_cast<double>(phi - 1)) * dbar;
  double raw = 0.0;
  if (mode == ParamMode::kTheory) {
    const double l3 = std::max(1.0, dbar_log * dbar_log * dbar_log);
    raw = (1.0 / 16.0) * (std::pow(nu, 6) / l3) * decay;
  } else {
    raw = (nu * nu / 8.0) * decay;
  }
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::floor(raw)));
}

std::int64_t k_phi(double nu, double dbar, std::int64_t phi) {
  DEC_REQUIRE(phi >= 1, "phases are 1-based");
  const double raw =
      nu * std::pow(1.0 - nu, static_cast<double>(phi - 1)) * dbar;
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(raw)));
}

double beta_of(double eps, double dbar, ParamMode mode) {
  DEC_REQUIRE(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  const double l = std::log(std::max(2.0, dbar + 2.0));
  if (mode == ParamMode::kTheory) {
    return 28.0 * l * l * l / std::pow(eps, 5);
  }
  // Empirically the balanced orientation's additive error is far below even
  // this (see EXP-B: β_emp ≈ 0 on regular instances); one logarithm keeps a
  // safety margin for adversarial λ_e without drowning the multiplicative
  // term at laptop-scale Δ.
  return std::max(2.0, l);
}

}  // namespace dec
