// Slack boosting / partial coloring (paper Lemma D.3, imported from
// [5, Lemma 4.2]).
//
// Contract: given a (degree+1)-list instance (slack 1) on a 2-colored
// bipartite graph, partially color it so that the uncolored remainder has
// edge degree at most Δ̄/k_target, spending O(S² log k)·T(Δ̄, S, C) rounds
// plus O(log k · log* X) for the defective precolorings.
//
// Mechanism (DESIGN.md §4.2): stages halve the maximum uncolored degree D.
// Within a stage, a defective precoloring of the *line graph* splits the
// uncolored edges into O(S²) classes with at most d' = ⌈D/(4S)⌉ same-class
// neighbors each. Classes are processed sequentially; an edge whose
// uncolored degree still exceeds 2·S·d' when its class comes up has slack
//   (remaining list) / (in-class degree) ≥ (2Sd'+1)/d' ≥ 2S ≥ S
// inside its class, so the slack-S solver (Lemma D.2) colors it. Any edge
// left uncolored at stage end was below the 2Sd' ≈ D/2 threshold when its
// class ran, and degrees only fall — so the stage halves D.
#pragma once

#include <vector>

#include "coloring/list_instance.hpp"
#include "core/params.hpp"
#include "graph/bipartite.hpp"
#include "sim/ledger.hpp"

namespace dec {

struct BoostStats {
  std::int64_t rounds = 0;
  int stages = 0;
  std::int64_t colored = 0;
  int final_uncolored_degree = 0;
};

/// Partially color the uncolored edges of `colors` so the uncolored
/// remainder has edge degree <= ceil(Δ̄_g / k_target). The instance lists
/// must satisfy the degree+1 property w.r.t. g. S >= e² recommended.
BoostStats boost_partial_color(const Graph& g, const Bipartition& parts,
                               const ListEdgeInstance& inst, double S,
                               int k_target,
                               const std::vector<Color>& schedule,
                               int schedule_palette, std::vector<Color>& colors,
                               ParamMode mode = ParamMode::kPractical,
                               RoundLedger* ledger = nullptr);

}  // namespace dec
