// (8+ε)Δ-edge coloring of general graphs in the CONGEST model
// (paper Theorem 6.3 / Theorem 1.2).
//
// Pipeline per level i (the degree of the uncolored remainder roughly halves
// each level, so k ≈ log Δ levels suffice):
//   1. (ε₁Δ+⌊Δ/2⌋)-defective 4-coloring of the uncolored subgraph's nodes
//      (Lemma 6.2, given the initial O(Δ²) Linial coloring);
//   2. bipartite graph G1 = bichromatic edges across {0,1} | {2,3}: colored
//      completely by the Lemma 6.1 algorithm with a fresh color range;
//   3. bipartite graph G2 = remaining bichromatic edges across {0,2} | {1,3}:
//      same treatment;
//   4. only monochromatic edges remain — their node degree is at most the
//      4-coloring's defect ≈ (1/2+ε₁)Δ — recurse.
// The constant-degree tail is finished by the O(Δ_tail + log* n) baseline.
#pragma once

#include <vector>

#include "core/params.hpp"
#include "graph/properties.hpp"
#include "sim/ledger.hpp"

namespace dec {

class CancelToken;
class NetworkPool;

struct CongestColoringResult {
  std::vector<Color> colors;
  int palette = 0;
  std::int64_t rounds = 0;
  int levels = 0;          // recursion levels executed
  int tail_degree = 0;     // Δ of the subgraph handled by the tail step
};

/// (8+O(ε))Δ-edge coloring in polylog(Δ) + O(log* n) rounds. `num_threads`
/// runs the SyncNetwork-backed subroutines (Linial and the Lemma 6.2
/// defective precolor/refine node programs) on the parallel round engine
/// (1 = serial, 0 = hardware concurrency); results are bit-identical across
/// engines. All stages share one network arena (`pool`, or an internal one
/// when null): the level-0 Linial, precolor, and refine stages run on the
/// same graph shape and reuse a single topology plan.
CongestColoringResult congest_edge_coloring(
    const Graph& g, double eps, ParamMode mode = ParamMode::kPractical,
    RoundLedger* ledger = nullptr, int num_threads = 1,
    NetworkPool* pool = nullptr, CancelToken* cancel = nullptr);

}  // namespace dec
