#include "graph/digraph.hpp"

#include <algorithm>

namespace dec {

Digraph::Digraph(NodeId n, std::vector<std::pair<NodeId, NodeId>> arcs)
    : n_(n), arcs_(std::move(arcs)) {
  DEC_REQUIRE(n >= 0, "negative node count");
  out_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  in_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : arcs_) {
    DEC_REQUIRE(u >= 0 && u < n && v >= 0 && v < n, "arc endpoint out of range");
    DEC_REQUIRE(u != v, "self-loops are not allowed");
    ++out_off_[static_cast<std::size_t>(u) + 1];
    ++in_off_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i <= static_cast<std::size_t>(n); ++i) {
    out_off_[i] += out_off_[i - 1];
    in_off_[i] += in_off_[i - 1];
  }
  out_adj_.resize(arcs_.size());
  in_adj_.resize(arcs_.size());
  std::vector<std::size_t> oc(out_off_.begin(), out_off_.end() - 1);
  std::vector<std::size_t> ic(in_off_.begin(), in_off_.end() - 1);
  for (EdgeId e = 0; e < num_arcs(); ++e) {
    const auto [u, v] = arcs_[static_cast<std::size_t>(e)];
    out_adj_[oc[static_cast<std::size_t>(u)]++] = Arc{v, e};
    in_adj_[ic[static_cast<std::size_t>(v)]++] = Arc{u, e};
  }
  for (NodeId v = 0; v < n_; ++v) {
    max_degree_ = std::max(max_degree_, degree(v));
  }
}

}  // namespace dec
