#include "graph/properties.hpp"

#include <algorithm>
#include <unordered_set>

namespace dec {

bool is_proper_vertex_coloring(const Graph& g, const std::vector<Color>& color) {
  DEC_REQUIRE(color.size() == static_cast<std::size_t>(g.num_nodes()),
              "color vector has wrong length");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const Color cu = color[static_cast<std::size_t>(u)];
    const Color cv = color[static_cast<std::size_t>(v)];
    if (cu != kUncolored && cu == cv) return false;
  }
  return true;
}

bool is_complete_proper_vertex_coloring(const Graph& g,
                                        const std::vector<Color>& color) {
  for (const Color c : color) {
    if (c == kUncolored) return false;
  }
  return is_proper_vertex_coloring(g, color);
}

bool is_proper_edge_coloring(const Graph& g, const std::vector<Color>& color) {
  DEC_REQUIRE(color.size() == static_cast<std::size_t>(g.num_edges()),
              "color vector has wrong length");
  // Two edges are adjacent iff they share a node; check per node.
  std::unordered_set<Color> seen;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    seen.clear();
    for (const Incidence& inc : g.neighbors(v)) {
      const Color c = color[static_cast<std::size_t>(inc.edge)];
      if (c == kUncolored) continue;
      if (!seen.insert(c).second) return false;
    }
  }
  return true;
}

bool is_complete_proper_edge_coloring(const Graph& g,
                                      const std::vector<Color>& color) {
  for (const Color c : color) {
    if (c == kUncolored) return false;
  }
  return is_proper_edge_coloring(g, color);
}

std::vector<int> vertex_defects(const Graph& g, const std::vector<Color>& color) {
  DEC_REQUIRE(color.size() == static_cast<std::size_t>(g.num_nodes()),
              "color vector has wrong length");
  std::vector<int> defect(static_cast<std::size_t>(g.num_nodes()), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const Color cu = color[static_cast<std::size_t>(u)];
    const Color cv = color[static_cast<std::size_t>(v)];
    if (cu != kUncolored && cu == cv) {
      ++defect[static_cast<std::size_t>(u)];
      ++defect[static_cast<std::size_t>(v)];
    }
  }
  return defect;
}

std::vector<int> edge_defects(const Graph& g, const std::vector<Color>& color) {
  DEC_REQUIRE(color.size() == static_cast<std::size_t>(g.num_edges()),
              "color vector has wrong length");
  std::vector<int> defect(static_cast<std::size_t>(g.num_edges()), 0);
  // For each node, group incident edges by color; every pair of same-colored
  // incident edges contributes one defect unit to each member.
  std::vector<std::pair<Color, EdgeId>> bucket;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bucket.clear();
    for (const Incidence& inc : g.neighbors(v)) {
      const Color c = color[static_cast<std::size_t>(inc.edge)];
      if (c != kUncolored) bucket.emplace_back(c, inc.edge);
    }
    std::sort(bucket.begin(), bucket.end());
    for (std::size_t i = 0; i < bucket.size();) {
      std::size_t j = i;
      while (j < bucket.size() && bucket[j].first == bucket[i].first) ++j;
      const int same = static_cast<int>(j - i);
      if (same > 1) {
        for (std::size_t k = i; k < j; ++k) {
          defect[static_cast<std::size_t>(bucket[k].second)] += same - 1;
        }
      }
      i = j;
    }
  }
  return defect;
}

int count_colors(const std::vector<Color>& color) {
  std::unordered_set<Color> distinct;
  for (const Color c : color) {
    if (c != kUncolored) distinct.insert(c);
  }
  return static_cast<int>(distinct.size());
}

int palette_size(const std::vector<Color>& color) {
  Color max_c = -1;
  for (const Color c : color) max_c = std::max(max_c, c);
  return static_cast<int>(max_c + 1);
}

std::int64_t count_uncolored(const std::vector<Color>& color) {
  std::int64_t k = 0;
  for (const Color c : color) {
    if (c == kUncolored) ++k;
  }
  return k;
}

std::vector<int> uncolored_degrees(const Graph& g,
                                   const std::vector<Color>& color) {
  DEC_REQUIRE(color.size() == static_cast<std::size_t>(g.num_edges()),
              "color vector has wrong length");
  std::vector<int> ud(static_cast<std::size_t>(g.num_nodes()), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (color[static_cast<std::size_t>(e)] != kUncolored) continue;
    const auto [u, v] = g.endpoints(e);
    ++ud[static_cast<std::size_t>(u)];
    ++ud[static_cast<std::size_t>(v)];
  }
  return ud;
}

int max_uncolored_edge_degree(const Graph& g, const std::vector<Color>& color) {
  const std::vector<int> ud = uncolored_degrees(g, color);
  int best = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (color[static_cast<std::size_t>(e)] != kUncolored) continue;
    const auto [u, v] = g.endpoints(e);
    best = std::max(best, ud[static_cast<std::size_t>(u)] +
                              ud[static_cast<std::size_t>(v)] - 2);
  }
  return best;
}

}  // namespace dec
