#include "graph/csr_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <vector>

namespace dec {

// The on-disk format is little-endian and the loader reads sections in
// place; big-endian hosts would need a byte-swapping load path nobody has
// asked for yet.
static_assert(std::endian::native == std::endian::little,
              "binary CSR I/O assumes a little-endian host");

namespace {

constexpr std::uint64_t kCsrMagic = 0x0031525343434544ULL;  // "DECCSR1\0"
constexpr std::uint32_t kCsrVersion = 1;
constexpr std::size_t kHeaderBytes = 40;

struct CsrHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t n;
  std::uint64_t m;
  std::uint64_t checksum;
};
static_assert(sizeof(CsrHeader) == kHeaderBytes);

std::size_t offsets_bytes(std::uint64_t n) {
  return (static_cast<std::size_t>(n) + 1) * sizeof(std::uint64_t);
}

std::size_t endpoints_bytes(std::uint64_t m) {
  return static_cast<std::size_t>(m) * 2 * sizeof(std::uint32_t);
}

}  // namespace

std::uint64_t csr_checksum(std::uint64_t n, std::uint64_t m,
                           std::span<const std::uint64_t> offsets,
                           std::span<const std::uint32_t> endpoints) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  const auto mix = [&h](std::uint64_t w) {
    h ^= w;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
  };
  mix(n);
  mix(m);
  for (const std::uint64_t w : offsets) mix(w);
  for (std::size_t i = 0; i + 1 < endpoints.size(); i += 2) {
    mix(static_cast<std::uint64_t>(endpoints[i]) |
        (static_cast<std::uint64_t>(endpoints[i + 1]) << 32));
  }
  return h;
}

CsrMapping::CsrMapping(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw CheckError("csr: cannot open '" + path + "': " +
                     std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw CheckError("csr: cannot stat '" + path + "': " +
                     std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);

  // Header first: every byte count below is derived from n and m, so both
  // are bounds-checked against their id domains AND the declared section
  // sizes against the real file size before any section is touched. A
  // hostile header (say m = 2^31 - 1 on a 3-byte file) dies here, before
  // any allocation proportional to it.
  CsrHeader hdr{};
  if (size_ < kHeaderBytes ||
      ::pread(fd, &hdr, sizeof(hdr), 0) != static_cast<ssize_t>(sizeof(hdr))) {
    ::close(fd);
    throw CheckError("csr: '" + path + "' is too small to hold a header");
  }
  if (hdr.magic != kCsrMagic) {
    ::close(fd);
    throw CheckError("csr: '" + path + "' has a bad magic number");
  }
  if (hdr.version != kCsrVersion || hdr.flags != 0) {
    ::close(fd);
    throw CheckError("csr: '" + path + "' has unsupported version/flags");
  }
  if (hdr.n > static_cast<std::uint64_t>(kMaxNodeId) ||
      hdr.m > static_cast<std::uint64_t>(INT32_MAX)) {
    ::close(fd);
    throw CheckError("csr: '" + path + "' header counts exceed id ranges");
  }
  const std::size_t expected =
      kHeaderBytes + offsets_bytes(hdr.n) + endpoints_bytes(hdr.m);
  if (size_ != expected) {
    ::close(fd);
    throw CheckError("csr: '" + path + "' is " + std::to_string(size_) +
                     " bytes but the header declares " +
                     std::to_string(expected) +
                     " (truncated or corrupt section sizes)");
  }
  n_ = static_cast<NodeId>(hdr.n);
  m_ = static_cast<EdgeId>(hdr.m);
  stored_checksum_ = hdr.checksum;

  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    base_ = map;
    mapped_ = true;
  } else {
    // Filesystems without mmap support: fall back to one plain read.
    fallback_ = new char[size_];
    std::size_t got = 0;
    while (got < size_) {
      const ssize_t r = ::pread(fd, fallback_ + got, size_ - got,
                                static_cast<off_t>(got));
      if (r <= 0) {
        delete[] fallback_;
        ::close(fd);
        throw CheckError("csr: short read on '" + path + "'");
      }
      got += static_cast<std::size_t>(r);
    }
    base_ = fallback_;
  }
  ::close(fd);  // the mapping (or buffer) survives the descriptor

  const char* bytes = static_cast<const char*>(base_);
  offsets_ = reinterpret_cast<const std::uint64_t*>(bytes + kHeaderBytes);
  endpoints_ = reinterpret_cast<const std::uint32_t*>(
      bytes + kHeaderBytes + offsets_bytes(hdr.n));
}

CsrMapping::~CsrMapping() {
  if (mapped_ && base_ != nullptr) {
    ::munmap(base_, size_);
  }
  delete[] fallback_;
}

void CsrMapping::verify_checksum() const {
  const std::uint64_t got =
      csr_checksum(static_cast<std::uint64_t>(n_),
                   static_cast<std::uint64_t>(m_), offsets(), endpoints());
  DEC_REQUIRE(got == stored_checksum_, "csr: checksum mismatch");
}

void write_csr(const std::string& path, const Graph& g) {
  const std::uint64_t n = static_cast<std::uint64_t>(g.num_nodes());
  const std::uint64_t m = static_cast<std::uint64_t>(g.num_edges());

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    offsets[static_cast<std::size_t>(v) + 1] =
        offsets[static_cast<std::size_t>(v)] +
        static_cast<std::uint64_t>(g.degree(v));
  }
  std::vector<std::uint32_t> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(m));
  for (const auto& [u, v] : g.edge_list()) {
    endpoints.push_back(static_cast<std::uint32_t>(u));
    endpoints.push_back(static_cast<std::uint32_t>(v));
  }

  CsrHeader hdr{};
  hdr.magic = kCsrMagic;
  hdr.version = kCsrVersion;
  hdr.flags = 0;
  hdr.n = n;
  hdr.m = m;
  hdr.checksum = csr_checksum(n, m, offsets, endpoints);

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  DEC_REQUIRE(os.good(), "csr: cannot open '" + path + "' for writing");
  os.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  os.write(reinterpret_cast<const char*>(offsets.data()),
           static_cast<std::streamsize>(offsets_bytes(n)));
  os.write(reinterpret_cast<const char*>(endpoints.data()),
           static_cast<std::streamsize>(endpoints_bytes(m)));
  os.flush();
  DEC_REQUIRE(os.good(), "csr: write to '" + path + "' failed");
}

Graph read_csr(const std::string& path, CsrTrust trust) {
  CsrMapping map(path);
  if (trust == CsrTrust::kVerify) {
    map.verify_checksum();
  }
  return Graph::from_csr(map.num_nodes(), map.offsets(), map.endpoints());
}

}  // namespace dec
