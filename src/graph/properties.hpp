// Validation predicates and measurements over colorings and orientations.
//
// Everything the test suite and the benchmark harness asserts about algorithm
// output lives here: properness of vertex/edge colorings, defect vectors,
// palette sizes, list compliance hooks. Color -1 is "uncolored" throughout.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dec {

using Color = std::int32_t;
constexpr Color kUncolored = -1;

/// True iff no edge has two equal-colored (and colored) endpoints.
bool is_proper_vertex_coloring(const Graph& g, const std::vector<Color>& color);

/// True iff every node is colored and the coloring is proper.
bool is_complete_proper_vertex_coloring(const Graph& g,
                                        const std::vector<Color>& color);

/// True iff no two incident colored edges share a color.
bool is_proper_edge_coloring(const Graph& g, const std::vector<Color>& color);

/// True iff every edge is colored and no two incident edges share a color.
bool is_complete_proper_edge_coloring(const Graph& g,
                                      const std::vector<Color>& color);

/// Defect of each node under a (possibly improper) vertex coloring: the
/// number of neighbors sharing the node's color. Uncolored nodes get 0.
std::vector<int> vertex_defects(const Graph& g, const std::vector<Color>& color);

/// Defect of each edge under a (possibly improper) edge coloring: the number
/// of adjacent edges sharing the edge's color. Uncolored edges get 0.
std::vector<int> edge_defects(const Graph& g, const std::vector<Color>& color);

/// Number of distinct colors used (ignoring kUncolored).
int count_colors(const std::vector<Color>& color);

/// Largest color value used + 1 (0 if nothing colored). The "palette size"
/// bound the paper's statements are about.
int palette_size(const std::vector<Color>& color);

/// Number of uncolored entries.
std::int64_t count_uncolored(const std::vector<Color>& color);

/// Maximum degree among edges of the subgraph induced by uncolored edges:
/// for each uncolored edge, the number of adjacent uncolored edges.
int max_uncolored_edge_degree(const Graph& g, const std::vector<Color>& color);

/// Per-node count of incident uncolored edges.
std::vector<int> uncolored_degrees(const Graph& g,
                                   const std::vector<Color>& color);

}  // namespace dec
