// Mutable accumulator producing validated dec::Graph instances.
//
// The builder tolerates duplicate insertions (deduplicates), rejects
// self-loops, and grows the node range on demand, which keeps generator code
// simple and the Graph class strict.
//
// Scale path: reserve_edges() pre-sizes the edge buffer (a streaming
// generator that knows its expected edge count never reallocates, so a
// 10M-node graph holds one copy of its edge list, not a growth-doubling
// peak of two), and the builder tracks whether insertions have stayed in
// canonical order (u < v, strictly increasing) — when they have, build()
// skips the O(m log m) sort/dedup entirely and has_edge() is a binary
// search instead of a linear scan.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace dec {

class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n = 0) : n_(n) {}

  /// Add undirected edge {u, v}; duplicates are removed at build() time.
  void add_edge(NodeId u, NodeId v);

  /// Ensure the graph has at least n nodes.
  void ensure_nodes(NodeId n) { n_ = n_ > n ? n_ : n; }

  /// Pre-size the edge buffer for a generator that knows (or can bound) its
  /// edge count — avoids reallocation doubling while streaming edges in.
  void reserve_edges(std::size_t m) { edges_.reserve(m); }

  /// Whether {u,v} was added already. O(log m) binary search while
  /// insertions have stayed in canonical sorted order (the streaming
  /// generators' case); falls back to an O(m) linear scan once an
  /// out-of-order edge lands — retry-loop generators should prefer
  /// build()-time dedup over per-insert membership probes.
  bool has_edge(NodeId u, NodeId v) const;

  /// Whether every insertion so far has been in strictly increasing
  /// canonical order (build() will skip the sort/dedup pass).
  bool edges_sorted() const { return sorted_; }

  NodeId num_nodes() const { return n_; }
  std::size_t num_edges_with_duplicates() const { return edges_.size(); }

  /// Validate, deduplicate, and produce the immutable graph.
  Graph build() &&;

 private:
  NodeId n_ = 0;
  bool sorted_ = true;  // strictly-increasing canonical append watermark
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace dec
