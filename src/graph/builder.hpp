// Mutable accumulator producing validated dec::Graph instances.
//
// The builder tolerates duplicate insertions (deduplicates), rejects
// self-loops, and grows the node range on demand, which keeps generator code
// simple and the Graph class strict.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace dec {

class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n = 0) : n_(n) {}

  /// Add undirected edge {u, v}; duplicates are removed at build() time.
  void add_edge(NodeId u, NodeId v);

  /// Ensure the graph has at least n nodes.
  void ensure_nodes(NodeId n) { n_ = n_ > n ? n_ : n; }

  /// Whether {u,v} was added already (linear scan; for generator retry loops
  /// prefer has_edge_fast on small batches or dedupe at build()).
  bool has_edge(NodeId u, NodeId v) const;

  NodeId num_nodes() const { return n_; }
  std::size_t num_edges_with_duplicates() const { return edges_.size(); }

  /// Validate, deduplicate, and produce the immutable graph.
  Graph build() &&;

 private:
  NodeId n_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace dec
