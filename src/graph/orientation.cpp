#include "graph/orientation.hpp"

namespace dec {

Orientation::Orientation(const Graph& g)
    : g_(&g),
      head_(static_cast<std::size_t>(g.num_edges()), kInvalidNode),
      indeg_(static_cast<std::size_t>(g.num_nodes()), 0) {}

NodeId Orientation::tail(EdgeId e) const {
  const NodeId h = head(e);
  return g_->other_endpoint(e, h);
}

void Orientation::orient_towards(EdgeId e, NodeId to) {
  DEC_REQUIRE(!oriented(e), "edge already oriented");
  const auto [a, b] = g_->endpoints(e);
  DEC_REQUIRE(to == a || to == b, "node is not an endpoint of edge");
  head_[static_cast<std::size_t>(e)] = to;
  ++indeg_[static_cast<std::size_t>(to)];
  ++num_oriented_;
}

void Orientation::flip(EdgeId e) {
  const NodeId old_head = head(e);
  const NodeId new_head = g_->other_endpoint(e, old_head);
  head_[static_cast<std::size_t>(e)] = new_head;
  --indeg_[static_cast<std::size_t>(old_head)];
  ++indeg_[static_cast<std::size_t>(new_head)];
}

void Orientation::validate() const {
  std::vector<int> fresh(static_cast<std::size_t>(g_->num_nodes()), 0);
  EdgeId count = 0;
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    if (!oriented(e)) continue;
    ++count;
    ++fresh[static_cast<std::size_t>(head(e))];
  }
  DEC_CHECK(count == num_oriented_, "oriented-edge count drifted");
  for (NodeId v = 0; v < g_->num_nodes(); ++v) {
    DEC_CHECK(fresh[static_cast<std::size_t>(v)] == indegree(v),
              "cached indegree drifted");
  }
}

}  // namespace dec
