// Two-colored bipartite graphs.
//
// The paper's core subroutines (§5, Lemma 6.1, Appendix D) run on "2-colored
// bipartite graphs": bipartite graphs where every node knows its side. We
// carry that knowledge explicitly as a side vector next to the Graph.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace dec {

/// Side assignment for a bipartite graph; side 0 = "U", side 1 = "V".
struct Bipartition {
  std::vector<std::uint8_t> side;

  bool in_u(NodeId v) const { return side[static_cast<std::size_t>(v)] == 0; }
  bool in_v(NodeId v) const { return side[static_cast<std::size_t>(v)] == 1; }
};

/// A graph together with a consistent 2-coloring of its nodes.
struct BipartiteGraph {
  Graph graph;
  Bipartition parts;
};

/// BFS 2-coloring; returns std::nullopt when the graph has an odd cycle.
/// Isolated nodes and fresh components start on side 0.
std::optional<Bipartition> try_bipartition(const Graph& g);

/// Throws unless `parts` is a valid 2-coloring of g.
void validate_bipartition(const Graph& g, const Bipartition& parts);

/// For an edge {u,v}, return the endpoint on side 0 (the "U" endpoint).
NodeId u_endpoint(const Graph& g, const Bipartition& parts, EdgeId e);

/// For an edge {u,v}, return the endpoint on side 1 (the "V" endpoint).
NodeId v_endpoint(const Graph& g, const Bipartition& parts, EdgeId e);

}  // namespace dec
