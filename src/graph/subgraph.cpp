#include "graph/subgraph.hpp"

namespace dec {

EdgeSubgraph edge_subgraph(const Graph& g, const std::vector<bool>& take) {
  DEC_REQUIRE(take.size() == static_cast<std::size_t>(g.num_edges()),
              "take mask has wrong length");
  EdgeSubgraph s;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (take[static_cast<std::size_t>(e)]) {
      s.members.push_back(e);
      edges.push_back(g.endpoints(e));
    }
  }
  s.graph = Graph(g.num_nodes(), std::move(edges));
  return s;
}

EdgeSubgraph edge_subgraph(const Graph& g, const std::vector<EdgeId>& list) {
  EdgeSubgraph s;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(list.size());
  for (const EdgeId e : list) {
    DEC_REQUIRE(e >= 0 && e < g.num_edges(), "edge id out of range");
    s.members.push_back(e);
    edges.push_back(g.endpoints(e));
  }
  s.graph = Graph(g.num_nodes(), std::move(edges));
  return s;
}

}  // namespace dec
