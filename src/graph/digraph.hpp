// Directed graph for the generalized token dropping game (paper §4).
//
// The game graph is an arbitrary digraph; tokens move along edge directions
// and each directed edge can carry at most one token ever. We store a CSR
// over both out- and in-adjacency so that the distributed phases can iterate
// "potential senders into v" (in-neighbors) efficiently.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace dec {

/// One directed adjacency entry.
struct Arc {
  NodeId node;  // the other endpoint
  EdgeId edge;  // directed edge id
};

class Digraph {
 public:
  /// Build from an explicit arc list (tail -> head) over nodes 0..n-1.
  /// Self-loops are rejected; parallel arcs are allowed (the token game
  /// treats each arc as an independent one-shot channel).
  Digraph(NodeId n, std::vector<std::pair<NodeId, NodeId>> arcs);

  Digraph() = default;

  NodeId num_nodes() const { return n_; }
  EdgeId num_arcs() const { return static_cast<EdgeId>(arcs_.size()); }

  std::pair<NodeId, NodeId> arc(EdgeId e) const {
    DEC_REQUIRE(e >= 0 && e < num_arcs(), "arc out of range");
    return arcs_[static_cast<std::size_t>(e)];
  }

  /// Arcs leaving v.
  std::span<const Arc> out(NodeId v) const {
    DEC_REQUIRE(v >= 0 && v < n_, "node out of range");
    const auto lo = out_off_[static_cast<std::size_t>(v)];
    const auto hi = out_off_[static_cast<std::size_t>(v) + 1];
    return {out_adj_.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  /// Arcs entering v.
  std::span<const Arc> in(NodeId v) const {
    DEC_REQUIRE(v >= 0 && v < n_, "node out of range");
    const auto lo = in_off_[static_cast<std::size_t>(v)];
    const auto hi = in_off_[static_cast<std::size_t>(v) + 1];
    return {in_adj_.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  int out_degree(NodeId v) const { return static_cast<int>(out(v).size()); }
  int in_degree(NodeId v) const { return static_cast<int>(in(v).size()); }

  /// Degree in the underlying undirected multigraph (out + in).
  int degree(NodeId v) const { return out_degree(v) + in_degree(v); }

  /// Maximum undirected degree.
  int max_degree() const { return max_degree_; }

  /// Line-graph degree of arc e in the underlying undirected multigraph:
  /// deg(u) + deg(v) - 2.
  int arc_degree(EdgeId e) const {
    const auto [u, v] = arc(e);
    return degree(u) + degree(v) - 2;
  }

 private:
  NodeId n_ = 0;
  std::vector<std::pair<NodeId, NodeId>> arcs_;
  std::vector<std::size_t> out_off_, in_off_;
  std::vector<Arc> out_adj_, in_adj_;
  int max_degree_ = 0;
};

}  // namespace dec
