#include "graph/graph.hpp"

#include <algorithm>

namespace dec {

void Graph::finish_construction(bool adjacency_sorted) {
  adj_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto [u, v] = edges_[static_cast<std::size_t>(e)];
    adj_[cursor[static_cast<std::size_t>(u)]++] = Incidence{v, e};
    adj_[cursor[static_cast<std::size_t>(v)]++] = Incidence{u, e};
  }
  for (NodeId v = 0; v < n_; ++v) {
    if (!adjacency_sorted) {
      auto lo = adj_.begin() + static_cast<std::ptrdiff_t>(
                                   offsets_[static_cast<std::size_t>(v)]);
      auto hi = adj_.begin() + static_cast<std::ptrdiff_t>(
                                   offsets_[static_cast<std::size_t>(v) + 1]);
      std::sort(lo, hi, [](const Incidence& a, const Incidence& b) {
        return a.neighbor < b.neighbor;
      });
      // Simplicity: adjacent entries with equal neighbors are parallel edges.
      for (auto it = lo; it != hi && it + 1 != hi; ++it) {
        DEC_REQUIRE((it + 1)->neighbor != it->neighbor,
                    "parallel edges are not allowed");
      }
    }
    max_degree_ = std::max(max_degree_, degree(v));
  }
  edge_degrees_.resize(edges_.size());
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto [u, v] = edges_[static_cast<std::size_t>(e)];
    edge_degrees_[static_cast<std::size_t>(e)] = degree(u) + degree(v) - 2;
    max_edge_degree_ = std::max(max_edge_degree_, edge_degree(e));
  }
}

Graph::Graph(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges)
    : n_(n), edges_(std::move(edges)) {
  DEC_REQUIRE(n >= 0, "negative node count");
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges_) {
    DEC_REQUIRE(u >= 0 && u < n && v >= 0 && v < n, "edge endpoint out of range");
    DEC_REQUIRE(u != v, "self-loops are not allowed");
    ++offsets_[static_cast<std::size_t>(u) + 1];
    ++offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  finish_construction(/*adjacency_sorted=*/false);
}

Graph Graph::from_sorted_unique(NodeId n,
                                std::vector<std::pair<NodeId, NodeId>> edges) {
  DEC_REQUIRE(n >= 0, "negative node count");
  Graph g;
  g.n_ = n;
  g.edges_ = std::move(edges);
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  // One validation pass establishes canonical form (u < v, strictly
  // increasing pairs => simple) and counts degrees. Canonical edge order
  // means every node sees neighbors < v (edges where it is the second
  // endpoint, by ascending first endpoint) before neighbors > v (where it
  // is the first, by ascending second endpoint), so the cursor fill emits
  // sorted adjacencies and the per-node sort is skipped.
  std::pair<NodeId, NodeId> prev{-1, -1};
  for (const auto& edge : g.edges_) {
    const auto [u, v] = edge;
    DEC_REQUIRE(u >= 0 && v < n, "edge endpoint out of range");
    DEC_REQUIRE(u < v, "edge list is not in canonical (u < v) form");
    DEC_REQUIRE(prev < edge, "edge list is not sorted and unique");
    prev = edge;
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
    ++g.offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.finish_construction(/*adjacency_sorted=*/true);
  return g;
}

Graph Graph::from_csr(NodeId n, std::span<const std::uint64_t> offsets,
                      std::span<const std::uint32_t> endpoints) {
  DEC_REQUIRE(n >= 0 && n <= kMaxNodeId, "node count out of range");
  DEC_REQUIRE(offsets.size() == static_cast<std::size_t>(n) + 1,
              "CSR offsets section has wrong length");
  DEC_REQUIRE(endpoints.size() % 2 == 0,
              "CSR endpoint section has odd length");
  const std::size_t m = endpoints.size() / 2;
  DEC_REQUIRE(m <= static_cast<std::size_t>(INT32_MAX),
              "edge count exceeds 32-bit edge ids");
  DEC_REQUIRE(offsets.front() == 0 && offsets.back() == 2 * m,
              "CSR offsets do not span the endpoint section");
  Graph g;
  g.n_ = n;
  g.offsets_.assign(offsets.begin(), offsets.end());
  // Decode endpoints straight out of the mapping, validating canonical form
  // and re-counting degrees against the stored offsets in the same pass —
  // a file whose offsets disagree with its endpoints is rejected, not
  // mis-delivered.
  g.edges_.resize(m);
  std::vector<std::size_t> deg(static_cast<std::size_t>(n) + 1, 0);
  std::pair<NodeId, NodeId> prev{-1, -1};
  for (std::size_t e = 0; e < m; ++e) {
    const std::uint32_t uw = endpoints[2 * e];
    const std::uint32_t vw = endpoints[2 * e + 1];
    DEC_REQUIRE(uw < static_cast<std::uint64_t>(n) &&
                    vw < static_cast<std::uint64_t>(n),
                "CSR edge endpoint out of range");
    const std::pair<NodeId, NodeId> edge{static_cast<NodeId>(uw),
                                         static_cast<NodeId>(vw)};
    DEC_REQUIRE(edge.first < edge.second,
                "CSR edge list is not in canonical (u < v) form");
    DEC_REQUIRE(prev < edge, "CSR edge list is not sorted and unique");
    prev = edge;
    g.edges_[e] = edge;
    ++deg[static_cast<std::size_t>(edge.first) + 1];
    ++deg[static_cast<std::size_t>(edge.second) + 1];
  }
  for (std::size_t i = 1; i < deg.size(); ++i) {
    deg[i] += deg[i - 1];
    DEC_REQUIRE(deg[i] == g.offsets_[i],
                "CSR offsets disagree with endpoint section");
  }
  g.finish_construction(/*adjacency_sorted=*/true);
  return g;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  DEC_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_, "node out of range");
  const auto nb = neighbors(u);
  auto it = std::lower_bound(
      nb.begin(), nb.end(), v,
      [](const Incidence& inc, NodeId target) { return inc.neighbor < target; });
  if (it != nb.end() && it->neighbor == v) return it->edge;
  return kInvalidEdge;
}

}  // namespace dec
