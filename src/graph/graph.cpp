#include "graph/graph.hpp"

#include <algorithm>

namespace dec {

Graph::Graph(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges)
    : n_(n), edges_(std::move(edges)) {
  DEC_REQUIRE(n >= 0, "negative node count");
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges_) {
    DEC_REQUIRE(u >= 0 && u < n && v >= 0 && v < n, "edge endpoint out of range");
    DEC_REQUIRE(u != v, "self-loops are not allowed");
    ++offsets_[static_cast<std::size_t>(u) + 1];
    ++offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  adj_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto [u, v] = edges_[static_cast<std::size_t>(e)];
    adj_[cursor[static_cast<std::size_t>(u)]++] = Incidence{v, e};
    adj_[cursor[static_cast<std::size_t>(v)]++] = Incidence{u, e};
  }
  for (NodeId v = 0; v < n_; ++v) {
    auto lo = adj_.begin() + static_cast<std::ptrdiff_t>(
                                 offsets_[static_cast<std::size_t>(v)]);
    auto hi = adj_.begin() + static_cast<std::ptrdiff_t>(
                                 offsets_[static_cast<std::size_t>(v) + 1]);
    std::sort(lo, hi, [](const Incidence& a, const Incidence& b) {
      return a.neighbor < b.neighbor;
    });
    // Simplicity: adjacent entries with equal neighbors are parallel edges.
    for (auto it = lo; it != hi && it + 1 != hi; ++it) {
      DEC_REQUIRE((it + 1)->neighbor != it->neighbor,
                  "parallel edges are not allowed");
    }
    max_degree_ = std::max(max_degree_, degree(v));
  }
  edge_degrees_.resize(edges_.size());
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto [u, v] = edges_[static_cast<std::size_t>(e)];
    edge_degrees_[static_cast<std::size_t>(e)] = degree(u) + degree(v) - 2;
    max_edge_degree_ = std::max(max_edge_degree_, edge_degree(e));
  }
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  DEC_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_, "node out of range");
  const auto nb = neighbors(u);
  auto it = std::lower_bound(
      nb.begin(), nb.end(), v,
      [](const Incidence& inc, NodeId target) { return inc.neighbor < target; });
  if (it != nb.end() && it->neighbor == v) return it->edge;
  return kInvalidEdge;
}

}  // namespace dec
