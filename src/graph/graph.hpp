// Immutable undirected graph in CSR form with stable edge identifiers.
//
// Everything in this library runs on dec::Graph: nodes are 0..n-1, edges are
// 0..m-1, and the adjacency of a node enumerates (neighbor, edge id) pairs.
// Edge ids are the identities the edge coloring algorithms color; the "edge
// degree" accessors implement the line-graph degree deg(e) = deg(u)+deg(v)-2
// the paper works with throughout.
//
// Graphs are simple (no self-loops, no parallel edges); GraphBuilder enforces
// this at construction time.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace dec {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr EdgeId kInvalidEdge = -1;

/// Largest usable node count/id bound. Ids are int32 and several call sites
/// form `id + 1` node counts, so the last representable value is reserved.
constexpr NodeId kMaxNodeId = INT32_MAX - 1;

/// One adjacency entry: the neighbor reached and the id of the edge used.
struct Incidence {
  NodeId neighbor;
  EdgeId edge;
};

class Graph {
 public:
  /// Build from an explicit edge list over nodes 0..n-1. The edge list must
  /// be simple; use GraphBuilder for validation and deduplication.
  Graph(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges);

  Graph() = default;

  /// Fast path for edge lists already in canonical form: every pair (u, v)
  /// with u < v, strictly increasing lexicographically (hence unique), all
  /// endpoints in [0, n). This is exactly what GraphBuilder::build() emits
  /// and what the binary CSR format stores, so loaders skip the O(m log m)
  /// sort/dedup and the per-node adjacency sorts — canonical edge order
  /// makes every adjacency come out neighbor-sorted by construction. The
  /// canonical-form preconditions themselves are still verified in one O(m)
  /// pass (DEC_REQUIRE), so a malformed list cannot produce a broken graph.
  /// The result is bit-identical to Graph(n, edges) on the same input.
  static Graph from_sorted_unique(NodeId n,
                                  std::vector<std::pair<NodeId, NodeId>> edges);

  /// Same fast path fed directly from a mapped CSR file: `offsets` are the
  /// n + 1 adjacency offsets (offsets[n] == 2m) and `endpoints` the m
  /// canonical (u, v) pairs flattened in edge-id order. The offsets replace
  /// the degree-counting pass (they are validated against the endpoint
  /// section); the endpoint section is read exactly once, straight out of
  /// the mapping, with no intermediate edge-list copy.
  static Graph from_csr(NodeId n, std::span<const std::uint64_t> offsets,
                        std::span<const std::uint32_t> endpoints);

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  /// Degree of node v.
  int degree(NodeId v) const {
    DEC_REQUIRE(v >= 0 && v < n_, "node out of range");
    return static_cast<int>(offsets_[static_cast<std::size_t>(v) + 1] -
                            offsets_[static_cast<std::size_t>(v)]);
  }

  /// Line-graph degree of edge e: deg(u) + deg(v) - 2. Cached at
  /// construction, so this is a single array load (it sits on the hot path
  /// of every edge-coloring validity sweep).
  int edge_degree(EdgeId e) const {
    DEC_REQUIRE(e >= 0 && e < num_edges(), "edge out of range");
    return edge_degrees_[static_cast<std::size_t>(e)];
  }

  /// Maximum node degree Δ (0 for the empty graph).
  int max_degree() const { return max_degree_; }

  /// Maximum line-graph degree Δ̄ <= 2Δ - 2.
  int max_edge_degree() const { return max_edge_degree_; }

  /// Endpoints of edge e, as stored (first, second).
  std::pair<NodeId, NodeId> endpoints(EdgeId e) const {
    DEC_REQUIRE(e >= 0 && e < num_edges(), "edge out of range");
    return edges_[static_cast<std::size_t>(e)];
  }

  /// The endpoint of e that is not v. Requires v to be an endpoint of e.
  NodeId other_endpoint(EdgeId e, NodeId v) const {
    const auto [a, b] = endpoints(e);
    DEC_REQUIRE(v == a || v == b, "node is not an endpoint of edge");
    return v == a ? b : a;
  }

  /// Adjacency of node v as (neighbor, edge id) pairs, sorted by neighbor.
  std::span<const Incidence> neighbors(NodeId v) const {
    DEC_REQUIRE(v >= 0 && v < n_, "node out of range");
    const auto lo = offsets_[static_cast<std::size_t>(v)];
    const auto hi = offsets_[static_cast<std::size_t>(v) + 1];
    return {adj_.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  /// All edges as endpoint pairs, indexed by edge id.
  const std::vector<std::pair<NodeId, NodeId>>& edge_list() const {
    return edges_;
  }

  /// Edge id between u and v, or kInvalidEdge (binary search, O(log deg)).
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// Heap bytes held by this graph (edge list, CSR offsets, adjacency,
  /// edge-degree cache) — the topology side of the per-node memory budget
  /// (docs/ARCHITECTURE.md "Graph storage & scale").
  std::size_t memory_bytes() const {
    return edges_.capacity() * sizeof(edges_[0]) +
           offsets_.capacity() * sizeof(offsets_[0]) +
           adj_.capacity() * sizeof(adj_[0]) +
           edge_degrees_.capacity() * sizeof(edge_degrees_[0]);
  }

 private:
  /// Shared tail of all constructors: edges_ and offsets_ are final and
  /// validated; fills adj_ (cursor counting sort), degree maxima, and the
  /// edge-degree cache. `adjacency_sorted` says the fill produces
  /// neighbor-sorted adjacencies (true when edges_ is in canonical order),
  /// letting the fast paths skip the per-node sort + parallel-edge check.
  void finish_construction(bool adjacency_sorted);
  NodeId n_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<std::size_t> offsets_;  // n+1 entries
  std::vector<Incidence> adj_;        // 2m entries
  std::vector<int> edge_degrees_;     // m entries, deg(u)+deg(v)-2 per edge
  int max_degree_ = 0;
  int max_edge_degree_ = 0;
};

}  // namespace dec
