#include "graph/line_graph.hpp"

#include <vector>

namespace dec {

Graph line_graph(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  // For each node, all pairs of incident edges are adjacent in L(G). A pair
  // of edges sharing two nodes would be parallel, which Graph forbids, so
  // each L(G)-edge is produced exactly once.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto inc = g.neighbors(v);
    for (std::size_t i = 0; i < inc.size(); ++i) {
      for (std::size_t j = i + 1; j < inc.size(); ++j) {
        NodeId a = inc[i].edge, b = inc[j].edge;
        if (a > b) std::swap(a, b);
        edges.emplace_back(a, b);
      }
    }
  }
  return Graph(g.num_edges(), std::move(edges));
}

}  // namespace dec
