// Edge-induced subgraphs over the original node-id space.
//
// The recursive algorithms repeatedly carve the current uncolored / same-part
// edge set into a subgraph while keeping node ids (so bipartitions and vertex
// colorings carry over) and remembering which original edge each subgraph
// edge is (so colors can be written back).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dec {

struct EdgeSubgraph {
  Graph graph;                  // same node-id space as the parent
  std::vector<EdgeId> members;  // subgraph edge i == parent edge members[i]
};

/// Subgraph of the edges with take[e] == true.
EdgeSubgraph edge_subgraph(const Graph& g, const std::vector<bool>& take);

/// Subgraph of an explicit edge-id list (order preserved).
EdgeSubgraph edge_subgraph(const Graph& g, const std::vector<EdgeId>& edges);

/// Scatter per-subgraph-edge values back into a parent-indexed vector.
template <typename T>
void scatter_to_parent(const EdgeSubgraph& sub, const std::vector<T>& values,
                       std::vector<T>& parent) {
  DEC_REQUIRE(values.size() == sub.members.size(),
              "value vector length must match the subgraph edge count");
  for (std::size_t i = 0; i < sub.members.size(); ++i) {
    parent[static_cast<std::size_t>(sub.members[i])] = values[i];
  }
}

}  // namespace dec
