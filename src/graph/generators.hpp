// Deterministic graph generators for tests, benches, and examples.
//
// Every generator takes an explicit Rng so results are reproducible from a
// seed. Bipartite generators also return the Bipartition so that algorithms
// requiring a 2-colored bipartite input (paper §5–§7) can be exercised
// without running a bipartition check first.
#pragma once

#include <vector>

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dec::gen {

/// d-regular bipartite graph on n_per_side + n_per_side nodes, built as the
/// union of d distinct cyclic-shift perfect matchings. Requires d <= n_per_side.
BipartiteGraph regular_bipartite(NodeId n_per_side, int d);

/// Random bipartite graph: each of the nu * nv candidate edges kept with
/// probability p.
BipartiteGraph random_bipartite(NodeId nu, NodeId nv, double p, Rng& rng);

/// Erdős–Rényi G(n, p).
Graph gnp(NodeId n, double p, Rng& rng);

/// Random d-regular simple graph via the configuration model with restarts.
/// Requires n * d even, d < n.
Graph random_regular(NodeId n, int d, Rng& rng);

/// Chung–Lu power-law graph: expected degree of node i proportional to
/// (i+1)^(-1/(gamma-1)) scaled to average degree avg_deg. gamma > 2.
/// Streaming skip-sampling implementation (Miller–Hagberg): expected
/// O(n + m) work and one edge-list copy, so million-node instances are
/// routine. Same model as power_law_pairwise, different RNG stream.
Graph power_law(NodeId n, double gamma, double avg_deg, Rng& rng);

/// Reference O(n^2) pairwise implementation of the same Chung–Lu model
/// (the pre-scale-axis generator). Kept as the statistical pin for
/// power_law — tests compare edge counts and degree tails at small n —
/// and for seed-stable experiments that predate the streaming generator.
Graph power_law_pairwise(NodeId n, double gamma, double avg_deg, Rng& rng);

/// Zipf-degree graph: n iid degrees sampled from a bounded Zipf(s)
/// distribution on {1..d_max} (rejection-inversion sampling, O(1) expected
/// per draw), sorted into rank order and realized as expected degrees via
/// the same streaming Chung–Lu core. Requires s > 0, 1 <= d_max < n.
Graph zipfian(NodeId n, double s, int d_max, Rng& rng);

/// 2D grid (rows x cols, no wraparound).
Graph grid(NodeId rows, NodeId cols);

/// 2D torus (rows x cols with wraparound). Requires rows, cols >= 3.
Graph torus(NodeId rows, NodeId cols);

/// Hypercube on 2^dim nodes.
Graph hypercube(int dim);

/// Complete graph K_n.
Graph complete(NodeId n);

/// Complete bipartite graph K_{a,b}.
BipartiteGraph complete_bipartite(NodeId a, NodeId b);

/// Path on n nodes.
Graph path(NodeId n);

/// Cycle on n >= 3 nodes.
Graph cycle(NodeId n);

/// Star with `leaves` leaves (center = node 0).
Graph star(NodeId leaves);

/// Uniform random labeled tree on n nodes (Prüfer sequence).
Graph random_tree(NodeId n, Rng& rng);

/// Complete b-ary tree of the given depth (depth 0 = single node).
Graph bary_tree(int branching, int depth);

/// Empty graph on n nodes.
Graph empty(NodeId n);

/// Disjoint union of two graphs (nodes of b shifted by a.num_nodes()).
Graph disjoint_union(const Graph& a, const Graph& b);

/// Validate that a node count computed in 64-bit (grid/torus products,
/// disjoint-union sums) fits the NodeId domain, and narrow it. Every
/// generator that derives ids arithmetically goes through this before any
/// allocation or 32-bit arithmetic — exposed so the guard itself is
/// testable at bounds no real graph can be built at.
NodeId checked_node_count(long long count, const char* context);

}  // namespace dec::gen
