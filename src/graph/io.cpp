#include "graph/io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace dec {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list()) {
    os << u << ' ' << v << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  long long n = 0;
  long long m = 0;
  if (!(is >> n >> m)) throw CheckError("edge list: missing header");
  DEC_REQUIRE(n >= 0 && m >= 0, "edge list: negative header values");
  DEC_REQUIRE(n <= static_cast<long long>(kMaxNodeId),
              "edge list: node count exceeds NodeId range");
  DEC_REQUIRE(m <= static_cast<long long>(INT32_MAX),
              "edge list: edge count exceeds EdgeId range");
  std::vector<std::pair<NodeId, NodeId>> edges;
  // The header's m is untrusted until that many edges have actually been
  // parsed: a corrupt/hostile header (m = 2^31 - 1 on a three-byte stream)
  // must not drive a multi-GB up-front reserve. Cap the initial reserve
  // and let amortized growth track the edges that really arrive.
  constexpr long long kReserveCap = 1 << 16;
  edges.reserve(static_cast<std::size_t>(std::min(m, kReserveCap)));
  for (long long e = 0; e < m; ++e) {
    long long u = 0, v = 0;
    if (!(is >> u >> v)) {
      throw CheckError("edge list: truncated edge section at edge " +
                       std::to_string(e) + " of " + std::to_string(m) +
                       " (line " + std::to_string(e + 2) + ")");
    }
    if (u < 0 || u >= n || v < 0 || v >= n) {
      throw CheckError("edge list: endpoint out of range on line " +
                       std::to_string(e + 2) + ": \"" + std::to_string(u) +
                       " " + std::to_string(v) + "\" with n = " +
                       std::to_string(n));
    }
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return Graph(static_cast<NodeId>(n), std::move(edges));
}

std::string to_dot(const Graph& g, const std::vector<Color>* edge_color) {
  std::ostringstream os;
  os << "graph G {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  " << v << ";\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    os << "  " << u << " -- " << v;
    if (edge_color != nullptr) {
      DEC_REQUIRE(edge_color->size() == static_cast<std::size_t>(g.num_edges()),
                  "edge color vector has wrong length");
      os << " [label=\"" << (*edge_color)[static_cast<std::size_t>(e)] << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dec
