#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace dec {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list()) {
    os << u << ' ' << v << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  NodeId n = 0;
  EdgeId m = 0;
  if (!(is >> n >> m)) throw CheckError("edge list: missing header");
  DEC_REQUIRE(n >= 0 && m >= 0, "edge list: negative header values");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (EdgeId e = 0; e < m; ++e) {
    NodeId u = 0, v = 0;
    if (!(is >> u >> v)) throw CheckError("edge list: truncated edge section");
    edges.emplace_back(u, v);
  }
  return Graph(n, std::move(edges));
}

std::string to_dot(const Graph& g, const std::vector<Color>* edge_color) {
  std::ostringstream os;
  os << "graph G {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  " << v << ";\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    os << "  " << u << " -- " << v;
    if (edge_color != nullptr) {
      DEC_REQUIRE(edge_color->size() == static_cast<std::size_t>(g.num_edges()),
                  "edge color vector has wrong length");
      os << " [label=\"" << (*edge_color)[static_cast<std::size_t>(e)] << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dec
