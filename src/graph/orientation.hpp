// Per-edge orientation state over an undirected Graph (paper §5).
//
// The balanced-orientation algorithm incrementally orients edges and flips
// them during token dropping; x_v ("number of edges oriented towards v") is
// the quantity all of Definition 5.2's inequalities are about, so we maintain
// it incrementally and can re-derive it from scratch for validation.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dec {

class Orientation {
 public:
  explicit Orientation(const Graph& g);

  /// Is edge e oriented yet?
  bool oriented(EdgeId e) const {
    return head_[static_cast<std::size_t>(e)] != kInvalidNode;
  }

  /// Head of edge e (the node it points to). Requires oriented(e).
  NodeId head(EdgeId e) const {
    DEC_REQUIRE(oriented(e), "edge is not oriented");
    return head_[static_cast<std::size_t>(e)];
  }

  /// Tail of edge e. Requires oriented(e).
  NodeId tail(EdgeId e) const;

  /// Orient e towards `to` (must be an endpoint). Requires !oriented(e).
  void orient_towards(EdgeId e, NodeId to);

  /// Reverse the orientation of e. Requires oriented(e).
  void flip(EdgeId e);

  /// x_v: number of incident edges currently oriented towards v.
  int indegree(NodeId v) const {
    DEC_REQUIRE(v >= 0 && v < g_->num_nodes(), "node out of range");
    return indeg_[static_cast<std::size_t>(v)];
  }

  /// Count of edges oriented so far.
  EdgeId num_oriented() const { return num_oriented_; }

  /// Recompute all indegrees from edge state and compare with the cached
  /// values; throws on mismatch. Used by tests and debug audits.
  void validate() const;

  const Graph& graph() const { return *g_; }

 private:
  const Graph* g_;
  std::vector<NodeId> head_;  // kInvalidNode = unoriented
  std::vector<int> indeg_;
  EdgeId num_oriented_ = 0;
};

}  // namespace dec
