// Binary CSR graph files with mmap-backed loading.
//
// The plain-text edge list (graph/io.hpp) tops out around n = 10^4: parsing
// dominates, and the loader re-sorts and re-dedups what the writer already
// ordered. This format is the million-node path: a fixed little-endian
// layout a loader can validate from the header alone, map read-only, and
// hand to Graph::from_csr without ever materializing an intermediate edge
// list or re-running the O(m log m) canonicalization.
//
// File layout (all fields little-endian, every section 8-byte aligned):
//
//   offset  size            field
//   ------  --------------  ---------------------------------------------
//        0  8               magic "DECCSR1\0"
//        8  4               version (currently 1)
//       12  4               flags (reserved, must be 0)
//       16  8               n  (node count, u64)
//       24  8               m  (edge count, u64)
//       32  8               checksum over both payload sections (see
//                           csr_checksum)
//       40  (n + 1) * 8     adjacency offsets, u64: offsets[v] is the CSR
//                           position of node v's first incidence;
//                           offsets[n] == 2m
//   ...     m * 8           packed edge endpoints, u32 pairs (u, v) in
//                           canonical edge-id order: u < v, strictly
//                           increasing lexicographically
//
// Trust model: the header is never believed blindly — n/m are bounded
// against the NodeId/EdgeId domains and the declared section sizes against
// the actual file size before anything is allocated or touched, so a
// corrupt or hostile header cannot trigger a multi-GB allocation or an
// out-of-bounds read. CsrTrust::kVerify (the default) additionally runs the
// checksum over both sections; kTrusted skips only that pass — the O(m)
// structural validation inside Graph::from_csr (canonical order, endpoint
// ranges, offsets vs endpoints) always runs, so even a "trusted" file can
// be rejected, never mis-loaded.
//
// Ownership: CsrMapping owns the mapping (or the read() fallback buffer)
// and must outlive every span it hands out. read_csr() copies into the
// returned Graph before the mapping dies; callers that want zero-copy
// access keep the CsrMapping alive and read the spans directly.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/graph.hpp"

namespace dec {

enum class CsrTrust {
  /// Validate the checksum over both payload sections (default).
  kVerify,
  /// Skip the checksum pass; header bounds and the O(m) structural
  /// validation in Graph::from_csr still apply.
  kTrusted,
};

/// Mixing checksum over the two payload sections plus (n, m). One
/// multiply-xor-shift step per 64-bit word — fast enough to be on by
/// default for multi-hundred-MB files.
std::uint64_t csr_checksum(std::uint64_t n, std::uint64_t m,
                           std::span<const std::uint64_t> offsets,
                           std::span<const std::uint32_t> endpoints);

/// Read-only view of a CSR file: opens, maps (falling back to a plain read
/// into a heap buffer when mmap is unavailable), and validates the header
/// and section bounds. Throws CheckError on any malformation.
class CsrMapping {
 public:
  explicit CsrMapping(const std::string& path);
  ~CsrMapping();

  CsrMapping(const CsrMapping&) = delete;
  CsrMapping& operator=(const CsrMapping&) = delete;

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return m_; }

  /// n + 1 adjacency offsets (validated monotone by Graph::from_csr).
  std::span<const std::uint64_t> offsets() const {
    return {offsets_, static_cast<std::size_t>(n_) + 1};
  }

  /// 2m endpoint words: edge e is (endpoints()[2e], endpoints()[2e + 1]).
  std::span<const std::uint32_t> endpoints() const {
    return {endpoints_, 2 * static_cast<std::size_t>(m_)};
  }

  /// Recompute the payload checksum and compare against the header's;
  /// throws CheckError on mismatch.
  void verify_checksum() const;

  /// Whether the file is mmap'ed (vs the read() fallback buffer).
  bool mapped() const { return mapped_; }

 private:
  NodeId n_ = 0;
  EdgeId m_ = 0;
  std::uint64_t stored_checksum_ = 0;
  const std::uint64_t* offsets_ = nullptr;
  const std::uint32_t* endpoints_ = nullptr;
  void* base_ = nullptr;       // mmap base (when mapped_)
  std::size_t size_ = 0;       // file size in bytes
  char* fallback_ = nullptr;   // heap buffer (when !mapped_)
  bool mapped_ = false;
};

/// Write `g` to `path` in the binary CSR format. Overwrites existing files;
/// throws CheckError on I/O failure.
void write_csr(const std::string& path, const Graph& g);

/// Map `path` and construct the graph through the Graph::from_csr fast
/// path. The loaded graph is bit-identical (edge list, adjacency order,
/// degree caches) to the Graph the file was written from.
Graph read_csr(const std::string& path, CsrTrust trust = CsrTrust::kVerify);

}  // namespace dec
