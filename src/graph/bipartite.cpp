#include "graph/bipartite.hpp"

#include <queue>

namespace dec {

std::optional<Bipartition> try_bipartition(const Graph& g) {
  constexpr std::uint8_t kUnset = 2;
  Bipartition parts;
  parts.side.assign(static_cast<std::size_t>(g.num_nodes()), kUnset);
  std::queue<NodeId> frontier;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (parts.side[static_cast<std::size_t>(root)] != kUnset) continue;
    parts.side[static_cast<std::size_t>(root)] = 0;
    frontier.push(root);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      const std::uint8_t mine = parts.side[static_cast<std::size_t>(v)];
      for (const Incidence& inc : g.neighbors(v)) {
        auto& s = parts.side[static_cast<std::size_t>(inc.neighbor)];
        if (s == kUnset) {
          s = static_cast<std::uint8_t>(1 - mine);
          frontier.push(inc.neighbor);
        } else if (s == mine) {
          return std::nullopt;
        }
      }
    }
  }
  return parts;
}

void validate_bipartition(const Graph& g, const Bipartition& parts) {
  DEC_REQUIRE(parts.side.size() == static_cast<std::size_t>(g.num_nodes()),
              "side vector has wrong length");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DEC_REQUIRE(parts.side[static_cast<std::size_t>(v)] <= 1,
                "side value must be 0 or 1");
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    DEC_REQUIRE(parts.side[static_cast<std::size_t>(u)] !=
                    parts.side[static_cast<std::size_t>(v)],
                "monochromatic edge in claimed bipartition");
  }
}

NodeId u_endpoint(const Graph& g, const Bipartition& parts, EdgeId e) {
  const auto [a, b] = g.endpoints(e);
  return parts.in_u(a) ? a : b;
}

NodeId v_endpoint(const Graph& g, const Bipartition& parts, EdgeId e) {
  const auto [a, b] = g.endpoints(e);
  return parts.in_v(a) ? a : b;
}

}  // namespace dec
