#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "graph/builder.hpp"

namespace dec::gen {

NodeId checked_node_count(long long count, const char* context) {
  DEC_REQUIRE(count >= 0 && count <= static_cast<long long>(kMaxNodeId),
              std::string(context) + ": node count " + std::to_string(count) +
                  " does not fit NodeId");
  return static_cast<NodeId>(count);
}

BipartiteGraph regular_bipartite(NodeId n_per_side, int d) {
  DEC_REQUIRE(n_per_side >= 1, "need at least one node per side");
  DEC_REQUIRE(d >= 0 && d <= n_per_side,
              "regular bipartite requires 0 <= d <= n_per_side");
  GraphBuilder b(2 * n_per_side);
  // Union of d cyclic-shift matchings: U_i -- V_{(i+s) mod n}. Distinct
  // shifts give edge-disjoint perfect matchings, hence an exactly d-regular
  // simple bipartite graph.
  for (int s = 0; s < d; ++s) {
    for (NodeId i = 0; i < n_per_side; ++i) {
      const NodeId u = i;
      const NodeId v = n_per_side + (i + s) % n_per_side;
      b.add_edge(u, v);
    }
  }
  Graph g = std::move(b).build();
  Bipartition parts;
  parts.side.assign(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v = n_per_side; v < g.num_nodes(); ++v) {
    parts.side[static_cast<std::size_t>(v)] = 1;
  }
  return BipartiteGraph{std::move(g), std::move(parts)};
}

BipartiteGraph random_bipartite(NodeId nu, NodeId nv, double p, Rng& rng) {
  DEC_REQUIRE(nu >= 1 && nv >= 1, "need nodes on both sides");
  GraphBuilder b(nu + nv);
  for (NodeId u = 0; u < nu; ++u) {
    for (NodeId v = 0; v < nv; ++v) {
      if (rng.next_bool(p)) b.add_edge(u, nu + v);
    }
  }
  Graph g = std::move(b).build();
  Bipartition parts;
  parts.side.assign(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v = nu; v < g.num_nodes(); ++v) {
    parts.side[static_cast<std::size_t>(v)] = 1;
  }
  return BipartiteGraph{std::move(g), std::move(parts)};
}

Graph gnp(NodeId n, double p, Rng& rng) {
  DEC_REQUIRE(n >= 0, "negative node count");
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.next_bool(p)) b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

Graph random_regular(NodeId n, int d, Rng& rng) {
  DEC_REQUIRE(n >= 1 && d >= 0 && d < n, "need 0 <= d < n");
  DEC_REQUIRE((static_cast<long long>(n) * d) % 2 == 0, "n*d must be even");
  if (d == 0) return empty(n);
  // Configuration model followed by edge-swap repair: whole-graph rejection
  // has vanishing success probability already for moderate d, whereas
  // swapping a violating pair with a uniformly random partner pair fixes
  // defects in O(defects) expected swaps.
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (NodeId v = 0; v < n; ++v) {
    for (int i = 0; i < d; ++i) stubs.push_back(v);
  }
  rng.shuffle(stubs);
  const std::size_t pairs = stubs.size() / 2;
  auto key = [n](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return static_cast<std::int64_t>(a) * n + b;
  };
  auto pair_u = [&](std::size_t i) -> NodeId& { return stubs[2 * i]; };
  auto pair_v = [&](std::size_t i) -> NodeId& { return stubs[2 * i + 1]; };

  std::unordered_map<std::int64_t, int> edge_count;
  for (std::size_t i = 0; i < pairs; ++i) {
    if (pair_u(i) != pair_v(i)) ++edge_count[key(pair_u(i), pair_v(i))];
  }
  auto is_bad = [&](std::size_t i) {
    return pair_u(i) == pair_v(i) ||
           edge_count[key(pair_u(i), pair_v(i))] > 1;
  };

  std::int64_t budget = 200 * static_cast<std::int64_t>(pairs) + 100000;
  for (std::size_t i = 0; i < pairs; ++i) {
    while (is_bad(i)) {
      DEC_CHECK(--budget > 0, "random_regular: swap repair did not converge");
      const std::size_t j = static_cast<std::size_t>(rng.next_below(pairs));
      if (j == i) continue;
      const NodeId a = pair_u(i), b = pair_v(i);
      const NodeId c = pair_u(j), e = pair_v(j);
      // Propose pairs (a, e) and (c, b).
      if (a == e || c == b) continue;
      const std::int64_t k1 = key(a, e), k2 = key(c, b);
      if (edge_count[k1] > 0 || edge_count[k2] > 0 || k1 == k2) continue;
      if (a != b) --edge_count[key(a, b)];
      if (c != e) --edge_count[key(c, e)];
      pair_v(i) = e;
      pair_v(j) = b;
      ++edge_count[k1];
      ++edge_count[k2];
    }
  }

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    NodeId u = pair_u(i), v = pair_v(i);
    if (u > v) std::swap(u, v);
    edges.emplace_back(u, v);
  }
  return Graph(n, std::move(edges));
}

namespace {

/// Rank-weight vector of the Chung–Lu power-law model: w_i proportional to
/// (i+1)^(-1/(gamma-1)), scaled so the weights sum to avg_deg * n. Shared
/// by the streaming and pairwise generators so both sample the same model.
std::vector<double> power_law_weights(NodeId n, double gamma,
                                      double avg_deg) {
  std::vector<double> w(static_cast<std::size_t>(n));
  const double exponent = -1.0 / (gamma - 1.0);
  double total = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i)] =
        std::pow(static_cast<double>(i + 1), exponent);
    total += w[static_cast<std::size_t>(i)];
  }
  const double scale = avg_deg * static_cast<double>(n) / total;
  for (auto& x : w) x *= scale;
  return w;
}

/// Streaming Chung–Lu realization for weights sorted in nonincreasing
/// order (Miller–Hagberg skip sampling): each edge {u, v}, u < v, is
/// present independently with probability min(1, w_u * w_v / wsum). Within
/// a row u the candidate probabilities are nonincreasing in v, so instead
/// of n - u Bernoulli draws the inner loop draws a geometric skip at the
/// current row maximum p and thins the landed candidate by q/p — expected
/// O(n + m) total work. Edges are emitted in canonical order, so the
/// builder's sorted fast path applies (no sort, no dedup, one edge-list
/// copy end to end).
void chung_lu_sorted(GraphBuilder& b, const std::vector<double>& w,
                     double wsum, Rng& rng) {
  const NodeId n = static_cast<NodeId>(w.size());
  DEC_REQUIRE(wsum > 0.0, "Chung-Lu weight sum must be positive");
  for (NodeId u = 0; u + 1 < n; ++u) {
    const double wu = w[static_cast<std::size_t>(u)];
    double p = std::min(1.0, wu * w[static_cast<std::size_t>(u) + 1] / wsum);
    if (p <= 0.0) continue;
    NodeId v = u + 1;
    while (v < n) {
      if (p < 1.0) {
        // Geometric skip to the next candidate at success rate p.
        const double skip =
            std::floor(std::log1p(-rng.next_double()) / std::log1p(-p));
        if (skip >= static_cast<double>(n - v)) break;
        v += static_cast<NodeId>(skip);
      }
      const double q =
          std::min(1.0, wu * w[static_cast<std::size_t>(v)] / wsum);
      if (q <= 0.0) break;
      // The candidate landed at rate p; thin to the true rate q <= p.
      if (rng.next_double() * p < q) b.add_edge(u, v);
      p = q;
      ++v;
    }
  }
}

/// Bounded Zipf(s) sampler on {1..n} by rejection-inversion (Hörmann &
/// Derflinger 1996, the Apache Commons samplers' algorithm): inverts the
/// integral of the continuous envelope x^(-s) and rejects against the
/// discrete histogram. O(1) expected per draw, no tables — usable for
/// d_max in the millions where an inverse-CDF table would not be.
class BoundedZipf {
 public:
  BoundedZipf(long long n, double s) : n_(n), s_(s) {
    h_x1_ = h_integral(1.5) - 1.0;
    h_n_ = h_integral(static_cast<double>(n) + 0.5);
    threshold_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  }

  long long operator()(Rng& rng) const {
    while (true) {
      const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
      const double x = h_integral_inverse(u);
      long long k = static_cast<long long>(x + 0.5);
      if (k < 1) {
        k = 1;
      } else if (k > n_) {
        k = n_;
      }
      if (static_cast<double>(k) - x <= threshold_ ||
          u >= h_integral(static_cast<double>(k) + 0.5) -
                   h(static_cast<double>(k))) {
        return k;
      }
    }
  }

 private:
  double h(double x) const { return std::exp(-s_ * std::log(x)); }

  // H(x) = integral of h: (x^(1-s) - 1) / (1 - s), continued through the
  // s = 1 pole (log x) via expm1/log1p helpers.
  double h_integral(double x) const {
    const double log_x = std::log(x);
    return helper2((1.0 - s_) * log_x) * log_x;
  }

  double h_integral_inverse(double x) const {
    double t = x * (1.0 - s_);
    if (t < -1.0) t = -1.0;  // round-off guard at the lower boundary
    return std::exp(helper1(t) * x);
  }

  static double helper1(double x) {  // log1p(x) / x
    return std::abs(x) > 1e-8 ? std::log1p(x) / x
                              : 1.0 - x * 0.5 + x * x / 3.0;
  }
  static double helper2(double x) {  // expm1(x) / x
    return std::abs(x) > 1e-8 ? std::expm1(x) / x
                              : 1.0 + x * 0.5 + x * x / 6.0;
  }

  long long n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace

Graph power_law(NodeId n, double gamma, double avg_deg, Rng& rng) {
  DEC_REQUIRE(n >= 1, "need at least one node");
  DEC_REQUIRE(gamma > 2.0, "Chung-Lu needs gamma > 2");
  const std::vector<double> w = power_law_weights(n, gamma, avg_deg);
  const double wsum = avg_deg * static_cast<double>(n);
  GraphBuilder b(n);
  b.reserve_edges(static_cast<std::size_t>(wsum / 2.0) +
                  static_cast<std::size_t>(n) / 8 + 16);
  chung_lu_sorted(b, w, wsum, rng);
  return std::move(b).build();
}

Graph power_law_pairwise(NodeId n, double gamma, double avg_deg, Rng& rng) {
  DEC_REQUIRE(n >= 1, "need at least one node");
  DEC_REQUIRE(gamma > 2.0, "Chung-Lu needs gamma > 2");
  const std::vector<double> w = power_law_weights(n, gamma, avg_deg);
  const double wsum = avg_deg * static_cast<double>(n);
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = std::min(
          1.0, w[static_cast<std::size_t>(u)] * w[static_cast<std::size_t>(v)] / wsum);
      if (rng.next_bool(p)) b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

Graph zipfian(NodeId n, double s, int d_max, Rng& rng) {
  DEC_REQUIRE(n >= 2, "need at least two nodes");
  DEC_REQUIRE(s > 0.0, "zipfian needs skew s > 0");
  DEC_REQUIRE(d_max >= 1 && d_max < n, "zipfian needs 1 <= d_max < n");
  const BoundedZipf zipf(d_max, s);
  std::vector<double> w(static_cast<std::size_t>(n));
  double wsum = 0.0;
  for (auto& x : w) {
    x = static_cast<double>(zipf(rng));
    wsum += x;
  }
  // Rank order (nonincreasing) both satisfies the skip-sampler's
  // precondition and gives the conventional heavy-head node labeling.
  std::sort(w.begin(), w.end(), std::greater<double>());
  GraphBuilder b(n);
  b.reserve_edges(static_cast<std::size_t>(wsum / 2.0) + 16);
  chung_lu_sorted(b, w, wsum, rng);
  return std::move(b).build();
}

Graph grid(NodeId rows, NodeId cols) {
  DEC_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  // rows * cols (and r * cols + c below) overflow 32-bit NodeId well before
  // any memory limit — validate the 64-bit product up front, after which
  // every id is < total and 32-bit arithmetic on them is exact.
  const NodeId total = checked_node_count(
      static_cast<long long>(rows) * static_cast<long long>(cols), "grid");
  GraphBuilder b(total);
  b.reserve_edges(2 * static_cast<std::size_t>(total));
  auto id = [cols](NodeId r, NodeId c) {
    return static_cast<NodeId>(static_cast<long long>(r) * cols + c);
  };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  b.ensure_nodes(total);
  return std::move(b).build();
}

Graph torus(NodeId rows, NodeId cols) {
  DEC_REQUIRE(rows >= 3 && cols >= 3, "torus needs rows, cols >= 3");
  const NodeId total = checked_node_count(
      static_cast<long long>(rows) * static_cast<long long>(cols), "torus");
  GraphBuilder b(total);
  b.reserve_edges(2 * static_cast<std::size_t>(total));
  auto id = [cols](NodeId r, NodeId c) {
    return static_cast<NodeId>(static_cast<long long>(r) * cols + c);
  };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return std::move(b).build();
}

Graph hypercube(int dim) {
  DEC_REQUIRE(dim >= 0 && dim <= 24, "hypercube dimension out of range");
  const NodeId n = static_cast<NodeId>(1) << dim;
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (int bit = 0; bit < dim; ++bit) {
      const NodeId u = v ^ (static_cast<NodeId>(1) << bit);
      if (v < u) b.add_edge(v, u);
    }
  }
  b.ensure_nodes(n);
  return std::move(b).build();
}

Graph complete(NodeId n) {
  DEC_REQUIRE(n >= 0, "negative node count");
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  b.ensure_nodes(n);
  return std::move(b).build();
}

BipartiteGraph complete_bipartite(NodeId a, NodeId b_count) {
  DEC_REQUIRE(a >= 1 && b_count >= 1, "need nodes on both sides");
  GraphBuilder b(a + b_count);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b_count; ++v) b.add_edge(u, a + v);
  }
  Graph g = std::move(b).build();
  Bipartition parts;
  parts.side.assign(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v = a; v < g.num_nodes(); ++v) {
    parts.side[static_cast<std::size_t>(v)] = 1;
  }
  return BipartiteGraph{std::move(g), std::move(parts)};
}

Graph path(NodeId n) {
  DEC_REQUIRE(n >= 1, "path needs at least one node");
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.ensure_nodes(n);
  return std::move(b).build();
}

Graph cycle(NodeId n) {
  DEC_REQUIRE(n >= 3, "cycle needs at least three nodes");
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return std::move(b).build();
}

Graph star(NodeId leaves) {
  DEC_REQUIRE(leaves >= 0, "negative leaf count");
  GraphBuilder b(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) b.add_edge(0, v);
  b.ensure_nodes(leaves + 1);
  return std::move(b).build();
}

Graph random_tree(NodeId n, Rng& rng) {
  DEC_REQUIRE(n >= 1, "tree needs at least one node");
  if (n == 1) return empty(1);
  if (n == 2) return path(2);
  // Prüfer decoding gives a uniform labeled tree.
  std::vector<NodeId> prufer(static_cast<std::size_t>(n) - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.next_below(
                             static_cast<std::uint64_t>(n)));
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (NodeId x : prufer) ++deg[static_cast<std::size_t>(x)];
  GraphBuilder b(n);
  // Min-leaf selection via a min-heap of current leaves: O(n log n) total
  // where the old whole-range scan was O(n^2) per tree. A node enters the
  // heap exactly when its degree reaches 1 (at init or after its last
  // Prüfer occurrence is consumed) and degrees only decrease, so the heap
  // top is always the smallest-id live leaf — the same node the scan
  // picked, making the generated trees bit-identical across the change
  // (pinned by Generators.RandomTreeMatchesScanReference).
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>>
      leaves;
  for (NodeId v = 0; v < n; ++v) {
    if (deg[static_cast<std::size_t>(v)] == 1) leaves.push(v);
  }
  for (NodeId x : prufer) {
    DEC_CHECK(!leaves.empty(), "Prüfer decoding ran out of leaves");
    const NodeId leaf = leaves.top();
    leaves.pop();
    DEC_CHECK(deg[static_cast<std::size_t>(leaf)] == 1 &&
                  !used[static_cast<std::size_t>(leaf)],
              "Prüfer leaf heap entry went stale");
    b.add_edge(leaf, x);
    used[static_cast<std::size_t>(leaf)] = true;
    if (--deg[static_cast<std::size_t>(x)] == 1) leaves.push(x);
  }
  NodeId a = kInvalidNode, c = kInvalidNode;
  for (NodeId v = 0; v < n; ++v) {
    if (used[static_cast<std::size_t>(v)] || deg[static_cast<std::size_t>(v)] != 1) continue;
    if (a == kInvalidNode) {
      a = v;
    } else {
      c = v;
    }
  }
  DEC_CHECK(a != kInvalidNode && c != kInvalidNode,
            "Prüfer decoding must end with two leaves");
  b.add_edge(a, c);
  return std::move(b).build();
}

Graph bary_tree(int branching, int depth) {
  DEC_REQUIRE(branching >= 1 && depth >= 0, "invalid b-ary tree parameters");
  GraphBuilder b(1);
  NodeId next = 1;
  std::vector<NodeId> level{0};
  for (int d = 0; d < depth; ++d) {
    std::vector<NodeId> nxt;
    for (NodeId parent : level) {
      for (int c = 0; c < branching; ++c) {
        b.add_edge(parent, next);
        nxt.push_back(next++);
      }
    }
    level = std::move(nxt);
  }
  b.ensure_nodes(next);
  return std::move(b).build();
}

Graph empty(NodeId n) {
  DEC_REQUIRE(n >= 0, "negative node count");
  return Graph(n, {});
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  // The node-count sum (and with it every shifted id u + shift) must fit
  // NodeId before any 32-bit addition happens.
  const NodeId total = checked_node_count(
      static_cast<long long>(a.num_nodes()) + b.num_nodes(),
      "disjoint_union");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(a.edge_list().size() + b.edge_list().size());
  edges.insert(edges.end(), a.edge_list().begin(), a.edge_list().end());
  const NodeId shift = a.num_nodes();
  for (const auto& [u, v] : b.edge_list()) {
    edges.emplace_back(u + shift, v + shift);
  }
  return Graph(total, std::move(edges));
}

}  // namespace dec::gen
