// Line-graph construction.
//
// The paper treats edge coloring of G as vertex coloring of the line graph
// L(G); the explicit construction is used by tests (cross-checking edge-
// degree formulas and running vertex algorithms on L(G) directly) and by the
// Linial-on-edges subroutine validation.
#pragma once

#include "graph/graph.hpp"

namespace dec {

/// L(G): one node per edge of g; two nodes adjacent iff the edges share an
/// endpoint. Node i of the result corresponds to edge id i of g.
Graph line_graph(const Graph& g);

}  // namespace dec
