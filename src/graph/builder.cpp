#include "graph/builder.hpp"

#include <algorithm>

namespace dec {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  DEC_REQUIRE(u >= 0 && v >= 0, "negative node id");
  DEC_REQUIRE(u != v, "self-loops are not allowed");
  if (u > v) std::swap(u, v);
  DEC_REQUIRE(v <= kMaxNodeId, "node id exceeds NodeId range");
  ensure_nodes(v + 1);
  if (sorted_ && !edges_.empty() &&
      !(edges_.back() < std::make_pair(u, v))) {
    sorted_ = false;
  }
  edges_.emplace_back(u, v);
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  const auto target = std::make_pair(u, v);
  if (sorted_) {
    return std::binary_search(edges_.begin(), edges_.end(), target);
  }
  return std::find(edges_.begin(), edges_.end(), target) != edges_.end();
}

Graph GraphBuilder::build() && {
  if (!sorted_) {
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  }
  // The list is now canonical (u < v per pair, strictly increasing), so the
  // fast-path constructor applies: no re-sort, no per-node adjacency sort.
  return Graph::from_sorted_unique(n_, std::move(edges_));
}

}  // namespace dec
