#include "graph/builder.hpp"

#include <algorithm>

namespace dec {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  DEC_REQUIRE(u >= 0 && v >= 0, "negative node id");
  DEC_REQUIRE(u != v, "self-loops are not allowed");
  if (u > v) std::swap(u, v);
  ensure_nodes(v + 1);
  edges_.emplace_back(u, v);
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  return std::find(edges_.begin(), edges_.end(), std::make_pair(u, v)) !=
         edges_.end();
}

Graph GraphBuilder::build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  return Graph(n_, std::move(edges_));
}

}  // namespace dec
