// Plain-text graph I/O.
//
// Format: first line "n m", then m lines "u v". Used by the examples to load
// custom topologies and by tests for round-tripping.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "graph/properties.hpp"

namespace dec {

/// Write "n m\n" followed by one "u v" line per edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parse the write_edge_list format. Throws CheckError on malformed input.
Graph read_edge_list(std::istream& is);

/// Graphviz DOT export; when `edge_color` is non-null (size m), edges are
/// annotated with their color for small-graph visual inspection.
std::string to_dot(const Graph& g, const std::vector<Color>* edge_color = nullptr);

}  // namespace dec
