#include "sim/slab.hpp"

#include <algorithm>

#include "testing/fault_injection.hpp"

namespace dec {

std::int64_t* MessageSlab::allocate(std::size_t n) {
  // Chaos hook: an armed kAllocFail plan throws std::bad_alloc from inside
  // a running round, exercising abort_round on whichever shard spilled.
  DEC_FAULT_POINT("slab.alloc");
  while (chunk_ < chunks_.size() && offset_ + n > chunks_[chunk_].size) {
    ++chunk_;
    offset_ = 0;
  }
  if (chunk_ == chunks_.size()) {
    const std::size_t size = std::max(kChunkFields, n);
    chunks_.push_back(Chunk{std::make_unique<std::int64_t[]>(size), size});
    offset_ = 0;
  }
  std::int64_t* p = chunks_[chunk_].data.get() + offset_;
  offset_ += n;
  used_ += n;
  return p;
}

void MessageSlab::reset() {
  chunk_ = 0;
  offset_ = 0;
  used_ = 0;
}

}  // namespace dec
