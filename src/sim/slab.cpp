#include "sim/slab.hpp"

#include <algorithm>

#include "testing/fault_injection.hpp"
#include "util/check.hpp"

namespace dec {

std::int64_t* MessageSlab::allocate(std::size_t n) {
  // Chaos hook: an armed kAllocFail plan throws std::bad_alloc from inside
  // a running round, exercising abort_round on whichever shard spilled.
  DEC_FAULT_POINT("slab.alloc");
  while (chunk_ < chunks_.size() && offset_ + n > chunks_[chunk_].size) {
    ++chunk_;
    offset_ = 0;
  }
  if (chunk_ == chunks_.size()) {
    const std::size_t size = std::max(kChunkFields, n);
    chunks_.push_back(Chunk{std::make_unique<std::int64_t[]>(size), size});
    offset_ = 0;
  }
  std::int64_t* p = chunks_[chunk_].data.get() + offset_;
  offset_ += n;
  used_ += n;
  return p;
}

std::uint32_t MessageSlab::allocate_index(std::size_t n) {
  DEC_FAULT_POINT("slab.alloc");
  DEC_REQUIRE(n <= kChunkFields,
              "index-addressed slab block wider than one chunk");
  if (chunk_ < chunks_.size() && offset_ + n > kChunkFields) {
    ++chunk_;
    offset_ = 0;
  }
  if (chunk_ == chunks_.size()) {
    chunks_.push_back(
        Chunk{std::make_unique<std::int64_t[]>(kChunkFields), kChunkFields});
    offset_ = 0;
  }
  // Index addressing assumes uniform chunks; a slab that ever served an
  // oversized allocate() chunk cannot serve this path. Cannot happen on a
  // narrow-format network (its slabs see only allocate_index), so this is
  // purely defensive.
  DEC_CHECK(chunks_[chunk_].size == kChunkFields,
            "slab holds non-uniform chunks; index addressing requires an "
            "allocate_index-only slab");
  const std::size_t idx = (chunk_ << kChunkShift) | offset_;
  DEC_CHECK(idx <= 0xffffff,
            "narrow-slot spill arena exhausted: more than 2^24 spilled "
            "fields in one shard's round — declare a wide slot plan for "
            "this protocol or shard the run further");
  offset_ += n;
  used_ += n;
  return static_cast<std::uint32_t>(idx);
}

void MessageSlab::reset() {
  chunk_ = 0;
  offset_ = 0;
  used_ = 0;
}

}  // namespace dec
