#include "sim/pool.hpp"

namespace dec {

namespace {

/// FNV-1a over the shape: node count then endpoint pairs. A hit is verified
/// against the stored edge list, so the hash only has to be selective, not
/// collision-free.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= kPrime;
  }
  return h;
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;

template <class ShapeView>
std::uint64_t shape_fingerprint(NodeId n, const ShapeView& pairs) {
  std::uint64_t h = fnv1a(kFnvBasis, static_cast<std::uint64_t>(n));
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto [a, b] = pairs[i];
    h = fnv1a(h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a))
                  << 32) |
                     static_cast<std::uint64_t>(static_cast<std::uint32_t>(b)));
  }
  return h;
}

/// Shape views over the two graph kinds: pair access without materializing
/// a list (the Digraph stores arcs CSR-side, not as one vector).
struct EdgeListView {
  const std::vector<std::pair<NodeId, NodeId>>& edges;
  std::size_t size() const { return edges.size(); }
  std::pair<NodeId, NodeId> operator[](std::size_t i) const {
    return edges[i];
  }
};

struct ArcListView {
  const Digraph& dg;
  std::size_t size() const {
    return static_cast<std::size_t>(dg.num_arcs());
  }
  std::pair<NodeId, NodeId> operator[](std::size_t i) const {
    return dg.arc(static_cast<EdgeId>(i));
  }
};

template <class ShapeView>
bool shape_equals(const std::vector<std::pair<NodeId, NodeId>>& stored,
                  const ShapeView& shape) {
  if (stored.size() != shape.size()) return false;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    if (stored[i] != shape[i]) return false;
  }
  return true;
}

template <class ShapeView>
std::vector<std::pair<NodeId, NodeId>> materialize(const ShapeView& shape) {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(shape.size());
  for (std::size_t i = 0; i < shape.size(); ++i) out.push_back(shape[i]);
  return out;
}

}  // namespace

NetworkPool::NetworkPool(int num_threads)
    : num_threads_(resolve_num_threads(num_threads)) {}

template <class Topo, class ShapeView, class PlanFn>
std::shared_ptr<const Topo> NetworkPool::find_or_plan(
    std::vector<TopoEntry<Topo>>& cache, NodeId n, const ShapeView& shape,
    PlanFn&& plan) {
  const std::uint64_t fp = shape_fingerprint(n, shape);
  for (const TopoEntry<Topo>& e : cache) {
    if (e.fingerprint == fp && e.n == n && shape_equals(e.shape, shape)) {
      ++hits_;
      return e.topo;
    }
  }
  ++misses_;
  std::shared_ptr<const Topo> topo = plan();
  if (cache.size() >= kMaxCachedTopologies) cache.erase(cache.begin());
  cache.push_back({fp, materialize(shape), n, topo});
  return topo;
}

std::shared_ptr<const NetworkTopology> NetworkPool::topology(const Graph& g) {
  return find_or_plan(net_topos_, g.num_nodes(), EdgeListView{g.edge_list()},
                      [&] { return NetworkTopology::plan(g, num_threads_); });
}

std::shared_ptr<const DiTopology> NetworkPool::topology(const Digraph& dg) {
  return find_or_plan(di_topos_, dg.num_nodes(), ArcListView{dg},
                      [&] { return DiTopology::plan(dg, num_threads_); });
}

template <class Net, class G, class Topo>
NetworkPool::Lease<Net> NetworkPool::acquire(std::vector<Slot<Net>>& slots,
                                             const G& g,
                                             std::shared_ptr<const Topo> topo,
                                             RoundLedger* ledger,
                                             std::string component) {
  std::size_t idle = slots.size();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].busy) continue;
    if (slots[i].net->topology().get() == topo.get()) {
      idle = i;
      break;
    }
    if (idle == slots.size()) idle = i;
  }
  if (idle == slots.size()) {
    slots.push_back({std::make_unique<Net>(g, std::move(topo), ledger,
                                           std::move(component)),
                     true});
    return Lease<Net>(this, idle, slots.back().net.get());
  }
  slots[idle].net->rebind(g, std::move(topo), ledger, std::move(component));
  slots[idle].busy = true;
  return Lease<Net>(this, idle, slots[idle].net.get());
}

NetworkPool::NetworkLease NetworkPool::network(const Graph& g,
                                               RoundLedger* ledger,
                                               std::string component) {
  return acquire(nets_, g, topology(g), ledger, std::move(component));
}

NetworkPool::DiNetworkLease NetworkPool::dinetwork(const Digraph& dg,
                                                   RoundLedger* ledger,
                                                   std::string component) {
  return acquire(dinets_, dg, topology(dg), ledger, std::move(component));
}

}  // namespace dec
