#include "sim/pool.hpp"

#include <type_traits>

namespace dec {

NetworkPool::NetworkPool(int num_threads)
    : owned_(std::make_unique<SharedNetworkPool>(num_threads)),
      owner_(std::this_thread::get_id()) {
  shared_ = owned_.get();
}

NetworkPool::NetworkPool(SharedNetworkPool& shared)
    : shared_(&shared), owner_(std::this_thread::get_id()) {}

NetworkPool::~NetworkPool() {
  for (const auto& slot : nets_) {
    DEC_DASSERT(!slot.busy, "a network lease outlived its pool");
  }
  for (const auto& slot : dinets_) {
    DEC_DASSERT(!slot.busy, "a dinetwork lease outlived its pool");
  }
  if (owned_ != nullptr) return;  // private arena dies with the view
  // Park this view's run states in the shared arena for other tenants.
  for (auto& slot : nets_) shared_->park(std::move(slot.net));
  for (auto& slot : dinets_) shared_->park(std::move(slot.net));
}

template <class Net, class G, class Topo>
NetworkPool::Lease<Net> NetworkPool::acquire(std::vector<Slot<Net>>& slots,
                                             const G& g,
                                             std::shared_ptr<const Topo> topo,
                                             RoundLedger* ledger,
                                             std::string component,
                                             SlotPlan plan) {
  DEC_DASSERT(std::this_thread::get_id() == owner_,
              "a NetworkPool view is confined to its constructing thread");
  // Only idle states of the same format AND plane mode are candidates (both
  // are structural; rebind re-declares the width but can never swap slot
  // planes or plane counts). Among those, prefer the exact plan (O(shards)
  // reset instead of rebind).
  std::size_t idle = slots.size();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].busy) continue;
    if (slots[i].net->slot_format() != plan.format) continue;
    if (slots[i].net->plane_mode() != plan.mode) continue;
    if (slots[i].net->topology().get() == topo.get()) {
      idle = i;
      break;
    }
    if (idle == slots.size()) idle = i;
  }
  if (idle == slots.size()) {
    // Nothing idle in this view: adopt a parked same-format, same-mode run
    // state from the shared arena before constructing fresh.
    std::unique_ptr<Net> adopted;
    if constexpr (std::is_same_v<Net, SyncNetwork>) {
      adopted = shared_->adopt_network(topo.get(), plan.format, plan.mode);
    } else {
      adopted = shared_->adopt_dinetwork(topo.get(), plan.format, plan.mode);
    }
    if (adopted == nullptr) {
      slots.push_back({std::make_unique<Net>(g, std::move(topo), ledger,
                                             std::move(component), plan),
                       true});
      return Lease<Net>(this, idle, slots.back().net.get());
    }
    slots.push_back({std::move(adopted), false});
  }
  slots[idle].net->rebind(g, std::move(topo), ledger, std::move(component),
                          plan);
  slots[idle].busy = true;
  return Lease<Net>(this, idle, slots[idle].net.get());
}

NetworkPool::NetworkLease NetworkPool::network(const Graph& g,
                                               RoundLedger* ledger,
                                               std::string component,
                                               SlotPlan plan) {
  return acquire(nets_, g, topology(g), ledger, std::move(component), plan);
}

NetworkPool::DiNetworkLease NetworkPool::dinetwork(const Digraph& dg,
                                                   RoundLedger* ledger,
                                                   std::string component,
                                                   SlotPlan plan) {
  return acquire(dinets_, dg, topology(dg), ledger, std::move(component),
                 plan);
}

}  // namespace dec
