#include "sim/network.hpp"

#include <utility>

namespace dec {

SyncNetwork::SyncNetwork(const Graph& g, RoundLedger* ledger,
                         std::string component)
    : g_(&g), ledger_(ledger), component_(std::move(component)) {
  offsets_.assign(static_cast<std::size_t>(g.num_nodes()) + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    offsets_[static_cast<std::size_t>(v) + 1] =
        offsets_[static_cast<std::size_t>(v)] + g.neighbors(v).size();
  }
  const std::size_t slots = offsets_.back();
  inbox_.assign(slots, Message{});
  outbox_.assign(slots, Message{});

  // Where does the message written at slot (v, i) arrive? At the slot of the
  // same edge in the neighbor's adjacency. Pair up the two slots per edge.
  peer_slot_.assign(slots, 0);
  std::vector<std::size_t> first_slot_of_edge(
      static_cast<std::size_t>(g.num_edges()), static_cast<std::size_t>(-1));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const std::size_t slot = offsets_[static_cast<std::size_t>(v)] + i;
      auto& first = first_slot_of_edge[static_cast<std::size_t>(nb[i].edge)];
      if (first == static_cast<std::size_t>(-1)) {
        first = slot;
      } else {
        peer_slot_[slot] = first;
        peer_slot_[first] = slot;
      }
    }
  }
}

void SyncNetwork::round(const StepFn& fn) {
  for (auto& m : outbox_) m.clear();
  for (NodeId v = 0; v < g_->num_nodes(); ++v) {
    const std::size_t lo = offsets_[static_cast<std::size_t>(v)];
    const std::size_t deg = offsets_[static_cast<std::size_t>(v) + 1] - lo;
    fn(v, std::span<const Message>(inbox_.data() + lo, deg),
       std::span<Message>(outbox_.data() + lo, deg));
  }
  // Deliver: outbox slot (v,i) -> inbox slot of the peer endpoint.
  for (auto& m : inbox_) m.clear();
  for (std::size_t slot = 0; slot < outbox_.size(); ++slot) {
    audit_.observe(outbox_[slot]);
    if (!outbox_[slot].empty()) {
      inbox_[peer_slot_[slot]] = std::move(outbox_[slot]);
    }
  }
  ++rounds_;
  if (ledger_ != nullptr) ledger_->charge(component_, 1);
}

}  // namespace dec
