#include "sim/network.hpp"

#include <algorithm>
#include <thread>
#include <utility>

namespace dec {

SyncNetwork::SyncNetwork(const Graph& g, RoundLedger* ledger,
                         std::string component, int num_threads)
    : g_(&g), ledger_(ledger), num_threads_(num_threads) {
  if (ledger_ != nullptr) {
    counter_.emplace(ledger_->counter(std::move(component)));
  }
  DEC_REQUIRE(num_threads_ >= 1, "num_threads must be >= 1");
  offsets_.assign(static_cast<std::size_t>(g.num_nodes()) + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    offsets_[static_cast<std::size_t>(v) + 1] =
        offsets_[static_cast<std::size_t>(v)] + g.neighbors(v).size();
  }
  const std::size_t slots = offsets_.back();
  // Slot indices are stored as uint32 (peer permutation, touched lists);
  // int32 edge ids keep 2m below 2^32, but guard against silent wrap if
  // that ever changes.
  DEC_REQUIRE(slots <= static_cast<std::size_t>(UINT32_MAX) - 1,
              "slot plane too large for 32-bit slot indices");
  buf_a_.assign(slots, Message{});
  buf_b_.assign(slots, Message{});
  out_ = buf_a_.data();
  in_ = buf_b_.data();

  // Where does the message written at slot (v, i) arrive? At the slot of the
  // same edge in the neighbor's adjacency. Pair up the two slots per edge.
  peer_slot_.assign(slots, 0);
  std::vector<std::uint32_t> first_slot_of_edge(
      static_cast<std::size_t>(g.num_edges()),
      static_cast<std::uint32_t>(-1));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const std::uint32_t slot =
          static_cast<std::uint32_t>(offsets_[static_cast<std::size_t>(v)] + i);
      auto& first = first_slot_of_edge[static_cast<std::size_t>(nb[i].edge)];
      if (first == static_cast<std::uint32_t>(-1)) {
        first = slot;
      } else {
        peer_slot_[slot] = first;
        peer_slot_[first] = slot;
      }
    }
  }

  // Shard nodes into contiguous ranges balanced by slot count, and bind each
  // buffer's slots in a shard to that shard's per-buffer slab so spills stay
  // thread-local and arena-backed.
  num_threads_ = std::max(1, std::min<int>(num_threads_, g.num_nodes() + 1));
  shards_.resize(static_cast<std::size_t>(num_threads_));
  shard_begin_.assign(static_cast<std::size_t>(num_threads_) + 1,
                      g.num_nodes());
  shard_begin_[0] = 0;
  {
    NodeId v = 0;
    for (int s = 0; s < num_threads_; ++s) {
      shard_begin_[static_cast<std::size_t>(s)] = v;
      const std::size_t target =
          (slots * (static_cast<std::size_t>(s) + 1)) /
          static_cast<std::size_t>(num_threads_);
      while (v < g.num_nodes() &&
             offsets_[static_cast<std::size_t>(v)] < target) {
        ++v;
      }
    }
    shard_begin_.back() = g.num_nodes();
  }
  for (int s = 0; s < num_threads_; ++s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    const std::size_t lo =
        offsets_[static_cast<std::size_t>(shard_begin_[s])];
    const std::size_t hi =
        offsets_[static_cast<std::size_t>(shard_begin_[s + 1])];
    for (std::size_t slot = lo; slot < hi; ++slot) {
      buf_a_[slot].bind_slab(&sh.slab_a);
      buf_b_[slot].bind_slab(&sh.slab_b);
    }
  }
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
}

void SyncNetwork::begin_round() {
  ++epoch_;
  // The buffer about to be written was the inbox two rounds ago; its spill
  // arenas can be rewound now that that round's reads are long done. Stale
  // slot payloads may dangle into the rewound arena, but a stale slot is
  // reset (reset_storage) before first use and never read through an Inbox.
  for (Shard& sh : shards_) {
    (out_is_a_ ? sh.slab_a : sh.slab_b).reset();
  }
}

// A node program threw mid-round (DEC_CHECK is the library's failure mode).
// Undo the partial round so the network stays usable: un-stamp and empty
// every slot written this round (epoch 0 is never a write epoch, so the
// slots read as stale/empty and lazily reset on their next use), drop the
// per-shard audit/touched state, and rewind the epoch. The inbox buffer is
// untouched, so the previous round's delivery is still readable.
void SyncNetwork::abort_round() {
  for (Shard& sh : shards_) {
    for (const std::uint32_t s : sh.touched) {
      out_[s].reset_storage();
      out_[s].set_epoch(0);
    }
    sh.touched.clear();
    sh.audit.reset();
  }
  --epoch_;
}

void SyncNetwork::finish_round() {
  for (Shard& sh : shards_) {
    audit_.merge(sh.audit);
    sh.audit.reset();
    sh.touched.clear();
  }
  // Delivery: the peer permutation is baked into Inbox reads, so handing the
  // written buffer to the readers is a pointer swap.
  std::swap(in_, out_);
  out_is_a_ = !out_is_a_;
  ++rounds_;
  if (counter_.has_value()) counter_->charge(1);
}

ParallelSyncNetwork::ParallelSyncNetwork(const Graph& g, RoundLedger* ledger,
                                         std::string component,
                                         int num_threads)
    : SyncNetwork(g, ledger, std::move(component),
                  num_threads > 0
                      ? num_threads
                      : std::max(1u, std::thread::hardware_concurrency())) {}

}  // namespace dec
