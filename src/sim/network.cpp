#include "sim/network.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>

#include "testing/fault_injection.hpp"

namespace dec {

namespace {

// Shared plan validation for construction and per-lease rebind: the narrow
// plane needs a real declared width (it sizes the spill blocks and the 8-bit
// slot count must hold it); the wide plane accepts 0 (unchecked, the
// historical behavior) or any positive declared bound.
void validate_plan(const SlotPlan& plan) {
  if (plan.format == SlotFormat::kNarrow) {
    DEC_REQUIRE(plan.max_fields >= 1 &&
                    plan.max_fields <=
                        static_cast<int>(NarrowSlot::kMaxFields),
                "narrow slot plan requires declared max_fields in [1, 255]");
  } else {
    DEC_REQUIRE(plan.max_fields >= 0,
                "wide slot plan requires declared max_fields >= 0");
  }
}

}  // namespace

SyncNetwork::SyncNetwork(const Graph& g, RoundLedger* ledger,
                         std::string component, int num_threads, SlotPlan plan)
    : SyncNetwork(g, NetworkTopology::plan(g, num_threads), ledger,
                  std::move(component), plan) {}

SyncNetwork::SyncNetwork(const Graph& g,
                         std::shared_ptr<const NetworkTopology> topo,
                         RoundLedger* ledger, std::string component,
                         SlotPlan plan)
    : g_(&g), topo_(std::move(topo)) {
  DEC_REQUIRE(topo_ != nullptr, "null topology");
  DEC_REQUIRE(topo_->matches(g), "topology does not fit the graph");
  validate_plan(plan);
  format_ = plan.format;
  mode_ = plan.mode;
  declared_fields_ = plan.max_fields;
  bind_ledger(ledger, std::move(component));
  bind_plan();
}

void SyncNetwork::bind_ledger(RoundLedger* ledger, std::string component) {
  component_ = std::move(component);  // retained for error messages
  ledger_ = ledger;
  counter_.reset();
  if (ledger_ != nullptr) {
    counter_.emplace(ledger_->counter(component_));
  }
}

// Fit the run state to topo_: size both buffer planes, size the shard set,
// and bind every slot's spill target to its shard's slab. Reuses existing
// vector capacity — a pooled network that has seen a larger plan allocates
// nothing here. Stale messages keep their old epoch tags (always below any
// future read epoch, so they read as empty) and may hold dangling slab
// pointers; the lazy outbox reset (reset_storage on first touch) drops those
// before any use, exactly as it does across ordinary rounds.
void SyncNetwork::bind_plan() {
  offsets_ = topo_->offsets().data();
  peer_slot_ = topo_->peer_slot().data();
  iota_ = topo_->iota_map().data();
  shard_begin_ = topo_->shard_begin().data();

  // Only the active format's plane pair is sized; the other pair stays at
  // whatever it was (capacity 0 for the life of the run state, since the
  // format never changes). A single-plane state sizes only the `a` plane —
  // that IS the memory win — and in_/out_ both point at it (point_planes).
  const std::size_t slots = topo_->num_slots();
  if (format_ == SlotFormat::kWide) {
    buf_a_.resize(slots);
    if (mode_ == PlaneMode::kDouble) buf_b_.resize(slots);
  } else {
    nbuf_a_.resize(slots);
    if (mode_ == PlaneMode::kDouble) nbuf_b_.resize(slots);
  }
  point_planes();

  const int num_shards = topo_->num_shards();
  if (static_cast<int>(shards_.size()) != num_shards) {
    shards_.resize(static_cast<std::size_t>(num_shards));
  }
  // The thread pool only ever grows: a rebind to a plan with fewer shards
  // (e.g. a tiny per-phase game clamped to n + 1) keeps the existing
  // workers parked and dispatches fewer shard tasks, instead of tearing OS
  // threads down and respawning them on the next large plan — respawn churn
  // is exactly the construction cost the arena exists to amortize.
  if (num_shards > 1 &&
      (pool_ == nullptr || pool_->num_threads() < num_shards)) {
    pool_ = std::make_unique<ThreadPool>(num_shards);
  }
  // Slot -> shard boundaries, used by narrow spill resolution (and cheap to
  // keep around either way).
  shard_slot_begin_.resize(static_cast<std::size_t>(num_shards) + 1);
  for (int s = 0; s <= num_shards; ++s) {
    shard_slot_begin_[static_cast<std::size_t>(s)] =
        offsets_[static_cast<std::size_t>(shard_begin_[s])];
  }
  if (format_ == SlotFormat::kWide) {
    for (int s = 0; s < num_shards; ++s) {
      Shard& sh = shards_[static_cast<std::size_t>(s)];
      const std::size_t lo = shard_slot_begin_[static_cast<std::size_t>(s)];
      const std::size_t hi =
          shard_slot_begin_[static_cast<std::size_t>(s) + 1];
      for (std::size_t slot = lo; slot < hi; ++slot) {
        buf_a_[slot].bind_slab(&sh.slab_a);
        if (mode_ == PlaneMode::kDouble) buf_b_[slot].bind_slab(&sh.slab_b);
      }
    }
  }
  // Narrow slots carry slab indices, not bindings; the outbox hands each
  // write the owning shard's arena directly. (Single-plane wide outboxes
  // re-bind per first touch — see Outbox — so the static binding above is
  // only the even-round direct-addressed case.)
  reset();
}

// Restore the canonical plane orientation: out_ is the `a` plane, parity
// even. In double mode this undoes any odd number of swaps a previous run
// left behind (the planes are symmetric, but the slab-parity bookkeeping is
// not once a single flag tracks both); in single mode both pointers share
// the one plane and the flag simply restarts the parity at even.
void SyncNetwork::point_planes() {
  if (format_ == SlotFormat::kWide) {
    out_ = buf_a_.data();
    in_ = mode_ == PlaneMode::kDouble ? buf_b_.data() : buf_a_.data();
  } else {
    nout_ = nbuf_a_.data();
    nin_ = mode_ == PlaneMode::kDouble ? nbuf_b_.data() : nbuf_a_.data();
  }
  out_is_a_ = true;
}

void SyncNetwork::reset() {
  // One bump strands every tag either plane can carry: the last finished
  // round wrote epoch E (now sitting in the inbox plane), the next round
  // will read epoch E + 1 and write E + 2. Epochs never rewind (see the
  // header), so slots from any earlier run stay unreadable forever.
  ++epoch_;
  rounds_ = 0;
  audit_.reset();
  poisoned_ = false;
  point_planes();  // restart at parity even; pooled runs match fresh ones
  for (Shard& sh : shards_) {
    sh.slab_a.reset();
    sh.slab_b.reset();
    sh.touched.clear();
    sh.audit.reset();
  }
}

void SyncNetwork::reset(RoundLedger* ledger, std::string component) {
  bind_ledger(ledger, std::move(component));
  reset();
}

void SyncNetwork::rebind(const Graph& g,
                         std::shared_ptr<const NetworkTopology> topo,
                         RoundLedger* ledger, std::string component) {
  DEC_REQUIRE(topo != nullptr, "null topology");
  DEC_REQUIRE(topo->matches(g), "topology does not fit the graph");
  g_ = &g;
  bind_ledger(ledger, std::move(component));
  if (topo.get() == topo_.get()) {
    reset();  // same plan: nothing to re-fit
    return;
  }
  topo_ = std::move(topo);
  bind_plan();
}

void SyncNetwork::rebind(const Graph& g,
                         std::shared_ptr<const NetworkTopology> topo,
                         RoundLedger* ledger, std::string component,
                         SlotPlan plan) {
  validate_plan(plan);
  // Format and plane mode are structural — pooled leases filter by both
  // before adopting a parked run state, so a mismatch here is a pool bug,
  // not a user error.
  DEC_REQUIRE(plan.format == format_,
              "rebind cannot change a network's slot format");
  DEC_REQUIRE(plan.mode == mode_,
              "rebind cannot change a network's plane mode");
  declared_fields_ = plan.max_fields;
  rebind(g, std::move(topo), ledger, std::move(component));
}

void SyncNetwork::begin_round() {
  // Cancellation barrier: checked before any round state is touched, so an
  // abort here needs no rollback — the network still sits at its exact
  // post-last-round state. The fault point shares the barrier (throw at
  // round k, inject latency, trip the job's own token mid-phase).
  if (cancel_ != nullptr) cancel_->check();
  DEC_FAULT_POINT_CTX("network.round", cancel_);
  if (poisoned_) {
    DEC_REQUIRE(false,
                "round on a poisoned single-plane network: component '" +
                    component_ + "' aborted round " + std::to_string(rounds_) +
                    " after writing slots, overwriting last round's deliveries "
                    "in place — reset() (or release the lease) before reuse");
  }
  ++epoch_;
  // The buffer about to be written was the inbox two rounds ago; its spill
  // arenas can be rewound now that that round's reads are long done. Stale
  // slot payloads may dangle into the rewound arena, but a stale slot is
  // reset (reset_storage) before first use and never read through an Inbox.
  for (Shard& sh : shards_) {
    (out_is_a_ ? sh.slab_a : sh.slab_b).reset();
  }
}

// A node program threw mid-round (DEC_CHECK is the library's failure mode).
// Undo the partial round so the network stays usable: un-stamp and empty
// every slot written this round (epoch 0 is never a write epoch, so the
// slots read as stale/empty and lazily reset on their next use), drop the
// per-shard audit/touched state, and rewind the epoch. The inbox buffer is
// untouched, so the previous round's delivery is still readable.
void SyncNetwork::abort_round() {
  bool touched_any = false;
  for (Shard& sh : shards_) {
    touched_any = touched_any || !sh.touched.empty();
    if (format_ == SlotFormat::kWide) {
      for (const std::uint32_t s : sh.touched) {
        out_[s].reset_storage();
        out_[s].set_epoch(0);
      }
    } else {
      // Zeroing the header un-stamps the slot (epoch 0 is never a write
      // epoch) and drops count and spill index in one store.
      for (const std::uint32_t s : sh.touched) nout_[s].header_ = 0;
    }
    sh.touched.clear();
    sh.audit.reset();
  }
  --epoch_;
  // On a single plane the slots just un-stamped WERE last round's delivered
  // messages (this round's writes land in place); they are gone, so the
  // "exact post-last-round state" contract is unrecoverable. Poison instead
  // of failing silently: the next begin_round throws until reset(). Aborts
  // that never touched a slot (cancellation and fault points fire at the
  // barrier, before any write) leave the state exact and do not poison.
  if (mode_ == PlaneMode::kSingle && touched_any) poisoned_ = true;
}

void SyncNetwork::finish_round() {
  for (Shard& sh : shards_) {
    audit_.merge(sh.audit);
    sh.audit.reset();
    sh.touched.clear();
  }
  // Delivery: the peer permutation is baked into Inbox reads, so handing the
  // written buffer to the readers is a pointer swap. Both format's pointer
  // pairs swap (the inactive pair is null/null — swapping is free and keeps
  // this path branchless).
  std::swap(in_, out_);
  std::swap(nin_, nout_);
  out_is_a_ = !out_is_a_;
  ++rounds_;
  if (counter_.has_value()) counter_->charge(1);
}

NodeId SyncNetwork::node_of_slot(std::size_t slot) const {
  const auto& offsets = topo_->offsets();
  // First node whose slot range ends past `slot`.
  const auto it =
      std::upper_bound(offsets.begin(), offsets.end(), slot);
  return static_cast<NodeId>((it - offsets.begin()) - 1);
}

void SyncNetwork::throw_width_violation(NodeId v, std::size_t slot,
                                        int declared, int actual) const {
  const std::string msg =
      "message wider than the protocol's declared slot plan: component '" +
      component_ + "' round " + std::to_string(rounds_) + ", node " +
      std::to_string(v) + " slot " + std::to_string(slot) + " reached " +
      std::to_string(actual) + " fields but the lease declared max_fields=" +
      std::to_string(declared) +
      " — raise the declared width (or use a wide slot plan); the substrate "
      "never truncates";
  DEC_CHECK(false, msg);
  std::abort();  // unreachable: DEC_CHECK(false, ...) always throws
}

void SyncNetwork::throw_single_plane_drain() const {
  const std::string msg =
      "drain on a single-plane lease: component '" + component_ +
      "' after round " + std::to_string(rounds_) +
      " — a single plane overwrites last round's deliveries in place, so "
      "drain_fast/drain_as has nothing stable to re-read; pipelined "
      "protocols that re-read deliveries need PlaneMode::kDouble";
  DEC_REQUIRE(false, msg);
  std::abort();  // unreachable: DEC_REQUIRE(false, ...) always throws
}

void SyncNetwork::throw_single_plane_hazard(NodeId v,
                                            std::size_t entry) const {
  const std::string msg =
      "single-plane read-after-write hazard: component '" + component_ +
      "' round " + std::to_string(rounds_) + ", node " + std::to_string(v) +
      " read inbox entry " + std::to_string(entry) +
      " after writing the outbox slot that shares its storage — single-plane "
      "node programs must read every inbox entry they need before writing "
      "the outbox (or use PlaneMode::kDouble)";
  DEC_CHECK(false, msg);
  std::abort();  // unreachable: DEC_CHECK(false, ...) always throws
}

ParallelSyncNetwork::ParallelSyncNetwork(const Graph& g, RoundLedger* ledger,
                                         std::string component,
                                         int num_threads)
    : SyncNetwork(g, ledger, std::move(component),
                  resolve_num_threads(num_threads)) {}

}  // namespace dec
