#include "sim/network.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "testing/fault_injection.hpp"

namespace dec {

SyncNetwork::SyncNetwork(const Graph& g, RoundLedger* ledger,
                         std::string component, int num_threads)
    : SyncNetwork(g, NetworkTopology::plan(g, num_threads), ledger,
                  std::move(component)) {}

SyncNetwork::SyncNetwork(const Graph& g,
                         std::shared_ptr<const NetworkTopology> topo,
                         RoundLedger* ledger, std::string component)
    : g_(&g), topo_(std::move(topo)) {
  DEC_REQUIRE(topo_ != nullptr, "null topology");
  DEC_REQUIRE(topo_->matches(g), "topology does not fit the graph");
  bind_ledger(ledger, std::move(component));
  bind_plan();
}

void SyncNetwork::bind_ledger(RoundLedger* ledger, std::string component) {
  ledger_ = ledger;
  counter_.reset();
  if (ledger_ != nullptr) {
    counter_.emplace(ledger_->counter(std::move(component)));
  }
}

// Fit the run state to topo_: size both buffer planes, size the shard set,
// and bind every slot's spill target to its shard's slab. Reuses existing
// vector capacity — a pooled network that has seen a larger plan allocates
// nothing here. Stale messages keep their old epoch tags (always below any
// future read epoch, so they read as empty) and may hold dangling slab
// pointers; the lazy outbox reset (reset_storage on first touch) drops those
// before any use, exactly as it does across ordinary rounds.
void SyncNetwork::bind_plan() {
  offsets_ = topo_->offsets().data();
  peer_slot_ = topo_->peer_slot().data();
  shard_begin_ = topo_->shard_begin().data();

  const std::size_t slots = topo_->num_slots();
  buf_a_.resize(slots);
  buf_b_.resize(slots);
  out_ = buf_a_.data();
  in_ = buf_b_.data();
  out_is_a_ = true;

  const int num_shards = topo_->num_shards();
  if (static_cast<int>(shards_.size()) != num_shards) {
    shards_.resize(static_cast<std::size_t>(num_shards));
  }
  // The thread pool only ever grows: a rebind to a plan with fewer shards
  // (e.g. a tiny per-phase game clamped to n + 1) keeps the existing
  // workers parked and dispatches fewer shard tasks, instead of tearing OS
  // threads down and respawning them on the next large plan — respawn churn
  // is exactly the construction cost the arena exists to amortize.
  if (num_shards > 1 &&
      (pool_ == nullptr || pool_->num_threads() < num_shards)) {
    pool_ = std::make_unique<ThreadPool>(num_shards);
  }
  for (int s = 0; s < num_shards; ++s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    const std::size_t lo = offsets_[static_cast<std::size_t>(shard_begin_[s])];
    const std::size_t hi =
        offsets_[static_cast<std::size_t>(shard_begin_[s + 1])];
    for (std::size_t slot = lo; slot < hi; ++slot) {
      buf_a_[slot].bind_slab(&sh.slab_a);
      buf_b_[slot].bind_slab(&sh.slab_b);
    }
  }
  reset();
}

void SyncNetwork::reset() {
  // One bump strands every tag either plane can carry: the last finished
  // round wrote epoch E (now sitting in the inbox plane), the next round
  // will read epoch E + 1 and write E + 2. Epochs never rewind (see the
  // header), so slots from any earlier run stay unreadable forever.
  ++epoch_;
  rounds_ = 0;
  audit_.reset();
  for (Shard& sh : shards_) {
    sh.slab_a.reset();
    sh.slab_b.reset();
    sh.touched.clear();
    sh.audit.reset();
  }
}

void SyncNetwork::reset(RoundLedger* ledger, std::string component) {
  bind_ledger(ledger, std::move(component));
  reset();
}

void SyncNetwork::rebind(const Graph& g,
                         std::shared_ptr<const NetworkTopology> topo,
                         RoundLedger* ledger, std::string component) {
  DEC_REQUIRE(topo != nullptr, "null topology");
  DEC_REQUIRE(topo->matches(g), "topology does not fit the graph");
  g_ = &g;
  bind_ledger(ledger, std::move(component));
  if (topo.get() == topo_.get()) {
    reset();  // same plan: nothing to re-fit
    return;
  }
  topo_ = std::move(topo);
  bind_plan();
}

void SyncNetwork::begin_round() {
  // Cancellation barrier: checked before any round state is touched, so an
  // abort here needs no rollback — the network still sits at its exact
  // post-last-round state. The fault point shares the barrier (throw at
  // round k, inject latency, trip the job's own token mid-phase).
  if (cancel_ != nullptr) cancel_->check();
  DEC_FAULT_POINT_CTX("network.round", cancel_);
  ++epoch_;
  // The buffer about to be written was the inbox two rounds ago; its spill
  // arenas can be rewound now that that round's reads are long done. Stale
  // slot payloads may dangle into the rewound arena, but a stale slot is
  // reset (reset_storage) before first use and never read through an Inbox.
  for (Shard& sh : shards_) {
    (out_is_a_ ? sh.slab_a : sh.slab_b).reset();
  }
}

// A node program threw mid-round (DEC_CHECK is the library's failure mode).
// Undo the partial round so the network stays usable: un-stamp and empty
// every slot written this round (epoch 0 is never a write epoch, so the
// slots read as stale/empty and lazily reset on their next use), drop the
// per-shard audit/touched state, and rewind the epoch. The inbox buffer is
// untouched, so the previous round's delivery is still readable.
void SyncNetwork::abort_round() {
  for (Shard& sh : shards_) {
    for (const std::uint32_t s : sh.touched) {
      out_[s].reset_storage();
      out_[s].set_epoch(0);
    }
    sh.touched.clear();
    sh.audit.reset();
  }
  --epoch_;
}

void SyncNetwork::finish_round() {
  for (Shard& sh : shards_) {
    audit_.merge(sh.audit);
    sh.audit.reset();
    sh.touched.clear();
  }
  // Delivery: the peer permutation is baked into Inbox reads, so handing the
  // written buffer to the readers is a pointer swap.
  std::swap(in_, out_);
  out_is_a_ = !out_is_a_;
  ++rounds_;
  if (counter_.has_value()) counter_->charge(1);
}

ParallelSyncNetwork::ParallelSyncNetwork(const Graph& g, RoundLedger* ledger,
                                         std::string component,
                                         int num_threads)
    : SyncNetwork(g, ledger, std::move(component),
                  resolve_num_threads(num_threads)) {}

}  // namespace dec
