// NetworkPool: an arena of topology plans and network run states.
//
// Solvers that build many networks — one per phase game, one per recursion
// level, one per pipeline stage — pay planning (CSR offsets, peer
// permutation, shard partition, lane plan) and run-state allocation (message
// planes, slabs, thread pool) for every single one. The pool amortizes both:
//
//  * Topology cache. plan() results are cached keyed by graph shape (node
//    count, edge/arc count, 64-bit fingerprint of the edge list) and shared
//    by shared_ptr. A fingerprint hit is verified against the full stored
//    edge list before the plan is shared, so a hash collision can never pair
//    a graph with the wrong plan — bit-identity is unconditional. Repeat
//    shapes (e.g. the Linial and defective stages of congest coloring on the
//    same graph, or a solver re-run on the same input) plan exactly once.
//
//  * Run-state arena. network()/dinetwork() lease a SyncNetwork/DiNetwork
//    whose buffers, slabs, scratch, and thread pool are reused across
//    leases: a returning shape degenerates to an O(shards) epoch reset, a
//    new shape to an in-place rebind that reuses storage capacity. The RAII
//    lease returns the run state to the pool on destruction.
//
// A leased network starts indistinguishable from a freshly constructed one
// (epoch-gated slots, cleared rounds/audit/slabs), so pooled runs are
// bit-identical to fresh-network runs — outputs, audited rounds, and ledger
// breakdowns; tests/test_network_pool.cpp pins this for all solvers.
//
// Lifetime rules: a lease must not outlive its pool; the graph passed to
// network()/dinetwork() must outlive the lease (the run state references
// it); the pool itself may outlive every graph it has seen (topologies hold
// no graph pointers). The pool is not thread-safe — one pool per solver
// invocation; the *networks* it hands out still run their own parallel round
// engine with the pool's shard count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/dinetwork.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace dec {

class NetworkPool {
 public:
  /// All leased networks run with `num_threads` shards (0 picks hardware
  /// concurrency, like ParallelSyncNetwork).
  explicit NetworkPool(int num_threads = 1);

  int num_threads() const { return num_threads_; }

  /// Plan-or-fetch the topology for a graph shape.
  std::shared_ptr<const NetworkTopology> topology(const Graph& g);
  std::shared_ptr<const DiTopology> topology(const Digraph& dg);

  /// RAII lease of a pooled run state; releases back to the pool on
  /// destruction. Move-only.
  template <class Net>
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept { *this = std::move(o); }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        index_ = o.index_;
        net_ = o.net_;
        o.pool_ = nullptr;
        o.net_ = nullptr;
      }
      return *this;
    }
    ~Lease() { release(); }

    Net& operator*() const { return *net_; }
    Net* operator->() const { return net_; }
    explicit operator bool() const { return net_ != nullptr; }

   private:
    friend class NetworkPool;
    Lease(NetworkPool* pool, std::size_t index, Net* net)
        : pool_(pool), index_(index), net_(net) {}
    void release() {
      if (pool_ != nullptr && net_ != nullptr) {
        pool_->release_slot(net_, index_);
      }
      pool_ = nullptr;
      net_ = nullptr;
    }

    NetworkPool* pool_ = nullptr;
    std::size_t index_ = 0;
    Net* net_ = nullptr;
  };
  using NetworkLease = Lease<SyncNetwork>;
  using DiNetworkLease = Lease<DiNetwork>;

  /// Lease a run state bound to `g` (topology cached-or-planned), reset and
  /// charging rounds to `ledger` under `component`.
  NetworkLease network(const Graph& g, RoundLedger* ledger = nullptr,
                       std::string component = "network");
  DiNetworkLease dinetwork(const Digraph& dg, RoundLedger* ledger = nullptr,
                           std::string component = "dinetwork");

  // Introspection (tests and stats).
  std::int64_t topology_hits() const { return hits_; }
  std::int64_t topology_misses() const { return misses_; }
  std::size_t cached_topologies() const {
    return net_topos_.size() + di_topos_.size();
  }
  std::size_t run_states() const { return nets_.size() + dinets_.size(); }

 private:
  /// Cached plans above this are evicted FIFO; per-phase game shapes rarely
  /// repeat, so an unbounded cache would grow by one plan per phase.
  static constexpr std::size_t kMaxCachedTopologies = 64;

  /// One cached plan: the shape fingerprint plus the full endpoint-pair
  /// list (edge list / arc list), re-verified on every fingerprint hit.
  template <class Topo>
  struct TopoEntry {
    std::uint64_t fingerprint;
    std::vector<std::pair<NodeId, NodeId>> shape;
    NodeId n;
    std::shared_ptr<const Topo> topo;
  };
  template <class Net>
  struct Slot {
    std::unique_ptr<Net> net;
    bool busy = false;
  };

  /// Shared fingerprint-then-verify cache lookup (defined in pool.cpp; both
  /// instantiations live there). `shape` is a lightweight view (size() +
  /// operator[] yielding endpoint pairs) over the graph's edge list or the
  /// digraph's arcs; it is materialized into the cache only on a miss — the
  /// hit path (the common case) allocates nothing.
  template <class Topo, class ShapeView, class PlanFn>
  std::shared_ptr<const Topo> find_or_plan(std::vector<TopoEntry<Topo>>& cache,
                                           NodeId n, const ShapeView& shape,
                                           PlanFn&& plan);

  /// Shared lease selection: prefer an idle run state on this exact plan
  /// (O(shards) reset), else any idle one (in-place rebind), else grow.
  template <class Net, class G, class Topo>
  Lease<Net> acquire(std::vector<Slot<Net>>& slots, const G& g,
                     std::shared_ptr<const Topo> topo, RoundLedger* ledger,
                     std::string component);

  void release_slot(SyncNetwork*, std::size_t index) {
    nets_[index].busy = false;
  }
  void release_slot(DiNetwork*, std::size_t index) {
    dinets_[index].busy = false;
  }

  int num_threads_;
  std::vector<TopoEntry<NetworkTopology>> net_topos_;
  std::vector<TopoEntry<DiTopology>> di_topos_;
  std::vector<Slot<SyncNetwork>> nets_;
  std::vector<Slot<DiNetwork>> dinets_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

/// Lease-or-construct: solvers take an optional NetworkPool* and fall back
/// to a locally owned network when none is given (identical behavior either
/// way — pooling is a pure reuse optimization). num_threads follows the
/// library-wide 0-means-hardware convention (resolved here, so solver entry
/// points need not). A supplied pool must carry the same resolved shard
/// count the solver was asked for: leased networks run with the pool's
/// count, and silently overriding an explicit num_threads would break the
/// solvers' documented engine contract, so a mismatch is an error instead.
class ScopedNetwork {
 public:
  ScopedNetwork(NetworkPool* pool, const Graph& g, RoundLedger* ledger,
                std::string component, int num_threads) {
    num_threads = resolve_num_threads(num_threads);
    if (pool != nullptr) {
      DEC_REQUIRE(pool->num_threads() == num_threads,
                  "pool shard count must match the solver's num_threads");
      lease_ = pool->network(g, ledger, std::move(component));
    } else {
      local_.emplace(g, ledger, std::move(component), num_threads);
    }
  }
  SyncNetwork& operator*() { return lease_ ? *lease_ : *local_; }
  SyncNetwork* operator->() { return &**this; }

 private:
  NetworkPool::NetworkLease lease_;
  std::optional<SyncNetwork> local_;
};

class ScopedDiNetwork {
 public:
  ScopedDiNetwork(NetworkPool* pool, const Digraph& dg, RoundLedger* ledger,
                  std::string component, int num_threads) {
    num_threads = resolve_num_threads(num_threads);
    if (pool != nullptr) {
      DEC_REQUIRE(pool->num_threads() == num_threads,
                  "pool shard count must match the solver's num_threads");
      lease_ = pool->dinetwork(dg, ledger, std::move(component));
    } else {
      local_.emplace(dg, ledger, std::move(component), num_threads);
    }
  }
  DiNetwork& operator*() { return lease_ ? *lease_ : *local_; }
  DiNetwork* operator->() { return &**this; }

 private:
  NetworkPool::DiNetworkLease lease_;
  std::optional<DiNetwork> local_;
};

}  // namespace dec
