// NetworkPool: a thread-confined view of a shared arena of topology plans
// and network run states.
//
// Solvers that build many networks — one per phase game, one per recursion
// level, one per pipeline stage — pay planning (CSR offsets, peer
// permutation, shard partition, lane plan) and run-state allocation (message
// planes, slabs, thread pool) for every single one. The arena amortizes
// both; since PR 5 the arena itself is SharedNetworkPool
// (sim/shared_pool.hpp), a concurrent, multi-tenant store, and NetworkPool
// is the thin single-threaded view solvers hold on it:
//
//  * Topology cache (shared, thread-safe). topology() forwards to the shared
//    pool's fingerprint-sharded cache: repeat shapes — across phases of one
//    solver or across concurrent tenants — plan exactly once and share the
//    plan by shared_ptr. Fingerprint hits are verified against the full
//    stored edge list, so bit-identity is unconditional.
//
//  * Run-state arena (view-local, thread-confined). network()/dinetwork()
//    lease a SyncNetwork/DiNetwork whose buffers, slabs, scratch, and thread
//    pool are reused across leases: a returning shape degenerates to an
//    O(shards) epoch reset, a new shape to an in-place rebind. Run states
//    acquired by this view stay with it for its lifetime (no per-lease
//    locking); on destruction they park in the shared pool for other
//    tenants to adopt.
//
// A leased network starts indistinguishable from a freshly constructed one
// (epoch-gated slots, cleared rounds/audit/slabs), so pooled runs are
// bit-identical to fresh-network runs — outputs, audited rounds, and ledger
// breakdowns; tests/test_network_pool.cpp pins this for all solvers.
//
// Thread-safety and lifetime rules (debug-asserted, see DEC_DASSERT):
//  * A NetworkPool view is confined to the thread that constructed it:
//    network()/dinetwork() must be called there, and every lease must be
//    released on that same thread. Concurrent tenants each hold their own
//    view over one SharedNetworkPool (the SolverService does exactly this,
//    one view per worker).
//  * A lease must not outlive its pool — the pool's destructor aborts if a
//    lease is still outstanding. The graph passed to network()/dinetwork()
//    must outlive the lease (the run state references it); the pool itself
//    may outlive every graph it has seen (topologies hold no graph
//    pointers).
//  * The networks a view hands out still run their own parallel round
//    engine with the pool's shard count; that internal sharding is invisible
//    to the confinement rules above.
//
// NetworkPool(int) keeps the historical single-threaded behavior: the view
// privately owns its SharedNetworkPool, so existing solver signatures (an
// optional NetworkPool*) work unchanged.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/dinetwork.hpp"
#include "sim/network.hpp"
#include "sim/shared_pool.hpp"
#include "sim/topology.hpp"

namespace dec {

class NetworkPool {
 public:
  /// Stand-alone view: privately owns a SharedNetworkPool. All leased
  /// networks run with `num_threads` shards (0 picks hardware concurrency,
  /// like ParallelSyncNetwork).
  explicit NetworkPool(int num_threads = 1);

  /// Tenant view over a shared arena: topology plans and parked run states
  /// are shared with every other view of `shared`; leases and the view
  /// itself stay confined to the constructing thread. The view leases
  /// networks with the shared pool's shard count and must not outlive
  /// `shared` (it parks its run states there on destruction).
  explicit NetworkPool(SharedNetworkPool& shared);

  ~NetworkPool();

  NetworkPool(const NetworkPool&) = delete;
  NetworkPool& operator=(const NetworkPool&) = delete;

  int num_threads() const { return shared_->num_threads(); }

  /// The arena this view is over (its own when constructed with a thread
  /// count).
  SharedNetworkPool& shared() { return *shared_; }

  /// Plan-or-fetch the topology for a graph shape (thread-safe, forwarded
  /// to the shared arena).
  std::shared_ptr<const NetworkTopology> topology(const Graph& g) {
    return shared_->topology(g);
  }
  std::shared_ptr<const DiTopology> topology(const Digraph& dg) {
    return shared_->topology(dg);
  }

  /// RAII lease of a pooled run state; releases back to the view on
  /// destruction. Move-only. Must be released on the thread that acquired
  /// it (debug-asserted) — move a view, not a lease, across threads.
  template <class Net>
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept { *this = std::move(o); }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        index_ = o.index_;
        net_ = o.net_;
        owner_ = o.owner_;
        o.pool_ = nullptr;
        o.net_ = nullptr;
      }
      return *this;
    }
    ~Lease() { release(); }

    Net& operator*() const { return *net_; }
    Net* operator->() const { return net_; }
    explicit operator bool() const { return net_ != nullptr; }

   private:
    friend class NetworkPool;
    Lease(NetworkPool* pool, std::size_t index, Net* net)
        : pool_(pool),
          index_(index),
          net_(net),
          owner_(std::this_thread::get_id()) {}
    void release() {
      if (pool_ != nullptr && net_ != nullptr) {
        DEC_DASSERT(std::this_thread::get_id() == owner_,
                    "a pool lease must be released on the thread that "
                    "acquired it");
        pool_->release_slot(net_, index_);
      }
      pool_ = nullptr;
      net_ = nullptr;
    }

    NetworkPool* pool_ = nullptr;
    std::size_t index_ = 0;
    Net* net_ = nullptr;
    std::thread::id owner_;
  };
  using NetworkLease = Lease<SyncNetwork>;
  using DiNetworkLease = Lease<DiNetwork>;

  /// Lease a run state bound to `g` (topology cached-or-planned), reset and
  /// charging rounds to `ledger` under `component`. `plan` is the lease's
  /// slot plan (per-arc for dinetwork, see DiNetwork): the format is part of
  /// the run-state identity — only same-format idle/parked states are
  /// reused; a format miss constructs fresh — while the declared width is
  /// re-bound per lease.
  NetworkLease network(const Graph& g, RoundLedger* ledger = nullptr,
                       std::string component = "network", SlotPlan plan = {});
  DiNetworkLease dinetwork(const Digraph& dg, RoundLedger* ledger = nullptr,
                           std::string component = "dinetwork",
                           SlotPlan plan = {});

  // Introspection (tests and stats). Topology counts are the shared
  // arena's (global across tenant views); run_states() counts this view's.
  std::int64_t topology_hits() const { return shared_->topology_hits(); }
  std::int64_t topology_misses() const { return shared_->topology_misses(); }
  std::size_t cached_topologies() const {
    return shared_->cached_topologies();
  }
  std::size_t run_states() const { return nets_.size() + dinets_.size(); }

 private:
  template <class Net>
  struct Slot {
    std::unique_ptr<Net> net;
    bool busy = false;
  };

  /// Shared lease selection: prefer an idle run state on this exact plan
  /// (O(shards) reset), else any idle one (in-place rebind), else adopt a
  /// parked state from the shared arena, else grow.
  template <class Net, class G, class Topo>
  Lease<Net> acquire(std::vector<Slot<Net>>& slots, const G& g,
                     std::shared_ptr<const Topo> topo, RoundLedger* ledger,
                     std::string component, SlotPlan plan);

  // Releasing clears any installed cancel token: the token belongs to the
  // job that leased the state and may die with it, while the run state
  // lives on in the arena.
  void release_slot(SyncNetwork* net, std::size_t index) {
    net->set_cancel(nullptr);
    nets_[index].busy = false;
  }
  void release_slot(DiNetwork* net, std::size_t index) {
    net->set_cancel(nullptr);
    dinets_[index].busy = false;
  }

  SharedNetworkPool* shared_;
  std::unique_ptr<SharedNetworkPool> owned_;  // set by NetworkPool(int)
  std::thread::id owner_;                     // constructing thread
  std::vector<Slot<SyncNetwork>> nets_;
  std::vector<Slot<DiNetwork>> dinets_;
};

/// Lease-or-construct: solvers take an optional NetworkPool* and fall back
/// to a locally owned network when none is given (identical behavior either
/// way — pooling is a pure reuse optimization). num_threads follows the
/// library-wide 0-means-hardware convention (resolved here, so solver entry
/// points need not). A supplied pool must carry the same resolved shard
/// count the solver was asked for: leased networks run with the pool's
/// count, and silently overriding an explicit num_threads would break the
/// solvers' documented engine contract, so a mismatch is an error instead.
class ScopedNetwork {
 public:
  /// `cancel` (optional) is installed on the scoped network for the
  /// lifetime of the scope — the round barrier the solvers' cooperative
  /// cancellation hangs off (SyncNetwork::set_cancel). Lease release clears
  /// it, so a pooled run state never outlives the token it watched.
  ScopedNetwork(NetworkPool* pool, const Graph& g, RoundLedger* ledger,
                std::string component, int num_threads,
                CancelToken* cancel = nullptr, SlotPlan plan = {}) {
    num_threads = resolve_num_threads(num_threads);
    if (pool != nullptr) {
      DEC_REQUIRE(pool->num_threads() == num_threads,
                  "pool shard count must match the solver's num_threads");
      lease_ = pool->network(g, ledger, std::move(component), plan);
    } else {
      local_.emplace(g, ledger, std::move(component), num_threads, plan);
    }
    (*this)->set_cancel(cancel);
  }
  SyncNetwork& operator*() { return lease_ ? *lease_ : *local_; }
  SyncNetwork* operator->() { return &**this; }

 private:
  NetworkPool::NetworkLease lease_;
  std::optional<SyncNetwork> local_;
};

class ScopedDiNetwork {
 public:
  ScopedDiNetwork(NetworkPool* pool, const Digraph& dg, RoundLedger* ledger,
                  std::string component, int num_threads,
                  CancelToken* cancel = nullptr, SlotPlan arc_plan = {}) {
    num_threads = resolve_num_threads(num_threads);
    if (pool != nullptr) {
      DEC_REQUIRE(pool->num_threads() == num_threads,
                  "pool shard count must match the solver's num_threads");
      lease_ = pool->dinetwork(dg, ledger, std::move(component), arc_plan);
    } else {
      local_.emplace(dg, ledger, std::move(component), num_threads, arc_plan);
    }
    (*this)->set_cancel(cancel);
  }
  DiNetwork& operator*() { return lease_ ? *lease_ : *local_; }
  DiNetwork* operator->() { return &**this; }

 private:
  NetworkPool::DiNetworkLease lease_;
  std::optional<DiNetwork> local_;
};

}  // namespace dec
