// Which execution engine an orchestrated solver runs on.
//
// PR 1 rebuilt the simulation substrate; solvers have been ported onto it as
// genuine node programs (SyncNetwork::round_fast / DiNetwork) with per-round
// CongestAudit charges. The original centralized implementations — which
// simulate rounds by incrementing counters — are kept behind kLegacy for one
// PR so the cross-engine equivalence harness can prove the ports bit-exact
// (identical outputs AND identical audited round counts). Once that evidence
// is in, kLegacy implementations can be deleted.
#pragma once

namespace dec {

enum class SolverEngine {
  kLegacy,          // centralized loops, rounds asserted via `res.rounds += k`
  kMessagePassing,  // node programs on SyncNetwork/DiNetwork, rounds measured
};

}  // namespace dec
