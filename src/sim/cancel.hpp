// Cooperative cancellation and deadlines for the round substrate.
//
// A CancelToken is shared between a controller (the SolverService's
// cancel()/watchdog, a test, any caller) and a running solver. The solver
// side never polls explicitly: SyncNetwork checks the token once per round,
// at the top of begin_round(), before any round state is touched — so an
// abort always observes the network in its exact post-last-round state (the
// previous round's delivery is still readable, rounds_executed() is the
// count of *finished* rounds, and a pooled lease resets as cheaply as after
// a normal run). DiNetwork and ParallelSyncNetwork inherit the same barrier
// through the shared SyncNetwork round loop.
//
// Cost discipline: with no token installed the per-round cost is one
// null-pointer test; with a token installed but nothing armed it is one
// relaxed atomic load plus two predictable branches (pinned by
// BM_NetworkRound / BM_NetworkRoundCancelToken). Nothing is checked per
// slot or per node.
//
// Three trip conditions, checked in this order:
//  * request_cancel() — the controller's explicit flag (thread-safe, sticky;
//    the first reason to land wins).
//  * a wall-clock deadline (steady clock) — checked lazily at the barrier,
//    so expiry is detected within one round of work. The service watchdog
//    additionally flips overdue tokens from outside for jobs sleeping
//    between barriers.
//  * a round budget — a deterministic deadline counted in barrier checks
//    instead of nanoseconds. Tests use it to abort a solver at an exact
//    phase without wall-clock flakiness; it reports as kDeadlineExceeded.
//
// Configuration (set_deadline / set_round_budget) must happen before the
// token is shared with a running solver; only request_cancel() and check()
// are thread-safe afterwards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>

namespace dec {

/// Why a run was aborted. Mapped to SolverStatus by the service layer.
enum class AbortReason : int {
  kCancelled = 1,         // request_cancel()
  kDeadlineExceeded = 2,  // wall-clock deadline or round budget exhausted
};

/// Thrown from the round barrier when a CancelToken has tripped. Solvers do
/// not catch it (leases unwind and park clean run states); the service maps
/// it to a structured SolverStatus instead of exposing the exception.
class SolverAborted : public std::exception {
 public:
  explicit SolverAborted(AbortReason reason) : reason_(reason) {}
  AbortReason reason() const { return reason_; }
  const char* what() const noexcept override {
    return reason_ == AbortReason::kCancelled
               ? "solver aborted: cancelled"
               : "solver aborted: deadline exceeded";
  }

 private:
  AbortReason reason_;
};

class CancelToken {
 public:
  CancelToken() = default;
  // Shared by pointer between controller and solver; never copied.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token (thread-safe, idempotent: the first reason sticks).
  void request_cancel(AbortReason reason = AbortReason::kCancelled) {
    int expected = 0;
    state_.compare_exchange_strong(expected, static_cast<int>(reason),
                                   std::memory_order_relaxed);
  }

  /// Abort once the steady clock passes `deadline`. Configure before
  /// sharing the token with a running solver.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Deterministic deadline: abort on the (budget + 1)-th barrier check.
  /// A budget of r lets exactly r rounds run to completion.
  void set_round_budget(std::int64_t budget) {
    budget_.store(budget, std::memory_order_relaxed);
    has_budget_ = true;
  }

  /// True once tripped (explicitly or by a check() that saw an expired
  /// deadline/budget).
  bool aborted() const {
    return state_.load(std::memory_order_relaxed) != 0;
  }

  /// The reason recorded by the trip; meaningless unless aborted().
  AbortReason reason() const {
    return static_cast<AbortReason>(state_.load(std::memory_order_relaxed));
  }

  /// The round barrier: throw SolverAborted iff tripped, consuming one unit
  /// of round budget and latching an expired wall-clock deadline. The
  /// armed-but-idle fast path is one relaxed load and two never-taken
  /// branches.
  void check() {
    int s = state_.load(std::memory_order_relaxed);
    if (s == 0) {
      if (has_budget_ &&
          budget_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
        request_cancel(AbortReason::kDeadlineExceeded);
        s = state_.load(std::memory_order_relaxed);
      } else if (has_deadline_ &&
                 std::chrono::steady_clock::now() >= deadline_) {
        request_cancel(AbortReason::kDeadlineExceeded);
        s = state_.load(std::memory_order_relaxed);
      }
    }
    if (s != 0) throw SolverAborted(static_cast<AbortReason>(s));
  }

 private:
  // 0 = live; otherwise the AbortReason that tripped first.
  std::atomic<int> state_{0};
  std::atomic<std::int64_t> budget_{0};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool has_budget_ = false;
};

}  // namespace dec
