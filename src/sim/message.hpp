// Messages exchanged over SyncNetwork, with semantic bit accounting.
//
// CONGEST requires O(log n)-bit messages. We measure the information content
// of every message as the sum of the minimal two's-complement widths of its
// integer fields; the per-round maximum feeds the CongestAudit so that
// Theorem 1.2's bandwidth claim can be checked empirically (EXP-J).
//
// Storage model: a Message keeps up to kInlineFields fields inline (no heap
// traffic — every message in the paper's algorithms is 1-2 fields). Wider
// payloads spill: into the bound MessageSlab arena when the message is a
// SyncNetwork slot (bind_slab), or onto the heap for standalone messages.
// Slot messages additionally carry an epoch tag, stamped by the network, so
// that slot validity is a tag comparison instead of a per-round clear sweep.
#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <span>

#include "sim/slab.hpp"
#include "util/check.hpp"

namespace dec {

class Message {
 public:
  /// Fields stored without any spill; sized so the paper's algorithms (which
  /// send 1-2 fields) never leave inline storage.
  static constexpr std::size_t kInlineFields = 4;

  Message() = default;
  Message(std::initializer_list<std::int64_t> init) { assign(init); }

  Message(const Message& o) { copy_payload_from(o); }

  /// Copy assignment copies the payload only. The destination keeps its own
  /// slab binding and epoch tag — this is what lets user code write
  /// `outbox[i] = Message{...}` without detaching the slot from the network's
  /// arena or un-stamping the slot validity tag.
  Message& operator=(const Message& o) {
    if (this != &o) copy_payload_from(o);
    return *this;
  }

  ~Message() { release_heap(); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Drop all fields. Keeps current storage (and slab binding), so repeated
  /// clear/push cycles on a spilled message do not reallocate.
  void clear() { size_ = 0; }

  void push(std::int64_t v) {
    if (size_ == cap_) grow(size_ + 1);
    data()[size_++] = v;
  }

  /// Replace the payload wholesale (clear + push each).
  void assign(std::initializer_list<std::int64_t> init) {
    size_ = 0;
    if (init.size() > cap_) grow(init.size());
    std::int64_t* d = data();
    for (const std::int64_t v : init) d[size_++] = v;
  }

  std::int64_t at(std::size_t i) const {
    DEC_REQUIRE(i < size_, "message field index out of range");
    return data()[i];
  }

  std::span<const std::int64_t> fields() const { return {data(), size_}; }

  // ---- substrate hooks (used by SyncNetwork; harmless elsewhere) ----

  /// True when the payload lives outside the inline buffer (tests/stats).
  bool spilled() const { return ext_ != nullptr; }

  /// Future spills of this message go to `slab` instead of the heap. The
  /// binding survives clear()/assignment; the caller owns slab lifetime.
  void bind_slab(MessageSlab* slab) { slab_ = slab; }

  /// Forget any spill storage and return to the inline buffer, empty. Heap
  /// spills are freed; slab spills are simply dropped (the arena reclaims
  /// them in bulk at its next reset). Used by the network's lazy slot clear,
  /// which must not touch storage that a slab reset already invalidated.
  void reset_storage() {
    release_heap();
    ext_ = nullptr;
    cap_ = kInlineFields;
    size_ = 0;
  }

  /// Slot-validity tag, owned by SyncNetwork: a slot's payload is live only
  /// when its epoch matches the network's current round epoch.
  std::uint32_t epoch() const { return epoch_; }
  void set_epoch(std::uint32_t e) { epoch_ = e; }

 private:
  const std::int64_t* data() const { return ext_ != nullptr ? ext_ : inline_; }
  std::int64_t* data() { return ext_ != nullptr ? ext_ : inline_; }

  void copy_payload_from(const Message& o) {
    size_ = 0;
    if (o.size_ > cap_) grow(o.size_);
    std::int64_t* d = data();
    const std::int64_t* s = o.data();
    for (std::uint32_t i = 0; i < o.size_; ++i) d[i] = s[i];
    size_ = o.size_;
  }

  void grow(std::size_t needed);
  void release_heap();

  std::int64_t inline_[kInlineFields];
  std::int64_t* ext_ = nullptr;   // spill storage (slab block or owned heap)
  MessageSlab* slab_ = nullptr;   // spill target; null -> heap
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInlineFields;
  std::uint32_t epoch_ = 0;
  bool owns_ext_ = false;  // ext_ is heap-owned (delete[] on release)
};

/// Canonical empty message, returned for inbox slots whose epoch tag is
/// stale (i.e. nothing was sent on that edge this round).
inline const Message kEmptyMessage{};

/// Slot format of a SyncNetwork's message planes. The format is structural:
/// chosen at construction, immutable for the life of the run state, and part
/// of the pool's park/adopt identity (a narrow run state is never adopted
/// for a wide lease or vice versa — see sim/shared_pool.hpp).
enum class SlotFormat : std::uint8_t {
  kWide,    // 64 B SBO Message slots (the general default)
  kNarrow,  // 16 B NarrowSlot: one inline int64, slab-indexed overflow
};

/// Plane mode of a SyncNetwork's message storage. Like SlotFormat it is
/// structural: chosen at construction, immutable for the life of the run
/// state, and part of the pool's park/adopt identity. kDouble keeps the
/// classic swapped inbox/outbox plane pair. kSingle allocates ONE plane per
/// slot format and delivers by alternating slot ownership with round parity
/// (docs/ARCHITECTURE.md "Plane modes"): in even rounds every node reads and
/// writes its own CSR slots, in odd rounds it reads and writes the peer
/// slots through the precomputed permutation, so each slot has exactly one
/// accessing node per round and last round's write is exactly where this
/// round's read looks. Drain (`drain_fast`/`drain_as`) re-reads delivered
/// messages after the round and is therefore impossible on a single plane —
/// it throws. Only drain-free protocols may opt in.
enum class PlaneMode : std::uint8_t {
  kDouble,  // two planes, swap at the barrier (the general default)
  kSingle,  // one plane, parity-alternating slot ownership; drain banned
};

/// Per-lease slot plan: the plane format plus the protocol's declared
/// maximum per-message field count. Narrow planes require max_fields in
/// [1, 255] (it sizes the slab spill blocks); wide planes accept 0
/// (unchecked, today's behavior) or a positive declared bound. Exceeding a
/// declared bound throws — the substrate never truncates a message.
struct SlotPlan {
  SlotFormat format = SlotFormat::kWide;
  int max_fields = 0;
  PlaneMode mode = PlaneMode::kDouble;
};

/// Compact 16 B slot for single-field protocols (docs/ARCHITECTURE.md "Slot
/// formats"). One int64 payload lives inline; the header word packs the
/// epoch tag (high 32 bits), the field count (8 bits), and a 24-bit index
/// into the owning shard's slab for payloads wider than one field:
///
///   header_ = epoch << 32 | count << 24 | spill_index
///
/// Spilled payloads (count >= 2) live whole in a slab block of the lease's
/// declared width, addressed by index (MessageSlab::at_index) because 24
/// bits cannot hold a pointer. The epoch tag plays exactly the Message
/// role: a slot is live only when its tag equals the round epoch, and the
/// lazy first-touch stamp doubles as the clear (count and spill go to 0).
struct NarrowSlot {
  static constexpr std::uint32_t kMaxSpillIndex = (1u << 24) - 1;
  static constexpr std::uint32_t kMaxFields = 255;

  std::int64_t payload_ = 0;
  std::uint64_t header_ = 0;

  std::uint32_t epoch() const {
    return static_cast<std::uint32_t>(header_ >> 32);
  }
  std::uint32_t count() const {
    return static_cast<std::uint32_t>(header_ >> 24) & 0xff;
  }
  std::uint32_t spill() const {
    return static_cast<std::uint32_t>(header_) & kMaxSpillIndex;
  }

  /// Lazy first-touch reset: stamp the write epoch, zero count and spill.
  void stamp(std::uint32_t e) { header_ = static_cast<std::uint64_t>(e) << 32; }
  void set_count(std::uint32_t c) {
    header_ = (header_ & ~0xff000000ull) | (static_cast<std::uint64_t>(c) << 24);
  }
  void set_spill(std::uint32_t idx) {
    header_ = (header_ & ~static_cast<std::uint64_t>(kMaxSpillIndex)) | idx;
  }
};
static_assert(sizeof(NarrowSlot) == 16, "NarrowSlot must stay 16 bytes");

/// Minimal bit width of one signed field (sign bit + magnitude bits).
/// Branch-free: for v >= 0 the magnitude is v, for v < 0 it is |v| - 1
/// (two's complement needs one fewer magnitude bit on the negative side,
/// e.g. -1 fits in sign + 1 bit, INT64_MIN in sign + 63 bits).
inline int field_bits(std::int64_t v) {
  const std::uint64_t u = static_cast<std::uint64_t>(v);
  const std::uint64_t mag = u ^ static_cast<std::uint64_t>(v >> 63);
  return std::bit_width(mag | 1) + 1;  // |1: zero still costs a magnitude bit
}

/// Total semantic bit width of a message (0 for the empty message, which
/// models "send nothing").
inline int message_bits(const Message& m) {
  int total = 0;
  for (const std::int64_t v : m.fields()) total += field_bits(v);
  return total;
}

/// Tracks the maximum message width seen, per run.
class CongestAudit {
 public:
  void observe(const Message& m) {
    if (m.empty()) return;
    ++messages_;
    const int bits = message_bits(m);
    if (bits > max_bits_) max_bits_ = bits;
  }

  /// Same accounting over a raw field span (the narrow plane's slots resolve
  /// to spans, not Messages). Bits are a function of the field values alone,
  /// so narrow and wide runs of one protocol audit bit-identically.
  void observe(std::span<const std::int64_t> fields) {
    if (fields.empty()) return;
    ++messages_;
    int bits = 0;
    for (const std::int64_t v : fields) bits += field_bits(v);
    if (bits > max_bits_) max_bits_ = bits;
  }
  int max_bits() const { return max_bits_; }
  std::int64_t messages_sent() const { return messages_; }
  void reset();

  /// Fold another audit into this one (max of widths, sum of counts). Both
  /// operations are order-independent, so merging per-shard accumulators at
  /// the round barrier is deterministic regardless of thread scheduling.
  void merge(const CongestAudit& other);

 private:
  int max_bits_ = 0;
  std::int64_t messages_ = 0;
};

}  // namespace dec
