// Messages exchanged over SyncNetwork, with semantic bit accounting.
//
// CONGEST requires O(log n)-bit messages. We measure the information content
// of every message as the sum of the minimal two's-complement widths of its
// integer fields; the per-round maximum feeds the CongestAudit so that
// Theorem 1.2's bandwidth claim can be checked empirically (EXP-J).
#pragma once

#include <cstdint>
#include <vector>

namespace dec {

struct Message {
  std::vector<std::int64_t> fields;

  Message() = default;
  explicit Message(std::initializer_list<std::int64_t> init) : fields(init) {}

  bool empty() const { return fields.empty(); }
  void clear() { fields.clear(); }
  void push(std::int64_t v) { fields.push_back(v); }

  std::int64_t at(std::size_t i) const { return fields.at(i); }
  std::size_t size() const { return fields.size(); }
};

/// Minimal bit width of one signed field (sign bit + magnitude bits).
int field_bits(std::int64_t v);

/// Total semantic bit width of a message (0 for the empty message, which
/// models "send nothing").
int message_bits(const Message& m);

/// Tracks the maximum message width seen, per run.
class CongestAudit {
 public:
  void observe(const Message& m);
  int max_bits() const { return max_bits_; }
  std::int64_t messages_sent() const { return messages_; }
  void reset();

 private:
  int max_bits_ = 0;
  std::int64_t messages_ = 0;
};

}  // namespace dec
