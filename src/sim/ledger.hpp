// Round accounting for the LOCAL / CONGEST model simulation.
//
// The scientifically meaningful output of every algorithm in this library is
// its round count. Message-passing code running on SyncNetwork charges the
// ledger automatically; phase-orchestrated code charges it explicitly with
// the per-phase costs dictated by the paper. Charges are named, so the bench
// harness can report per-component breakdowns (e.g. "token_dropping" vs.
// "final_greedy" vs. "log*" terms).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dec {

class RoundLedger {
 public:
  /// Cached handle to one component's counter. Charging through a Counter
  /// skips the per-charge string map lookup — SyncNetwork charges once per
  /// simulated round, which puts plain charge() on the round hot path. The
  /// handle survives reset(): it revalidates lazily via a generation tag.
  class Counter {
   public:
    void charge(std::int64_t rounds);

   private:
    friend class RoundLedger;
    Counter(RoundLedger* ledger, std::string name)
        : ledger_(ledger), name_(std::move(name)) {}

    RoundLedger* ledger_;
    std::string name_;
    std::int64_t* slot_ = nullptr;    // cached map slot (stable in std::map)
    std::uint64_t generation_ = 0;    // matches ledger_->generation_ if valid
  };

  /// Make a cached charging handle for `component`.
  Counter counter(std::string component) {
    return Counter(this, std::move(component));
  }

  /// Add `rounds` rounds attributed to `component`.
  void charge(const std::string& component, std::int64_t rounds);

  /// Charge the O(log* n) term for an initial-symmetry-breaking step; adds
  /// log*(n) rounds under the given component name (default "log*").
  void charge_log_star(std::int64_t n, const std::string& component = "log*");

  /// Total rounds across all components.
  std::int64_t total() const { return total_; }

  /// Rounds attributed to one component (0 if never charged).
  std::int64_t component(const std::string& name) const;

  /// All components and their charges, sorted by name.
  const std::map<std::string, std::int64_t>& breakdown() const {
    return by_component_;
  }

  /// Human-readable multi-line report.
  std::string report() const;

  /// Fold another ledger's charges into this one (component-wise).
  void merge(const RoundLedger& other);

  void reset();

 private:
  std::int64_t total_ = 0;
  std::map<std::string, std::int64_t> by_component_;
  std::uint64_t generation_ = 1;  // bumped by reset() to invalidate Counters
};

}  // namespace dec
