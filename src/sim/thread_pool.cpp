#include "sim/thread_pool.hpp"

#include "util/check.hpp"

namespace dec {

ThreadPool::ThreadPool(int num_threads) {
  DEC_REQUIRE(num_threads >= 1, "thread pool needs at least one thread");
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run(const std::function<void(int)>& job) {
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &job;
  pending_ = num_threads();
  first_error_ = nullptr;
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
  if (first_error_ != nullptr) std::rethrow_exception(first_error_);
}

void ThreadPool::worker(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    std::exception_ptr error;
    try {
      (*job)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error != nullptr && first_error_ == nullptr) first_error_ = error;
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace dec
