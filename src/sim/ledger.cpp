#include "sim/ledger.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/logstar.hpp"

namespace dec {

void RoundLedger::charge(const std::string& component, std::int64_t rounds) {
  DEC_REQUIRE(rounds >= 0, "cannot charge negative rounds");
  total_ += rounds;
  by_component_[component] += rounds;
}

void RoundLedger::Counter::charge(std::int64_t rounds) {
  DEC_REQUIRE(rounds >= 0, "cannot charge negative rounds");
  if (slot_ == nullptr || generation_ != ledger_->generation_) {
    slot_ = &ledger_->by_component_[name_];
    generation_ = ledger_->generation_;
  }
  *slot_ += rounds;
  ledger_->total_ += rounds;
}

void RoundLedger::charge_log_star(std::int64_t n, const std::string& component) {
  DEC_REQUIRE(n >= 0, "negative n");
  charge(component, log_star(static_cast<double>(n)));
}

std::int64_t RoundLedger::component(const std::string& name) const {
  const auto it = by_component_.find(name);
  return it == by_component_.end() ? 0 : it->second;
}

std::string RoundLedger::report() const {
  std::ostringstream os;
  os << "rounds total = " << total_ << '\n';
  for (const auto& [name, rounds] : by_component_) {
    os << "  " << name << " = " << rounds << '\n';
  }
  return os.str();
}

void RoundLedger::merge(const RoundLedger& other) {
  for (const auto& [name, rounds] : other.by_component_) {
    charge(name, rounds);
  }
}

void RoundLedger::reset() {
  total_ = 0;
  by_component_.clear();
  ++generation_;  // invalidate outstanding Counter slot caches
}

}  // namespace dec
