// Immutable topology plans for the simulation substrate.
//
// Planning a network — the CSR slot offsets, the peer-slot permutation that
// delivery swaps through, the slot-balanced shard partition, and (for the
// directed adapter) the support graph plus per-arc lane plan — depends only
// on the graph's shape and the shard count, never on anything that happens
// during a run. This file factors that planning out of the networks into two
// immutable, shareable objects:
//
//  * NetworkTopology — the undirected slot plane plan. One plan per (graph
//    shape, shard count); every SyncNetwork run state built on it shares the
//    arrays by shared_ptr instead of re-deriving them.
//
//  * DiTopology — the directed adapter's plan on top: the undirected support
//    graph (one edge per node pair with at least one arc), the support's
//    NetworkTopology, and the lane plan mapping each arc onto its support
//    edge (lane index, lane count, endpoint incidence indices, per-incidence
//    packing lists).
//
// Both are planned once per shape (see NetworkPool in sim/pool.hpp for the
// cache) and hold no per-run state; run state (buffers, epochs, slabs,
// audits) lives in SyncNetwork / DiNetwork, which hold their plan by
// shared_ptr and can be reset or rebound without replanning.
//
// A topology deliberately does NOT keep a pointer to the Graph/Digraph it
// was planned from: it may outlive that object (the pool caches plans by
// shape, and solvers routinely plan on temporary subgraphs). The run state
// carries the current graph reference; matches() checks the pairing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace dec {

class NetworkTopology {
 public:
  /// Plan the slot plane for `g` with `num_threads` shards. Requires
  /// num_threads >= 1 (resolve the 0-means-hardware convention with
  /// resolve_num_threads before calling); counts above n + 1 are clamped to
  /// the round engine's limit.
  static std::shared_ptr<const NetworkTopology> plan(const Graph& g,
                                                     int num_threads = 1);

  NodeId num_nodes() const { return n_; }
  std::size_t num_slots() const { return peer_slot_.size(); }
  int num_shards() const { return num_shards_; }

  /// CSR slot offsets: slot offsets()[v] + i belongs to incidence i of v.
  std::span<const std::size_t> offsets() const { return offsets_; }

  /// Where the message written at slot s lands (the same edge's slot in the
  /// peer's adjacency).
  std::span<const std::uint32_t> peer_slot() const { return peer_slot_; }

  /// Iota map (0, 1, 2, …) of max-degree length. Boxes address slots
  /// through one uniform `buf[base + map[i]]` load so their accessors carry
  /// no plane-mode branch: direct-addressed rounds (double-plane outboxes,
  /// even single-plane rounds) pass base = the node's first slot with this
  /// as the map (base + i = the node's CSR slots), peer-delivered rounds
  /// pass base = 0 with their peer_slot() slice. One max-degree-sized array
  /// per plan — it stays L1-resident, so the direct map load costs no
  /// memory bandwidth (unlike a per-slot global identity array would).
  std::span<const std::uint32_t> iota_map() const { return iota_map_; }

  /// num_shards() + 1 node boundaries of the slot-balanced shard partition.
  std::span<const NodeId> shard_begin() const { return shard_begin_; }

  /// Cheap structural check that this plan fits `g`: node count, slot count,
  /// and every node's degree. Distinct graphs passing this check and
  /// differing only in edge ids would still mis-deliver, so pairing a
  /// topology with a graph of a different edge list is on the caller (the
  /// pool verifies full edge lists before sharing a cached plan).
  bool matches(const Graph& g) const;

  /// Heap bytes of the plan arrays (offsets, peer permutation, shard
  /// boundaries) — the plan side of the per-node memory budget
  /// (docs/ARCHITECTURE.md "Graph storage & scale").
  std::size_t memory_bytes() const {
    return offsets_.capacity() * sizeof(offsets_[0]) +
           peer_slot_.capacity() * sizeof(peer_slot_[0]) +
           iota_map_.capacity() * sizeof(iota_map_[0]) +
           shard_begin_.capacity() * sizeof(shard_begin_[0]);
  }

 private:
  NetworkTopology() = default;

  NodeId n_ = 0;
  int num_shards_ = 1;
  std::vector<std::size_t> offsets_;      // n + 1
  std::vector<std::uint32_t> peer_slot_;  // 2m
  std::vector<std::uint32_t> iota_map_;   // max degree; 0, 1, 2, …
  std::vector<NodeId> shard_begin_;       // num_shards + 1
};

class DiTopology {
 public:
  /// Where an arc lives on the support slot plane: its lane within the
  /// support edge of its node pair, that edge's total lane count, and the
  /// edge's incidence index inside each endpoint's support adjacency.
  struct ArcRef {
    std::uint32_t lane;
    std::uint32_t lane_count;
    std::uint32_t tail_inc;
    std::uint32_t head_inc;
  };

  /// Plan the support graph and lane plan for `dg`.
  static std::shared_ptr<const DiTopology> plan(const Digraph& dg,
                                                int num_threads = 1);

  NodeId num_nodes() const { return support_.num_nodes(); }
  EdgeId num_arcs() const { return static_cast<EdgeId>(ref_.size()); }

  const Graph& support() const { return support_; }
  const std::shared_ptr<const NetworkTopology>& support_topology() const {
    return net_topo_;
  }

  std::span<const ArcRef> refs() const { return ref_; }

  /// Largest lane count of any support edge (1 when the digraph has no
  /// arcs). Sizes the per-support-slot declared width of a narrow arc plan:
  /// a framed multi-lane message carries max_lane_count * (1 + w) fields for
  /// per-arc width w.
  std::uint32_t max_lane_count() const { return max_lane_count_; }

  /// Per-incidence packing lists: incidence I = soff()[v] + i owns scratch
  /// slots pack()[pack_off()[I] .. pack_off()[I+1]), in lane order. A
  /// forward sub-channel's slot is its arc id, a backward one's is
  /// num_arcs + arc id.
  std::span<const std::size_t> soff() const { return soff_; }
  std::span<const std::size_t> pack_off() const { return pack_off_; }
  std::span<const std::uint32_t> pack() const { return pack_; }

  /// Cheap structural check that this plan fits `dg` (node/arc counts and
  /// per-node degrees; see NetworkTopology::matches for the caveat).
  bool matches(const Digraph& dg) const;

 private:
  DiTopology() = default;

  Graph support_;
  std::shared_ptr<const NetworkTopology> net_topo_;
  std::vector<ArcRef> ref_;        // per arc
  std::uint32_t max_lane_count_ = 1;
  std::vector<std::size_t> soff_;  // n + 1 support incidence offsets
  std::vector<std::size_t> pack_off_;
  std::vector<std::uint32_t> pack_;
};

}  // namespace dec
