// Reusable fork-join thread pool for the parallel round engine.
//
// One pool lives as long as its SyncNetwork: workers are spawned once and
// parked on a condition variable between rounds, so per-round dispatch is a
// generation bump + two notifications instead of thread creation. run(job)
// executes job(i) for every worker index i and blocks until all are done;
// the first exception thrown by any worker is captured and rethrown on the
// calling thread (the library is exception-based, see util/check.hpp).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dec {

/// The library-wide "num_threads <= 0 means hardware concurrency"
/// convention (ParallelSyncNetwork, NetworkPool, solvers documenting 0).
/// Every site must resolve identically or the pool/solver shard-count
/// equality contract (ScopedNetwork) breaks — hence one helper.
inline int resolve_num_threads(int num_threads) {
  if (num_threads > 0) return num_threads;
  return static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
}

class ThreadPool {
 public:
  /// Spawn `num_threads` (>= 1) parked workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execute job(i) for i in [0, num_threads) across the workers; blocks
  /// until every invocation returns. `job` must be safe to call concurrently
  /// with distinct indices. Rethrows the first worker exception.
  void run(const std::function<void(int)>& job);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void worker(int index);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace dec
