// Directed adapter over the undirected SyncNetwork slot plane.
//
// Every directed solver in the library runs on this adapter: token dropping
// executes its three-round phases here, and balanced orientation / defective
// 2-edge coloring (whose proposal/accept phases live on the undirected
// SyncNetwork) run each embedded token-dropping game on a DiNetwork over the
// per-phase violation digraph. These games need per-arc message channels on
// an arbitrary digraph — including anti-parallel pairs and parallel arcs,
// which the simple undirected Graph underlying SyncNetwork cannot represent
// as distinct edges. DiNetwork multiplexes them instead:
//
//  * Support graph + lanes. The plan — one undirected support edge per node
//    pair with at least one arc, the arcs between a pair multiplexed as that
//    edge's "lanes" in arc-id order — is the immutable DiTopology
//    (sim/topology.hpp), planned once per digraph shape. Each arc carries an
//    independent forward (tail→head) and backward (head→tail) sub-channel
//    per round; a single-lane payload (the common case) goes on the wire
//    unframed, so the audit sees exactly the solver's own bits; multi-lane
//    messages are length-prefixed per lane.
//
//  * Run state. This class holds only the support SyncNetwork's run state
//    and the per-arc packing scratch. It is constructible from a cached
//    DiTopology, resettable in O(shards), and rebindable in place to a new
//    arc set on the same (or a different) node set — NetworkPool leases do
//    this so per-phase token-dropping games reuse one arena instead of
//    rebuilding buffers, slabs, and thread pools per phase.
//
//  * Arc-indexed node programs. A node program addresses channels by its
//    digraph incidence lists: it sends along its j-th out-arc / against its
//    j-th in-arc, and reads what arrived along its j-th in-arc / against
//    its j-th out-arc. Lane packing happens in per-arc scratch slots owned
//    by the writing node, so programs stay data-race-free on the parallel
//    engine by the same confinement argument as SyncNetwork's.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace dec {

/// Read-only view of one arc sub-channel's payload for the current round.
/// Empty when the peer sent nothing on that channel.
class ArcView {
 public:
  ArcView() = default;
  ArcView(const std::int64_t* data, std::size_t n) : data_(data), n_(n) {}

  bool empty() const { return n_ == 0; }
  std::size_t size() const { return n_; }
  std::int64_t at(std::size_t i) const {
    DEC_REQUIRE(i < n_, "arc message field index out of range");
    return data_[i];
  }

 private:
  const std::int64_t* data_ = nullptr;
  std::size_t n_ = 0;
};

class DiNetwork;

/// Incoming arc sub-channels of one node for the current round, indexed by
/// the node's digraph incidence lists. Parameterized over the support
/// network's inbox family (wide Inbox or NarrowInbox) — ArcViews point into
/// the underlying plane/slab storage either way, so node programs written
/// with `const auto& in` run on both formats unchanged.
template <class InboxT>
class BasicDiInbox {
 public:
  /// Payload that arrived along the node's j-th in-arc (sent by its tail).
  ArcView along(std::size_t j) const;
  /// Payload that arrived against the node's j-th out-arc (from its head).
  ArcView against(std::size_t j) const;

 private:
  friend class DiNetwork;
  BasicDiInbox(const DiNetwork* net, NodeId v, const InboxT* in)
      : net_(net), v_(v), in_(in) {}

  const DiNetwork* net_;
  NodeId v_;
  const InboxT* in_;
};

using DiInbox = BasicDiInbox<Inbox>;
using NarrowDiInbox = BasicDiInbox<NarrowInbox>;

/// Outgoing arc sub-channels of one node for the current round. Each send
/// replaces the channel's payload wholesale; untouched channels send
/// nothing.
class DiOutbox {
 public:
  /// Send along the node's j-th out-arc (toward its head).
  void along(std::size_t j, std::initializer_list<std::int64_t> fields);
  /// Send against the node's j-th in-arc (back toward its tail).
  void against(std::size_t j, std::initializer_list<std::int64_t> fields);

 private:
  friend class DiNetwork;
  DiOutbox(DiNetwork* net, NodeId v) : net_(net), v_(v) {}

  DiNetwork* net_;
  NodeId v_;
};

class DiNetwork {
 public:
  /// Widest per-arc payload the adapter carries; matches the inline capacity
  /// of a Message so single-lane sends never spill.
  static constexpr std::size_t kMaxArcFields = Message::kInlineFields;

  /// Plan-and-run convenience: plans a fresh DiTopology for `dg`. `arc_plan`
  /// is the PER-ARC slot plan: its max_fields declares the widest payload a
  /// single arc sub-channel carries; the adapter derives the support
  /// network's per-slot width from it (max_lane_count * (1 + w) fields when
  /// lanes are framed, w unframed). A wide plan with max_fields 0 is
  /// unchecked, today's behavior.
  explicit DiNetwork(const Digraph& dg, RoundLedger* ledger = nullptr,
                     std::string component = "dinetwork", int num_threads = 1,
                     SlotPlan arc_plan = {});

  /// Build run state on an existing (typically cached) plan. `topo` must fit
  /// `dg` (see DiTopology::matches).
  DiNetwork(const Digraph& dg, std::shared_ptr<const DiTopology> topo,
            RoundLedger* ledger = nullptr, std::string component = "dinetwork",
            SlotPlan arc_plan = {});

  /// O(num_shards) return to the just-constructed state (epoch-based; see
  /// SyncNetwork::reset). The no-arg form keeps the current ledger binding;
  /// the two-arg form re-points the charge line (same split as SyncNetwork,
  /// so reusing a DiNetwork can never silently detach its ledger).
  void reset();
  void reset(RoundLedger* ledger, std::string component = "dinetwork");

  /// Re-target this run state at a different digraph/plan in place, reusing
  /// support buffers, slabs, scratch, and thread pool (no allocation when
  /// the new plan fits within what this state ever held). This is how one
  /// pooled arena serves a fresh arc set every phase.
  void rebind(const Digraph& dg, std::shared_ptr<const DiTopology> topo,
              RoundLedger* ledger = nullptr, std::string component = "dinetwork");

  /// rebind() that also re-declares the per-arc slot plan (format must match
  /// this run state's — see SyncNetwork's five-arg rebind).
  void rebind(const Digraph& dg, std::shared_ptr<const DiTopology> topo,
              RoundLedger* ledger, std::string component, SlotPlan arc_plan);

  /// Execute one synchronous round: `fn(v, inbox, outbox)` per node, then
  /// lane packing onto the support network's slots. Charges one round. The
  /// inbox handed to `fn` is BasicDiInbox over the support plane's format —
  /// format dispatch mirrors SyncNetwork::round_fast: a generic program
  /// (`const auto& in`) runs on either plane, a DiInbox-typed program
  /// compiles exactly as before and requires a wide-format network.
  template <class F>
  void round_fast(F&& fn) {
    constexpr bool narrow_ok =
        std::is_invocable_v<F&, NodeId, const NarrowDiInbox&, DiOutbox&>;
    constexpr bool wide_ok =
        std::is_invocable_v<F&, NodeId, const DiInbox&, DiOutbox&>;
    static_assert(narrow_ok || wide_ok,
                  "arc program must accept (NodeId, const DiInbox&, "
                  "DiOutbox&) or (NodeId, const NarrowDiInbox&, DiOutbox&)");
    if constexpr (narrow_ok) {
      if (net_.slot_format() == SlotFormat::kNarrow) {
        round_on<NarrowSlot, NarrowInbox>(fn);
        return;
      }
    }
    if constexpr (wide_ok) {
      DEC_REQUIRE(net_.slot_format() == SlotFormat::kWide,
                  "wide-only arc program on a narrow-format network");
      round_on<Message, Inbox>(fn);
      return;
    }
    DEC_REQUIRE(false, "narrow-only arc program on a wide-format network");
  }

  /// Read-only visit of the last round's deliveries (no sends, no round
  /// charged) — see SyncNetwork::drain_fast. Format dispatch as round_fast.
  template <class F>
  void drain_fast(F&& fn) {
    constexpr bool narrow_ok =
        std::is_invocable_v<F&, NodeId, const NarrowDiInbox&>;
    constexpr bool wide_ok = std::is_invocable_v<F&, NodeId, const DiInbox&>;
    static_assert(narrow_ok || wide_ok,
                  "arc drain program must accept (NodeId, const DiInbox&) "
                  "or (NodeId, const NarrowDiInbox&)");
    if constexpr (narrow_ok) {
      if (net_.slot_format() == SlotFormat::kNarrow) {
        drain_on<NarrowSlot, NarrowInbox>(fn);
        return;
      }
    }
    if constexpr (wide_ok) {
      DEC_REQUIRE(net_.slot_format() == SlotFormat::kWide,
                  "wide-only arc drain program on a narrow-format network");
      drain_on<Message, Inbox>(fn);
      return;
    }
    DEC_REQUIRE(false,
                "narrow-only arc drain program on a wide-format network");
  }

  /// Cancellation token, forwarded to the support network's round barrier
  /// (see SyncNetwork::set_cancel — same granularity, same guarantees).
  void set_cancel(CancelToken* cancel) { net_.set_cancel(cancel); }
  CancelToken* cancel() const { return net_.cancel(); }

  std::int64_t rounds_executed() const { return net_.rounds_executed(); }
  const CongestAudit& audit() const { return net_.audit(); }
  const Digraph& digraph() const { return *dg_; }
  int num_threads() const { return net_.num_threads(); }

  /// Slot-plane format of the support network (structural — pool identity).
  SlotFormat slot_format() const { return net_.slot_format(); }
  /// Plane mode of the support network (structural — pool identity). On
  /// kSingle, drain_fast throws: the mode is forwarded verbatim into the
  /// support SyncNetwork, which owns the ban. round_fast arc programs are
  /// single-plane-safe by construction — every inbox read happens in the
  /// node callback, before pack() writes the support outbox.
  PlaneMode plane_mode() const { return net_.plane_mode(); }
  /// Declared per-arc max field count of the current lease (0 = unchecked).
  int declared_arc_fields() const { return arc_declared_; }

  /// Heap bytes of this run state: the support network's planes/slabs plus
  /// the adapter's lane-packing scratch (both scale with the arc count, so
  /// bytes/node counters must include them).
  std::size_t memory_bytes() const {
    return net_.memory_bytes() +
           scratch_len_.capacity() * sizeof(std::uint32_t) +
           scratch_fields_.capacity() * sizeof(std::int64_t);
  }

  // Lane-plane introspection (tests and tools).
  const Graph& support() const { return topo_->support(); }
  const std::shared_ptr<const DiTopology>& topology() const { return topo_; }
  std::uint32_t lane(EdgeId arc) const {
    return ref_[static_cast<std::size_t>(arc)].lane;
  }
  std::uint32_t lane_count(EdgeId arc) const {
    return ref_[static_cast<std::size_t>(arc)].lane_count;
  }

 private:
  template <class InboxT>
  friend class BasicDiInbox;
  friend class DiOutbox;

  void bind_plan();  // refresh cached views + size scratch for topo_
  void clear_scratch(NodeId v);
  void send(std::size_t slot, std::initializer_list<std::int64_t> fields);

  template <class Slot, class InboxT, class F>
  void round_on(F& fn) {
    net_.round_as<Slot>([&](NodeId v, const InboxT& in, auto&& out) {
      clear_scratch(v);
      const BasicDiInbox<InboxT> din(this, v, &in);
      DiOutbox dout(this, v);
      fn(v, din, dout);
      pack(v, out);
    });
  }

  template <class Slot, class InboxT, class F>
  void drain_on(F& fn) {
    net_.drain_as<Slot>([&](NodeId v, const InboxT& in) {
      const BasicDiInbox<InboxT> din(this, v, &in);
      fn(v, din);
    });
  }

  /// Flush this node's touched scratch channels onto its support outbox
  /// slots (wide Outbox or NarrowOutbox — both expose operator[] + push).
  template <class OutboxT>
  void pack(NodeId v, OutboxT& out) {
    const std::size_t lo = soff_[static_cast<std::size_t>(v)];
    const std::size_t hi = soff_[static_cast<std::size_t>(v) + 1];
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t plo = pack_off_[i];
      const std::size_t phi = pack_off_[i + 1];
      bool any = false;
      for (std::size_t k = plo; k < phi && !any; ++k) {
        any = scratch_len_[pack_list_[k]] > 0;
      }
      if (!any) continue;  // slot untouched: nothing goes on the wire
      auto&& m = out[i - lo];  // NarrowOutbox yields a proxy by value
      const bool framed = phi - plo > 1;
      for (std::size_t k = plo; k < phi; ++k) {
        const std::uint32_t len = scratch_len_[pack_list_[k]];
        if (framed) m.push(static_cast<std::int64_t>(len));
        const std::int64_t* f =
            scratch_fields_.data() + pack_list_[k] * kMaxArcFields;
        for (std::uint32_t t = 0; t < len; ++t) m.push(f[t]);
      }
    }
  }

  /// Slice one arc's sub-channel out of a support-slot payload. Works on any
  /// message view exposing empty()/fields(); the returned ArcView points
  /// into plane or slab storage, which outlives a by-value NarrowView.
  template <class MsgT>
  ArcView extract(const MsgT& m, const DiTopology::ArcRef& ref) const {
    if (m.empty()) return {};
    const auto f = m.fields();
    if (ref.lane_count == 1) return {f.data(), f.size()};
    std::size_t pos = 0;
    for (std::uint32_t l = 0; l < ref.lane_count; ++l) {
      DEC_CHECK(pos < f.size(), "malformed multi-lane message");
      const std::size_t len = static_cast<std::size_t>(f[pos]);
      ++pos;
      if (l == ref.lane) {
        return len == 0 ? ArcView{} : ArcView{f.data() + pos, len};
      }
      pos += len;
    }
    DEC_CHECK(false, "lane index beyond the edge's lane count");
    return {};
  }

  const Digraph* dg_;
  std::shared_ptr<const DiTopology> topo_;
  SyncNetwork net_;
  int arc_declared_ = 0;  // declared per-arc max width (0 = unchecked)

  // Hot-path views into *topo_ (refreshed by bind_plan).
  const DiTopology::ArcRef* ref_ = nullptr;
  const std::size_t* soff_ = nullptr;
  const std::size_t* pack_off_ = nullptr;
  const std::uint32_t* pack_list_ = nullptr;

  // Per-arc-sub-channel scratch payloads (2 * num_arcs slots). A slot is
  // written only by its owning node's program, cleared at the start of that
  // node's step, and flushed by pack() — never shared across shards.
  std::vector<std::uint32_t> scratch_len_;
  std::vector<std::int64_t> scratch_fields_;
};

template <class InboxT>
inline ArcView BasicDiInbox<InboxT>::along(std::size_t j) const {
  const auto in_arcs = net_->dg_->in(v_);
  DEC_REQUIRE(j < in_arcs.size(), "in-arc index out of range");
  const DiTopology::ArcRef& ref =
      net_->ref_[static_cast<std::size_t>(in_arcs[j].edge)];
  return net_->extract((*in_)[ref.head_inc], ref);
}

template <class InboxT>
inline ArcView BasicDiInbox<InboxT>::against(std::size_t j) const {
  const auto out_arcs = net_->dg_->out(v_);
  DEC_REQUIRE(j < out_arcs.size(), "out-arc index out of range");
  const DiTopology::ArcRef& ref =
      net_->ref_[static_cast<std::size_t>(out_arcs[j].edge)];
  return net_->extract((*in_)[ref.tail_inc], ref);
}

inline void DiOutbox::along(std::size_t j,
                            std::initializer_list<std::int64_t> fields) {
  const auto out_arcs = net_->dg_->out(v_);
  DEC_REQUIRE(j < out_arcs.size(), "out-arc index out of range");
  net_->send(static_cast<std::size_t>(out_arcs[j].edge), fields);
}

inline void DiOutbox::against(std::size_t j,
                              std::initializer_list<std::int64_t> fields) {
  const auto in_arcs = net_->dg_->in(v_);
  DEC_REQUIRE(j < in_arcs.size(), "in-arc index out of range");
  net_->send(static_cast<std::size_t>(net_->dg_->num_arcs()) +
                 static_cast<std::size_t>(in_arcs[j].edge),
             fields);
}

}  // namespace dec
