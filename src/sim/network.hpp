// Synchronous message-passing network over an undirected Graph.
//
// This is the LOCAL / CONGEST model: computation proceeds in rounds; in each
// round every node reads the messages its neighbors sent in the previous
// round, computes, and writes one (possibly empty) message per incident
// edge. Node callbacks only ever see last-round messages plus their own
// state, so execution order within a round is unobservable and the engine is
// free to run nodes serially (id order) or sharded across threads.
//
// Substrate architecture (the round hot path is allocation-free):
//
//  * Flat slot plane. Message slots live in two flat arrays of 2m
//    small-buffer-optimized Messages, indexed CSR-style: slot offsets_[v]+i
//    belongs to incidence i of node v. Payloads up to
//    Message::kInlineFields stay inline; wider payloads spill into a
//    per-shard MessageSlab arena (never the general heap), which is bulk
//    reset at the round boundary. Each buffer generation owns its own slab
//    set so spilled inbox payloads survive while the outbox refills.
//
//  * Epoch-tagged validity, no clear sweeps. Every slot carries an epoch
//    tag. A round bumps the network epoch; an outbox slot is lazily reset
//    the first time the node program touches it (Outbox::operator[]), and an
//    inbox slot is live only if its tag equals the epoch it was written in
//    (Inbox::operator[] returns kEmptyMessage otherwise). Nothing ever
//    iterates all 2m slots to clear them.
//
//  * Swap delivery. The outbox slot of (v, i) and the inbox slot it must
//    arrive at are the two fixed slots of one edge, related by the
//    precomputed peer_slot_ permutation. Inbox views read through that
//    permutation, so delivery is a single buffer-pointer swap — no per-slot
//    moves.
//
//  * Parallel round engine. With num_threads > 1 (see ParallelSyncNetwork),
//    nodes are sharded into contiguous ranges balanced by slot count and run
//    on a persistent ThreadPool. A node program only writes its own node's
//    outbox slots and only reads the shared last-round inbox, so shards are
//    data-race-free by construction. Each shard audits the slots it touched
//    into a private CongestAudit; shard accumulators merge at the round
//    barrier with order-independent ops (max / sum), so audits and results
//    are bit-identical to the serial engine.
//
//  * round_fast<F>. Solver inner loops call the templated round to keep the
//    node program a direct (inlinable) call; the std::function round() is a
//    thin wrapper kept for convenience and type-erased contexts.
//
//  * drain_fast<F>. Pipelined protocols whose last round still has messages
//    in flight (the reply to round T is read in round T+1's program) finish
//    with a drain: a read-only visit of the delivered inboxes that sends
//    nothing, bumps no epoch, and charges no round — receiving and local
//    post-processing are free in the LOCAL/CONGEST model, only sending
//    rounds count.
//
//  * Directed adapter. Solvers on a Digraph (token dropping, orientation)
//    run on DiNetwork (sim/dinetwork.hpp): arc-indexed sub-channels
//    multiplexed as "lanes" onto the slots of an undirected support
//    SyncNetwork, one slot pair per node pair with at least one arc. Each
//    arc gets an independent forward (tail→head) and backward (head→tail)
//    channel per round; the common single-arc-per-pair case costs zero
//    framing overhead on the wire.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/ledger.hpp"
#include "sim/message.hpp"
#include "sim/slab.hpp"
#include "sim/thread_pool.hpp"

namespace dec {

/// Read-only view of one node's incoming messages for the current round.
/// Entry i corresponds to g.neighbors(v)[i]; slots whose epoch tag is stale
/// (neighbor sent nothing) read as the canonical empty message.
class Inbox {
 public:
  Inbox(const Message* buf, const std::uint32_t* peer, std::size_t n,
        std::uint32_t epoch)
      : buf_(buf), peer_(peer), n_(n), epoch_(epoch) {}

  const Message& operator[](std::size_t i) const {
    const Message& m = buf_[peer_[i]];
    return m.epoch() == epoch_ ? m : kEmptyMessage;
  }

  std::size_t size() const { return n_; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Message;
    using reference = const Message&;
    using pointer = const Message*;
    using difference_type = std::ptrdiff_t;

    const_iterator(const Inbox* box, std::size_t i) : box_(box), i_(i) {}
    reference operator*() const { return (*box_)[i_]; }
    pointer operator->() const { return &(*box_)[i_]; }
    const_iterator& operator++() { ++i_; return *this; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const Inbox* box_;
    std::size_t i_;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, n_}; }

 private:
  const Message* buf_;          // global inbox slot base
  const std::uint32_t* peer_;   // this node's slice of the peer permutation
  std::size_t n_;
  std::uint32_t epoch_;
};

/// Write view of one node's outgoing slots for the current round. Slots are
/// lazily reset on first touch (epoch-tag check), so untouched slots cost
/// nothing and there is no per-round clear sweep.
class Outbox {
 public:
  Outbox(Message* buf, std::size_t n, std::uint32_t epoch, std::uint32_t base,
         std::vector<std::uint32_t>* touched)
      : buf_(buf), n_(n), epoch_(epoch), base_(base), touched_(touched) {}

  Message& operator[](std::size_t i) {
    Message& m = buf_[i];
    if (m.epoch() != epoch_) {
      m.reset_storage();  // storage may point into a since-reset slab
      m.set_epoch(epoch_);
      touched_->push_back(base_ + static_cast<std::uint32_t>(i));
    }
    return m;
  }

  std::size_t size() const { return n_; }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Message;
    using reference = Message&;
    using pointer = Message*;
    using difference_type = std::ptrdiff_t;

    iterator(Outbox* box, std::size_t i) : box_(box), i_(i) {}
    reference operator*() const { return (*box_)[i_]; }
    pointer operator->() const { return &(*box_)[i_]; }
    iterator& operator++() { ++i_; return *this; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    Outbox* box_;
    std::size_t i_;
  };

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, n_}; }

 private:
  Message* buf_;  // this node's first outbox slot
  std::size_t n_;
  std::uint32_t epoch_;
  std::uint32_t base_;  // global slot index of buf_[0]
  std::vector<std::uint32_t>* touched_;
};

class SyncNetwork {
 public:
  /// `component` names the ledger line that rounds are charged to; `ledger`
  /// may be null (rounds still counted locally). `num_threads` > 1 enables
  /// the parallel round engine (see ParallelSyncNetwork).
  explicit SyncNetwork(const Graph& g, RoundLedger* ledger = nullptr,
                       std::string component = "network", int num_threads = 1);

  /// Node program for one round: read `inbox`, fill `outbox` (both sized
  /// degree(v); outbox slots read as empty until written).
  using StepFn =
      std::function<void(NodeId v, const Inbox& inbox, Outbox& outbox)>;

  /// Execute one synchronous round and charge it to the ledger.
  void round(const StepFn& fn) { round_fast(fn); }

  /// Same, but `fn` stays a concrete callable — no std::function type
  /// erasure on the per-node call. Use this from solver inner loops. With
  /// num_threads > 1, `fn` is invoked concurrently from pool workers and
  /// must confine writes to its own node's state and outbox.
  template <class F>
  void round_fast(F&& fn) {
    begin_round();
    try {
      if (pool_ != nullptr) {
        pool_->run([&](int shard) { run_shard(fn, shard); });
      } else {
        run_shard(fn, 0);
      }
    } catch (...) {
      abort_round();  // roll back to the pre-round state, then rethrow
      throw;
    }
    finish_round();
  }

  /// Read-only visit of the messages delivered by the last executed round:
  /// `fn(v, inbox)` runs for every node, nothing is sent, no round is
  /// charged. Receiving plus local computation is free in the round model;
  /// pipelined solvers use this to consume their final round's replies.
  /// Runs sharded under the parallel engine with the same confinement rules
  /// as round_fast.
  template <class F>
  void drain_fast(F&& fn) {
    auto visit = [&](int shard) {
      const NodeId vend = shard_begin_[static_cast<std::size_t>(shard) + 1];
      for (NodeId v = shard_begin_[static_cast<std::size_t>(shard)]; v < vend;
           ++v) {
        const std::size_t lo = offsets_[static_cast<std::size_t>(v)];
        const std::size_t deg = offsets_[static_cast<std::size_t>(v) + 1] - lo;
        const Inbox in(in_, peer_slot_.data() + lo, deg, epoch_);
        fn(v, in);
      }
    };
    if (pool_ != nullptr) {
      pool_->run(visit);
    } else {
      visit(0);
    }
  }

  /// Rounds executed so far on this network.
  std::int64_t rounds_executed() const { return rounds_; }

  const CongestAudit& audit() const { return audit_; }
  const Graph& graph() const { return *g_; }
  int num_threads() const { return num_threads_; }

  // Slot-plane introspection (tests and tools).
  std::size_t num_slots() const { return peer_slot_.size(); }
  std::size_t slot(NodeId v, std::size_t i) const {
    return offsets_[static_cast<std::size_t>(v)] + i;
  }
  std::size_t peer_slot(std::size_t s) const { return peer_slot_[s]; }

 private:
  void begin_round();
  void finish_round();
  void abort_round();

  template <class F>
  void run_shard(F& fn, int shard) {
    Shard& sh = shards_[static_cast<std::size_t>(shard)];
    const std::uint32_t write_epoch = epoch_;
    const std::uint32_t read_epoch = epoch_ - 1;
    const NodeId vend = shard_begin_[static_cast<std::size_t>(shard) + 1];
    for (NodeId v = shard_begin_[static_cast<std::size_t>(shard)]; v < vend;
         ++v) {
      const std::size_t lo = offsets_[static_cast<std::size_t>(v)];
      const std::size_t deg = offsets_[static_cast<std::size_t>(v) + 1] - lo;
      const Inbox in(in_, peer_slot_.data() + lo, deg, read_epoch);
      Outbox out(out_ + lo, deg, write_epoch,
                 static_cast<std::uint32_t>(lo), &sh.touched);
      fn(v, in, out);
    }
    // Audit this shard's sent slots while still on the worker; merged (max /
    // sum, order-independent) at the barrier.
    for (const std::uint32_t s : sh.touched) sh.audit.observe(out_[s]);
  }

  struct Shard {
    MessageSlab slab_a, slab_b;  // spill arenas for buf_a_ / buf_b_ slots
    std::vector<std::uint32_t> touched;
    CongestAudit audit;
  };

  const Graph* g_;
  RoundLedger* ledger_;
  std::optional<RoundLedger::Counter> counter_;  // cached ledger slot
  std::int64_t rounds_ = 0;
  CongestAudit audit_;
  std::uint32_t epoch_ = 0;  // write epoch of the round in progress

  // CSR-slot plane: slot = offsets_[v] + i for incidence i of v.
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> peer_slot_;  // where slot (v,i)'s message lands
  std::vector<Message> buf_a_, buf_b_;
  Message* in_ = nullptr;   // delivered messages of the previous round
  Message* out_ = nullptr;  // slots being written this round
  bool out_is_a_ = true;

  int num_threads_;
  std::vector<NodeId> shard_begin_;  // num_threads_ + 1 node boundaries
  std::vector<Shard> shards_;
  std::unique_ptr<ThreadPool> pool_;  // null in serial mode
};

/// SyncNetwork with the parallel round engine on: nodes are sharded across a
/// persistent thread pool (num_threads = 0 picks hardware concurrency).
/// Produces bit-identical results and audits to the serial engine.
class ParallelSyncNetwork : public SyncNetwork {
 public:
  explicit ParallelSyncNetwork(const Graph& g, RoundLedger* ledger = nullptr,
                               std::string component = "network",
                               int num_threads = 0);
};

}  // namespace dec
