// Synchronous message-passing network over an undirected Graph.
//
// This is the LOCAL / CONGEST model: computation proceeds in rounds; in each
// round every node reads the messages its neighbors sent in the previous
// round, computes, and writes one (possibly empty) message per incident
// edge. The simulator executes nodes in id order within a round, but node
// callbacks only ever see last-round messages plus their own state, so the
// execution is equivalent to a fully parallel round.
//
// Inbox/outbox slots are indexed parallel to Graph::neighbors(v): slot i of
// node v corresponds to the edge g.neighbors(v)[i].
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/ledger.hpp"
#include "sim/message.hpp"

namespace dec {

class SyncNetwork {
 public:
  /// `component` names the ledger line that rounds are charged to; `ledger`
  /// may be null (rounds still counted locally).
  explicit SyncNetwork(const Graph& g, RoundLedger* ledger = nullptr,
                       std::string component = "network");

  /// Node program for one round: read `inbox`, fill `outbox` (both sized
  /// degree(v), outbox pre-cleared to empty messages).
  using StepFn = std::function<void(NodeId v, std::span<const Message> inbox,
                                    std::span<Message> outbox)>;

  /// Execute one synchronous round and charge it to the ledger.
  void round(const StepFn& fn);

  /// Rounds executed so far on this network.
  std::int64_t rounds_executed() const { return rounds_; }

  const CongestAudit& audit() const { return audit_; }
  const Graph& graph() const { return *g_; }

 private:
  const Graph* g_;
  RoundLedger* ledger_;
  std::string component_;
  std::int64_t rounds_ = 0;
  CongestAudit audit_;

  // CSR-slot message buffers: slot = offsets_[v] + i for incidence i of v.
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> peer_slot_;  // where slot (v,i)'s message lands
  std::vector<Message> inbox_, outbox_;
};

}  // namespace dec
