// Synchronous message-passing network over an undirected Graph.
//
// This is the LOCAL / CONGEST model: computation proceeds in rounds; in each
// round every node reads the messages its neighbors sent in the previous
// round, computes, and writes one (possibly empty) message per incident
// edge. Node callbacks only ever see last-round messages plus their own
// state, so execution order within a round is unobservable and the engine is
// free to run nodes serially (id order) or sharded across threads.
//
// The substrate splits into two layers (full architecture notes, including
// the slot plane, epoch tagging, swap delivery, and the parallel round
// engine, live in docs/ARCHITECTURE.md):
//
//  * Plan: an immutable NetworkTopology (sim/topology.hpp) — CSR slot
//    offsets, peer-slot permutation, shard partition — planned once per
//    graph shape and shared by shared_ptr.
//
//  * Run state: this class — the two message buffer planes, slab arenas,
//    epoch counter, round count, audit, and thread pool. Constructible from
//    a cached plan, O(1)-resettable (reset()) and rebindable to a new graph
//    (rebind()) without replanning; NetworkPool (sim/pool.hpp) arenas both.
//
// The round hot path is allocation-free: messages are small-buffer-optimized
// (spill to a per-shard MessageSlab), slot validity is epoch-tagged (no
// clear sweeps), and delivery is a buffer-pointer swap through the peer
// permutation — or, for drain-free leases on PlaneMode::kSingle, a single
// plane whose slot ownership alternates with round parity (no swap, half
// the plane memory; see docs/ARCHITECTURE.md "Plane modes"). Serial and
// sharded execution are bit-identical in both modes.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/cancel.hpp"
#include "sim/ledger.hpp"
#include "sim/message.hpp"
#include "sim/slab.hpp"
#include "sim/thread_pool.hpp"
#include "sim/topology.hpp"

namespace dec {

class SyncNetwork;

/// Epoch value that can never tag a slot mid-round (4G rounds away from any
/// real epoch): disables the single-plane read-after-write hazard check on
/// double-plane boxes without costing a mode branch on the hot path.
inline constexpr std::uint32_t kNoHazardEpoch = 0xffffffffu;

/// Read-only view of one node's incoming messages for the current round.
/// Entry i corresponds to g.neighbors(v)[i]; slots whose epoch tag is stale
/// (neighbor sent nothing) read as the canonical empty message.
///
/// Addressing is uniform — entry i reads buf_[map_[i]], with the round's
/// base slot folded into buf_ at construction. Peer-delivered rounds
/// (double planes, odd single-plane rounds) pass the plane base and the
/// node's peer-permutation slice; direct rounds (even single-plane rounds)
/// pass the node's first slot and the topology's tiny iota map. One L1-hot
/// map load instead of a plane-mode branch keeps the read path free of mode
/// tests in type-erased node programs, whose one compiled body serves every
/// plane mode. Fully-inlined programs (generic round_fast lambdas) instead
/// get the kDirect = true instantiation on direct rounds, whose accessor is
/// the affine buf_[i] — no map load at all; the round engine picks per
/// plane mode and program signature (see run_shard_impl). A slot tagged
/// with the WRITE epoch on a single plane means the program wrote this
/// entry's outbox slot before reading the inbox entry — that
/// read-after-write hazard throws instead of returning the node's own
/// message; on double planes hazard_ is kNoHazardEpoch and the check is one
/// never-taken compare on the stale path only.
template <bool kDirect>
class BasicInbox {
 public:
  BasicInbox(const Message* buf, const std::uint32_t* map, std::size_t n,
             std::uint32_t epoch)
      : buf_(buf), map_(map), n_(n), epoch_(epoch) {}

  const Message& operator[](std::size_t i) const;  // defined after SyncNetwork

  std::size_t size() const { return n_; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Message;
    using reference = const Message&;
    using pointer = const Message*;
    using difference_type = std::ptrdiff_t;

    const_iterator(const BasicInbox* box, std::size_t i) : box_(box), i_(i) {}
    reference operator*() const { return (*box_)[i_]; }
    pointer operator->() const { return &(*box_)[i_]; }
    const_iterator& operator++() { ++i_; return *this; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const BasicInbox* box_;
    std::size_t i_;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, n_}; }

 private:
  friend class SyncNetwork;
  BasicInbox(const Message* buf, const std::uint32_t* map, std::size_t n,
             std::uint32_t epoch, std::uint32_t hazard, const SyncNetwork* net,
             NodeId v)
      : buf_(buf), map_(map), n_(n), epoch_(epoch), hazard_(hazard),
        net_(net), v_(v) {}

  const Message* buf_;        // plane base + round base slot
  const std::uint32_t* map_;  // peer permutation slice / iota map
  std::size_t n_;
  std::uint32_t epoch_;
  std::uint32_t hazard_ = kNoHazardEpoch;  // write epoch on a single plane
  const SyncNetwork* net_ = nullptr;       // hazard error context
  NodeId v_ = 0;
};

/// The erased-program inbox: data-driven map addressing, one compiled body
/// for every plane mode (StepFn programs and any lambda that names the type).
using Inbox = BasicInbox<false>;
/// Affine instantiation handed to fully-inlined generic programs on direct
/// rounds.
using DirectInbox = BasicInbox<true>;

/// Write view of one node's outgoing slots for the current round. Slots are
/// lazily reset on first touch (epoch-tag check), so untouched slots cost
/// nothing and there is no per-round clear sweep.
///
/// Addressing mirrors Inbox: entry i is buf_[map_[i]] with the round's base
/// slot folded into buf_ (peer permutation off the plane base in a single
/// plane's odd rounds, the iota map off the node's first slot otherwise);
/// base_ is kept only to reconstruct the global index for the touched list
/// — the first-touch path, never the per-access one. The first
/// touch also binds the slot's spill slab to the EXECUTING shard's write
/// arena: on double planes that is the slab the slot is statically bound to
/// anyway (one redundant store to an already-dirty line, no mode branch),
/// while on a single plane it is load-bearing — odd rounds write slots in
/// other shards' ranges, even rounds reclaim slots an odd round bound
/// elsewhere, and two shards must never allocate from one arena
/// concurrently. The kDirect = true instantiation (generic fully-inlined
/// programs on direct rounds) skips the map load: its accessor is the
/// affine buf_[i] of the pre-single-plane engine.
template <bool kDirect>
class BasicOutbox {
 public:
  Message& operator[](std::size_t i) {
    const std::uint32_t off =
        kDirect ? static_cast<std::uint32_t>(i) : map_[i];
    Message& m = buf_[off];
    if (m.epoch() != epoch_) {
      m.bind_slab(slab_);
      m.reset_storage();  // storage may point into a since-reset slab
      m.set_epoch(epoch_);
      touched_->push_back(base_ + off);
    }
    return m;
  }

  std::size_t size() const { return n_; }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Message;
    using reference = Message&;
    using pointer = Message*;
    using difference_type = std::ptrdiff_t;

    iterator(BasicOutbox* box, std::size_t i) : box_(box), i_(i) {}
    reference operator*() const { return (*box_)[i_]; }
    pointer operator->() const { return &(*box_)[i_]; }
    iterator& operator++() { ++i_; return *this; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    BasicOutbox* box_;
    std::size_t i_;
  };

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, n_}; }

 private:
  friend class SyncNetwork;
  BasicOutbox(Message* buf, const std::uint32_t* map, std::size_t n,
              std::uint32_t epoch, std::uint32_t base,
              std::vector<std::uint32_t>* touched, MessageSlab* slab)
      : buf_(buf), map_(map), n_(n), epoch_(epoch), base_(base),
        touched_(touched), slab_(slab) {}

  Message* buf_;              // plane base + round base slot
  const std::uint32_t* map_;  // peer permutation slice / iota map
  std::size_t n_;
  std::uint32_t epoch_;
  std::uint32_t base_;  // node's first slot (direct) / 0 (peer)
  std::vector<std::uint32_t>* touched_;
  MessageSlab* slab_;  // executing shard's write-parity spill arena
};

/// Erased-program outbox (map addressing; see BasicInbox aliases).
using Outbox = BasicOutbox<false>;
/// Affine instantiation for fully-inlined generic programs on direct rounds.
using DirectOutbox = BasicOutbox<true>;

/// By-value read view of one narrow slot's payload. Mirrors the read API of
/// Message (empty/size/at/fields), so node programs written against the
/// common surface compile on either plane format.
class NarrowView {
 public:
  NarrowView() = default;
  NarrowView(const std::int64_t* data, std::size_t n) : data_(data), n_(n) {}

  bool empty() const { return n_ == 0; }
  std::size_t size() const { return n_; }
  std::int64_t at(std::size_t i) const {
    DEC_REQUIRE(i < n_, "message field index out of range");
    return data_[i];
  }
  std::span<const std::int64_t> fields() const { return {data_, n_}; }

 private:
  const std::int64_t* data_ = nullptr;
  std::size_t n_ = 0;
};

/// Narrow-plane counterpart of Inbox: entry i is what g.neighbors(v)[i] sent
/// last round, empty when its epoch tag is stale. operator[] returns a view
/// BY VALUE (a NarrowSlot has no Message to reference); `const auto&` at
/// call sites binds either form.
class NarrowInbox {
 public:
  NarrowView operator[](std::size_t i) const;  // defined after SyncNetwork
  std::size_t size() const { return n_; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = NarrowView;
    using reference = NarrowView;
    using difference_type = std::ptrdiff_t;

    const_iterator(const NarrowInbox* box, std::size_t i) : box_(box), i_(i) {}
    NarrowView operator*() const { return (*box_)[i_]; }
    const_iterator& operator++() { ++i_; return *this; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const NarrowInbox* box_;
    std::size_t i_;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, n_}; }

 private:
  friend class SyncNetwork;
  NarrowInbox(const SyncNetwork* net, const NarrowSlot* buf,
              const std::uint32_t* map, std::size_t n, std::uint32_t epoch,
              std::uint32_t base = 0, std::uint32_t hazard = kNoHazardEpoch,
              NodeId v = 0)
      : net_(net), buf_(buf), map_(map), n_(n), epoch_(epoch), base_(base),
        hazard_(hazard), v_(v) {}

  const SyncNetwork* net_;    // resolves slab spills of wide payloads
  const NarrowSlot* buf_;     // plane base + round base slot
  const std::uint32_t* map_;  // peer permutation slice / iota map
  std::size_t n_;
  std::uint32_t epoch_;
  std::uint32_t base_ = 0;  // global-index reconstruction (spill path only)
  std::uint32_t hazard_ = kNoHazardEpoch;  // write epoch on a single plane
  NodeId v_ = 0;
};

/// Write proxy for one narrow outbox slot (returned BY VALUE by
/// NarrowOutbox::operator[]). The write API is the Message subset the
/// solvers use — assign/push/clear; exceeding the lease's declared width
/// throws an actionable error, never truncates. The second field of a slot
/// moves the payload into an index-addressed slab block of exactly the
/// declared width, so a declared-1 lease never touches the slab at all.
class NarrowRef {
 public:
  void assign(std::initializer_list<std::int64_t> init) {
    clear();
    for (const std::int64_t v : init) push(v);
  }
  void push(std::int64_t v);  // defined after SyncNetwork
  void clear() { slot_->set_count(0); }

 private:
  friend class NarrowOutbox;
  NarrowRef(NarrowSlot* slot, MessageSlab* slab, const SyncNetwork* net,
            NodeId v, std::uint32_t slot_index, int declared)
      : slot_(slot), slab_(slab), net_(net), v_(v), slot_index_(slot_index),
        declared_(declared) {}

  NarrowSlot* slot_;
  MessageSlab* slab_;        // owning shard's write-plane arena
  const SyncNetwork* net_;   // error context (component, round)
  NodeId v_;
  std::uint32_t slot_index_;
  int declared_;
};

/// Narrow-plane counterpart of Outbox: slots are lazily stamped on first
/// touch (the stamp doubles as the clear). Iteration yields proxies by
/// value — range-for with `auto&&`.
class NarrowOutbox {
 public:
  NarrowRef operator[](std::size_t i) {
    const std::uint32_t off = map_[i];
    NarrowSlot& s = buf_[off];
    const std::uint32_t idx = base_ + off;  // global; NarrowRef error context
    if (s.epoch() != epoch_) {
      s.stamp(epoch_);
      touched_->push_back(idx);
    }
    return NarrowRef{&s, slab_, net_, v_, idx, declared_};
  }

  std::size_t size() const { return n_; }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = NarrowRef;
    using reference = NarrowRef;
    using difference_type = std::ptrdiff_t;

    iterator(NarrowOutbox* box, std::size_t i) : box_(box), i_(i) {}
    NarrowRef operator*() const { return (*box_)[i_]; }
    iterator& operator++() { ++i_; return *this; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    NarrowOutbox* box_;
    std::size_t i_;
  };

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, n_}; }

 private:
  friend class SyncNetwork;
  NarrowOutbox(NarrowSlot* buf, const std::uint32_t* map, std::uint32_t base,
               MessageSlab* slab, const SyncNetwork* net, NodeId v,
               std::size_t n, std::uint32_t epoch,
               std::vector<std::uint32_t>* touched, int declared)
      : buf_(buf), map_(map), base_(base), slab_(slab), net_(net), v_(v),
        n_(n), epoch_(epoch), touched_(touched), declared_(declared) {}

  NarrowSlot* buf_;           // plane base + round base slot
  const std::uint32_t* map_;  // peer permutation slice / iota map
  std::uint32_t base_;        // global-index reconstruction
  MessageSlab* slab_;
  const SyncNetwork* net_;
  NodeId v_;
  std::size_t n_;
  std::uint32_t epoch_;
  std::vector<std::uint32_t>* touched_;
  int declared_;
};

class SyncNetwork {
 public:
  /// Plan-and-run convenience: plans a fresh topology for `g`. `component`
  /// names the ledger line that rounds are charged to; `ledger` may be null
  /// (rounds still counted locally). `num_threads` > 1 enables the parallel
  /// round engine (see ParallelSyncNetwork). `plan` picks the slot-plane
  /// format (structural — immutable for this run state's lifetime) and the
  /// protocol's declared max per-message field count.
  explicit SyncNetwork(const Graph& g, RoundLedger* ledger = nullptr,
                       std::string component = "network", int num_threads = 1,
                       SlotPlan plan = {});

  /// Build run state on an existing (typically cached) plan. `topo` must fit
  /// `g` (same shape — see NetworkTopology::matches); the shard count is the
  /// plan's.
  SyncNetwork(const Graph& g, std::shared_ptr<const NetworkTopology> topo,
              RoundLedger* ledger = nullptr, std::string component = "network",
              SlotPlan plan = {});

  /// Return to the just-constructed state in O(num_shards): one epoch bump
  /// invalidates every slot of both buffer planes (including the last
  /// delivered inbox), slabs rewind, rounds/audit clear. No slot sweeps, no
  /// replanning, no allocation.
  void reset();

  /// reset() plus re-pointing the ledger charge line (pooled networks are
  /// reused across solvers with different ledgers/components).
  void reset(RoundLedger* ledger, std::string component);

  /// Re-target this run state at a different graph/plan, reusing buffer and
  /// shard storage (no allocation when the new plan needs no more slots or
  /// shards than this state ever had). O(num_slots) when the plan changes —
  /// slab bindings follow the new shard partition — and O(num_shards) when
  /// `topo` is the plan already bound (degenerates to reset()).
  void rebind(const Graph& g, std::shared_ptr<const NetworkTopology> topo,
              RoundLedger* ledger = nullptr, std::string component = "network");

  /// rebind() that also re-declares the per-lease slot plan. The FORMAT is
  /// structural and must equal this run state's (the pool filters by format
  /// before ever calling this); only the declared max field count may change
  /// between leases.
  void rebind(const Graph& g, std::shared_ptr<const NetworkTopology> topo,
              RoundLedger* ledger, std::string component, SlotPlan plan);

  /// Node program for one round: read `inbox`, fill `outbox` (both sized
  /// degree(v); outbox slots read as empty until written).
  using StepFn =
      std::function<void(NodeId v, const Inbox& inbox, Outbox& outbox)>;

  /// Execute one synchronous round and charge it to the ledger.
  void round(const StepFn& fn) { round_fast(fn); }

  /// Same, but `fn` stays a concrete callable — no std::function type
  /// erasure on the per-node call. Use this from solver inner loops. With
  /// num_threads > 1, `fn` is invoked concurrently from pool workers and
  /// must confine writes to its own node's state and outbox.
  ///
  /// Dispatch over the slot-plane format: a generic node program (e.g. a
  /// lambda taking `const auto&` / `auto&&` boxes) is invocable against both
  /// box families and runs on whichever plane this network carries; a
  /// program written against one concrete family requires the matching
  /// format. The wide instantiation compiles exactly as before the narrow
  /// plane existed.
  template <class F>
  void round_fast(F&& fn) {
    constexpr bool narrow_ok =
        std::is_invocable_v<F&, NodeId, const NarrowInbox&, NarrowOutbox&>;
    constexpr bool wide_ok =
        std::is_invocable_v<F&, NodeId, const Inbox&, Outbox&>;
    static_assert(narrow_ok || wide_ok,
                  "node program must accept (NodeId, const Inbox&, Outbox&) "
                  "or (NodeId, const NarrowInbox&, NarrowOutbox&)");
    if constexpr (narrow_ok) {
      if (format_ == SlotFormat::kNarrow) {
        round_as<NarrowSlot>(fn);
        return;
      }
    }
    if constexpr (wide_ok) {
      DEC_REQUIRE(format_ == SlotFormat::kWide,
                  "wide-only node program on a narrow-format network");
      round_as<Message>(fn);
      return;
    }
    DEC_REQUIRE(false, "narrow-only node program on a wide-format network");
  }

  /// Execute one round on a specific slot plane. Public so DiNetwork (whose
  /// box types wrap ours) can dispatch explicitly; solvers use round_fast.
  template <class Slot, class F>
  void round_as(F&& fn) {
    begin_round();
    try {
      // The retained pool may carry more workers than the current plan has
      // shards (it only ever grows across rebinds); surplus workers no-op.
      const int num_shards = topo_->num_shards();
      if (pool_ != nullptr && num_shards > 1) {
        pool_->run([&](int shard) {
          if (shard < num_shards) run_shard_as<Slot>(fn, shard);
        });
      } else {
        run_shard_as<Slot>(fn, 0);
      }
    } catch (...) {
      abort_round();  // roll back to the pre-round state, then rethrow
      throw;
    }
    finish_round();
  }

  /// Read-only visit of the messages delivered by the last executed round:
  /// `fn(v, inbox)` runs for every node, nothing is sent, no round is
  /// charged. Receiving plus local computation is free in the round model;
  /// pipelined solvers use this to consume their final round's replies.
  /// Runs sharded under the parallel engine with the same confinement rules
  /// as round_fast. Format dispatch mirrors round_fast.
  template <class F>
  void drain_fast(F&& fn) {
    constexpr bool narrow_ok =
        std::is_invocable_v<F&, NodeId, const NarrowInbox&>;
    constexpr bool wide_ok = std::is_invocable_v<F&, NodeId, const Inbox&>;
    static_assert(narrow_ok || wide_ok,
                  "drain program must accept (NodeId, const Inbox&) or "
                  "(NodeId, const NarrowInbox&)");
    if constexpr (narrow_ok) {
      if (format_ == SlotFormat::kNarrow) {
        drain_as<NarrowSlot>(fn);
        return;
      }
    }
    if constexpr (wide_ok) {
      DEC_REQUIRE(format_ == SlotFormat::kWide,
                  "wide-only drain program on a narrow-format network");
      drain_as<Message>(fn);
      return;
    }
    DEC_REQUIRE(false, "narrow-only drain program on a wide-format network");
  }

  /// drain_fast on a specific slot plane (see round_as). Throws on a
  /// single-plane lease: the next round's writes land IN the delivered
  /// slots, so there is no stable delivered plane to re-read — a pipelined
  /// (drain-using) protocol needs PlaneMode::kDouble.
  template <class Slot, class F>
  void drain_as(F&& fn) {
    if (mode_ == PlaneMode::kSingle) throw_single_plane_drain();
    auto visit = [&](int shard) {
      const NodeId vend = shard_begin_[static_cast<std::size_t>(shard) + 1];
      for (NodeId v = shard_begin_[static_cast<std::size_t>(shard)]; v < vend;
           ++v) {
        const std::size_t lo = offsets_[static_cast<std::size_t>(v)];
        const std::size_t deg = offsets_[static_cast<std::size_t>(v) + 1] - lo;
        if constexpr (std::is_same_v<Slot, Message>) {
          const Inbox in(in_, peer_slot_ + lo, deg, epoch_);
          fn(v, in);
        } else {
          const NarrowInbox in(this, nin_, peer_slot_ + lo, deg, epoch_);
          fn(v, in);
        }
      }
    };
    const int num_shards = topo_->num_shards();
    if (pool_ != nullptr && num_shards > 1) {
      pool_->run([&](int shard) {
        if (shard < num_shards) visit(shard);
      });
    } else {
      visit(0);
    }
  }

  /// Install (or clear, with null) the cooperative cancellation token.
  /// Checked once per round at the barrier (top of begin_round, before any
  /// round state is touched): a tripped token throws SolverAborted and
  /// leaves the network in its exact post-last-round state — the previous
  /// round's delivery still readable, no abort_round needed. The token must
  /// outlive its installation; pooled leases clear it on release.
  void set_cancel(CancelToken* cancel) { cancel_ = cancel; }
  CancelToken* cancel() const { return cancel_; }

  /// Rounds executed so far on this network (since construction or the last
  /// reset()/rebind()).
  std::int64_t rounds_executed() const { return rounds_; }

  const CongestAudit& audit() const { return audit_; }
  const Graph& graph() const { return *g_; }
  const std::shared_ptr<const NetworkTopology>& topology() const {
    return topo_;
  }
  int num_threads() const { return topo_->num_shards(); }

  /// Heap bytes of this run state: the message buffer planes that exist
  /// (whichever format is active — the other's vectors stay at capacity 0;
  /// a single-plane state never sizes its `b` plane, so it counts exactly
  /// one), per-shard spill arenas and touched lists. Excludes the shared plan
  /// (NetworkTopology::memory_bytes) and the graph (Graph::memory_bytes) —
  /// the three together are the per-node budget docs/ARCHITECTURE.md
  /// "Graph storage & scale" tracks.
  std::size_t memory_bytes() const {
    std::size_t bytes =
        (buf_a_.capacity() + buf_b_.capacity()) * sizeof(Message) +
        (nbuf_a_.capacity() + nbuf_b_.capacity()) * sizeof(NarrowSlot);
    for (const auto& sh : shards_) {
      bytes += sh.slab_a.capacity_bytes() + sh.slab_b.capacity_bytes();
      bytes += sh.touched.capacity() * sizeof(std::uint32_t);
    }
    bytes += shard_slot_begin_.capacity() * sizeof(std::size_t);
    return bytes;
  }

  /// Slot-plane format (structural, fixed at construction).
  SlotFormat slot_format() const { return format_; }
  /// Plane mode (structural, fixed at construction): kDouble swaps a plane
  /// pair at the barrier, kSingle owns one plane and alternates slot
  /// ownership with round parity (drain banned).
  PlaneMode plane_mode() const { return mode_; }
  /// Ledger component this run state charges (error-message context).
  const std::string& component() const { return component_; }
  /// Declared max per-message field count of the current lease (0 on a wide
  /// plane means unchecked).
  int declared_fields() const { return declared_fields_; }

  // Slot-plane introspection (tests and tools).
  std::size_t num_slots() const { return topo_->num_slots(); }
  std::size_t slot(NodeId v, std::size_t i) const {
    return offsets_[static_cast<std::size_t>(v)] + i;
  }
  std::size_t peer_slot(std::size_t s) const { return peer_slot_[s]; }

 private:
  template <bool kDirect>
  friend class BasicInbox;   // throw_single_plane_hazard
  friend class NarrowInbox;  // resolve_spill, throw_single_plane_hazard
  friend class NarrowRef;    // throw_width_violation

  void begin_round();
  void finish_round();
  void abort_round();
  void bind_ledger(RoundLedger* ledger, std::string component);
  void bind_plan();  // (re)size buffers/shards + slab bindings for topo_
  void point_planes();  // in_/out_ (or nin_/nout_) per format_/mode_, parity a

  /// Actionable declared-width violation (satellite 2): names the protocol
  /// component, round, node, slot, and declared-vs-actual field count.
  [[noreturn]] void throw_width_violation(NodeId v, std::size_t slot,
                                          int declared, int actual) const;

  /// Actionable drain-on-single-plane error (component, round context).
  [[noreturn]] void throw_single_plane_drain() const;

  /// Actionable single-plane read-after-write hazard: node v read inbox
  /// entry i after writing the outbox slot that shares its storage.
  [[noreturn]] void throw_single_plane_hazard(NodeId v, std::size_t entry) const;

  /// Resolve a narrow slot's spilled payload in the plane currently being
  /// READ. The owning shard comes from the slot index (shard_slot_begin_);
  /// the read plane's slab is the one begin_round did NOT rewind, so the
  /// previous round's blocks are intact both mid-round and during a drain.
  /// On a single plane the writer of the previous round is the slot's peer
  /// in even rounds (odd-round writes go through the permutation), so the
  /// shard lookup first maps the slot to the writing side.
  const std::int64_t* resolve_spill(std::size_t slot,
                                    std::uint32_t spill) const {
    if (mode_ == PlaneMode::kSingle && out_is_a_) slot = peer_slot_[slot];
    std::size_t s = 0;
    while (shard_slot_begin_[s + 1] <= slot) ++s;
    const Shard& sh = shards_[s];
    const MessageSlab& slab = out_is_a_ ? sh.slab_b : sh.slab_a;
    return slab.at_index(spill);
  }

  // run_shard_impl's compile-time plane/parity variant: the double-plane
  // instantiation constructs its boxes with literal kNoHazardEpoch / null
  // rebind slab, so after inlining the single-plane tests in the box
  // accessors constant-fold away and the loop compiles to exactly the
  // two-plane hot path it was before plane modes existed.
  enum class ShardMode { kDoublePlane, kSingleEven, kSingleOdd };

  template <class Slot, class F>
  void run_shard_as(F& fn, int shard) {
    if (mode_ != PlaneMode::kSingle) {
      run_shard_impl<Slot, ShardMode::kDoublePlane>(fn, shard);
    } else if (out_is_a_) {
      run_shard_impl<Slot, ShardMode::kSingleEven>(fn, shard);
    } else {
      run_shard_impl<Slot, ShardMode::kSingleOdd>(fn, shard);
    }
  }

  template <class Slot, ShardMode kMode, class F>
  void run_shard_impl(F& fn, int shard) {
    Shard& sh = shards_[static_cast<std::size_t>(shard)];
    const std::uint32_t write_epoch = epoch_;
    const std::uint32_t read_epoch = epoch_ - 1;
    const NodeId vend = shard_begin_[static_cast<std::size_t>(shard) + 1];
    constexpr bool kWidePlane = std::is_same_v<Slot, Message>;
    MessageSlab* write_slab = out_is_a_ ? &sh.slab_a : &sh.slab_b;
    // Single-plane parity mapping (docs/ARCHITECTURE.md "Plane modes"): in
    // even rounds (out_is_a_) a node reads AND writes its own CSR slots; in
    // odd rounds both go through the peer permutation. Either way each slot
    // has exactly one accessing node per round, and last round's write sits
    // exactly where this round's read looks — delivery without a swap.
    constexpr bool single = kMode != ShardMode::kDoublePlane;
    constexpr bool in_direct = kMode == ShardMode::kSingleEven;
    constexpr bool out_peer = kMode == ShardMode::kSingleOdd;
    const std::uint32_t hazard = single ? write_epoch : kNoHazardEpoch;
    for (NodeId v = shard_begin_[static_cast<std::size_t>(shard)]; v < vend;
         ++v) {
      const std::size_t lo = offsets_[static_cast<std::size_t>(v)];
      const std::size_t deg = offsets_[static_cast<std::size_t>(v) + 1] - lo;
      // Box addressing is always buf[map[i]] with the round's base slot
      // folded into buf; the compile-time mode only picks each box's
      // (base, map) pair — the node's first slot with the L1-resident iota
      // map for direct rounds, base 0 with the node's peer-permutation
      // slice for delivered ones — so the accessors carry no mode test, no
      // per-access add, and the selects below fold per instantiation.
      const std::uint32_t* in_map = in_direct ? iota_ : peer_slot_ + lo;
      const std::size_t in_base = in_direct ? lo : 0;
      const std::uint32_t* out_map = out_peer ? peer_slot_ + lo : iota_;
      const std::size_t out_base = out_peer ? 0 : lo;
      if constexpr (kWidePlane) {
        // Fully-inlined programs (generic lambdas) get the affine kDirect
        // instantiations on direct rounds — no map load, the codegen of the
        // pre-single-plane engine. Programs that name Inbox/Outbox (and the
        // erased StepFn wrapper) take the uniform map path, whose single
        // compiled body serves every plane mode.
        using InT = BasicInbox<in_direct>;
        using OutT = BasicOutbox<!out_peer>;
        if constexpr (std::is_invocable_v<F&, NodeId, const InT&, OutT&>) {
          const InT in(in_ + in_base, in_map, deg, read_epoch, hazard, this,
                       v);
          OutT out(out_ + out_base, out_map, deg, write_epoch,
                   static_cast<std::uint32_t>(out_base), &sh.touched,
                   write_slab);
          fn(v, in, out);
        } else {
          const Inbox in(in_ + in_base, in_map, deg, read_epoch, hazard, this,
                         v);
          Outbox out(out_ + out_base, out_map, deg, write_epoch,
                     static_cast<std::uint32_t>(out_base), &sh.touched,
                     write_slab);
          fn(v, in, out);
        }
      } else {
        const NarrowInbox in(this, nin_ + in_base, in_map, deg, read_epoch,
                             static_cast<std::uint32_t>(in_base), hazard, v);
        NarrowOutbox out(nout_ + out_base, out_map,
                         static_cast<std::uint32_t>(out_base), write_slab,
                         this, v, deg, write_epoch, &sh.touched,
                         declared_fields_);
        fn(v, in, out);
      }
    }
    // Audit this shard's sent slots while still on the worker; merged (max /
    // sum, order-independent) at the barrier. The wide plane also enforces a
    // positive declared width here (the narrow plane enforces it in
    // NarrowRef::push, before any slab traffic). In a single plane's odd
    // rounds the touched slot lives on the receiver's side, so the sender
    // for the error message is the slot's peer.
    if constexpr (kWidePlane) {
      for (const std::uint32_t s : sh.touched) {
        const Message& m = out_[s];
        if (declared_fields_ > 0 &&
            m.size() > static_cast<std::size_t>(declared_fields_)) {
          throw_width_violation(node_of_slot(out_peer ? peer_slot_[s] : s), s,
                                declared_fields_, static_cast<int>(m.size()));
        }
        sh.audit.observe(m);
      }
    } else {
      for (const std::uint32_t s : sh.touched) {
        const NarrowSlot& slot = nout_[s];
        const std::uint32_t c = slot.count();
        if (c <= 1) {
          sh.audit.observe(
              std::span<const std::int64_t>(&slot.payload_, c));
        } else {
          sh.audit.observe(std::span<const std::int64_t>(
              write_slab->at_index(slot.spill()), c));
        }
      }
    }
  }

  /// Owning node of a global slot index (binary search over the CSR
  /// offsets). Error-path only — never on the hot path.
  NodeId node_of_slot(std::size_t slot) const;

  struct Shard {
    MessageSlab slab_a, slab_b;  // spill arenas for buf_a_ / buf_b_ slots
    std::vector<std::uint32_t> touched;
    CongestAudit audit;
  };

  const Graph* g_;
  std::shared_ptr<const NetworkTopology> topo_;
  // Hot-path views into *topo_ (refreshed by bind_plan).
  const std::size_t* offsets_ = nullptr;
  const std::uint32_t* peer_slot_ = nullptr;
  const std::uint32_t* iota_ = nullptr;  // iota map (direct rounds)
  const NodeId* shard_begin_ = nullptr;

  RoundLedger* ledger_ = nullptr;
  std::optional<RoundLedger::Counter> counter_;  // cached ledger slot
  CancelToken* cancel_ = nullptr;  // not owned; null = no cancellation
  std::int64_t rounds_ = 0;
  CongestAudit audit_;
  // Write epoch of the round in progress. Monotonic across reset()/rebind()
  // (never rewound past construction), so stale slot tags from earlier runs
  // can never equal a future read epoch. uint32 wrap would take 4G rounds on
  // one run state; regarded as unreachable.
  std::uint32_t epoch_ = 0;

  // Exactly one plane pair is sized, per format_; the other stays at
  // capacity 0. Keeping both as plain members (rather than templating the
  // class) preserves SyncNetwork as one concrete type for the pool and
  // service layers. In PlaneMode::kSingle only the `a` plane of the active
  // format is sized and in_/out_ (nin_/nout_) both point at it; out_is_a_
  // then tracks round parity (true ⟺ the round in progress is even).
  std::vector<Message> buf_a_, buf_b_;
  Message* in_ = nullptr;   // delivered messages of the previous round
  Message* out_ = nullptr;  // slots being written this round
  std::vector<NarrowSlot> nbuf_a_, nbuf_b_;
  NarrowSlot* nin_ = nullptr;
  NarrowSlot* nout_ = nullptr;
  bool out_is_a_ = true;
  // A mid-round abort on a single plane has already overwritten some of last
  // round's deliveries in place, so the pre-round state is unrecoverable;
  // the network poisons itself and the next begin_round throws until
  // reset(). Barrier-point aborts (cancellation, begin_round fault points)
  // never touch a slot and never poison.
  bool poisoned_ = false;

  SlotFormat format_ = SlotFormat::kWide;  // structural; never changes
  PlaneMode mode_ = PlaneMode::kDouble;    // structural; never changes
  int declared_fields_ = 0;                // per-lease declared max width
  std::string component_;                  // retained for error messages
  // Global slot index at each shard's first slot (num_shards + 1 entries);
  // lets narrow spill resolution find the owning shard's slab.
  std::vector<std::size_t> shard_slot_begin_;

  // Resizing may move Shards (and their slabs); bind_plan re-binds every
  // slot's slab pointer afterwards, so no Message ever holds a stale slab.
  std::vector<Shard> shards_;
  std::unique_ptr<ThreadPool> pool_;  // null in serial mode
};

// Defined here (not in-class) because they need the complete SyncNetwork.

template <bool kDirect>
inline const Message& BasicInbox<kDirect>::operator[](std::size_t i) const {
  const Message& m = buf_[kDirect ? i : map_[i]];
  if (m.epoch() == epoch_) return m;
  // Stale path only: on double planes hazard_ is kNoHazardEpoch (never a
  // real tag), so the live-read cost is exactly the pre-plane-mode path.
  if (m.epoch() == hazard_) net_->throw_single_plane_hazard(v_, i);
  return kEmptyMessage;
}

inline NarrowView NarrowInbox::operator[](std::size_t i) const {
  const std::uint32_t off = map_[i];
  const NarrowSlot& s = buf_[off];
  if (s.epoch() != epoch_) {
    if (s.epoch() == hazard_) net_->throw_single_plane_hazard(v_, i);
    return {};
  }
  const std::uint32_t c = s.count();
  if (c <= 1) return {&s.payload_, c};
  return {net_->resolve_spill(base_ + off, s.spill()), c};
}

inline void NarrowRef::push(std::int64_t v) {
  const std::uint32_t c = slot_->count();
  // Enforce the declared width BEFORE any slab traffic, so an overflowing
  // program throws without corrupting the spill arena.
  if (static_cast<int>(c) >= declared_) {
    net_->throw_width_violation(v_, slot_index_, declared_,
                                static_cast<int>(c) + 1);
  }
  if (c == 0) {
    slot_->payload_ = v;
  } else {
    if (c == 1) {
      // Second field: move inline payload into a slab block of exactly the
      // declared width (allocated once; never grown).
      const std::uint32_t idx =
          slab_->allocate_index(static_cast<std::size_t>(declared_));
      slab_->at_index(idx)[0] = slot_->payload_;
      slot_->set_spill(idx);
    }
    slab_->at_index(slot_->spill())[c] = v;
  }
  slot_->set_count(c + 1);
}

/// SyncNetwork with the parallel round engine on: nodes are sharded across a
/// persistent thread pool (num_threads = 0 picks hardware concurrency).
/// Produces bit-identical results and audits to the serial engine.
class ParallelSyncNetwork : public SyncNetwork {
 public:
  explicit ParallelSyncNetwork(const Graph& g, RoundLedger* ledger = nullptr,
                               std::string component = "network",
                               int num_threads = 0);
};

}  // namespace dec
