// Synchronous message-passing network over an undirected Graph.
//
// This is the LOCAL / CONGEST model: computation proceeds in rounds; in each
// round every node reads the messages its neighbors sent in the previous
// round, computes, and writes one (possibly empty) message per incident
// edge. Node callbacks only ever see last-round messages plus their own
// state, so execution order within a round is unobservable and the engine is
// free to run nodes serially (id order) or sharded across threads.
//
// The substrate splits into two layers (full architecture notes, including
// the slot plane, epoch tagging, swap delivery, and the parallel round
// engine, live in docs/ARCHITECTURE.md):
//
//  * Plan: an immutable NetworkTopology (sim/topology.hpp) — CSR slot
//    offsets, peer-slot permutation, shard partition — planned once per
//    graph shape and shared by shared_ptr.
//
//  * Run state: this class — the two message buffer planes, slab arenas,
//    epoch counter, round count, audit, and thread pool. Constructible from
//    a cached plan, O(1)-resettable (reset()) and rebindable to a new graph
//    (rebind()) without replanning; NetworkPool (sim/pool.hpp) arenas both.
//
// The round hot path is allocation-free: messages are small-buffer-optimized
// (spill to a per-shard MessageSlab), slot validity is epoch-tagged (no
// clear sweeps), and delivery is a buffer-pointer swap through the peer
// permutation. Serial and sharded execution are bit-identical.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/cancel.hpp"
#include "sim/ledger.hpp"
#include "sim/message.hpp"
#include "sim/slab.hpp"
#include "sim/thread_pool.hpp"
#include "sim/topology.hpp"

namespace dec {

/// Read-only view of one node's incoming messages for the current round.
/// Entry i corresponds to g.neighbors(v)[i]; slots whose epoch tag is stale
/// (neighbor sent nothing) read as the canonical empty message.
class Inbox {
 public:
  Inbox(const Message* buf, const std::uint32_t* peer, std::size_t n,
        std::uint32_t epoch)
      : buf_(buf), peer_(peer), n_(n), epoch_(epoch) {}

  const Message& operator[](std::size_t i) const {
    const Message& m = buf_[peer_[i]];
    return m.epoch() == epoch_ ? m : kEmptyMessage;
  }

  std::size_t size() const { return n_; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Message;
    using reference = const Message&;
    using pointer = const Message*;
    using difference_type = std::ptrdiff_t;

    const_iterator(const Inbox* box, std::size_t i) : box_(box), i_(i) {}
    reference operator*() const { return (*box_)[i_]; }
    pointer operator->() const { return &(*box_)[i_]; }
    const_iterator& operator++() { ++i_; return *this; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const Inbox* box_;
    std::size_t i_;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, n_}; }

 private:
  const Message* buf_;          // global inbox slot base
  const std::uint32_t* peer_;   // this node's slice of the peer permutation
  std::size_t n_;
  std::uint32_t epoch_;
};

/// Write view of one node's outgoing slots for the current round. Slots are
/// lazily reset on first touch (epoch-tag check), so untouched slots cost
/// nothing and there is no per-round clear sweep.
class Outbox {
 public:
  Outbox(Message* buf, std::size_t n, std::uint32_t epoch, std::uint32_t base,
         std::vector<std::uint32_t>* touched)
      : buf_(buf), n_(n), epoch_(epoch), base_(base), touched_(touched) {}

  Message& operator[](std::size_t i) {
    Message& m = buf_[i];
    if (m.epoch() != epoch_) {
      m.reset_storage();  // storage may point into a since-reset slab
      m.set_epoch(epoch_);
      touched_->push_back(base_ + static_cast<std::uint32_t>(i));
    }
    return m;
  }

  std::size_t size() const { return n_; }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Message;
    using reference = Message&;
    using pointer = Message*;
    using difference_type = std::ptrdiff_t;

    iterator(Outbox* box, std::size_t i) : box_(box), i_(i) {}
    reference operator*() const { return (*box_)[i_]; }
    pointer operator->() const { return &(*box_)[i_]; }
    iterator& operator++() { ++i_; return *this; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    Outbox* box_;
    std::size_t i_;
  };

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, n_}; }

 private:
  Message* buf_;  // this node's first outbox slot
  std::size_t n_;
  std::uint32_t epoch_;
  std::uint32_t base_;  // global slot index of buf_[0]
  std::vector<std::uint32_t>* touched_;
};

class SyncNetwork {
 public:
  /// Plan-and-run convenience: plans a fresh topology for `g`. `component`
  /// names the ledger line that rounds are charged to; `ledger` may be null
  /// (rounds still counted locally). `num_threads` > 1 enables the parallel
  /// round engine (see ParallelSyncNetwork).
  explicit SyncNetwork(const Graph& g, RoundLedger* ledger = nullptr,
                       std::string component = "network", int num_threads = 1);

  /// Build run state on an existing (typically cached) plan. `topo` must fit
  /// `g` (same shape — see NetworkTopology::matches); the shard count is the
  /// plan's.
  SyncNetwork(const Graph& g, std::shared_ptr<const NetworkTopology> topo,
              RoundLedger* ledger = nullptr, std::string component = "network");

  /// Return to the just-constructed state in O(num_shards): one epoch bump
  /// invalidates every slot of both buffer planes (including the last
  /// delivered inbox), slabs rewind, rounds/audit clear. No slot sweeps, no
  /// replanning, no allocation.
  void reset();

  /// reset() plus re-pointing the ledger charge line (pooled networks are
  /// reused across solvers with different ledgers/components).
  void reset(RoundLedger* ledger, std::string component);

  /// Re-target this run state at a different graph/plan, reusing buffer and
  /// shard storage (no allocation when the new plan needs no more slots or
  /// shards than this state ever had). O(num_slots) when the plan changes —
  /// slab bindings follow the new shard partition — and O(num_shards) when
  /// `topo` is the plan already bound (degenerates to reset()).
  void rebind(const Graph& g, std::shared_ptr<const NetworkTopology> topo,
              RoundLedger* ledger = nullptr, std::string component = "network");

  /// Node program for one round: read `inbox`, fill `outbox` (both sized
  /// degree(v); outbox slots read as empty until written).
  using StepFn =
      std::function<void(NodeId v, const Inbox& inbox, Outbox& outbox)>;

  /// Execute one synchronous round and charge it to the ledger.
  void round(const StepFn& fn) { round_fast(fn); }

  /// Same, but `fn` stays a concrete callable — no std::function type
  /// erasure on the per-node call. Use this from solver inner loops. With
  /// num_threads > 1, `fn` is invoked concurrently from pool workers and
  /// must confine writes to its own node's state and outbox.
  template <class F>
  void round_fast(F&& fn) {
    begin_round();
    try {
      // The retained pool may carry more workers than the current plan has
      // shards (it only ever grows across rebinds); surplus workers no-op.
      const int num_shards = topo_->num_shards();
      if (pool_ != nullptr && num_shards > 1) {
        pool_->run([&](int shard) {
          if (shard < num_shards) run_shard(fn, shard);
        });
      } else {
        run_shard(fn, 0);
      }
    } catch (...) {
      abort_round();  // roll back to the pre-round state, then rethrow
      throw;
    }
    finish_round();
  }

  /// Read-only visit of the messages delivered by the last executed round:
  /// `fn(v, inbox)` runs for every node, nothing is sent, no round is
  /// charged. Receiving plus local computation is free in the round model;
  /// pipelined solvers use this to consume their final round's replies.
  /// Runs sharded under the parallel engine with the same confinement rules
  /// as round_fast.
  template <class F>
  void drain_fast(F&& fn) {
    auto visit = [&](int shard) {
      const NodeId vend = shard_begin_[static_cast<std::size_t>(shard) + 1];
      for (NodeId v = shard_begin_[static_cast<std::size_t>(shard)]; v < vend;
           ++v) {
        const std::size_t lo = offsets_[static_cast<std::size_t>(v)];
        const std::size_t deg = offsets_[static_cast<std::size_t>(v) + 1] - lo;
        const Inbox in(in_, peer_slot_ + lo, deg, epoch_);
        fn(v, in);
      }
    };
    const int num_shards = topo_->num_shards();
    if (pool_ != nullptr && num_shards > 1) {
      pool_->run([&](int shard) {
        if (shard < num_shards) visit(shard);
      });
    } else {
      visit(0);
    }
  }

  /// Install (or clear, with null) the cooperative cancellation token.
  /// Checked once per round at the barrier (top of begin_round, before any
  /// round state is touched): a tripped token throws SolverAborted and
  /// leaves the network in its exact post-last-round state — the previous
  /// round's delivery still readable, no abort_round needed. The token must
  /// outlive its installation; pooled leases clear it on release.
  void set_cancel(CancelToken* cancel) { cancel_ = cancel; }
  CancelToken* cancel() const { return cancel_; }

  /// Rounds executed so far on this network (since construction or the last
  /// reset()/rebind()).
  std::int64_t rounds_executed() const { return rounds_; }

  const CongestAudit& audit() const { return audit_; }
  const Graph& graph() const { return *g_; }
  const std::shared_ptr<const NetworkTopology>& topology() const {
    return topo_;
  }
  int num_threads() const { return topo_->num_shards(); }

  /// Heap bytes of this run state: both message buffer planes, per-shard
  /// spill arenas and touched lists. Excludes the shared plan
  /// (NetworkTopology::memory_bytes) and the graph (Graph::memory_bytes) —
  /// the three together are the per-node budget docs/ARCHITECTURE.md
  /// "Graph storage & scale" tracks.
  std::size_t memory_bytes() const {
    std::size_t bytes =
        (buf_a_.capacity() + buf_b_.capacity()) * sizeof(Message);
    for (const auto& sh : shards_) {
      bytes += sh.slab_a.capacity_bytes() + sh.slab_b.capacity_bytes();
      bytes += sh.touched.capacity() * sizeof(std::uint32_t);
    }
    return bytes;
  }

  // Slot-plane introspection (tests and tools).
  std::size_t num_slots() const { return topo_->num_slots(); }
  std::size_t slot(NodeId v, std::size_t i) const {
    return offsets_[static_cast<std::size_t>(v)] + i;
  }
  std::size_t peer_slot(std::size_t s) const { return peer_slot_[s]; }

 private:
  void begin_round();
  void finish_round();
  void abort_round();
  void bind_ledger(RoundLedger* ledger, std::string component);
  void bind_plan();  // (re)size buffers/shards + slab bindings for topo_

  template <class F>
  void run_shard(F& fn, int shard) {
    Shard& sh = shards_[static_cast<std::size_t>(shard)];
    const std::uint32_t write_epoch = epoch_;
    const std::uint32_t read_epoch = epoch_ - 1;
    const NodeId vend = shard_begin_[static_cast<std::size_t>(shard) + 1];
    for (NodeId v = shard_begin_[static_cast<std::size_t>(shard)]; v < vend;
         ++v) {
      const std::size_t lo = offsets_[static_cast<std::size_t>(v)];
      const std::size_t deg = offsets_[static_cast<std::size_t>(v) + 1] - lo;
      const Inbox in(in_, peer_slot_ + lo, deg, read_epoch);
      Outbox out(out_ + lo, deg, write_epoch,
                 static_cast<std::uint32_t>(lo), &sh.touched);
      fn(v, in, out);
    }
    // Audit this shard's sent slots while still on the worker; merged (max /
    // sum, order-independent) at the barrier.
    for (const std::uint32_t s : sh.touched) sh.audit.observe(out_[s]);
  }

  struct Shard {
    MessageSlab slab_a, slab_b;  // spill arenas for buf_a_ / buf_b_ slots
    std::vector<std::uint32_t> touched;
    CongestAudit audit;
  };

  const Graph* g_;
  std::shared_ptr<const NetworkTopology> topo_;
  // Hot-path views into *topo_ (refreshed by bind_plan).
  const std::size_t* offsets_ = nullptr;
  const std::uint32_t* peer_slot_ = nullptr;
  const NodeId* shard_begin_ = nullptr;

  RoundLedger* ledger_ = nullptr;
  std::optional<RoundLedger::Counter> counter_;  // cached ledger slot
  CancelToken* cancel_ = nullptr;  // not owned; null = no cancellation
  std::int64_t rounds_ = 0;
  CongestAudit audit_;
  // Write epoch of the round in progress. Monotonic across reset()/rebind()
  // (never rewound past construction), so stale slot tags from earlier runs
  // can never equal a future read epoch. uint32 wrap would take 4G rounds on
  // one run state; regarded as unreachable.
  std::uint32_t epoch_ = 0;

  std::vector<Message> buf_a_, buf_b_;
  Message* in_ = nullptr;   // delivered messages of the previous round
  Message* out_ = nullptr;  // slots being written this round
  bool out_is_a_ = true;

  // Resizing may move Shards (and their slabs); bind_plan re-binds every
  // slot's slab pointer afterwards, so no Message ever holds a stale slab.
  std::vector<Shard> shards_;
  std::unique_ptr<ThreadPool> pool_;  // null in serial mode
};

/// SyncNetwork with the parallel round engine on: nodes are sharded across a
/// persistent thread pool (num_threads = 0 picks hardware concurrency).
/// Produces bit-identical results and audits to the serial engine.
class ParallelSyncNetwork : public SyncNetwork {
 public:
  explicit ParallelSyncNetwork(const Graph& g, RoundLedger* ledger = nullptr,
                               std::string component = "network",
                               int num_threads = 0);
};

}  // namespace dec
