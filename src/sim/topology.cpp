#include "sim/topology.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace dec {

std::shared_ptr<const NetworkTopology> NetworkTopology::plan(const Graph& g,
                                                             int num_threads) {
  DEC_REQUIRE(num_threads >= 1, "num_threads must be >= 1");
  auto topo = std::shared_ptr<NetworkTopology>(new NetworkTopology());
  topo->n_ = g.num_nodes();
  topo->offsets_.assign(static_cast<std::size_t>(g.num_nodes()) + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    topo->offsets_[static_cast<std::size_t>(v) + 1] =
        topo->offsets_[static_cast<std::size_t>(v)] + g.neighbors(v).size();
  }
  const std::size_t slots = topo->offsets_.back();
  // Slot indices are stored as uint32 (peer permutation, touched lists);
  // int32 edge ids keep 2m below 2^32, but guard against silent wrap if
  // that ever changes.
  DEC_REQUIRE(slots <= static_cast<std::size_t>(UINT32_MAX) - 1,
              "slot plane too large for 32-bit slot indices");

  // Where does the message written at slot (v, i) arrive? At the slot of the
  // same edge in the neighbor's adjacency. Pair up the two slots per edge.
  topo->peer_slot_.assign(slots, 0);
  std::vector<std::uint32_t> first_slot_of_edge(
      static_cast<std::size_t>(g.num_edges()),
      static_cast<std::uint32_t>(-1));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const std::uint32_t slot = static_cast<std::uint32_t>(
          topo->offsets_[static_cast<std::size_t>(v)] + i);
      auto& first = first_slot_of_edge[static_cast<std::size_t>(nb[i].edge)];
      if (first == static_cast<std::uint32_t>(-1)) {
        first = slot;
      } else {
        topo->peer_slot_[slot] = first;
        topo->peer_slot_[first] = slot;
      }
    }
  }

  // Iota map for direct-addressed rounds (see iota_map()); sized to the
  // largest degree so every box's entries index into it.
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree,
                          topo->offsets_[static_cast<std::size_t>(v) + 1] -
                              topo->offsets_[static_cast<std::size_t>(v)]);
  }
  topo->iota_map_.resize(max_degree);
  for (std::size_t i = 0; i < max_degree; ++i) {
    topo->iota_map_[i] = static_cast<std::uint32_t>(i);
  }

  // Shard nodes into contiguous ranges balanced by slot count.
  const int shards =
      std::max(1, std::min<int>(num_threads, g.num_nodes() + 1));
  topo->num_shards_ = shards;
  topo->shard_begin_.assign(static_cast<std::size_t>(shards) + 1,
                            g.num_nodes());
  topo->shard_begin_[0] = 0;
  {
    NodeId v = 0;
    for (int s = 0; s < shards; ++s) {
      topo->shard_begin_[static_cast<std::size_t>(s)] = v;
      const std::size_t target = (slots * (static_cast<std::size_t>(s) + 1)) /
                                 static_cast<std::size_t>(shards);
      while (v < g.num_nodes() &&
             topo->offsets_[static_cast<std::size_t>(v)] < target) {
        ++v;
      }
    }
    topo->shard_begin_.back() = g.num_nodes();
  }
  return topo;
}

bool NetworkTopology::matches(const Graph& g) const {
  if (g.num_nodes() != n_) return false;
  if (static_cast<std::size_t>(2) * static_cast<std::size_t>(g.num_edges()) !=
      num_slots()) {
    return false;
  }
  for (NodeId v = 0; v < n_; ++v) {
    const std::size_t deg = offsets_[static_cast<std::size_t>(v) + 1] -
                            offsets_[static_cast<std::size_t>(v)];
    if (deg != g.neighbors(v).size()) return false;
  }
  return true;
}

namespace {

Graph build_support(const Digraph& dg) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(static_cast<std::size_t>(dg.num_arcs()));
  for (EdgeId a = 0; a < dg.num_arcs(); ++a) {
    const auto [u, v] = dg.arc(a);
    pairs.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return Graph(dg.num_nodes(), std::move(pairs));
}

}  // namespace

std::shared_ptr<const DiTopology> DiTopology::plan(const Digraph& dg,
                                                   int num_threads) {
  auto topo = std::shared_ptr<DiTopology>(new DiTopology());
  topo->support_ = build_support(dg);
  const Graph& support = topo->support_;
  topo->net_topo_ = NetworkTopology::plan(support, num_threads);
  const std::size_t num_arcs = static_cast<std::size_t>(dg.num_arcs());
  // Lane scratch slots are addressed as num_arcs + arc id in uint32 (the
  // pack lists below): guard the doubled arc count the same way the
  // undirected plan guards its 2m slot plane, so planning at the 1M+ scale
  // fails with a message instead of wrapping.
  DEC_REQUIRE(2 * num_arcs <= static_cast<std::size_t>(UINT32_MAX) - 1,
              "arc plane too large for 32-bit scratch slot indices");

  // Incidence index of the support edge {u, v} inside u's adjacency; the
  // adjacency is sorted by neighbor and simple, so binary search is exact.
  auto incidence_of = [&](NodeId u, NodeId v) {
    const auto nb = support.neighbors(u);
    const auto it = std::lower_bound(
        nb.begin(), nb.end(), v,
        [](const Incidence& inc, NodeId t) { return inc.neighbor < t; });
    DEC_CHECK(it != nb.end() && it->neighbor == v,
              "support graph is missing an arc's node pair");
    return static_cast<std::uint32_t>(it - nb.begin());
  };

  // Group arcs by support edge to assign lanes, flat counting-sort style
  // (lane order within a pair is ascending arc id — the invariant both
  // endpoints' packing and extraction rely on).
  const std::size_t num_edges = static_cast<std::size_t>(support.num_edges());
  std::vector<std::uint32_t> lane_count(num_edges, 0);
  std::vector<EdgeId> arc_edge(num_arcs);  // support edge of each arc
  topo->ref_.resize(num_arcs);
  for (EdgeId a = 0; a < dg.num_arcs(); ++a) {
    const auto [u, v] = dg.arc(a);
    ArcRef& ref = topo->ref_[static_cast<std::size_t>(a)];
    ref.tail_inc = incidence_of(u, v);
    ref.head_inc = incidence_of(v, u);
    const EdgeId e =
        support.neighbors(u)[ref.tail_inc].edge;  // found above, no re-search
    arc_edge[static_cast<std::size_t>(a)] = e;
    ref.lane = lane_count[static_cast<std::size_t>(e)]++;
  }
  for (EdgeId a = 0; a < dg.num_arcs(); ++a) {
    topo->ref_[static_cast<std::size_t>(a)].lane_count = lane_count
        [static_cast<std::size_t>(arc_edge[static_cast<std::size_t>(a)])];
  }
  topo->max_lane_count_ = 1;
  for (const std::uint32_t c : lane_count) {
    if (c > topo->max_lane_count_) topo->max_lane_count_ = c;
  }

  // Per-incidence packing lists: for v's incidence of edge e, the scratch
  // slots of v's side of every lane of e, in lane order.
  topo->soff_.assign(static_cast<std::size_t>(support.num_nodes()) + 1, 0);
  for (NodeId v = 0; v < support.num_nodes(); ++v) {
    topo->soff_[static_cast<std::size_t>(v) + 1] =
        topo->soff_[static_cast<std::size_t>(v)] + support.neighbors(v).size();
  }
  topo->pack_off_.assign(topo->soff_.back() + 1, 0);
  for (NodeId v = 0; v < support.num_nodes(); ++v) {
    const auto nb = support.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      topo->pack_off_[topo->soff_[static_cast<std::size_t>(v)] + i + 1] =
          lane_count[static_cast<std::size_t>(nb[i].edge)];
    }
  }
  for (std::size_t i = 1; i < topo->pack_off_.size(); ++i) {
    topo->pack_off_[i] += topo->pack_off_[i - 1];
  }
  // Fill each incidence's list in lane order: arcs arrive in ascending arc
  // id, which is exactly lane order within a support edge, so each arc's
  // position in its incidence lists is its own lane index.
  topo->pack_.resize(topo->pack_off_.back());
  for (EdgeId a = 0; a < dg.num_arcs(); ++a) {
    const auto [u, v] = dg.arc(a);
    const ArcRef& ref = topo->ref_[static_cast<std::size_t>(a)];
    const std::size_t iu =
        topo->soff_[static_cast<std::size_t>(u)] + ref.tail_inc;
    const std::size_t iv =
        topo->soff_[static_cast<std::size_t>(v)] + ref.head_inc;
    topo->pack_[topo->pack_off_[iu] + ref.lane] = static_cast<std::uint32_t>(a);
    topo->pack_[topo->pack_off_[iv] + ref.lane] =
        static_cast<std::uint32_t>(num_arcs + static_cast<std::size_t>(a));
  }
  return topo;
}

bool DiTopology::matches(const Digraph& dg) const {
  if (dg.num_nodes() != support_.num_nodes()) return false;
  if (dg.num_arcs() != num_arcs()) return false;
  // Strong O(m) check: every arc's endpoints must sit at the planned support
  // incidences (catches any arc-set mismatch that would mis-deliver).
  for (EdgeId a = 0; a < dg.num_arcs(); ++a) {
    const auto [u, v] = dg.arc(a);
    const ArcRef& ref = ref_[static_cast<std::size_t>(a)];
    const auto nu = support_.neighbors(u);
    const auto nv = support_.neighbors(v);
    if (ref.tail_inc >= nu.size() || nu[ref.tail_inc].neighbor != v) {
      return false;
    }
    if (ref.head_inc >= nv.size() || nv[ref.head_inc].neighbor != u) {
      return false;
    }
  }
  return true;
}

}  // namespace dec
