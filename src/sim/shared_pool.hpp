// SharedNetworkPool: the concurrent, multi-tenant arena behind NetworkPool.
//
// One process serving many solver jobs wants exactly one place where
// topology plans and run states live, so that tenants submitting the same
// graph shape plan once and recycle each other's buffers. This class is that
// place. It is safe to call from any number of threads concurrently:
//
//  * Topology cache, sharded by shape fingerprint. Cached plans are spread
//    over kNumShards shards (shard = fingerprint mod kNumShards); each shard
//    is an append-only, fixed-capacity entry array with an atomically
//    published count. The repeat-shape fast path — the common case once a
//    shape is warm — acquire-loads the count and scans the published
//    entries without taking any lock (entries are never mutated after the
//    release-store that publishes them, so the scan is race-free by
//    construction — deliberately NOT std::atomic<shared_ptr>, whose
//    libstdc++ implementation is not TSan-clean). Misses take the shard's
//    mutex, re-check (so concurrent tenants submitting the same new shape
//    plan exactly once; the losers of the race count as hits), plan, and
//    append. A full shard freezes: later new shapes in it are planned but
//    not cached (hot shapes arrive early in a service's life, so the frozen
//    set is the working set; generation-based reclamation is the upgrade
//    path if workloads ever churn shapes). As in the single-threaded pool,
//    a fingerprint hit is verified against the full stored edge list before
//    the plan is shared, so bit-identity is unconditional.
//
//  * Run-state free lists, guarded per shard. Released SyncNetwork /
//    DiNetwork run states park in the shard of the plan they were last bound
//    to, under that shard's state mutex. A tenant acquiring a warm shape
//    first looks in the shape's home shard — where it tends to find a state
//    already bound to the exact plan (O(shards) reset instead of a rebind) —
//    then steals from the other shards before constructing fresh.
//
// Leases never come from this class directly: tenants go through a
// NetworkPool (sim/pool.hpp), which is a thin thread-confined view over one
// SharedNetworkPool. The view keeps the run states it has acquired for its
// own lifetime (leases stay on the view's thread; no per-lease lock
// traffic) and parks them back here when it is destroyed. Thread safety is
// therefore split: everything on this class is thread-safe; everything on a
// view is confined to the thread that constructed it (debug-asserted there).
//
// All leased/adopted run states run with this pool's shard count
// (num_threads), like the single-threaded pool before it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/dinetwork.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace dec {

class SharedNetworkPool {
 public:
  /// All adopted networks run with `num_threads` shards (0 picks hardware
  /// concurrency, like ParallelSyncNetwork).
  explicit SharedNetworkPool(int num_threads = 1);

  SharedNetworkPool(const SharedNetworkPool&) = delete;
  SharedNetworkPool& operator=(const SharedNetworkPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Plan-or-fetch the topology for a graph shape. Thread-safe; repeat
  /// shapes take no lock. Concurrent first requests for one shape plan it
  /// exactly once (the shard mutex serializes the planners; the losers
  /// observe the winner's entry and count as hits).
  std::shared_ptr<const NetworkTopology> topology(const Graph& g);
  std::shared_ptr<const DiTopology> topology(const Digraph& dg);

  // ---- run-state arena (NetworkPool views call these; thread-safe) ----

  /// Pop a parked run state, preferring one last bound to `plan_key`'s
  /// shard (and within it, to `plan_key` itself); null if none is parked
  /// anywhere. Only run states whose structural slot format equals `format`
  /// AND whose plane mode equals `mode` are candidates — a narrow run state
  /// is NEVER adopted for a wide lease, a single-plane state is NEVER
  /// adopted for a double-plane lease, or vice versa (the caller
  /// reconstructs instead); both are fixed at construction and rebind
  /// cannot change them. The caller rebinds/resets before use.
  std::unique_ptr<SyncNetwork> adopt_network(const NetworkTopology* plan_key,
                                             SlotFormat format,
                                             PlaneMode mode);
  std::unique_ptr<DiNetwork> adopt_dinetwork(const DiTopology* plan_key,
                                             SlotFormat format,
                                             PlaneMode mode);

  /// Park a run state for other tenants, in its bound plan's shard.
  void park(std::unique_ptr<SyncNetwork> net);
  void park(std::unique_ptr<DiNetwork> net);

  // ---- stats (atomic; cache hit rate and plans shared for the service) --

  /// One coherent snapshot of the topology-cache counters. Hits and misses
  /// are packed into a single 64-bit atomic (32 bits each), so a single
  /// relaxed load yields a pair that existed at one instant — a rate
  /// computed from it always agrees with hits + misses, which two separate
  /// counter loads cannot guarantee under concurrent lookups. The packing
  /// caps each counter at 2^32 lookups; a service would need years of
  /// sustained traffic to wrap, and the stats are diagnostics, not control
  /// flow.
  struct TopologyCounters {
    std::int64_t hits = 0;    // plans shared (cache hits)
    std::int64_t misses = 0;  // plans built (cache misses)
  };
  TopologyCounters topology_counters() const {
    const std::uint64_t v = lookups_.load(std::memory_order_relaxed);
    return {static_cast<std::int64_t>(v >> 32),
            static_cast<std::int64_t>(v & 0xffffffffull)};
  }
  std::int64_t topology_hits() const { return topology_counters().hits; }
  std::int64_t topology_misses() const { return topology_counters().misses; }
  std::size_t cached_topologies() const;
  /// Run states currently parked (not counting those held by live views).
  std::size_t parked_run_states() const {
    return static_cast<std::size_t>(parked_.load(std::memory_order_relaxed));
  }

 private:
  /// Shape-fingerprint shards of the topology cache and run-state lists.
  static constexpr std::size_t kNumShards = 16;
  /// Per-shard cap on cached plans (per-phase game shapes rarely repeat,
  /// so an unbounded cache would grow by one plan per phase; a full shard
  /// freezes — it keeps serving its entries, later new shapes go uncached).
  static constexpr std::size_t kMaxCachedPerShard = 8;
  /// Per-shard cap on parked run states of each kind; beyond it a parked
  /// state is simply dropped (its memory returns to the allocator).
  static constexpr std::size_t kMaxParkedPerShard = 8;

  template <class Topo>
  struct TopoEntry {
    std::uint64_t fingerprint;
    std::vector<std::pair<NodeId, NodeId>> shape;
    NodeId n;
    std::shared_ptr<const Topo> topo;
  };

  /// Append-only entry array + atomically published count. Readers
  /// acquire-load `count` and scan entries[0, count) lock-free; writers
  /// (under `mu`) construct entries[count] fully, then release-store the
  /// incremented count. Published entries are immutable.
  template <class Topo>
  struct TopoShard {
    std::mutex mu;  // serializes planners (appends)
    std::atomic<std::uint32_t> count{0};
    std::array<TopoEntry<Topo>, kMaxCachedPerShard> entries;
  };

  struct StateShard {
    std::mutex mu;
    std::vector<std::unique_ptr<SyncNetwork>> nets;
    std::vector<std::unique_ptr<DiNetwork>> dinets;
  };

  static std::size_t shard_of_key(const void* plan_key) {
    // Mix the pointer so allocation alignment does not bias the shard.
    auto p = reinterpret_cast<std::uintptr_t>(plan_key);
    return static_cast<std::size_t>((p >> 4) * 0x9e3779b97f4a7c15ull >> 32) %
           kNumShards;
  }

  template <class Topo, class ShapeView, class PlanFn>
  std::shared_ptr<const Topo> find_or_plan(TopoShard<Topo>* shards, NodeId n,
                                           const ShapeView& shape,
                                           PlanFn&& plan);

  template <class Net, class Topo>
  std::unique_ptr<Net> adopt(std::vector<std::unique_ptr<Net>> StateShard::*
                                 list,
                             const Topo* plan_key, SlotFormat format,
                             PlaneMode mode);
  template <class Net>
  void park_in(std::vector<std::unique_ptr<Net>> StateShard::* list,
               std::unique_ptr<Net> net, const void* plan_key);

  /// Increments for the packed hit/miss counter (see topology_counters()).
  static constexpr std::uint64_t kHitUnit = 1ull << 32;
  static constexpr std::uint64_t kMissUnit = 1ull;

  int num_threads_;
  TopoShard<NetworkTopology> net_shards_[kNumShards];
  TopoShard<DiTopology> di_shards_[kNumShards];
  StateShard state_shards_[kNumShards];
  /// Hits (high 32 bits) and misses (low 32 bits) in one word, so stats
  /// snapshots are coherent with a single load.
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::int64_t> parked_{0};
};

}  // namespace dec
