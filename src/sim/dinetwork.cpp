#include "sim/dinetwork.hpp"

#include <algorithm>
#include <utility>

namespace dec {

namespace {

std::pair<NodeId, NodeId> support_pair(NodeId u, NodeId v) {
  return {std::min(u, v), std::max(u, v)};
}

}  // namespace

Graph DiNetwork::build_support(const Digraph& dg) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(static_cast<std::size_t>(dg.num_arcs()));
  for (EdgeId a = 0; a < dg.num_arcs(); ++a) {
    const auto [u, v] = dg.arc(a);
    pairs.push_back(support_pair(u, v));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return Graph(dg.num_nodes(), std::move(pairs));
}

DiNetwork::DiNetwork(const Digraph& dg, RoundLedger* ledger,
                     std::string component, int num_threads)
    : dg_(&dg),
      support_(build_support(dg)),
      net_(support_, ledger, std::move(component), num_threads) {
  const std::size_t num_arcs = static_cast<std::size_t>(dg.num_arcs());

  // Incidence index of the support edge {u, v} inside u's adjacency; the
  // adjacency is sorted by neighbor and simple, so binary search is exact.
  auto incidence_of = [&](NodeId u, NodeId v) {
    const auto nb = support_.neighbors(u);
    const auto it = std::lower_bound(
        nb.begin(), nb.end(), v,
        [](const Incidence& inc, NodeId t) { return inc.neighbor < t; });
    DEC_CHECK(it != nb.end() && it->neighbor == v,
              "support graph is missing an arc's node pair");
    return static_cast<std::uint32_t>(it - nb.begin());
  };

  // Group arcs by support edge to assign lanes (arc-id order within a pair).
  std::vector<std::vector<EdgeId>> edge_arcs(
      static_cast<std::size_t>(support_.num_edges()));
  ref_.resize(num_arcs);
  for (EdgeId a = 0; a < dg.num_arcs(); ++a) {
    const auto [u, v] = dg.arc(a);
    const EdgeId e = support_.find_edge(u, v);
    DEC_CHECK(e != kInvalidEdge, "arc pair missing from the support graph");
    edge_arcs[static_cast<std::size_t>(e)].push_back(a);
    ref_[static_cast<std::size_t>(a)].tail_inc = incidence_of(u, v);
    ref_[static_cast<std::size_t>(a)].head_inc = incidence_of(v, u);
  }
  for (auto& lanes : edge_arcs) {
    // push order is ascending arc id already; keep the sort as documentation
    // of the lane invariant both endpoints rely on.
    std::sort(lanes.begin(), lanes.end());
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      ref_[static_cast<std::size_t>(lanes[l])].lane =
          static_cast<std::uint32_t>(l);
      ref_[static_cast<std::size_t>(lanes[l])].lane_count =
          static_cast<std::uint32_t>(lanes.size());
    }
  }

  // Per-incidence packing lists: for v's incidence of edge e, the scratch
  // slots of v's side of every lane of e, in lane order.
  soff_.assign(static_cast<std::size_t>(support_.num_nodes()) + 1, 0);
  for (NodeId v = 0; v < support_.num_nodes(); ++v) {
    soff_[static_cast<std::size_t>(v) + 1] =
        soff_[static_cast<std::size_t>(v)] + support_.neighbors(v).size();
  }
  pack_off_.assign(soff_.back() + 1, 0);
  for (NodeId v = 0; v < support_.num_nodes(); ++v) {
    const auto nb = support_.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      pack_off_[soff_[static_cast<std::size_t>(v)] + i + 1] =
          edge_arcs[static_cast<std::size_t>(nb[i].edge)].size();
    }
  }
  for (std::size_t i = 1; i < pack_off_.size(); ++i) {
    pack_off_[i] += pack_off_[i - 1];
  }
  pack_.resize(pack_off_.back());
  for (NodeId v = 0; v < support_.num_nodes(); ++v) {
    const auto nb = support_.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      std::size_t w = pack_off_[soff_[static_cast<std::size_t>(v)] + i];
      for (const EdgeId a : edge_arcs[static_cast<std::size_t>(nb[i].edge)]) {
        const bool is_tail = dg.arc(a).first == v;
        pack_[w++] = is_tail ? static_cast<std::uint32_t>(a)
                             : static_cast<std::uint32_t>(num_arcs + a);
      }
    }
  }

  scratch_len_.assign(2 * num_arcs, 0);
  scratch_fields_.assign(2 * num_arcs * kMaxArcFields, 0);
}

void DiNetwork::clear_scratch(NodeId v) {
  const std::size_t lo = soff_[static_cast<std::size_t>(v)];
  const std::size_t hi = soff_[static_cast<std::size_t>(v) + 1];
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t k = pack_off_[i]; k < pack_off_[i + 1]; ++k) {
      scratch_len_[pack_[k]] = 0;
    }
  }
}

void DiNetwork::send(std::size_t slot,
                     std::initializer_list<std::int64_t> fields) {
  DEC_REQUIRE(fields.size() <= kMaxArcFields,
              "arc payload wider than the adapter's per-lane capacity");
  scratch_len_[slot] = static_cast<std::uint32_t>(fields.size());
  std::int64_t* d = scratch_fields_.data() + slot * kMaxArcFields;
  for (const std::int64_t f : fields) *d++ = f;
}

void DiNetwork::pack(NodeId v, Outbox& out) {
  const std::size_t lo = soff_[static_cast<std::size_t>(v)];
  const std::size_t hi = soff_[static_cast<std::size_t>(v) + 1];
  for (std::size_t i = lo; i < hi; ++i) {
    const std::size_t plo = pack_off_[i];
    const std::size_t phi = pack_off_[i + 1];
    bool any = false;
    for (std::size_t k = plo; k < phi && !any; ++k) {
      any = scratch_len_[pack_[k]] > 0;
    }
    if (!any) continue;  // slot untouched: nothing goes on the wire
    Message& m = out[i - lo];
    const bool framed = phi - plo > 1;
    for (std::size_t k = plo; k < phi; ++k) {
      const std::uint32_t len = scratch_len_[pack_[k]];
      if (framed) m.push(static_cast<std::int64_t>(len));
      const std::int64_t* f = scratch_fields_.data() + pack_[k] * kMaxArcFields;
      for (std::uint32_t t = 0; t < len; ++t) m.push(f[t]);
    }
  }
}

ArcView DiNetwork::extract(const Message& m, const ArcRef& ref) const {
  if (m.empty()) return {};
  const auto f = m.fields();
  if (ref.lane_count == 1) return {f.data(), f.size()};
  std::size_t pos = 0;
  for (std::uint32_t l = 0; l < ref.lane_count; ++l) {
    DEC_CHECK(pos < f.size(), "malformed multi-lane message");
    const std::size_t len = static_cast<std::size_t>(f[pos]);
    ++pos;
    if (l == ref.lane) return len == 0 ? ArcView{} : ArcView{f.data() + pos, len};
    pos += len;
  }
  DEC_CHECK(false, "lane index beyond the edge's lane count");
  return {};
}

}  // namespace dec
