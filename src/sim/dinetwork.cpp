#include "sim/dinetwork.hpp"

#include <utility>

namespace dec {

namespace {

std::shared_ptr<const DiTopology> require_topo(
    std::shared_ptr<const DiTopology> topo) {
  DEC_REQUIRE(topo != nullptr, "null topology");
  return topo;
}

}  // namespace

DiNetwork::DiNetwork(const Digraph& dg, RoundLedger* ledger,
                     std::string component, int num_threads)
    : DiNetwork(dg, DiTopology::plan(dg, num_threads), ledger,
                std::move(component)) {}

DiNetwork::DiNetwork(const Digraph& dg, std::shared_ptr<const DiTopology> topo,
                     RoundLedger* ledger, std::string component)
    : dg_(&dg),
      topo_(require_topo(std::move(topo))),
      net_(topo_->support(), topo_->support_topology(), ledger,
           std::move(component)) {
  DEC_REQUIRE(topo_->matches(dg), "topology does not fit the digraph");
  bind_plan();
}

void DiNetwork::bind_plan() {
  ref_ = topo_->refs().data();
  soff_ = topo_->soff().data();
  pack_off_ = topo_->pack_off().data();
  pack_list_ = topo_->pack().data();
  const std::size_t channels =
      2 * static_cast<std::size_t>(topo_->num_arcs());
  // Stale scratch never leaks: clear_scratch runs per node before its step
  // reads or packs anything, so plain resize (capacity-reusing) suffices.
  scratch_len_.resize(channels);
  scratch_fields_.resize(channels * kMaxArcFields);
}

void DiNetwork::reset() { net_.reset(); }

void DiNetwork::reset(RoundLedger* ledger, std::string component) {
  net_.reset(ledger, std::move(component));
}

void DiNetwork::rebind(const Digraph& dg,
                       std::shared_ptr<const DiTopology> topo,
                       RoundLedger* ledger, std::string component) {
  DEC_REQUIRE(topo != nullptr, "null topology");
  DEC_REQUIRE(topo->matches(dg), "topology does not fit the digraph");
  dg_ = &dg;
  if (topo.get() == topo_.get()) {
    net_.reset(ledger, std::move(component));
    return;
  }
  topo_ = std::move(topo);
  net_.rebind(topo_->support(), topo_->support_topology(), ledger,
              std::move(component));
  bind_plan();
}

void DiNetwork::clear_scratch(NodeId v) {
  const std::size_t lo = soff_[static_cast<std::size_t>(v)];
  const std::size_t hi = soff_[static_cast<std::size_t>(v) + 1];
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t k = pack_off_[i]; k < pack_off_[i + 1]; ++k) {
      scratch_len_[pack_list_[k]] = 0;
    }
  }
}

void DiNetwork::send(std::size_t slot,
                     std::initializer_list<std::int64_t> fields) {
  DEC_REQUIRE(fields.size() <= kMaxArcFields,
              "arc payload wider than the adapter's per-lane capacity");
  scratch_len_[slot] = static_cast<std::uint32_t>(fields.size());
  std::int64_t* d = scratch_fields_.data() + slot * kMaxArcFields;
  for (const std::int64_t f : fields) *d++ = f;
}

void DiNetwork::pack(NodeId v, Outbox& out) {
  const std::size_t lo = soff_[static_cast<std::size_t>(v)];
  const std::size_t hi = soff_[static_cast<std::size_t>(v) + 1];
  for (std::size_t i = lo; i < hi; ++i) {
    const std::size_t plo = pack_off_[i];
    const std::size_t phi = pack_off_[i + 1];
    bool any = false;
    for (std::size_t k = plo; k < phi && !any; ++k) {
      any = scratch_len_[pack_list_[k]] > 0;
    }
    if (!any) continue;  // slot untouched: nothing goes on the wire
    Message& m = out[i - lo];
    const bool framed = phi - plo > 1;
    for (std::size_t k = plo; k < phi; ++k) {
      const std::uint32_t len = scratch_len_[pack_list_[k]];
      if (framed) m.push(static_cast<std::int64_t>(len));
      const std::int64_t* f =
          scratch_fields_.data() + pack_list_[k] * kMaxArcFields;
      for (std::uint32_t t = 0; t < len; ++t) m.push(f[t]);
    }
  }
}

ArcView DiNetwork::extract(const Message& m,
                           const DiTopology::ArcRef& ref) const {
  if (m.empty()) return {};
  const auto f = m.fields();
  if (ref.lane_count == 1) return {f.data(), f.size()};
  std::size_t pos = 0;
  for (std::uint32_t l = 0; l < ref.lane_count; ++l) {
    DEC_CHECK(pos < f.size(), "malformed multi-lane message");
    const std::size_t len = static_cast<std::size_t>(f[pos]);
    ++pos;
    if (l == ref.lane) return len == 0 ? ArcView{} : ArcView{f.data() + pos, len};
    pos += len;
  }
  DEC_CHECK(false, "lane index beyond the edge's lane count");
  return {};
}

}  // namespace dec
