#include "sim/dinetwork.hpp"

#include <string>
#include <utility>

namespace dec {

namespace {

std::shared_ptr<const DiTopology> require_topo(
    std::shared_ptr<const DiTopology> topo) {
  DEC_REQUIRE(topo != nullptr, "null topology");
  return topo;
}

// Derive the support network's per-slot plan from a per-arc plan: an
// unframed single-lane slot carries at most w fields; a framed multi-lane
// slot carries a length prefix plus payload per lane.
SlotPlan support_plan(const DiTopology& topo, SlotPlan arc_plan) {
  if (arc_plan.format == SlotFormat::kWide && arc_plan.max_fields == 0) {
    // Unchecked wide, today's behavior. The plane mode still forwards — it
    // is structural for the support network regardless of width checking.
    return {SlotFormat::kWide, 0, arc_plan.mode};
  }
  const int w = arc_plan.max_fields;
  const int lanes = static_cast<int>(topo.max_lane_count());
  const int support_w = lanes == 1 ? w : lanes * (1 + w);
  if (arc_plan.format == SlotFormat::kNarrow) {
    DEC_REQUIRE(support_w >= 1 &&
                    support_w <= static_cast<int>(NarrowSlot::kMaxFields),
                "narrow arc plan: framed support width exceeds the narrow "
                "slot's 255-field limit — use a wide arc plan for this "
                "digraph's lane multiplicity");
  }
  return {arc_plan.format, support_w, arc_plan.mode};
}

}  // namespace

DiNetwork::DiNetwork(const Digraph& dg, RoundLedger* ledger,
                     std::string component, int num_threads, SlotPlan arc_plan)
    : DiNetwork(dg, DiTopology::plan(dg, num_threads), ledger,
                std::move(component), arc_plan) {}

DiNetwork::DiNetwork(const Digraph& dg, std::shared_ptr<const DiTopology> topo,
                     RoundLedger* ledger, std::string component,
                     SlotPlan arc_plan)
    : dg_(&dg),
      topo_(require_topo(std::move(topo))),
      net_(topo_->support(), topo_->support_topology(), ledger,
           std::move(component), support_plan(*topo_, arc_plan)),
      arc_declared_(arc_plan.max_fields) {
  DEC_REQUIRE(topo_->matches(dg), "topology does not fit the digraph");
  bind_plan();
}

void DiNetwork::bind_plan() {
  ref_ = topo_->refs().data();
  soff_ = topo_->soff().data();
  pack_off_ = topo_->pack_off().data();
  pack_list_ = topo_->pack().data();
  const std::size_t channels =
      2 * static_cast<std::size_t>(topo_->num_arcs());
  // Stale scratch never leaks: clear_scratch runs per node before its step
  // reads or packs anything, so plain resize (capacity-reusing) suffices.
  scratch_len_.resize(channels);
  scratch_fields_.resize(channels * kMaxArcFields);
}

void DiNetwork::reset() { net_.reset(); }

void DiNetwork::reset(RoundLedger* ledger, std::string component) {
  net_.reset(ledger, std::move(component));
}

void DiNetwork::rebind(const Digraph& dg,
                       std::shared_ptr<const DiTopology> topo,
                       RoundLedger* ledger, std::string component) {
  DEC_REQUIRE(topo != nullptr, "null topology");
  DEC_REQUIRE(topo->matches(dg), "topology does not fit the digraph");
  dg_ = &dg;
  if (topo.get() == topo_.get()) {
    net_.reset(ledger, std::move(component));
    return;
  }
  topo_ = std::move(topo);
  net_.rebind(topo_->support(), topo_->support_topology(), ledger,
              std::move(component));
  bind_plan();
}

void DiNetwork::rebind(const Digraph& dg,
                       std::shared_ptr<const DiTopology> topo,
                       RoundLedger* ledger, std::string component,
                       SlotPlan arc_plan) {
  DEC_REQUIRE(topo != nullptr, "null topology");
  DEC_REQUIRE(topo->matches(dg), "topology does not fit the digraph");
  DEC_REQUIRE(arc_plan.format == net_.slot_format(),
              "rebind cannot change a network's slot format");
  DEC_REQUIRE(arc_plan.mode == net_.plane_mode(),
              "rebind cannot change a network's plane mode");
  dg_ = &dg;
  arc_declared_ = arc_plan.max_fields;
  const SlotPlan sp = support_plan(*topo, arc_plan);
  if (topo.get() == topo_.get()) {
    // Same plan shape, but the declared width may differ between leases —
    // the support rebind (same-topology fast path) updates it and resets.
    net_.rebind(topo_->support(), topo_->support_topology(), ledger,
                std::move(component), sp);
    return;
  }
  topo_ = std::move(topo);
  net_.rebind(topo_->support(), topo_->support_topology(), ledger,
              std::move(component), sp);
  bind_plan();
}

void DiNetwork::clear_scratch(NodeId v) {
  const std::size_t lo = soff_[static_cast<std::size_t>(v)];
  const std::size_t hi = soff_[static_cast<std::size_t>(v) + 1];
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t k = pack_off_[i]; k < pack_off_[i + 1]; ++k) {
      scratch_len_[pack_list_[k]] = 0;
    }
  }
}

void DiNetwork::send(std::size_t slot,
                     std::initializer_list<std::int64_t> fields) {
  DEC_REQUIRE(fields.size() <= kMaxArcFields,
              "arc payload wider than the adapter's per-lane capacity");
  if (arc_declared_ > 0 &&
      fields.size() > static_cast<std::size_t>(arc_declared_)) {
    const std::string msg =
        "arc payload wider than the protocol's declared arc plan: component "
        "'" + net_.component() + "' round " +
        std::to_string(net_.rounds_executed()) + ", arc channel " +
        std::to_string(slot) + " sent " + std::to_string(fields.size()) +
        " fields but the lease declared max_fields=" +
        std::to_string(arc_declared_) +
        " — raise the declared arc width; the substrate never truncates";
    DEC_CHECK(false, msg);
  }
  scratch_len_[slot] = static_cast<std::uint32_t>(fields.size());
  std::int64_t* d = scratch_fields_.data() + slot * kMaxArcFields;
  for (const std::int64_t f : fields) *d++ = f;
}

}  // namespace dec
