#include "sim/shared_pool.hpp"

#include "sim/thread_pool.hpp"

namespace dec {

namespace {

/// FNV-1a over the shape: node count then endpoint pairs. A hit is verified
/// against the stored edge list, so the hash only has to be selective, not
/// collision-free.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= kPrime;
  }
  return h;
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;

template <class ShapeView>
std::uint64_t shape_fingerprint(NodeId n, const ShapeView& pairs) {
  std::uint64_t h = fnv1a(kFnvBasis, static_cast<std::uint64_t>(n));
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto [a, b] = pairs[i];
    h = fnv1a(h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a))
                  << 32) |
                     static_cast<std::uint64_t>(static_cast<std::uint32_t>(b)));
  }
  return h;
}

/// Shape views over the two graph kinds: pair access without materializing
/// a list (the Digraph stores arcs CSR-side, not as one vector).
struct EdgeListView {
  const std::vector<std::pair<NodeId, NodeId>>& edges;
  std::size_t size() const { return edges.size(); }
  std::pair<NodeId, NodeId> operator[](std::size_t i) const {
    return edges[i];
  }
};

struct ArcListView {
  const Digraph& dg;
  std::size_t size() const {
    return static_cast<std::size_t>(dg.num_arcs());
  }
  std::pair<NodeId, NodeId> operator[](std::size_t i) const {
    return dg.arc(static_cast<EdgeId>(i));
  }
};

template <class ShapeView>
bool shape_equals(const std::vector<std::pair<NodeId, NodeId>>& stored,
                  const ShapeView& shape) {
  if (stored.size() != shape.size()) return false;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    if (stored[i] != shape[i]) return false;
  }
  return true;
}

template <class ShapeView>
std::vector<std::pair<NodeId, NodeId>> materialize(const ShapeView& shape) {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(shape.size());
  for (std::size_t i = 0; i < shape.size(); ++i) out.push_back(shape[i]);
  return out;
}

}  // namespace

SharedNetworkPool::SharedNetworkPool(int num_threads)
    : num_threads_(resolve_num_threads(num_threads)) {}

template <class Topo, class ShapeView, class PlanFn>
std::shared_ptr<const Topo> SharedNetworkPool::find_or_plan(
    TopoShard<Topo>* shards, NodeId n, const ShapeView& shape, PlanFn&& plan) {
  const std::uint64_t fp = shape_fingerprint(n, shape);
  TopoShard<Topo>& sh = shards[static_cast<std::size_t>(fp) % kNumShards];

  // Scan the published prefix entries[lo, hi). Published entries are
  // immutable, so this is race-free without any lock.
  const auto scan = [&](std::uint32_t lo,
                        std::uint32_t hi) -> std::shared_ptr<const Topo> {
    for (std::uint32_t i = lo; i < hi; ++i) {
      const TopoEntry<Topo>& e = sh.entries[i];
      if (e.fingerprint == fp && e.n == n && shape_equals(e.shape, shape)) {
        return e.topo;
      }
    }
    return nullptr;
  };

  // Lock-free fast path over the entries published so far.
  const std::uint32_t seen = sh.count.load(std::memory_order_acquire);
  if (auto topo = scan(0, seen)) {
    lookups_.fetch_add(kHitUnit, std::memory_order_relaxed);
    return topo;
  }

  std::lock_guard<std::mutex> lock(sh.mu);
  // Re-check what was appended while we waited for the mutex: a concurrent
  // tenant may have planned this shape, and planning twice would break the
  // exactly-once contract (and waste the work).
  const std::uint32_t now = sh.count.load(std::memory_order_acquire);
  if (auto topo = scan(seen, now)) {
    lookups_.fetch_add(kHitUnit, std::memory_order_relaxed);
    return topo;
  }
  lookups_.fetch_add(kMissUnit, std::memory_order_relaxed);
  std::shared_ptr<const Topo> topo = plan();
  if (now < kMaxCachedPerShard) {
    sh.entries[now] = {fp, materialize(shape), n, topo};
    sh.count.store(now + 1, std::memory_order_release);
  }
  // else: shard frozen — serve the plan uncached.
  return topo;
}

std::shared_ptr<const NetworkTopology> SharedNetworkPool::topology(
    const Graph& g) {
  return find_or_plan(net_shards_, g.num_nodes(), EdgeListView{g.edge_list()},
                      [&] { return NetworkTopology::plan(g, num_threads_); });
}

std::shared_ptr<const DiTopology> SharedNetworkPool::topology(
    const Digraph& dg) {
  return find_or_plan(di_shards_, dg.num_nodes(), ArcListView{dg},
                      [&] { return DiTopology::plan(dg, num_threads_); });
}

template <class Net, class Topo>
std::unique_ptr<Net> SharedNetworkPool::adopt(
    std::vector<std::unique_ptr<Net>> StateShard::* list,
    const Topo* plan_key, SlotFormat format, PlaneMode mode) {
  const std::size_t home = shard_of_key(plan_key);
  for (std::size_t step = 0; step < kNumShards; ++step) {
    StateShard& sh = state_shards_[(home + step) % kNumShards];
    std::lock_guard<std::mutex> lock(sh.mu);
    auto& parked = sh.*list;
    if (parked.empty()) continue;
    // Slot format and plane mode are structural: only a state matching both
    // is a candidate (rebind can re-declare the width but never swap planes
    // or plane counts). Newest-first keeps the historical LIFO behavior
    // among matches.
    std::size_t pick = parked.size();
    for (std::size_t i = parked.size(); i-- > 0;) {
      if (parked[i]->slot_format() == format &&
          parked[i]->plane_mode() == mode) {
        pick = i;
        break;
      }
    }
    if (pick == parked.size()) continue;  // no matching state here
    // In the home shard, prefer a state bound to this exact plan so the
    // caller's rebind degenerates to an O(shards) reset.
    if (step == 0) {
      for (std::size_t i = 0; i < parked.size(); ++i) {
        if (parked[i]->topology().get() == plan_key &&
            parked[i]->slot_format() == format &&
            parked[i]->plane_mode() == mode) {
          pick = i;
          break;
        }
      }
    }
    std::unique_ptr<Net> net = std::move(parked[pick]);
    parked.erase(parked.begin() + static_cast<std::ptrdiff_t>(pick));
    parked_.fetch_sub(1, std::memory_order_relaxed);
    return net;
  }
  return nullptr;
}

std::unique_ptr<SyncNetwork> SharedNetworkPool::adopt_network(
    const NetworkTopology* plan_key, SlotFormat format, PlaneMode mode) {
  return adopt(&StateShard::nets, plan_key, format, mode);
}

std::unique_ptr<DiNetwork> SharedNetworkPool::adopt_dinetwork(
    const DiTopology* plan_key, SlotFormat format, PlaneMode mode) {
  return adopt(&StateShard::dinets, plan_key, format, mode);
}

template <class Net>
void SharedNetworkPool::park_in(
    std::vector<std::unique_ptr<Net>> StateShard::* list,
    std::unique_ptr<Net> net, const void* plan_key) {
  StateShard& sh = state_shards_[shard_of_key(plan_key)];
  std::lock_guard<std::mutex> lock(sh.mu);
  auto& parked = sh.*list;
  if (parked.size() >= kMaxParkedPerShard) return;  // drop: arena is full
  parked.push_back(std::move(net));
  parked_.fetch_add(1, std::memory_order_relaxed);
}

void SharedNetworkPool::park(std::unique_ptr<SyncNetwork> net) {
  const void* key = net->topology().get();
  park_in(&StateShard::nets, std::move(net), key);
}

void SharedNetworkPool::park(std::unique_ptr<DiNetwork> net) {
  const void* key = net->topology().get();
  park_in(&StateShard::dinets, std::move(net), key);
}

std::size_t SharedNetworkPool::cached_topologies() const {
  std::size_t total = 0;
  for (const auto& sh : net_shards_) {
    total += sh.count.load(std::memory_order_acquire);
  }
  for (const auto& sh : di_shards_) {
    total += sh.count.load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace dec
