#include "sim/message.hpp"

#include <bit>

namespace dec {

int field_bits(std::int64_t v) {
  const std::uint64_t mag =
      v >= 0 ? static_cast<std::uint64_t>(v)
             : static_cast<std::uint64_t>(-(v + 1));  // |v|-1 for negatives
  const int mag_bits = mag == 0 ? 1 : 64 - std::countl_zero(mag);
  return mag_bits + 1;  // + sign bit
}

int message_bits(const Message& m) {
  int total = 0;
  for (const std::int64_t v : m.fields) total += field_bits(v);
  return total;
}

void CongestAudit::observe(const Message& m) {
  if (m.empty()) return;
  ++messages_;
  const int bits = message_bits(m);
  if (bits > max_bits_) max_bits_ = bits;
}

void CongestAudit::reset() {
  max_bits_ = 0;
  messages_ = 0;
}

}  // namespace dec
