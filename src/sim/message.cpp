#include "sim/message.hpp"

#include <algorithm>
#include <bit>

namespace dec {

void Message::grow(std::size_t needed) {
  const std::size_t new_cap =
      std::max<std::size_t>(needed, static_cast<std::size_t>(cap_) * 2);
  std::int64_t* fresh = slab_ != nullptr ? slab_->allocate(new_cap)
                                         : new std::int64_t[new_cap];
  const std::int64_t* src = data();
  for (std::uint32_t i = 0; i < size_; ++i) fresh[i] = src[i];
  release_heap();
  ext_ = fresh;
  owns_ext_ = slab_ == nullptr;
  cap_ = static_cast<std::uint32_t>(new_cap);
}

void Message::release_heap() {
  if (owns_ext_) {
    delete[] ext_;
    owns_ext_ = false;
  }
}

void CongestAudit::reset() {
  max_bits_ = 0;
  messages_ = 0;
}

void CongestAudit::merge(const CongestAudit& other) {
  max_bits_ = std::max(max_bits_, other.max_bits_);
  messages_ += other.messages_;
}

}  // namespace dec
