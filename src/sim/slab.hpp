// Bump-pointer slab arena for spilled message payloads.
//
// SyncNetwork messages store up to Message::kInlineFields fields inline; wider
// payloads spill into a MessageSlab owned by the network (one per shard per
// buffer generation). Allocation is a pointer bump, deallocation is a bulk
// reset() at the round boundary — individual blocks are never freed, so the
// round hot path performs no general-heap traffic. Chunks are retained across
// resets and reused, so a steady-state workload allocates nothing at all.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace dec {

class MessageSlab {
 public:
  MessageSlab() = default;
  MessageSlab(const MessageSlab&) = delete;
  MessageSlab& operator=(const MessageSlab&) = delete;
  MessageSlab(MessageSlab&&) = default;
  MessageSlab& operator=(MessageSlab&&) = default;

  /// Bump-allocate storage for `n` fields. Never freed individually; the
  /// block lives until the next reset().
  std::int64_t* allocate(std::size_t n);

  /// Bump-allocate an index-addressed block of `n` fields and return its
  /// field index (resolve with at_index). Unlike allocate(), every chunk on
  /// this path is exactly kChunkFields fields, so an index decomposes as
  /// chunk = idx >> kChunkShift, offset = idx & (kChunkFields - 1), and a
  /// block never straddles chunks. Serves the narrow slot plane, whose 24-bit
  /// spill indices cannot hold a pointer; a narrow-format network's slabs see
  /// only this path (format immutability — no oversized allocate() chunks
  /// ever mix in), so index addressing stays valid across reuse. Requires
  /// n <= kChunkFields; throws (actionably) past the 24-bit index space.
  std::uint32_t allocate_index(std::size_t n);

  /// Resolve an allocate_index() block.
  const std::int64_t* at_index(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift].data.get() +
           (idx & (kChunkFields - 1));
  }
  std::int64_t* at_index(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift].data.get() +
           (idx & (kChunkFields - 1));
  }

  /// Rewind the arena. All previously allocated blocks become invalid, but
  /// their chunks are kept for reuse.
  void reset();

  /// Fields currently allocated since the last reset (for tests/stats).
  std::size_t used() const { return used_; }

  /// Bytes held by the arena's chunks (kept across resets; for the memory
  /// budget report).
  std::size_t capacity_bytes() const {
    std::size_t bytes = 0;
    for (const auto& c : chunks_) bytes += c.size * sizeof(std::int64_t);
    return bytes;
  }

 private:
  static constexpr std::size_t kChunkShift = 14;
  static constexpr std::size_t kChunkFields = 1 << kChunkShift;  // 128 KiB

  struct Chunk {
    std::unique_ptr<std::int64_t[]> data;
    std::size_t size = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // index of the chunk currently bumped
  std::size_t offset_ = 0;  // fields used within chunks_[chunk_]
  std::size_t used_ = 0;    // total fields since last reset
};

}  // namespace dec
