#include "util/stats.hpp"

#include <algorithm>

namespace dec {

namespace {
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  s.p50 = percentile(values, 0.50);
  s.p95 = percentile(values, 0.95);
  s.p99 = percentile(values, 0.99);
  return s;
}

Summary summarize_ints(const std::vector<std::int64_t>& values) {
  std::vector<double> d(values.begin(), values.end());
  return summarize(std::move(d));
}

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  if (x > max_) max_ = x;
  if (x < min_) min_ = x;
}

}  // namespace dec
