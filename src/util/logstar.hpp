// log*, iterated-logarithm helpers.
//
// The paper's complexities are of the form poly log Δ + O(log* n); the round
// ledger and several algorithms need log* and ceil-log2 explicitly.
#pragma once

#include <cstdint>

namespace dec {

/// ceil(log2(x)) for x >= 1; 0 for x <= 1.
int ceil_log2(std::uint64_t x);

/// floor(log2(x)) for x >= 1. Requires x >= 1.
int floor_log2(std::uint64_t x);

/// Iterated logarithm: number of times log2 must be applied to reach <= 1.
int log_star(double x);

}  // namespace dec
