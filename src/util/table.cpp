#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace dec {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  DEC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DEC_REQUIRE(cells.size() == header_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_int(std::int64_t v) { return std::to_string(v); }

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_ratio(double num, double den, int precision) {
  if (den == 0.0) return "n/a";
  return fmt_double(num / den, precision);
}

std::string fmt_bool(bool v) { return v ? "yes" : "no"; }

}  // namespace dec
