#include "util/prime.hpp"

#include <array>

#ifdef __SIZEOF_INT128__
using uint128 = unsigned __int128;
#endif

namespace dec {

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
#ifdef __SIZEOF_INT128__
  return static_cast<std::uint64_t>((uint128(a) * b) % m);
#else
  // Russian-peasant fallback.
  std::uint64_t r = 0;
  a %= m;
  while (b) {
    if (b & 1) {
      r += a;
      if (r >= m) r -= m;
    }
    a <<= 1;
    if (a >= m) a -= m;
    b >>= 1;
  }
  return r;
#endif
}

std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  std::uint64_t r = 1 % m;
  a %= m;
  while (e) {
    if (e & 1) r = mul_mod(r, a, m);
    a = mul_mod(a, a, m);
    e >>= 1;
  }
  return r;
}

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  // This witness set is exact for all 64-bit integers (Sinclair 2011).
  for (std::uint64_t a : {2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL,
                          9780504ULL, 1795265022ULL}) {
    std::uint64_t x = pow_mod(a % n, d, n);
    if (x == 0 || x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 1; i < s; ++i) {
      x = mul_mod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) {
  if (n <= 2) return 2;
  std::uint64_t c = n | 1;  // first odd >= n
  if (c < n) c = n;         // overflow guard (unreachable for sane inputs)
  while (!is_prime(c)) c += 2;
  return c;
}

}  // namespace dec
