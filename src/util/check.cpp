#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dec::detail {

void check_failed(const char* kind, const char* cond, const char* file,
                  int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << kind << " violated: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

void dassert_failed(const char* cond, const char* file, int line,
                    const char* msg) {
  std::fprintf(stderr, "%s:%d: lifetime assertion violated: %s — %s\n", file,
               line, cond, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace dec::detail
