#include "util/check.hpp"

#include <sstream>

namespace dec::detail {

void check_failed(const char* kind, const char* cond, const char* file,
                  int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << kind << " violated: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace dec::detail
