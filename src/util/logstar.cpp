#include "util/logstar.hpp"

#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace dec {

int ceil_log2(std::uint64_t x) {
  if (x <= 1) return 0;
  return 64 - std::countl_zero(x - 1);
}

int floor_log2(std::uint64_t x) {
  DEC_REQUIRE(x >= 1, "floor_log2 needs x >= 1");
  return 63 - std::countl_zero(x);
}

int log_star(double x) {
  int k = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++k;
  }
  return k;
}

}  // namespace dec
