// Error handling primitives for the dec-polylog library.
//
// The library is exception-based: violated preconditions and broken internal
// invariants throw dec::CheckError with a formatted location + message. This
// keeps algorithm code assert-dense without ever aborting the host process,
// which matters for the simulator (a failed run must be reportable).
#pragma once

#include <stdexcept>
#include <string>

namespace dec {

/// Thrown when a DEC_CHECK / DEC_REQUIRE condition fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// A failure the thrower believes is worth retrying (resource pressure,
/// injected chaos faults — see testing/fault_injection.hpp). The
/// SolverService's bounded-retry policy re-runs jobs that fail with
/// TransientError or std::bad_alloc; every other exception is permanent.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* kind, const char* cond,
                               const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace dec

/// Internal invariant; always on (the algorithms are the product here, and the
/// cost of the checks is negligible next to the simulation itself).
#define DEC_CHECK(cond, msg)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dec::detail::check_failed("invariant", #cond, __FILE__, __LINE__,  \
                                  (msg));                                  \
    }                                                                      \
  } while (0)

/// Public API precondition.
#define DEC_REQUIRE(cond, msg)                                                \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::dec::detail::check_failed("precondition", #cond, __FILE__, __LINE__,  \
                                  (msg));                                     \
    }                                                                         \
  } while (0)

namespace dec::detail {
[[noreturn]] void dassert_failed(const char* cond, const char* file, int line,
                                 const char* msg);
}  // namespace dec::detail

/// Lifetime/ownership assertion (lease thread confinement, leases outliving
/// their pool). Unlike DEC_CHECK these fire from destructors, where throwing
/// would terminate with the context lost — so a violation prints the
/// location and aborts instead. The checked conditions are per-lease (never
/// per-round/per-message), so they stay on in every build; define
/// DEC_DISABLE_DASSERT to compile them out.
#ifdef DEC_DISABLE_DASSERT
#define DEC_DASSERT(cond, msg) \
  do {                         \
  } while (0)
#else
#define DEC_DASSERT(cond, msg)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::dec::detail::dassert_failed(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                     \
  } while (0)
#endif
