// Fixed-width table printer for the benchmark harness.
//
// Every EXP-* bench binary prints its result as a titled, aligned table with
// one row per parameter point, mirroring how a systems paper presents its
// evaluation. Cells are strings; helpers format numbers consistently.
#pragma once

#include <string>
#include <vector>

namespace dec {

class Table {
 public:
  Table(std::string title, std::vector<std::string> header);

  /// Append one row; must have as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns, title, and rule lines.
  std::string render() const;

  /// Render and write to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for table cells.
std::string fmt_int(std::int64_t v);
std::string fmt_double(double v, int precision = 2);
std::string fmt_ratio(double num, double den, int precision = 3);
std::string fmt_bool(bool v);

}  // namespace dec
