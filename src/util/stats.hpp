// Small online/offline statistics used by the benchmark harness to report
// distributions (defects, slacks, palette usage) the way the paper's bounds
// are stated: maxima with mean/percentile context.
#pragma once

#include <cstdint>
#include <vector>

namespace dec {

/// Summary of a sample of values.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Compute a Summary of `values` (copies and sorts internally).
Summary summarize(std::vector<double> values);

/// Convenience overload for integral samples.
Summary summarize_ints(const std::vector<std::int64_t>& values);

/// Accumulator for streaming max/mean without storing the sample.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double max() const { return max_; }
  double min() const { return min_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double max_ = -1.7976931348623157e308;
  double min_ = 1.7976931348623157e308;
};

}  // namespace dec
