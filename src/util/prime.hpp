// Prime-number helpers for the algebraic coloring constructions.
//
// Linial's O(Δ²)-coloring and the arithmetic-progression color reduction both
// work over a prime field GF(q); they need "smallest prime ≥ x" for x up to a
// few million, which deterministic Miller–Rabin covers comfortably.
#pragma once

#include <cstdint>

namespace dec {

/// Deterministic Miller–Rabin primality test, exact for all 64-bit inputs.
bool is_prime(std::uint64_t n);

/// Smallest prime >= n (n >= 0; returns 2 for n <= 2).
std::uint64_t next_prime(std::uint64_t n);

/// (a * b) mod m without overflow.
std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

/// (a ^ e) mod m.
std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e, std::uint64_t m);

}  // namespace dec
