// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through dec::Rng so that every
// experiment, test, and example is exactly reproducible from a seed. The
// engine is xoshiro256** seeded via SplitMix64, which is fast, has a long
// period, and is trivially portable (no libstdc++ distribution differences).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace dec {

/// SplitMix64 step; used for seeding and as a cheap hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** deterministic generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p in [0, 1].
  bool next_bool(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-module streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace dec
