#include "service/solver_service.hpp"

#include <new>
#include <utility>

#include "sim/pool.hpp"
#include "testing/fault_injection.hpp"
#include "util/check.hpp"

namespace dec {

SolverService::SolverService(ServiceConfig cfg)
    : cfg_(cfg), shared_pool_(cfg.engine_threads) {
  DEC_REQUIRE(cfg_.workers >= 0, "worker count must be non-negative");
  DEC_REQUIRE(cfg_.queue_capacity >= 1, "queue capacity must be positive");
  DEC_REQUIRE(cfg_.watchdog_period.count() > 0,
              "watchdog period must be positive");
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  watchdog_ = std::thread([this] { watchdog_main(); });
}

SolverService::~SolverService() { shutdown(); }

JobTicket SolverService::admit(SolverRequest req, SubmitOptions opts,
                               bool blocking) {
  DEC_REQUIRE(solver_registered(req.solver),
              "submit: unknown solver id: " + req.solver);
  auto job = std::make_shared<JobState>();
  job->req = std::move(req);
  job->opts = opts;
  JobTicket ticket;
  ticket.result = job->promise.get_future();

  RejectReason reject = RejectReason::kNone;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (blocking) {
      cv_not_full_.wait(lock, [this] {
        return stopping_ || queue_.size() < cfg_.queue_capacity;
      });
    }
    if (stopping_) {
      reject = RejectReason::kShuttingDown;
    } else if (queue_.size() >= cfg_.queue_capacity) {
      reject = RejectReason::kQueueFull;  // non-blocking path only
    } else {
      job->id = next_id_++;
      job->enqueued = std::chrono::steady_clock::now();
      if (opts.deadline.count() > 0) {
        job->deadline = job->enqueued + opts.deadline;
        job->has_deadline = true;
        job->token.set_deadline(job->deadline);
      }
      if (opts.round_budget > 0) {
        job->token.set_round_budget(opts.round_budget);
      }
      queue_.push_back(job);
      live_.emplace(job->id, job);
      ++submitted_;
    }
    if (reject != RejectReason::kNone) ++rejected_;
  }

  if (reject != RejectReason::kNone) {
    // Reject without queueing: the ticket's future is satisfied here, so
    // tenants can treat every future uniformly.
    SolverResult result;
    result.solver = job->req.solver;
    result.status = SolverStatus::kRejected;
    result.reject = reject;
    result.attempts = 0;
    job->promise.set_value(std::move(result));
    ticket.reject = reject;
    return ticket;
  }
  cv_not_empty_.notify_one();
  ticket.id = job->id;
  ticket.accepted = true;
  return ticket;
}

JobTicket SolverService::submit(SolverRequest req, SubmitOptions opts) {
  return admit(std::move(req), opts, /*blocking=*/true);
}

JobTicket SolverService::try_submit(SolverRequest req, SubmitOptions opts) {
  return admit(std::move(req), opts, /*blocking=*/false);
}

bool SolverService::cancel(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  it->second->token.request_cancel(AbortReason::kCancelled);
  return true;
}

void SolverService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void SolverService::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty() && !watchdog_.joinable()) return;
    stopping_ = true;
  }
  // Wake blocked submitters (they resolve their tickets as
  // Rejected{kShuttingDown}), idle workers, and the watchdog.
  cv_not_empty_.notify_all();
  cv_not_full_.notify_all();
  cv_watchdog_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (watchdog_.joinable()) watchdog_.join();

  // Whatever the workers could not drain (only possible with zero
  // workers) resolves here: cancelled/expired jobs with their own status,
  // the rest as Rejected{kShuttingDown}.
  std::deque<std::shared_ptr<JobState>> leftovers;
  {
    std::unique_lock<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  for (const std::shared_ptr<JobState>& job : leftovers) {
    SolverResult result;
    if (job->token.aborted()) {
      result = aborted_result(*job, job->token.reason(), /*attempts=*/0);
    } else {
      result.solver = job->req.solver;
      result.status = SolverStatus::kRejected;
      result.reject = RejectReason::kShuttingDown;
      result.attempts = 0;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      count_status(result);
      live_.erase(job->id);
    }
    job->promise.set_value(std::move(result));
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
  }
}

ServiceStats SolverService::stats() const {
  ServiceStats s;
  {
    std::unique_lock<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.deadline_exceeded = deadline_exceeded_;
    s.rejected = rejected_;
    s.retried = retried_;
    s.queued = queue_.size();
    s.running = static_cast<std::size_t>(in_flight_);
    // Averaged over jobs whose wait has been recorded (worker pickup), not
    // over finished jobs — a picked-up-but-running job's wait must not be
    // spread over a smaller denominator.
    s.avg_queue_wait_ms =
        waited_jobs_ > 0 ? static_cast<double>(wait_ns_total_) /
                               static_cast<double>(waited_jobs_) / 1e6
                         : 0.0;
    s.max_queue_wait_ms = static_cast<double>(wait_ns_max_) / 1e6;
  }
  s.plans_built = shared_pool_.topology_misses();
  s.plans_shared = shared_pool_.topology_hits();
  const std::int64_t lookups = s.plans_built + s.plans_shared;
  s.cache_hit_rate =
      lookups > 0
          ? static_cast<double>(s.plans_shared) / static_cast<double>(lookups)
          : 0.0;
  s.parked_run_states = shared_pool_.parked_run_states();
  return s;
}

SolverResult SolverService::aborted_result(const JobState& job,
                                           AbortReason reason,
                                           int attempts) const {
  SolverResult result;
  result.solver = job.req.solver;
  result.status = reason == AbortReason::kDeadlineExceeded
                      ? SolverStatus::kDeadlineExceeded
                      : SolverStatus::kCancelled;
  result.attempts = attempts;
  return result;
}

void SolverService::count_status(const SolverResult& result) {
  switch (result.status) {
    case SolverStatus::kOk:
      ++completed_;
      break;
    case SolverStatus::kFailed:
      ++failed_;
      break;
    case SolverStatus::kCancelled:
      ++cancelled_;
      break;
    case SolverStatus::kDeadlineExceeded:
      ++deadline_exceeded_;
      break;
    case SolverStatus::kRejected:
      ++rejected_;
      break;
  }
  if (result.attempts > 1) retried_ += result.attempts - 1;
}

SolverResult SolverService::run_job(JobState& job, NetworkPool& view) {
  int attempts = 0;
  for (;;) {
    // Pre-flight: a job cancelled or expired while it sat in the queue (or
    // between retry attempts) resolves without running a solver. Checked
    // without consuming round budget — the budget counts barriers only.
    if (!job.token.aborted() && job.has_deadline &&
        std::chrono::steady_clock::now() >= job.deadline) {
      job.token.request_cancel(AbortReason::kDeadlineExceeded);
    }
    if (job.token.aborted()) {
      return aborted_result(job, job.token.reason(), attempts);
    }
    ++attempts;
    try {
      DEC_FAULT_POINT_CTX("service.worker", &job.token);
      SolverResult result =
          execute_request(job.req, cfg_.engine_threads, &view, &job.token);
      result.attempts = attempts;
      return result;
    } catch (const SolverAborted& aborted) {
      return aborted_result(job, aborted.reason(), attempts);
    } catch (const std::exception& e) {
      // Transient failures (injected chaos, allocation pressure) retry on
      // a freshly reset lease; everything else is permanent. The what()
      // string — not the exception — travels to the tenant.
      const bool transient =
          dynamic_cast<const TransientError*>(&e) != nullptr ||
          dynamic_cast<const std::bad_alloc*>(&e) != nullptr;
      if (!transient || attempts > job.opts.max_retries) {
        SolverResult result;
        result.solver = job.req.solver;
        result.status = SolverStatus::kFailed;
        result.error = e.what();
        result.attempts = attempts;
        return result;
      }
      std::this_thread::sleep_for(job.opts.retry_backoff * attempts);
    }
  }
}

void SolverService::worker_main() {
  // The worker's thread-confined view over the shared arena: run states it
  // acquires stay warm across this worker's jobs and park for other tenants
  // when the service shuts down.
  NetworkPool view(shared_pool_);
  for (;;) {
    std::shared_ptr<JobState> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_not_empty_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      const auto waited = std::chrono::steady_clock::now() - job->enqueued;
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
              .count();
      ++waited_jobs_;
      wait_ns_total_ += ns;
      if (ns > wait_ns_max_) wait_ns_max_ = ns;
    }
    cv_not_full_.notify_one();

    SolverResult result = run_job(*job, view);
    // Count the job before satisfying its future (a tenant reading stats()
    // right after future.get() must see it), but keep it in flight until
    // the future is satisfied (drain() returning must imply every future
    // is ready).
    {
      std::unique_lock<std::mutex> lock(mu_);
      count_status(result);
    }
    job->promise.set_value(std::move(result));
    {
      std::unique_lock<std::mutex> lock(mu_);
      live_.erase(job->id);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void SolverService::watchdog_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_watchdog_.wait_for(lock, cfg_.watchdog_period,
                          [this] { return stopping_; });
    if (stopping_) return;  // drain relies on barrier/pre-flight checks
    const auto now = std::chrono::steady_clock::now();
    for (const auto& [id, job] : live_) {
      if (job->has_deadline && now >= job->deadline) {
        // Cooperative: the running solver observes the trip at its next
        // round barrier; a queued job resolves at pickup. This sweep is
        // what catches jobs sleeping *between* barriers (e.g. under
        // injected latency), where the barrier's own deadline check
        // cannot run.
        job->token.request_cancel(AbortReason::kDeadlineExceeded);
      }
    }
  }
}

}  // namespace dec
