#include "service/solver_service.hpp"

#include <optional>

#include "sim/pool.hpp"
#include "util/check.hpp"

namespace dec {

SolverService::SolverService(ServiceConfig cfg)
    : cfg_(cfg), shared_pool_(cfg.engine_threads) {
  DEC_REQUIRE(cfg_.workers >= 1, "service needs at least one worker");
  DEC_REQUIRE(cfg_.queue_capacity >= 1, "queue capacity must be positive");
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

SolverService::~SolverService() { shutdown(); }

bool SolverService::enqueue(Job job, bool blocking) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (blocking) {
      cv_not_full_.wait(lock, [this] {
        return stopping_ || queue_.size() < cfg_.queue_capacity;
      });
      DEC_REQUIRE(!stopping_, "submit after shutdown");
    } else if (stopping_ || queue_.size() >= cfg_.queue_capacity) {
      return false;
    }
    job.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(job));
    ++submitted_;
  }
  cv_not_empty_.notify_one();
  return true;
}

std::future<SolverResult> SolverService::submit(SolverRequest req) {
  DEC_REQUIRE(solver_registered(req.solver),
              "submit: unknown solver id: " + req.solver);
  Job job;
  job.req = std::move(req);
  std::future<SolverResult> fut = job.promise.get_future();
  enqueue(std::move(job), /*blocking=*/true);
  return fut;
}

bool SolverService::try_submit(SolverRequest req,
                               std::future<SolverResult>* out) {
  DEC_REQUIRE(solver_registered(req.solver),
              "try_submit: unknown solver id: " + req.solver);
  Job job;
  job.req = std::move(req);
  std::future<SolverResult> fut = job.promise.get_future();
  if (!enqueue(std::move(job), /*blocking=*/false)) return false;
  if (out != nullptr) *out = std::move(fut);
  return true;
}

void SolverService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void SolverService::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_not_empty_.notify_all();
  cv_not_full_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ServiceStats SolverService::stats() const {
  ServiceStats s;
  {
    std::unique_lock<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    // Averaged over jobs whose wait has been recorded (worker pickup), not
    // over finished jobs — a picked-up-but-running job's wait must not be
    // spread over a smaller denominator.
    s.avg_queue_wait_ms =
        waited_jobs_ > 0 ? static_cast<double>(wait_ns_total_) /
                               static_cast<double>(waited_jobs_) / 1e6
                         : 0.0;
    s.max_queue_wait_ms = static_cast<double>(wait_ns_max_) / 1e6;
  }
  s.plans_built = shared_pool_.topology_misses();
  s.plans_shared = shared_pool_.topology_hits();
  const std::int64_t lookups = s.plans_built + s.plans_shared;
  s.cache_hit_rate =
      lookups > 0
          ? static_cast<double>(s.plans_shared) / static_cast<double>(lookups)
          : 0.0;
  s.parked_run_states = shared_pool_.parked_run_states();
  return s;
}

void SolverService::worker_main() {
  // The worker's thread-confined view over the shared arena: run states it
  // acquires stay warm across this worker's jobs and park for other tenants
  // when the service shuts down.
  NetworkPool view(shared_pool_);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_not_empty_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      const auto waited = std::chrono::steady_clock::now() - job.enqueued;
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
              .count();
      ++waited_jobs_;
      wait_ns_total_ += ns;
      if (ns > wait_ns_max_) wait_ns_max_ = ns;
    }
    cv_not_full_.notify_one();

    std::optional<SolverResult> result;
    std::exception_ptr error;
    try {
      result = execute_request(job.req, cfg_.engine_threads, &view);
    } catch (...) {
      error = std::current_exception();
    }
    // Count the job before satisfying its future (a tenant reading stats()
    // right after future.get() must see it), but keep it in flight until
    // the future is satisfied (drain() returning must imply every future
    // is ready).
    {
      std::unique_lock<std::mutex> lock(mu_);
      (result.has_value() ? completed_ : failed_) += 1;
    }
    if (result.has_value()) {
      job.promise.set_value(std::move(*result));
    } else {
      job.promise.set_exception(error);
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace dec
