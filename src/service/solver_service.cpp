#include "service/solver_service.hpp"

#include <new>
#include <utility>

#include "sim/pool.hpp"
#include "sim/thread_pool.hpp"
#include "testing/fault_injection.hpp"
#include "util/check.hpp"

namespace dec {

namespace {

std::int64_t ns_between(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
      .count();
}

}  // namespace

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "unknown";
}

SolverService::SolverService(ServiceConfig cfg)
    : cfg_(cfg), shared_pool_(cfg.engine_threads) {
  DEC_REQUIRE(cfg_.workers >= 0, "worker count must be non-negative");
  DEC_REQUIRE(cfg_.queue_capacity >= 1, "queue capacity must be positive");
  DEC_REQUIRE(cfg_.watchdog_period.count() > 0,
              "watchdog period must be positive");
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  watchdog_ = std::thread([this] { watchdog_main(); });
}

SolverService::~SolverService() { shutdown(); }

JobTicket SolverService::admit(SolverRequest req, SubmitOptions opts,
                               bool blocking) {
  DEC_REQUIRE(solver_registered(req.solver),
              "submit: unknown solver id: " + req.solver);
  DEC_REQUIRE(opts.engine_threads >= 0,
              "submit: engine_threads override must be non-negative");
  auto job = std::make_shared<JobState>();
  job->req = std::move(req);
  job->opts = opts;
  // The deadline clock starts here, at submit entry: time spent blocked on
  // a full queue is queueing delay and counts against it.
  job->enqueued = std::chrono::steady_clock::now();
  if (opts.deadline.count() > 0) {
    job->deadline = job->enqueued + opts.deadline;
    job->has_deadline = true;
  }
  JobTicket ticket;
  ticket.result = job->promise.get_future();

  RejectReason reject = RejectReason::kNone;
  bool expired = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (blocking) {
      const auto have_space = [this] {
        return stopping_ || queue_.size() < cfg_.queue_capacity;
      };
      if (job->has_deadline) {
        // Deadline-bounded backpressure: never wait past the job's own
        // deadline — a full queue that stays full resolves the ticket
        // kDeadlineExceeded instead of hanging the tenant.
        expired = !cv_not_full_.wait_until(lock, job->deadline, have_space);
      } else {
        cv_not_full_.wait(lock, have_space);
      }
    }
    if (expired) {
      ++deadline_exceeded_;
      ++submit_timeouts_;
    } else if (stopping_) {
      reject = RejectReason::kShuttingDown;
    } else if (queue_.size() >= cfg_.queue_capacity) {
      reject = RejectReason::kQueueFull;  // non-blocking path only
    } else {
      job->id = next_id_++;
      if (job->has_deadline) job->token.set_deadline(job->deadline);
      if (opts.round_budget > 0) {
        job->token.set_round_budget(opts.round_budget);
      }
      queue_.insert(job);
      live_.emplace(job->id, job);
      ++submitted_;
    }
    if (reject != RejectReason::kNone) ++rejected_;
  }

  if (expired) {
    // Timed out waiting for space: never admitted, never queued. The
    // future resolves with the same status an expired queued job gets.
    SolverResult result;
    result.solver = job->req.solver;
    result.status = SolverStatus::kDeadlineExceeded;
    result.attempts = 0;
    result.e2e_latency_ns =
        ns_between(job->enqueued, std::chrono::steady_clock::now());
    job->promise.set_value(std::move(result));
    return ticket;
  }
  if (reject != RejectReason::kNone) {
    // Reject without queueing: the ticket's future is satisfied here, so
    // tenants can treat every future uniformly.
    SolverResult result;
    result.solver = job->req.solver;
    result.status = SolverStatus::kRejected;
    result.reject = reject;
    result.attempts = 0;
    job->promise.set_value(std::move(result));
    ticket.reject = reject;
    return ticket;
  }
  cv_not_empty_.notify_one();
  ticket.id = job->id;
  ticket.accepted = true;
  return ticket;
}

JobTicket SolverService::submit(SolverRequest req, SubmitOptions opts) {
  return admit(std::move(req), opts, /*blocking=*/true);
}

JobTicket SolverService::try_submit(SolverRequest req, SubmitOptions opts) {
  return admit(std::move(req), opts, /*blocking=*/false);
}

bool SolverService::cancel(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  it->second->token.request_cancel(AbortReason::kCancelled);
  return true;
}

void SolverService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::vector<JobId> SolverService::queued_order() const {
  std::vector<JobId> ids;
  std::unique_lock<std::mutex> lock(mu_);
  ids.reserve(queue_.size());
  for (const std::shared_ptr<JobState>& job : queue_) ids.push_back(job->id);
  return ids;
}

void SolverService::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty() && !watchdog_.joinable()) return;
    stopping_ = true;
  }
  // Wake blocked submitters (they resolve their tickets as
  // Rejected{kShuttingDown}), idle workers, and the watchdog.
  cv_not_empty_.notify_all();
  cv_not_full_.notify_all();
  cv_watchdog_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (watchdog_.joinable()) watchdog_.join();

  // Whatever the workers could not drain (only possible with zero
  // workers) resolves here: cancelled/expired jobs with their own status,
  // the rest as Rejected{kShuttingDown}.
  ReadyQueue leftovers;
  {
    std::unique_lock<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  const auto now = std::chrono::steady_clock::now();
  for (const std::shared_ptr<JobState>& job : leftovers) {
    // Wall-clock deadlines latch lazily (at barriers, pickup, or a
    // watchdog sweep) — a queued job already past its deadline at shutdown
    // may not have tripped its token yet, but it still owes the tenant
    // kDeadlineExceeded, not a shutdown rejection.
    if (!job->token.aborted() && job->has_deadline && now >= job->deadline) {
      job->token.request_cancel(AbortReason::kDeadlineExceeded);
    }
    SolverResult result;
    if (job->token.aborted()) {
      result = aborted_result(*job, job->token.reason(), /*attempts=*/0);
    } else {
      result.solver = job->req.solver;
      result.status = SolverStatus::kRejected;
      result.reject = RejectReason::kShuttingDown;
      result.attempts = 0;
    }
    result.e2e_latency_ns = ns_between(job->enqueued, now);
    {
      std::unique_lock<std::mutex> lock(mu_);
      count_status(result);
      live_.erase(job->id);
    }
    job->promise.set_value(std::move(result));
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
  }
}

ServiceStats SolverService::stats() const {
  ServiceStats s;
  {
    std::unique_lock<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.deadline_exceeded = deadline_exceeded_;
    s.rejected = rejected_;
    s.retried = retried_;
    s.submit_timeouts = submit_timeouts_;
    s.queued = queue_.size();
    s.running = static_cast<std::size_t>(in_flight_);
    // Averaged over jobs whose wait has been recorded (worker pickup), not
    // over finished jobs — a picked-up-but-running job's wait must not be
    // spread over a smaller denominator.
    s.avg_queue_wait_ms =
        waited_jobs_ > 0 ? static_cast<double>(wait_ns_total_) /
                               static_cast<double>(waited_jobs_) / 1e6
                         : 0.0;
    s.max_queue_wait_ms = static_cast<double>(wait_ns_max_) / 1e6;
  }
  // One coherent snapshot of the cache counters: hit rate, plans_built and
  // plans_shared all derive from a single atomic load, so the rate always
  // equals shared / (built + shared) for the very numbers reported.
  const SharedNetworkPool::TopologyCounters counters =
      shared_pool_.topology_counters();
  s.plans_built = counters.misses;
  s.plans_shared = counters.hits;
  const std::int64_t lookups = counters.hits + counters.misses;
  s.cache_hit_rate =
      lookups > 0
          ? static_cast<double>(counters.hits) / static_cast<double>(lookups)
          : 0.0;
  s.parked_run_states = shared_pool_.parked_run_states();
  return s;
}

SolverResult SolverService::aborted_result(const JobState& job,
                                           AbortReason reason,
                                           int attempts) const {
  SolverResult result;
  result.solver = job.req.solver;
  result.status = reason == AbortReason::kDeadlineExceeded
                      ? SolverStatus::kDeadlineExceeded
                      : SolverStatus::kCancelled;
  result.attempts = attempts;
  return result;
}

void SolverService::count_status(const SolverResult& result) {
  switch (result.status) {
    case SolverStatus::kOk:
      ++completed_;
      break;
    case SolverStatus::kFailed:
      ++failed_;
      break;
    case SolverStatus::kCancelled:
      ++cancelled_;
      break;
    case SolverStatus::kDeadlineExceeded:
      ++deadline_exceeded_;
      break;
    case SolverStatus::kRejected:
      ++rejected_;
      break;
  }
  if (result.attempts > 1) retried_ += result.attempts - 1;
}

SharedNetworkPool& SolverService::pool_for_threads(int engine_threads) {
  std::lock_guard<std::mutex> lock(override_mu_);
  std::unique_ptr<SharedNetworkPool>& pool = override_pools_[engine_threads];
  if (!pool) pool = std::make_unique<SharedNetworkPool>(engine_threads);
  return *pool;
}

SolverResult SolverService::run_job(JobState& job, NetworkPool& view,
                                    int engine_threads) {
  int attempts = 0;
  for (;;) {
    // Pre-flight: a job cancelled or expired while it sat in the queue (or
    // between retry attempts) resolves without running a solver. Checked
    // without consuming round budget — the budget counts barriers only.
    if (!job.token.aborted() && job.has_deadline &&
        std::chrono::steady_clock::now() >= job.deadline) {
      job.token.request_cancel(AbortReason::kDeadlineExceeded);
    }
    if (job.token.aborted()) {
      return aborted_result(job, job.token.reason(), attempts);
    }
    ++attempts;
    try {
      DEC_FAULT_POINT_CTX("service.worker", &job.token);
      SolverResult result =
          execute_request(job.req, engine_threads, &view, &job.token);
      result.attempts = attempts;
      return result;
    } catch (const SolverAborted& aborted) {
      return aborted_result(job, aborted.reason(), attempts);
    } catch (const std::exception& e) {
      // Transient failures (injected chaos, allocation pressure) retry on
      // a freshly reset lease; everything else is permanent. The what()
      // string — not the exception — travels to the tenant.
      const bool transient =
          dynamic_cast<const TransientError*>(&e) != nullptr ||
          dynamic_cast<const std::bad_alloc*>(&e) != nullptr;
      if (!transient || attempts > job.opts.max_retries) {
        SolverResult result;
        result.solver = job.req.solver;
        result.status = SolverStatus::kFailed;
        result.error = e.what();
        result.attempts = attempts;
        return result;
      }
      std::this_thread::sleep_for(job.opts.retry_backoff * attempts);
    }
  }
}

void SolverService::worker_main() {
  // The worker's thread-confined view over the shared arena: run states it
  // acquires stay warm across this worker's jobs and park for other tenants
  // when the service shuts down. Jobs with an engine_threads override get a
  // lazily created view over the matching per-shard-count arena (kept for
  // the worker's lifetime, so override jobs reuse run states too).
  NetworkPool view(shared_pool_);
  std::map<int, std::unique_ptr<NetworkPool>> override_views;
  for (;;) {
    std::shared_ptr<JobState> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_not_empty_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      // Pop the scheduler's pick: most urgent class, EDF within it,
      // arrival order on ties (the ReadyQueue invariant).
      job = *queue_.begin();
      queue_.erase(queue_.begin());
      ++in_flight_;
      const std::int64_t ns =
          ns_between(job->enqueued, std::chrono::steady_clock::now());
      ++waited_jobs_;
      wait_ns_total_ += ns;
      if (ns > wait_ns_max_) wait_ns_max_ = ns;
      job->queue_wait_ns = ns;
    }
    cv_not_full_.notify_one();

    const int engine_threads = resolve_num_threads(
        job->opts.engine_threads > 0 ? job->opts.engine_threads
                                     : cfg_.engine_threads);
    NetworkPool* job_view = &view;
    if (engine_threads != shared_pool_.num_threads()) {
      std::unique_ptr<NetworkPool>& slot = override_views[engine_threads];
      if (!slot) {
        slot = std::make_unique<NetworkPool>(pool_for_threads(engine_threads));
      }
      job_view = slot.get();
    }

    SolverResult result = run_job(*job, *job_view, engine_threads);
    result.queue_wait_ns = job->queue_wait_ns;
    result.e2e_latency_ns =
        ns_between(job->enqueued, std::chrono::steady_clock::now());
    // Count the job before satisfying its future (a tenant reading stats()
    // right after future.get() must see it), but keep it in flight until
    // the future is satisfied (drain() returning must imply every future
    // is ready).
    {
      std::unique_lock<std::mutex> lock(mu_);
      count_status(result);
    }
    job->promise.set_value(std::move(result));
    {
      std::unique_lock<std::mutex> lock(mu_);
      live_.erase(job->id);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void SolverService::watchdog_main() {
  // The sweep runs over a snapshot of the live set, outside mu_: holding
  // the lock across the whole iteration would stall submit/pickup in
  // proportion to the live-job count every period. request_cancel is
  // thread-safe, and deadline/has_deadline are immutable after admission.
  std::vector<std::shared_ptr<JobState>> snapshot;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_watchdog_.wait_for(lock, cfg_.watchdog_period,
                          [this] { return stopping_; });
    if (stopping_) return;  // drain relies on barrier/pre-flight checks
    snapshot.clear();
    snapshot.reserve(live_.size());
    for (const auto& [id, job] : live_) snapshot.push_back(job);
    lock.unlock();
    const auto now = std::chrono::steady_clock::now();
    for (const std::shared_ptr<JobState>& job : snapshot) {
      if (job->has_deadline && now >= job->deadline) {
        // Cooperative: the running solver observes the trip at its next
        // round barrier; a queued job resolves at pickup. This sweep is
        // what catches jobs sleeping *between* barriers (e.g. under
        // injected latency), where the barrier's own deadline check
        // cannot run.
        job->token.request_cancel(AbortReason::kDeadlineExceeded);
      }
    }
    snapshot.clear();  // drop job refs before re-acquiring the lock
    lock.lock();
  }
}

}  // namespace dec
